package repair

// Attribute-reassignment solving. For one node n of the target match the
// rule's numeric literals are re-solved with n's attributes freed as integer
// variables, every other term folded in as a graph constant. A violation is
// cleared either by making X ∧ Y hold outright (branch A) or by falsifying
// one antecedent literal that mentions a freed attribute (branches B_i); the
// feasible assignment of minimal L1 perturbation over all branches wins.
// The machinery mirrors internal/reason's literal→constraint translation
// (abs-variant expansion, sign conditions, ground folding) but solves for a
// witness instead of deciding satisfiability, and minimizes Σ|x_i − o_i| by
// binary search over an added deviation bound (the solver has no objective
// row; over integers the search needs ⌈log₂ D₀⌉ extra Solve calls).

import (
	"math/big"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/solver"
)

// maxLeaves bounds abs-variant expansion per branch: each |·| in a literal
// doubles the case split, and a runaway rule must not stall the preview.
const maxLeaves = 64

// lit is one literal to assert, possibly negated.
type lit struct {
	l   core.Literal
	neg bool
}

// attempt is the best feasible reassignment found so far.
type attempt struct {
	ok   bool
	vals []int64 // per freed attr, solved value
	used []bool  // per freed attr, whether the winning branch constrained it
	dev  int64   // Σ|vals − old|
}

// solveNode frees node n's rule-constrained numeric attributes and searches
// all branches for the minimally-perturbed clearing assignment. A nil sets
// with non-empty why explains the failure (non-linear rule, infeasible
// system, exhausted budget); nil with empty why means n simply offers no
// freeable attribute.
func (e *enum) solveNode(n graph.NodeID) (sets []AttrSet, perturb int64, why string) {
	rule := e.target.Rule
	for _, l := range append(append([]core.Literal{}, rule.X...), rule.Y...) {
		if !l.IsLinear() {
			return nil, 0, "rule " + rule.Name + " has a non-linear literal; attribute repair needs linear arithmetic"
		}
	}

	sb := newBuilder(e, n)
	if len(sb.freedOrder) == 0 {
		return nil, 0, ""
	}

	// Branch A: make X ∧ Y hold. Branches B_i: falsify one X literal that
	// mentions a freed attribute (X currently holds, so every B_i demands a
	// real change; literals not mentioning a freed attribute cannot move).
	var branches [][]lit
	all := make([]lit, 0, len(rule.X)+len(rule.Y))
	for _, l := range rule.X {
		all = append(all, lit{l, false})
	}
	for _, l := range rule.Y {
		all = append(all, lit{l, false})
	}
	branches = append(branches, all)
	for _, l := range rule.X {
		if sb.touchesFreed(l) {
			branches = append(branches, []lit{{l, true}})
		}
	}

	var best attempt
	unknown := false
	for _, br := range branches {
		sb.cons = sb.cons[:0]
		sb.leaves = 0
		sb.explore(br, 0, func() {
			vals, used, dev, st := sb.solveLeaf()
			switch st {
			case leafFeasible:
				if !best.ok || dev < best.dev {
					best = attempt{ok: true, vals: vals, used: used, dev: dev}
				}
			case leafUnknown:
				unknown = true
			}
		})
		if sb.unknown {
			unknown = true
		}
		if e.expired() {
			unknown = true
			break
		}
	}

	if !best.ok {
		if unknown {
			return nil, 0, "solver budget exhausted before a feasible reassignment was found"
		}
		return nil, 0, "no feasible attribute reassignment of node clears the violation"
	}
	for i, attr := range sb.freedOrder {
		if sb.oldPresent[i] {
			if best.vals[i] != sb.oldVals[i] {
				old := sb.oldVals[i]
				sets = append(sets, AttrSet{Attr: attr, Old: &old, New: best.vals[i]})
			}
		} else if best.used[i] {
			// absent attribute the branch constrained: the fix creates it
			sets = append(sets, AttrSet{Attr: attr, New: best.vals[i]})
		}
	}
	if len(sets) == 0 {
		// the identity assignment cannot clear a real violation; distrust it
		return nil, 0, "solved assignment is a no-op"
	}
	return sets, best.dev, ""
}

// sysBuilder accumulates the constraint system of one branch leaf. Variables
// 0..k−1 are the freed attributes of node n (k = len(freedOrder)); the leaf
// solver appends deviation variables k..2k−1 on top.
type sysBuilder struct {
	e    *enum
	n    graph.NodeID
	rule *core.NGD
	m    core.Match
	b    expr.Binding

	freedOrder []string       // freed attr names, first-appearance order
	freedIdx   map[string]int // attr name → variable index
	oldVals    []int64        // committed value per freed attr (0 when absent)
	oldPresent []bool

	cons    []solver.Constraint
	leaves  int
	unknown bool
}

func newBuilder(e *enum, n graph.NodeID) *sysBuilder {
	rule, m := e.target.Rule, e.target.Match
	sb := &sysBuilder{
		e: e, n: n, rule: rule, m: m,
		b:        rule.Binding(e.g, m),
		freedIdx: make(map[string]int),
	}

	// attrs of n mentioned by string-bearing literals are pinned: their
	// truth must stay invariant under the fix
	pinned := make(map[string]bool)
	lits := append(append([]core.Literal{}, rule.X...), rule.Y...)
	for _, l := range lits {
		if l.L.HasString() || l.R.HasString() {
			sb.eachTermAt(l, func(attr string) { pinned[attr] = true })
		}
	}
	syms := e.g.Symbols()
	for _, l := range lits {
		if l.L.HasString() || l.R.HasString() {
			continue
		}
		sb.eachTermAt(l, func(attr string) {
			if pinned[attr] {
				return
			}
			if _, ok := sb.freedIdx[attr]; ok {
				return
			}
			v := e.g.Attr(n, syms.Attr(attr))
			var old int64
			present := v.Valid()
			if present {
				iv, ok := v.AsInt()
				if !ok {
					return // non-integer committed value: not freeable
				}
				old = iv
			}
			sb.freedIdx[attr] = len(sb.freedOrder)
			sb.freedOrder = append(sb.freedOrder, attr)
			sb.oldVals = append(sb.oldVals, old)
			sb.oldPresent = append(sb.oldPresent, present)
		})
	}
	return sb
}

// eachTermAt calls fn for every term x.A of l whose variable binds node n.
func (sb *sysBuilder) eachTermAt(l core.Literal, fn func(attr string)) {
	walk := func(variable, attr string) {
		if idx := sb.rule.Pattern.VarIndex(variable); idx >= 0 && sb.m[idx] == sb.n {
			fn(attr)
		}
	}
	l.L.Terms(walk)
	l.R.Terms(walk)
}

func (sb *sysBuilder) touchesFreed(l core.Literal) bool {
	found := false
	sb.eachTermAt(l, func(attr string) {
		if _, ok := sb.freedIdx[attr]; ok {
			found = true
		}
	})
	return found
}

// explore asserts lits[i:] into the system, fanning out over abs-variant
// case splits, and calls leaf once per fully-asserted consistent leaf.
func (sb *sysBuilder) explore(lits []lit, i int, leaf func()) {
	if sb.e.expired() {
		sb.unknown = true
		return
	}
	if i == len(lits) {
		if sb.leaves >= maxLeaves {
			sb.unknown = true
			return
		}
		sb.leaves++
		leaf()
		return
	}
	li := lits[i]
	if li.l.L.HasString() || li.l.R.HasString() {
		// string literals are invariant under the fix (string-bearing attrs
		// are pinned): their current truth decides the branch
		sat := li.l.Satisfied(sb.b)
		if sat == li.neg {
			return // branch contradicts an immovable literal
		}
		sb.explore(lits, i+1, leaf)
		return
	}
	op := li.l.Op
	if li.neg {
		op = op.Negate()
	}
	diff := expr.Sub(li.l.L.Clone(), li.l.R.Clone())
	for _, v := range expr.AbsVariants(diff) {
		mark := len(sb.cons)
		ok := true
		for _, c := range v.Conds {
			if !sb.addLinear(c.Inner, condRel(c.NonNeg), new(big.Rat)) {
				ok = false
				break
			}
		}
		if ok && sb.addLinear(v.Expr, cmpToRel(op), new(big.Rat)) {
			sb.explore(lits, i+1, leaf)
		}
		sb.cons = sb.cons[:mark]
		if sb.e.expired() || sb.unknown && sb.leaves >= maxLeaves {
			sb.unknown = true
			return
		}
	}
}

// addLinear linearizes e2 and appends the constraint (e2 rel rhs) over the
// freed variables, folding every other term in as its committed graph value.
// false means the constraint is unsatisfiable as grounded (or a ground term
// failed to resolve to an integer), killing the current case split.
func (sb *sysBuilder) addLinear(e2 *expr.Expr, rel solver.Rel, rhs *big.Rat) bool {
	lf, err := expr.Linearize(e2)
	if err != nil {
		return false
	}
	r := new(big.Rat).Sub(rhs, lf.Const)
	coefs := make(map[int]*big.Rat)
	for tk, c := range lf.Coeffs {
		idx := sb.rule.Pattern.VarIndex(tk.Var)
		if idx < 0 {
			return false
		}
		if vi, ok := sb.freedIdx[tk.Attr]; ok && sb.m[idx] == sb.n {
			if prev, dup := coefs[vi]; dup {
				prev.Add(prev, c)
			} else {
				coefs[vi] = new(big.Rat).Set(c)
			}
			continue
		}
		val, ok := sb.b(tk.Var, tk.Attr)
		if !ok {
			return false // term unresolvable and not freed: cannot hold
		}
		iv, ok := val.AsInt()
		if !ok {
			return false
		}
		// ground term moves to the RHS: r −= c·val
		r.Sub(r, new(big.Rat).Mul(c, big.NewRat(iv, 1)))
	}
	if len(coefs) == 0 {
		return groundHolds(rel, new(big.Rat).Neg(r))
	}
	vars := make([]int, 0, len(coefs))
	for vi := range coefs {
		vars = append(vars, vi)
	}
	sortInts(vars)
	cs := make([]*big.Rat, len(vars))
	for i, vi := range vars {
		cs[i] = coefs[vi]
	}
	sb.cons = append(sb.cons, solver.NewConstraint(vars, cs, rel, r))
	return true
}

type leafStatus int

const (
	leafInfeasible leafStatus = iota
	leafFeasible
	leafUnknown
)

// solveLeaf solves the accumulated system for the minimally-perturbed
// integral witness. Deviation variables d_i ≥ |x_i − o_i| are adjoined and
// Σd_i is driven down by binary search; a budget blowout mid-search keeps
// the best witness found (a valid fix, possibly non-minimal).
func (sb *sysBuilder) solveLeaf() (vals []int64, used []bool, dev int64, st leafStatus) {
	k := len(sb.freedOrder)
	used = make([]bool, k)
	for _, c := range sb.cons {
		for _, vi := range c.Vars {
			if vi < k {
				used[vi] = true
			}
		}
	}

	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	base := make([]solver.Constraint, len(sb.cons), len(sb.cons)+3*k+1)
	copy(base, sb.cons)
	for i := 0; i < k; i++ {
		o := big.NewRat(sb.oldVals[i], 1)
		base = append(base,
			solver.NewConstraint([]int{i, k + i}, []*big.Rat{one, negOne}, solver.Le, o),
			solver.NewConstraint([]int{i, k + i}, []*big.Rat{negOne, negOne}, solver.Le, new(big.Rat).Neg(o)),
			solver.NewConstraint([]int{k + i}, []*big.Rat{one}, solver.Ge, new(big.Rat)),
		)
	}
	sumVars := make([]int, k)
	sumCoef := make([]*big.Rat, k)
	for i := 0; i < k; i++ {
		sumVars[i] = k + i
		sumCoef[i] = one
	}

	solve := func(bound int64, bounded bool) (solver.Status, []int64, int64) {
		cons := base
		if bounded {
			cons = append(base[:len(base):len(base)],
				solver.NewConstraint(sumVars, sumCoef, solver.Le, big.NewRat(bound, 1)))
		}
		sys := &solver.System{NumVars: 2 * k, Cons: cons, Integer: true}
		sb.e.stats.SolverCalls++
		status, w := sys.Solve(sb.e.opts.Solver)
		if status != solver.Feasible {
			return status, nil, 0
		}
		xs := make([]int64, k)
		var d int64
		for i := 0; i < k; i++ {
			num := w[i].Num()
			if !num.IsInt64() {
				return solver.Unknown, nil, 0 // out-of-range witness: give up
			}
			xs[i] = num.Int64()
			if delta := xs[i] - sb.oldVals[i]; delta >= 0 {
				d += delta
			} else {
				d -= delta
			}
		}
		return solver.Feasible, xs, d
	}

	status, xs, d0 := solve(0, false)
	switch status {
	case solver.Infeasible:
		return nil, nil, 0, leafInfeasible
	case solver.Unknown:
		return nil, nil, 0, leafUnknown
	}
	vals, dev = xs, d0

	// minimal Σ|x−o| lies in [0, d0]: shrink by bisection, each feasible
	// probe tightening hi to the deviation its witness actually achieves
	lo, hi := int64(0), d0
	for lo < hi {
		mid := lo + (hi-lo)/2
		st2, xs2, d2 := solve(mid, true)
		switch st2 {
		case solver.Feasible:
			vals, dev, hi = xs2, d2, d2
		case solver.Infeasible:
			lo = mid + 1
		default:
			return vals, used, dev, leafFeasible // budget: keep best witness
		}
	}
	return vals, used, dev, leafFeasible
}

// groundHolds decides a fully-ground constraint: v carries the sign of
// LHS − RHS after all terms folded away.
func groundHolds(rel solver.Rel, v *big.Rat) bool {
	s := v.Sign()
	switch rel {
	case solver.Le:
		return s <= 0
	case solver.Ge:
		return s >= 0
	case solver.Eq:
		return s == 0
	case solver.Lt:
		return s < 0
	case solver.Gt:
		return s > 0
	default: // Ne
		return s != 0
	}
}

func cmpToRel(op expr.Cmp) solver.Rel {
	switch op {
	case expr.Eq:
		return solver.Eq
	case expr.Ne:
		return solver.Ne
	case expr.Lt:
		return solver.Lt
	case expr.Le:
		return solver.Le
	case expr.Gt:
		return solver.Gt
	default:
		return solver.Ge
	}
}

func condRel(nonNeg bool) solver.Rel {
	if nonNeg {
		return solver.Ge
	}
	return solver.Lt
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
