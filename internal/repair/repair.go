// Package repair turns detected violations into candidate fixes: the
// resolution half the paper leaves open (it stops at computing Vio(Σ, G)).
// For one target violation the enumerator produces two candidate shapes:
//
//   - attribute reassignments: the target node's numeric attributes are
//     freed as integer variables and the rule's literals re-solved with
//     internal/solver (exact simplex + branch-and-bound), picking the
//     feasible assignment of minimal L1 perturbation Σ|new − old| — either
//     all of X ∧ Y made to hold, or one X literal falsified;
//   - edge deletions: removing any edge the match uses breaks the match
//     itself.
//
// Every candidate is then previewed without committing: attribute fixes on
// a graph.Overlay carrying the reassignment (SetAttr overrides + masked
// index pairs), edge deletions through inc.IncDect on the would-be delta.
// The preview yields the fix's cross-violation clearance — which *other*
// stored violations it removes and which new ones it introduces — and the
// ranking orders fixes by net clearance. Applying a chosen fix is the
// serving layer's job (it routes the fix through the ordinary ingest path);
// this package never mutates the graph.
//
// Determinism: candidates are enumerated in match-slot and pattern-edge
// order, the store is iterated in canonical-key order, and the solver is
// deterministic, so the same (graph, store, target) always yields the same
// ranked fixes. The package imports neither "time" nor "math/rand"
// (enforced by ngdlint); deadlines arrive via solver.Options.Done.
package repair

import (
	"fmt"
	"sort"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/match"
	"ngd/internal/plan"
	"ngd/internal/solver"
)

// AttrSet is one attribute reassignment of a fix: set Attr of the fix's
// node to New. Old is the committed value (nil when the attribute was
// absent — the fix then creates it). Repair values are always integers:
// the solver works over the NGD integer attribute domain.
type AttrSet struct {
	Attr string `json:"attr"`
	Old  *int64 `json:"old,omitempty"`
	New  int64  `json:"new"`
}

// Fix kinds.
const (
	KindAttr       = "attr"        // reassign attributes of one node
	KindEdgeDelete = "edge-delete" // delete one edge the match uses
)

// Fix is one candidate repair with its previewed consequences.
type Fix struct {
	// ID identifies the fix within its Result; stable across
	// re-enumeration at the same epoch, which is what lets a client pick a
	// fix from a preview and apply it by ID later (a commit in between
	// surfaces as a changed epoch / stale violation key, not a silent
	// different fix).
	ID   string `json:"id"`
	Kind string `json:"kind"`

	// Attr fixes: the node whose attributes are reassigned, and the sets.
	Node graph.NodeID `json:"node,omitempty"`
	Sets []AttrSet    `json:"sets,omitempty"`

	// Edge-delete fixes: the edge to remove.
	Src   graph.NodeID `json:"src,omitempty"`
	Dst   graph.NodeID `json:"dst,omitempty"`
	Label string       `json:"label,omitempty"`

	// Perturb is the attr fix's L1 perturbation Σ|new − old| (absent
	// attributes count from 0); 0 for edge deletions.
	Perturb int64 `json:"perturb"`

	// Clears lists the canonical keys of stored violations the fix removes
	// (always including the target); Introduces the keys of violations the
	// fix would create. Score = len(Clears) − len(Introduces) is the net
	// clearance the ranking maximizes.
	Clears     []string `json:"clears"`
	Introduces []string `json:"introduces,omitempty"`
	Score      int      `json:"score"`
}

// Stats counts the enumeration's work (the ngdbench repair experiment
// reports these against |Vio|).
type Stats struct {
	AttrCands   int `json:"attr_candidates"` // nodes attempted
	EdgeCands   int `json:"edge_candidates"` // distinct match edges tried
	SolverCalls int `json:"solver_calls"`    // exact Solve invocations
	Discarded   int `json:"discarded"`       // candidates dropped by preview
}

// Result is the ranked fix list for one target violation.
type Result struct {
	Target string `json:"target"`
	Rule   string `json:"rule"`
	// Fixes is ranked best-first: net clearance desc, then attr before
	// edge-delete, then perturbation asc, then ID.
	Fixes []Fix `json:"fixes"`
	// Unrepairable is set when no candidate survived and Reason says why
	// (non-linear literals, infeasible literal system, exhausted budget).
	Unrepairable bool   `json:"unrepairable,omitempty"`
	Reason       string `json:"reason,omitempty"`
	Stats        Stats  `json:"stats"`
}

// Top returns the top-ranked fix, or false when none exists.
func (r *Result) Top() (Fix, bool) {
	if len(r.Fixes) == 0 {
		return Fix{}, false
	}
	return r.Fixes[0], true
}

// FixByID finds a fix by its ID.
func (r *Result) FixByID(id string) (Fix, bool) {
	for _, f := range r.Fixes {
		if f.ID == id {
			return f, true
		}
	}
	return Fix{}, false
}

// Options configure enumeration.
type Options struct {
	// MaxFixes caps the ranked fixes returned (default 8).
	MaxFixes int
	// Solver bounds every exact Solve; Solver.Done is also polled between
	// candidates, so one closed channel deadlines the whole enumeration.
	Solver solver.Options
	// NoPruning disables index-backed pruning in the edge-deletion preview
	// (mirrors the session's differential-testing toggle).
	NoPruning bool
}

// Store is the read view of the live violation store the enumerator ranks
// against. ForEach must iterate in ascending canonical-key order (the
// session's snapshot order), which keeps Clears lists deterministic.
type Store interface {
	Has(key string) bool
	Len() int
	ForEach(fn func(core.Violation))
}

// enum carries one enumeration's state.
type enum struct {
	g     *graph.Graph
	rules *core.Set
	prog  *plan.Program
	store Store
	opts  Options

	target core.Violation
	stats  Stats
	reason string // first failure reason seen (reported if nothing survives)
}

func (e *enum) expired() bool {
	if e.opts.Solver.Done == nil {
		return false
	}
	select {
	case <-e.opts.Solver.Done:
		return true
	default:
		return false
	}
}

func (e *enum) note(why string) {
	if e.reason == "" {
		e.reason = why
	}
}

// Enumerate produces the ranked candidate fixes for target, which must be a
// current violation of g (callers take it from the live store). prog may be
// nil (a private program is built); sessions pass their shared program so
// compiled rules are reused. g is never mutated beyond attribute-index
// cache fills, so Enumerate is a pure preview.
func Enumerate(g *graph.Graph, rules *core.Set, prog *plan.Program, st Store, target core.Violation, opts Options) *Result {
	if opts.MaxFixes <= 0 {
		opts.MaxFixes = 8
	}
	if prog == nil {
		prog = plan.New(g, rules, plan.Options{NoPruning: opts.NoPruning})
	}
	e := &enum{g: g, rules: rules, prog: prog, store: st, opts: opts, target: target}
	res := &Result{Target: target.Key(), Rule: target.Rule.Name}

	var fixes []Fix

	// attribute candidates: one per distinct match node, in slot order
	seen := make(map[graph.NodeID]bool)
	for _, n := range target.Match {
		if seen[n] {
			continue
		}
		seen[n] = true
		if e.expired() {
			e.note("deadline exhausted mid-enumeration")
			break
		}
		e.stats.AttrCands++
		if f, ok := e.attrFix(n); ok {
			fixes = append(fixes, f)
		}
	}

	// edge-deletion candidates: every distinct graph edge the match uses
	fixes = append(fixes, e.edgeFixes()...)

	rank(fixes)
	if len(fixes) > opts.MaxFixes {
		fixes = fixes[:opts.MaxFixes]
	}
	res.Fixes = fixes
	res.Stats = e.stats
	if len(fixes) == 0 {
		res.Unrepairable = true
		res.Reason = e.reason
		if res.Reason == "" {
			res.Reason = "no candidate fix clears the violation"
		}
	}
	return res
}

// attrFix attempts the solver-backed attribute reassignment of node n, and
// previews it on an overlay when a feasible minimal assignment exists.
func (e *enum) attrFix(n graph.NodeID) (Fix, bool) {
	sets, perturb, why := e.solveNode(n)
	if sets == nil {
		if why != "" {
			e.note(why)
		}
		return Fix{}, false
	}
	clears, intro, ok := e.attrClearance(n, sets)
	if !ok {
		e.stats.Discarded++
		e.note("solved assignment failed the overlay preview")
		return Fix{}, false
	}
	return Fix{
		ID:      fmt.Sprintf("attr:%d", n),
		Kind:    KindAttr,
		Node:    n,
		Sets:    sets,
		Perturb: perturb,
		Clears:  clears, Introduces: intro,
		Score: len(clears) - len(intro),
	}, true
}

// attrClearance previews sets applied to node n on an overlay of the live
// graph: which stored violations disappear, which new violations appear.
// ok is false when the assignment does not actually clear the target (a
// solver-level artifact the preview is the ground truth for).
func (e *enum) attrClearance(n graph.NodeID, sets []AttrSet) (clears, introduces []string, ok bool) {
	ov := graph.NewOverlay(e.g, &graph.Delta{})
	syms := e.g.Symbols()
	for _, s := range sets {
		ov.SetAttr(n, syms.Attr(s.Attr), graph.Int(s.New))
	}
	if e.target.Rule.Violated(ov, e.target.Match) {
		return nil, nil, false
	}

	// removed: stored violations binding n that no longer violate
	e.store.ForEach(func(w core.Violation) {
		binds := false
		for _, v := range w.Match {
			if v == n {
				binds = true
				break
			}
		}
		if binds && !w.Rule.Violated(ov, w.Match) {
			clears = append(clears, w.Key())
		}
	})

	// introduced: matches binding n that violate on the overlay but are not
	// in the store. Plans are built directly against the overlay (the
	// shared program's cache is keyed by rule and bound slot, not by view,
	// so it must not be fed overlay-derived plans).
	seen := make(map[string]bool)
	for _, r := range e.rules.Rules {
		if len(r.Y) == 0 {
			continue // X → ∅ can never be violated
		}
		c := e.prog.CompiledFor(r)
		nPat := len(r.Pattern.Nodes)
		for slot := 0; slot < nPat; slot++ {
			if !c.CP.NodeMatches(slot, e.g.Label(n)) {
				continue
			}
			partial := match.NewPartial(nPat)
			partial[slot] = n
			if !match.VerifyBound(ov, c.CP, partial) {
				continue
			}
			pl := match.BuildPrunedPlan(ov, c.CP, []int{slot}, c.Filters)
			searcher := detect.NewSearcher(ov, c, pl)
			searcher.Run(partial, func(m core.Match) bool {
				k := core.Violation{Rule: r, Match: m}.Key()
				if !e.store.Has(k) && !seen[k] {
					seen[k] = true
					introduces = append(introduces, k)
				}
				return true
			})
		}
	}
	sort.Strings(introduces)
	return clears, introduces, true
}

// edgeFixes enumerates the distinct graph edges of the target match and
// previews each deletion with IncDect on the would-be delta.
func (e *enum) edgeFixes() []Fix {
	r, m := e.target.Rule, e.target.Match
	c := e.prog.CompiledFor(r)

	// edge-bearing rules only: IncDect derives pivots from delta edges
	edgeRules := core.NewSet()
	for _, rr := range e.rules.Rules {
		if len(rr.Pattern.Edges) > 0 {
			edgeRules.Add(rr)
		}
	}

	type ekey struct {
		src, dst graph.NodeID
		label    graph.LabelID
	}
	tried := make(map[ekey]bool)
	var fixes []Fix
	for ei, pe := range r.Pattern.Edges {
		if e.expired() {
			e.note("deadline exhausted mid-enumeration")
			break
		}
		l := c.CP.EdgeLabels[ei]
		k := ekey{m[pe.Src], m[pe.Dst], l}
		if tried[k] || l == graph.NoLabel || !e.g.HasEdgeL(k.src, k.dst, l) {
			continue
		}
		tried[k] = true
		e.stats.EdgeCands++

		d := &graph.Delta{}
		d.Delete(k.src, k.dst, l)
		dv := inc.IncDect(e.g, edgeRules, d, inc.Options{
			NoPruning:        e.opts.NoPruning,
			AssumeNormalized: true,
			Program:          e.prog,
		})
		var clears, intro []string
		for _, w := range dv.Minus {
			if wk := w.Key(); e.store.Has(wk) {
				clears = append(clears, wk)
			}
		}
		for _, w := range dv.Plus {
			if wk := w.Key(); !e.store.Has(wk) {
				intro = append(intro, wk)
			}
		}
		sort.Strings(clears)
		sort.Strings(intro)
		cleared := false
		for _, wk := range clears {
			if wk == e.target.Key() {
				cleared = true
				break
			}
		}
		if !cleared {
			// deleting a match edge always kills this match; reaching here
			// means the preview disagrees — trust the preview, drop the fix
			e.stats.Discarded++
			continue
		}
		fixes = append(fixes, Fix{
			ID:   fmt.Sprintf("del:%d:%s:%d", k.src, e.g.Symbols().LabelName(l), k.dst),
			Kind: KindEdgeDelete,
			Src:  k.src, Dst: k.dst, Label: e.g.Symbols().LabelName(l),
			Clears: clears, Introduces: intro,
			Score: len(clears) - len(intro),
		})
	}
	return fixes
}

// rank orders fixes best-first: net clearance desc, attr fixes before edge
// deletions (value repair is the less destructive shape), perturbation asc,
// ID asc. Total and deterministic.
func rank(fixes []Fix) {
	sort.SliceStable(fixes, func(i, j int) bool {
		a, b := fixes[i], fixes[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Kind != b.Kind {
			return a.Kind == KindAttr
		}
		if a.Perturb != b.Perturb {
			return a.Perturb < b.Perturb
		}
		return a.ID < b.ID
	})
}
