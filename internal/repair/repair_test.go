package repair_test

import (
	"sort"
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
	"ngd/internal/repair"
	"ngd/internal/session"
	"ngd/internal/solver"
)

// mapStore adapts a plain violation map to repair.Store for direct
// Enumerate tests that bypass the session.
type mapStore map[string]core.Violation

func (m mapStore) Has(key string) bool { return false || m[key].Rule != nil }
func (m mapStore) Len() int            { return len(m) }
func (m mapStore) ForEach(fn func(core.Violation)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(m[k])
	}
}

func storeOf(vs ...core.Violation) mapStore {
	m := make(mapStore, len(vs))
	for _, v := range vs {
		m[v.Key()] = v
	}
	return m
}

func singleNodeRule(name, label string, x, y []core.Literal) *core.NGD {
	p := pattern.New()
	p.AddNode("x", label)
	return core.MustNew(name, p, x, y)
}

// TestAttrFixMinimalPerturbation: the cheapest clearing assignment wins.
// φ = Q[x:item](x.price ≥ 100 → x.discount = 10), item{price:150, discount:0}.
// Branch A (satisfy Y) costs |10−0| = 10; branch B (falsify X) costs
// |99−150| = 51. The ranked fix must be branch A's.
func TestAttrFixMinimalPerturbation(t *testing.T) {
	r := singleNodeRule("disc", "item",
		[]core.Literal{core.MustLiteral("x.price >= 100")},
		[]core.Literal{core.MustLiteral("x.discount = 10")})
	g := graph.New()
	n := g.AddNode("item")
	g.SetAttr(n, "price", graph.Int(150))
	g.SetAttr(n, "discount", graph.Int(0))

	s := session.New(g, core.NewSet(r), session.Options{})
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("seed store: %d violations, want 1", s.Len())
	}
	key := s.Violations()[0].Key()

	res, err := s.PreviewRepair(key, repair.Options{})
	if err != nil {
		t.Fatalf("PreviewRepair: %v", err)
	}
	top, ok := res.Top()
	if !ok {
		t.Fatalf("no fixes: %+v", res)
	}
	if top.Kind != repair.KindAttr || top.Node != n {
		t.Fatalf("top fix %+v, want attr fix on node %d", top, n)
	}
	if top.Perturb != 10 {
		t.Fatalf("perturb %d, want 10 (set discount 0→10)", top.Perturb)
	}
	if len(top.Sets) != 1 || top.Sets[0].Attr != "discount" || top.Sets[0].New != 10 {
		t.Fatalf("sets %+v, want discount→10", top.Sets)
	}
	if top.Sets[0].Old == nil || *top.Sets[0].Old != 0 {
		t.Fatalf("old %v, want 0", top.Sets[0].Old)
	}
	if len(top.Clears) != 1 || top.Clears[0] != key {
		t.Fatalf("clears %v, want [%s]", top.Clears, key)
	}
	if len(top.Introduces) != 0 {
		t.Fatalf("introduces %v, want none", top.Introduces)
	}
}

// TestAttrFixCreatesAbsentAttribute: a Y term over an attribute the node
// lacks is cleared by creating the attribute.
func TestAttrFixCreatesAbsentAttribute(t *testing.T) {
	r := singleNodeRule("tag", "item",
		nil, []core.Literal{core.MustLiteral("x.grade = 3")})
	g := graph.New()
	g.AddNode("item")

	s := session.New(g, core.NewSet(r), session.Options{})
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("seed store: %d violations, want 1", s.Len())
	}
	res, err := s.PreviewRepair(s.Violations()[0].Key(), repair.Options{})
	if err != nil {
		t.Fatalf("PreviewRepair: %v", err)
	}
	top, ok := res.Top()
	if !ok {
		t.Fatalf("no fixes: %+v", res)
	}
	if len(top.Sets) != 1 || top.Sets[0].Attr != "grade" || top.Sets[0].New != 3 || top.Sets[0].Old != nil {
		t.Fatalf("sets %+v, want create grade=3", top.Sets)
	}
	if top.Perturb != 3 {
		t.Fatalf("perturb %d, want 3 (absent counts from 0)", top.Perturb)
	}
}

// TestEdgeDeleteCandidate: a two-node match offers both attribute and
// edge-deletion fixes, and every fix clears the target.
func TestEdgeDeleteCandidate(t *testing.T) {
	p := pattern.New()
	x := p.AddNode("x", "acct")
	y := p.AddNode("y", "acct")
	p.AddEdge(x, y, "owes")
	r := core.MustNew("bal", p, nil,
		[]core.Literal{core.MustLiteral("x.bal <= y.bal")})

	g := graph.New()
	u := g.AddNode("acct")
	v := g.AddNode("acct")
	g.SetAttr(u, "bal", graph.Int(5))
	g.SetAttr(v, "bal", graph.Int(3))
	g.AddEdge(u, v, "owes")

	s := session.New(g, core.NewSet(r), session.Options{})
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("seed store: %d violations, want 1", s.Len())
	}
	key := s.Violations()[0].Key()
	res, err := s.PreviewRepair(key, repair.Options{})
	if err != nil {
		t.Fatalf("PreviewRepair: %v", err)
	}
	kinds := map[string]int{}
	for _, f := range res.Fixes {
		kinds[f.Kind]++
		found := false
		for _, c := range f.Clears {
			if c == key {
				found = true
			}
		}
		if !found {
			t.Fatalf("fix %s does not clear the target", f.ID)
		}
	}
	if kinds[repair.KindAttr] == 0 || kinds[repair.KindEdgeDelete] == 0 {
		t.Fatalf("fix kinds %v, want both attr and edge-delete", kinds)
	}
	var edge repair.Fix
	for _, f := range res.Fixes {
		if f.Kind == repair.KindEdgeDelete {
			edge = f
		}
	}
	if edge.Src != u || edge.Dst != v || edge.Label != "owes" {
		t.Fatalf("edge fix %+v, want delete %d-owes->%d", edge, u, v)
	}
	// attr fixes (perturb 2, same score) rank above the edge deletion
	if top, _ := res.Top(); top.Kind != repair.KindAttr {
		t.Fatalf("top fix kind %s, want attr before edge-delete on equal score", top.Kind)
	}
}

// TestCrossViolationClearance: a shared-node fix that clears two stored
// violations outranks one clearing only the target.
func TestCrossViolationClearance(t *testing.T) {
	r1 := singleNodeRule("r1", "item",
		nil, []core.Literal{core.MustLiteral("x.a <= 10")})
	r2 := singleNodeRule("r2", "item",
		nil, []core.Literal{core.MustLiteral("x.a <= 20")})
	g := graph.New()
	n := g.AddNode("item")
	g.SetAttr(n, "a", graph.Int(50))

	s := session.New(g, core.NewSet(r1, r2), session.Options{})
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("seed store: %d violations, want 2", s.Len())
	}
	key := s.Violations()[0].Key()
	res, err := s.PreviewRepair(key, repair.Options{})
	if err != nil {
		t.Fatalf("PreviewRepair: %v", err)
	}
	top, ok := res.Top()
	if !ok {
		t.Fatalf("no fixes: %+v", res)
	}
	// minimal fix for r1 alone is a=10, which also clears r2's violation
	if len(top.Clears) != 2 {
		t.Fatalf("clears %v, want both stored violations", top.Clears)
	}
	if top.Score != 2 {
		t.Fatalf("score %d, want 2", top.Score)
	}
}

// TestInfeasibleSystemIsUnrepairable: a consequent no assignment satisfies
// (x.a ≠ x.a) with no antecedent to falsify and no edges to delete yields
// ranked-empty with a reason, not a panic.
func TestInfeasibleSystemIsUnrepairable(t *testing.T) {
	r := singleNodeRule("never", "item",
		nil, []core.Literal{core.MustLiteral("x.a != x.a")})
	g := graph.New()
	n := g.AddNode("item")
	g.SetAttr(n, "a", graph.Int(1))

	v := core.Violation{Rule: r, Match: core.Match{n}}
	if !r.Violated(g, v.Match) {
		t.Fatal("setup: expected a violation")
	}
	res := repair.Enumerate(g, core.NewSet(r), nil, storeOf(v), v, repair.Options{})
	if !res.Unrepairable || len(res.Fixes) != 0 {
		t.Fatalf("want unrepairable with no fixes, got %+v", res)
	}
	if res.Reason == "" {
		t.Fatal("want a reason for unrepairability")
	}
}

// TestNonLinearRuleIsUnrepairable: a rule with a non-linear literal (only
// constructible around core.New, which rejects them) surfaces as
// unrepairable with a non-linear reason instead of panicking the solver.
func TestNonLinearRuleIsUnrepairable(t *testing.T) {
	p := pattern.New()
	p.AddNode("x", "item")
	r := &core.NGD{
		Name:    "nl",
		Pattern: p,
		Y: []core.Literal{{
			L:  expr.Mul(expr.V("x", "a"), expr.V("x", "a")),
			Op: expr.Eq,
			R:  expr.C(1),
		}},
	}
	g := graph.New()
	n := g.AddNode("item")
	g.SetAttr(n, "a", graph.Int(2))

	v := core.Violation{Rule: r, Match: core.Match{n}}
	if !r.Violated(g, v.Match) {
		t.Fatal("setup: expected a violation")
	}
	res := repair.Enumerate(g, core.NewSet(r), nil, storeOf(v), v, repair.Options{})
	if !res.Unrepairable || len(res.Fixes) != 0 {
		t.Fatalf("want unrepairable with no fixes, got %+v", res)
	}
	if !strings.Contains(res.Reason, "non-linear") {
		t.Fatalf("reason %q, want a non-linear explanation", res.Reason)
	}
}

// TestDeadlineExhaustion: a pre-expired Options.Solver.Done aborts the
// enumeration cleanly — no fixes, a budget reason, no panic.
func TestDeadlineExhaustion(t *testing.T) {
	r := singleNodeRule("disc", "item",
		[]core.Literal{core.MustLiteral("x.price >= 100")},
		[]core.Literal{core.MustLiteral("x.discount = 10")})
	g := graph.New()
	n := g.AddNode("item")
	g.SetAttr(n, "price", graph.Int(150))
	g.SetAttr(n, "discount", graph.Int(0))

	done := make(chan struct{})
	close(done)
	v := core.Violation{Rule: r, Match: core.Match{n}}
	res := repair.Enumerate(g, core.NewSet(r), nil, storeOf(v), v,
		repair.Options{Solver: solver.Options{Done: done}})
	if !res.Unrepairable || len(res.Fixes) != 0 {
		t.Fatalf("want unrepairable under an expired deadline, got %+v", res)
	}
	if res.Reason == "" {
		t.Fatal("want a deadline reason")
	}
}

// TestPreviewLeavesSessionUntouched: PreviewRepair changes neither the
// snapshot epoch nor the stored violations nor the graph's attributes.
func TestPreviewLeavesSessionUntouched(t *testing.T) {
	r := singleNodeRule("disc", "item",
		[]core.Literal{core.MustLiteral("x.price >= 100")},
		[]core.Literal{core.MustLiteral("x.discount = 10")})
	g := graph.New()
	n := g.AddNode("item")
	g.SetAttr(n, "price", graph.Int(150))
	g.SetAttr(n, "discount", graph.Int(0))

	s := session.New(g, core.NewSet(r), session.Options{})
	defer s.Close()
	before := s.Snapshot()
	key := s.Violations()[0].Key()
	if _, err := s.PreviewRepair(key, repair.Options{}); err != nil {
		t.Fatalf("PreviewRepair: %v", err)
	}
	after := s.Snapshot()
	if after.Epoch != before.Epoch {
		t.Fatalf("epoch moved %d → %d across a preview", before.Epoch, after.Epoch)
	}
	if after.Len() != before.Len() || !s.Has(key) {
		t.Fatalf("store changed across a preview: %d → %d", before.Len(), after.Len())
	}
	if got, _ := g.AttrByName(n, "discount").AsInt(); got != 0 {
		t.Fatalf("preview mutated the graph: discount = %d", got)
	}
}

// TestStaleKey: previewing a key the store does not hold errors with
// ErrNoViolation (the serving layer's 409).
func TestStaleKey(t *testing.T) {
	r := singleNodeRule("disc", "item",
		[]core.Literal{core.MustLiteral("x.price >= 100")},
		[]core.Literal{core.MustLiteral("x.discount = 10")})
	g := graph.New()
	s := session.New(g, core.NewSet(r), session.Options{})
	defer s.Close()
	if _, err := s.PreviewRepair("disc:0", repair.Options{}); err == nil {
		t.Fatal("want an error for a stale key")
	} else if !strings.Contains(err.Error(), "not in store") {
		t.Fatalf("error %v, want ErrNoViolation", err)
	}
}
