package paperdata

import (
	"testing"

	"ngd/internal/graph"
)

// TestFixtureShapes pins the Figure 1 fragments to the paper's data.
func TestFixtureShapes(t *testing.T) {
	g1, inst := G1()
	if g1.NumNodes() != 3 || g1.NumEdges() != 2 {
		t.Errorf("G1 shape: %d/%d", g1.NumNodes(), g1.NumEdges())
	}
	if name, _ := g1.AttrByName(inst, "name").AsString(); name != "BBC_Trust" {
		t.Errorf("G1 entity: %q", name)
	}

	g2, area := G2()
	if g2.NumNodes() != 4 || g2.NumEdges() != 3 {
		t.Errorf("G2 shape: %d/%d", g2.NumNodes(), g2.NumEdges())
	}
	// 600 + 722 ≠ 1572: the planted inconsistency
	var vals []int64
	for _, h := range g2.Out(area) {
		if v, ok := g2.AttrByName(h.To, "val").AsInt(); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) != 3 {
		t.Fatalf("G2 populations: %v", vals)
	}

	g4, realAcc, fakeAcc := G4()
	if g4.NumNodes() != 9 {
		t.Errorf("G4 nodes: %d", g4.NumNodes())
	}
	if realAcc == fakeAcc {
		t.Error("G4 accounts must differ")
	}

	if g3 := G3(); g3.NumNodes() != 8 {
		t.Errorf("G3 nodes: %d", g3.NumNodes())
	}
}

// TestRuleDiameters pins the pattern diameters used throughout the
// experiments (Q1/Q2 are stars of diameter 2, Q3/Q4 have diameter 4).
func TestRuleDiameters(t *testing.T) {
	if d := Q1().Diameter(); d != 2 {
		t.Errorf("Q1 diameter = %d", d)
	}
	if d := Q2().Diameter(); d != 2 {
		t.Errorf("Q2 diameter = %d", d)
	}
	if d := Q3().Diameter(); d != 4 {
		t.Errorf("Q3 diameter = %d", d)
	}
	if d := Q4().Diameter(); d != 4 {
		t.Errorf("Q4 diameter = %d", d)
	}
	if d := AllRules().Diameter(); d != 4 {
		t.Errorf("dΣ = %d", d)
	}
}

func TestMergedGraphPreservesPieces(t *testing.T) {
	g := MergedGraph()
	g1, _ := G1()
	g2, _ := G2()
	g4, _, _ := G4()
	wantNodes := g1.NumNodes() + g2.NumNodes() + G3().NumNodes() + g4.NumNodes()
	if g.NumNodes() != wantNodes {
		t.Errorf("merged nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	wantEdges := g1.NumEdges() + g2.NumEdges() + G3().NumEdges() + g4.NumEdges()
	if g.NumEdges() != wantEdges {
		t.Errorf("merged edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// attributes survive the merge
	found := false
	for v := 0; v < g.NumNodes(); v++ {
		if s, ok := g.AttrByName(graph.NodeID(v), "name").AsString(); ok && s == "NatWest" {
			found = true
		}
	}
	if !found {
		t.Error("merged graph lost the NatWest company node")
	}
}

func TestDayNumberMonotone(t *testing.T) {
	// later dates get larger day numbers; the φ1 rule depends on this
	if dayNumber(2007, 1, 1) <= dayNumber(1946, 8, 28) {
		t.Error("day numbers not monotone")
	}
	if dayNumber(2000, 3, 1)-dayNumber(2000, 2, 29) != 1 {
		t.Error("leap-day succession wrong")
	}
	if dayNumber(2001, 1, 1)-dayNumber(2000, 1, 1) != 366 {
		t.Error("2000 should have 366 days")
	}
}
