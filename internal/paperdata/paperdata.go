// Package paperdata reconstructs the running examples of Fan et al.
// (SIGMOD 2018): the graphs G1–G4 of Figure 1, the patterns Q1–Q4 of
// Figure 2, the NGDs φ1–φ4 of Example 3, and the Exp-5 rules NGD1–NGD3.
// Tests, examples and benches all share these fixtures.
package paperdata

import (
	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

// G1 is the Yago fragment: BBC_Trust created 2007 but destroyed 1946
// (dates carried as day-resolution integers on attribute "val").
// Returns the graph and the BBC_Trust node.
func G1() (*graph.Graph, graph.NodeID) {
	g := graph.New()
	inst := g.AddNode("institution")
	created := g.AddNode("date")
	destroyed := g.AddNode("date")
	// days since epoch-ish values: 2007-01-01 and 1946-08-28
	g.SetAttr(created, "val", graph.Int(dayNumber(2007, 1, 1)))
	g.SetAttr(destroyed, "val", graph.Int(dayNumber(1946, 8, 28)))
	g.SetAttr(inst, "name", graph.Str("BBC_Trust"))
	g.AddEdge(inst, created, "wasCreatedOnDate")
	g.AddEdge(inst, destroyed, "wasDestroyedOnDate")
	return g, inst
}

// Q1 is the pattern of φ1: x -wasCreatedOnDate-> y, x -wasDestroyedOnDate-> z,
// with x a wildcard and y, z dates.
func Q1() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "_")
	y := p.AddNode("y", "date")
	z := p.AddNode("z", "date")
	p.AddEdge(x, y, "wasCreatedOnDate")
	p.AddEdge(x, z, "wasDestroyedOnDate")
	return p
}

// Phi1 is φ1 = Q1[x,y,z](∅ → z.val − y.val ≥ c): an entity cannot be
// destroyed within c days of its creation.
func Phi1(c int64) *core.NGD {
	return core.MustNew("phi1", Q1(), nil, []core.Literal{
		core.Lit(expr.Sub(expr.V("z", "val"), expr.V("y", "val")), expr.Ge, expr.C(c)),
	})
}

// G2 is the Yago fragment: village Bhonpur with 600 females, 722 males,
// total population 1572. Returns the graph and the area node.
func G2() (*graph.Graph, graph.NodeID) {
	g := graph.New()
	area := g.AddNode("area")
	g.SetAttr(area, "name", graph.Str("Bhonpur"))
	f := g.AddNode("integer")
	m := g.AddNode("integer")
	t := g.AddNode("integer")
	g.SetAttr(f, "val", graph.Int(600))
	g.SetAttr(m, "val", graph.Int(722))
	g.SetAttr(t, "val", graph.Int(1572))
	g.AddEdge(area, f, "femalePopulation")
	g.AddEdge(area, m, "malePopulation")
	g.AddEdge(area, t, "populationTotal")
	return g, area
}

// Q2 is the pattern of φ2.
func Q2() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "area")
	y := p.AddNode("y", "integer")
	z := p.AddNode("z", "integer")
	w := p.AddNode("w", "integer")
	p.AddEdge(x, y, "femalePopulation")
	p.AddEdge(x, z, "malePopulation")
	p.AddEdge(x, w, "populationTotal")
	return p
}

// Phi2 is φ2 = Q2[w,x,y,z](∅ → y.val + z.val = w.val).
func Phi2() *core.NGD {
	return core.MustNew("phi2", Q2(), nil, []core.Literal{
		core.Lit(expr.Add(expr.V("y", "val"), expr.V("z", "val")), expr.Eq, expr.V("w", "val")),
	})
}

// G3 is the DBpedia fragment: Corona (population 160000, rank 33) and
// Downey (111772, rank 11) both part of California.
func G3() *graph.Graph {
	g := graph.New()
	ca := g.AddNode("place")
	g.SetAttr(ca, "name", graph.Str("California"))
	corona := g.AddNode("place")
	g.SetAttr(corona, "name", graph.Str("Corona"))
	downey := g.AddNode("place")
	g.SetAttr(downey, "name", graph.Str("Downey"))
	census := g.AddNode("date")
	g.SetAttr(census, "val", graph.Int(dayNumber(2014, 4, 1)))

	cPop := g.AddNode("integer")
	g.SetAttr(cPop, "val", graph.Int(160000))
	cRank := g.AddNode("integer")
	g.SetAttr(cRank, "val", graph.Int(33))
	dPop := g.AddNode("integer")
	g.SetAttr(dPop, "val", graph.Int(111772))
	dRank := g.AddNode("integer")
	g.SetAttr(dRank, "val", graph.Int(11))

	g.AddEdge(corona, ca, "partof")
	g.AddEdge(downey, ca, "partof")
	g.AddEdge(corona, cPop, "population")
	g.AddEdge(corona, cRank, "populationRank")
	g.AddEdge(downey, dPop, "population")
	g.AddEdge(downey, dRank, "populationRank")
	g.AddEdge(corona, census, "date")
	g.AddEdge(downey, census, "date")
	return g
}

// Q3 is the pattern of φ3: places x and y in the same area z with
// populations m1, m2, ranks n1, n2 and a shared census date w.
func Q3() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "place")
	y := p.AddNode("y", "place")
	z := p.AddNode("z", "place")
	w := p.AddNode("w", "date")
	m1 := p.AddNode("m1", "integer")
	n1 := p.AddNode("n1", "integer")
	m2 := p.AddNode("m2", "integer")
	n2 := p.AddNode("n2", "integer")
	p.AddEdge(x, z, "partof")
	p.AddEdge(y, z, "partof")
	p.AddEdge(x, m1, "population")
	p.AddEdge(x, n1, "populationRank")
	p.AddEdge(y, m2, "population")
	p.AddEdge(y, n2, "populationRank")
	p.AddEdge(x, w, "date")
	p.AddEdge(y, w, "date")
	return p
}

// Phi3 is φ3 = Q3[x̄](m1.val < m2.val → n1.val > n2.val).
func Phi3() *core.NGD {
	return core.MustNew("phi3", Q3(),
		[]core.Literal{core.Lit(expr.V("m1", "val"), expr.Lt, expr.V("m2", "val"))},
		[]core.Literal{core.Lit(expr.V("n1", "val"), expr.Gt, expr.V("n2", "val"))},
	)
}

// G4 is the Twitter fragment: real account NatWest Help (status 1,
// 75900 followers, 22000 following) and fake NatWest_Help (status 1,
// 1 follower, 2 following... per Fig. 1: follower 2, following 1),
// both keyed to company NatWest.
// Returns the graph, the real account node and the fake account node.
func G4() (*graph.Graph, graph.NodeID, graph.NodeID) {
	g := graph.New()
	company := g.AddNode("company")
	g.SetAttr(company, "name", graph.Str("NatWest"))

	real := g.AddNode("account")
	g.SetAttr(real, "name", graph.Str("NatWest Help"))
	fake := g.AddNode("account")
	g.SetAttr(fake, "name", graph.Str("NatWest_Help"))

	rs := g.AddNode("boolean")
	g.SetAttr(rs, "val", graph.Bool(true))
	rf := g.AddNode("integer")
	g.SetAttr(rf, "val", graph.Int(75900))
	rg := g.AddNode("integer")
	g.SetAttr(rg, "val", graph.Int(22000))

	fs := g.AddNode("boolean")
	g.SetAttr(fs, "val", graph.Bool(true))
	ff := g.AddNode("integer")
	g.SetAttr(ff, "val", graph.Int(2))
	fg := g.AddNode("integer")
	g.SetAttr(fg, "val", graph.Int(1))

	g.AddEdge(real, company, "keys")
	g.AddEdge(fake, company, "keys")
	g.AddEdge(real, rs, "status")
	g.AddEdge(real, rf, "follower")
	g.AddEdge(real, rg, "following")
	g.AddEdge(fake, fs, "status")
	g.AddEdge(fake, ff, "follower")
	g.AddEdge(fake, fg, "following")
	return g, real, fake
}

// Q4 is the pattern of φ4: accounts x and y keyed to the same company w,
// with status s1/s2, following m1/m2, followers n1/n2.
func Q4() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "account")
	y := p.AddNode("y", "account")
	w := p.AddNode("w", "company")
	s1 := p.AddNode("s1", "boolean")
	m1 := p.AddNode("m1", "integer")
	n1 := p.AddNode("n1", "integer")
	s2 := p.AddNode("s2", "boolean")
	m2 := p.AddNode("m2", "integer")
	n2 := p.AddNode("n2", "integer")
	p.AddEdge(x, w, "keys")
	p.AddEdge(y, w, "keys")
	p.AddEdge(x, s1, "status")
	p.AddEdge(x, m1, "following")
	p.AddEdge(x, n1, "follower")
	p.AddEdge(y, s2, "status")
	p.AddEdge(y, m2, "following")
	p.AddEdge(y, n2, "follower")
	return p
}

// Phi4 is φ4 = Q4[x̄]({s1.val = 1, a×(m1.val−m2.val) + b×(n1.val−n2.val) > c}
// → s2.val = 0): if the weighted follower/following gap between a real
// account x and y exceeds c, then y should be marked fake.
func Phi4(a, b, c int64) *core.NGD {
	gap := expr.Add(
		expr.Mul(expr.C(a), expr.Sub(expr.V("m1", "val"), expr.V("m2", "val"))),
		expr.Mul(expr.C(b), expr.Sub(expr.V("n1", "val"), expr.V("n2", "val"))),
	)
	return core.MustNew("phi4", Q4(),
		[]core.Literal{
			core.Lit(expr.V("s1", "val"), expr.Eq, expr.C(1)),
			core.Lit(gap, expr.Gt, expr.C(c)),
		},
		[]core.Literal{core.Lit(expr.V("s2", "val"), expr.Eq, expr.C(0))},
	)
}

// dayNumber converts a calendar date to a day count (proleptic Gregorian,
// days since 0000-03-01); only differences matter for the rules.
func dayNumber(y, m, d int) int64 {
	if m <= 2 {
		y--
		m += 12
	}
	era := y / 400
	yoe := y - era*400
	doy := (153*(m-3)+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int64(era)*146097 + int64(doe)
}

// AllRules returns {φ1(c=365), φ2, φ3, φ4(1,1,10000)} as a Σ.
func AllRules() *core.Set {
	return core.NewSet(Phi1(365), Phi2(), Phi3(), Phi4(1, 1, 10000))
}

// MergedGraph unions G1–G4 into a single graph (fresh node ids, shared
// symbol table) so one Σ can be validated against all four at once.
func MergedGraph() *graph.Graph {
	g := graph.New()
	add := func(src *graph.Graph) {
		offset := graph.NodeID(g.NumNodes())
		for v := 0; v < src.NumNodes(); v++ {
			id := g.AddNode(src.LabelName(graph.NodeID(v)))
			src.Attrs(graph.NodeID(v), func(a graph.AttrID, val graph.Value) {
				g.SetAttr(id, src.Symbols().AttrName(a), val)
			})
		}
		for v := 0; v < src.NumNodes(); v++ {
			for _, h := range src.Out(graph.NodeID(v)) {
				g.AddEdge(offset+graph.NodeID(v), offset+h.To, src.Symbols().LabelName(h.Label))
			}
		}
	}
	g1, _ := G1()
	g2, _ := G2()
	g4, _, _ := G4()
	add(g1)
	add(g2)
	add(G3())
	add(g4)
	return g
}
