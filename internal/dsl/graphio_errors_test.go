package dsl

// Table-driven malformed-input coverage for the graph/update loaders:
// every rejection must name the 1-based line it arose on (comments and
// blank lines still count toward numbering), so an operator staring at a
// million-line ingest file gets a usable pointer, and the message must
// identify the offending token where there is one.

import (
	"strings"
	"testing"

	"ngd/internal/graph"
)

func TestLoadGraphErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []string // substrings the error must contain
	}{
		{
			name:  "node missing label",
			input: "# header comment\nnode a person\nnode b",
			want:  []string{"line 3", "node needs id and label"},
		},
		{
			name:  "duplicate node id",
			input: "node a person\n\nnode a person",
			want:  []string{"line 3", `duplicate node id "a"`},
		},
		{
			name:  "edge arity",
			input: "node a person\nedge a knows",
			want:  []string{"line 2", "edge needs"},
		},
		{
			name:  "edge unknown src",
			input: "node a person\n# comment\nedge ghost knows a",
			want:  []string{"line 3", `unknown node "ghost"`},
		},
		{
			name:  "edge unknown dst",
			input: "node a person\nedge a knows phantom",
			want:  []string{"line 2", `unknown node "phantom"`},
		},
		{
			name:  "unknown directive",
			input: "node a person\nvertex b person",
			want:  []string{"line 2", `unknown directive "vertex"`},
		},
		{
			name:  "attribute without equals",
			input: "node a person age",
			want:  []string{"line 1", `bad attribute "age"`},
		},
		{
			name:  "attribute with empty value",
			input: "node a person\nnode b person age=",
			want:  []string{"line 2", "empty value"},
		},
		{
			name:  "attribute with unterminated string",
			input: "node a person name=\"unterminated",
			want:  []string{"line 1", "bad string value"},
		},
		{
			name:  "scanner overflow",
			input: "node a person\nnode b person name=\"" + strings.Repeat("x", 5*1024*1024) + "\"",
			want:  []string{"line 2", "too long"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := LoadGraph(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("malformed input accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not contain %q", err, w)
				}
			}
		})
	}
}

func TestLoadDeltaErrorsCarryLineNumbers(t *testing.T) {
	base := "node a person\nnode b person\nedge a knows b\n"
	cases := []struct {
		name  string
		input string
		want  []string
	}{
		{
			name:  "insert arity",
			input: "insert a knows",
			want:  []string{"line 1", "insert needs"},
		},
		{
			name:  "delete arity",
			input: "# leading comment\ndelete a",
			want:  []string{"line 2", "delete needs"},
		},
		{
			name:  "insert unknown src",
			input: "\ninsert ghost knows b",
			want:  []string{"line 2", `insert references unknown node "ghost"`},
		},
		{
			name:  "delete unknown dst",
			input: "delete a knows phantom",
			want:  []string{"line 1", `delete references unknown node "phantom"`},
		},
		{
			name:  "duplicate inline node",
			input: "node c person\nnode c person",
			want:  []string{"line 2", `duplicate node id "c"`},
		},
		{
			name:  "redeclared base node",
			input: "insert a knows b\nnode a person",
			want:  []string{"line 2", `duplicate node id "a"`},
		},
		{
			name:  "unknown directive",
			input: "insert a knows b\nupsert a knows b",
			want:  []string{"line 2", `unknown directive "upsert"`},
		},
		{
			name:  "inline node bad attribute",
			input: "node c person age=notanumber!",
			want:  []string{"line 1", "cannot parse value"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, ids, err := LoadGraph(strings.NewReader(base))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadDelta(strings.NewReader(tc.input), g, ids); err == nil {
				t.Fatal("malformed update accepted")
			} else {
				for _, w := range tc.want {
					if !strings.Contains(err.Error(), w) {
						t.Errorf("error %q does not contain %q", err, w)
					}
				}
			}
		})
	}
}

// TestLoadGraphLineNumbersCountEveryLine pins the numbering convention:
// blank lines and comments advance the count, so reported numbers match
// what an editor shows.
func TestLoadGraphLineNumbersCountEveryLine(t *testing.T) {
	input := "\n\n# three header lines\n\nnode a person\nbroken"
	_, _, err := LoadGraph(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("error %v, want a line 6 reference", err)
	}
}

// TestLoadDeltaAddsInlineNodes guards the happy path around the error
// table: inline node declarations land on the graph with their attributes
// before the delta is returned.
func TestLoadDeltaAddsInlineNodes(t *testing.T) {
	g, ids, err := LoadGraph(strings.NewReader("node a person\n"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := LoadDelta(strings.NewReader("node c place pop=12\ninsert a born_in c\n"), g, ids)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := ids["c"]
	if !ok || g.LabelName(c) != "place" {
		t.Fatalf("inline node not registered: %v", ids)
	}
	if v := g.AttrByName(c, "pop"); !v.Equal(graph.Int(12)) {
		t.Errorf("inline node attr = %s", v)
	}
	if d.Len() != 1 || !d.Ops[0].Insert {
		t.Errorf("delta = %+v", d.Ops)
	}
}
