package dsl

import (
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/paperdata"
	"ngd/internal/update"
)

const phi1Text = `
# φ1 from the paper
rule phi1 {
  match {
    x: _
    y: date
    z: date
    x -wasCreatedOnDate-> y
    x -wasDestroyedOnDate-> z
  }
  when {
  }
  then {
    z.val - y.val >= 365
  }
}
`

func TestParseRules(t *testing.T) {
	set, err := ParseRules(strings.NewReader(phi1Text))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("parsed %d rules, want 1", set.Len())
	}
	r := set.Rules[0]
	if r.Name != "phi1" || len(r.Pattern.Nodes) != 3 || len(r.Pattern.Edges) != 2 {
		t.Fatalf("rule shape wrong: %s", r)
	}
	if len(r.X) != 0 || len(r.Y) != 1 {
		t.Fatalf("literal counts wrong: X=%d Y=%d", len(r.X), len(r.Y))
	}
	// parsed rule behaves like the programmatic φ1
	g1, _ := paperdata.G1()
	if detect.Validate(g1, set) {
		t.Error("parsed φ1 does not catch the G1 error")
	}
}

func TestRulesRoundTrip(t *testing.T) {
	orig := paperdata.AllRules()
	text := FormatRules(orig)
	parsed, err := ParseRules(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("round trip lost rules: %d vs %d", parsed.Len(), orig.Len())
	}
	// behavioral equivalence on the merged paper graph
	g := paperdata.MergedGraph()
	vo := detect.Dect(g, orig, detect.Options{})
	vp := detect.Dect(g, parsed, detect.Options{})
	if len(vo.Violations) != len(vp.Violations) {
		t.Fatalf("round-tripped rules find %d violations, original %d",
			len(vp.Violations), len(vo.Violations))
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"rule {",                                              // missing name
		"rule r {\n match {\n x y\n}\n}",                      // bad node line
		"rule r {\n match {\n x: a\n x: b\n}\n}",              // dup var
		"rule r {\n match {\n x: a\n x -e-> y\n}\n}",          // undeclared y
		"rule r {\n bogus {\n}\n}",                            // unknown section
		"rule r {\n match {\n x: a\n}\n then {\n x.v <\n}\n}", // bad literal
		"rule r {\n match {\n x: a\n}",                        // EOF
	}
	for _, src := range bad {
		if _, err := ParseRules(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid rule file %q", src)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := paperdata.MergedGraph()
	var sb strings.Builder
	if err := WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// violations identical
	rules := paperdata.AllRules()
	v1 := detect.Dect(g, rules, detect.Options{})
	v2 := detect.Dect(g2, rules, detect.Options{})
	if len(v1.Violations) != len(v2.Violations) {
		t.Fatalf("round-tripped graph yields %d violations, original %d",
			len(v2.Violations), len(v1.Violations))
	}
}

func TestGraphWithQuotedStrings(t *testing.T) {
	src := `
node a category name="living people"
node b person name="John \"Mac\" P" year=1713
edge b category a
`
	g, ids, err := LoadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	name := g.AttrByName(ids["a"], "name")
	if s, _ := name.AsString(); s != "living people" {
		t.Errorf("quoted attr = %q", s)
	}
	if s, _ := g.AttrByName(ids["b"], "name").AsString(); s != `John "Mac" P` {
		t.Errorf("escaped attr = %q", s)
	}
	if v, _ := g.AttrByName(ids["b"], "year").AsInt(); v != 1713 {
		t.Errorf("int attr = %d", v)
	}
}

func TestGraphErrors(t *testing.T) {
	bad := []string{
		"node a",             // missing label
		"node a l\nnode a l", // dup id
		"edge a e b",         // unknown nodes
		"frob x y z",         // unknown directive
		"node a l bad-attr",  // attr without '='
		"node a l x=",        // empty value
	}
	for _, src := range bad {
		if _, _, err := LoadGraph(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid graph %q", src)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 100, 4)
	d := update.Random(ds, update.Config{Size: 40, Gamma: 1, Seed: 5})

	// write graph (after delta generation: it may add nodes) and delta
	var gb, db strings.Builder
	if err := WriteGraph(&gb, ds.G); err != nil {
		t.Fatal(err)
	}
	if err := WriteDelta(&db, ds.G, d); err != nil {
		t.Fatal(err)
	}
	g2, ids, err := LoadGraph(strings.NewReader(gb.String()))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDelta(strings.NewReader(db.String()), g2, ids)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("delta round trip: %d ops vs %d", d2.Len(), d.Len())
	}
	// applying both yields graphs with equal violation sets
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 4})
	a1 := graph.NewOverlay(ds.G, d.Normalize(ds.G))
	a2 := graph.NewOverlay(g2, d2.Normalize(g2))
	v1 := detect.Dect(a1, rules, detect.Options{})
	v2 := detect.Dect(a2, rules, detect.Options{})
	if len(v1.Violations) != len(v2.Violations) {
		t.Fatalf("delta round trip changes results: %d vs %d",
			len(v1.Violations), len(v2.Violations))
	}
}

var _ = core.NewSet // keep the import if helper use changes
