package dsl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ngd/internal/graph"
)

// Graph file format, line oriented ('#' comments):
//
//	node <id> <label> [attr=value ...]
//	edge <srcid> <label> <dstid>
//
// Update file format (applies against a previously loaded graph; new nodes
// may be declared inline):
//
//	node <id> <label> [attr=value ...]
//	insert <srcid> <label> <dstid>
//	delete <srcid> <label> <dstid>
//
// ids are arbitrary tokens without whitespace; string attribute values are
// Go-quoted.

// LoadGraph reads the graph format. It returns the graph and the id→node
// mapping (useful for later update files).
func LoadGraph(r io.Reader) (*graph.Graph, map[string]graph.NodeID, error) {
	g := graph.New()
	ids := make(map[string]graph.NodeID)
	err := scanLines(r, func(line int, fields []string) error {
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return fmt.Errorf("line %d: node needs id and label", line)
			}
			if _, dup := ids[fields[1]]; dup {
				return fmt.Errorf("line %d: duplicate node id %q", line, fields[1])
			}
			v := g.AddNode(fields[2])
			ids[fields[1]] = v
			for _, kv := range fields[3:] {
				if err := setAttr(g, v, kv); err != nil {
					return fmt.Errorf("line %d: %v", line, err)
				}
			}
		case "edge":
			if len(fields) != 4 {
				return fmt.Errorf("line %d: edge needs `edge src label dst`", line)
			}
			src, ok1 := ids[fields[1]]
			dst, ok2 := ids[fields[3]]
			if !ok1 {
				return fmt.Errorf("line %d: edge references unknown node %q", line, fields[1])
			}
			if !ok2 {
				return fmt.Errorf("line %d: edge references unknown node %q", line, fields[3])
			}
			g.AddEdge(src, dst, fields[2])
		default:
			return fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}

// LoadDelta reads an update file against g, adding any declared new nodes
// to g and returning the edge delta.
func LoadDelta(r io.Reader, g *graph.Graph, ids map[string]graph.NodeID) (*graph.Delta, error) {
	d := &graph.Delta{}
	err := scanLines(r, func(line int, fields []string) error {
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return fmt.Errorf("line %d: node needs id and label", line)
			}
			if _, dup := ids[fields[1]]; dup {
				return fmt.Errorf("line %d: duplicate node id %q", line, fields[1])
			}
			v := g.AddNode(fields[2])
			ids[fields[1]] = v
			for _, kv := range fields[3:] {
				if err := setAttr(g, v, kv); err != nil {
					return fmt.Errorf("line %d: %v", line, err)
				}
			}
		case "insert", "delete":
			if len(fields) != 4 {
				return fmt.Errorf("line %d: %s needs `src label dst`", line, fields[0])
			}
			src, ok1 := ids[fields[1]]
			dst, ok2 := ids[fields[3]]
			if !ok1 {
				return fmt.Errorf("line %d: %s references unknown node %q", line, fields[0], fields[1])
			}
			if !ok2 {
				return fmt.Errorf("line %d: %s references unknown node %q", line, fields[0], fields[3])
			}
			l := g.Symbols().Label(fields[2])
			if fields[0] == "insert" {
				d.Insert(src, dst, l)
			} else {
				d.Delete(src, dst, l)
			}
		default:
			return fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// WriteGraph renders g in the graph format with node ids "n<index>".
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "node n%d %s", v, g.LabelName(graph.NodeID(v)))
		g.Attrs(graph.NodeID(v), func(a graph.AttrID, val graph.Value) {
			fmt.Fprintf(bw, " %s=%s", g.Symbols().AttrName(a), val)
		})
		fmt.Fprintln(bw)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, h := range g.Out(graph.NodeID(v)) {
			fmt.Fprintf(bw, "edge n%d %s n%d\n", v, g.Symbols().LabelName(h.Label), h.To)
		}
	}
	return bw.Flush()
}

// WriteDelta renders d in the update format (nodes are assumed present).
func WriteDelta(w io.Writer, g *graph.Graph, d *graph.Delta) error {
	bw := bufio.NewWriter(w)
	for _, op := range d.Ops {
		verb := "delete"
		if op.Insert {
			verb = "insert"
		}
		fmt.Fprintf(bw, "%s n%d %s n%d\n", verb, op.Src, g.Symbols().LabelName(op.Label), op.Dst)
	}
	return bw.Flush()
}

func setAttr(g *graph.Graph, v graph.NodeID, kv string) error {
	i := strings.IndexByte(kv, '=')
	if i <= 0 {
		return fmt.Errorf("bad attribute %q (want name=value)", kv)
	}
	val, err := graph.ParseValue(kv[i+1:])
	if err != nil {
		return err
	}
	g.SetAttr(v, kv[:i], val)
	return nil
}

// scanLines tokenizes non-empty, non-comment lines. Quoted strings in
// attribute values survive because fields are split on spaces outside
// quotes. Every error — directive errors from fn and scanner failures
// alike — carries the 1-based line number it arose on.
func scanLines(r io.Reader, fn func(line int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' {
			continue
		}
		fields := splitQuoted(s)
		if len(fields) == 0 {
			continue
		}
		if err := fn(line, fields); err != nil {
			return fmt.Errorf("dsl: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		// the scanner failed on the line after the last one it delivered
		// (e.g. a line longer than the buffer cap, or a read error)
		return fmt.Errorf("dsl: line %d: %v", line+1, err)
	}
	return nil
}

// splitQuoted splits on whitespace, keeping double-quoted spans (with
// backslash escapes) intact.
func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	esc := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case esc:
			cur.WriteRune(r)
			esc = false
		case r == '\\' && inQ:
			cur.WriteRune(r)
			esc = true
		case r == '"':
			cur.WriteRune(r)
			inQ = !inQ
		case (r == ' ' || r == '\t') && !inQ:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
