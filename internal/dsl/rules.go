// Package dsl implements the textual formats of the library: a rule file
// format for NGDs and a line-oriented graph/update format, so rule sets and
// datasets can live outside Go code (cmd/ngdcheck, cmd/ngdgen consume them).
//
// Rule syntax (one or more rules per file; '#' starts a comment):
//
//	rule phi1 {
//	  match {
//	    x: _
//	    y: date
//	    z: date
//	    x -wasCreatedOnDate-> y
//	    x -wasDestroyedOnDate-> z
//	  }
//	  when {
//	    # X literals, one per line (may be empty)
//	  }
//	  then {
//	    z.val - y.val >= 365
//	  }
//	}
package dsl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ngd/internal/core"
	"ngd/internal/pattern"
)

// ParseRules reads a rule file.
func ParseRules(r io.Reader) (*core.Set, error) {
	set, _, err := ParseRulesLocated(r)
	return set, err
}

// ParseRulesLocated reads a rule file and additionally returns the source
// line number of each rule's header, keyed by rule name — the analysis gate
// attaches them to its diagnostics so an operator can jump to the offending
// rule.
func ParseRulesLocated(r io.Reader) (*core.Set, map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	set := core.NewSet()
	lines := make(map[string]int)
	line := 0

	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if i := strings.IndexByte(s, '#'); i >= 0 {
				s = strings.TrimSpace(s[:i])
			}
			if s == "" {
				continue
			}
			return s, true
		}
		return "", false
	}

	for {
		s, ok := next()
		if !ok {
			break
		}
		name, err := parseRuleHeader(s, line)
		if err != nil {
			return nil, nil, err
		}
		lines[name] = line
		rule, err := parseRuleBody(name, next, &line)
		if err != nil {
			return nil, nil, err
		}
		set.Add(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return set, lines, nil
}

func parseRuleHeader(s string, line int) (string, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 || fields[0] != "rule" || fields[2] != "{" {
		return "", fmt.Errorf("dsl: line %d: expected `rule <name> {`, got %q", line, s)
	}
	return fields[1], nil
}

func parseRuleBody(name string, next func() (string, bool), line *int) (*core.NGD, error) {
	p := pattern.New()
	var xLits, yLits []core.Literal
	section := ""
	for {
		s, ok := next()
		if !ok {
			return nil, fmt.Errorf("dsl: rule %s: unexpected EOF", name)
		}
		switch {
		case s == "}":
			if section == "" {
				// end of rule
				rule, err := core.New(name, p, xLits, yLits)
				if err != nil {
					return nil, fmt.Errorf("dsl: line %d: %w", *line, err)
				}
				return rule, nil
			}
			section = ""
		case strings.HasSuffix(s, "{"):
			section = strings.TrimSpace(strings.TrimSuffix(s, "{"))
			switch section {
			case "match", "when", "then":
			default:
				return nil, fmt.Errorf("dsl: line %d: unknown section %q", *line, section)
			}
		default:
			switch section {
			case "match":
				if err := parsePatternLine(p, s); err != nil {
					return nil, fmt.Errorf("dsl: line %d: %w", *line, err)
				}
			case "when", "then":
				lit, err := core.ParseLiteral(s)
				if err != nil {
					return nil, fmt.Errorf("dsl: line %d: %w", *line, err)
				}
				if section == "when" {
					xLits = append(xLits, lit)
				} else {
					yLits = append(yLits, lit)
				}
			default:
				return nil, fmt.Errorf("dsl: line %d: statement outside a section: %q", *line, s)
			}
		}
	}
}

// parsePatternLine handles "x: label" node declarations and
// "x -label-> y" edges.
func parsePatternLine(p *pattern.Pattern, s string) error {
	if i := strings.Index(s, "->"); i >= 0 {
		// x -label-> y
		left := strings.TrimSpace(s[:i])
		dst := strings.TrimSpace(s[i+2:])
		j := strings.Index(left, "-")
		if j < 0 {
			return fmt.Errorf("dsl: bad edge %q (want `x -label-> y`)", s)
		}
		src := strings.TrimSpace(left[:j])
		label := strings.TrimSpace(left[j+1:])
		if src == "" || label == "" || dst == "" {
			return fmt.Errorf("dsl: bad edge %q", s)
		}
		si := p.VarIndex(src)
		di := p.VarIndex(dst)
		if si < 0 {
			return fmt.Errorf("dsl: edge %q references undeclared variable %q", s, src)
		}
		if di < 0 {
			return fmt.Errorf("dsl: edge %q references undeclared variable %q", s, dst)
		}
		p.AddEdge(si, di, label)
		return nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return fmt.Errorf("dsl: bad pattern line %q (want `x: label` or `x -label-> y`)", s)
	}
	v := strings.TrimSpace(s[:i])
	label := strings.TrimSpace(s[i+1:])
	if v == "" || label == "" {
		return fmt.Errorf("dsl: bad node declaration %q", s)
	}
	if p.VarIndex(v) >= 0 {
		return fmt.Errorf("dsl: duplicate variable %q", v)
	}
	p.AddNode(v, label)
	return nil
}

// FormatRules renders a rule set in the file format (re-parseable).
func FormatRules(set *core.Set) string {
	var b strings.Builder
	for _, r := range set.Rules {
		fmt.Fprintf(&b, "rule %s {\n  match {\n", r.Name)
		for _, n := range r.Pattern.Nodes {
			fmt.Fprintf(&b, "    %s: %s\n", n.Var, n.Label)
		}
		for _, e := range r.Pattern.Edges {
			fmt.Fprintf(&b, "    %s -%s-> %s\n",
				r.Pattern.Nodes[e.Src].Var, e.Label, r.Pattern.Nodes[e.Dst].Var)
		}
		b.WriteString("  }\n  when {\n")
		for _, l := range r.X {
			fmt.Fprintf(&b, "    %s\n", l)
		}
		b.WriteString("  }\n  then {\n")
		for _, l := range r.Y {
			fmt.Fprintf(&b, "    %s\n", l)
		}
		b.WriteString("  }\n}\n")
	}
	return b.String()
}
