package solver

import (
	"math/big"
	"math/rand"
	"testing"
)

func r(n, d int64) *big.Rat { return big.NewRat(n, d) }

func cons(rel Rel, rhs *big.Rat, terms ...any) Constraint {
	// terms: var, coef, var, coef, ...
	var c Constraint
	for i := 0; i < len(terms); i += 2 {
		c.Vars = append(c.Vars, terms[i].(int))
		c.Coef = append(c.Coef, terms[i+1].(*big.Rat))
	}
	c.Rel = rel
	c.RHS = rhs
	return c
}

func checkSolution(t *testing.T, s *System, asg []*big.Rat) {
	t.Helper()
	if len(asg) != s.NumVars {
		t.Fatalf("assignment has %d vars, want %d", len(asg), s.NumVars)
	}
	for _, c := range s.Cons {
		lhs := new(big.Rat)
		for i, v := range c.Vars {
			lhs.Add(lhs, new(big.Rat).Mul(c.Coef[i], asg[v]))
		}
		sign := lhs.Cmp(c.RHS)
		ok := false
		switch c.Rel {
		case Le:
			ok = sign <= 0
		case Ge:
			ok = sign >= 0
		case Eq:
			ok = sign == 0
		case Lt:
			ok = sign < 0
		case Gt:
			ok = sign > 0
		case Ne:
			ok = sign != 0
		}
		if !ok {
			t.Errorf("solution violates %v (lhs=%v)", c, lhs.RatString())
		}
	}
	if s.Integer {
		for i, v := range asg {
			if !v.IsInt() {
				t.Errorf("x%d = %v not integral", i, v.RatString())
			}
		}
	}
}

func TestSimpleFeasible(t *testing.T) {
	// x + y = 11, x = 7 → y = 4
	s := &System{NumVars: 2, Integer: true, Cons: []Constraint{
		cons(Eq, r(11, 1), 0, r(1, 1), 1, r(1, 1)),
		cons(Eq, r(7, 1), 0, r(1, 1)),
	}}
	st, asg := s.Solve(Options{})
	if st != Feasible {
		t.Fatalf("status = %v", st)
	}
	checkSolution(t, s, asg)
	if asg[1].Cmp(r(4, 1)) != 0 {
		t.Errorf("y = %v, want 4", asg[1].RatString())
	}
}

func TestPaperExample5Phi5Phi6(t *testing.T) {
	// Example 5: A = 7, B = 7, A + B = 11 is infeasible
	s := &System{NumVars: 2, Integer: true, Cons: []Constraint{
		cons(Eq, r(7, 1), 0, r(1, 1)),
		cons(Eq, r(7, 1), 1, r(1, 1)),
		cons(Eq, r(11, 1), 0, r(1, 1), 1, r(1, 1)),
	}}
	if st, _ := s.Solve(Options{}); st != Infeasible {
		t.Fatalf("φ5 ∧ φ6 system should be infeasible, got %v", st)
	}
}

func TestStrictAndNegative(t *testing.T) {
	// x < 3, x > -2, integer → x ∈ {-1, 0, 1, 2}
	s := &System{NumVars: 1, Integer: true, Cons: []Constraint{
		cons(Lt, r(3, 1), 0, r(1, 1)),
		cons(Gt, r(-2, 1), 0, r(1, 1)),
	}}
	st, asg := s.Solve(Options{})
	if st != Feasible {
		t.Fatalf("status = %v", st)
	}
	checkSolution(t, s, asg)

	// x < 3, x > 2 over integers: empty
	s2 := &System{NumVars: 1, Integer: true, Cons: []Constraint{
		cons(Lt, r(3, 1), 0, r(1, 1)),
		cons(Gt, r(2, 1), 0, r(1, 1)),
	}}
	if st, _ := s2.Solve(Options{}); st != Infeasible {
		t.Fatalf("2 < x < 3 over ℤ should be infeasible, got %v", st)
	}
	// but over rationals it is feasible
	s3 := &System{NumVars: 1, Integer: false, Cons: s2.Cons}
	if st, _ := s3.Solve(Options{}); st != Feasible {
		t.Fatalf("2 < x < 3 over ℚ should be feasible, got %v", st)
	}
}

func TestRationalCoefficientsStrict(t *testing.T) {
	// x/2 < 3/4 over ℤ: x ≤ 1 (regression: naive ⌈r⌉−1 over-tightens)
	s := &System{NumVars: 1, Integer: true, Cons: []Constraint{
		cons(Lt, r(3, 4), 0, r(1, 2)),
		cons(Ge, r(1, 1), 0, r(1, 1)), // force x ≥ 1 so only x=1 remains
	}}
	st, asg := s.Solve(Options{})
	if st != Feasible {
		t.Fatalf("x/2 < 3/4 ∧ x ≥ 1 should be feasible (x=1), got %v", st)
	}
	checkSolution(t, s, asg)
	if asg[0].Cmp(r(1, 1)) != 0 {
		t.Errorf("x = %v, want 1", asg[0].RatString())
	}
}

func TestNotEqualBranching(t *testing.T) {
	// x ≠ 0, 0 ≤ x ≤ 1 → x = 1 over ℤ
	s := &System{NumVars: 1, Integer: true, Cons: []Constraint{
		cons(Ne, r(0, 1), 0, r(1, 1)),
		cons(Ge, r(0, 1), 0, r(1, 1)),
		cons(Le, r(1, 1), 0, r(1, 1)),
	}}
	st, asg := s.Solve(Options{})
	if st != Feasible {
		t.Fatalf("status = %v", st)
	}
	checkSolution(t, s, asg)
	if asg[0].Cmp(r(1, 1)) != 0 {
		t.Errorf("x = %v, want 1", asg[0].RatString())
	}

	// x ≠ 0 ∧ x = 0: infeasible
	s2 := &System{NumVars: 1, Integer: true, Cons: []Constraint{
		cons(Ne, r(0, 1), 0, r(1, 1)),
		cons(Eq, r(0, 1), 0, r(1, 1)),
	}}
	if st, _ := s2.Solve(Options{}); st != Infeasible {
		t.Fatalf("x≠0 ∧ x=0 should be infeasible, got %v", st)
	}
}

func TestIntegerGap(t *testing.T) {
	// 2x = 1: rational-feasible, integer-infeasible
	s := &System{NumVars: 1, Integer: true, Cons: []Constraint{
		cons(Eq, r(1, 1), 0, r(2, 1)),
	}}
	if st, _ := s.Solve(Options{}); st != Infeasible {
		t.Fatalf("2x=1 over ℤ should be infeasible, got %v", st)
	}
	s.Integer = false
	st, asg := s.Solve(Options{})
	if st != Feasible || asg[0].Cmp(r(1, 2)) != 0 {
		t.Fatalf("2x=1 over ℚ: %v %v", st, asg)
	}
}

func TestUnboundedDirections(t *testing.T) {
	// x - y = 1000000 with free vars: feasible (splitting handles sign)
	s := &System{NumVars: 2, Integer: true, Cons: []Constraint{
		cons(Eq, r(1000000, 1), 0, r(1, 1), 1, r(-1, 1)),
		cons(Le, r(-5, 1), 1, r(1, 1)), // y ≤ -5
	}}
	st, asg := s.Solve(Options{})
	if st != Feasible {
		t.Fatalf("status = %v", st)
	}
	checkSolution(t, s, asg)
}

func TestEmptySystem(t *testing.T) {
	s := &System{NumVars: 3, Integer: true}
	st, asg := s.Solve(Options{})
	if st != Feasible || len(asg) != 3 {
		t.Fatalf("empty system: %v %v", st, asg)
	}
}

// TestRandomSoundness: whenever the solver claims Feasible, the returned
// assignment must satisfy the system (soundness is checkable; completeness
// is cross-checked on small boxes by brute force).
func TestRandomSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(3)
		s := &System{NumVars: nv, Integer: true}
		// box the variables so brute force is possible
		for v := 0; v < nv; v++ {
			s.Cons = append(s.Cons,
				cons(Ge, r(-4, 1), v, r(1, 1)),
				cons(Le, r(4, 1), v, r(1, 1)))
		}
		nc := 1 + rng.Intn(4)
		for i := 0; i < nc; i++ {
			var vars []int
			var coef []*big.Rat
			for v := 0; v < nv; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
					coef = append(coef, r(int64(rng.Intn(7)-3), 1))
				}
			}
			if len(vars) == 0 {
				continue
			}
			rel := Rel(rng.Intn(6))
			s.Cons = append(s.Cons, Constraint{Vars: vars, Coef: coef, Rel: rel, RHS: r(int64(rng.Intn(11)-5), 1)})
		}
		st, asg := s.Solve(Options{})
		switch st {
		case Feasible:
			checkSolution(t, s, asg)
		case Infeasible:
			// brute force over the box
			if bruteFeasible(s, nv) {
				t.Fatalf("trial %d: solver says infeasible but brute force found a solution\n%v", trial, s.Cons)
			}
		}
	}
}

func bruteFeasible(s *System, nv int) bool {
	asg := make([]*big.Rat, nv)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == nv {
			for _, c := range s.Cons {
				lhs := new(big.Rat)
				for i, vv := range c.Vars {
					lhs.Add(lhs, new(big.Rat).Mul(c.Coef[i], asg[vv]))
				}
				sign := lhs.Cmp(c.RHS)
				ok := false
				switch c.Rel {
				case Le:
					ok = sign <= 0
				case Ge:
					ok = sign >= 0
				case Eq:
					ok = sign == 0
				case Lt:
					ok = sign < 0
				case Gt:
					ok = sign > 0
				case Ne:
					ok = sign != 0
				}
				if !ok {
					return false
				}
			}
			return true
		}
		for x := int64(-4); x <= 4; x++ {
			asg[v] = r(x, 1)
			if rec(v + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}
