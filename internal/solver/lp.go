package solver

import "math/big"

// lpFeasible decides rational feasibility of a conjunction of ≤ constraints
// over free (unbounded) variables with an exact two-phase simplex.
//
// Free variables are split x = x⁺ − x⁻ (x± ≥ 0); every row gets a slack;
// rows with negative right-hand sides are flipped and given artificial
// variables; phase 1 minimizes the artificial sum with Bland's rule (which
// cannot cycle). Feasible iff the phase-1 optimum is zero; the witness
// assignment is read off the final basis.
//
// done, when non-nil, aborts the pivot loop once closed (polled every 32
// pivots — a pivot over a large exact-rational tableau can cost
// milliseconds, so this is where wall-clock deadlines bite). An aborted
// run returns aborted=true and the other results are meaningless.
func lpFeasible(numVars int, cons []Constraint, done <-chan struct{}) (asg []*big.Rat, feasible, aborted bool) {
	m := len(cons)
	if m == 0 {
		out := make([]*big.Rat, numVars)
		for i := range out {
			out[i] = new(big.Rat)
		}
		return out, true, false
	}
	// columns: 2*numVars split vars, m slacks, up to m artificials
	nSplit := 2 * numVars
	nCols := nSplit + m // artificials appended below
	rows := make([][]*big.Rat, m)
	rhs := make([]*big.Rat, m)
	basis := make([]int, m)

	zero := new(big.Rat)
	newRow := func(n int) []*big.Rat {
		r := make([]*big.Rat, n)
		for i := range r {
			r[i] = new(big.Rat)
		}
		return r
	}

	var artCols []int
	for i, c := range cons {
		row := newRow(nSplit + m)
		for k, v := range c.Vars {
			co := c.Coef[k]
			row[2*v].Add(row[2*v], co)
			row[2*v+1].Sub(row[2*v+1], co)
		}
		b := new(big.Rat).Set(c.RHS)
		slack := nSplit + i
		row[slack].SetInt64(1)
		if b.Sign() < 0 {
			// flip the row so b ≥ 0; slack coefficient becomes −1, so an
			// artificial variable is required
			for j := range row {
				row[j].Neg(row[j])
			}
			b.Neg(b)
			artCols = append(artCols, i)
			basis[i] = -1 // assigned after artificial columns exist
		} else {
			basis[i] = slack
		}
		rows[i] = row
		rhs[i] = b
	}
	// append artificial columns
	nArt := len(artCols)
	nTotal := nCols + nArt
	for i := range rows {
		ext := newRow(nArt)
		rows[i] = append(rows[i], ext...)
	}
	for k, i := range artCols {
		col := nCols + k
		rows[i][col].SetInt64(1)
		basis[i] = col
	}
	if nArt == 0 {
		// already feasible at the slack basis: all original vars zero
		out := make([]*big.Rat, numVars)
		for i := range out {
			out[i] = new(big.Rat)
		}
		// need rhs ≥ 0 for all rows, which holds by construction here
		return out, true, false
	}

	// phase-1 objective: minimize Σ artificials. Reduced-cost row starts as
	// −Σ (rows with artificial basis); objective value −Σ rhs of those rows.
	obj := newRow(nTotal)
	objVal := new(big.Rat)
	for _, i := range artCols {
		for j := 0; j < nTotal; j++ {
			obj[j].Sub(obj[j], rows[i][j])
		}
		objVal.Sub(objVal, rhs[i])
	}
	// zero out the artificial columns of the objective (they are basic)
	for k := range artCols {
		obj[nCols+k].Set(zero)
	}

	for iter := 0; ; iter++ {
		if iter > 10000*(nTotal+m) {
			return nil, false, false // safety net; Bland's rule should terminate long before
		}
		if done != nil && iter&0x1f == 0 {
			select {
			case <-done:
				return nil, false, true
			default:
			}
		}
		// entering: smallest index with negative reduced cost (Bland)
		enter := -1
		for j := 0; j < nTotal; j++ {
			if obj[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// ratio test: min rhs_i / a_ie over a_ie > 0; Bland tie-break on
		// smallest basis variable
		leave := -1
		best := new(big.Rat)
		for i := 0; i < m; i++ {
			a := rows[i][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(rhs[i], a)
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && basis[i] < basis[leave]) {
				leave = i
				best = ratio
			}
		}
		if leave < 0 {
			// unbounded in a minimization with objective bounded below by 0
			// cannot happen; treat defensively as infeasible
			return nil, false, false
		}
		pivot(rows, rhs, obj, objVal, leave, enter)
		basis[leave] = enter
	}
	if objVal.Sign() != 0 {
		return nil, false, false // artificials cannot all reach zero
	}
	// read off original variables
	vals := make([]*big.Rat, nSplit)
	for j := range vals {
		vals[j] = new(big.Rat)
	}
	for i, b := range basis {
		if b < nSplit {
			vals[b].Set(rhs[i])
		}
	}
	out := make([]*big.Rat, numVars)
	for v := 0; v < numVars; v++ {
		out[v] = new(big.Rat).Sub(vals[2*v], vals[2*v+1])
	}
	return out, true, false
}

// pivot performs a simplex pivot on (leave, enter).
func pivot(rows [][]*big.Rat, rhs []*big.Rat, obj []*big.Rat, objVal *big.Rat, leave, enter int) {
	pr := rows[leave]
	pv := new(big.Rat).Set(pr[enter])
	inv := new(big.Rat).Inv(pv)
	for j := range pr {
		pr[j].Mul(pr[j], inv)
	}
	rhs[leave].Mul(rhs[leave], inv)
	for i := range rows {
		if i == leave {
			continue
		}
		f := new(big.Rat).Set(rows[i][enter])
		if f.Sign() == 0 {
			continue
		}
		for j := range rows[i] {
			t := new(big.Rat).Mul(f, pr[j])
			rows[i][j].Sub(rows[i][j], t)
		}
		t := new(big.Rat).Mul(f, rhs[leave])
		rhs[i].Sub(rhs[i], t)
	}
	f := new(big.Rat).Set(obj[enter])
	if f.Sign() != 0 {
		for j := range obj {
			t := new(big.Rat).Mul(f, pr[j])
			obj[j].Sub(obj[j], t)
		}
		t := new(big.Rat).Mul(f, rhs[leave])
		objVal.Sub(objVal, t)
	}
}
