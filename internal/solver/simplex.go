// Package solver decides feasibility of systems of linear constraints over
// integers with exact rational arithmetic — the numeric back-end of the
// NGD satisfiability and implication analyses (paper §4). The paper notes
// that linear arithmetic over integers has an NP-complete satisfiability
// problem; this solver runs a two-phase exact simplex (Bland's rule, so it
// always terminates) on the rational relaxation and branches-and-bounds to
// integrality.
package solver

import (
	"fmt"
	"math/big"
)

// Rel is a constraint relation.
type Rel uint8

// Constraint relations. Ne is handled by disjunctive branching; Lt/Gt over
// integers become Le/Ge with a ±1 adjustment.
const (
	Le Rel = iota
	Ge
	Eq
	Lt
	Gt
	Ne
)

func (r Rel) String() string {
	switch r {
	case Le:
		return "<="
	case Ge:
		return ">="
	case Eq:
		return "="
	case Lt:
		return "<"
	case Gt:
		return ">"
	default:
		return "!="
	}
}

// Constraint is Σᵢ Coef[i]·x_{Var[i]} Rel RHS.
type Constraint struct {
	Vars []int
	Coef []*big.Rat
	Rel  Rel
	RHS  *big.Rat
}

// NewConstraint builds a constraint from parallel slices.
func NewConstraint(vars []int, coef []*big.Rat, rel Rel, rhs *big.Rat) Constraint {
	return Constraint{Vars: vars, Coef: coef, Rel: rel, RHS: rhs}
}

func (c Constraint) String() string {
	s := ""
	for i, v := range c.Vars {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%s·x%d", c.Coef[i].RatString(), v)
	}
	return fmt.Sprintf("%s %s %s", s, c.Rel, c.RHS.RatString())
}

// System is a conjunction of constraints over NumVars variables.
// Variables are unbounded (±∞) and range over the integers when Integer is
// set (the NGD attribute domain), otherwise over the rationals.
type System struct {
	NumVars int
	Cons    []Constraint
	Integer bool
}

// Status of a feasibility check.
type Status uint8

// Feasibility outcomes. Unknown is reported only when the branch-and-bound
// node budget is exhausted.
const (
	Infeasible Status = iota
	Feasible
	Unknown
)

func (s Status) String() string {
	switch s {
	case Infeasible:
		return "infeasible"
	case Feasible:
		return "feasible"
	default:
		return "unknown"
	}
}

// Options bound the search.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (default 4096).
	MaxNodes int
	// MaxNeSplits caps disjunctive ≠ splits (default 16).
	MaxNeSplits int
	// Done, when non-nil, aborts the search once the channel is closed
	// (polled per branch-and-bound node and every 32 simplex pivots);
	// an aborted Solve reports Unknown, never a wrong verdict. The solver
	// itself never reads a clock, so determinism is preserved: the caller
	// owns the deadline.
	Done <-chan struct{}
}

// expired is a non-blocking poll of the Done channel.
func (o Options) expired() bool {
	if o.Done == nil {
		return false
	}
	select {
	case <-o.Done:
		return true
	default:
		return false
	}
}

func (o Options) defaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4096
	}
	if o.MaxNeSplits <= 0 {
		o.MaxNeSplits = 16
	}
	return o
}

// Solve decides feasibility; on Feasible, the returned assignment satisfies
// every constraint (integral when s.Integer).
func (s *System) Solve(opts Options) (Status, []*big.Rat) {
	opts = opts.defaults()
	// expand ≠ by branching into < and > (bounded)
	neCount := 0
	for _, c := range s.Cons {
		if c.Rel == Ne {
			neCount++
		}
	}
	if neCount > opts.MaxNeSplits {
		return Unknown, nil
	}
	budget := opts.MaxNodes
	return s.solveNe(opts, &budget)
}

func (s *System) solveNe(opts Options, budget *int) (Status, []*big.Rat) {
	for i, c := range s.Cons {
		if c.Rel != Ne {
			continue
		}
		sawUnknown := false
		for _, rel := range [2]Rel{Lt, Gt} {
			branch := &System{NumVars: s.NumVars, Integer: s.Integer}
			branch.Cons = append(branch.Cons, s.Cons[:i]...)
			branch.Cons = append(branch.Cons, Constraint{Vars: c.Vars, Coef: c.Coef, Rel: rel, RHS: c.RHS})
			branch.Cons = append(branch.Cons, s.Cons[i+1:]...)
			st, asg := branch.solveNe(opts, budget)
			if st == Feasible {
				return Feasible, asg
			}
			if st == Unknown {
				sawUnknown = true
			}
		}
		if sawUnknown {
			return Unknown, nil
		}
		return Infeasible, nil
	}
	return s.branchAndBound(opts, budget)
}

// normalized converts every constraint to Σ coef·x ≤ rhs form (Eq becomes
// two inequalities); strict relations over the integers tighten by 1, over
// the rationals they are handled by the simplex via an ε-perturbation of
// the RHS (exact: we solve with rhs − ε as a symbolic infinitesimal folded
// into a lexicographic comparison; for simplicity and exactness we instead
// scale: a strict rational inequality Σc·x < r is feasible iff Σc·x ≤ r − δ
// is feasible for some δ > 0, which holds iff the non-strict system
// augmented with a fresh gap variable g > 0 ... here we use the integer
// path for NGDs and a small fixed δ for rationals, documented as such).
func (s *System) normalized() ([]Constraint, bool) {
	var out []Constraint
	for _, c := range s.Cons {
		switch c.Rel {
		case Le:
			out = append(out, c)
		case Ge:
			out = append(out, negate(c, Le))
		case Eq:
			out = append(out, Constraint{Vars: c.Vars, Coef: c.Coef, Rel: Le, RHS: c.RHS})
			out = append(out, negate(c, Le))
		case Lt:
			out = append(out, s.strictToLe(c))
		case Gt:
			out = append(out, s.strictToLe(negate(c, Lt)))
		default:
			return nil, false // Ne must be eliminated before
		}
	}
	return out, true
}

// strictToLe converts a strict inequality Σ c·x < r into an equivalent
// non-strict one. Over the integers the conversion is exact: clear the
// coefficient denominators (×L, so the left side is integral over integer
// assignments), then Σ (Lc)·x < L·r  ⇔  Σ (Lc)·x ≤ ⌈L·r⌉ − 1.
// Over the rationals we subtract a small δ, which is sound (any solution of
// the tightened system solves the strict one) but incomplete for systems
// whose only strict-feasibility slack is below δ; the NGD reasoning layer
// always uses the exact integer path.
func (s *System) strictToLe(c Constraint) Constraint {
	if !s.Integer {
		nc := Constraint{Vars: c.Vars, Coef: c.Coef, Rel: Le,
			RHS: new(big.Rat).Sub(c.RHS, big.NewRat(1, 1000000))}
		return nc
	}
	l := big.NewInt(1)
	for _, co := range c.Coef {
		l = lcm(l, co.Denom())
	}
	lr := new(big.Rat).SetInt(l)
	nc := Constraint{Vars: append([]int(nil), c.Vars...), Rel: Le}
	nc.Coef = make([]*big.Rat, len(c.Coef))
	for i, co := range c.Coef {
		nc.Coef[i] = new(big.Rat).Mul(co, lr)
	}
	scaledRHS := new(big.Rat).Mul(c.RHS, lr)
	nc.RHS = new(big.Rat).Sub(ceilRat(scaledRHS), big.NewRat(1, 1))
	return nc
}

func lcm(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	q := new(big.Int).Quo(a, g)
	return q.Mul(q, b)
}

func ceilRat(r *big.Rat) *big.Rat {
	if r.IsInt() {
		return new(big.Rat).Set(r)
	}
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

func floorBig(r *big.Rat) *big.Int {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return q
}

func negate(c Constraint, rel Rel) Constraint {
	nc := Constraint{Vars: append([]int(nil), c.Vars...), Rel: rel}
	nc.Coef = make([]*big.Rat, len(c.Coef))
	for i, co := range c.Coef {
		nc.Coef[i] = new(big.Rat).Neg(co)
	}
	nc.RHS = new(big.Rat).Neg(c.RHS)
	return nc
}

// branchAndBound solves the ≠-free system.
func (s *System) branchAndBound(opts Options, budget *int) (Status, []*big.Rat) {
	if *budget <= 0 || opts.expired() {
		return Unknown, nil
	}
	*budget--
	cons, ok := s.normalized()
	if !ok {
		return Unknown, nil
	}
	asg, feas, aborted := lpFeasible(s.NumVars, cons, opts.Done)
	if aborted {
		return Unknown, nil
	}
	if !feas {
		return Infeasible, nil
	}
	if !s.Integer {
		return Feasible, asg
	}
	// find a fractional variable
	frac := -1
	for i, v := range asg {
		if !v.IsInt() {
			frac = i
			break
		}
	}
	if frac < 0 {
		return Feasible, asg
	}
	fl := floorBig(asg[frac])
	flRat := new(big.Rat).SetInt(fl)
	ceRat := new(big.Rat).Add(flRat, big.NewRat(1, 1))

	sawUnknown := false
	// x ≤ ⌊v⌋ branch
	left := &System{NumVars: s.NumVars, Integer: true,
		Cons: append(append([]Constraint(nil), s.Cons...),
			Constraint{Vars: []int{frac}, Coef: []*big.Rat{big.NewRat(1, 1)}, Rel: Le, RHS: flRat})}
	st, a := left.branchAndBound(opts, budget)
	if st == Feasible {
		return Feasible, a
	}
	if st == Unknown {
		sawUnknown = true
	}
	// x ≥ ⌈v⌉ branch
	right := &System{NumVars: s.NumVars, Integer: true,
		Cons: append(append([]Constraint(nil), s.Cons...),
			Constraint{Vars: []int{frac}, Coef: []*big.Rat{big.NewRat(1, 1)}, Rel: Ge, RHS: ceRat})}
	st, a = right.branchAndBound(opts, budget)
	if st == Feasible {
		return Feasible, a
	}
	if st == Unknown || sawUnknown {
		return Unknown, nil
	}
	return Infeasible, nil
}
