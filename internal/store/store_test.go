package store

// Codec-level tests: snapshot round-trips (including the edge cases the
// serving layer produces — empty graphs, nodes with empty attribute
// tuples, every value kind), WAL framing, torn-tail truncation, and
// corruption detection. The end-to-end recovery differentials live in
// recover_test.go.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ngd/internal/graph"
)

// fingerprint renders everything the snapshot codec must preserve about a
// graph — node labels, typed attribute tuples, adjacency with edge labels
// — as a canonical string, by name rather than by interned id so two
// graphs with different interning histories still compare equal.
func fingerprint(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		fmt.Fprintf(&b, "n%d %s", v, g.LabelName(id))
		var attrs []string
		g.Attrs(id, func(a graph.AttrID, val graph.Value) {
			attrs = append(attrs, fmt.Sprintf(" %s=%s/%s", g.Symbols().AttrName(a), val, val.Kind()))
		})
		sort.Strings(attrs)
		for _, a := range attrs {
			b.WriteString(a)
		}
		b.WriteByte('\n')
		for _, h := range g.Out(id) {
			fmt.Fprintf(&b, "  -%s-> n%d\n", g.Symbols().LabelName(h.Label), h.To)
		}
	}
	return b.String()
}

func roundtrip(t *testing.T, sd *snapshotData) *snapshotData {
	t.Helper()
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, sd); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	got, err := readSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("readSnapshot: %v", err)
	}
	return got
}

func TestSnapshotRoundtrip(t *testing.T) {
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("place")
	g.SetAttr(a, "age", graph.Int(41))
	g.SetAttr(a, "name", graph.Str("ada \"the\" first"))
	g.SetAttr(a, "active", graph.Bool(true))
	g.SetAttr(b, "score", graph.Float(2.5))
	g.SetAttr(b, "neg", graph.Int(-17))
	// c deliberately keeps an empty attribute tuple
	g.AddEdge(a, b, "knows")
	g.AddEdge(a, c, "born_in")
	g.AddEdge(b, a, "knows")
	g.AddEdge(a, b, "likes")

	sd := &snapshotData{
		Seq:       42,
		G:         g,
		Names:     map[string]graph.NodeID{"ada": a, "bob": b, "rome": c},
		RulesText: "rule r1 { }", // opaque to the codec; parsed elsewhere
		Violations: []vioRec{
			{Rule: "r1", Match: []graph.NodeID{a, b}},
			{Rule: "r1", Match: []graph.NodeID{b, a}},
		},
	}
	got := roundtrip(t, sd)

	if got.Seq != 42 {
		t.Errorf("seq = %d, want 42", got.Seq)
	}
	if want, have := fingerprint(g), fingerprint(got.G); want != have {
		t.Errorf("graph fingerprint mismatch:\nwant:\n%s\ngot:\n%s", want, have)
	}
	if len(got.Names) != 3 || got.Names["ada"] != a || got.Names["bob"] != b || got.Names["rome"] != c {
		t.Errorf("names = %v", got.Names)
	}
	if got.RulesText != sd.RulesText {
		t.Errorf("rules text = %q", got.RulesText)
	}
	if len(got.Violations) != 2 || got.Violations[0].Rule != "r1" ||
		got.Violations[0].Match[0] != a || got.Violations[1].Match[0] != b {
		t.Errorf("violations = %+v", got.Violations)
	}
	// derived structures must come back consistent: in-lists mirror
	// out-lists, by-label postings cover every node
	if got.G.InDegree(b) != 2 || got.G.InDegree(a) != 1 || got.G.InDegree(c) != 1 {
		t.Errorf("in-degrees = %d/%d/%d", got.G.InDegree(a), got.G.InDegree(b), got.G.InDegree(c))
	}
	if n := len(got.G.NodesWithLabel(got.G.Symbols().LookupLabel("person"))); n != 2 {
		t.Errorf("by-label postings: %d person nodes, want 2", n)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	sd := &snapshotData{Seq: 0, G: graph.New(), Names: map[string]graph.NodeID{}}
	got := roundtrip(t, sd)
	if got.G.NumNodes() != 0 || got.G.NumEdges() != 0 || len(got.Names) != 0 || len(got.Violations) != 0 {
		t.Errorf("empty snapshot decoded to |V|=%d |E|=%d names=%d vios=%d",
			got.G.NumNodes(), got.G.NumEdges(), len(got.Names), len(got.Violations))
	}
}

func TestSnapshotZeroAttrNodes(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.AddNode("bare")
	}
	g.AddEdge(0, 4, "e")
	got := roundtrip(t, &snapshotData{G: g})
	if want, have := fingerprint(g), fingerprint(got.G); want != have {
		t.Errorf("zero-attr fingerprint mismatch:\nwant:\n%s\ngot:\n%s", want, have)
	}
	for v := 0; v < 5; v++ {
		if got.G.NumAttrs(graph.NodeID(v)) != 0 {
			t.Errorf("node %d decoded with %d attrs, want 0", v, got.G.NumAttrs(graph.NodeID(v)))
		}
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	g := graph.New()
	v := g.AddNode("x")
	g.SetAttr(v, "a", graph.Int(7))
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, &snapshotData{G: g}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// flip one byte in the middle: the CRC trailer (or a bounds check on
	// the mangled structure) must reject the file
	for _, off := range []int{len(raw) / 2, len(raw) - 5} {
		mangled := append([]byte(nil), raw...)
		mangled[off] ^= 0x41
		if _, err := readSnapshot(bytes.NewReader(mangled)); err == nil {
			t.Errorf("corruption at offset %d went undetected", off)
		}
	}
	// truncation anywhere must be detected too
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 4} {
		if _, err := readSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation to %d bytes went undetected", cut)
		}
	}
	if _, err := readSnapshot(bytes.NewReader([]byte("NOTASNAP"))); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
}

func testRecords() []*walRecord {
	return []*walRecord{
		{
			Seq: 1,
			Nodes: []nodeRec{
				{Node: 10, ExtID: "alice", Label: "person", Attrs: []nodeAttr{
					{Name: "age", Val: graph.Int(30)},
					{Name: "city", Val: graph.Str("ulm")},
				}},
				{Node: 11, Label: "place"}, // no external id, no attrs
			},
			Ops: []opRec{
				{Insert: true, Src: 10, Dst: 11, Label: "born_in"},
			},
		},
		{Seq: 2, Ops: []opRec{{Insert: false, Src: 10, Dst: 11, Label: "born_in"}}},
		{Seq: 3, Nodes: []nodeRec{{Node: 12, ExtID: "z", Label: "person"}}},
	}
}

func writeSegment(t *testing.T, path string, start uint64, recs []*walRecord) {
	t.Helper()
	w, err := createWAL(path, start, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, path string) ([]*walRecord, walScanResult) {
	t.Helper()
	var got []*walRecord
	res, err := scanWAL(path, func(r *walRecord) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("scanWAL: %v", err)
	}
	return got, res
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.ngdw")
	recs := testRecords()
	writeSegment(t, path, 0, recs)

	got, res := scanAll(t, path)
	if res.Truncated {
		t.Error("clean segment reported as truncated")
	}
	if res.Start != 0 {
		t.Errorf("start = %d", res.Start)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	r := got[0]
	if r.Seq != 1 || len(r.Nodes) != 2 || len(r.Ops) != 1 {
		t.Fatalf("record 0 = %+v", r)
	}
	if r.Nodes[0].ExtID != "alice" || r.Nodes[0].Label != "person" || len(r.Nodes[0].Attrs) != 2 {
		t.Errorf("node rec = %+v", r.Nodes[0])
	}
	if v := r.Nodes[0].Attrs[0].Val; r.Nodes[0].Attrs[0].Name != "age" || !v.Equal(graph.Int(30)) {
		t.Errorf("attr = %+v", r.Nodes[0].Attrs[0])
	}
	if !r.Ops[0].Insert || r.Ops[0].Src != 10 || r.Ops[0].Dst != 11 || r.Ops[0].Label != "born_in" {
		t.Errorf("op = %+v", r.Ops[0])
	}
	if got[1].Ops[0].Insert {
		t.Error("record 1 delete decoded as insert")
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ngdw")
	recs := testRecords()
	writeSegment(t, full, 0, recs)
	fi, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	// locate the end of record 2 by scanning a two-record segment
	two := filepath.Join(dir, "two.ngdw")
	writeSegment(t, two, 0, recs[:2])
	fi2, err := os.Stat(two)
	if err != nil {
		t.Fatal(err)
	}
	goodTwo := fi2.Size()

	// cut the full segment at every byte inside the final record: frame
	// header torn, payload torn, and (full size - 1) checksum-breaking cuts
	for cut := goodTwo + 1; cut < fi.Size(); cut++ {
		torn := filepath.Join(dir, "torn.ngdw")
		raw, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := scanAll(t, torn)
		if !res.Truncated {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if len(got) != 2 || res.GoodSize != goodTwo {
			t.Fatalf("cut at %d: %d records survive, goodSize %d (want 2, %d)",
				cut, len(got), res.GoodSize, goodTwo)
		}
	}

	// a bit-flip inside the last record's payload must also truncate there
	raw, _ := os.ReadFile(full)
	raw[len(raw)-1] ^= 0xff
	flip := filepath.Join(dir, "flip.ngdw")
	if err := os.WriteFile(flip, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := scanAll(t, flip)
	if !res.Truncated || len(got) != 2 {
		t.Fatalf("bit-flip: truncated=%v records=%d", res.Truncated, len(got))
	}

	// appending after a torn-tail truncation continues the segment cleanly
	w, err := openWALForAppend(flip, res.Start, res.GoodSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(recs[2]); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, res = scanAll(t, flip)
	if res.Truncated || len(got) != 3 || got[2].Seq != 3 {
		t.Fatalf("after repair+append: truncated=%v records=%d", res.Truncated, len(got))
	}
}

func TestWALEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-7.ngdw")
	writeSegment(t, path, 7, nil)
	got, res := scanAll(t, path)
	if len(got) != 0 || res.Truncated || res.Start != 7 {
		t.Errorf("empty segment: records=%d truncated=%v start=%d", len(got), res.Truncated, res.Start)
	}
}
