//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/LOCK, failing fast if
// another live process holds it. Two processes serving one data directory
// would truncate and append the same WAL segment and rename snapshots over
// each other — unrecoverable corruption from a routine operator mistake
// (double-started daemon), so Open refuses instead. The kernel drops the
// lock automatically when the holder dies, so a crash never leaves a stale
// lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %v)", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}
}
