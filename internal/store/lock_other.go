//go:build !unix

package store

import (
	"os"
	"path/filepath"
)

// lockDir on platforms without flock creates the LOCK file but provides no
// mutual exclusion — single-process ownership of the data directory is the
// operator's responsibility there (see docs/OPERATIONS.md).
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
}

func unlockDir(f *os.File) {
	if f != nil {
		_ = f.Close()
	}
}
