package store_test

// End-to-end recovery differentials: a session that dies and recovers
// through internal/store must be indistinguishable from one that never
// died — same violation store, same graph, same external-id map, and the
// same behaviour on subsequent commits (which transitively checks the
// rebuilt adjacency, postings and attribute indexes). The suite covers
// clean recovery (replay-free after a checkpoint), WAL replay, the torn
// final record, annihilating batches, and the full serving stack under
// the race detector.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/store"
	"ngd/internal/update"
)

const (
	tEntities = 220
	tRules    = 16
	tSeed     = int64(7)
)

func makeWorkload(t *testing.T) (*gen.Dataset, *session.Session) {
	t.Helper()
	ds := gen.Generate(gen.YAGO2, tEntities, tSeed)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: tRules, MaxDiameter: 4, Seed: tSeed})
	return ds, session.New(ds.G, rules, session.Options{})
}

func batchFor(ds *gen.Dataset, b int) *graph.Delta {
	return update.Random(ds, update.Config{
		Size:  update.SizeFor(ds.G, 0.04),
		Gamma: 1,
		Seed:  tSeed*97 + int64(b),
	})
}

// sessionsEqual compares everything recovery must reproduce.
func sessionsEqual(t *testing.T, label string, want, got *session.Session) {
	t.Helper()
	if w, g := want.Graph().NumNodes(), got.Graph().NumNodes(); w != g {
		t.Errorf("%s: |V| = %d, want %d", label, g, w)
	}
	if w, g := want.Graph().NumEdges(), got.Graph().NumEdges(); w != g {
		t.Errorf("%s: |E| = %d, want %d", label, g, w)
	}
	wv, gv := want.Violations(), got.Violations()
	if len(wv) != len(gv) {
		t.Fatalf("%s: store size = %d, want %d", label, len(gv), len(wv))
	}
	for i := range wv {
		if wv[i].Key() != gv[i].Key() {
			t.Fatalf("%s: violation %d = %s, want %s", label, i, gv[i].Key(), wv[i].Key())
		}
	}
	if err := got.Recheck(); err != nil {
		t.Errorf("%s: recovered store invariant broken: %v", label, err)
	}
}

// commitVia replays ds-generated batches through a store-attached session,
// simulating the serving writer (hook-logged commits, cadence-driven
// checkpoints when st is non-nil and every > 0).
func commitVia(t *testing.T, sess *session.Session, ds *gen.Dataset, st *store.Store, every, batches int) {
	t.Helper()
	for b := 0; b < batches; b++ {
		bs := sess.Commit(batchFor(ds, b))
		if bs.LogErr != nil {
			t.Fatalf("batch %d: WAL append failed: %v", b, bs.LogErr)
		}
		if st != nil && every > 0 {
			st.MaybeCheckpoint()
		}
	}
}

func TestRecoverReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	const batches = 6

	ds, live := makeWorkload(t)
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("fresh directory reported recoverable state")
	}
	if err := st.Bootstrap(live, live.Rules(), nil); err != nil {
		t.Fatal(err)
	}
	commitVia(t, live, ds, nil, 0, batches)
	if err := st.Close(); err != nil { // crash: no final checkpoint
		t.Fatal(err)
	}

	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2 == nil {
		t.Fatal("nothing recovered")
	}
	if rec2.SnapshotSeq != 0 || rec2.Replayed != batches || rec2.Truncated {
		t.Errorf("recovered = snap %d + %d replayed (truncated=%v), want 0 + %d",
			rec2.SnapshotSeq, rec2.Replayed, rec2.Truncated, batches)
	}
	sessionsEqual(t, "replayed", live, rec2.Session)

	// the recovered session must behave identically from here on: absorb
	// the same node arrivals and commit the same batch, then re-compare
	// (this transitively checks adjacency, postings and index maintenance)
	w := rec2.Session.Graph().NumNodes()
	extra := batchFor(ds, batches) // adds arriving nodes to the live graph
	for v := w; v < ds.G.NumNodes(); v++ {
		id := graph.NodeID(v)
		nv := rec2.Session.Graph().AddNode(ds.G.LabelName(id))
		ds.G.Attrs(id, func(a graph.AttrID, val graph.Value) {
			rec2.Session.Graph().SetAttr(nv, ds.G.Symbols().AttrName(a), val)
		})
	}
	live.Commit(extra)
	if bs := rec2.Session.Commit(extra); bs.LogErr != nil {
		t.Fatalf("post-recovery commit: %v", bs.LogErr)
	}
	sessionsEqual(t, "post-recovery commit", live, rec2.Session)
}

func TestRecoverAfterCheckpointIsReplayFree(t *testing.T) {
	dir := t.TempDir()
	const batches = 5

	ds, live := makeWorkload(t)
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(live, live.Rules(), nil); err != nil {
		t.Fatal(err)
	}
	commitVia(t, live, ds, nil, 0, batches)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Replayed != 0 {
		t.Fatalf("recovery after checkpoint replayed %d batches, want 0", rec.Replayed)
	}
	if rec.SnapshotSeq != uint64(batches) {
		t.Errorf("snapshot seq = %d, want %d", rec.SnapshotSeq, batches)
	}
	sessionsEqual(t, "checkpointed", live, rec.Session)
}

func TestRecoverTornTailDropsLastBatch(t *testing.T) {
	dir := t.TempDir()
	const batches = 5

	ds, live := makeWorkload(t)
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(live, live.Rules(), nil); err != nil {
		t.Fatal(err)
	}
	commitVia(t, live, ds, nil, 0, batches)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// kill mid-write: shear bytes off the final WAL record
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.ngdw"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal segments = %v (err %v)", wals, err)
	}
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// reference: an identical workload that only ever committed batches-1
	// (the torn batch was never acknowledged as durable)
	dsRef := gen.Generate(gen.YAGO2, tEntities, tSeed)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: tRules, MaxDiameter: 4, Seed: tSeed})
	ref := session.New(dsRef.G, rules, session.Options{})
	commitVia(t, ref, dsRef, nil, 0, batches-1)
	// the final batch's node arrivals rode in the torn record, so they
	// must not survive recovery either; the reference stops before
	// generating that batch at all, matching the recovered state

	st2, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec == nil || !rec.Truncated {
		t.Fatalf("torn tail not reported (rec=%+v)", rec)
	}
	if rec.Replayed != batches-1 {
		t.Errorf("replayed %d batches, want %d", rec.Replayed, batches-1)
	}
	sessionsEqual(t, "torn tail", ref, rec.Session)

	// the truncated segment must accept appends again
	rg := rec.Session.Graph()
	d := &graph.Delta{}
	d.Insert(1, 2, rg.Symbols().Label("post_torn"))
	if bs := rec.Session.Commit(d); bs.LogErr != nil {
		t.Fatalf("append after torn-tail recovery: %v", bs.LogErr)
	}
}

func TestAnnihilatingAndNoopBatches(t *testing.T) {
	dir := t.TempDir()
	ds, live := makeWorkload(t)
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(live, live.Rules(), nil); err != nil {
		t.Fatal(err)
	}

	g := live.Graph()
	l := g.Symbols().Label("rel_0")
	// a batch whose ops fully annihilate: insert+delete of an absent edge,
	// delete+insert of a present one (net no-op against G)
	var u, v graph.NodeID = 1, 3
	ann := &graph.Delta{}
	ann.Insert(u, v, l)
	ann.Delete(u, v, l)
	if g.OutDegree(0) > 0 {
		h := g.Out(0)[0]
		ann.Delete(0, h.To, h.Label)
		ann.Insert(0, h.To, h.Label)
	}
	bs := live.Commit(ann)
	if bs.Ops != 0 {
		t.Fatalf("annihilating batch normalized to %d ops, want 0", bs.Ops)
	}
	if bs.LogErr != nil {
		t.Fatal(bs.LogErr)
	}
	// plus one real batch, then one pure no-op batch (delete absent edge)
	commitVia(t, live, ds, nil, 0, 1)
	noop := &graph.Delta{}
	noop.Delete(2, 4, g.Symbols().Label("never_seen_label"))
	live.Commit(noop)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec == nil {
		t.Fatal("nothing recovered")
	}
	// only the one effective batch was logged
	if rec.Replayed != 1 {
		t.Errorf("replayed %d batches, want 1 (empty batches are not logged)", rec.Replayed)
	}
	sessionsEqual(t, "annihilate", live, rec.Session)
}

func TestCheckpointCadenceAndPruning(t *testing.T) {
	dir := t.TempDir()
	const batches = 9

	ds, live := makeWorkload(t)
	st, _, err := store.Open(dir, store.Options{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(live, live.Rules(), nil); err != nil {
		t.Fatal(err)
	}
	commitVia(t, live, ds, st, 3, batches)
	if err := st.Close(); err != nil { // waits for in-flight checkpoints
		t.Fatal(err)
	}

	ss := st.Stats()
	if ss.Checkpoints == 0 {
		t.Fatal("no background checkpoint ran")
	}
	if ss.SnapshotSeq == 0 {
		t.Fatal("snapshot seq never advanced")
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ngds"))
	if len(snaps) != 1 {
		t.Errorf("%d snapshots on disk after pruning, want 1: %v", len(snaps), snaps)
	}
	// every surviving WAL segment must start at or after the snapshot seq
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.ngdw"))
	for _, w := range wals {
		var ws uint64
		if _, err := fmt.Sscanf(filepath.Base(w), "wal-%d.ngdw", &ws); err != nil {
			t.Fatalf("unparseable segment name %s", w)
		}
		if ws < ss.SnapshotSeq {
			t.Errorf("stale segment %s survived pruning (snapshot seq %d)", w, ss.SnapshotSeq)
		}
	}

	_, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("nothing recovered")
	}
	if rec.Replayed > batches-int(ss.SnapshotSeq) {
		t.Errorf("replayed %d batches despite snapshot at seq %d", rec.Replayed, ss.SnapshotSeq)
	}
	sessionsEqual(t, "pruned", live, rec.Session)
}

// TestRecoverThroughServe drives the full serving stack — external-id node
// ops, coalesced edge ops, cadence checkpoints — kills it (no final
// checkpoint), recovers, and compares против the surviving server. Run
// under -race this also exercises the writer/checkpoint handoff.
func TestRecoverThroughServe(t *testing.T) {
	dir := t.TempDir()

	ds, sess := makeWorkload(t)
	rules := sess.Rules()
	st, _, err := store.Open(dir, store.Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]graph.NodeID)
	if err := st.Bootstrap(sess, rules, names); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sess, serve.Options{
		Names:     names,
		OnNewNode: st.NoteName,
		AfterCommit: func(bs session.BatchStats) {
			if bs.LogErr != nil {
				t.Errorf("WAL append failed: %v", bs.LogErr)
			}
			st.MaybeCheckpoint()
		},
	})

	relabel := ds.G.Symbols().LabelName(ds.G.Out(0)[0].Label)
	for b := 0; b < 10; b++ {
		ops := []serve.UpdateOp{
			{Op: "node", ID: nameFor(b), Label: "person", Attrs: map[string]any{
				"idx": b, "name": "u" + nameFor(b), "vip": b%2 == 0,
			}},
			{Op: "insert", Src: "0", Dst: nameFor(b), Label: relabel},
			{Op: "insert", Src: nameFor(b), Dst: "1", Label: relabel},
		}
		if b > 2 {
			ops = append(ops, serve.UpdateOp{Op: "delete", Src: "0", Dst: nameFor(b - 2), Label: relabel})
		}
		if _, err := srv.Enqueue(ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	liveSnap := srv.Snapshot()
	liveNodes, liveEdges := liveSnap.Nodes, liveSnap.Edges
	liveKeys := make([]string, 0, liveSnap.Len())
	for _, v := range liveSnap.Violations() {
		liveKeys = append(liveKeys, v.Key())
	}
	srv.Close()
	if err := st.Close(); err != nil { // crash: skip the final checkpoint
		t.Fatal(err)
	}

	st2, rec, err := store.Open(dir, store.Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec == nil {
		t.Fatal("nothing recovered")
	}
	got := rec.Session.Snapshot()
	if got.Nodes != liveNodes || got.Edges != liveEdges {
		t.Errorf("recovered |V|/|E| = %d/%d, want %d/%d", got.Nodes, got.Edges, liveNodes, liveEdges)
	}
	if got.Len() != len(liveKeys) {
		t.Fatalf("recovered store size %d, want %d", got.Len(), len(liveKeys))
	}
	for i, v := range rec.Session.Violations() {
		if v.Key() != liveKeys[i] {
			t.Fatalf("violation %d = %s, want %s", i, v.Key(), liveKeys[i])
		}
	}
	// external ids must have survived the WAL round-trip and still resolve
	for b := 0; b < 10; b++ {
		v, ok := rec.Names[nameFor(b)]
		if !ok {
			t.Fatalf("external id %q lost in recovery", nameFor(b))
		}
		if rec.Session.Graph().LabelName(v) != "person" {
			t.Errorf("external id %q resolves to a %q node", nameFor(b), rec.Session.Graph().LabelName(v))
		}
	}
	if err := rec.Session.Recheck(); err != nil {
		t.Errorf("recovered store invariant: %v", err)
	}

	// the recovered state must serve: spin the stack back up and ingest
	srv2 := serve.New(rec.Session, serve.Options{
		Names:       rec.Names,
		OnNewNode:   st2.NoteName,
		AfterCommit: func(session.BatchStats) { st2.MaybeCheckpoint() },
	})
	done, err := srv2.Enqueue([]serve.UpdateOp{
		{Op: "node", ID: "post-recovery", Label: "person"},
		{Op: "insert", Src: "post-recovery", Dst: "0", Label: relabel},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done.Done()
	srv2.Close()
}

func nameFor(b int) string {
	return "ext" + string(rune('a'+b))
}

func TestOpenRejectsWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000000.ngdw"), []byte("NGDWALOG"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Open(dir, store.Options{}); err == nil {
		t.Fatal("wal-without-snapshot accepted")
	}
}

// TestOpenLocksDirectory: a second Open on a live directory must fail fast
// (two writers would corrupt the WAL), and Close must release the lock.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Open(dir, store.Options{}); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	st2.Close()
}

// TestRecoveryRebuildsProgram asserts that the shared rule program is NOT
// part of the persisted state: recovery restores Σ and the graph, then
// compiles a fresh Program from them — plan cache empty, counters zero —
// and subsequent commits warm it exactly like a never-crashed session.
func TestRecoveryRebuildsProgram(t *testing.T) {
	dir := t.TempDir()
	ds, live := makeWorkload(t)
	rules := live.Rules()
	st, _, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(live, rules, nil); err != nil {
		t.Fatal(err)
	}
	commitVia(t, live, ds, nil, 0, 3)
	if c := live.PlanStats(); c.Misses == 0 || c.Hits == 0 {
		t.Fatalf("live session's program never planned: %+v", c)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("expected a recoverable state")
	}
	prog := rec.Session.Program()
	if prog == nil {
		t.Fatal("recovered session has no program")
	}
	if prog == live.Program() {
		t.Fatal("recovered session shares the dead session's program object")
	}
	c := rec.Session.PlanStats()
	// WAL replay routes through Commit, so replayed batches may already
	// have planned — but nothing can have been served from a persisted
	// cache beyond what replay itself compiled.
	if c.Misses == 0 && c.Hits > 0 {
		t.Fatalf("recovered program reports hits without compiling anything (%+v) — plans were persisted?", c)
	}
	if c.Rules != int64(rules.Len()) {
		t.Fatalf("recovered program compiled %d rules, Σ has %d", c.Rules, rules.Len())
	}
	sessionsEqual(t, "program-rebuild", live, rec.Session)

	// the recovered program must be live: a fresh commit plans against the
	// restored graph and keeps the invariant
	rg := rec.Session.Graph()
	d := &graph.Delta{}
	for v := 0; v < rg.NumNodes() && d.Len() == 0; v++ {
		if out := rg.Out(graph.NodeID(v)); len(out) > 0 {
			d.Delete(graph.NodeID(v), out[0].To, out[0].Label)
		}
	}
	if d.Len() == 0 {
		t.Fatal("recovered graph has no edges to perturb")
	}
	bs := rec.Session.Commit(d)
	if bs.PlanHits+bs.PlanMisses == 0 && bs.Ops > 0 {
		t.Fatal("post-recovery commit did not touch the rebuilt plan cache")
	}
	if err := rec.Session.Recheck(); err != nil {
		t.Fatal(err)
	}
}
