package store

// This file holds the low-level binary codec shared by the snapshot format
// and the write-ahead log: CRC-tracking reader/writer wrappers plus
// varint/string/Value primitives. Both formats are little-endian, use
// unsigned varints for counts and ids, zigzag varints for integers, and
// length-prefixed byte strings; every byte that enters the stream also
// enters a running CRC-32 (IEEE) so torn or corrupted data is detected
// before it can be replayed.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"ngd/internal/graph"
)

// maxString bounds a single decoded string (labels, attribute names/values,
// external ids, the rules DSL text). Counts and lengths are read before the
// CRC is verified, so a corrupted length must not be able to demand an
// absurd allocation.
const maxString = 64 << 20

// cwriter streams bytes to an underlying writer while folding them into a
// CRC-32 and counting them.
type cwriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	n   int64
	err error
}

func newCWriter(w io.Writer) *cwriter {
	return &cwriter{w: bufio.NewWriterSize(w, 1<<16), crc: crc32.NewIEEE()}
}

func (c *cwriter) write(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := c.w.Write(p); err != nil {
		c.err = err
		return
	}
	c.crc.Write(p)
	c.n += int64(len(p))
}

func (c *cwriter) byte(b byte)   { c.write([]byte{b}) }
func (c *cwriter) sum32() uint32 { return c.crc.Sum32() }
func (c *cwriter) u32(v uint32)  { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); c.write(b[:]) }
func (c *cwriter) u64(v uint64)  { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); c.write(b[:]) }
func (c *cwriter) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	c.write(b[:binary.PutUvarint(b[:], v)])
}
func (c *cwriter) svarint(v int64) {
	var b [binary.MaxVarintLen64]byte
	c.write(b[:binary.PutVarint(b[:], v)])
}
func (c *cwriter) str(s string) {
	c.uvarint(uint64(len(s)))
	c.write([]byte(s))
}

// rawU32 writes a u32 without folding it into the CRC — the trailer holding
// the CRC itself cannot be part of what it checks.
func (c *cwriter) rawU32(v uint32) {
	if c.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if _, err := c.w.Write(b[:]); err != nil {
		c.err = err
		return
	}
	c.n += 4
}

func (c *cwriter) flush() error {
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}

// Value encoding: one kind byte followed by the kind's payload.
func (c *cwriter) value(v graph.Value) {
	c.byte(byte(v.Kind()))
	switch v.Kind() {
	case graph.KindInt:
		i, _ := v.AsInt()
		c.svarint(i)
	case graph.KindString:
		s, _ := v.AsString()
		c.str(s)
	case graph.KindBool:
		b, _ := v.AsBool()
		if b {
			c.byte(1)
		} else {
			c.byte(0)
		}
	case graph.KindFloat:
		f, _ := v.AsFloat()
		c.u64(math.Float64bits(f))
	case graph.KindInvalid:
		// no payload: decodes back to the zero (absent) Value
	}
}

// creader mirrors cwriter: it reads from an underlying reader while folding
// every byte into a CRC-32. It implements io.ByteReader so binary varint
// decoding works directly on it.
type creader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func newCReader(r io.Reader) *creader {
	return &creader{r: bufio.NewReaderSize(r, 1<<16), crc: crc32.NewIEEE()}
}

func (c *creader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.crc.Write([]byte{b})
	return b, nil
}

func (c *creader) read(p []byte) error {
	if _, err := io.ReadFull(c.r, p); err != nil {
		return err
	}
	c.crc.Write(p)
	return nil
}

func (c *creader) sum32() uint32 { return c.crc.Sum32() }

func (c *creader) u32() (uint32, error) {
	var b [4]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *creader) u64() (uint64, error) {
	var b [8]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (c *creader) uvarint() (uint64, error) { return binary.ReadUvarint(c) }
func (c *creader) svarint() (int64, error)  { return binary.ReadVarint(c) }

func (c *creader) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("store: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if err := c.read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// rawU32 reads a u32 bypassing the CRC (the trailer).
func (c *creader) rawU32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *creader) value() (graph.Value, error) {
	k, err := c.ReadByte()
	if err != nil {
		return graph.Value{}, err
	}
	switch graph.Kind(k) {
	case graph.KindInt:
		i, err := c.svarint()
		if err != nil {
			return graph.Value{}, err
		}
		return graph.Int(i), nil
	case graph.KindString:
		s, err := c.str()
		if err != nil {
			return graph.Value{}, err
		}
		return graph.Str(s), nil
	case graph.KindBool:
		b, err := c.ReadByte()
		if err != nil {
			return graph.Value{}, err
		}
		return graph.Bool(b != 0), nil
	case graph.KindFloat:
		bits, err := c.u64()
		if err != nil {
			return graph.Value{}, err
		}
		return graph.Float(math.Float64frombits(bits)), nil
	case graph.KindInvalid:
		return graph.Value{}, nil
	default:
		return graph.Value{}, fmt.Errorf("store: unknown value kind %d", k)
	}
}
