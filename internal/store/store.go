// Package store makes serving sessions durable: a versioned binary
// snapshot codec for the graph (nodes, labels, typed attributes,
// adjacency, the external-id map, the rules and the live violation store)
// plus a write-ahead log of normalized update batches, with crash recovery
// that costs time proportional to the WAL suffix rather than to a full
// re-ingest and batch detection run.
//
// The durability protocol is write-ahead with periodic checkpoints:
//
//   - Every session commit first appends its batch — the arriving nodes
//     and the normalized ΔG — to the current WAL segment (the session's
//     commit hook fires before the in-place Apply). Records are
//     length-prefixed and CRC-checked, and are written with a single
//     write() each, so a crash can tear at most the final record.
//   - Every N batches (and at clean shutdown) a checkpoint captures the
//     whole session state into a new snapshot file: the graph is cloned on
//     the writer goroutine (a memcpy-scale pause), then encoded, fsynced
//     and atomically renamed into place in the background; once the
//     snapshot is durable, older snapshots and fully-covered WAL segments
//     are pruned.
//   - Recovery (Open on a non-empty directory) loads the newest readable
//     snapshot, restores the session around its persisted violation store
//     (no seeding detection run), and replays the WAL suffix through the
//     session — incremental detection per batch — so the recovered
//     violation store, graph and indexes are identical to those of a
//     process that never died. A torn final record is truncated away; the
//     state then matches the prefix of batches whose appends completed.
//
// Single-writer discipline: a Store attaches to exactly one session, and
// NoteName, Checkpoint, MaybeCheckpoint and the logging hook must all run
// on the goroutine that owns that session (internal/serve's writer).
// Stats is safe from any goroutine.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ngd/internal/core"
	"ngd/internal/dsl"
	"ngd/internal/graph"
	"ngd/internal/session"
)

// Options configure a Store.
type Options struct {
	// CheckpointEvery is the batch cadence of MaybeCheckpoint: a background
	// checkpoint starts once this many batches have been logged since the
	// last one. Default 64. Checkpoints bound recovery time — between them,
	// recovery replays the WAL suffix.
	CheckpointEvery int
	// NoSync disables the fsync after every WAL append. Throughput rises,
	// but batches acknowledged within the OS write-back window before a
	// crash can be lost (the WAL still truncates cleanly; recovered state
	// is a consistent prefix). Snapshots are always fsynced.
	NoSync bool
	// Session configures the session restored by recovery (parallel
	// routing, pruning toggles). It should match the options the serving
	// process normally runs with.
	Session session.Options
}

// Stats is a point-in-time summary of a Store.
type Stats struct {
	Seq         uint64 // last batch sequence logged
	SnapshotSeq uint64 // sequence covered by the newest durable snapshot
	Batches     int64  // batches appended since Open/Bootstrap
	WALBytes    int64  // bytes appended to the WAL since Open/Bootstrap
	Checkpoints int64  // checkpoints completed since Open/Bootstrap
	// LastCheckpoint is the wall-clock duration of the most recent
	// checkpoint's encode+fsync+rename+prune phase (zero before the first).
	LastCheckpoint time.Duration
}

// Recovered reports what Open reconstructed from a non-empty directory.
type Recovered struct {
	// Session is the restored session: snapshot state plus every replayed
	// batch, with the violation store reproduced.
	Session *session.Session
	// Rules is Σ, re-parsed from the DSL text embedded in the snapshot.
	Rules *core.Set
	// Names is the recovered external-id map; hand it to serve.Options.
	Names map[string]graph.NodeID
	// Seq is the last batch sequence recovered (snapshot + replay).
	Seq uint64
	// SnapshotSeq is the sequence the loaded snapshot covered.
	SnapshotSeq uint64
	// Replayed counts WAL batches replayed through the session.
	Replayed int
	// Truncated reports whether a torn WAL tail was found and dropped.
	Truncated bool
	// SnapshotBytes and WALBytes size what recovery read.
	SnapshotBytes int64
	WALBytes      int64
	// SnapshotLoad and WALReplay split the recovery wall time.
	SnapshotLoad time.Duration
	WALReplay    time.Duration
}

// Store manages the durable state of one serving session in one directory:
//
//	snap-<seq>.ngds   snapshot covering batches … seq (atomic rename)
//	wal-<seq>.ngdw    WAL segment holding batches seq+1, seq+2, …
//
// Create with Open; attach a fresh session with Bootstrap when Open found
// nothing to recover.
type Store struct {
	dir  string
	opts Options

	// writer-goroutine state
	sess       *session.Session
	rules      *core.Set
	rulesText  string
	names      map[string]graph.NodeID
	pendingExt map[graph.NodeID]string // extIDs of nodes arrived since the last batch
	wal        *walWriter

	ckptBusy atomic.Bool
	ckptWG   sync.WaitGroup

	lock *os.File // held flock on <dir>/LOCK for the Store's lifetime

	mu       sync.Mutex // guards the fields below (Stats reads cross-goroutine)
	seq      uint64
	snapSeq  uint64
	ckptSeq  uint64 // seq at which the last checkpoint was initiated
	batches  int64
	walBytes int64
	ckpts    int64
	ckptDur  time.Duration
	ckptErr  error
	// walErr latches the first failed WAL append. Once set, no further
	// records are written: a failed (possibly partial) write may have left
	// garbage at the segment tail, and appending after it would strand
	// good records behind a corrupt frame — and a skipped sequence number
	// would break the replay chain outright. With the log frozen, the
	// on-disk tail stays recoverable (truncate-on-torn-tail) and every
	// subsequent commit keeps reporting the error via BatchStats.LogErr.
	walErr error
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d%s", seq, snapSuffix) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%016d%s", seq, walSuffix) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(name, suffix)[len(prefix):], "%d", &seq)
	return seq, err == nil
}

// Open opens (creating if necessary) the data directory. When it holds a
// recoverable state — at least one readable snapshot — Open recovers:
// loads the newest good snapshot, restores the session, replays the WAL
// suffix through it (truncating a torn tail), installs the logging hook,
// and returns the result. On an empty directory it returns a nil Recovered
// and the caller must Bootstrap a freshly opened session.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 64
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			unlockDir(lock)
		}
	}()
	st := &Store{dir: dir, opts: opts, lock: lock, pendingExt: make(map[graph.NodeID]string)}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var snapSeqs, walSeqs []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, e.Name())) // stray torn snapshot write
			continue
		}
		if seq, ok := parseSeq(e.Name(), "snap-", snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if seq, ok := parseSeq(e.Name(), "wal-", walSuffix); ok {
			walSeqs = append(walSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })

	if len(snapSeqs) == 0 {
		if len(walSeqs) > 0 {
			return nil, nil, fmt.Errorf("store: %s holds wal segments but no snapshot; refusing to guess a base state", dir)
		}
		ok = true
		return st, nil, nil
	}

	rec, err := st.recover(snapSeqs, walSeqs)
	if err != nil {
		return nil, nil, err
	}
	ok = true
	return st, rec, nil
}

// recover performs snapshot load + WAL replay. Snapshots are tried newest
// first: an unreadable one (torn by a crash mid-checkpoint before the
// rename, or bit-rotted) falls back to the previous, whose covering WAL
// segments were only pruned after its successor became durable.
func (st *Store) recover(snapSeqs, walSeqs []uint64) (*Recovered, error) {
	rec := &Recovered{}

	var sd *snapshotData
	var snapErr error
	t0 := time.Now()
	for i := len(snapSeqs) - 1; i >= 0 && sd == nil; i-- {
		path := filepath.Join(st.dir, snapName(snapSeqs[i]))
		f, err := os.Open(path)
		if err != nil {
			snapErr = err
			continue
		}
		fi, _ := f.Stat()
		sd, err = readSnapshot(f)
		f.Close()
		if err != nil {
			snapErr = fmt.Errorf("%s: %w", path, err)
			sd = nil
			continue
		}
		if fi != nil {
			rec.SnapshotBytes = fi.Size()
		}
	}
	if sd == nil {
		return nil, fmt.Errorf("store: no readable snapshot in %s: %w", st.dir, snapErr)
	}
	rec.SnapshotSeq = sd.Seq

	rules, err := dsl.ParseRules(strings.NewReader(sd.RulesText))
	if err != nil {
		return nil, fmt.Errorf("store: rules embedded in snapshot: %w", err)
	}
	byName := make(map[string]*core.NGD, len(rules.Rules))
	for _, r := range rules.Rules {
		if _, dup := byName[r.Name]; !dup {
			byName[r.Name] = r
		}
	}
	vios := make([]core.Violation, 0, len(sd.Violations))
	for _, vr := range sd.Violations {
		r, ok := byName[vr.Rule]
		if !ok {
			return nil, fmt.Errorf("store: snapshot violation references unknown rule %q", vr.Rule)
		}
		vios = append(vios, core.Violation{Rule: r, Match: core.Match(vr.Match)})
	}
	sess := session.Restore(sd.G, rules, vios, st.opts.Session)
	rec.SnapshotLoad = time.Since(t0)

	// replay the WAL chain: segments starting at or after the snapshot's
	// seq, in order, each continuing exactly where the previous ended
	t0 = time.Now()
	reached := sd.Seq
	var lastPath string
	var lastScan walScanResult
	for i, ws := range walSeqs {
		if ws < sd.Seq {
			continue // fully covered by the snapshot; prune leftovers later
		}
		if ws != reached {
			return nil, fmt.Errorf("store: wal chain broken: segment %s starts at %d, expected %d",
				walName(ws), ws, reached)
		}
		path := filepath.Join(st.dir, walName(ws))
		res, err := scanWAL(path, func(r *walRecord) error {
			if r.Seq != reached+1 {
				return fmt.Errorf("store: wal record seq %d, expected %d", r.Seq, reached+1)
			}
			if err := st.replayRecord(sess, sd.Names, r); err != nil {
				return err
			}
			reached = r.Seq
			rec.Replayed++
			return nil
		})
		if err != nil {
			return nil, err
		}
		rec.WALBytes += res.GoodSize
		if res.Truncated {
			if i != len(walSeqs)-1 {
				return nil, fmt.Errorf("store: wal segment %s is corrupt mid-chain (later segments exist)", path)
			}
			rec.Truncated = true
		}
		lastPath, lastScan = path, res
	}
	rec.WALReplay = time.Since(t0)
	rec.Seq = reached

	// reopen the tail segment for further appends (truncating any torn
	// tail), or start a fresh segment if none survived
	if lastPath != "" {
		st.wal, err = openWALForAppend(lastPath, lastScan.Start, lastScan.GoodSize, !st.opts.NoSync)
	} else {
		st.wal, err = createWAL(filepath.Join(st.dir, walName(reached)), reached, !st.opts.NoSync)
	}
	if err != nil {
		return nil, err
	}

	st.seq, st.snapSeq, st.ckptSeq = reached, sd.Seq, sd.Seq
	st.attach(sess, rules, sd.Names)
	rec.Session, rec.Rules, rec.Names = sess, rules, sd.Names
	return rec, nil
}

// replayRecord applies one logged batch: node arrivals first (exactly as
// the serving layer applied them before the original commit), then the
// normalized ΔG through a session commit, which re-runs incremental
// detection and reconciles the violation store.
func (st *Store) replayRecord(sess *session.Session, names map[string]graph.NodeID, r *walRecord) error {
	g := sess.Graph()
	for _, nr := range r.Nodes {
		v := g.AddNode(nr.Label)
		if v != nr.Node {
			return fmt.Errorf("store: replay node id drift: logged %d, graph assigned %d", nr.Node, v)
		}
		for _, a := range nr.Attrs {
			g.SetAttr(v, a.Name, a.Val)
		}
		if nr.ExtID != "" {
			names[nr.ExtID] = v
		}
	}
	d := &graph.Delta{}
	for _, op := range r.Ops {
		l := g.Symbols().Label(op.Label)
		if op.Insert {
			d.Insert(op.Src, op.Dst, l)
		} else {
			d.Delete(op.Src, op.Dst, l)
		}
	}
	var attrs []graph.AttrOp
	for _, a := range r.AttrOps {
		attrs = append(attrs, graph.AttrOp{
			Node: a.Node, Attr: g.Symbols().Attr(a.Name), Val: a.Val,
		})
	}
	bs := sess.CommitBatch(d, attrs)
	if bs.LogErr != nil {
		return bs.LogErr // cannot happen: the hook is installed after replay
	}
	return nil
}

// Bootstrap attaches a freshly opened session (first boot: Open returned a
// nil Recovered) and makes its current state durable: a seq-0 snapshot of
// the seeded session is written synchronously, the first WAL segment is
// created, and the logging hook is installed so every subsequent commit is
// write-ahead logged. names may be nil; the map is shared with the caller
// (the serving layer registers new external ids in it) and must only be
// mutated on the session's writer goroutine.
func (st *Store) Bootstrap(sess *session.Session, rules *core.Set, names map[string]graph.NodeID) error {
	if st.sess != nil {
		return fmt.Errorf("store: already attached to a session")
	}
	if names == nil {
		names = make(map[string]graph.NodeID)
	}
	st.rulesText = dsl.FormatRules(rules)
	sd := &snapshotData{
		Seq:        0,
		G:          sess.Graph(),
		Names:      names,
		RulesText:  st.rulesText,
		Violations: violationRecs(sess),
	}
	if err := st.writeSnapshotFile(sd); err != nil {
		return err
	}
	w, err := createWAL(filepath.Join(st.dir, walName(0)), 0, !st.opts.NoSync)
	if err != nil {
		return err
	}
	st.wal = w
	st.attach(sess, rules, names)
	return nil
}

// attach wires the store to its session: from here on every commit is
// logged through the session's commit hook.
func (st *Store) attach(sess *session.Session, rules *core.Set, names map[string]graph.NodeID) {
	st.sess, st.rules, st.names = sess, rules, names
	if st.rulesText == "" {
		st.rulesText = dsl.FormatRules(rules)
	}
	sess.SetCommitHook(st.logBatch)
}

// NoteName records that the serving layer bound external id to node v
// since the last commit; the binding rides in the next batch record. Wire
// it to serve.Options.OnNewNode.
func (st *Store) NoteName(id string, v graph.NodeID) {
	st.pendingExt[v] = id
}

// logBatch is the session commit hook: it renders the arriving nodes, the
// normalized ΔG and the batch's attribute ops into one WAL record and
// appends it (write-ahead: the session has not yet mutated the graph).
// Batches with no effect are not logged. Runs on the writer goroutine.
func (st *Store) logBatch(g *graph.Graph, norm *graph.Delta, attrs []graph.AttrOp, lo, hi graph.NodeID) error {
	rec := &walRecord{}
	for v := lo; v < hi; v++ {
		nr := nodeRec{Node: v, ExtID: st.pendingExt[v], Label: g.LabelName(v)}
		g.Attrs(v, func(a graph.AttrID, val graph.Value) {
			nr.Attrs = append(nr.Attrs, nodeAttr{Name: g.Symbols().AttrName(a), Val: val})
		})
		rec.Nodes = append(rec.Nodes, nr)
	}
	clear(st.pendingExt)
	for _, op := range norm.Ops {
		rec.Ops = append(rec.Ops, opRec{
			Insert: op.Insert, Src: op.Src, Dst: op.Dst,
			Label: g.Symbols().LabelName(op.Label),
		})
	}
	for _, op := range attrs {
		rec.AttrOps = append(rec.AttrOps, attrRec{
			Node: op.Node, Name: g.Symbols().AttrName(op.Attr), Val: op.Val,
		})
	}
	if rec.empty() {
		return nil
	}

	st.mu.Lock()
	if err := st.walErr; err != nil {
		st.mu.Unlock()
		return err
	}
	rec.Seq = st.seq + 1
	st.mu.Unlock()

	before := st.wal.n
	if err := st.wal.append(rec); err != nil {
		st.mu.Lock()
		st.walErr = err
		st.mu.Unlock()
		return err
	}
	st.mu.Lock()
	st.seq = rec.Seq // advance only on a durable append: no gaps, ever
	st.batches++
	st.walBytes += st.wal.n - before
	st.mu.Unlock()
	return nil
}

// MaybeCheckpoint starts a background checkpoint if CheckpointEvery
// batches have been logged since the last one and none is in flight. Call
// it from the writer goroutine after commits (serve.Options.AfterCommit).
func (st *Store) MaybeCheckpoint() {
	if st.sess == nil {
		return
	}
	st.mu.Lock()
	due := st.seq >= st.ckptSeq+uint64(st.opts.CheckpointEvery)
	st.mu.Unlock()
	if !due || !st.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	_ = st.startCheckpoint(true)
}

// Checkpoint captures the attached session's current state into a new
// snapshot synchronously: it waits for any in-flight background checkpoint,
// then encodes, fsyncs, renames, and prunes before returning. Call it from
// the writer goroutine, or after the serving layer has shut down.
func (st *Store) Checkpoint() error {
	if st.sess == nil {
		return fmt.Errorf("store: no session attached")
	}
	st.ckptWG.Wait()
	if !st.ckptBusy.CompareAndSwap(false, true) {
		return fmt.Errorf("store: checkpoint already in flight")
	}
	return st.startCheckpoint(false)
}

// startCheckpoint rotates the WAL at the current seq and snapshots the
// session state. The clone of the graph, names and violation store happens
// on the calling (writer) goroutine — commits are stalled for a memcpy —
// while encoding, fsync, rename and pruning run in the background when
// async. st.ckptBusy is held on entry and released when the job finishes.
func (st *Store) startCheckpoint(async bool) error {
	st.mu.Lock()
	seq := st.seq
	st.ckptSeq = seq
	st.mu.Unlock()

	// rotate: subsequent appends go to wal-<seq>; the old segment is
	// pruned only after the snapshot is durable, so a crash mid-checkpoint
	// recovers from the previous snapshot plus the full chain
	if st.wal.start != seq {
		if err := st.wal.close(); err != nil {
			st.ckptBusy.Store(false)
			return err
		}
		w, err := createWAL(filepath.Join(st.dir, walName(seq)), seq, !st.opts.NoSync)
		if err != nil {
			st.ckptBusy.Store(false)
			return err
		}
		st.wal = w
	}

	names := make(map[string]graph.NodeID, len(st.names))
	for k, v := range st.names {
		names[k] = v
	}
	sd := &snapshotData{
		Seq:        seq,
		G:          st.sess.Graph().CloneDetached(),
		Names:      names,
		RulesText:  st.rulesText,
		Violations: violationRecs(st.sess),
	}

	job := func() error {
		defer st.ckptBusy.Store(false)
		t0 := time.Now()
		if err := st.writeSnapshotFile(sd); err != nil {
			st.mu.Lock()
			st.ckptErr = err
			// roll the cadence marker back so the next commit retries
			// instead of waiting another full CheckpointEvery window
			if st.ckptSeq == seq {
				st.ckptSeq = st.snapSeq
			}
			st.mu.Unlock()
			return err
		}
		st.prune(seq)
		st.mu.Lock()
		st.snapSeq = seq
		st.ckpts++
		st.ckptDur = time.Since(t0)
		st.ckptErr = nil // durability restored; stop reporting the stale failure
		st.mu.Unlock()
		return nil
	}
	if async {
		st.ckptWG.Add(1)
		go func() {
			defer st.ckptWG.Done()
			_ = job()
		}()
		return nil
	}
	return job()
}

// writeSnapshotFile encodes sd to a temp file in the data directory,
// fsyncs it, and atomically renames it into place.
func (st *Store) writeSnapshotFile(sd *snapshotData) error {
	final := filepath.Join(st.dir, snapName(sd.Seq))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeSnapshot(f, sd); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(st.dir)
}

// prune removes snapshots and WAL segments made redundant by the durable
// snapshot at seq. Best-effort: a leftover file is re-pruned by the next
// checkpoint, and recovery skips fully-covered segments anyway.
func (st *Store) prune(seq uint64) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if s, ok := parseSeq(e.Name(), "snap-", snapSuffix); ok && s < seq {
			_ = os.Remove(filepath.Join(st.dir, e.Name()))
		} else if s, ok := parseSeq(e.Name(), "wal-", walSuffix); ok && s < seq {
			_ = os.Remove(filepath.Join(st.dir, e.Name()))
		}
	}
	_ = syncDir(st.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats summarizes the store. Safe from any goroutine.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Seq:            st.seq,
		SnapshotSeq:    st.snapSeq,
		Batches:        st.batches,
		WALBytes:       st.walBytes,
		Checkpoints:    st.ckpts,
		LastCheckpoint: st.ckptDur,
	}
}

// Err reports the store's durability health: a latched WAL append
// failure (fatal: no further batches are logged; see logBatch), or the
// most recent checkpoint failure (transient: cleared when a later
// checkpoint succeeds; the WAL keeps growing and keeps recovery correct
// meanwhile). A serving process should surface it — cmd/ngdserve logs it
// after each commit and reports it in /stats.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.walErr != nil {
		return st.walErr
	}
	return st.ckptErr
}

// Close waits for any in-flight checkpoint, closes the WAL segment (with
// a final fsync) and releases the directory lock. It does not checkpoint;
// call Checkpoint first for a replay-free next boot.
func (st *Store) Close() error {
	st.ckptWG.Wait()
	var err error
	if st.wal != nil {
		err = st.wal.close()
	}
	if e := st.Err(); err == nil {
		err = e
	}
	unlockDir(st.lock)
	st.lock = nil
	return err
}

// violationRecs renders the session's live store in persistent form.
func violationRecs(sess *session.Session) []vioRec {
	vios := sess.Snapshot().Violations()
	out := make([]vioRec, len(vios))
	for i, v := range vios {
		out[i] = vioRec{Rule: v.Rule.Name, Match: []graph.NodeID(v.Match)}
	}
	return out
}
