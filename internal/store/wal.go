package store

// Write-ahead log (format version 1). A WAL segment holds the normalized
// update batches committed after the snapshot whose sequence number names
// the segment:
//
//	magic   "NGDWALOG"  (8 bytes)
//	u32     format version (1)
//	u64     start seq S — the segment holds batches S+1, S+2, …
//	record*
//
// Each record is independently framed and checksummed:
//
//	u32     payload length
//	u32     CRC-32 (IEEE) of the payload
//	payload:
//	  u64     batch seq
//	  nodes   count, then per arriving node: expected NodeID, external id
//	          ("" when none), label string, attribute count, (attr name,
//	          typed value)*
//	  ops     count, then per op: kind byte (0 delete / 1 insert), src,
//	          dst, edge label string
//
// Labels and attribute names travel as strings, not interned ids, so a
// record's meaning never depends on symbol-table state the reader might
// not share. Records are assembled in memory and written with a single
// Write; a crash can therefore only tear the final record, and recovery
// truncates the file back to the last whole one (truncate-on-torn-tail).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ngd/internal/graph"
)

// nodeAttr is one attribute of an arriving node as logged.
type nodeAttr struct {
	Name string
	Val  graph.Value
}

// nodeRec is a node arrival as logged: the NodeID the node must decode
// back to (replay sanity check), its optional external id, label, and
// attribute tuple.
type nodeRec struct {
	Node  graph.NodeID
	ExtID string
	Label string
	Attrs []nodeAttr
}

// opRec is one normalized edge op as logged.
type opRec struct {
	Insert   bool
	Src, Dst graph.NodeID
	Label    string
}

// attrRec is one normalized attribute op as logged (attribute names travel
// as strings for the same reason node labels do).
type attrRec struct {
	Node graph.NodeID
	Name string
	Val  graph.Value
}

// walRecord is one logged batch: the node arrivals since the previous
// batch, the normalized ΔG, and the batch's normalized attribute ops.
//
// The attribute section trails the edge ops and is length-prefixed like the
// others; records written before the section existed simply end after the
// ops, which the decoder observes as a clean io.EOF at the section's count
// read and treats as "no attribute ops". New records always write the
// section (zero-count when empty), so the format needs no version bump and
// old segments keep replaying.
type walRecord struct {
	Seq     uint64
	Nodes   []nodeRec
	Ops     []opRec
	AttrOps []attrRec
}

func (r *walRecord) empty() bool {
	return len(r.Nodes) == 0 && len(r.Ops) == 0 && len(r.AttrOps) == 0
}

// encodePayload renders the record payload (everything inside the frame).
func (r *walRecord) encodePayload(buf *bytes.Buffer) {
	c := newCWriter(buf)
	c.u64(r.Seq)
	c.uvarint(uint64(len(r.Nodes)))
	for _, nr := range r.Nodes {
		c.uvarint(uint64(nr.Node))
		c.str(nr.ExtID)
		c.str(nr.Label)
		c.uvarint(uint64(len(nr.Attrs)))
		for _, a := range nr.Attrs {
			c.str(a.Name)
			c.value(a.Val)
		}
	}
	c.uvarint(uint64(len(r.Ops)))
	for _, op := range r.Ops {
		if op.Insert {
			c.byte(1)
		} else {
			c.byte(0)
		}
		c.uvarint(uint64(op.Src))
		c.uvarint(uint64(op.Dst))
		c.str(op.Label)
	}
	c.uvarint(uint64(len(r.AttrOps)))
	for _, a := range r.AttrOps {
		c.uvarint(uint64(a.Node))
		c.str(a.Name)
		c.value(a.Val)
	}
	_ = c.flush() // bytes.Buffer writes cannot fail
}

// decodePayload parses one record payload.
func decodePayload(p []byte) (*walRecord, error) {
	c := newCReader(bytes.NewReader(p))
	r := &walRecord{}
	var err error
	if r.Seq, err = c.u64(); err != nil {
		return nil, err
	}
	nNodes, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nNodes; i++ {
		var nr nodeRec
		id, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		nr.Node = graph.NodeID(id)
		if nr.ExtID, err = c.str(); err != nil {
			return nil, err
		}
		if nr.Label, err = c.str(); err != nil {
			return nil, err
		}
		na, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < na; j++ {
			var a nodeAttr
			if a.Name, err = c.str(); err != nil {
				return nil, err
			}
			if a.Val, err = c.value(); err != nil {
				return nil, err
			}
			nr.Attrs = append(nr.Attrs, a)
		}
		r.Nodes = append(r.Nodes, nr)
	}
	nOps, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nOps; i++ {
		var op opRec
		k, err := c.ReadByte()
		if err != nil {
			return nil, err
		}
		op.Insert = k == 1
		src, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		dst, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		op.Src, op.Dst = graph.NodeID(src), graph.NodeID(dst)
		if op.Label, err = c.str(); err != nil {
			return nil, err
		}
		r.Ops = append(r.Ops, op)
	}
	// trailing attribute section: a clean EOF here is a record written
	// before the section existed (see the walRecord comment)
	nAttrs, err := c.uvarint()
	if err == io.EOF {
		return r, nil
	} else if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nAttrs; i++ {
		var a attrRec
		id, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		a.Node = graph.NodeID(id)
		if a.Name, err = c.str(); err != nil {
			return nil, err
		}
		if a.Val, err = c.value(); err != nil {
			return nil, err
		}
		r.AttrOps = append(r.AttrOps, a)
	}
	return r, nil
}

// walWriter appends framed records to an open segment file.
type walWriter struct {
	f     *os.File
	start uint64 // segment start seq (batches > start live here)
	sync  bool   // fsync after every append
	buf   bytes.Buffer
	n     int64 // bytes written to the segment, including the header
}

// createWAL creates a fresh segment starting at seq (truncating any
// existing file of the same name — only ever an empty leftover).
func createWAL(path string, start uint64, sync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr bytes.Buffer
	hdr.WriteString(walMagic)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], codecVer)
	hdr.Write(b[:])
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], start)
	hdr.Write(b8[:])
	if _, err := f.Write(hdr.Bytes()); err != nil {
		f.Close()
		return nil, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walWriter{f: f, start: start, sync: sync, n: int64(hdr.Len())}, nil
}

// openWALForAppend reopens an existing segment, truncated to size (the last
// byte recovery verified), for further appends.
func openWALForAppend(path string, start uint64, size int64, sync bool) (*walWriter, error) {
	if err := os.Truncate(path, size); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, start: start, sync: sync, n: size}, nil
}

// append frames and writes one record. The frame is assembled in memory
// and handed to the kernel in a single Write, so a crash tears at most the
// final record of the segment.
func (w *walWriter) append(r *walRecord) error {
	w.buf.Reset()
	w.buf.Write(make([]byte, 8)) // frame placeholder: len + crc
	r.encodePayload(&w.buf)
	frame := w.buf.Bytes()
	payload := frame[8:]
	if len(payload) > int(^uint32(0)) {
		return fmt.Errorf("store: wal record too large (%d bytes)", len(payload))
	}
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.n += int64(len(frame))
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walScanResult reports what scanning a segment found.
type walScanResult struct {
	Start     uint64 // header start seq
	GoodSize  int64  // offset just past the last whole, checksummed record
	Truncated bool   // a torn/corrupt tail was found after GoodSize
}

// scanWAL reads a segment sequentially, invoking fn for every whole,
// checksum-verified record. Framing damage — a torn frame header, a length
// running past EOF, a checksum mismatch — ends the scan and is reported as
// a torn tail (the caller truncates at GoodSize). A payload that passes its
// checksum but fails to decode is a format error and is returned as such:
// silently dropping provably-intact data would hide real bugs.
func scanWAL(path string, fn func(*walRecord) error) (walScanResult, error) {
	var res walScanResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return res, err
	}
	size := fi.Size()

	hdr := make([]byte, len(walMagic)+4+8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return res, fmt.Errorf("store: wal header of %s: %w", path, err)
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return res, fmt.Errorf("store: %s is not a wal segment (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(walMagic):]); v != codecVer {
		return res, fmt.Errorf("store: unsupported wal version %d in %s", v, path)
	}
	res.Start = binary.LittleEndian.Uint64(hdr[len(walMagic)+4:])
	res.GoodSize = int64(len(hdr))

	var frame [8]byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			if err != io.EOF {
				res.Truncated = true // partial frame header: torn tail
			}
			return res, nil
		}
		plen := int64(binary.LittleEndian.Uint32(frame[0:4]))
		want := binary.LittleEndian.Uint32(frame[4:8])
		if res.GoodSize+8+plen > size {
			res.Truncated = true // length points past EOF: torn tail
			return res, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			res.Truncated = true
			return res, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			res.Truncated = true // checksum mismatch: corrupt tail
			return res, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return res, fmt.Errorf("store: wal record at offset %d of %s: %w", res.GoodSize, path, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.GoodSize += 8 + plen
	}
}
