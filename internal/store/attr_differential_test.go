package store

// Attribute-storage differential suite. The columnar []attrPair node layout
// replaced per-node attribute maps; these tests pin its two observable
// contracts across 27 seeded fuzz workloads:
//
//  1. Detection is layout-independent: Dect over the columnar graph and
//     over a map-backed reference view (attribute tuples copied into
//     map[NodeID]map[AttrID]Value) produce identical violation sets.
//  2. Snapshot bytes are canonical: rebuilding the same graph with
//     shuffled attribute- and edge-insertion orders encodes to the exact
//     same snapshot byte stream, because the columnar representation sorts
//     tuples by AttrID and adjacency by (Label, To) regardless of arrival
//     order.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
)

type attrWorkload struct {
	profile  gen.Profile
	entities int
	rules    int
	seed     int64
}

// attrWorkloads is the 27-entry fuzz table: every profile at two sizes and
// three seeds, plus three wide-rule-set variants.
func attrWorkloads() []attrWorkload {
	var ws []attrWorkload
	for _, p := range []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec, gen.Synthetic} {
		for _, n := range []int{80, 150} {
			for _, seed := range []int64{1, 2, 3} {
				ws = append(ws, attrWorkload{profile: p, entities: n, rules: 8, seed: seed})
			}
		}
	}
	ws = append(ws,
		attrWorkload{profile: gen.YAGO2, entities: 120, rules: 16, seed: 4},
		attrWorkload{profile: gen.DBpedia, entities: 120, rules: 16, seed: 5},
		attrWorkload{profile: gen.Synthetic, entities: 120, rules: 16, seed: 6},
	)
	return ws
}

// mapRefView is the map-backed reference: it delegates structure to the
// columnar graph but answers every attribute lookup from plain Go maps, the
// representation the columnar layout replaced. It deliberately does not
// implement graph.AttrIndexed, so plans fall back to label scans.
type mapRefView struct {
	g     *graph.Graph
	attrs map[graph.NodeID]map[graph.AttrID]graph.Value
}

func newMapRef(g *graph.Graph) *mapRefView {
	r := &mapRefView{g: g, attrs: make(map[graph.NodeID]map[graph.AttrID]graph.Value, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		g.Attrs(id, func(a graph.AttrID, val graph.Value) {
			m := r.attrs[id]
			if m == nil {
				m = make(map[graph.AttrID]graph.Value, 4)
				r.attrs[id] = m
			}
			m[a] = val
		})
	}
	return r
}

func (r *mapRefView) Symbols() *graph.Symbols { return r.g.Symbols() }
func (r *mapRefView) NumNodes() int           { return r.g.NumNodes() }
func (r *mapRefView) NumEdges() int           { return r.g.NumEdges() }

func (r *mapRefView) Label(v graph.NodeID) graph.LabelID { return r.g.Label(v) }

func (r *mapRefView) Attr(v graph.NodeID, a graph.AttrID) graph.Value { return r.attrs[v][a] }

func (r *mapRefView) Out(v graph.NodeID) []graph.Half { return r.g.Out(v) }
func (r *mapRefView) In(v graph.NodeID) []graph.Half  { return r.g.In(v) }

func (r *mapRefView) HasEdgeL(u, v graph.NodeID, l graph.LabelID) bool { return r.g.HasEdgeL(u, v, l) }

func (r *mapRefView) NodesWithLabel(l graph.LabelID) []graph.NodeID { return r.g.NodesWithLabel(l) }
func (r *mapRefView) CountLabel(l graph.LabelID) int                { return r.g.CountLabel(l) }

var _ graph.View = (*mapRefView)(nil)

func canonVioSet(vs []core.Violation) string {
	keys := make([]string, 0, len(vs))
	for k := range detect.VioKeySet(vs) {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// shuffledRebuild reconstructs g node-by-node on a cloned symbol table,
// inserting each node's attributes and the edge list in random order.
func shuffledRebuild(g *graph.Graph, rnd *rand.Rand) *graph.Graph {
	ng := graph.NewWithSymbols(g.Symbols().Clone())
	type attr struct {
		id  graph.AttrID
		val graph.Value
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if got := ng.AddNodeL(g.Label(id)); got != id {
			panic("node id drift during rebuild")
		}
		var as []attr
		g.Attrs(id, func(a graph.AttrID, val graph.Value) { as = append(as, attr{a, val}) })
		rnd.Shuffle(len(as), func(i, j int) { as[i], as[j] = as[j], as[i] })
		for _, a := range as {
			ng.SetAttrA(id, a.id, a.val)
		}
	}
	type edge struct {
		u, v graph.NodeID
		l    graph.LabelID
	}
	var es []edge
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		for _, h := range g.Out(id) {
			es = append(es, edge{id, h.To, h.Label})
		}
	}
	rnd.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
	for _, e := range es {
		ng.AddEdgeL(e.u, e.v, e.l)
	}
	return ng
}

func snapshotBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, &snapshotData{G: g}); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestAttrStorageDifferential(t *testing.T) {
	workloads := attrWorkloads()
	if len(workloads) != 27 {
		t.Fatalf("fuzz table has %d workloads, want 27", len(workloads))
	}
	for i, w := range workloads {
		w, i := w, i
		t.Run(fmt.Sprintf("%s/n%d/seed%d", w.profile.Name, w.entities, w.seed), func(t *testing.T) {
			t.Parallel()
			ds := gen.Generate(w.profile, w.entities, w.seed)
			rules := gen.Rules(w.profile, gen.RuleConfig{Count: w.rules, MaxDiameter: 4, Seed: w.seed})

			// 1. columnar vs map-backed reference: identical violation sets
			ref := newMapRef(ds.G)
			want := canonVioSet(detect.Dect(ds.G, rules, detect.Options{}).Violations)
			got := canonVioSet(detect.Dect(ref, rules, detect.Options{}).Violations)
			if got != want {
				t.Fatalf("Dect(columnar) != Dect(map reference)\ncolumnar:\n%s\nreference:\n%s", want, got)
			}

			// 2. snapshot bytes are insertion-order canonical
			orig := snapshotBytes(t, ds.G)
			rebuilt := shuffledRebuild(ds.G, rand.New(rand.NewSource(w.seed*31+int64(i))))
			if !bytes.Equal(orig, snapshotBytes(t, rebuilt)) {
				t.Fatal("snapshot bytes depend on attribute/edge insertion order")
			}
		})
	}
}
