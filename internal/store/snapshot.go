package store

// Snapshot codec (format version 1). A snapshot is a complete, self-
// describing image of a serving session at one batch sequence number:
//
//	magic   "NGDSNAPS"                      (8 bytes)
//	u32     format version (1)
//	u64     seq — the batch sequence the snapshot covers
//	symbols labels beyond the wildcard, then attribute names (counted
//	        string lists; interning order is preserved so ids decode
//	        identically)
//	nodes   per node: label id, attribute count, (attr id, typed value)*
//	edges   per node: out-degree, (edge label id, head node)* — in-lists,
//	        the by-label postings and the attribute indexes are derived
//	        structures and are rebuilt on load
//	names   the external-id map: (string id, node)*
//	rules   the rule set Σ rendered in the text DSL (re-parsed on load)
//	vios    the violation store: (rule name, match node list)*
//	u32     CRC-32 (IEEE) of every preceding byte
//
// The violation store rides in the snapshot so recovery can seed the
// restored session without re-running batch detection — that is what makes
// recovery cost proportional to the WAL suffix rather than to |G|·‖Σ‖.
// Snapshots are written to a temp file and atomically renamed into place;
// a torn snapshot write can therefore never shadow the previous good one.

import (
	"fmt"
	"io"

	"ngd/internal/graph"
)

const (
	snapMagic  = "NGDSNAPS"
	walMagic   = "NGDWALOG"
	codecVer   = 1
	snapSuffix = ".ngds"
	walSuffix  = ".ngdw"
	tmpSuffix  = ".tmp"
)

// vioRec is a violation as persisted: the rule by name, the match by node
// ids. Resolution back to *core.NGD happens after the rules text is parsed.
type vioRec struct {
	Rule  string
	Match []graph.NodeID
}

// snapshotData is the decoded (or to-be-encoded) content of one snapshot.
type snapshotData struct {
	Seq        uint64
	G          *graph.Graph
	Names      map[string]graph.NodeID
	RulesText  string
	Violations []vioRec
}

// writeSnapshot encodes sd onto w.
func writeSnapshot(w io.Writer, sd *snapshotData) error {
	c := newCWriter(w)
	c.write([]byte(snapMagic))
	c.u32(codecVer)
	c.u64(sd.Seq)

	// symbols: labels beyond the pre-interned wildcard, then attrs
	syms := sd.G.Symbols()
	c.uvarint(uint64(syms.NumLabels() - 1))
	for l := 1; l < syms.NumLabels(); l++ {
		c.str(syms.LabelName(graph.LabelID(l)))
	}
	c.uvarint(uint64(syms.NumAttrs()))
	for a := 0; a < syms.NumAttrs(); a++ {
		c.str(syms.AttrName(graph.AttrID(a)))
	}

	// nodes: label + typed attribute tuple
	n := sd.G.NumNodes()
	c.uvarint(uint64(n))
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		c.uvarint(uint64(sd.G.Label(id)))
		c.uvarint(uint64(sd.G.NumAttrs(id)))
		sd.G.Attrs(id, func(a graph.AttrID, val graph.Value) {
			c.uvarint(uint64(a))
			c.value(val)
		})
	}

	// adjacency: out-lists only (in-lists are the mirror image)
	for v := 0; v < n; v++ {
		out := sd.G.Out(graph.NodeID(v))
		c.uvarint(uint64(len(out)))
		for _, h := range out {
			c.uvarint(uint64(h.Label))
			c.uvarint(uint64(h.To))
		}
	}

	// external-id map
	c.uvarint(uint64(len(sd.Names)))
	for id, v := range sd.Names {
		c.str(id)
		c.uvarint(uint64(v))
	}

	// rules + violation store
	c.str(sd.RulesText)
	c.uvarint(uint64(len(sd.Violations)))
	for _, vr := range sd.Violations {
		c.str(vr.Rule)
		c.uvarint(uint64(len(vr.Match)))
		for _, m := range vr.Match {
			c.uvarint(uint64(m))
		}
	}

	c.rawU32(c.sum32())
	return c.flush()
}

// readSnapshot decodes a snapshot, rebuilding the graph (including its
// derived structures: in-lists and by-label postings; attribute indexes are
// rebuilt lazily by the first matching plan that wants them). The CRC
// trailer is verified before the result is returned.
func readSnapshot(r io.Reader) (*snapshotData, error) {
	c := newCReader(r)
	magic := make([]byte, len(snapMagic))
	if err := c.read(magic); err != nil {
		return nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("store: not a snapshot file (bad magic %q)", magic)
	}
	ver, err := c.u32()
	if err != nil {
		return nil, err
	}
	if ver != codecVer {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (want %d)", ver, codecVer)
	}
	sd := &snapshotData{}
	if sd.Seq, err = c.u64(); err != nil {
		return nil, err
	}

	// symbols: intern in recorded order so ids decode identically
	syms := graph.NewSymbols()
	nLabels, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLabels; i++ {
		s, err := c.str()
		if err != nil {
			return nil, err
		}
		syms.Label(s)
	}
	nAttrs, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nAttrs; i++ {
		s, err := c.str()
		if err != nil {
			return nil, err
		}
		syms.Attr(s)
	}

	g := graph.NewWithSymbols(syms)
	sd.G = g
	nNodes, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nNodes; i++ {
		lbl, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if lbl >= uint64(syms.NumLabels()) {
			return nil, fmt.Errorf("store: node %d references unknown label id %d", i, lbl)
		}
		v := g.AddNodeL(graph.LabelID(lbl))
		na, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < na; j++ {
			a, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if a >= uint64(syms.NumAttrs()) {
				return nil, fmt.Errorf("store: node %d references unknown attr id %d", i, a)
			}
			val, err := c.value()
			if err != nil {
				return nil, err
			}
			g.SetAttrA(v, graph.AttrID(a), val)
		}
	}

	for v := uint64(0); v < nNodes; v++ {
		deg, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < deg; j++ {
			lbl, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			to, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if to >= nNodes || lbl >= uint64(syms.NumLabels()) {
				return nil, fmt.Errorf("store: edge (%d -%d-> %d) out of range", v, lbl, to)
			}
			g.AddEdgeL(graph.NodeID(v), graph.NodeID(to), graph.LabelID(lbl))
		}
	}

	nNames, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	sd.Names = make(map[string]graph.NodeID, nNames)
	for i := uint64(0); i < nNames; i++ {
		id, err := c.str()
		if err != nil {
			return nil, err
		}
		v, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= nNodes {
			return nil, fmt.Errorf("store: external id %q references unknown node %d", id, v)
		}
		sd.Names[id] = graph.NodeID(v)
	}

	if sd.RulesText, err = c.str(); err != nil {
		return nil, err
	}
	nVios, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nVios; i++ {
		name, err := c.str()
		if err != nil {
			return nil, err
		}
		ml, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		m := make([]graph.NodeID, 0, min(ml, 64))
		for j := uint64(0); j < ml; j++ {
			id, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if id >= nNodes {
				return nil, fmt.Errorf("store: violation %q match references unknown node %d", name, id)
			}
			m = append(m, graph.NodeID(id))
		}
		sd.Violations = append(sd.Violations, vioRec{Rule: name, Match: m})
	}

	want := c.sum32()
	got, err := c.rawU32()
	if err != nil {
		return nil, fmt.Errorf("store: snapshot trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return sd, nil
}
