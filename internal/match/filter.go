// Literal-based candidate pruning (§6.2 optimization step (3)).
//
// A rule's precondition literal of the shape x.A ⊗ c — a bare term compared
// against a variable-free expression — constrains every candidate for
// pattern node x before any recursion happens: a candidate falsifying it
// can never satisfy X, hence never yield a violation. Filters collects
// these predicates per pattern node; BuildPrunedPlan turns them into
//
//   - seed candidate generation from the graph's attribute indexes
//     (equality via the hash index, range predicates via the ordered
//     index) instead of full label-bucket scans, and
//   - per-candidate residual checks applied during adjacency scans,
//
// while IndexSelectivity feeds index cardinalities into matching-order
// selection so the most selective (indexed) pattern node becomes the seed.
package match

import (
	"math"

	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

// AttrPred is one compiled candidate predicate: node.Attr Op Const.
type AttrPred struct {
	// Attr is the interned attribute, or -1 when the attribute name never
	// occurs in the graph (the predicate is then unsatisfiable: absent
	// attributes satisfy no literal).
	Attr  graph.AttrID
	Op    expr.Cmp
	Const expr.Result
}

// NodeFilter is the conjunction of predicates for one pattern node.
type NodeFilter struct {
	Preds []AttrPred
}

// Filters holds one NodeFilter per pattern node (by node index). A nil
// Filters disables pruning entirely.
type Filters []NodeFilter

// NewFilters returns empty filters for an n-node pattern.
func NewFilters(n int) Filters { return make(Filters, n) }

// Empty reports whether no predicate was compiled.
func (f Filters) Empty() bool {
	for i := range f {
		if len(f[i].Preds) > 0 {
			return false
		}
	}
	return true
}

// AddLiteral compiles one precondition literal L op R into a predicate when
// it has the single-node constant shape (x.A ⊗ const-expr, either side). It
// returns the pattern node the predicate was attached to, or -1 when the
// literal is not compilable. Literals relating several variables, several
// attributes of one node, or arithmetic over a term stay with the
// level-by-level literal evaluation (detect.LitEval) untouched.
func (f Filters) AddLiteral(p *pattern.Pattern, syms *graph.Symbols, L *expr.Expr, op expr.Cmp, R *expr.Expr) int {
	term, c, cop := L, expr.Result{}, op
	switch {
	case L.Op == expr.OpVar:
		cv, ok := expr.ConstValue(R)
		if !ok {
			return -1
		}
		c = cv
	case R.Op == expr.OpVar:
		cv, ok := expr.ConstValue(L)
		if !ok {
			return -1
		}
		term, c, cop = R, cv, op.Flip()
	default:
		return -1
	}
	idx := p.VarIndex(term.Var)
	if idx < 0 || idx >= len(f) {
		return -1
	}
	f[idx].Preds = append(f[idx].Preds, AttrPred{
		Attr:  syms.LookupAttr(term.Attr), // -1 (unsatisfiable) when unseen
		Op:    cop,
		Const: c,
	})
	return idx
}

// Holds evaluates the predicate against a candidate's attribute value.
func (pr *AttrPred) Holds(g graph.View, v graph.NodeID) bool {
	if pr.Attr < 0 {
		return false
	}
	return expr.CompareValue(g.Attr(v, pr.Attr), pr.Op, pr.Const)
}

// intBounds converts an integer-candidate predicate into inclusive int64
// bounds: an integer x satisfies (x ⊗ n/d) iff lo ≤ x ≤ hi. empty=true
// means no integer satisfies it; ok=false means the predicate shape is not
// range-expressible (≠, string operands).
func intBounds(op expr.Cmp, c expr.Result) (lo, hi int64, empty, ok bool) {
	if c.IsStr {
		switch op {
		case expr.Eq:
			// handled by the string hash index, not here
			return 0, 0, false, false
		case expr.Ne:
			return 0, 0, false, false
		default:
			// ordered comparison with a string is a type error: no
			// candidate can satisfy it.
			return 0, 0, true, true
		}
	}
	n, d := c.N.Rat() // d ≥ 1
	q := n / d
	if (n%d != 0) && (n < 0) != (d < 0) {
		q-- // floor division
	}
	exact := n%d == 0
	switch op {
	case expr.Eq:
		if !exact {
			return 0, 0, true, true // no integer equals a non-integral rational
		}
		return q, q, false, true
	case expr.Lt:
		if exact {
			if q == math.MinInt64 {
				return 0, 0, true, true
			}
			return math.MinInt64, q - 1, false, true
		}
		return math.MinInt64, q, false, true
	case expr.Le:
		return math.MinInt64, q, false, true
	case expr.Gt:
		if q == math.MaxInt64 {
			return 0, 0, true, true
		}
		return q + 1, math.MaxInt64, false, true
	case expr.Ge:
		if exact {
			return q, math.MaxInt64, false, true
		}
		if q == math.MaxInt64 {
			return 0, 0, true, true
		}
		return q + 1, math.MaxInt64, false, true
	default: // Ne: the complement of a point is not one contiguous range
		return 0, 0, false, false
	}
}

// seedable reports whether the predicate can drive index-based seed
// candidate generation (equality or a contiguous integer range).
func seedable(pr *AttrPred) bool {
	if pr.Attr < 0 {
		return false
	}
	if pr.Const.IsStr {
		return pr.Op == expr.Eq
	}
	return pr.Op != expr.Ne
}

// seedRun resolves the candidate run for pattern node `node` under pred pr
// from the view's attribute index. ok=false when no index is available (the
// caller falls back to the label bucket).
func seedRun(g graph.View, cp *pattern.Compiled, node int, pr *AttrPred) (graph.IndexRun, bool) {
	if !seedable(pr) {
		return graph.IndexRun{}, false
	}
	l := cp.NodeLabels[node]
	av, iok := g.(graph.AttrIndexed)
	if !iok || l == graph.Wildcard || l == graph.NoLabel {
		return graph.IndexRun{}, false
	}
	ix := av.AttrIndexFor(l, pr.Attr)
	if ix == nil {
		return graph.IndexRun{}, false
	}
	if pr.Const.IsStr {
		return ix.Strs(pr.Const.S), true
	}
	lo, hi, empty, ok := intBounds(pr.Op, pr.Const)
	if !ok {
		return graph.IndexRun{}, false
	}
	if empty {
		return ix.IntRange(1, 0), true // canonical empty run
	}
	if pr.Op == expr.Eq {
		return ix.Ints(lo), true
	}
	return ix.IntRange(lo, hi), true
}

// EnsureIndexes builds the attribute indexes the filters can exploit over
// g. It must run during single-threaded setup (BuildPrunedPlan does); it is
// a no-op for views without index support and for wildcard pattern nodes.
func EnsureIndexes(g graph.View, cp *pattern.Compiled, f Filters) {
	av, ok := g.(graph.AttrIndexed)
	if !ok {
		return
	}
	for node := range f {
		l := cp.NodeLabels[node]
		if l == graph.Wildcard || l == graph.NoLabel {
			continue
		}
		for i := range f[node].Preds {
			if seedable(&f[node].Preds[i]) {
				av.EnsureAttrIndex(l, f[node].Preds[i].Attr)
			}
		}
	}
}

// bestSeedPred picks the most selective seedable predicate of a node (by
// index run cardinality), or -1 when none applies.
func bestSeedPred(g graph.View, cp *pattern.Compiled, node int, f Filters) int {
	best, _ := SeedScan(g, cp, node, f)
	return best
}

// SeedScan reports the most selective seedable predicate of a pattern node
// and its current index-run size (pred = -1, size = -1 when no seedable
// index applies). The cost-based planner (internal/plan) scores seed steps
// with it.
func SeedScan(g graph.View, cp *pattern.Compiled, node int, f Filters) (pred, size int) {
	pred, size = -1, -1
	for i := range f[node].Preds {
		run, ok := seedRun(g, cp, node, &f[node].Preds[i])
		if !ok {
			continue
		}
		if pred < 0 || run.Len() < size {
			pred, size = i, run.Len()
		}
	}
	return pred, size
}

// IndexSelectivity estimates per-node candidate counts like
// GraphSelectivity, but replaces the bare label count with the smallest
// attribute-index run available for the node — so matching-order selection
// seeds at indexed, highly selective pattern nodes first. Estimates are
// memoized: the planner's greedy loop probes each node O(n) times.
func IndexSelectivity(g graph.View, cp *pattern.Compiled, f Filters) Selectivity {
	cache := make([]int, len(cp.Src.Nodes))
	for i := range cache {
		cache[i] = -1
	}
	return func(node int) int {
		if cache[node] >= 0 {
			return cache[node]
		}
		est := g.CountLabel(cp.NodeLabels[node])
		if f != nil {
			for i := range f[node].Preds {
				if run, ok := seedRun(g, cp, node, &f[node].Preds[i]); ok && run.Len() < est {
					est = run.Len()
				}
			}
		}
		cache[node] = est
		return est
	}
}
