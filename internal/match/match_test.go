package match

import (
	"sort"
	"testing"

	"ngd/internal/graph"
	"ngd/internal/pattern"
)

// collect runs a full enumeration and returns all matches as copies.
func collect(g graph.View, p *pattern.Pattern, bound []int, partial []graph.NodeID) [][]graph.NodeID {
	cp := pattern.Compile(p, g.Symbols())
	plan := BuildPlan(cp, bound, GraphSelectivity(g, cp))
	m := NewMatcher(g, plan, Hooks{})
	var out [][]graph.NodeID
	if partial == nil {
		partial = NewPartial(len(p.Nodes))
	}
	m.Run(partial, func(sol []graph.NodeID) bool {
		out = append(out, append([]graph.NodeID(nil), sol...))
		return true
	})
	return out
}

func sortMatches(ms [][]graph.NodeID) {
	sort.Slice(ms, func(i, j int) bool {
		for k := range ms[i] {
			if ms[i][k] != ms[j][k] {
				return ms[i][k] < ms[j][k]
			}
		}
		return false
	})
}

func TestSingleEdgeMatch(t *testing.T) {
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("city")
	g.AddEdge(a, b, "knows")
	g.AddEdge(b, c, "livesIn")

	p := pattern.New()
	x := p.AddNode("x", "person")
	y := p.AddNode("y", "person")
	p.AddEdge(x, y, "knows")

	ms := collect(g, p, nil, nil)
	if len(ms) != 1 || ms[0][0] != a || ms[0][1] != b {
		t.Fatalf("matches = %v, want [[%d %d]]", ms, a, b)
	}
}

func TestHomomorphismNotInjective(t *testing.T) {
	// pattern x -e-> y, y -e-> z must match the 1-node self loop with
	// x=y=z (homomorphism, not isomorphism: paper §2)
	g := graph.New()
	v := g.AddNode("n")
	g.AddEdge(v, v, "e")

	p := pattern.New()
	x := p.AddNode("x", "n")
	y := p.AddNode("y", "n")
	z := p.AddNode("z", "n")
	p.AddEdge(x, y, "e")
	p.AddEdge(y, z, "e")

	ms := collect(g, p, nil, nil)
	if len(ms) != 1 || ms[0][0] != v || ms[0][1] != v || ms[0][2] != v {
		t.Fatalf("self-loop homomorphism: matches = %v", ms)
	}
}

func TestWildcardMatching(t *testing.T) {
	g := graph.New()
	a := g.AddNode("alpha")
	b := g.AddNode("beta")
	c := g.AddNode("gamma")
	g.AddEdge(a, b, "e")
	g.AddEdge(c, b, "e")

	p := pattern.New()
	x := p.AddNode("x", "_")
	y := p.AddNode("y", "beta")
	p.AddEdge(x, y, "e")

	ms := collect(g, p, nil, nil)
	if len(ms) != 2 {
		t.Fatalf("wildcard matches = %v, want 2", ms)
	}
}

func TestUnknownLabelNoMatch(t *testing.T) {
	g := graph.New()
	a := g.AddNode("n")
	b := g.AddNode("n")
	g.AddEdge(a, b, "e")

	p := pattern.New()
	x := p.AddNode("x", "n")
	y := p.AddNode("y", "n")
	p.AddEdge(x, y, "ghost-label")
	if ms := collect(g, p, nil, nil); len(ms) != 0 {
		t.Fatalf("unknown edge label matched: %v", ms)
	}

	p2 := pattern.New()
	p2.AddNode("x", "ghost")
	if ms := collect(g, p2, nil, nil); len(ms) != 0 {
		t.Fatalf("unknown node label matched: %v", ms)
	}
}

func TestDiamondPattern(t *testing.T) {
	// x -a-> y, x -b-> z, y -c-> w, z -c-> w : DAG with a join
	g := graph.New()
	x := g.AddNode("X")
	y := g.AddNode("Y")
	z := g.AddNode("Z")
	w1 := g.AddNode("W")
	w2 := g.AddNode("W")
	g.AddEdge(x, y, "a")
	g.AddEdge(x, z, "b")
	g.AddEdge(y, w1, "c")
	g.AddEdge(z, w1, "c")
	g.AddEdge(y, w2, "c")
	// w2 lacks the z -c-> w2 edge: only w1 completes the diamond

	p := pattern.New()
	px := p.AddNode("x", "X")
	py := p.AddNode("y", "Y")
	pz := p.AddNode("z", "Z")
	pw := p.AddNode("w", "W")
	p.AddEdge(px, py, "a")
	p.AddEdge(px, pz, "b")
	p.AddEdge(py, pw, "c")
	p.AddEdge(pz, pw, "c")

	ms := collect(g, p, nil, nil)
	if len(ms) != 1 || ms[0][3] != w1 {
		t.Fatalf("diamond matches = %v, want single match on w1", ms)
	}
}

func TestCyclicPattern(t *testing.T) {
	g := graph.New()
	a := g.AddNode("n")
	b := g.AddNode("n")
	c := g.AddNode("n")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, a, "e")
	g.AddEdge(b, c, "e")

	p := pattern.New()
	x := p.AddNode("x", "n")
	y := p.AddNode("y", "n")
	p.AddEdge(x, y, "e")
	p.AddEdge(y, x, "e")

	ms := collect(g, p, nil, nil)
	sortMatches(ms)
	if len(ms) != 2 {
		t.Fatalf("cycle matches = %v, want 2 (a,b) and (b,a)", ms)
	}
}

func TestPreBoundPivot(t *testing.T) {
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("person")
	g.AddEdge(a, b, "knows")
	g.AddEdge(c, b, "knows")
	g.AddEdge(b, c, "knows")

	p := pattern.New()
	x := p.AddNode("x", "person")
	y := p.AddNode("y", "person")
	z := p.AddNode("z", "person")
	p.AddEdge(x, y, "knows")
	p.AddEdge(y, z, "knows")

	// pin (x,y) = (a,b): only z remains; must find z=c
	cp := pattern.Compile(p, g.Symbols())
	partial := NewPartial(3)
	partial[x] = a
	partial[y] = b
	if !VerifyBound(g, cp, partial) {
		t.Fatal("bound verification failed for valid pivot")
	}
	ms := collect(g, p, []int{x, y}, partial)
	if len(ms) != 1 || ms[0][2] != c {
		t.Fatalf("pivot matches = %v", ms)
	}

	// pin an invalid pivot: edge (b,a) does not exist
	partial2 := NewPartial(3)
	partial2[x] = b
	partial2[y] = a
	if VerifyBound(g, cp, partial2) {
		t.Fatal("bound verification accepted missing edge")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	g.AddNode("A")
	b := g.AddNode("B")
	_ = a
	_ = b

	p := pattern.New()
	p.AddNode("x", "A")
	p.AddNode("y", "B")
	// no edges: cross product of candidates
	ms := collect(g, p, nil, nil)
	if len(ms) != 2 {
		t.Fatalf("disconnected matches = %d, want 2 (2 A's × 1 B)", len(ms))
	}
}

func TestSelfLoopPattern(t *testing.T) {
	g := graph.New()
	a := g.AddNode("n")
	b := g.AddNode("n")
	g.AddEdge(a, a, "e")
	g.AddEdge(a, b, "e")

	p := pattern.New()
	x := p.AddNode("x", "n")
	p.AddEdge(x, x, "e")
	ms := collect(g, p, nil, nil)
	if len(ms) != 1 || ms[0][0] != a {
		t.Fatalf("self-loop matches = %v, want [a]", ms)
	}
}

func TestHooksPruneAndBacktrack(t *testing.T) {
	g := graph.New()
	hub := g.AddNode("hub")
	for i := 0; i < 5; i++ {
		leaf := g.AddNode("leaf")
		g.AddEdge(hub, leaf, "e")
	}

	p := pattern.New()
	x := p.AddNode("x", "hub")
	y := p.AddNode("y", "leaf")
	p.AddEdge(x, y, "e")

	cp := pattern.Compile(p, g.Symbols())
	plan := BuildPlan(cp, nil, GraphSelectivity(g, cp))
	extends, backtracks := 0, 0
	pruneAfter := 2
	m := NewMatcher(g, plan, Hooks{
		OnExtend: func(step int, partial []graph.NodeID) bool {
			extends++
			// prune every leaf binding after the first two
			return !(plan.Steps[step].Node == y && extends > pruneAfter)
		},
		OnBacktrack: func(step int) { backtracks++ },
	})
	matches := 0
	m.Run(NewPartial(2), func([]graph.NodeID) bool { matches++; return true })
	if extends != backtracks {
		t.Errorf("extend/backtrack mismatch: %d vs %d", extends, backtracks)
	}
	if matches >= 5 {
		t.Errorf("pruning had no effect: %d matches", matches)
	}
}

func TestEarlyStop(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddNode("n")
	}
	p := pattern.New()
	p.AddNode("x", "n")

	cp := pattern.Compile(p, g.Symbols())
	plan := BuildPlan(cp, nil, nil)
	m := NewMatcher(g, plan, Hooks{})
	count := 0
	m.Run(NewPartial(1), func([]graph.NodeID) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop: got %d matches, want 3", count)
	}
}

func TestLabelSlice(t *testing.T) {
	list := []graph.Half{{Label: 1, To: 5}, {Label: 2, To: 1}, {Label: 2, To: 9}, {Label: 4, To: 0}}
	if got := LabelSlice(list, 2); len(got) != 2 {
		t.Errorf("LabelSlice(2) = %v", got)
	}
	if got := LabelSlice(list, 3); len(got) != 0 {
		t.Errorf("LabelSlice(3) = %v", got)
	}
	if got := LabelSlice(nil, 1); len(got) != 0 {
		t.Errorf("LabelSlice(nil) = %v", got)
	}
}
