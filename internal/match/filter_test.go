package match

import (
	"math"
	"testing"

	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

func TestAddLiteralShapes(t *testing.T) {
	p := pattern.New()
	p.AddNode("x", "T")
	p.AddNode("y", "U")
	syms := graph.NewSymbols()
	syms.Attr("a")
	syms.Attr("b")

	cases := []struct {
		name string
		l    *expr.Expr
		op   expr.Cmp
		r    *expr.Expr
		want bool
	}{
		{"term=const", expr.V("x", "a"), expr.Eq, expr.C(5), true},
		{"const<=term (flipped)", expr.C(3), expr.Le, expr.V("y", "b"), true},
		{"term=const-arith", expr.V("x", "a"), expr.Eq, expr.Add(expr.C(2), expr.C(3)), true},
		{"term=string", expr.V("x", "a"), expr.Eq, expr.S("v"), true},
		{"two terms", expr.V("x", "a"), expr.Lt, expr.V("y", "b"), false},
		{"arith over term", expr.Abs(expr.V("x", "a")), expr.Le, expr.C(9), false},
		{"unknown attr still compiles", expr.V("x", "zzz"), expr.Eq, expr.C(1), true},
		{"div by zero const", expr.V("x", "a"), expr.Eq, expr.Div(expr.C(1), expr.C(0)), false},
	}
	for _, tc := range cases {
		f := NewFilters(2)
		if got := f.AddLiteral(p, syms, tc.l, tc.op, tc.r) >= 0; got != tc.want {
			t.Errorf("%s: AddLiteral compiled = %v, want %v", tc.name, got, tc.want)
		}
	}

	// flipping: 3 <= y.b must become y.b >= 3, attached to node y
	f := NewFilters(2)
	if node := f.AddLiteral(p, syms, expr.C(3), expr.Le, expr.V("y", "b")); node != 1 {
		t.Fatalf("AddLiteral attached to node %d, want 1", node)
	}
	pr := f[1].Preds[0]
	if pr.Op != expr.Ge {
		t.Fatalf("flip: got op %v, want >=", pr.Op)
	}
	// unknown attribute compiles to the unsatisfiable Attr=-1 predicate
	f2 := NewFilters(2)
	f2.AddLiteral(p, syms, expr.V("x", "zzz"), expr.Eq, expr.C(1))
	if f2[0].Preds[0].Attr >= 0 {
		t.Fatal("unknown attribute should compile to Attr=-1")
	}
}

func TestIntBounds(t *testing.T) {
	num := func(n, d int64) expr.Result {
		r, ok := expr.ConstValue(expr.Div(expr.C(n), expr.C(d)))
		if !ok {
			t.Fatalf("const %d/%d", n, d)
		}
		return r
	}
	cases := []struct {
		op     expr.Cmp
		n, d   int64
		lo, hi int64
		empty  bool
	}{
		{expr.Eq, 5, 1, 5, 5, false},
		{expr.Eq, 7, 2, 0, 0, true}, // no integer equals 3.5
		{expr.Lt, 7, 2, math.MinInt64, 3, false},
		{expr.Lt, 6, 2, math.MinInt64, 2, false},
		{expr.Le, 7, 2, math.MinInt64, 3, false},
		{expr.Le, 6, 2, math.MinInt64, 3, false},
		{expr.Gt, 7, 2, 4, math.MaxInt64, false},
		{expr.Gt, 6, 2, 4, math.MaxInt64, false},
		{expr.Ge, 7, 2, 4, math.MaxInt64, false},
		{expr.Ge, 6, 2, 3, math.MaxInt64, false},
		{expr.Lt, -7, 2, math.MinInt64, -4, false},
		{expr.Ge, -7, 2, -3, math.MaxInt64, false},
	}
	for _, tc := range cases {
		lo, hi, empty, ok := intBounds(tc.op, num(tc.n, tc.d))
		if !ok {
			t.Fatalf("%v %d/%d: not range-expressible", tc.op, tc.n, tc.d)
		}
		if empty != tc.empty || (!empty && (lo != tc.lo || hi != tc.hi)) {
			t.Errorf("%v %d/%d: got [%d,%d] empty=%v, want [%d,%d] empty=%v",
				tc.op, tc.n, tc.d, lo, hi, empty, tc.lo, tc.hi, tc.empty)
		}
	}
	if _, _, _, ok := intBounds(expr.Ne, num(5, 1)); ok {
		t.Fatal("!= must not be range-expressible")
	}
}

// TestPlanPrefersIndexedSeed: with bare label counts the planner would seed
// at the smaller label bucket; with an indexed equality predicate available,
// index cardinality must win the seed choice.
func TestPlanPrefersIndexedSeed(t *testing.T) {
	g := graph.New()
	tl := g.Symbols().Label("T")
	ul := g.Symbols().Label("U")
	val := g.Symbols().Attr("val")
	// 100 T nodes, one of which has val=1; 10 U nodes; T->U edges everywhere
	var ts, us []graph.NodeID
	for i := 0; i < 100; i++ {
		n := g.AddNodeL(tl)
		g.SetAttrA(n, val, graph.Int(0))
		ts = append(ts, n)
	}
	g.SetAttrA(ts[42], val, graph.Int(1))
	for i := 0; i < 10; i++ {
		us = append(us, g.AddNodeL(ul))
	}
	el := g.Symbols().Label("e")
	for i, tn := range ts {
		g.AddEdgeL(tn, us[i%len(us)], el)
	}

	p := pattern.New()
	x := p.AddNode("x", "T")
	y := p.AddNode("y", "U")
	p.AddEdge(x, y, "e")
	cp := pattern.Compile(p, g.Symbols())

	plain := BuildPlan(cp, nil, GraphSelectivity(g, cp))
	if plain.Steps[0].Node != y {
		t.Fatalf("unfiltered plan should seed at U (10 < 100), got node %d", plain.Steps[0].Node)
	}

	f := NewFilters(2)
	if f.AddLiteral(p, g.Symbols(), expr.V("x", "val"), expr.Eq, expr.C(1)) < 0 {
		t.Fatal("literal did not compile")
	}
	pruned := BuildPrunedPlan(g, cp, nil, f)
	if pruned.Steps[0].Node != x {
		t.Fatalf("pruned plan should seed at the indexed T node (cardinality 1), got node %d",
			pruned.Steps[0].Node)
	}
	if pruned.Steps[0].SeedPred < 0 {
		t.Fatal("seed step should carry the index predicate")
	}

	// the matcher must enumerate exactly the one indexed candidate
	m := NewMatcher(g, pruned, Hooks{})
	var matches [][]graph.NodeID
	m.Run(NewPartial(2), func(sol []graph.NodeID) bool {
		matches = append(matches, append([]graph.NodeID(nil), sol...))
		return true
	})
	if len(matches) != 1 || matches[0][x] != ts[42] {
		t.Fatalf("matches = %v, want exactly [x=%d]", matches, ts[42])
	}
	if m.Stat.Candidates > 3 {
		t.Fatalf("indexed seed scanned %d candidates, expected ≤ 3", m.Stat.Candidates)
	}
}

// TestMatcherFilterEquivalence: pruned and unpruned enumeration agree on a
// randomized-ish star graph, for equality, range and string predicates.
func TestMatcherFilterEquivalence(t *testing.T) {
	g := graph.New()
	tl := g.Symbols().Label("T")
	ul := g.Symbols().Label("U")
	val := g.Symbols().Attr("val")
	el := g.Symbols().Label("e")
	for i := 0; i < 60; i++ {
		n := g.AddNodeL(tl)
		switch i % 5 {
		case 0:
			g.SetAttrA(n, val, graph.Int(int64(i%7)))
		case 1:
			g.SetAttrA(n, val, graph.Str("s"))
		case 2:
			g.SetAttrA(n, val, graph.Float(float64(i%7)))
		case 3:
			g.SetAttrA(n, val, graph.Float(0.5))
			// case 4: no attribute
		}
		u := g.AddNodeL(ul)
		g.AddEdgeL(n, u, el)
	}

	p := pattern.New()
	x := p.AddNode("x", "T")
	y := p.AddNode("y", "U")
	p.AddEdge(x, y, "e")
	cp := pattern.Compile(p, g.Symbols())

	lits := []struct {
		name string
		op   expr.Cmp
		c    *expr.Expr
	}{
		{"eq", expr.Eq, expr.C(3)},
		{"le", expr.Le, expr.C(4)},
		{"gt", expr.Gt, expr.C(2)},
		{"ne", expr.Ne, expr.C(3)},
		{"str", expr.Eq, expr.S("s")},
		{"half", expr.Lt, expr.Div(expr.C(7), expr.C(2))},
	}
	for _, lc := range lits {
		f := NewFilters(2)
		if f.AddLiteral(p, g.Symbols(), expr.V("x", "val"), lc.op, lc.c) < 0 {
			t.Fatalf("%s: literal did not compile", lc.name)
		}
		enumerate := func(plan *Plan) map[graph.NodeID]bool {
			got := make(map[graph.NodeID]bool)
			m := NewMatcher(g, plan, Hooks{})
			m.Run(NewPartial(2), func(sol []graph.NodeID) bool {
				got[sol[x]] = true
				return true
			})
			return got
		}
		pruned := enumerate(BuildPrunedPlan(g, cp, nil, f))
		// unpruned baseline: no filters, then apply the predicate by hand
		want := make(map[graph.NodeID]bool)
		plain := BuildPlan(cp, nil, GraphSelectivity(g, cp))
		m := NewMatcher(g, plain, Hooks{})
		m.Run(NewPartial(2), func(sol []graph.NodeID) bool {
			if f[x].Preds[0].Holds(g, sol[x]) {
				want[sol[x]] = true
			}
			return true
		})
		if len(pruned) != len(want) {
			t.Fatalf("%s: pruned %d nodes, want %d", lc.name, len(pruned), len(want))
		}
		for v := range pruned {
			if !want[v] {
				t.Fatalf("%s: pruned result has unexpected node %d", lc.name, v)
			}
		}
	}
}
