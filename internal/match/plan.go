// Package match implements homomorphism pattern matching for NGD detection,
// following the generic backtracking procedure Matchn/SubMatchn of the paper
// (§6.2): candidate selection per pattern node, matching-order planning,
// edge verification, and hooks for literal-based pruning. Both the batch
// detector (Dect) and the incremental ones (IncDect/PIncDect) drive it; the
// incremental algorithms additionally pin update pivots as pre-bound nodes.
package match

import (
	"sort"

	"ngd/internal/graph"
	"ngd/internal/pattern"
)

// Unbound marks an unmatched pattern node in a partial solution.
const Unbound graph.NodeID = -1

// EdgeCheck verifies one pattern edge between the step's node and an
// already-bound node.
type EdgeCheck struct {
	Edge  int  // pattern edge index
	Out   bool // true: edge goes step.Node -> Other; false: Other -> step.Node
	Other int  // pattern node index already bound (equals step.Node for loops)
}

// Step extends a partial solution by one pattern node.
type Step struct {
	Node int // pattern node to bind
	// Candidate generation: when AnchorEdge >= 0 candidates come from the
	// adjacency of the bound node AnchorFrom along that edge; otherwise the
	// step is a seed and candidates come from the label index — or, when
	// SeedPred >= 0, from the attribute index run of that filter predicate.
	AnchorEdge int
	AnchorOut  bool // true: candidates = Out(h(AnchorFrom)); false: In(...)
	AnchorFrom int
	// SeedPred indexes Plan.Filters[Node].Preds: the predicate whose
	// attribute-index run seeds this step (-1: scan the label bucket).
	// Only meaningful for seed steps (AnchorEdge < 0).
	SeedPred int
	Checks   []EdgeCheck
}

// Plan is a matching order for (the unbound part of) a compiled pattern.
type Plan struct {
	CP    *pattern.Compiled
	Bound []int  // pre-bound pattern nodes (update pivots), may be empty
	Steps []Step // one per remaining pattern node
	// Filters holds the compiled candidate predicates per pattern node
	// (§6.2 step (3)); nil disables literal-based pruning.
	Filters Filters
}

// Selectivity estimates candidate counts per pattern node; BuildPlan uses it
// to order seeds and ties. A nil function falls back to wildcard-last.
type Selectivity func(node int) int

// GraphSelectivity derives a Selectivity from label frequencies in g.
func GraphSelectivity(g graph.View, cp *pattern.Compiled) Selectivity {
	return func(node int) int {
		return g.CountLabel(cp.NodeLabels[node])
	}
}

// BuildPlan computes a matching order covering every pattern node outside
// bound. Strategy (paper §6.2 "matching order selection"): repeatedly pick
// the unbound node with the most edges into the bound set (most constrained
// first), breaking ties by estimated selectivity; when no unbound node
// touches the bound set (disconnected pattern or empty bound), seed a new
// component at the most selective node.
func BuildPlan(cp *pattern.Compiled, bound []int, sel Selectivity) *Plan {
	n := len(cp.Src.Nodes)
	isBound := make([]bool, n)
	for _, b := range bound {
		isBound[b] = true
	}
	plan := &Plan{CP: cp, Bound: append([]int(nil), bound...)}
	if sel == nil {
		sel = func(node int) int {
			if cp.NodeLabels[node] == graph.Wildcard {
				return 1 << 30
			}
			return 1 << 20
		}
	}

	// edgesInto[i] = pattern edge indices incident to node i
	incident := make([][]int, n)
	for ei, e := range cp.Src.Edges {
		incident[e.Src] = append(incident[e.Src], ei)
		if e.Dst != e.Src {
			incident[e.Dst] = append(incident[e.Dst], ei)
		}
	}

	remaining := 0
	for i := 0; i < n; i++ {
		if !isBound[i] {
			remaining++
		}
	}
	for remaining > 0 {
		best, bestEdges, bestSel := -1, -1, 0
		for i := 0; i < n; i++ {
			if isBound[i] {
				continue
			}
			cnt := 0
			for _, ei := range incident[i] {
				e := cp.Src.Edges[ei]
				if e.Src == e.Dst {
					continue // self loop: no bound neighbor
				}
				if other := e.Src + e.Dst - i; isBound[other] {
					cnt++
				}
			}
			s := sel(i)
			if best < 0 || cnt > bestEdges || (cnt == bestEdges && s < bestSel) {
				best, bestEdges, bestSel = i, cnt, s
			}
		}
		step := Step{Node: best, AnchorEdge: -1, SeedPred: -1}
		// collect checks and pick an anchor among edges into the bound set
		for _, ei := range incident[best] {
			e := cp.Src.Edges[ei]
			if e.Src == e.Dst {
				if e.Src == best {
					step.Checks = append(step.Checks, EdgeCheck{Edge: ei, Out: true, Other: best})
				}
				continue
			}
			other := e.Src + e.Dst - best
			if !isBound[other] {
				continue
			}
			out := e.Src == best // edge best -> other
			if step.AnchorEdge < 0 {
				step.AnchorEdge = ei
				step.AnchorFrom = other
				// candidates come from the *other* node's adjacency:
				// if edge is other -> best, follow other's out-list.
				step.AnchorOut = e.Src == other
			} else {
				step.Checks = append(step.Checks, EdgeCheck{Edge: ei, Out: out, Other: other})
			}
		}
		plan.Steps = append(plan.Steps, step)
		isBound[best] = true
		remaining--
	}
	return plan
}

// BuildPrunedPlan is BuildPlan with literal-based candidate pruning wired
// in (§6.2 step (3)): it builds the attribute indexes the filters can use
// over g, orders the plan by index-aware selectivity instead of bare label
// counts, attaches the filters for residual per-candidate checks, and picks
// the most selective index run to seed each component. A nil or empty
// filter set degrades to the plain label-count plan.
//
// Index construction mutates g's underlying graph, so BuildPrunedPlan must
// run during single-threaded setup — before matchers start (the parallel
// drivers build all plans up front).
func BuildPrunedPlan(g graph.View, cp *pattern.Compiled, bound []int, f Filters) *Plan {
	if f != nil && f.Empty() {
		f = nil
	}
	if f == nil {
		return BuildPlan(cp, bound, GraphSelectivity(g, cp))
	}
	// A pivot-anchored plan over a connected pattern has no seed steps —
	// every step anchors on an edge into the bound set — so index setup
	// would buy nothing; the filters still apply as residual checks.
	if len(bound) > 0 && cp.Src.Connected() {
		plan := BuildPlan(cp, bound, GraphSelectivity(g, cp))
		plan.Filters = f
		return plan
	}
	EnsureIndexes(g, cp, f)
	plan := BuildPlan(cp, bound, IndexSelectivity(g, cp, f))
	plan.Filters = f
	for k := range plan.Steps {
		st := &plan.Steps[k]
		if st.AnchorEdge < 0 {
			st.SeedPred = bestSeedPred(g, cp, st.Node, f)
		}
	}
	return plan
}

// LabelSlice returns the contiguous run of halves carrying label l within a
// sorted adjacency list (binary search on both bounds).
func LabelSlice(list []graph.Half, l graph.LabelID) []graph.Half {
	lo := sort.Search(len(list), func(i int) bool { return list[i].Label >= l })
	hi := sort.Search(len(list), func(i int) bool { return list[i].Label > l })
	return list[lo:hi]
}
