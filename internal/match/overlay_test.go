package match

// Regression test for the overlay/index staleness bug fixed alongside the
// repair engine: an Overlay.SetAttr override on a node that participates in
// a pruning index must not let BuildPrunedPlan / the matcher consume the
// base graph's index run for that (label, attr) pair. The base index still
// holds the node's committed value, so an index-seeded scan silently skips
// nodes whose *overridden* value now satisfies the seed predicate — matches
// (and therefore previewed violations) go missing. The fix masks
// overlay-dirtied pairs from EnsureAttrIndex/AttrIndexFor, forcing the seed
// back to a label scan whose per-candidate filters read through the overlay.

import (
	"testing"

	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

func TestOverlaySetAttrMasksStaleIndexRuns(t *testing.T) {
	g := graph.New()
	tl := g.Symbols().Label("T")
	ul := g.Symbols().Label("U")
	val := g.Symbols().Attr("val")
	el := g.Symbols().Label("e")

	// 40 T nodes; only two carry val=1 in the base graph, so the planner
	// prefers the (T, val) index seed over the 20-node U bucket. The target
	// node has val=0 and an edge into U like everyone else.
	var ts []graph.NodeID
	for i := 0; i < 40; i++ {
		n := g.AddNodeL(tl)
		g.SetAttrA(n, val, graph.Int(0))
		ts = append(ts, n)
	}
	g.SetAttrA(ts[3], val, graph.Int(1))
	g.SetAttrA(ts[7], val, graph.Int(1))
	var us []graph.NodeID
	for i := 0; i < 20; i++ {
		us = append(us, g.AddNodeL(ul))
	}
	for i, tn := range ts {
		g.AddEdgeL(tn, us[i%len(us)], el)
	}
	target := ts[11] // val=0 in base

	p := pattern.New()
	x := p.AddNode("x", "T")
	y := p.AddNode("y", "U")
	p.AddEdge(x, y, "e")
	cp := pattern.Compile(p, g.Symbols())

	f := NewFilters(2)
	if f.AddLiteral(p, g.Symbols(), expr.V("x", "val"), expr.Eq, expr.C(1)) < 0 {
		t.Fatal("literal did not compile")
	}

	// build the base index (as a live session's plans would have)
	basePlan := BuildPrunedPlan(g, cp, nil, f)
	if basePlan.Steps[0].Node != x || basePlan.Steps[0].SeedPred < 0 {
		t.Fatalf("base plan should seed at the indexed T predicate, got step %+v", basePlan.Steps[0])
	}

	enumerate := func(v graph.View, pl *Plan) map[graph.NodeID]bool {
		got := make(map[graph.NodeID]bool)
		m := NewMatcher(v, pl, Hooks{})
		m.Run(NewPartial(2), func(sol []graph.NodeID) bool {
			got[sol[x]] = true
			return true
		})
		return got
	}

	ov := graph.NewOverlay(g, &graph.Delta{})
	ov.SetAttr(target, val, graph.Int(1)) // now satisfies val=1 — overlay only

	// the dirtied (T, val) pair must be masked from index seeding
	if ov.AttrIndexFor(tl, val) != nil {
		t.Fatal("overlay serves the base attribute index for a SetAttr-dirtied (label,attr) pair")
	}
	if ov.EnsureAttrIndex(tl, val) != nil {
		t.Fatal("EnsureAttrIndex must not hand out a stale base index for a dirtied pair")
	}
	// undirtied pairs still delegate (the mask is per (label,attr), not global)
	other := g.Symbols().Attr("other")
	if g.EnsureAttrIndex(tl, other) == nil {
		t.Fatal("base index for (T, other) did not build")
	}
	if ov.AttrIndexFor(tl, other) == nil {
		t.Fatal("overlay must keep delegating undirtied (label,attr) pairs")
	}

	// plan built against the overlay: must enumerate the overridden node
	ovPlan := BuildPrunedPlan(ov, cp, nil, f)
	got := enumerate(ov, ovPlan)
	if !got[target] {
		t.Fatalf("overlay match missed node %d whose overridden val now satisfies the seed predicate (stale index run); got %v",
			target, got)
	}
	if len(got) != 3 {
		t.Fatalf("overlay enumeration found %d seed nodes, want 3 (two base + override)", len(got))
	}

	// a plan cached against the base graph and re-run over the overlay (the
	// plan-cache hazard) must also see the override, since seed runs resolve
	// at matcher run time against the matcher's view
	if got := enumerate(ov, basePlan); !got[target] {
		t.Fatalf("base-built plan over overlay missed overridden node %d", target)
	}

	// the opposite direction: overriding val 1 -> 0 must drop the node even
	// though the base index still lists it (filters re-read the view)
	ov2 := graph.NewOverlay(g, &graph.Delta{})
	ov2.SetAttr(ts[3], val, graph.Int(0))
	if got := enumerate(ov2, BuildPrunedPlan(ov2, cp, nil, f)); got[ts[3]] || len(got) != 1 {
		t.Fatalf("overlay downgrade: got %v, want only node %d", got, ts[7])
	}

	// the base graph is untouched throughout
	if v := g.Attr(target, val); !v.Valid() {
		t.Fatal("base attr vanished")
	} else if iv, _ := v.AsInt(); iv != 0 {
		t.Fatalf("SetAttr leaked into the base graph: val=%d", iv)
	}
	if got := enumerate(g, basePlan); got[target] || len(got) != 2 {
		t.Fatalf("base enumeration changed after overlay writes: %v", got)
	}
}
