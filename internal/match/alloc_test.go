package match

// Allocation budget for the matcher's innermost verification step:
// CheckStep runs once per candidate per plan step and must never allocate.

import (
	"testing"

	"ngd/internal/graph"
	"ngd/internal/pattern"
)

func TestCheckStepAllocFree(t *testing.T) {
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("city")
	g.AddEdge(a, b, "knows")
	g.AddEdge(b, c, "livesIn")
	g.AddEdge(a, c, "livesIn") // triangle: step checks have a non-anchor edge

	p := pattern.New()
	x := p.AddNode("x", "person")
	y := p.AddNode("y", "person")
	z := p.AddNode("z", "city")
	p.AddEdge(x, y, "knows")
	p.AddEdge(y, z, "livesIn")
	p.AddEdge(x, z, "livesIn")

	cp := pattern.Compile(p, g.Symbols())
	pl := BuildPlan(cp, nil, GraphSelectivity(g, cp))
	m := NewMatcher(g, pl, Hooks{})

	// fully bind the one triangle match, then re-verify the last step's
	// candidate against it
	sol := map[int]graph.NodeID{p.VarIndex("x"): a, p.VarIndex("y"): b, p.VarIndex("z"): c}
	partial := NewPartial(len(p.Nodes))
	for idx, id := range sol {
		partial[idx] = id
	}
	lastStep := len(pl.Steps) - 1
	lastNode := sol[pl.Steps[lastStep].Node]

	var ok bool
	allocs := testing.AllocsPerRun(1000, func() {
		ok = m.CheckStep(lastStep, partial, lastNode)
	})
	if !ok {
		t.Fatal("CheckStep rejected the known triangle match")
	}
	if allocs != 0 {
		t.Fatalf("CheckStep allocated %.1f objects per run, want 0", allocs)
	}
}
