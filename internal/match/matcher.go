package match

import (
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

// Hooks customize enumeration. All fields are optional.
type Hooks struct {
	// OnExtend runs after binding step k's node; return false to prune the
	// branch (used for literal-based candidate pruning, §6.2 step (3)).
	OnExtend func(step int, partial []graph.NodeID) bool
	// OnBacktrack runs when step k's binding is undone, mirroring OnExtend
	// so hooks can keep per-depth state.
	OnBacktrack func(step int)
}

// Counters accumulate work metrics for the localizability analysis and the
// parallel cost model.
type Counters struct {
	Candidates int // adjacency entries / label-index entries scanned
	Checks     int // edge verifications performed
	Matches    int // complete matches emitted
}

// Matcher enumerates homomorphisms of a compiled pattern in a graph view
// following a Plan.
type Matcher struct {
	G    graph.View
	CP   *pattern.Compiled
	Plan *Plan
	Hook Hooks
	Stat Counters

	stop bool
}

// NewMatcher builds a matcher over g for plan p.
func NewMatcher(g graph.View, p *Plan, h Hooks) *Matcher {
	return &Matcher{G: g, CP: p.CP, Plan: p, Hook: h}
}

// VerifyBound checks every pattern edge whose endpoints are all bound in
// partial (needed for pre-bound update pivots that span several pattern
// edges) and the node labels of the bound nodes.
func VerifyBound(g graph.View, cp *pattern.Compiled, partial []graph.NodeID) bool {
	for i, v := range partial {
		if v == Unbound {
			continue
		}
		if !cp.NodeMatches(i, g.Label(v)) {
			return false
		}
	}
	for ei, e := range cp.Src.Edges {
		u, v := partial[e.Src], partial[e.Dst]
		if u == Unbound || v == Unbound {
			continue
		}
		if cp.EdgeLabels[ei] == graph.NoLabel || !g.HasEdgeL(u, v, cp.EdgeLabels[ei]) {
			return false
		}
	}
	return true
}

// Run enumerates all matches extending the given partial solution (Unbound
// entries are filled following the plan) and calls emit for each complete
// match. Returning false from emit stops the enumeration. The partial slice
// is reused across calls to emit; callers must copy it to retain it.
func (m *Matcher) Run(partial []graph.NodeID, emit func([]graph.NodeID) bool) {
	m.stop = false
	m.expand(0, partial, emit)
}

// CandidateCount reports how many raw candidates step k would scan for the
// given partial solution — the sequential-cost estimate |h(u_r).adj| the
// parallel engine feeds into the split decision of §6.3.
func (m *Matcher) CandidateCount(k int, partial []graph.NodeID) int {
	st := &m.Plan.Steps[k]
	if st.AnchorEdge < 0 {
		if run, ok := m.seedIndexRun(st); ok {
			return run.Len()
		}
		l := m.CP.NodeLabels[st.Node]
		if l == graph.NoLabel {
			return 0
		}
		return m.G.CountLabel(l)
	}
	el := m.CP.EdgeLabels[st.AnchorEdge]
	if el == graph.NoLabel {
		return 0
	}
	from := partial[st.AnchorFrom]
	if st.AnchorOut {
		return len(LabelSlice(m.G.Out(from), el))
	}
	return len(LabelSlice(m.G.In(from), el))
}

// CandidatesRange is Candidates restricted to the half-open slot range
// [lo, hi) of the raw candidate list — the "partial adjacency copy v.adjᵢ"
// a worker holds after a skewed work unit is split (§6.3). hi < 0 means the
// end of the list.
func (m *Matcher) CandidatesRange(k int, partial []graph.NodeID, lo, hi int, yield func(graph.NodeID) bool) int {
	st := &m.Plan.Steps[k]
	scanned := 0
	emit := func(v graph.NodeID, ok bool) bool {
		scanned++
		if !ok {
			return true
		}
		return yield(v)
	}
	if st.AnchorEdge < 0 {
		if run, ok := m.seedIndexRun(st); ok {
			n := run.Len()
			if hi < 0 || hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				v := run.At(i)
				if !emit(v, m.filterOK(st.Node, v)) {
					return scanned
				}
			}
			return scanned
		}
		l := m.CP.NodeLabels[st.Node]
		if l == graph.NoLabel {
			return 0
		}
		if l == graph.Wildcard {
			n := m.G.NumNodes()
			if hi < 0 || hi > n {
				hi = n
			}
			for v := lo; v < hi; v++ {
				if !emit(graph.NodeID(v), m.filterOK(st.Node, graph.NodeID(v))) {
					return scanned
				}
			}
			return scanned
		}
		cands := m.G.NodesWithLabel(l)
		if hi < 0 || hi > len(cands) {
			hi = len(cands)
		}
		for _, v := range cands[lo:hi] {
			if !emit(v, m.filterOK(st.Node, v)) {
				return scanned
			}
		}
		return scanned
	}
	el := m.CP.EdgeLabels[st.AnchorEdge]
	if el == graph.NoLabel {
		return 0
	}
	from := partial[st.AnchorFrom]
	var adj []graph.Half
	if st.AnchorOut {
		adj = m.G.Out(from)
	} else {
		adj = m.G.In(from)
	}
	run := LabelSlice(adj, el)
	if hi < 0 || hi > len(run) {
		hi = len(run)
	}
	if lo > len(run) {
		lo = len(run)
	}
	nl := m.CP.NodeLabels[st.Node]
	for _, h := range run[lo:hi] {
		ok := (nl == graph.Wildcard || m.G.Label(h.To) == nl) && m.filterOK(st.Node, h.To)
		if !emit(h.To, ok) {
			return scanned
		}
	}
	return scanned
}

// seedIndexRun resolves the attribute-index candidate run of a seed step
// chosen by BuildPrunedPlan, if any.
func (m *Matcher) seedIndexRun(st *Step) (graph.IndexRun, bool) {
	if st.SeedPred < 0 || m.Plan.Filters == nil {
		return graph.IndexRun{}, false
	}
	return seedRun(m.G, m.CP, st.Node, &m.Plan.Filters[st.Node].Preds[st.SeedPred])
}

// filterOK applies the compiled candidate predicates of a pattern node to
// candidate v (§6.2 step (3)): a candidate falsifying a precondition
// literal can never yield a violation and is pruned before recursion.
func (m *Matcher) filterOK(node int, v graph.NodeID) bool {
	if m.Plan.Filters == nil {
		return true
	}
	preds := m.Plan.Filters[node].Preds
	for i := range preds {
		if !preds[i].Holds(m.G, v) {
			return false
		}
	}
	return true
}

// Candidates yields the candidate nodes for step k given the current
// partial solution (paper: refine C(u)); used directly by the parallel
// engine to split skewed work units. The yield function returns false to
// stop early. The returned int is the number of adjacency entries scanned
// (the sequential cost |h(u_r).adj| of §6.3).
func (m *Matcher) Candidates(k int, partial []graph.NodeID, yield func(graph.NodeID) bool) int {
	return m.CandidatesRange(k, partial, 0, -1, yield)
}

// CheckStep verifies the non-anchor pattern edges of step k against
// candidate v (paper §6.3 "verification").
func (m *Matcher) CheckStep(k int, partial []graph.NodeID, v graph.NodeID) bool {
	st := &m.Plan.Steps[k]
	for _, c := range st.Checks {
		el := m.CP.EdgeLabels[c.Edge]
		if el == graph.NoLabel {
			return false
		}
		other := v
		if c.Other != st.Node {
			other = partial[c.Other]
		}
		m.Stat.Checks++
		var ok bool
		if c.Out {
			ok = m.G.HasEdgeL(v, other, el)
		} else {
			ok = m.G.HasEdgeL(other, v, el)
		}
		if !ok {
			return false
		}
	}
	return true
}

func (m *Matcher) expand(k int, partial []graph.NodeID, emit func([]graph.NodeID) bool) {
	if m.stop {
		return
	}
	if k == len(m.Plan.Steps) {
		m.Stat.Matches++
		if !emit(partial) {
			m.stop = true
		}
		return
	}
	st := &m.Plan.Steps[k]
	m.Stat.Candidates += m.Candidates(k, partial, func(v graph.NodeID) bool {
		if !m.CheckStep(k, partial, v) {
			return true
		}
		partial[st.Node] = v
		if m.Hook.OnExtend == nil || m.Hook.OnExtend(k, partial) {
			m.expand(k+1, partial, emit)
		}
		if m.Hook.OnBacktrack != nil {
			m.Hook.OnBacktrack(k)
		}
		partial[st.Node] = Unbound
		return !m.stop
	})
}

// NewPartial returns an all-Unbound partial solution for pattern p.
func NewPartial(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = Unbound
	}
	return p
}
