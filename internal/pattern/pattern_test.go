package pattern

import (
	"testing"

	"ngd/internal/graph"
)

func TestValidate(t *testing.T) {
	p := New()
	p.AddNode("x", "a")
	p.AddNode("y", "b")
	p.AddEdge(0, 1, "e")
	if err := p.Validate(); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}

	empty := New()
	if err := empty.Validate(); err == nil {
		t.Error("empty pattern accepted")
	}

	bad := &Pattern{Nodes: []Node{{Var: "x", Label: "a"}, {Var: "x", Label: "b"}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate variable accepted")
	}

	oob := &Pattern{Nodes: []Node{{Var: "x", Label: "a"}}, Edges: []Edge{{Src: 0, Dst: 5, Label: "e"}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}

	noVar := &Pattern{Nodes: []Node{{Var: "", Label: "a"}}}
	if err := noVar.Validate(); err == nil {
		t.Error("empty variable accepted")
	}
}

func TestDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddNode with duplicate variable should panic")
		}
	}()
	p := New()
	p.AddNode("x", "a")
	p.AddNode("x", "b")
}

func TestDiameter(t *testing.T) {
	// single node: 0
	p1 := New()
	p1.AddNode("x", "a")
	if d := p1.Diameter(); d != 0 {
		t.Errorf("single node diameter = %d", d)
	}

	// star x->a, x->b: diameter 2 (a to b through x, undirected)
	star := New()
	x := star.AddNode("x", "_")
	a := star.AddNode("a", "i")
	b := star.AddNode("b", "i")
	star.AddEdge(x, a, "p")
	star.AddEdge(x, b, "p")
	if d := star.Diameter(); d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}

	// chain of 4 nodes: diameter 3 regardless of edge directions
	chain := New()
	n0 := chain.AddNode("n0", "_")
	n1 := chain.AddNode("n1", "_")
	n2 := chain.AddNode("n2", "_")
	n3 := chain.AddNode("n3", "_")
	chain.AddEdge(n0, n1, "e")
	chain.AddEdge(n2, n1, "e") // reversed direction on purpose
	chain.AddEdge(n2, n3, "e")
	if d := chain.Diameter(); d != 3 {
		t.Errorf("chain diameter = %d, want 3", d)
	}

	// two components: max component diameter
	two := New()
	u0 := two.AddNode("u0", "_")
	u1 := two.AddNode("u1", "_")
	two.AddNode("solo", "_")
	two.AddEdge(u0, u1, "e")
	if d := two.Diameter(); d != 1 {
		t.Errorf("two-component diameter = %d, want 1", d)
	}
}

func TestComponents(t *testing.T) {
	p := New()
	a := p.AddNode("a", "_")
	b := p.AddNode("b", "_")
	c := p.AddNode("c", "_")
	p.AddNode("d", "_")
	p.AddEdge(a, b, "e")
	p.AddEdge(c, b, "e")

	comps := p.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if p.Connected() {
		t.Error("disconnected pattern reported connected")
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[3] || !sizes[1] {
		t.Errorf("component sizes wrong: %v", comps)
	}
}

func TestVarIndex(t *testing.T) {
	p := New()
	p.AddNode("x", "a")
	p.AddNode("y", "b")
	if p.VarIndex("x") != 0 || p.VarIndex("y") != 1 {
		t.Error("VarIndex of known vars")
	}
	if p.VarIndex("z") != -1 {
		t.Error("VarIndex of unknown var should be -1")
	}
	// a manually built pattern without the index map still resolves
	manual := &Pattern{Nodes: []Node{{Var: "q", Label: "a"}}}
	if manual.VarIndex("q") != 0 {
		t.Error("VarIndex fallback scan failed")
	}
}

func TestCompile(t *testing.T) {
	syms := graph.NewSymbols()
	syms.Label("person")
	syms.Label("knows")

	p := New()
	x := p.AddNode("x", "person")
	y := p.AddNode("y", "_")
	z := p.AddNode("z", "ghost") // label unknown to the graph
	p.AddEdge(x, y, "knows")
	p.AddEdge(y, z, "haunts") // unknown edge label

	c := Compile(p, syms)
	if c.NodeLabels[0] == graph.NoLabel || c.NodeLabels[0] == graph.Wildcard {
		t.Error("person should resolve to a real label")
	}
	if c.NodeLabels[1] != graph.Wildcard {
		t.Error("wildcard should compile to Wildcard")
	}
	if c.NodeLabels[2] != graph.NoLabel {
		t.Error("unknown label should compile to NoLabel")
	}
	if c.EdgeLabels[1] != graph.NoLabel {
		t.Error("unknown edge label should compile to NoLabel")
	}
	if !c.NodeMatches(1, syms.LookupLabel("person")) {
		t.Error("wildcard must match any label")
	}
	if c.NodeMatches(2, syms.LookupLabel("person")) {
		t.Error("NoLabel must match nothing")
	}
	if len(c.OutEdges[0]) != 1 || len(c.InEdges[1]) != 1 {
		t.Error("edge adjacency wrong")
	}
}

func TestString(t *testing.T) {
	p := New()
	x := p.AddNode("x", "a")
	y := p.AddNode("y", "_")
	p.AddEdge(x, y, "e")
	want := "x:a; y:_; x -e-> y"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
