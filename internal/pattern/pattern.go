// Package pattern implements the graph patterns Q[x̄] of Fan et al.
// (SIGMOD 2018), §2: directed graphs whose nodes carry labels from Γ or the
// wildcard '_', with a distinct variable per node. Patterns are matched in
// data graphs by homomorphism (package match).
package pattern

import (
	"fmt"

	"ngd/internal/graph"
)

// Node is a pattern node: a variable bound to a label ("_" is the wildcard
// matching any node label).
type Node struct {
	Var   string
	Label string
}

// Edge is a pattern edge between node indices with an edge label.
type Edge struct {
	Src, Dst int
	Label    string
}

// Pattern is a graph pattern Q[x̄]. The variable list x̄ is Nodes[i].Var in
// index order; the mapping µ from variables to nodes is the index itself.
type Pattern struct {
	Nodes []Node
	Edges []Edge

	varIndex map[string]int
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{varIndex: make(map[string]int)}
}

// AddNode appends a pattern node and returns its index. It panics if the
// variable name repeats: µ must be a bijection (paper §2).
func (p *Pattern) AddNode(variable, label string) int {
	if p.varIndex == nil {
		p.varIndex = make(map[string]int)
	}
	if _, dup := p.varIndex[variable]; dup {
		panic(fmt.Sprintf("pattern: duplicate variable %q", variable))
	}
	idx := len(p.Nodes)
	p.Nodes = append(p.Nodes, Node{Var: variable, Label: label})
	p.varIndex[variable] = idx
	return idx
}

// AddEdge appends a directed pattern edge.
func (p *Pattern) AddEdge(src, dst int, label string) {
	p.Edges = append(p.Edges, Edge{Src: src, Dst: dst, Label: label})
}

// VarIndex resolves a variable name to its node index (-1 if absent).
func (p *Pattern) VarIndex(name string) int {
	if p.varIndex != nil {
		if i, ok := p.varIndex[name]; ok {
			return i
		}
	}
	for i, n := range p.Nodes {
		if n.Var == name {
			return i
		}
	}
	return -1
}

// Validate checks structural well-formedness: at least one node, distinct
// variables, edge endpoints in range.
func (p *Pattern) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("pattern: no nodes")
	}
	seen := make(map[string]struct{}, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.Var == "" {
			return fmt.Errorf("pattern: node %d has empty variable", i)
		}
		if _, dup := seen[n.Var]; dup {
			return fmt.Errorf("pattern: duplicate variable %q", n.Var)
		}
		seen[n.Var] = struct{}{}
	}
	for i, e := range p.Edges {
		if e.Src < 0 || e.Src >= len(p.Nodes) || e.Dst < 0 || e.Dst >= len(p.Nodes) {
			return fmt.Errorf("pattern: edge %d endpoints out of range", i)
		}
	}
	return nil
}

// undirAdj builds the undirected adjacency over node indices.
func (p *Pattern) undirAdj() [][]int {
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		if e.Src != e.Dst {
			adj[e.Dst] = append(adj[e.Dst], e.Src)
		}
	}
	return adj
}

// Components returns the connected components of Q taken as an undirected
// graph, each as a sorted slice of node indices.
func (p *Pattern) Components() [][]int {
	adj := p.undirAdj()
	comp := make([]int, len(p.Nodes))
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for i := range p.Nodes {
		if comp[i] >= 0 {
			continue
		}
		id := len(comps)
		stack := []int{i}
		comp[i] = id
		var members []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, w := range adj[u] {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// Connected reports whether Q is connected as an undirected graph.
func (p *Pattern) Connected() bool { return len(p.Components()) <= 1 }

// Diameter returns d_Q: the maximum over node pairs of the shortest
// undirected distance within a component (the locality radius of the paper's
// dΣ-neighborhoods). Single-node patterns have diameter 0; disconnected
// patterns report the maximum component diameter.
func (p *Pattern) Diameter() int {
	adj := p.undirAdj()
	n := len(p.Nodes)
	maxD := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					if dist[w] > maxD {
						maxD = dist[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
	return maxD
}

// String renders the pattern in the rule DSL's pattern syntax.
func (p *Pattern) String() string {
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += "; "
		}
		s += n.Var + ":" + n.Label
	}
	for _, e := range p.Edges {
		s += fmt.Sprintf("; %s -%s-> %s", p.Nodes[e.Src].Var, e.Label, p.Nodes[e.Dst].Var)
	}
	return s
}

// Compiled is a pattern with labels resolved against a concrete graph's
// symbol table, plus the adjacency structures the matcher needs. Labels the
// graph has never seen resolve to graph.NoLabel, making their nodes/edges
// unmatchable (correct: no graph element carries them).
type Compiled struct {
	Src        *Pattern
	NodeLabels []graph.LabelID
	EdgeLabels []graph.LabelID
	// OutEdges[i] lists indices of pattern edges with Src == i;
	// InEdges[i] those with Dst == i.
	OutEdges [][]int
	InEdges  [][]int
}

// Compile resolves the pattern against a symbol table without interning new
// labels (a label the graph lacks cannot match anyway).
func Compile(p *Pattern, syms *graph.Symbols) *Compiled {
	c := &Compiled{
		Src:        p,
		NodeLabels: make([]graph.LabelID, len(p.Nodes)),
		EdgeLabels: make([]graph.LabelID, len(p.Edges)),
		OutEdges:   make([][]int, len(p.Nodes)),
		InEdges:    make([][]int, len(p.Nodes)),
	}
	for i, n := range p.Nodes {
		if n.Label == "_" {
			c.NodeLabels[i] = graph.Wildcard
		} else {
			c.NodeLabels[i] = syms.LookupLabel(n.Label)
		}
	}
	for i, e := range p.Edges {
		c.EdgeLabels[i] = syms.LookupLabel(e.Label)
		c.OutEdges[e.Src] = append(c.OutEdges[e.Src], i)
		c.InEdges[e.Dst] = append(c.InEdges[e.Dst], i)
	}
	return c
}

// NodeMatches reports whether graph label gl satisfies pattern node u's
// label constraint (wildcard matches everything; paper §2 pattern matching
// condition (a)).
func (c *Compiled) NodeMatches(u int, gl graph.LabelID) bool {
	pl := c.NodeLabels[u]
	return pl == graph.Wildcard || pl == gl
}
