package expr

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"ngd/internal/graph"
)

// ErrNonLinear reports an expression outside the linear grammar of §3.
var ErrNonLinear = errors.New("expr: non-linear expression")

// TermKey identifies a term x.A in a linear form.
type TermKey struct {
	Var  string
	Attr string
}

func (k TermKey) String() string { return k.Var + "." + k.Attr }

// LinearForm is a normalized linear expression Σ cᵢ·(xᵢ.Aᵢ) + Const over
// exact rationals, the shape the feasibility solver consumes.
type LinearForm struct {
	Coeffs map[TermKey]*big.Rat
	Const  *big.Rat
}

// NewLinearForm returns the zero form.
func NewLinearForm() *LinearForm {
	return &LinearForm{Coeffs: make(map[TermKey]*big.Rat), Const: new(big.Rat)}
}

func (f *LinearForm) addCoeff(k TermKey, c *big.Rat) {
	if cur, ok := f.Coeffs[k]; ok {
		cur.Add(cur, c)
		if cur.Sign() == 0 {
			delete(f.Coeffs, k)
		}
		return
	}
	if c.Sign() != 0 {
		f.Coeffs[k] = new(big.Rat).Set(c)
	}
}

// Add accumulates scale·g into f.
func (f *LinearForm) Add(g *LinearForm, scale *big.Rat) {
	for k, c := range g.Coeffs {
		f.addCoeff(k, new(big.Rat).Mul(c, scale))
	}
	f.Const.Add(f.Const, new(big.Rat).Mul(g.Const, scale))
}

// Scale multiplies f by c in place.
func (f *LinearForm) Scale(c *big.Rat) {
	for k, v := range f.Coeffs {
		v.Mul(v, c)
		if v.Sign() == 0 {
			delete(f.Coeffs, k)
		}
	}
	f.Const.Mul(f.Const, c)
}

// IsConst reports whether f has no variable terms.
func (f *LinearForm) IsConst() bool { return len(f.Coeffs) == 0 }

// String renders the form deterministically (sorted terms).
func (f *LinearForm) String() string {
	keys := make([]TermKey, 0, len(f.Coeffs))
	for k := range f.Coeffs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Var != keys[j].Var {
			return keys[i].Var < keys[j].Var
		}
		return keys[i].Attr < keys[j].Attr
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s·%s + ", f.Coeffs[k].RatString(), k)
	}
	fmt.Fprintf(&b, "%s", f.Const.RatString())
	return b.String()
}

func constEval(e *Expr) (*big.Rat, error) {
	return EvalBig(e, func(string, string) (graph.Value, bool) {
		return graph.Value{}, false
	})
}

// Linearize converts a linear expression (no |·| over variables) into a
// LinearForm. It returns ErrNonLinear for non-linear input, variable-argument
// Abs (expand with AbsVariants first), or string constants.
func Linearize(e *Expr) (*LinearForm, error) {
	switch e.Op {
	case OpConst:
		f := NewLinearForm()
		f.Const.SetInt64(e.Const)
		return f, nil
	case OpStr:
		return nil, ErrType
	case OpVar:
		f := NewLinearForm()
		f.Coeffs[TermKey{e.Var, e.Attr}] = big.NewRat(1, 1)
		return f, nil
	case OpNeg:
		f, err := Linearize(e.L)
		if err != nil {
			return nil, err
		}
		f.Scale(big.NewRat(-1, 1))
		return f, nil
	case OpAbs:
		if e.L.Degree() == 0 {
			c, err := constEval(e)
			if err != nil {
				return nil, err
			}
			f := NewLinearForm()
			f.Const.Set(c)
			return f, nil
		}
		return nil, ErrNonLinear
	case OpAdd, OpSub:
		l, err := Linearize(e.L)
		if err != nil {
			return nil, err
		}
		r, err := Linearize(e.R)
		if err != nil {
			return nil, err
		}
		scale := big.NewRat(1, 1)
		if e.Op == OpSub {
			scale.SetInt64(-1)
		}
		l.Add(r, scale)
		return l, nil
	case OpMul:
		// exactly one side may carry variables
		ldeg, rdeg := e.L.Degree(), e.R.Degree()
		switch {
		case rdeg == 0:
			c, err := constEval(e.R)
			if err != nil {
				return nil, err
			}
			f, err := Linearize(e.L)
			if err != nil {
				return nil, err
			}
			f.Scale(c)
			return f, nil
		case ldeg == 0:
			c, err := constEval(e.L)
			if err != nil {
				return nil, err
			}
			f, err := Linearize(e.R)
			if err != nil {
				return nil, err
			}
			f.Scale(c)
			return f, nil
		default:
			return nil, ErrNonLinear
		}
	case OpDiv:
		if e.R.Degree() != 0 {
			return nil, ErrNonLinear
		}
		c, err := constEval(e.R)
		if err != nil {
			return nil, err
		}
		if c.Sign() == 0 {
			return nil, ErrDivZero
		}
		f, err := Linearize(e.L)
		if err != nil {
			return nil, err
		}
		f.Scale(new(big.Rat).Inv(c))
		return f, nil
	default:
		return nil, fmt.Errorf("expr: bad op %d", e.Op)
	}
}

// Clone deep-copies e.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.L = e.L.Clone()
	c.R = e.R.Clone()
	return &c
}

// SignCond is a side condition produced by abs-elimination: Inner ≥ 0 when
// NonNeg, otherwise Inner < 0.
type SignCond struct {
	Inner  *Expr
	NonNeg bool
}

// AbsVariant is one abs-free rewriting of an expression together with the
// sign conditions under which it equals the original.
type AbsVariant struct {
	Expr  *Expr
	Conds []SignCond
}

// AbsVariants eliminates every |·| over variables by case-splitting on the
// sign of the argument, yielding up to 2^k variants. Constant-argument abs
// nodes are left in place (Linearize folds them).
func AbsVariants(e *Expr) []AbsVariant {
	target := findVarAbs(e)
	if target == nil {
		return []AbsVariant{{Expr: e}}
	}
	inner := target.Inner
	pos := replaceAbs(e, target.Path, inner.Clone())
	neg := replaceAbs(e, target.Path, Neg(inner.Clone()))
	var out []AbsVariant
	for _, v := range AbsVariants(pos) {
		out = append(out, AbsVariant{
			Expr:  v.Expr,
			Conds: append([]SignCond{{Inner: inner.Clone(), NonNeg: true}}, v.Conds...),
		})
	}
	for _, v := range AbsVariants(neg) {
		out = append(out, AbsVariant{
			Expr:  v.Expr,
			Conds: append([]SignCond{{Inner: inner.Clone(), NonNeg: false}}, v.Conds...),
		})
	}
	return out
}

type absSite struct {
	Inner *Expr
	Path  []byte // 'L'/'R' steps from the root to the Abs node
}

func findVarAbs(e *Expr) *absSite {
	return findVarAbsAt(e, nil)
}

func findVarAbsAt(e *Expr, path []byte) *absSite {
	if e == nil {
		return nil
	}
	if e.Op == OpAbs && e.L.Degree() > 0 {
		return &absSite{Inner: e.L, Path: append([]byte(nil), path...)}
	}
	if s := findVarAbsAt(e.L, append(path, 'L')); s != nil {
		return s
	}
	return findVarAbsAt(e.R, append(path, 'R'))
}

// replaceAbs returns a copy of e with the node at path replaced by repl.
func replaceAbs(e *Expr, path []byte, repl *Expr) *Expr {
	if len(path) == 0 {
		return repl
	}
	c := *e
	if path[0] == 'L' {
		c.L = replaceAbs(e.L, path[1:], repl)
	} else {
		c.R = replaceAbs(e.R, path[1:], repl)
	}
	return &c
}
