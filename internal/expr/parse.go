package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds
type tokKind uint8

const (
	tEOF tokKind = iota
	tNum
	tStr
	tIdent
	tSym // single/double char operator, stored in text
)

type token struct {
	kind tokKind
	text string
	num  int64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	tok  token
	err  error
	next *token // one-token lookahead buffer
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.advance()
	return l
}

func (l *lexer) fail(pos int, format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("expr: %s at offset %d in %q", fmt.Sprintf(format, args...), pos, l.src)
	}
	l.tok = token{kind: tEOF, pos: pos}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) peek() token {
	if l.next == nil {
		saved := l.tok
		l.advance()
		nt := l.tok
		l.next = &nt
		l.tok = saved
	}
	return *l.next
}

func (l *lexer) advance() {
	if l.next != nil {
		l.tok = *l.next
		l.next = nil
		return
	}
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' ||
		l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = token{kind: tEOF, pos: start}
		return
	}
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
		if err != nil {
			l.fail(start, "integer out of range")
			return
		}
		l.tok = token{kind: tNum, num: n, pos: start}
	case c == '"':
		i := l.pos + 1
		for i < len(l.src) && l.src[i] != '"' {
			if l.src[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(l.src) {
			l.fail(start, "unterminated string")
			return
		}
		s, err := strconv.Unquote(l.src[start : i+1])
		if err != nil {
			l.fail(start, "bad string literal")
			return
		}
		l.pos = i + 1
		l.tok = token{kind: tStr, text: s, pos: start}
	case isIdentStart(rune(c)):
		i := l.pos
		for i < len(l.src) && isIdentPart(rune(l.src[i])) {
			i++
		}
		l.tok = token{kind: tIdent, text: l.src[l.pos:i], pos: start}
		l.pos = i
	default:
		// one- and two-character symbols
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "!=", "<>", "==":
			l.tok = token{kind: tSym, text: two, pos: start}
			l.pos += 2
			return
		}
		switch c {
		case '+', '-', '*', '/', '(', ')', '|', '.', '=', '<', '>', ',':
			l.tok = token{kind: tSym, text: string(c), pos: start}
			l.pos++
		default:
			l.fail(start, "unexpected character %q", string(c))
		}
	}
}

func (l *lexer) isSym(s string) bool {
	return l.tok.kind == tSym && l.tok.text == s
}

// Parse parses an arithmetic expression in the rule DSL syntax:
//
//	e := t | abs(e) | |e| | e+e | e−e | e×e (as *) | e÷e (as /) | (e) | -e
//	t := integer | "string" | x.A
//
// Linearity is not enforced here (NGD construction enforces it) so the
// non-linear extension of §4 can be represented and rejected by reasoning.
func Parse(src string) (*Expr, error) {
	l := newLexer(src)
	e := parseExpr(l)
	if l.err != nil {
		return nil, l.err
	}
	if l.tok.kind != tEOF {
		return nil, fmt.Errorf("expr: trailing input at offset %d in %q", l.tok.pos, src)
	}
	return e, nil
}

// ParseComparison parses a literal "e1 ⊗ e2" with ⊗ one of = == != <> < <= > >=.
func ParseComparison(src string) (*Expr, Cmp, *Expr, error) {
	l := newLexer(src)
	lhs := parseExpr(l)
	if l.err != nil {
		return nil, 0, nil, l.err
	}
	var op Cmp
	if l.tok.kind != tSym {
		return nil, 0, nil, fmt.Errorf("expr: expected comparison operator at offset %d in %q", l.tok.pos, src)
	}
	switch l.tok.text {
	case "=", "==":
		op = Eq
	case "!=", "<>":
		op = Ne
	case "<":
		op = Lt
	case "<=":
		op = Le
	case ">":
		op = Gt
	case ">=":
		op = Ge
	default:
		return nil, 0, nil, fmt.Errorf("expr: bad comparison operator %q in %q", l.tok.text, src)
	}
	l.advance()
	rhs := parseExpr(l)
	if l.err != nil {
		return nil, 0, nil, l.err
	}
	if l.tok.kind != tEOF {
		return nil, 0, nil, fmt.Errorf("expr: trailing input at offset %d in %q", l.tok.pos, src)
	}
	return lhs, op, rhs, nil
}

func parseExpr(l *lexer) *Expr {
	e := parseTerm(l)
	for l.err == nil {
		switch {
		case l.isSym("+"):
			l.advance()
			e = Add(e, parseTerm(l))
		case l.isSym("-"):
			l.advance()
			e = Sub(e, parseTerm(l))
		default:
			return e
		}
	}
	return e
}

func parseTerm(l *lexer) *Expr {
	e := parseUnary(l)
	for l.err == nil {
		switch {
		case l.isSym("*"):
			l.advance()
			e = Mul(e, parseUnary(l))
		case l.isSym("/"):
			l.advance()
			e = Div(e, parseUnary(l))
		default:
			return e
		}
	}
	return e
}

func parseUnary(l *lexer) *Expr {
	if l.isSym("-") {
		l.advance()
		inner := parseUnary(l)
		// fold -c into a constant so "x = -3" round-trips
		if inner != nil && inner.Op == OpConst && inner.Const != minInt64 {
			return C(-inner.Const)
		}
		return Neg(inner)
	}
	return parsePrimary(l)
}

func parsePrimary(l *lexer) *Expr {
	switch {
	case l.tok.kind == tNum:
		e := C(l.tok.num)
		l.advance()
		return e
	case l.tok.kind == tStr:
		e := S(l.tok.text)
		l.advance()
		return e
	case l.tok.kind == tIdent:
		name := l.tok.text
		if name == "abs" && l.peek().kind == tSym && l.peek().text == "(" {
			l.advance() // abs
			l.advance() // (
			inner := parseExpr(l)
			if !l.isSym(")") {
				l.fail(l.tok.pos, "expected ')' closing abs")
				return nil
			}
			l.advance()
			return Abs(inner)
		}
		l.advance()
		if !l.isSym(".") {
			l.fail(l.tok.pos, "expected '.' after variable %q (terms are x.A)", name)
			return nil
		}
		l.advance()
		if l.tok.kind != tIdent {
			l.fail(l.tok.pos, "expected attribute name after %q.", name)
			return nil
		}
		attr := l.tok.text
		l.advance()
		return V(name, attr)
	case l.isSym("("):
		l.advance()
		e := parseExpr(l)
		if !l.isSym(")") {
			l.fail(l.tok.pos, "expected ')'")
			return nil
		}
		l.advance()
		return e
	case l.isSym("|"):
		l.advance()
		e := parseExpr(l)
		if !l.isSym("|") {
			l.fail(l.tok.pos, "expected closing '|'")
			return nil
		}
		l.advance()
		return Abs(e)
	default:
		l.fail(l.tok.pos, "expected expression")
		return nil
	}
}

// MustParse is Parse for tests and static rule tables; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// FormatComparison renders "lhs op rhs" re-parseable by ParseComparison.
func FormatComparison(l *Expr, op Cmp, r *Expr) string {
	var b strings.Builder
	b.WriteString(l.String())
	b.WriteByte(' ')
	b.WriteString(op.String())
	b.WriteByte(' ')
	b.WriteString(r.String())
	return b.String()
}
