package expr

import (
	"errors"
	"fmt"
	"math/big"

	"ngd/internal/graph"
)

// Evaluation errors. A literal whose evaluation errors is *not satisfied*
// (paper §3: h(x̄) ⊨ l requires every term's attribute to exist; type
// mismatches likewise cannot satisfy a comparison).
var (
	// ErrMissingAttr reports a term x.A whose node lacks attribute A.
	ErrMissingAttr = errors.New("expr: missing attribute")
	// ErrType reports strings in arithmetic, ordered string comparison,
	// or non-integer attribute values.
	ErrType = errors.New("expr: type error")
	// ErrDivZero reports division by zero.
	ErrDivZero = errors.New("expr: division by zero")
	// errOverflow triggers the math/big fallback inside Eval/Compare; it
	// escapes Eval only when a value genuinely exceeds the int64 rational
	// range, in which case Compare still decides the literal exactly.
	errOverflow = errors.New("expr: int64 overflow")
)

// Binding resolves a term x.A to the attribute value of the node matched to
// x. ok=false means the attribute (or variable) is absent.
type Binding func(variable, attr string) (graph.Value, bool)

// Num is an exact rational with int64 components, d ≥ 1 and gcd(|n|,d)=1.
type Num struct {
	n, d int64
}

// NumInt returns the rational v/1.
func NumInt(v int64) Num { return Num{n: v, d: 1} }

// Rat reports the reduced numerator and denominator.
func (x Num) Rat() (num, den int64) { return x.n, x.d }

// IsInt reports whether x is integral.
func (x Num) IsInt() bool { return x.d == 1 }

// Int returns the integer value (valid when IsInt).
func (x Num) Int() int64 { return x.n }

// Float returns a float64 approximation (for reporting only).
func (x Num) Float() float64 { return float64(x.n) / float64(x.d) }

func (x Num) String() string {
	if x.d == 1 {
		return fmt.Sprintf("%d", x.n)
	}
	return fmt.Sprintf("%d/%d", x.n, x.d)
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func makeNum(n, d int64) (Num, error) {
	if d == 0 {
		return Num{}, ErrDivZero
	}
	if d < 0 {
		if n == minInt64 || d == minInt64 {
			return Num{}, errOverflow
		}
		n, d = -n, -d
	}
	if g := gcd64(n, d); g > 1 {
		n, d = n/g, d/g
	}
	return Num{n: n, d: d}, nil
}

const minInt64 = -1 << 63

func (x Num) add(y Num) (Num, error) {
	// x.n/x.d + y.n/y.d, reducing cross factors first to delay overflow.
	g := gcd64(x.d, y.d)
	xd, yd := x.d/g, y.d/g
	a, ok1 := mulOvf(x.n, yd)
	b, ok2 := mulOvf(y.n, xd)
	s, ok3 := addOvf(a, b)
	den, ok4 := mulOvf(xd, y.d)
	if !(ok1 && ok2 && ok3 && ok4) {
		return Num{}, errOverflow
	}
	return makeNum(s, den)
}

func (x Num) neg() (Num, error) {
	if x.n == minInt64 {
		return Num{}, errOverflow
	}
	return Num{n: -x.n, d: x.d}, nil
}

func (x Num) sub(y Num) (Num, error) {
	ny, err := y.neg()
	if err != nil {
		return Num{}, err
	}
	return x.add(ny)
}

func (x Num) mul(y Num) (Num, error) {
	// cross-reduce before multiplying
	g1 := gcd64(x.n, y.d)
	g2 := gcd64(y.n, x.d)
	n1, d2 := x.n/g1, y.d/g1
	n2, d1 := y.n/g2, x.d/g2
	n, ok1 := mulOvf(n1, n2)
	d, ok2 := mulOvf(d1, d2)
	if !(ok1 && ok2) {
		return Num{}, errOverflow
	}
	return makeNum(n, d)
}

func (x Num) div(y Num) (Num, error) {
	if y.n == 0 {
		return Num{}, ErrDivZero
	}
	if y.n == minInt64 || y.d == minInt64 {
		return Num{}, errOverflow
	}
	return x.mul(Num{n: y.d, d: y.n})
}

func (x Num) abs() (Num, error) {
	if x.n >= 0 {
		return x, nil
	}
	return x.neg()
}

// Cmp compares x and y exactly: -1, 0, or 1. err is errOverflow when the
// cross-multiplication exceeds int64 (caller falls back to big).
func (x Num) Cmp(y Num) (int, error) {
	a, ok1 := mulOvf(x.n, y.d)
	b, ok2 := mulOvf(y.n, x.d)
	if !(ok1 && ok2) {
		return 0, errOverflow
	}
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}

// Result is the outcome of evaluating an expression: a rational number or a
// string (strings arise only from bare string constants / string-valued
// terms and may only be compared with = or ≠).
type Result struct {
	IsStr bool
	S     string
	N     Num
}

func valueOperand(v graph.Value) (Result, error) {
	switch v.Kind() {
	case graph.KindInt, graph.KindBool:
		i, _ := v.AsInt()
		return Result{N: NumInt(i)}, nil
	case graph.KindFloat:
		if i, ok := v.AsInt(); ok {
			return Result{N: NumInt(i)}, nil
		}
		return Result{}, ErrType
	case graph.KindString:
		s, _ := v.AsString()
		return Result{IsStr: true, S: s}, nil
	default:
		return Result{}, ErrMissingAttr
	}
}

// Eval evaluates e under binding b, escalating to exact big.Rat arithmetic
// if int64 overflows. Overflowed results are reported with ErrType only if
// they cannot be represented; otherwise a reduced Num is returned when it
// fits, or an error is surfaced via EvalBig-capable callers (Compare).
func Eval(e *Expr, b Binding) (Result, error) {
	r, err := evalFast(e, b)
	if err == errOverflow {
		br, berr := EvalBig(e, b)
		if berr != nil {
			return Result{}, berr
		}
		if n, fit := ratToNum(br); fit {
			return Result{N: n}, nil
		}
		return Result{}, errOverflow
	}
	return r, err
}

func evalFast(e *Expr, b Binding) (Result, error) {
	switch e.Op {
	case OpConst:
		return Result{N: NumInt(e.Const)}, nil
	case OpStr:
		return Result{IsStr: true, S: e.Str}, nil
	case OpVar:
		v, ok := b(e.Var, e.Attr)
		if !ok || !v.Valid() {
			return Result{}, ErrMissingAttr
		}
		return valueOperand(v)
	}
	l, err := evalFast(e.L, b)
	if err != nil {
		return Result{}, err
	}
	if l.IsStr {
		return Result{}, ErrType
	}
	switch e.Op {
	case OpNeg:
		n, err := l.N.neg()
		return Result{N: n}, err
	case OpAbs:
		n, err := l.N.abs()
		return Result{N: n}, err
	}
	r, err := evalFast(e.R, b)
	if err != nil {
		return Result{}, err
	}
	if r.IsStr {
		return Result{}, ErrType
	}
	var n Num
	switch e.Op {
	case OpAdd:
		n, err = l.N.add(r.N)
	case OpSub:
		n, err = l.N.sub(r.N)
	case OpMul:
		n, err = l.N.mul(r.N)
	case OpDiv:
		n, err = l.N.div(r.N)
	default:
		return Result{}, fmt.Errorf("expr: bad op %d", e.Op)
	}
	return Result{N: n}, err
}

// EvalBig evaluates e exactly over big.Rat (slow path; also used by the
// solver-facing code).
func EvalBig(e *Expr, b Binding) (*big.Rat, error) {
	switch e.Op {
	case OpConst:
		return new(big.Rat).SetInt64(e.Const), nil
	case OpStr:
		return nil, ErrType
	case OpVar:
		v, ok := b(e.Var, e.Attr)
		if !ok || !v.Valid() {
			return nil, ErrMissingAttr
		}
		r, err := valueOperand(v)
		if err != nil {
			return nil, err
		}
		if r.IsStr {
			return nil, ErrType
		}
		return new(big.Rat).SetFrac64(r.N.n, r.N.d), nil
	}
	l, err := EvalBig(e.L, b)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case OpNeg:
		return l.Neg(l), nil
	case OpAbs:
		return l.Abs(l), nil
	}
	r, err := EvalBig(e.R, b)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case OpAdd:
		return l.Add(l, r), nil
	case OpSub:
		return l.Sub(l, r), nil
	case OpMul:
		return l.Mul(l, r), nil
	case OpDiv:
		if r.Sign() == 0 {
			return nil, ErrDivZero
		}
		return l.Quo(l, r), nil
	default:
		return nil, fmt.Errorf("expr: bad op %d", e.Op)
	}
}

func ratToNum(r *big.Rat) (Num, bool) {
	if !r.Num().IsInt64() || !r.Denom().IsInt64() {
		return Num{}, false
	}
	return Num{n: r.Num().Int64(), d: r.Denom().Int64()}, true
}

// Cmp is a comparison predicate ⊗ ∈ {=, ≠, <, ≤, >, ≥}.
type Cmp uint8

// Comparison predicates.
const (
	Eq Cmp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// Negate returns the complementary predicate (¬(a ⊗ b)).
func (c Cmp) Negate() Cmp {
	switch c {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	default:
		return Lt
	}
}

// Flip returns the predicate with operands swapped (a ⊗ b ⇔ b ⊗' a).
func (c Cmp) Flip() Cmp {
	switch c {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return c
	}
}

func (c Cmp) String() string {
	switch c {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

func (c Cmp) holds(sign int) bool {
	switch c {
	case Eq:
		return sign == 0
	case Ne:
		return sign != 0
	case Lt:
		return sign < 0
	case Le:
		return sign <= 0
	case Gt:
		return sign > 0
	default:
		return sign >= 0
	}
}

// Compare evaluates l ⊗ r under binding b with exact arithmetic.
// String results may only be compared with = and ≠. Any evaluation error
// (missing attribute, type mismatch, division by zero) is surfaced; per the
// paper's satisfaction semantics callers treat it as "literal not satisfied".
func Compare(l *Expr, op Cmp, r *Expr, b Binding) (bool, error) {
	lr, err := Eval(l, b)
	if err != nil && err != errOverflow {
		return false, err
	}
	lBig := err == errOverflow
	rr, rerr := Eval(r, b)
	if rerr != nil && rerr != errOverflow {
		return false, rerr
	}
	rBig := rerr == errOverflow
	if !lBig && !rBig {
		if lr.IsStr || rr.IsStr {
			if !lr.IsStr || !rr.IsStr {
				return false, ErrType
			}
			switch op {
			case Eq:
				return lr.S == rr.S, nil
			case Ne:
				return lr.S != rr.S, nil
			default:
				return false, ErrType
			}
		}
		sign, cerr := lr.N.Cmp(rr.N)
		if cerr == nil {
			return op.holds(sign), nil
		}
	}
	// big fallback for overflowing magnitudes
	lb, err := EvalBig(l, b)
	if err != nil {
		return false, err
	}
	rb, err := EvalBig(r, b)
	if err != nil {
		return false, err
	}
	return op.holds(lb.Cmp(rb)), nil
}
