// Package expr implements the arithmetic expressions of NGDs (Fan et al.,
// SIGMOD 2018, §3): e ::= t | |e| | e+e | e−e | c×e | e÷c over integer
// constants and terms x.A, plus the non-linear extension (e×e, e÷e) of §4
// that the static analyses must reject (Theorem 3: undecidable).
//
// Evaluation is exact: an int64 rational fast path with overflow detection
// escalating to math/big. String constants are admitted so literals can
// express the CFD-style constant bindings the paper's Exp-5 rules use
// (e.g. z.val ≠ "living people"); strings never participate in arithmetic.
package expr

import (
	"fmt"
	"strconv"
)

// Op enumerates expression node kinds.
type Op uint8

// Expression node kinds.
const (
	OpConst Op = iota // integer constant
	OpStr             // string constant (comparison-only)
	OpVar             // term x.A
	OpNeg             // -e
	OpAbs             // |e|
	OpAdd             // e + e
	OpSub             // e - e
	OpMul             // e * e (linear only when one side is constant)
	OpDiv             // e / e (linear only when divisor is constant)
)

// Expr is an arithmetic expression tree node. Leaves use Const/Str/Var
// fields; interior nodes use L (and R for binary ops).
type Expr struct {
	Op    Op
	Const int64  // OpConst
	Str   string // OpStr
	Var   string // OpVar: variable name (x)
	Attr  string // OpVar: attribute name (A)
	L, R  *Expr
}

// C returns an integer constant expression.
func C(v int64) *Expr { return &Expr{Op: OpConst, Const: v} }

// S returns a string constant expression.
func S(v string) *Expr { return &Expr{Op: OpStr, Str: v} }

// V returns a term x.A.
func V(variable, attr string) *Expr { return &Expr{Op: OpVar, Var: variable, Attr: attr} }

// Neg returns -e.
func Neg(e *Expr) *Expr { return &Expr{Op: OpNeg, L: e} }

// Abs returns |e|.
func Abs(e *Expr) *Expr { return &Expr{Op: OpAbs, L: e} }

// Add returns l + r.
func Add(l, r *Expr) *Expr { return &Expr{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r *Expr) *Expr { return &Expr{Op: OpSub, L: l, R: r} }

// Mul returns l × r.
func Mul(l, r *Expr) *Expr { return &Expr{Op: OpMul, L: l, R: r} }

// Div returns l ÷ r.
func Div(l, r *Expr) *Expr { return &Expr{Op: OpDiv, L: l, R: r} }

// Degree returns the degree of e: the sum of variable exponents, with
// max over +/− branches (paper §3). Linear NGDs require degree ≤ 1; the
// undecidability frontier of Theorem 3 is degree 2.
func (e *Expr) Degree() int {
	switch e.Op {
	case OpConst, OpStr:
		return 0
	case OpVar:
		return 1
	case OpNeg, OpAbs:
		return e.L.Degree()
	case OpAdd, OpSub:
		return max(e.L.Degree(), e.R.Degree())
	case OpMul, OpDiv:
		return e.L.Degree() + e.R.Degree()
	default:
		return 0
	}
}

// IsLinear reports whether e fits the linear grammar of §3: degree ≤ 1,
// every multiplication has a degree-0 side, every divisor has degree 0.
func (e *Expr) IsLinear() bool {
	switch e.Op {
	case OpConst, OpStr, OpVar:
		return true
	case OpNeg, OpAbs:
		return e.L.IsLinear()
	case OpAdd, OpSub:
		return e.L.IsLinear() && e.R.IsLinear()
	case OpMul:
		return e.L.IsLinear() && e.R.IsLinear() &&
			(e.L.Degree() == 0 || e.R.Degree() == 0)
	case OpDiv:
		return e.L.IsLinear() && e.R.Degree() == 0
	default:
		return false
	}
}

// HasString reports whether a string constant occurs anywhere in e.
func (e *Expr) HasString() bool {
	if e.Op == OpStr {
		return true
	}
	if e.L != nil && e.L.HasString() {
		return true
	}
	return e.R != nil && e.R.HasString()
}

// Terms calls fn for every OpVar leaf (variable, attribute), with repeats.
func (e *Expr) Terms(fn func(variable, attr string)) {
	switch e.Op {
	case OpVar:
		fn(e.Var, e.Attr)
	case OpNeg, OpAbs:
		e.L.Terms(fn)
	case OpAdd, OpSub, OpMul, OpDiv:
		e.L.Terms(fn)
		e.R.Terms(fn)
	}
}

// Vars returns the distinct pattern variables referenced by e, in first
// appearance order.
func (e *Expr) Vars() []string {
	seen := make(map[string]struct{})
	var out []string
	e.Terms(func(v, _ string) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	})
	return out
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Op != o.Op || e.Const != o.Const || e.Str != o.Str ||
		e.Var != o.Var || e.Attr != o.Attr {
		return false
	}
	return e.L.Equal(o.L) && e.R.Equal(o.R)
}

// String renders e in the rule DSL syntax (re-parseable by Parse).
func (e *Expr) String() string { return e.render(0) }

// precedence levels: 0 add/sub, 1 mul/div, 2 unary/primary
func (e *Expr) prec() int {
	switch e.Op {
	case OpAdd, OpSub:
		return 0
	case OpMul, OpDiv:
		return 1
	default:
		return 2
	}
}

func (e *Expr) render(parent int) string {
	var s string
	switch e.Op {
	case OpConst:
		s = strconv.FormatInt(e.Const, 10)
		if e.Const < 0 && parent >= 1 {
			s = "(" + s + ")"
		}
		return s
	case OpStr:
		return strconv.Quote(e.Str)
	case OpVar:
		return e.Var + "." + e.Attr
	case OpNeg:
		return "-" + e.L.render(2)
	case OpAbs:
		return "abs(" + e.L.render(0) + ")"
	case OpAdd:
		s = e.L.render(0) + " + " + e.R.render(1)
	case OpSub:
		s = e.L.render(0) + " - " + e.R.render(1)
	case OpMul:
		s = e.L.render(1) + " * " + e.R.render(2)
	case OpDiv:
		s = e.L.render(1) + " / " + e.R.render(2)
	default:
		return fmt.Sprintf("<op%d>", e.Op)
	}
	if e.prec() < parent {
		s = "(" + s + ")"
	}
	return s
}
