package expr

import (
	"math/big"

	"ngd/internal/graph"
)

// This file supports the literal-based candidate pruning of §6.2 step (3):
// a precondition literal of the shape x.A ⊗ e, with e variable-free, is
// compiled down to (attribute, ⊗, constant) and checked per candidate node
// with CompareValue — which must agree exactly with Compare so pruning
// never changes the violation set.

// noBinding resolves nothing: evaluating a term under it errors, which is
// how ConstValue rejects expressions that mention variables.
func noBinding(string, string) (graph.Value, bool) { return graph.Value{}, false }

// ConstValue evaluates a variable-free expression to a constant operand.
// ok=false when the expression mentions a variable or fails to evaluate
// (e.g. division by zero).
func ConstValue(e *Expr) (Result, bool) {
	r, err := Eval(e, noBinding)
	if err != nil {
		return Result{}, false
	}
	return r, true
}

// CompareValue reports whether v ⊗ c holds for an attribute value v and a
// pre-evaluated constant operand c, with exactly the semantics of Compare
// on a term literal: evaluation errors (absent attribute, non-integral
// float, string/number mixing, ordered string comparison) make the literal
// unsatisfied, i.e. return false.
func CompareValue(v graph.Value, op Cmp, c Result) bool {
	r, err := valueOperand(v)
	if err != nil {
		return false
	}
	if r.IsStr || c.IsStr {
		if !r.IsStr || !c.IsStr {
			return false
		}
		switch op {
		case Eq:
			return r.S == c.S
		case Ne:
			return r.S != c.S
		default:
			return false
		}
	}
	sign, cerr := r.N.Cmp(c.N)
	if cerr != nil {
		a := new(big.Rat).SetFrac64(r.N.n, r.N.d)
		b := new(big.Rat).SetFrac64(c.N.n, c.N.d)
		sign = a.Cmp(b)
	}
	return op.holds(sign)
}
