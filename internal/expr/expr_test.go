package expr

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"ngd/internal/graph"
)

// bigRatAccumulator sums coefficient·value products exactly.
type bigRatAccumulator struct{ r big.Rat }

func (a *bigRatAccumulator) Add(x *big.Rat) { a.r.Add(&a.r, x) }
func (a *bigRatAccumulator) AddScaled(c *big.Rat, v int64) {
	t := new(big.Rat).SetInt64(v)
	t.Mul(t, c)
	a.r.Add(&a.r, t)
}
func (a *bigRatAccumulator) Cmp(o *big.Rat) int { return a.r.Cmp(o) }

func bindingOf(m map[string]graph.Value) Binding {
	return func(v, a string) (graph.Value, bool) {
		val, ok := m[v+"."+a]
		return val, ok
	}
}

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"1 + 2", "1 + 2"},
		{"x.val", "x.val"},
		{"x.val + y.val - 3", "x.val + y.val - 3"},
		{"2 * (x.a - y.b)", "2 * (x.a - y.b)"},
		{"x.a / 4", "x.a / 4"},
		{"abs(x.a - y.b)", "abs(x.a - y.b)"},
		{"|x.a - y.b|", "abs(x.a - y.b)"},
		{"|x.a| - |y.b|", "abs(x.a) - abs(y.b)"},
		{"|x.a - |y.b||", "abs(x.a - abs(y.b))"},
		{"-x.a", "-x.a"},
		{"-3", "-3"},
		{`"living people"`, `"living people"`},
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "x", "x.", "1 +", "x.a +* y.b", "(x.a", "|x.a", `"unterminated`, "x . ", "99999999999999999999"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestParseComparison(t *testing.T) {
	l, op, r, err := ParseComparison("x.a + 1 <= y.b * 2")
	if err != nil {
		t.Fatal(err)
	}
	if op != Le {
		t.Errorf("op = %v, want <=", op)
	}
	if l.String() != "x.a + 1" || r.String() != "y.b * 2" {
		t.Errorf("sides = %q, %q", l, r)
	}
	for in, want := range map[string]Cmp{
		"x.a = 1": Eq, "x.a == 1": Eq, "x.a != 1": Ne, "x.a <> 1": Ne,
		"x.a < 1": Lt, "x.a <= 1": Le, "x.a > 1": Gt, "x.a >= 1": Ge,
	} {
		_, op, _, err := ParseComparison(in)
		if err != nil {
			t.Fatalf("ParseComparison(%q): %v", in, err)
		}
		if op != want {
			t.Errorf("ParseComparison(%q) op = %v, want %v", in, op, want)
		}
	}
	if _, _, _, err := ParseComparison("x.a"); err == nil {
		t.Error("expected error for missing operator")
	}
	if _, _, _, err := ParseComparison("x.a = 1 = 2"); err == nil {
		t.Error("expected error for chained comparison")
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var build func(depth int) *Expr
	build = func(depth int) *Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return C(int64(rng.Intn(2000) - 1000))
			case 1:
				return V("x", "a")
			default:
				return V("y", "b")
			}
		}
		switch rng.Intn(6) {
		case 0:
			return Add(build(depth-1), build(depth-1))
		case 1:
			return Sub(build(depth-1), build(depth-1))
		case 2:
			return Mul(build(depth-1), build(depth-1))
		case 3:
			return Div(build(depth-1), build(depth-1))
		case 4:
			return Neg(build(depth - 1))
		default:
			return Abs(build(depth - 1))
		}
	}
	for i := 0; i < 500; i++ {
		e := build(4)
		s := e.String()
		parsed, err := Parse(s)
		if err != nil {
			t.Fatalf("round-trip parse of %q failed: %v", s, err)
		}
		// compare by evaluation at a few points rather than structure:
		// printing may fold -(-c) etc.
		for j := 0; j < 4; j++ {
			b := bindingOf(map[string]graph.Value{
				"x.a": graph.Int(int64(rng.Intn(100) - 50)),
				"y.b": graph.Int(int64(rng.Intn(100) - 50)),
			})
			r1, err1 := EvalBig(e, b)
			r2, err2 := EvalBig(parsed, b)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q: eval err mismatch %v vs %v", s, err1, err2)
			}
			if err1 == nil && r1.Cmp(r2) != 0 {
				t.Fatalf("%q: eval mismatch %v vs %v", s, r1, r2)
			}
		}
	}
}

func TestEvalExactness(t *testing.T) {
	b := bindingOf(map[string]graph.Value{
		"x.a": graph.Int(1),
		"y.b": graph.Int(3),
	})
	// 1/3 + 1/3 + 1/3 = 1 must hold exactly
	third := Div(V("x", "a"), V("y", "b"))
	sum := Add(Add(third, third), third)
	ok, err := Compare(sum, Eq, C(1), b)
	if err != nil || !ok {
		t.Fatalf("1/3*3 = 1: ok=%v err=%v", ok, err)
	}
	// x/2 < 1 with x=1 (rational, not integer division)
	ok, err = Compare(Div(V("x", "a"), C(2)), Lt, C(1), b)
	if err != nil || !ok {
		t.Fatalf("1/2 < 1: ok=%v err=%v", ok, err)
	}
}

func TestEvalOverflowFallback(t *testing.T) {
	big := int64(1) << 62
	b := bindingOf(map[string]graph.Value{"x.a": graph.Int(big)})
	// (2^62 * 4) / 4 == 2^62 — intermediate overflows int64 product
	e := Div(Mul(V("x", "a"), C(4)), C(4))
	ok, err := Compare(e, Eq, C(big), b)
	if err != nil || !ok {
		t.Fatalf("overflow fallback: ok=%v err=%v", ok, err)
	}
	// comparison of huge values must still be exact
	ok, err = Compare(Mul(V("x", "a"), C(1000)), Gt, Mul(V("x", "a"), C(999)), b)
	if err != nil || !ok {
		t.Fatalf("huge compare: ok=%v err=%v", ok, err)
	}
}

func TestEvalErrors(t *testing.T) {
	b := bindingOf(map[string]graph.Value{
		"x.a": graph.Int(5),
		"x.s": graph.Str("hello"),
		"x.f": graph.Float(1.5),
	})
	if _, err := Eval(V("x", "missing"), b); err != ErrMissingAttr {
		t.Errorf("missing attr: got %v", err)
	}
	if _, err := Eval(Add(V("x", "s"), C(1)), b); err != ErrType {
		t.Errorf("string arithmetic: got %v", err)
	}
	if _, err := Eval(Div(V("x", "a"), C(0)), b); err != ErrDivZero {
		t.Errorf("div zero: got %v", err)
	}
	if _, err := Eval(V("x", "f"), b); err != ErrType {
		t.Errorf("non-integer float: got %v", err)
	}
	if _, err := Compare(V("x", "s"), Lt, S("x"), b); err != ErrType {
		t.Errorf("ordered string comparison: got %v", err)
	}
	ok, err := Compare(V("x", "s"), Eq, S("hello"), b)
	if err != nil || !ok {
		t.Errorf("string equality: ok=%v err=%v", ok, err)
	}
	ok, err = Compare(V("x", "s"), Ne, S("world"), b)
	if err != nil || !ok {
		t.Errorf("string inequality: ok=%v err=%v", ok, err)
	}
}

func TestDegreeAndLinearity(t *testing.T) {
	cases := []struct {
		src    string
		degree int
		linear bool
	}{
		{"3", 0, true},
		{"x.a", 1, true},
		{"x.a + y.b", 1, true},
		{"2 * x.a", 1, true},
		{"x.a / 2", 1, true},
		{"abs(x.a - y.b)", 1, true},
		{"x.a * y.b", 2, false},
		{"x.a * x.a", 2, false},
		{"2 / x.a", 1, false},
		{"x.a * (y.b + 1)", 2, false},
		{"x.a * (1 + 2)", 1, true},
		{"(x.a + y.b) * 3 - x.a / 7", 1, true},
	}
	for _, c := range cases {
		e := MustParse(c.src)
		if d := e.Degree(); d != c.degree {
			t.Errorf("Degree(%q) = %d, want %d", c.src, d, c.degree)
		}
		if l := e.IsLinear(); l != c.linear {
			t.Errorf("IsLinear(%q) = %v, want %v", c.src, l, c.linear)
		}
	}
}

func TestLinearizeMatchesEval(t *testing.T) {
	// property: for linear abs-free expressions, the linear form evaluates
	// to the same value as the AST
	exprs := []string{
		"x.a + y.b", "2 * x.a - y.b / 3", "x.a - x.a", "5",
		"(x.a + y.b) * 3 - x.a / 7 + 11", "-x.a + 2 * (y.b - 1)",
	}
	f := func(xv, yv int16) bool {
		b := bindingOf(map[string]graph.Value{
			"x.a": graph.Int(int64(xv)),
			"y.b": graph.Int(int64(yv)),
		})
		for _, src := range exprs {
			e := MustParse(src)
			lf, err := Linearize(e)
			if err != nil {
				return false
			}
			want, err := EvalBig(e, b)
			if err != nil {
				return false
			}
			got := new(bigRatAccumulator)
			got.Add(lf.Const)
			for k, c := range lf.Coeffs {
				v, _ := b(k.Var, k.Attr)
				i, _ := v.AsInt()
				got.AddScaled(c, i)
			}
			if got.Cmp(want) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsVariants(t *testing.T) {
	e := MustParse("abs(x.a - y.b) + abs(x.a)")
	vs := AbsVariants(e)
	if len(vs) != 4 {
		t.Fatalf("got %d variants, want 4", len(vs))
	}
	for _, v := range vs {
		if v.Expr.Degree() > 1 {
			t.Errorf("variant %s degree > 1", v.Expr)
		}
		if _, err := Linearize(v.Expr); err != nil {
			t.Errorf("variant %s not linearizable: %v", v.Expr, err)
		}
		if len(v.Conds) != 2 {
			t.Errorf("variant %s has %d conds, want 2", v.Expr, len(v.Conds))
		}
	}
	// no abs: single variant, no conds
	vs = AbsVariants(MustParse("x.a + 1"))
	if len(vs) != 1 || len(vs[0].Conds) != 0 {
		t.Fatalf("abs-free expression should have exactly one unconditional variant")
	}
}

func TestCmpHelpers(t *testing.T) {
	for _, c := range []Cmp{Eq, Ne, Lt, Le, Gt, Ge} {
		if c.Negate().Negate() != c {
			t.Errorf("double negate of %v", c)
		}
		if c.Flip().Flip() != c {
			t.Errorf("double flip of %v", c)
		}
	}
	b := bindingOf(map[string]graph.Value{"x.a": graph.Int(3)})
	for _, tc := range []struct {
		op   Cmp
		rhs  int64
		want bool
	}{
		{Eq, 3, true}, {Eq, 4, false}, {Ne, 4, true}, {Lt, 4, true},
		{Le, 3, true}, {Gt, 2, true}, {Ge, 3, true}, {Lt, 3, false},
	} {
		got, err := Compare(V("x", "a"), tc.op, C(tc.rhs), b)
		if err != nil || got != tc.want {
			t.Errorf("3 %v %d = %v (err %v), want %v", tc.op, tc.rhs, got, err, tc.want)
		}
	}
}
