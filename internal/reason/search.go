package reason

import (
	"math/big"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/solver"
)

// varKey identifies an unknown: attribute A of canonical node v.
type varKey struct {
	node graph.NodeID
	attr string
}

// search carries the branching state: numeric constraints destined for the
// integer solver, attribute-presence decisions, and a small string-equality
// theory (string literals admit only = and ≠, §3).
type search struct {
	g    *graph.Graph
	opts Options
	done <-chan struct{} // Options.Ctx cancellation; nil = unbounded

	varIdx map[varKey]int
	nVars  int

	cons []solver.Constraint // numeric constraints (append-only + truncate)

	presence map[varKey]bool // decided presence; absent key = undecided

	strEq map[varKey]string   // var bound to a string constant
	strNe map[varKey][]string // var excluded constants
	isStr map[varKey]bool     // type decision: true=string, false=numeric
}

func newSearch(g *graph.Graph, opts Options) *search {
	// thread the deadline into the integer solver: a single exact-rational
	// Solve over a large obligation set can dwarf the branch loop, so the
	// solver polls the same channel per node and per pivot batch
	opts.Solver.Done = opts.done()
	return &search{
		g: g, opts: opts, done: opts.done(),
		varIdx:   make(map[varKey]int),
		presence: make(map[varKey]bool),
		strEq:    make(map[varKey]string),
		strNe:    make(map[varKey][]string),
		isStr:    make(map[varKey]bool),
	}
}

// expired polls the wall-clock deadline. Polled once per branch: the
// non-blocking select is noise next to the per-branch snapshot map copies,
// and a coarser stride lets expensive solver leaves overshoot the deadline.
func (s *search) expired() bool {
	if s.done == nil {
		return false
	}
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// snapshot/undo: maps are copied lazily via trails.
type snapshot struct {
	nCons    int
	presence map[varKey]bool
	strEq    map[varKey]string
	strNe    map[varKey][]string
	isStr    map[varKey]bool
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	c := make(map[K]V, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (s *search) save() snapshot {
	return snapshot{
		nCons:    len(s.cons),
		presence: copyMap(s.presence),
		strEq:    copyMap(s.strEq),
		strNe:    copyMap(s.strNe),
		isStr:    copyMap(s.isStr),
	}
}

func (s *search) restore(sn snapshot) {
	s.cons = s.cons[:sn.nCons]
	s.presence = sn.presence
	s.strEq = sn.strEq
	s.strNe = sn.strNe
	s.isStr = sn.isStr
}

func (s *search) varOf(k varKey) int {
	if i, ok := s.varIdx[k]; ok {
		return i
	}
	i := s.nVars
	s.varIdx[k] = i
	s.nVars++
	return i
}

// requirePresent marks k present; false on conflict.
func (s *search) requirePresent(k varKey) bool {
	if p, ok := s.presence[k]; ok {
		return p
	}
	s.presence[k] = true
	return true
}

// requireAbsent marks k absent; false on conflict.
func (s *search) requireAbsent(k varKey) bool {
	if p, ok := s.presence[k]; ok {
		return !p
	}
	s.presence[k] = false
	return true
}

// setType constrains k's type; false on conflict.
func (s *search) setType(k varKey, str bool) bool {
	if t, ok := s.isStr[k]; ok {
		return t == str
	}
	s.isStr[k] = str
	return true
}

// ---- literal instantiation ----

// termKeys substitutes the match into an expression's terms.
func termKeysOf(e *expr.Expr, rule *core.NGD, m core.Match) ([]varKey, bool) {
	ok := true
	var keys []varKey
	e.Terms(func(v, a string) {
		idx := rule.Pattern.VarIndex(v)
		if idx < 0 || idx >= len(m) {
			ok = false
			return
		}
		keys = append(keys, varKey{m[idx], a})
	})
	return keys, ok
}

// isBareStringLiteral recognizes literals whose sides are a lone term or a
// string constant, at least one side being a string constant (the only
// string comparisons NGDs support: CFD-style constant bindings).
func isBareStringLiteral(l core.Literal) bool {
	bare := func(e *expr.Expr) bool { return e.Op == expr.OpVar || e.Op == expr.OpStr }
	return bare(l.L) && bare(l.R) && (l.L.Op == expr.OpStr || l.R.Op == expr.OpStr)
}

// addLiteral asserts literal l (negated if neg) under match m of rule.
// It may branch internally (abs elimination, ≠ handled by the solver).
// Returns the list of alternative continuations: each alternative is a
// function applying its constraints, returning false on contradiction.
// The caller explores them with save/restore.
func (s *search) addLiteral(rule *core.NGD, m core.Match, l core.Literal, neg bool) []func() bool {
	op := l.Op
	if neg {
		op = op.Negate()
	}
	// string path
	if l.L.HasString() || l.R.HasString() {
		if !isBareStringLiteral(l) {
			// strings inside arithmetic never evaluate (§3: type error ⇒
			// literal unsatisfied): asserting it positively is impossible;
			// asserting its negation is vacuous.
			if neg {
				return []func() bool{func() bool { return true }}
			}
			return nil
		}
		return s.addStringLiteral(rule, m, l.L, op, l.R)
	}
	// numeric path: lhs − rhs ⊗ 0, with abs expanded by case analysis
	diff := expr.Sub(l.L.Clone(), l.R.Clone())
	variants := expr.AbsVariants(diff)
	var alts []func() bool
	for _, v := range variants {
		v := v
		alts = append(alts, func() bool {
			// presence + type for every term
			keys, ok := termKeysOf(v.Expr, rule, m)
			if !ok {
				return false
			}
			for _, k := range keys {
				if !s.requirePresent(k) || !s.setType(k, false) {
					return false
				}
			}
			for _, c := range v.Conds {
				if !s.addLinear(rule, m, c.Inner, condRel(c.NonNeg), new(big.Rat)) {
					return false
				}
			}
			return s.addLinear(rule, m, v.Expr, cmpToRel(op), new(big.Rat))
		})
	}
	return alts
}

func condRel(nonNeg bool) solver.Rel {
	if nonNeg {
		return solver.Ge
	}
	return solver.Lt
}

func cmpToRel(c expr.Cmp) solver.Rel {
	switch c {
	case expr.Eq:
		return solver.Eq
	case expr.Ne:
		return solver.Ne
	case expr.Lt:
		return solver.Lt
	case expr.Le:
		return solver.Le
	case expr.Gt:
		return solver.Gt
	default:
		return solver.Ge
	}
}

// addLinear linearizes e (abs-free) under the match and appends e rel rhs.
func (s *search) addLinear(rule *core.NGD, m core.Match, e *expr.Expr, rel solver.Rel, rhs *big.Rat) bool {
	lf, err := expr.Linearize(e)
	if err != nil {
		return false
	}
	var c solver.Constraint
	for tk, co := range lf.Coeffs {
		idx := rule.Pattern.VarIndex(tk.Var)
		if idx < 0 || idx >= len(m) {
			return false
		}
		k := varKey{m[idx], tk.Attr}
		if !s.requirePresent(k) || !s.setType(k, false) {
			return false
		}
		c.Vars = append(c.Vars, s.varOf(k))
		c.Coef = append(c.Coef, new(big.Rat).Set(co))
	}
	c.Rel = rel
	c.RHS = new(big.Rat).Sub(rhs, lf.Const)
	if len(c.Vars) == 0 {
		// ground literal: decide immediately
		return groundHolds(c.Rel, new(big.Rat).Neg(c.RHS))
	}
	s.cons = append(s.cons, c)
	return true
}

// groundHolds decides 0·x rel rhs, i.e. lhsConst rel 0 given -rhs = const.
func groundHolds(rel solver.Rel, lhs *big.Rat) bool {
	sign := lhs.Sign()
	switch rel {
	case solver.Le:
		return sign <= 0
	case solver.Ge:
		return sign >= 0
	case solver.Eq:
		return sign == 0
	case solver.Lt:
		return sign < 0
	case solver.Gt:
		return sign > 0
	default:
		return sign != 0
	}
}

// addStringLiteral handles t ⊗ "c", "c" ⊗ t, "a" ⊗ "b", or t1 ⊗ t2 with a
// string side; ⊗ ∈ {=, ≠} only (ordered string comparison never holds).
func (s *search) addStringLiteral(rule *core.NGD, m core.Match, lhs *expr.Expr, op expr.Cmp, rhs *expr.Expr) []func() bool {
	if op != expr.Eq && op != expr.Ne {
		return nil // cannot hold (its negation is Eq/Ne and handled there)
	}
	// resolve sides
	type side struct {
		isConst bool
		c       string
		k       varKey
	}
	resolve := func(e *expr.Expr) (side, bool) {
		if e.Op == expr.OpStr {
			return side{isConst: true, c: e.Str}, true
		}
		idx := rule.Pattern.VarIndex(e.Var)
		if idx < 0 || idx >= len(m) {
			return side{}, false
		}
		return side{k: varKey{m[idx], e.Attr}}, true
	}
	a, ok1 := resolve(lhs)
	b, ok2 := resolve(rhs)
	if !ok1 || !ok2 {
		return nil
	}
	apply := func() bool {
		switch {
		case a.isConst && b.isConst:
			if op == expr.Eq {
				return a.c == b.c
			}
			return a.c != b.c
		case a.isConst:
			a, b = b, a
			fallthrough
		default:
			// a is a variable
			if !s.requirePresent(a.k) || !s.setType(a.k, true) {
				return false
			}
			if !b.isConst {
				// var-var string comparison: unsupported shape in rules we
				// generate; approximate by requiring both present and, for
				// equality, binding through a shared constant is not
				// expressible — reject this branch conservatively.
				return false
			}
			if op == expr.Eq {
				if cur, ok := s.strEq[a.k]; ok {
					return cur == b.c
				}
				for _, ex := range s.strNe[a.k] {
					if ex == b.c {
						return false
					}
				}
				s.strEq[a.k] = b.c
				return true
			}
			if cur, ok := s.strEq[a.k]; ok {
				return cur != b.c
			}
			s.strNe[a.k] = append(s.strNe[a.k], b.c)
			return true
		}
	}
	return []func() bool{apply}
}

// ---- top-level search over implications ----

// searchImplications explores ways to make every obligation hold (and the
// negated rule fail, when negate != nil). Yes = a consistent assignment
// exists.
func (s *search) searchImplications(obls []implication, i int, negate *core.NGD, negMatch core.Match, budget *int) Verdict {
	if *budget <= 0 || s.expired() {
		return Unknown
	}
	*budget--
	if i == len(obls) {
		if negate != nil {
			return s.searchViolation(negate, negMatch, budget)
		}
		return s.checkNumeric()
	}
	ob := obls[i]
	sawUnknown := false

	// Option A: satisfy all of X and all of Y
	if v := s.tryAll(ob, append(append([]core.Literal{}, ob.rule.X...), ob.rule.Y...), func() Verdict {
		return s.searchImplications(obls, i+1, negate, negMatch, budget)
	}); v == Yes {
		return Yes
	} else if v == Unknown {
		sawUnknown = true
	}

	// Option B: falsify some X literal
	for xi := range ob.rule.X {
		v := s.tryFalsify(ob, ob.rule.X[xi], func() Verdict {
			return s.searchImplications(obls, i+1, negate, negMatch, budget)
		})
		if v == Yes {
			return Yes
		}
		if v == Unknown {
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown
	}
	return No
}

// searchViolation requires X(negate) to hold and some Y literal to fail on
// negMatch.
func (s *search) searchViolation(negate *core.NGD, m core.Match, budget *int) Verdict {
	ob := implication{rule: negate, m: m}
	sawUnknown := false
	for yi := range negate.Y {
		v := s.tryAll(ob, negate.X, func() Verdict {
			return s.tryFalsify(ob, negate.Y[yi], s.checkNumeric)
		})
		if v == Yes {
			return Yes
		}
		if v == Unknown {
			sawUnknown = true
		}
	}
	if len(negate.Y) == 0 {
		// X → ∅ cannot be violated
		return No
	}
	if sawUnknown {
		return Unknown
	}
	return No
}

// tryAll asserts a conjunction of literals (branching on abs variants) and
// calls cont at every consistent leaf.
func (s *search) tryAll(ob implication, lits []core.Literal, cont func() Verdict) Verdict {
	var rec func(j int) Verdict
	rec = func(j int) Verdict {
		if j == len(lits) {
			return cont()
		}
		alts := s.addLiteral(ob.rule, ob.m, lits[j], false)
		sawUnknown := false
		for _, alt := range alts {
			sn := s.save()
			if alt() {
				if v := rec(j + 1); v == Yes {
					return Yes
				} else if v == Unknown {
					sawUnknown = true
				}
			}
			s.restore(sn)
		}
		if sawUnknown {
			return Unknown
		}
		return No
	}
	return rec(0)
}

// tryFalsify asserts ¬l: either some term's attribute is absent, or every
// term resolves and the negated comparison holds.
func (s *search) tryFalsify(ob implication, l core.Literal, cont func() Verdict) Verdict {
	sawUnknown := false
	// failure mode 1: a term's attribute is missing
	keysL, okL := termKeysOf(l.L, ob.rule, ob.m)
	keysR, okR := termKeysOf(l.R, ob.rule, ob.m)
	if !okL || !okR {
		return No
	}
	seen := map[varKey]struct{}{}
	for _, k := range append(keysL, keysR...) {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		sn := s.save()
		if s.requireAbsent(k) {
			if v := cont(); v == Yes {
				return Yes
			} else if v == Unknown {
				sawUnknown = true
			}
		}
		s.restore(sn)
	}
	// failure mode 2: all attributes present, comparison negated
	for _, alt := range s.addLiteral(ob.rule, ob.m, l, true) {
		sn := s.save()
		if alt() {
			if v := cont(); v == Yes {
				return Yes
			} else if v == Unknown {
				sawUnknown = true
			}
		}
		s.restore(sn)
	}
	if sawUnknown {
		return Unknown
	}
	return No
}

// checkNumeric runs the integer feasibility check on the accumulated
// constraints.
func (s *search) checkNumeric() Verdict {
	sys := &solver.System{NumVars: s.nVars, Cons: s.cons, Integer: true}
	st, _ := sys.Solve(s.opts.Solver)
	switch st {
	case solver.Feasible:
		return Yes
	case solver.Infeasible:
		return No
	default:
		return Unknown
	}
}
