// Package reason implements the static analyses of NGDs (paper §4): the
// satisfiability, strong satisfiability and implication problems, which are
// Σp2-complete, Σp2-complete and Πp2-complete respectively (Theorem 1).
//
// The decision procedure rests on a canonical-instance property mirroring
// the paper's small-model argument: Σ is strongly satisfiable iff the
// *canonical instance* — the disjoint union of all patterns in Σ, with
// every wildcard node given a fresh label — admits an attribute assignment
// (values and *presence*) under which every homomorphic match of every
// pattern satisfies its rule. Pulling any model G back along the canonical
// matches shows completeness; the canonical instance itself is the witness
// for soundness. Plain satisfiability quantifies existentially over which
// single pattern is materialized, and Σ ⊨ φ fails exactly when the
// canonical instance of Q_φ supports an assignment satisfying Σ while
// violating X_φ → Y_φ on the identity match.
//
// The exponential lives where the complexity class says it must: in the
// enumeration of matches and in the disjunctive search over ways to satisfy
// or falsify literals (missing attribute vs. negated comparison, paper §3
// semantics), with exact integer linear feasibility (package solver) as the
// base case. Inputs with non-linear expressions are rejected up front: by
// Theorem 3 the analyses are undecidable already at degree 2.
package reason

import (
	"context"
	"errors"
	"fmt"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/pattern"
	"ngd/internal/plan"
	"ngd/internal/solver"
)

// ErrNonLinear reports rules outside the linear fragment (undecidable).
var ErrNonLinear = errors.New("reason: non-linear NGD: satisfiability and implication are undecidable (Theorem 3)")

// Verdict is a three-valued answer; Unknown arises only when a search
// budget is exhausted.
type Verdict uint8

// Verdict values.
const (
	No Verdict = iota
	Yes
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case No:
		return "no"
	case Yes:
		return "yes"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the verdict as its string form ("no"/"yes"/"unknown")
// so analysis reports stay readable on the wire.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON accepts the string form.
func (v *Verdict) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"no"`:
		*v = No
	case `"yes"`:
		*v = Yes
	case `"unknown"`:
		*v = Unknown
	default:
		return fmt.Errorf("reason: bad verdict %s", b)
	}
	return nil
}

// Options bound the analyses.
//
// Budget semantics: the decision procedures are exact within their budgets —
// a Yes or No answer is always correct — and degrade to Unknown, never to a
// wrong answer, when any budget is exhausted. Three budgets apply:
//
//   - MaxMatches bounds how many homomorphic matches of Σ-patterns into a
//     canonical instance are enumerated (the obligation set);
//   - MaxBranches bounds the disjunctive search tree over ways to satisfy
//     or falsify literals (where the Σp2 exponential lives);
//   - Ctx, when non-nil, bounds the whole call in wall-clock time: the
//     search polls the context between branches and between candidate
//     patterns, and returns Unknown once it is done. Pair it with
//     context.WithTimeout for a hard deadline — an admission gate running
//     in strict mode can then never hang inside a Σp2 search.
//
// The solver's own node/split caps (Options.Solver) behave the same way:
// its Unknown propagates as Unknown here.
type Options struct {
	// MaxMatches caps pattern-match enumeration per canonical instance.
	MaxMatches int
	// MaxBranches caps the disjunctive search tree.
	MaxBranches int
	// Ctx, when non-nil, carries a cancellation/deadline signal into the
	// search; an expired context makes the analyses return Unknown.
	Ctx context.Context
	// Solver passes through to the integer feasibility solver.
	Solver solver.Options
}

func (o Options) defaults() Options {
	if o.MaxMatches <= 0 {
		o.MaxMatches = 2000
	}
	if o.MaxBranches <= 0 {
		o.MaxBranches = 200000
	}
	return o
}

// done returns the context's cancellation channel (nil when unbounded).
func (o Options) done() <-chan struct{} {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Done()
}

// expired reports whether the wall-clock budget is already exhausted.
func (o Options) expired() bool {
	select {
	case <-o.done():
		return true
	default:
		return false
	}
}

// Satisfiable decides whether Σ has a model in which at least one pattern
// of Σ matches (paper §4 satisfiability).
func Satisfiable(rules *core.Set, opts Options) (Verdict, error) {
	if err := checkLinear(rules.Rules...); err != nil {
		return Unknown, err
	}
	opts = opts.defaults()
	sawUnknown := false
	for _, r := range rules.Rules {
		if opts.expired() {
			return Unknown, nil
		}
		v, err := consistentCanonical(rules, []*pattern.Pattern{r.Pattern}, nil, opts)
		if err != nil {
			return Unknown, err
		}
		switch v {
		case Yes:
			return Yes, nil
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return No, nil
}

// PatternConsistent decides whether the canonical instance of anchor's
// pattern admits an attribute assignment under which every match of every
// rule in Σ satisfies its dependency. It is the single-pattern probe that
// Satisfiable existentially quantifies over; the analyze package uses it
// to shrink an unsatisfiable Σ to a minimal core while holding the anchor
// pattern fixed.
func PatternConsistent(rules *core.Set, anchor *core.NGD, opts Options) (Verdict, error) {
	if err := checkLinear(append(append([]*core.NGD{}, rules.Rules...), anchor)...); err != nil {
		return Unknown, err
	}
	opts = opts.defaults()
	return consistentCanonical(rules, []*pattern.Pattern{anchor.Pattern}, nil, opts)
}

// StronglySatisfiable decides whether Σ has a model in which *every*
// pattern of Σ matches.
func StronglySatisfiable(rules *core.Set, opts Options) (Verdict, error) {
	if err := checkLinear(rules.Rules...); err != nil {
		return Unknown, err
	}
	opts = opts.defaults()
	var pats []*pattern.Pattern
	for _, r := range rules.Rules {
		pats = append(pats, r.Pattern)
	}
	return consistentCanonical(rules, pats, nil, opts)
}

// Implies decides Σ ⊨ φ: Yes when every model of Σ satisfies φ.
func Implies(rules *core.Set, phi *core.NGD, opts Options) (Verdict, error) {
	if err := checkLinear(append(append([]*core.NGD{}, rules.Rules...), phi)...); err != nil {
		return Unknown, err
	}
	opts = opts.defaults()
	// witness search: canonical(Q_φ) satisfying Σ with the identity match
	// violating X_φ → Y_φ
	v, err := consistentCanonical(rules, []*pattern.Pattern{phi.Pattern}, phi, opts)
	if err != nil {
		return Unknown, err
	}
	switch v {
	case Yes:
		return No, nil // witness exists: not implied
	case No:
		return Yes, nil
	default:
		return Unknown, nil
	}
}

func checkLinear(rules ...*core.NGD) error {
	for _, r := range rules {
		for _, l := range append(append([]core.Literal{}, r.X...), r.Y...) {
			if !l.IsLinear() {
				return fmt.Errorf("%w: rule %s literal %s", ErrNonLinear, r.Name, l)
			}
		}
	}
	return nil
}

// canonical builds the canonical instance of the given patterns: their
// disjoint union with fresh labels on wildcard nodes. It returns the graph
// and, for each input pattern, its identity match.
func canonical(pats []*pattern.Pattern) (*graph.Graph, []core.Match) {
	g := graph.New()
	fresh := 0
	matches := make([]core.Match, len(pats))
	for pi, p := range pats {
		m := make(core.Match, len(p.Nodes))
		for i, n := range p.Nodes {
			label := n.Label
			if label == "_" {
				label = fmt.Sprintf("⊥fresh%d", fresh) // ⊥freshN: never in Γ
				fresh++
			}
			m[i] = g.AddNode(label)
		}
		for _, e := range p.Edges {
			g.AddEdge(m[e.Src], m[e.Dst], e.Label)
		}
		matches[pi] = m
	}
	return g, matches
}

// implication is one obligation: match m of rule r must satisfy X → Y.
type implication struct {
	rule *core.NGD
	m    core.Match
}

// consistentCanonical reports whether the canonical instance of pats admits
// an attribute assignment making every match of every Σ-rule satisfy its
// dependency, and (when negate != nil) making the identity match of
// negate's pattern violate negate.
func consistentCanonical(rules *core.Set, pats []*pattern.Pattern, negate *core.NGD, opts Options) (Verdict, error) {
	g, idMatches := canonical(pats)

	// enumerate obligations: all matches of all Σ-patterns
	var obligations []implication
	for _, r := range rules.Rules {
		if opts.expired() {
			return Unknown, nil
		}
		cp := pattern.Compile(r.Pattern, g.Symbols())
		pl := plan.ForPattern(g, cp)
		mr := match.NewMatcher(g, pl, match.Hooks{})
		over := false
		mr.Run(match.NewPartial(len(r.Pattern.Nodes)), func(sol []graph.NodeID) bool {
			obligations = append(obligations, implication{rule: r, m: append(core.Match(nil), sol...)})
			if len(obligations) > opts.MaxMatches {
				over = true
				return false
			}
			return len(obligations)&0x3f != 0 || !opts.expired()
		})
		if over || opts.expired() {
			return Unknown, nil
		}
	}

	st := newSearch(g, opts)
	budget := opts.MaxBranches
	var idm core.Match
	if len(idMatches) > 0 {
		idm = idMatches[0]
	}
	v := st.searchImplications(obligations, 0, negate, idm, &budget)
	return v, nil
}
