package reason

import (
	"context"
	"errors"
	"testing"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/paperdata"
	"ngd/internal/pattern"
)

func singleNodeRule(name, label string, x, y []core.Literal) *core.NGD {
	p := pattern.New()
	p.AddNode("x", label)
	return core.MustNew(name, p, x, y)
}

// TestPaperExample5 pins the worked satisfiability examples of §4.
func TestPaperExample5(t *testing.T) {
	// φ5 = Q[x:_](∅ → x.A = 7 ∧ x.B = 7)
	phi5 := singleNodeRule("phi5", "_", nil, []core.Literal{
		core.MustLiteral("x.A = 7"), core.MustLiteral("x.B = 7"),
	})
	// φ6 = Q[x:_](∅ → x.A + x.B = 11)
	phi6 := singleNodeRule("phi6", "_", nil, []core.Literal{
		core.MustLiteral("x.A + x.B = 11"),
	})

	// separately each is satisfiable
	for _, r := range []*core.NGD{phi5, phi6} {
		v, err := Satisfiable(core.NewSet(r), Options{})
		if err != nil || v != Yes {
			t.Fatalf("%s alone: %v %v, want yes", r.Name, v, err)
		}
	}
	// together: unsatisfiable (7+7 ≠ 11)
	v, err := Satisfiable(core.NewSet(phi5, phi6), Options{})
	if err != nil || v != No {
		t.Fatalf("{φ5, φ6}: %v %v, want no", v, err)
	}

	// replace φ6's pattern with label 'a': satisfiable (a graph with no
	// 'a'-labeled node models Σ0) but not strongly satisfiable
	phi6a := singleNodeRule("phi6a", "a", nil, []core.Literal{
		core.MustLiteral("x.A + x.B = 11"),
	})
	v, err = Satisfiable(core.NewSet(phi5, phi6a), Options{})
	if err != nil || v != Yes {
		t.Fatalf("{φ5, φ6'}: %v %v, want yes", v, err)
	}
	v, err = StronglySatisfiable(core.NewSet(phi5, phi6a), Options{})
	if err != nil || v != No {
		t.Fatalf("strong {φ5, φ6'}: %v %v, want no", v, err)
	}

	// φ7 = (x.A ≤ 3 → x.B > 6), φ8 = (x.A > 3 → x.B > 6),
	// φ9 = (∅ → x.B < 6 ∧ x.A ≠ 0): jointly unsatisfiable
	phi7 := singleNodeRule("phi7", "_",
		[]core.Literal{core.MustLiteral("x.A <= 3")},
		[]core.Literal{core.MustLiteral("x.B > 6")})
	phi8 := singleNodeRule("phi8", "_",
		[]core.Literal{core.MustLiteral("x.A > 3")},
		[]core.Literal{core.MustLiteral("x.B > 6")})
	phi9 := singleNodeRule("phi9", "_", nil,
		[]core.Literal{core.MustLiteral("x.B < 6"), core.MustLiteral("x.A != 0")})
	v, err = Satisfiable(core.NewSet(phi7, phi8, phi9), Options{})
	if err != nil || v != No {
		t.Fatalf("{φ7, φ8, φ9}: %v %v, want no", v, err)
	}
	// without φ9 (so A may be absent): satisfiable
	v, err = Satisfiable(core.NewSet(phi7, phi8), Options{})
	if err != nil || v != Yes {
		t.Fatalf("{φ7, φ8}: %v %v, want yes", v, err)
	}
}

func TestPaperRulesSatisfiable(t *testing.T) {
	v, err := StronglySatisfiable(paperdata.AllRules(), Options{})
	if err != nil || v != Yes {
		t.Fatalf("paper rules φ1–φ4 should be strongly satisfiable: %v %v", v, err)
	}
}

func TestImplicationBasics(t *testing.T) {
	a7 := singleNodeRule("a7", "_", nil, []core.Literal{core.MustLiteral("x.A = 7")})

	// Σ = {∅ → A=7} implies ∅ → A+A = 14
	dbl := singleNodeRule("dbl", "_", nil, []core.Literal{core.MustLiteral("x.A + x.A = 14")})
	v, err := Implies(core.NewSet(a7), dbl, Options{})
	if err != nil || v != Yes {
		t.Fatalf("A=7 ⊨ A+A=14: %v %v", v, err)
	}

	// but not ∅ → A = 8
	a8 := singleNodeRule("a8", "_", nil, []core.Literal{core.MustLiteral("x.A = 8")})
	v, err = Implies(core.NewSet(a7), a8, Options{})
	if err != nil || v != No {
		t.Fatalf("A=7 ⊭ A=8: %v %v", v, err)
	}

	// ranges: A ≥ 5 implies A ≥ 3, not A ≥ 6
	ge5 := singleNodeRule("ge5", "_", nil, []core.Literal{core.MustLiteral("x.A >= 5")})
	ge3 := singleNodeRule("ge3", "_", nil, []core.Literal{core.MustLiteral("x.A >= 3")})
	ge6 := singleNodeRule("ge6", "_", nil, []core.Literal{core.MustLiteral("x.A >= 6")})
	if v, _ := Implies(core.NewSet(ge5), ge3, Options{}); v != Yes {
		t.Errorf("A≥5 ⊨ A≥3 failed: %v", v)
	}
	if v, _ := Implies(core.NewSet(ge5), ge6, Options{}); v != No {
		t.Errorf("A≥5 ⊭ A≥6 failed: %v", v)
	}
}

func TestImplicationWithPrecondition(t *testing.T) {
	// Σ forces A=1 on every 'a' node; then (B=1 → A=1) is implied: no model
	// of Σ can violate it.
	sigma := singleNodeRule("forceA", "a", nil, []core.Literal{core.MustLiteral("x.A = 1")})
	phi := singleNodeRule("condA", "a",
		[]core.Literal{core.MustLiteral("x.B = 1")},
		[]core.Literal{core.MustLiteral("x.A = 1")})
	v, err := Implies(core.NewSet(sigma), phi, Options{})
	if err != nil || v != Yes {
		t.Fatalf("implication with precondition: %v %v", v, err)
	}

	// a rule on label 'b' says nothing about 'a' nodes: not implied
	sigmaB := singleNodeRule("forceB", "b", nil, []core.Literal{core.MustLiteral("x.A = 1")})
	v, err = Implies(core.NewSet(sigmaB), phi, Options{})
	if err != nil || v != No {
		t.Fatalf("cross-label implication should fail: %v %v", v, err)
	}
}

func TestImplicationTransitivity(t *testing.T) {
	// x -e-> y with A drift ≤ 2 per hop implies drift ≤ 4 over two hops
	mk := func(name string, hops int, bound int64) *core.NGD {
		p := pattern.New()
		prev := p.AddNode("x0", "n")
		for i := 1; i <= hops; i++ {
			cur := p.AddNode(nodeName(i), "n")
			p.AddEdge(prev, cur, "e")
			prev = cur
		}
		lit := core.Lit(
			expr.Abs(expr.Sub(expr.V("x0", "A"), expr.V(nodeName(hops), "A"))),
			expr.Le, expr.C(bound))
		return core.MustNew(name, p, nil, []core.Literal{lit})
	}
	oneHop := mk("hop1", 1, 2)
	twoHop := mk("hop2", 2, 4)
	tooTight := mk("hop2tight", 2, 3)

	if v, err := Implies(core.NewSet(oneHop), twoHop, Options{}); err != nil || v != Yes {
		t.Fatalf("1-hop drift ⊨ 2-hop double bound: %v %v", v, err)
	}
	if v, err := Implies(core.NewSet(oneHop), tooTight, Options{}); err != nil || v != No {
		t.Fatalf("1-hop drift ⊭ tighter 2-hop bound: %v %v", v, err)
	}
}

func nodeName(i int) string {
	return "x" + string(rune('0'+i))
}

func TestStringLiterals(t *testing.T) {
	// ∅ → x.cat = "living" conflicts with ∅ → x.cat ≠ "living"
	isLiving := singleNodeRule("l1", "_", nil, []core.Literal{core.MustLiteral(`x.cat = "living"`)})
	notLiving := singleNodeRule("l2", "_", nil, []core.Literal{core.MustLiteral(`x.cat != "living"`)})
	v, err := Satisfiable(core.NewSet(isLiving, notLiving), Options{})
	if err != nil || v != No {
		t.Fatalf("contradictory string rules: %v %v, want no", v, err)
	}
	// different constants are fine together only if equality is not forced
	isDead := singleNodeRule("l3", "_", nil, []core.Literal{core.MustLiteral(`x.cat = "dead"`)})
	v, err = Satisfiable(core.NewSet(isLiving, isDead), Options{})
	if err != nil || v != No {
		t.Fatalf("cat = living ∧ cat = dead: %v %v, want no", v, err)
	}
	v, err = Satisfiable(core.NewSet(notLiving, isDead), Options{})
	if err != nil || v != Yes {
		t.Fatalf("cat ≠ living ∧ cat = dead: %v %v, want yes", v, err)
	}
}

func TestNonLinearRejected(t *testing.T) {
	// Theorem 3: degree-2 expressions make the analyses undecidable; the
	// API must refuse them. Build the rule bypassing core.New's validation.
	p := pattern.New()
	p.AddNode("x", "_")
	bad := &core.NGD{Name: "square", Pattern: p, Y: []core.Literal{
		core.Lit(expr.Mul(expr.V("x", "A"), expr.V("x", "A")), expr.Eq, expr.C(4)),
	}}
	if _, err := Satisfiable(core.NewSet(bad), Options{}); !errors.Is(err, ErrNonLinear) {
		t.Fatalf("non-linear rule accepted: %v", err)
	}
	if _, err := Implies(core.NewSet(), bad, Options{}); !errors.Is(err, ErrNonLinear) {
		t.Fatalf("non-linear implication accepted: %v", err)
	}
}

func TestSelfImplication(t *testing.T) {
	// every rule implies itself
	r := singleNodeRule("self", "a",
		[]core.Literal{core.MustLiteral("x.A > 0")},
		[]core.Literal{core.MustLiteral("x.B <= 10")})
	v, err := Implies(core.NewSet(r), r, Options{})
	if err != nil || v != Yes {
		t.Fatalf("self implication: %v %v", v, err)
	}
	// and the empty Σ does not imply it
	v, err = Implies(core.NewSet(), r, Options{})
	if err != nil || v != No {
		t.Fatalf("∅ ⊨ r should fail: %v %v", v, err)
	}
}

func TestEmptySetSatisfiable(t *testing.T) {
	// no rules: vacuously no pattern to match — the paper's condition (b)
	// requires a matching pattern, so the empty set is unsatisfiable by
	// convention of the existential scan (no candidate rule)
	v, err := Satisfiable(core.NewSet(), Options{})
	if err != nil || v != No {
		t.Fatalf("empty set: %v %v", v, err)
	}
	// strong satisfiability of the empty set holds vacuously
	v, err = StronglySatisfiable(core.NewSet(), Options{})
	if err != nil || v != Yes {
		t.Fatalf("strong empty set: %v %v", v, err)
	}
}

func TestAbsInReasoning(t *testing.T) {
	// |A - B| ≤ 1 ∧ A - B = 5 is unsatisfiable; with A - B = 1 satisfiable
	absRule := singleNodeRule("abs", "_", nil, []core.Literal{
		core.MustLiteral("abs(x.A - x.B) <= 1"),
	})
	gap5 := singleNodeRule("gap5", "_", nil, []core.Literal{core.MustLiteral("x.A - x.B = 5")})
	gap1 := singleNodeRule("gap1", "_", nil, []core.Literal{core.MustLiteral("x.A - x.B = 1")})
	if v, err := Satisfiable(core.NewSet(absRule, gap5), Options{}); err != nil || v != No {
		t.Fatalf("abs ∧ gap5: %v %v, want no", v, err)
	}
	if v, err := Satisfiable(core.NewSet(absRule, gap1), Options{}); err != nil || v != Yes {
		t.Fatalf("abs ∧ gap1: %v %v, want yes", v, err)
	}
}

func TestContextCancellation(t *testing.T) {
	// a cancelled context degrades every analysis to Unknown — never to a
	// wrong Yes/No — and a live context leaves the answers untouched.
	phi5 := singleNodeRule("phi5", "_", nil, []core.Literal{
		core.MustLiteral("x.A = 7"), core.MustLiteral("x.B = 7"),
	})
	phi6 := singleNodeRule("phi6", "_", nil, []core.Literal{
		core.MustLiteral("x.A + x.B = 11"),
	})
	set := core.NewSet(phi5, phi6)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := Options{Ctx: ctx}
	if v, err := Satisfiable(set, dead); err != nil || v != Unknown {
		t.Fatalf("cancelled Satisfiable: %v %v, want unknown", v, err)
	}
	if v, err := StronglySatisfiable(set, dead); err != nil || v != Unknown {
		t.Fatalf("cancelled StronglySatisfiable: %v %v, want unknown", v, err)
	}
	if v, err := Implies(set, phi5, dead); err != nil || v != Unknown {
		t.Fatalf("cancelled Implies: %v %v, want unknown", v, err)
	}
	if v, err := PatternConsistent(set, phi5, dead); err != nil || v != Unknown {
		t.Fatalf("cancelled PatternConsistent: %v %v, want unknown", v, err)
	}

	// a live context does not perturb the verdicts
	live := Options{Ctx: context.Background()}
	if v, err := Satisfiable(set, live); err != nil || v != No {
		t.Fatalf("live Satisfiable: %v %v, want no", v, err)
	}
	if v, err := Implies(core.NewSet(phi5), phi5, live); err != nil || v != Yes {
		t.Fatalf("live self-implication: %v %v, want yes", v, err)
	}
}

func TestPatternConsistent(t *testing.T) {
	// PatternConsistent(Σ, anchor) probes whether anchor's canonical
	// instance admits an assignment satisfying all of Σ — the building
	// block of unsat-core shrinking.
	phi5 := singleNodeRule("phi5", "_", nil, []core.Literal{
		core.MustLiteral("x.A = 7"), core.MustLiteral("x.B = 7"),
	})
	phi6 := singleNodeRule("phi6", "_", nil, []core.Literal{
		core.MustLiteral("x.A + x.B = 11"),
	})
	if v, err := PatternConsistent(core.NewSet(phi5, phi6), phi5, Options{}); err != nil || v != No {
		t.Fatalf("anchor φ5 under {φ5,φ6}: %v %v, want no", v, err)
	}
	// dropping φ6 from Σ while keeping the anchor: consistent again
	if v, err := PatternConsistent(core.NewSet(phi5), phi5, Options{}); err != nil || v != Yes {
		t.Fatalf("anchor φ5 under {φ5}: %v %v, want yes", v, err)
	}
}
