package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngd/internal/analyze"
	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/pattern"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/update"
)

// ageRule: x -knows-> y requires x.age ≤ y.age (violated when an older
// node knows a younger one).
func ageRule() *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "person")
	y := q.AddNode("y", "person")
	q.AddEdge(x, y, "knows")
	return core.MustNew("age-order", q, nil, []core.Literal{
		core.Lit(expr.V("x", "age"), expr.Le, expr.V("y", "age")),
	})
}

// tinyWorld: two persons with one violating edge.
func tinyWorld(t *testing.T) (*session.Session, map[string]graph.NodeID) {
	t.Helper()
	g := graph.New()
	names := map[string]graph.NodeID{}
	a := g.AddNode("person")
	g.SetAttr(a, "age", graph.Int(30))
	names["alice"] = a
	b := g.AddNode("person")
	g.SetAttr(b, "age", graph.Int(20))
	names["bob"] = b
	g.AddEdge(a, b, "knows") // 30 > 20: violation
	return session.New(g, core.NewSet(ageRule()), session.Options{}), names
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any, out any) int {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndpoints(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var health struct {
		OK    bool `json:"ok"`
		Epoch int  `json:"epoch"`
	}
	if code := getJSON(t, srv, "/healthz", &health); code != 200 || !health.OK {
		t.Fatalf("healthz: code %d, %+v", code, health)
	}

	var list struct {
		Epoch      int `json:"epoch"`
		Total      int `json:"total"`
		Violations []struct {
			Key  string `json:"key"`
			Rule string `json:"rule"`
		} `json:"violations"`
	}
	if code := getJSON(t, srv, "/violations", &list); code != 200 {
		t.Fatalf("violations: code %d", code)
	}
	if list.Total != 1 || len(list.Violations) != 1 || list.Violations[0].Rule != "age-order" {
		t.Fatalf("violations: %+v", list)
	}

	// keyed lookup
	var one struct {
		Violation struct {
			Key string `json:"key"`
		} `json:"violation"`
	}
	key := list.Violations[0].Key
	if code := getJSON(t, srv, "/violations/"+key, &one); code != 200 || one.Violation.Key != key {
		t.Fatalf("violations/%s: code %d, %+v", key, code, one)
	}
	var missing map[string]any
	if code := getJSON(t, srv, "/violations/no-such:9", &missing); code != 404 {
		t.Fatalf("missing key: code %d", code)
	}

	// hostile-but-parseable paging params must clamp, not panic the handler
	for _, q := range []string{
		"?limit=-3", "?limit=9223372036854775807", "?limit=-1",
		"?after=zzzz", "?node=-7", "?node=999999",
	} {
		var page struct {
			Returned int `json:"returned"`
		}
		if code := getJSON(t, srv, "/violations"+q, &page); code != 200 {
			t.Fatalf("violations%s: code %d", q, code)
		}
	}

	// a new node arriving with attributes plus a violating edge, committed
	// synchronously
	var committed struct {
		Committed bool `json:"committed"`
		Epoch     int  `json:"epoch"`
	}
	code := postJSON(t, srv, "/update?sync=1", map[string]any{
		"ops": []map[string]any{
			{"op": "node", "id": "carol", "label": "person", "attrs": map[string]any{"age": 10}},
			{"op": "insert", "src": "bob", "dst": "carol", "label": "knows"},
		},
	}, &committed)
	if code != 200 || !committed.Committed || committed.Epoch != 1 {
		t.Fatalf("update sync: code %d, %+v", code, committed)
	}
	if code := getJSON(t, srv, "/violations", &list); code != 200 {
		t.Fatalf("violations after update: code %d", code)
	}
	if list.Total != 2 || list.Epoch != 1 {
		t.Fatalf("after update: total %d epoch %d, want 2 at epoch 1", list.Total, list.Epoch)
	}

	// deleting the original violating edge removes its violation
	code = postJSON(t, srv, "/update?sync=1", map[string]any{
		"ops": []map[string]any{
			{"op": "delete", "src": "alice", "dst": "bob", "label": "knows"},
		},
	}, &committed)
	if code != 200 {
		t.Fatalf("delete: code %d", code)
	}
	if getJSON(t, srv, "/violations", &list); list.Total != 1 {
		t.Fatalf("after delete: total %d, want 1", list.Total)
	}

	var st serve.Stats
	if code := getJSON(t, srv, "/stats", &st); code != 200 {
		t.Fatalf("stats: code %d", code)
	}
	if st.Epoch != 2 || st.StoreSize != 1 || st.Commits != 2 || st.LastBatch == nil {
		t.Fatalf("stats: %+v", st)
	}

	// malformed body
	resp, err := srv.Client().Post(srv.URL+"/update", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed update: code %d", resp.StatusCode)
	}

	// invariant audit once the writer is quiet
	s.Close()
	if err := sess.Recheck(); err != nil {
		t.Fatalf("store invariant: %v", err)
	}
}

func TestDroppedOps(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	defer s.Close()

	done, err := s.Enqueue([]serve.UpdateOp{
		{Op: "insert", Src: "alice", Dst: "nobody", Label: "knows"},   // unknown dst
		{Op: "delete", Src: "alice", Dst: "bob", Label: "never-seen"}, // unknown label
		{Op: "node", ID: "alice", Label: "person"},                    // duplicate id
		{Op: "node", ID: "42", Label: "person"},                       // numeric id reserved
		{Op: "frobnicate"},                                            // unknown op
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done.Done()
	if got := s.Stats().DroppedOps; got != 5 {
		t.Errorf("DroppedOps = %d, want 5", got)
	}
	if s.Snapshot().Len() != 1 {
		t.Errorf("store changed by dropped ops")
	}
}

// TestConcurrentReadersNeverBlockedByCommits is the serving-layer race
// test: many readers hammer the snapshot and the HTTP API while the writer
// streams commits. Run under -race in CI. Readers assert epoch
// monotonicity and per-snapshot consistency; afterwards the store must
// still equal Dect(Σ, G).
func TestConcurrentReadersNeverBlockedByCommits(t *testing.T) {
	profile := gen.YAGO2
	ds := gen.Generate(profile, 200, 5)
	rules := gen.Rules(profile, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 5})

	// pre-generate the update stream: update.Random mutates the graph
	// (node arrivals), which is only safe before the server's writer owns it
	const batches = 6
	deltas := make([]*graph.Delta, batches)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.05), Gamma: 1, Seed: int64(500 + b),
		})
	}
	toOps := func(d *graph.Delta) []serve.UpdateOp {
		ops := make([]serve.UpdateOp, len(d.Ops))
		for i, op := range d.Ops {
			kind := "delete"
			if op.Insert {
				kind = "insert"
			}
			ops[i] = serve.UpdateOp{
				Op:    kind,
				Src:   fmt.Sprint(int(op.Src)),
				Dst:   fmt.Sprint(int(op.Dst)),
				Label: ds.G.Symbols().LabelName(op.Label),
			}
		}
		return ops
	}

	sess := session.New(ds.G, rules, session.Options{})
	s := serve.New(sess, serve.Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var stop atomic.Bool
	var readErr atomic.Value
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(viaHTTP bool) {
			defer wg.Done()
			lastEpoch := -1
			for !stop.Load() {
				if viaHTTP {
					resp, err := srv.Client().Get(srv.URL + "/violations?limit=5")
					if err != nil {
						readErr.Store(fmt.Errorf("GET /violations: %w", err))
						return
					}
					var page struct {
						Epoch int `json:"epoch"`
					}
					err = json.NewDecoder(resp.Body).Decode(&page)
					resp.Body.Close()
					if err != nil {
						readErr.Store(fmt.Errorf("decode: %w", err))
						return
					}
					if page.Epoch < lastEpoch {
						readErr.Store(fmt.Errorf("epoch went backwards: %d -> %d", lastEpoch, page.Epoch))
						return
					}
					lastEpoch = page.Epoch
				} else {
					sn := s.Snapshot()
					if sn.Epoch < lastEpoch {
						readErr.Store(fmt.Errorf("epoch went backwards: %d -> %d", lastEpoch, sn.Epoch))
						return
					}
					lastEpoch = sn.Epoch
					vios := sn.Violations()
					if len(vios) != sn.Len() {
						readErr.Store(fmt.Errorf("snapshot inconsistent: %d != %d", len(vios), sn.Len()))
						return
					}
					if len(vios) > 0 {
						if _, ok := sn.Get(vios[0].Key()); !ok {
							readErr.Store(fmt.Errorf("snapshot index missing first violation"))
							return
						}
					}
				}
				reads.Add(1)
			}
		}(r%2 == 0)
	}

	// let the readers complete at least one read before the stream starts:
	// on a single-core host the writer could otherwise run to completion
	// before any reader goroutine is ever scheduled
	for reads.Load() == 0 {
		if err, ok := readErr.Load().(error); ok && err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	for _, d := range deltas {
		if _, err := s.Enqueue(toOps(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	s.Close()

	if err, ok := readErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().Epoch == 0 {
		t.Fatal("no commits observed")
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	if err := sess.Recheck(); err != nil {
		t.Fatalf("store invariant after serving: %v", err)
	}
	t.Logf("%d reads across %d commits, final store %d", reads.Load(), s.Stats().Commits, s.Snapshot().Len())
}

// TestServeSurfacesPlanCounters drives commits through the serving layer
// while concurrent readers poll /stats, and checks that the shared rule
// program's plan-cache counters are (a) exposed on the wire and (b) warm:
// after the first batches, further commits are all cache hits. Runs under
// -race in CI, pinning the claim that Counters is safe to read from any
// goroutine while the writer plans.
func TestServeSurfacesPlanCounters(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 150, 3)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 3})
	sess := session.New(ds.G, rules, session.Options{})
	deltas := make([]*graph.Delta, 6)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.03), Gamma: 1, Seed: 900 + int64(b)})
	}
	s := serve.New(sess, serve.Options{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var st serve.Stats
				getJSON(t, srv, "/stats", &st)
				if st.Plan.Rules == 0 {
					t.Error("/stats reports a program with no rules")
					return
				}
			}
		}()
	}
	toOps := func(d *graph.Delta) []serve.UpdateOp {
		ops := make([]serve.UpdateOp, len(d.Ops))
		for i, op := range d.Ops {
			kind := "delete"
			if op.Insert {
				kind = "insert"
			}
			ops[i] = serve.UpdateOp{
				Op: kind, Src: fmt.Sprint(int(op.Src)), Dst: fmt.Sprint(int(op.Dst)),
				Label: ds.G.Symbols().LabelName(op.Label),
			}
		}
		return ops
	}
	var prev serve.Stats
	getJSON(t, srv, "/stats", &prev)
	for b, d := range deltas {
		done, err := s.Enqueue(toOps(d))
		if err != nil {
			t.Fatal(err)
		}
		<-done.Done()
		var st serve.Stats
		getJSON(t, srv, "/stats", &st)
		if st.Plan.Hits < prev.Plan.Hits || st.Plan.Misses < prev.Plan.Misses {
			t.Fatalf("batch %d: plan counters went backwards: %+v -> %+v", b+1, prev.Plan, st.Plan)
		}
		if b >= 3 && st.Plan.Misses != prev.Plan.Misses && st.LastBatch.Ops > 0 {
			t.Logf("batch %d still compiling plans (misses %d -> %d)", b+1, prev.Plan.Misses, st.Plan.Misses)
		}
		prev = st
	}
	if prev.Plan.Hits == 0 {
		t.Fatal("no plan-cache hits across the whole stream")
	}
	stop.Store(true)
	wg.Wait()
	if err := sessRecheck(s, sess); err != nil {
		t.Fatal(err)
	}
}

// sessRecheck audits the store invariant after the server quiesced (Close
// drains the queue; the session is safe to touch again afterwards).
func sessRecheck(s *serve.Server, sess *session.Session) error {
	s.Close()
	return sess.Recheck()
}

// deadRule cannot be violated in any graph (unsatisfiable precondition):
// the session's admission pass must drop it and /rules/analysis must say so.
func deadRule() *core.NGD {
	q := pattern.New()
	q.AddNode("x", "person")
	return core.MustNew("dead", q,
		[]core.Literal{
			core.Lit(expr.V("x", "age"), expr.Lt, expr.C(0)),
			core.Lit(expr.V("x", "age"), expr.Gt, expr.C(0)),
		},
		[]core.Literal{core.Lit(expr.V("x", "age"), expr.Eq, expr.C(1))})
}

func TestRulesAnalysisEndpoint(t *testing.T) {
	g := graph.New()
	a := g.AddNode("person")
	g.SetAttr(a, "age", graph.Int(30))
	b := g.AddNode("person")
	g.SetAttr(b, "age", graph.Int(20))
	g.AddEdge(a, b, "knows")
	sess := session.New(g, core.NewSet(ageRule(), deadRule()), session.Options{})
	if got := sess.DroppedRules(); len(got) != 1 || got[0] != "dead" {
		t.Fatalf("session dropped = %v, want [dead]", got)
	}

	s := serve.New(sess, serve.Options{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var first struct {
		Epoch          int             `json:"epoch"`
		Cached         bool            `json:"cached"`
		SessionDropped []string        `json:"session_dropped"`
		Report         json.RawMessage `json:"report"`
	}
	if code := getJSON(t, srv, "/rules/analysis", &first); code != 200 {
		t.Fatalf("status %d", code)
	}
	if first.Cached {
		t.Fatal("first request claims cached")
	}
	if len(first.SessionDropped) != 1 || first.SessionDropped[0] != "dead" {
		t.Fatalf("session_dropped = %v", first.SessionDropped)
	}
	var rep struct {
		Signature   string `json:"signature"`
		Satisfiable string `json:"satisfiable"`
		NumRules    int    `json:"num_rules"`
	}
	if err := json.Unmarshal(first.Report, &rep); err != nil {
		t.Fatal(err)
	}
	// the lazy report covers the session's minimized Σ
	if rep.NumRules != 1 || rep.Satisfiable != "yes" || rep.Signature == "" {
		t.Fatalf("report = %+v", rep)
	}

	// second request: served from the signature-keyed cache
	var second struct {
		Cached bool            `json:"cached"`
		Report json.RawMessage `json:"report"`
	}
	getJSON(t, srv, "/rules/analysis", &second)
	if !second.Cached {
		t.Fatal("second request not cached")
	}
	if string(second.Report) != string(first.Report) {
		t.Fatal("cache returned a different report")
	}
}

func TestRulesAnalysisInjectedReport(t *testing.T) {
	// ngdserve's boot gate injects its report over the full Σ; the
	// endpoint must serve it verbatim and mark it cached.
	full := core.NewSet(ageRule(), deadRule())
	rep := analyze.Analyze(full, analyze.Options{})
	if len(rep.Dropped) != 1 || rep.Dropped[0] != "dead" {
		t.Fatalf("boot report dropped = %v", rep.Dropped)
	}
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names, Analysis: rep})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var got struct {
		Cached bool `json:"cached"`
		Report struct {
			Signature string   `json:"signature"`
			NumRules  int      `json:"num_rules"`
			Dropped   []string `json:"dropped"`
		} `json:"report"`
	}
	getJSON(t, srv, "/rules/analysis", &got)
	if !got.Cached || got.Report.Signature != rep.Signature || got.Report.NumRules != 2 {
		t.Fatalf("injected report not served: %+v", got)
	}
	if len(got.Report.Dropped) != 1 || got.Report.Dropped[0] != "dead" {
		t.Fatalf("dropped = %v", got.Report.Dropped)
	}
}
