package serve

// Repair endpoints' server side. Both preview and apply run as jobs on the
// writer goroutine: the repair enumerator reads the live graph (which the
// writer mutates in place), so serializing with commits is what gives a
// preview its consistent point-in-time view without cloning anything.
// Applying never mutates directly either — the chosen fix is translated to
// ordinary update ops ("setattr" / "delete") and committed through the same
// commitBatch path every ingested batch takes, so the WAL, the change feed,
// the secondary indexes and AfterCommit all observe a normal commit.

import (
	"errors"
	"fmt"
	"strconv"

	"ngd/internal/repair"
	"ngd/internal/session"
)

// ErrUnknownFix is returned by ApplyRepair for a fix id the target's
// re-enumeration does not produce (404).
var ErrUnknownFix = errors.New("serve: unknown fix id")

// UnrepairableError is returned by ApplyRepair when the enumeration yields
// no applicable fix (422); Reason is the enumerator's explanation.
type UnrepairableError struct {
	Reason string
}

func (e *UnrepairableError) Error() string {
	return fmt.Sprintf("serve: violation unrepairable: %s", e.Reason)
}

// ApplyResult reports an applied repair (POST /repair/apply).
type ApplyResult struct {
	// Epoch is the commit epoch the fix landed in.
	Epoch int `json:"epoch"`
	// Fix is the fix as applied (re-enumerated at apply time, so Clears and
	// Introduces reflect the store the commit actually acted on).
	Fix repair.Fix `json:"fix"`
	// Remaining is |Vio(Σ, G')| after the commit.
	Remaining int `json:"remaining"`
}

// PreviewRepair enumerates ranked candidate fixes for the stored violation
// named by key, without mutating anything. A key the live store does not
// hold fails with session.ErrNoViolation (the violation was cleared by a
// later commit — the client's key is stale and it should re-list).
// Safe from any goroutine; serialized with commits.
func (s *Server) PreviewRepair(key string, opts repair.Options) (*repair.Result, error) {
	var (
		res *repair.Result
		err error
	)
	if e := s.runOnWriter(func() { res, err = s.sess.PreviewRepair(key, opts) }); e != nil {
		return nil, e
	}
	return res, err
}

// ApplyRepair re-enumerates fixes for key at the current epoch, picks fixID
// (or the top-ranked fix when fixID is empty), and commits it through the
// ordinary ingest path. Errors: session.ErrNoViolation for a stale key,
// ErrUnknownFix for an id the current enumeration lacks, *UnrepairableError
// when no fix exists, ErrClosed after Close.
func (s *Server) ApplyRepair(key, fixID string, opts repair.Options) (*ApplyResult, error) {
	var (
		out *ApplyResult
		err error
	)
	if e := s.runOnWriter(func() { out, err = s.applyRepair(key, fixID, opts) }); e != nil {
		return nil, e
	}
	return out, err
}

// applyRepair runs on the writer goroutine.
func (s *Server) applyRepair(key, fixID string, opts repair.Options) (*ApplyResult, error) {
	res, err := s.sess.PreviewRepair(key, opts)
	if err != nil {
		return nil, err
	}
	var fix repair.Fix
	if fixID == "" {
		var ok bool
		if fix, ok = res.Top(); !ok {
			return nil, &UnrepairableError{Reason: res.Reason}
		}
	} else {
		var ok bool
		if fix, ok = res.FixByID(fixID); !ok {
			if res.Unrepairable {
				return nil, &UnrepairableError{Reason: res.Reason}
			}
			return nil, fmt.Errorf("%w: %s", ErrUnknownFix, fixID)
		}
	}

	var ops []UpdateOp
	switch fix.Kind {
	case repair.KindAttr:
		attrs := make(map[string]any, len(fix.Sets))
		for _, set := range fix.Sets {
			attrs[set.Attr] = set.New
		}
		ops = append(ops, UpdateOp{
			Op:    "setattr",
			ID:    strconv.Itoa(int(fix.Node)),
			Attrs: attrs,
		})
	case repair.KindEdgeDelete:
		ops = append(ops, UpdateOp{
			Op:    "delete",
			Src:   strconv.Itoa(int(fix.Src)),
			Dst:   strconv.Itoa(int(fix.Dst)),
			Label: fix.Label,
		})
	default:
		return nil, fmt.Errorf("%w: %s has unknown kind %q", ErrUnknownFix, fix.ID, fix.Kind)
	}

	// already on the writer: commit directly through the shared batch path
	ing := ingest{ops: ops, ack: &Ack{done: make(chan struct{})}}
	s.enqueued.Add(1)
	s.queued.Add(1)
	s.commitBatch([]ingest{ing})
	<-ing.ack.Done()
	return &ApplyResult{
		Epoch:     ing.ack.Epoch(),
		Fix:       fix,
		Remaining: s.sess.Len(),
	}, nil
}

// isStaleViolation reports whether err is the stale-key error (HTTP 409).
func isStaleViolation(err error) bool {
	return errors.Is(err, session.ErrNoViolation)
}
