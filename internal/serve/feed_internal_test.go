package serve

// Hub-level unit tests for the change feed: eviction, backlog aging,
// cursor replay and shutdown semantics, independent of the HTTP layer.
// The HTTP/differential coverage lives in feed_test.go (package
// serve_test).

import (
	"errors"
	"testing"
)

func mkEv(epoch int) *FeedEvent { return &FeedEvent{Epoch: epoch} }

// drain collects everything currently buffered plus the close state.
func drain(ch <-chan *FeedEvent) (epochs []int, closed bool) {
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return epochs, true
			}
			epochs = append(epochs, ev.Epoch)
		default:
			return epochs, false
		}
	}
}

func TestHubSlowConsumerEviction(t *testing.T) {
	h := newFeedHub(0, 8, 2)
	sub, err := h.subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	// nothing to replay, so the buffer is exactly the per-subscriber budget:
	// the third undrained publish must evict, never block
	h.publish(mkEv(1))
	h.publish(mkEv(2))
	h.publish(mkEv(3))
	epochs, closed := drain(sub.C)
	if !closed {
		t.Fatal("overflowing subscriber channel not closed")
	}
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Fatalf("buffered epochs = %v, want [1 2]", epochs)
	}
	if !errors.Is(sub.Err(), ErrSlowConsumer) {
		t.Fatalf("Err() = %v, want ErrSlowConsumer", sub.Err())
	}
	if _, _, subs := h.stats(); subs != 0 {
		t.Fatalf("evicted subscriber still registered (%d subs)", subs)
	}
	// a healthy subscriber arriving afterwards resumes from the backlog
	s2, err := h.subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	if epochs, _ := drain(s2.C); len(epochs) != 2 || epochs[0] != 2 || epochs[1] != 3 {
		t.Fatalf("resume replay = %v, want [2 3]", epochs)
	}
	s2.Close()
	s2.Close() // idempotent
	if _, ok := <-s2.C; ok {
		t.Fatal("Close left the channel open")
	}
	if s2.Err() != nil {
		t.Fatalf("clean Close reported %v", s2.Err())
	}
}

func TestHubBacklogAgingAndCursors(t *testing.T) {
	h := newFeedHub(0, 3, 4)
	for e := 1; e <= 6; e++ {
		h.publish(mkEv(e))
	}
	// capacity 3: epochs 4..6 retained, everything needed to resume from
	// before epoch 3 is gone
	floor, backlog, _ := h.stats()
	if floor != 3 || backlog != 3 {
		t.Fatalf("floor %d backlog %d, want 3 and 3", floor, backlog)
	}
	var aged *CursorAgedError
	if _, err := h.subscribe(2); !errors.As(err, &aged) {
		t.Fatalf("subscribe(2) = %v, want CursorAgedError", err)
	} else if aged.Since != 2 || aged.Floor != 3 {
		t.Fatalf("aged = %+v", aged)
	}
	if _, err := h.subscribe(0); !errors.As(err, &aged) {
		t.Fatalf("subscribe(0) = %v, want CursorAgedError", err)
	}
	// the floor itself is still resumable: replay is exactly what follows it
	sub, err := h.subscribe(3)
	if err != nil {
		t.Fatal(err)
	}
	if epochs, _ := drain(sub.C); len(epochs) != 3 || epochs[0] != 4 || epochs[2] != 6 {
		t.Fatalf("replay from floor = %v, want [4 5 6]", epochs)
	}
	sub.Close()
	// a current cursor replays nothing and then sees live publishes
	live, err := h.subscribe(6)
	if err != nil {
		t.Fatal(err)
	}
	if epochs, _ := drain(live.C); len(epochs) != 0 {
		t.Fatalf("current cursor replayed %v", epochs)
	}
	h.publish(mkEv(7))
	if epochs, _ := drain(live.C); len(epochs) != 1 || epochs[0] != 7 {
		t.Fatalf("live delivery = %v, want [7]", epochs)
	}
	live.Close()
}

func TestHubClose(t *testing.T) {
	h := newFeedHub(0, 4, 4)
	a, _ := h.subscribe(0)
	b, _ := h.subscribe(0)
	h.publish(mkEv(1))
	h.close()
	h.close() // idempotent
	for _, sub := range []*FeedSub{a, b} {
		epochs, closed := drain(sub.C)
		if !closed {
			t.Fatal("close left a subscriber channel open")
		}
		if len(epochs) != 1 || epochs[0] != 1 {
			t.Fatalf("pre-close event lost: %v", epochs)
		}
		if sub.Err() != nil { // shutdown is clean, not an eviction
			t.Fatalf("Err() after close = %v", sub.Err())
		}
	}
	if _, err := h.subscribe(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close = %v, want ErrClosed", err)
	}
	h.publish(mkEv(2)) // must be a no-op, not a panic on closed channels
	a.Close()          // unsubscribe after close stays safe
}
