package serve_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"ngd/internal/gen"
	"ngd/internal/repair"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/update"
)

// TestRepairHTTPRoundTrip drives the full repair cycle over HTTP: preview a
// violation, apply the top-ranked fix as an ordinary commit, and observe the
// consequences everywhere a commit is visible — the store shrinks, the
// change feed emits the removal, the epoch advances, and the session's
// store ≡ Dect(Σ, G') invariant holds on the post-fix graph.
func TestRepairHTTPRoundTrip(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	vios := s.Snapshot().Violations()
	if len(vios) != 1 {
		t.Fatalf("seed store: %d violations, want 1", len(vios))
	}
	key := vios[0].Key()
	epoch0 := s.Snapshot().Epoch

	// preview: ranked fixes, no mutation
	var prev struct {
		Epoch  int            `json:"epoch"`
		Result *repair.Result `json:"result"`
	}
	if code := postJSON(t, srv, "/repair/preview", map[string]any{"key": key}, &prev); code != 200 {
		t.Fatalf("preview: status %d", code)
	}
	if len(prev.Result.Fixes) == 0 {
		t.Fatalf("preview: no fixes: %+v", prev.Result)
	}
	if s.Snapshot().Epoch != epoch0 {
		t.Fatalf("preview moved the epoch %d → %d", epoch0, s.Snapshot().Epoch)
	}
	for _, f := range prev.Result.Fixes {
		ok := false
		for _, c := range f.Clears {
			if c == key {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("fix %s does not clear the target", f.ID)
		}
	}

	// error contract: stale key 409, unknown fix id 404, bad body 400
	var errResp map[string]any
	if code := postJSON(t, srv, "/repair/preview", map[string]any{"key": "nope:0"}, &errResp); code != 409 {
		t.Fatalf("stale preview: status %d, want 409 (%v)", code, errResp)
	}
	if code := postJSON(t, srv, "/repair/apply", map[string]any{"key": key, "fix": "bogus"}, &errResp); code != 404 {
		t.Fatalf("unknown fix: status %d, want 404 (%v)", code, errResp)
	}
	if code := postJSON(t, srv, "/repair/apply", map[string]any{}, &errResp); code != 400 {
		t.Fatalf("missing key: status %d, want 400 (%v)", code, errResp)
	}

	// subscribe before applying so the removal event is observable
	sub, err := s.Subscribe(epoch0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var applied struct {
		Applied   bool       `json:"applied"`
		Epoch     int        `json:"epoch"`
		Fix       repair.Fix `json:"fix"`
		Cleared   []string   `json:"cleared"`
		Remaining int        `json:"remaining"`
	}
	if code := postJSON(t, srv, "/repair/apply", map[string]any{"key": key}, &applied); code != 200 {
		t.Fatalf("apply: status %d", code)
	}
	if !applied.Applied || applied.Epoch <= epoch0 {
		t.Fatalf("apply response %+v, want applied at a later epoch", applied)
	}
	if applied.Fix.ID != prev.Result.Fixes[0].ID {
		t.Fatalf("applied fix %s, want the top-ranked %s", applied.Fix.ID, prev.Result.Fixes[0].ID)
	}
	if applied.Remaining != 0 {
		t.Fatalf("remaining %d, want 0", applied.Remaining)
	}

	// the commit is ordinary: snapshot shrank, feed emitted the removal
	if sn := s.Snapshot(); sn.Len() != 0 || sn.Epoch != applied.Epoch {
		t.Fatalf("snapshot after apply: len %d epoch %d, want 0 at %d", sn.Len(), sn.Epoch, applied.Epoch)
	}
	select {
	case ev := <-sub.C:
		found := false
		for _, rm := range ev.Removed {
			if rm == key {
				found = true
			}
		}
		if !found {
			t.Fatalf("feed event %+v lacks the cleared key %s", ev, key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no feed event after apply")
	}

	// a second apply on the now-cleared key is stale
	if code := postJSON(t, srv, "/repair/apply", map[string]any{"key": key}, &errResp); code != 409 {
		t.Fatalf("re-apply: status %d, want 409 (%v)", code, errResp)
	}

	s.Close()
	if err := sess.Recheck(); err != nil {
		t.Fatalf("store invariant after repair: %v", err)
	}
}

// TestRepairPreviewRaceWithCommits is the -race anchor for the repair path:
// concurrent /repair/preview requests against a committing writer must see
// consistent state (previews serialize with commits on the writer), the
// server must shut down cleanly under fire, and no goroutine may outlive
// Close.
func TestRepairPreviewRaceWithCommits(t *testing.T) {
	before := runtime.NumGoroutine()

	profile := gen.Synthetic
	ds := gen.Generate(profile, 150, 11)
	rules := gen.Rules(profile, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 11})
	const batches = 5
	deltas := make([][]serve.UpdateOp, batches)
	for b := range deltas {
		d := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.05), Gamma: 1, Seed: int64(1100 + b),
		})
		deltas[b] = deltaOps(ds, d)
	}

	sess := session.New(ds.G, rules, session.Options{})
	s := serve.New(sess, serve.Options{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				vios := s.Snapshot().Violations()
				if len(vios) == 0 {
					continue
				}
				key := vios[rng.Intn(len(vios))].Key()
				res, err := s.PreviewRepair(key, repair.Options{MaxFixes: 2})
				if err != nil {
					// racing a commit that cleared the key, or shutdown
					if errors.Is(err, session.ErrNoViolation) || errors.Is(err, serve.ErrClosed) {
						continue
					}
					errCh <- fmt.Errorf("preview %s: %w", key, err)
					return
				}
				// every returned fix must clear the target it was asked for
				for _, f := range res.Fixes {
					ok := false
					for _, c := range f.Clears {
						if c == key {
							ok = true
						}
					}
					if !ok {
						errCh <- fmt.Errorf("fix %s of %s misses its target", f.ID, key)
						return
					}
				}
			}
		}(int64(w))
	}

	for _, ops := range deltas {
		ack, err := s.Enqueue(ops)
		if err != nil {
			t.Fatal(err)
		}
		<-ack.Done()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	s.Close()
	if _, err := s.PreviewRepair("any:0", repair.Options{}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("preview after Close: %v, want ErrClosed", err)
	}
	if err := sess.Recheck(); err != nil {
		t.Fatalf("store invariant after racing previews: %v", err)
	}

	// PR 7 teardown baseline: nothing the server owned may survive Close
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
