package serve_test

// Shard-pool stress + leak check (the -race CI target for the serving
// path): a *parallel* session routes every commit through PIncDect on the
// session-owned persistent shard pool, so this drives concurrent snapshot
// readers against real shard goroutines committing batches — and then pins
// that Server.Close tears all of it down: the writer, the shard pool and
// its balancer. Nothing the server transitively owns may survive Close.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/par"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/update"
)

func TestShardPoolStressAndGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	profile := gen.YAGO2
	ds := gen.Generate(profile, 200, 19)
	rules := gen.Rules(profile, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 19})

	// pre-generate the stream: update.Random mutates the graph (node
	// arrivals), which is only safe before the writer owns it
	const batches = 8
	deltas := make([]*graph.Delta, batches)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.04), Gamma: 1, Seed: int64(1900 + b),
		})
	}
	toOps := func(d *graph.Delta) []serve.UpdateOp {
		ops := make([]serve.UpdateOp, len(d.Ops))
		for i, op := range d.Ops {
			kind := "delete"
			if op.Insert {
				kind = "insert"
			}
			ops[i] = serve.UpdateOp{
				Op:    kind,
				Src:   fmt.Sprint(int(op.Src)),
				Dst:   fmt.Sprint(int(op.Dst)),
				Label: ds.G.Symbols().LabelName(op.Label),
			}
		}
		return ops
	}

	sess := session.New(ds.G, rules, session.Options{Parallel: true, Par: par.Hybrid(4)})
	s := serve.New(sess, serve.Options{QueueDepth: 64})

	var stop atomic.Bool
	var readErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastEpoch := -1
			for !stop.Load() {
				sn := s.Snapshot()
				if sn.Epoch < lastEpoch {
					readErr.Store(fmt.Errorf("epoch went backwards: %d -> %d", lastEpoch, sn.Epoch))
					return
				}
				lastEpoch = sn.Epoch
				if len(sn.Violations()) != sn.Len() {
					readErr.Store(fmt.Errorf("snapshot inconsistent at epoch %d", sn.Epoch))
					return
				}
				_ = s.Stats()
			}
		}()
	}

	// enqueue the burst from several goroutines at once: Enqueue must be
	// safe from any goroutine, and the writer coalesces what piles up
	var senders sync.WaitGroup
	for b := range deltas {
		senders.Add(1)
		go func(b int) {
			defer senders.Done()
			if _, err := s.Enqueue(toOps(deltas[b])); err != nil {
				readErr.Store(fmt.Errorf("enqueue batch %d: %w", b, err))
			}
		}(b)
	}
	senders.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	if err, ok := readErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().Epoch == 0 {
		t.Fatal("no commits observed")
	}
	if err := sess.Recheck(); err != nil {
		t.Fatalf("store invariant after serving: %v", err)
	}

	// Close tears down the writer AND the session's shard pool: the process
	// goroutine count must return to its pre-server baseline.
	s.Close()
	s.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked past Server.Close: %d alive, baseline %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
