package serve_test

// Repair differential sweep: the repair engine re-runs the session
// differential fuzz table (internal/session's 27 seeded workloads —
// every profile, both pruning modes, parallel routing, edge-less rules,
// uniform and skewed streams) and, on each workload's final state,
// drains the violation store by applying the top-ranked fix per
// violation through /repair/apply's backing call. After every apply the
// live store must be byte-identical to Dect(Σ, G') recomputed from
// scratch on the repaired graph — the repair commit is an ordinary
// batch, invisible to the detection invariant. Previews run alongside
// and must never move the epoch or the store.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/pattern"
	"ngd/internal/repair"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/update"
)

// sweepWorkload mirrors internal/session's diffWorkload table (that suite
// is package session_test, so the table is replicated, not imported; the
// len guard below keeps the two from drifting apart silently).
type sweepWorkload struct {
	profile   gen.Profile
	entities  int
	rules     int
	seed      int64
	batches   int
	batchFrac float64
	gamma     float64 // 0 = 1 (paper default)
	hotspot   float64 // 0 = generator default (burst-skewed); -1 = uniform
	noPruning bool
	parallel  bool // session routes through PIncDect
	nodeRule  bool // append an edge-less rule (per-node absorption path)
}

func (w sweepWorkload) name() string {
	var tags []string
	if w.noPruning {
		tags = append(tags, "noprune")
	}
	if w.parallel {
		tags = append(tags, "par")
	}
	if w.nodeRule {
		tags = append(tags, "noderule")
	}
	if w.hotspot < 0 {
		tags = append(tags, "uniform")
	}
	if w.gamma != 0 {
		tags = append(tags, fmt.Sprintf("gamma%.1f", w.gamma))
	}
	tag := ""
	if len(tags) > 0 {
		tag = "/" + strings.Join(tags, "+")
	}
	return fmt.Sprintf("%s/seed%d%s", w.profile.Name, w.seed, tag)
}

func sweepWorkloads() []sweepWorkload {
	var ws []sweepWorkload
	profiles := []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec, gen.Synthetic}
	entities := map[string]int{"dbpedia": 180, "yago2": 180, "pokec": 90, "synthetic": 180}
	for _, p := range profiles {
		for _, seed := range []int64{1, 2} {
			for _, noPrune := range []bool{false, true} {
				ws = append(ws, sweepWorkload{
					profile: p, entities: entities[p.Name], rules: 10,
					seed: seed, batches: 3, batchFrac: 0.06, noPruning: noPrune,
				})
			}
		}
	}
	for i, p := range profiles {
		ws = append(ws, sweepWorkload{
			profile: p, entities: entities[p.Name], rules: 10,
			seed: int64(3 + i), batches: 3, batchFrac: 0.06, parallel: true,
		})
	}
	for _, seed := range []int64{5, 6} {
		ws = append(ws, sweepWorkload{
			profile: gen.YAGO2, entities: 150, rules: 8,
			seed: seed, batches: 3, batchFrac: 0.08, nodeRule: true,
		})
	}
	ws = append(ws,
		sweepWorkload{profile: gen.Synthetic, entities: 180, rules: 10,
			seed: 7, batches: 3, batchFrac: 0.06, hotspot: -1},
		sweepWorkload{profile: gen.DBpedia, entities: 180, rules: 10,
			seed: 8, batches: 3, batchFrac: 0.08, gamma: 3.0},
		sweepWorkload{profile: gen.YAGO2, entities: 180, rules: 10,
			seed: 9, batches: 3, batchFrac: 0.08, gamma: 0.3},
	)
	return ws
}

// sweepNodeRule is session_test's noSevenRule: an edge-less rule whose
// violations flow through per-node absorption rather than ΔVio.
func sweepNodeRule() *core.NGD {
	q := pattern.New()
	q.AddNode("x", "integer")
	return core.MustNew("no-seven", q, nil, []core.Literal{
		core.Lit(expr.V("x", "val"), expr.Ne, expr.C(7)),
	})
}

// sweepCanon renders a violation key set in canonical byte form.
func sweepCanon(vs []core.Violation) string {
	keys := make([]string, 0, len(vs))
	for k := range detect.VioKeySet(vs) {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func TestRepairDifferentialSweep(t *testing.T) {
	workloads := sweepWorkloads()
	if len(workloads) < 24 {
		t.Fatalf("workload table shrank to %d entries", len(workloads))
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name(), func(t *testing.T) {
			t.Parallel()
			runRepairSweep(t, w)
		})
	}
}

func runRepairSweep(t *testing.T, w sweepWorkload) {
	ds := gen.Generate(w.profile, w.entities, w.seed)
	rules := gen.Rules(w.profile, gen.RuleConfig{Count: w.rules, MaxDiameter: 4, Seed: w.seed})
	if w.nodeRule {
		rules.Add(sweepNodeRule())
	}
	sess := session.New(ds.G, rules, session.Options{
		Parallel: w.parallel, NoPruning: w.noPruning,
	})

	// replay the workload's stream first — repair runs against the state a
	// served session would actually be in, not a freshly seeded store
	for b := 0; b < w.batches; b++ {
		sess.Commit(update.Random(ds, update.Config{
			Size:    update.SizeFor(ds.G, w.batchFrac),
			Gamma:   w.gamma,
			Seed:    w.seed*1000 + int64(b),
			Hotspot: w.hotspot,
		}))
	}

	// the server owns the writer from here; applies go through its ingest
	s := serve.New(sess, serve.Options{})
	defer s.Close()

	initial := s.Snapshot().Len()
	skip := map[string]bool{}
	applies := 0
	for applies < 2*initial+8 {
		sn := s.Snapshot()
		key := ""
		for _, v := range sn.Violations() {
			if !skip[v.Key()] {
				key = v.Key()
				break
			}
		}
		if key == "" {
			break
		}

		// preview must be observationally pure: same epoch, same store
		before := sweepCanon(sn.Violations())
		res, err := s.PreviewRepair(key, repair.Options{})
		if err != nil {
			t.Fatalf("workload %s: preview %s: %v", w.name(), key, err)
		}
		if sn2 := s.Snapshot(); sn2.Epoch != sn.Epoch || sweepCanon(sn2.Violations()) != before {
			t.Fatalf("workload %s: preview of %s moved the session (epoch %d→%d)",
				w.name(), key, sn.Epoch, sn2.Epoch)
		}
		if res.Unrepairable {
			skip[key] = true
			continue
		}

		applied, err := s.ApplyRepair(key, "", repair.Options{})
		if err != nil {
			t.Fatalf("workload %s: apply %s: %v", w.name(), key, err)
		}
		applies++
		if top, ok := res.Top(); !ok || applied.Fix.ID != top.ID {
			t.Fatalf("workload %s: applied %s, preview ranked %s first",
				w.name(), applied.Fix.ID, top.ID)
		}

		// the differential: after the repair commit the live store must be
		// byte-identical to from-scratch detection on the repaired graph
		store := sweepCanon(s.Snapshot().Violations())
		dect := sweepCanon(detect.Dect(ds.G, rules, detect.Options{NoPruning: w.noPruning}).Violations)
		if store != dect {
			t.Fatalf("workload %s apply %d (%s): store != Dect(Σ,G')\nstore:\n%s\nDect:\n%s",
				w.name(), applies, applied.Fix.ID, store, dect)
		}
		if _, still := s.Snapshot().Get(key); still {
			t.Fatalf("workload %s: applied fix %s did not clear its target %s",
				w.name(), applied.Fix.ID, key)
		}
	}

	if left := s.Snapshot().Len(); left > len(skip) {
		t.Fatalf("workload %s: drain stalled with %d violations (%d unrepairable) after %d applies",
			w.name(), left, len(skip), applies)
	}
	s.Close()
	if err := sess.Recheck(); err != nil {
		t.Fatalf("workload %s: store invariant after drain: %v", w.name(), err)
	}
}
