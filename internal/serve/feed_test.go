package serve_test

// Serving-layer coverage for PR 7: the violation change feed (SSE +
// long-poll + cursors), the indexed keyset queries, and the request
// hygiene fixes (strict params, bounded bodies, exact sync-ack epochs).
// The -race CI target runs all of it.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/update"
)

// feedEvent mirrors the wire form of one change-feed event.
type feedEvent struct {
	Epoch int `json:"epoch"`
	Added []struct {
		Key   string  `json:"key"`
		Rule  string  `json:"rule"`
		Match []int32 `json:"match"`
	} `json:"added"`
	Removed []string `json:"removed"`
}

// vioPage mirrors the wire form of GET /violations.
type vioPage struct {
	Epoch      int    `json:"epoch"`
	Total      int    `json:"total"`
	Returned   int    `json:"returned"`
	Next       string `json:"next"`
	Violations []struct {
		Key   string  `json:"key"`
		Rule  string  `json:"rule"`
		Match []int32 `json:"match"`
	} `json:"violations"`
}

// deltaOps converts a generated graph delta to wire ops (the graph already
// contains any arrived nodes; update.Random mutates it, so deltas must be
// pre-generated before the server's writer takes ownership).
func deltaOps(ds *gen.Dataset, d *graph.Delta) []serve.UpdateOp {
	ops := make([]serve.UpdateOp, len(d.Ops))
	for i, op := range d.Ops {
		kind := "delete"
		if op.Insert {
			kind = "insert"
		}
		ops[i] = serve.UpdateOp{
			Op:    kind,
			Src:   fmt.Sprint(int(op.Src)),
			Dst:   fmt.Sprint(int(op.Dst)),
			Label: ds.G.Symbols().LabelName(op.Label),
		}
	}
	return ops
}

// TestFeedDifferentialAgainstStore is the feed's correctness anchor: a
// subscriber that starts from the seed store and applies every event's
// Removed-then-Added must hold exactly Vio(Σ, G) at the final epoch —
// i.e. the pushed deltas compose to the same set Dect(Σ, G) maintains.
func TestFeedDifferentialAgainstStore(t *testing.T) {
	profile := gen.YAGO2
	ds := gen.Generate(profile, 200, 23)
	rules := gen.Rules(profile, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 23})
	const batches = 6
	deltas := make([]*graph.Delta, batches)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.05), Gamma: 1, Seed: int64(2300 + b),
		})
	}

	sess := session.New(ds.G, rules, session.Options{})
	s := serve.New(sess, serve.Options{})

	// seed the subscriber's mirror from the pre-commit store
	mirror := map[string]bool{}
	for _, v := range s.Snapshot().Violations() {
		mirror[v.Key()] = true
	}
	sub, err := s.Subscribe(s.Snapshot().Epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for _, d := range deltas {
		ack, err := s.Enqueue(deltaOps(ds, d))
		if err != nil {
			t.Fatal(err)
		}
		<-ack.Done()
	}

	// all events are buffered (batches ≤ FeedBuffer); apply them in order
	events := 0
drain:
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				t.Fatalf("feed closed early: %v", sub.Err())
			}
			events++
			var fe feedEvent
			if err := json.Unmarshal(ev.JSON(), &fe); err != nil {
				t.Fatalf("event JSON: %v", err)
			}
			if fe.Epoch != ev.Epoch {
				t.Fatalf("wire epoch %d != event epoch %d", fe.Epoch, ev.Epoch)
			}
			for _, k := range fe.Removed {
				if !mirror[k] {
					t.Fatalf("epoch %d removes %q the subscriber never had", fe.Epoch, k)
				}
				delete(mirror, k)
			}
			for _, v := range fe.Added {
				if mirror[v.Key] {
					t.Fatalf("epoch %d adds %q twice", fe.Epoch, v.Key)
				}
				mirror[v.Key] = true
			}
		default:
			break drain
		}
	}
	if events == 0 {
		t.Fatal("no feed events across the whole stream")
	}

	sn := s.Snapshot()
	if len(mirror) != sn.Len() {
		t.Fatalf("replayed mirror has %d violations, store %d at epoch %d",
			len(mirror), sn.Len(), sn.Epoch)
	}
	for _, v := range sn.Violations() {
		if !mirror[v.Key()] {
			t.Fatalf("mirror missing %q", v.Key())
		}
	}
	s.Close()
	if err := sess.Recheck(); err != nil {
		t.Fatalf("store invariant: %v", err)
	}
}

// addPerson returns ops that add one new person below bob's age plus a
// violating bob→new edge: exactly one ΔVio⁺ per commit in tinyWorld.
func addPerson(i int) []serve.UpdateOp {
	id := fmt.Sprintf("n%d", i)
	return []serve.UpdateOp{
		{Op: "node", ID: id, Label: "person", Attrs: map[string]any{"age": 1 + i}},
		{Op: "insert", Src: "bob", Dst: id, Label: "knows"},
	}
}

// TestFeedSSEStream subscribes over HTTP and checks the wire framing: the
// connected comment, then one id:/event:/data: frame per effective commit.
func TestFeedSSEStream(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/feed", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("feed: code %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": connected epoch=") {
		t.Fatalf("greeting = %q, %v", line, err)
	}

	if code := postJSON(t, srv, "/update?sync=1", map[string]any{"ops": addPerson(1)}, nil); code != 200 {
		t.Fatalf("update: code %d", code)
	}

	// next frame: id: 1 / event: commit / data: {...}
	var id, event, data string
	for data == "" {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimSpace(line[4:])
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimSpace(line[7:])
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimSpace(line[6:])
		}
	}
	if id != "1" || event != "commit" {
		t.Fatalf("frame: id=%q event=%q", id, event)
	}
	var fe feedEvent
	if err := json.Unmarshal([]byte(data), &fe); err != nil {
		t.Fatalf("data: %v", err)
	}
	if fe.Epoch != 1 || len(fe.Added) != 1 || len(fe.Removed) != 0 {
		t.Fatalf("event = %+v, want epoch 1 with one addition", fe)
	}
	if fe.Added[0].Rule != "age-order" {
		t.Fatalf("added rule = %q", fe.Added[0].Rule)
	}
}

// TestFeedLongPollAndCursors exercises the ?poll=1 fallback and the cursor
// contract: since= replays missed epochs, next_since resumes without loss,
// and a cursor older than the backlog gets 410 Gone with a resync hint.
func TestFeedLongPollAndCursors(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{
		Names: names, FeedBacklog: 2, PollTimeout: 100 * time.Millisecond,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 1; i <= 4; i++ {
		if code := postJSON(t, srv, "/update?sync=1", map[string]any{"ops": addPerson(i)}, nil); code != 200 {
			t.Fatalf("update %d: code %d", i, code)
		}
	}

	// backlog capacity 2 retains epochs {3,4}: since=2 resumes exactly there
	var poll struct {
		Epoch     int               `json:"epoch"`
		Since     int               `json:"since"`
		Events    []json.RawMessage `json:"events"`
		NextSince int               `json:"next_since"`
	}
	if code := getJSON(t, srv, "/feed?poll=1&since=2", &poll); code != 200 {
		t.Fatalf("poll: code %d", code)
	}
	if len(poll.Events) != 2 || poll.NextSince != 4 {
		t.Fatalf("poll = %+v, want 2 events and next_since 4", poll)
	}
	var first feedEvent
	if err := json.Unmarshal(poll.Events[0], &first); err != nil || first.Epoch != 3 {
		t.Fatalf("first replayed event = %+v, %v (want epoch 3)", first, err)
	}

	// resuming from next_since with nothing new parks, then returns empty
	if code := getJSON(t, srv, "/feed?poll=1&since=4", &poll); code != 200 {
		t.Fatalf("empty poll: code %d", code)
	}
	if len(poll.Events) != 0 || poll.NextSince != 4 {
		t.Fatalf("empty poll = %+v", poll)
	}

	// an aged-out cursor must not silently skip epochs: 410 + resync hint
	var gone struct {
		Error  string `json:"error"`
		Oldest int    `json:"oldest"`
		Resync string `json:"resync"`
	}
	if code := getJSON(t, srv, "/feed?poll=1&since=1", &gone); code != 410 {
		t.Fatalf("aged cursor: code %d", code)
	}
	if gone.Oldest != 2 || gone.Resync == "" {
		t.Fatalf("410 body = %+v, want oldest 2 and a resync hint", gone)
	}
	if code := getJSON(t, srv, "/feed?since=0", &gone); code != 410 {
		t.Fatalf("aged SSE cursor: code %d", code)
	}
}

// TestCursorPaginationStableAcrossCommit walks the store in keyset pages
// while a commit lands mid-walk. Keys are stable identities, so the walk
// must stay strictly ascending with no duplicates, and every violation
// that exists both before and after the commit is returned exactly once —
// the guarantee offset pagination could not give.
func TestCursorPaginationStableAcrossCommit(t *testing.T) {
	profile := gen.YAGO2
	profile.ErrorRate = 0.4 // dense store: the walk needs many pages
	ds := gen.Generate(profile, 300, 31)
	rules := gen.EffectivenessRules(profile)
	mid := update.Random(ds, update.Config{
		Size: update.SizeFor(ds.G, 0.08), Gamma: 1, Seed: 3100,
	})
	sess := session.New(ds.G, rules, session.Options{})
	s := serve.New(sess, serve.Options{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var full vioPage
	getJSON(t, srv, "/violations?limit=-1", &full)
	if full.Total < 20 {
		t.Fatalf("world too small for a pagination walk: %d violations", full.Total)
	}
	before := map[string]bool{}
	for _, v := range full.Violations {
		before[v.Key] = true
	}

	const pageSize = 7
	var walked []string
	after := ""
	pages := 0
	for {
		url := fmt.Sprintf("/violations?limit=%d", pageSize)
		if after != "" {
			url += "&after=" + after
		}
		var page vioPage
		if code := getJSON(t, srv, url, &page); code != 200 {
			t.Fatalf("page %d: code %d", pages, code)
		}
		for _, v := range page.Violations {
			walked = append(walked, v.Key)
		}
		pages++
		if pages == 2 { // commit lands mid-walk
			ack, err := s.Enqueue(deltaOps(ds, mid))
			if err != nil {
				t.Fatal(err)
			}
			<-ack.Done()
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}

	for i := 1; i < len(walked); i++ {
		if walked[i-1] >= walked[i] {
			t.Fatalf("walk not strictly ascending at %d: %q then %q", i, walked[i-1], walked[i])
		}
	}
	getJSON(t, srv, "/violations?limit=-1", &full)
	afterSet := map[string]bool{}
	for _, v := range full.Violations {
		afterSet[v.Key] = true
	}
	got := map[string]bool{}
	for _, k := range walked {
		got[k] = true
	}
	for k := range before {
		if afterSet[k] && !got[k] {
			t.Fatalf("violation %q survived the commit but the walk skipped it", k)
		}
	}
	if s.Snapshot().Epoch != 1 {
		t.Fatalf("epoch = %d, want exactly the mid-walk commit", s.Snapshot().Epoch)
	}
}

// TestIndexedQueriesMatchNaiveFilter pins the secondary indexes to ground
// truth after several epochs of incremental maintenance: for every rule
// and a sample of nodes, ?rule= / ?node= must return exactly what a full
// scan filtered by the same predicate returns.
func TestIndexedQueriesMatchNaiveFilter(t *testing.T) {
	profile := gen.Pokec
	profile.ErrorRate = 0.3 // a populated store across several rules
	ds := gen.Generate(profile, 250, 41)
	rules := gen.EffectivenessRules(profile)
	deltas := make([]*graph.Delta, 4)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.06), Gamma: 1, Seed: int64(4100 + b),
		})
	}
	sess := session.New(ds.G, rules, session.Options{})
	s := serve.New(sess, serve.Options{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, d := range deltas {
		ack, err := s.Enqueue(deltaOps(ds, d))
		if err != nil {
			t.Fatal(err)
		}
		<-ack.Done()
	}

	var full vioPage
	getJSON(t, srv, "/violations?limit=-1", &full)
	if full.Total == 0 {
		t.Fatal("empty store, nothing to compare")
	}
	byRule := map[string][]string{}
	byNode := map[int32][]string{}
	for _, v := range full.Violations {
		byRule[v.Rule] = append(byRule[v.Rule], v.Key)
		seen := map[int32]bool{}
		for _, id := range v.Match {
			if !seen[id] {
				seen[id] = true
				byNode[id] = append(byNode[id], v.Key)
			}
		}
	}

	fetch := func(q string) []string {
		var page vioPage
		if code := getJSON(t, srv, "/violations?limit=-1&"+q, &page); code != 200 {
			t.Fatalf("%s: code %d", q, code)
		}
		if page.Total != page.Returned {
			t.Fatalf("%s: total %d != returned %d at limit=-1", q, page.Total, page.Returned)
		}
		keys := make([]string, len(page.Violations))
		for i, v := range page.Violations {
			keys[i] = v.Key
		}
		return keys
	}
	for rule, want := range byRule {
		sort.Strings(want)
		got := fetch("rule=" + rule)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("rule=%s: indexed %v != naive %v", rule, got, want)
		}
	}
	if got := fetch("rule=no-such-rule"); len(got) != 0 {
		t.Fatalf("unknown rule returned %v", got)
	}
	checked := 0
	for id, want := range byNode {
		if checked++; checked > 8 {
			break
		}
		sort.Strings(want)
		got := fetch(fmt.Sprintf("node=%d", id))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("node=%d: indexed %v != naive %v", id, got, want)
		}
	}
	// intersection: rule ∧ node
	v0 := full.Violations[0]
	want := []string{}
	for _, k := range byNode[v0.Match[0]] {
		for _, v := range full.Violations {
			if v.Key == k && v.Rule == v0.Rule {
				want = append(want, k)
			}
		}
	}
	sort.Strings(want)
	got := fetch(fmt.Sprintf("rule=%s&node=%d", v0.Rule, v0.Match[0]))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rule∧node: indexed %v != naive %v", got, want)
	}

	s.Close()
	if err := sess.Recheck(); err != nil {
		t.Fatal(err)
	}
}

// TestServerCloseTearsDownFeed pins the shutdown path with live
// subscribers: Close must end active SSE handlers and close API
// subscriptions cleanly, returning the process to its goroutine baseline.
func TestServerCloseTearsDownFeed(t *testing.T) {
	before := runtime.NumGoroutine()

	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	srv := httptest.NewServer(s.Handler())

	apiSub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	// two SSE clients held open across a commit
	type stream struct {
		resp *http.Response
		got  chan error
	}
	var streams []stream
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("GET", srv.URL+"/feed?since=0", nil)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		st := stream{resp: resp, got: make(chan error, 1)}
		go func() {
			rd := bufio.NewReader(resp.Body)
			sawCommit := false
			for {
				line, err := rd.ReadString('\n')
				if err != nil { // EOF once Server.Close ends the handler
					if !sawCommit {
						st.got <- fmt.Errorf("stream ended before any commit event: %v", err)
					} else {
						st.got <- nil
					}
					return
				}
				if strings.HasPrefix(line, "event: commit") {
					sawCommit = true
				}
			}
		}()
		streams = append(streams, st)
	}

	if code := postJSON(t, srv, "/update?sync=1", map[string]any{"ops": addPerson(1)}, nil); code != 200 {
		t.Fatalf("update: code %d", code)
	}

	s.Close() // must unblock both SSE handlers and close apiSub
	for i, st := range streams {
		select {
		case err := <-st.got:
			if err != nil {
				t.Fatalf("stream %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("SSE handler %d survived Server.Close", i)
		}
		st.resp.Body.Close()
	}
	if ev, ok := <-apiSub.C; !ok || ev.Epoch != 1 {
		t.Fatalf("api sub: ok=%v ev=%+v, want the buffered epoch-1 event", ok, ev)
	}
	if _, ok := <-apiSub.C; ok {
		t.Fatal("api sub channel still open after Close")
	}
	if apiSub.Err() != nil {
		t.Fatalf("clean shutdown reported %v", apiSub.Err())
	}

	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked past Close: %d alive, baseline %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUpdateBodyLimits pins the ingestion hygiene fixes: oversized bodies
// are 413 (bounded before buffering), trailing garbage after the JSON
// object is 400 (a corrupted payload must not half-apply).
func TestUpdateBodyLimits(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names, MaxBody: 256})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		resp, err := srv.Client().Post(srv.URL+"/update", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	big := fmt.Sprintf(`{"ops":[{"op":"node","id":"big","label":%q}]}`,
		strings.Repeat("x", 1024))
	if code, body := post(big); code != 413 || !strings.Contains(body, "256") {
		t.Fatalf("oversized body: code %d, %s", code, body)
	}
	if code, body := post(`{"ops":[]}garbage`); code != 400 || !strings.Contains(body, "trailing") {
		t.Fatalf("trailing garbage: code %d, %s", code, body)
	}
	if code, _ := post(`{"ops":[]}{"ops":[]}`); code != 400 {
		t.Fatalf("concatenated objects: code %d", code)
	}
	if code, _ := post("{\"ops\":[]}\n  "); code != 202 { // whitespace is fine
		t.Fatalf("trailing whitespace: code %d", code)
	}
	// the rejected requests must not have half-applied anything
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DroppedOps; got != 0 {
		t.Fatalf("rejected bodies reached the writer: %d dropped ops", got)
	}
	if s.Snapshot().Len() != 1 {
		t.Fatalf("store changed: %d violations", s.Snapshot().Len())
	}
}

// TestSyncAckEpochExact pins the sync-ack fix: an Ack reports the epoch of
// the commit that contained its batch — recorded by the writer at commit
// time — and never drifts to a later epoch the writer published while the
// waiter was waking up.
func TestSyncAckEpochExact(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	defer s.Close()

	ack1, err := s.Enqueue(addPerson(1))
	if err != nil {
		t.Fatal(err)
	}
	<-ack1.Done()
	if ack1.Epoch() != 1 {
		t.Fatalf("ack1.Epoch() = %d, want 1", ack1.Epoch())
	}
	ack2, err := s.Enqueue(addPerson(2))
	if err != nil {
		t.Fatal(err)
	}
	<-ack2.Done()
	if ack2.Epoch() != 2 {
		t.Fatalf("ack2.Epoch() = %d, want 2", ack2.Epoch())
	}
	// the old bug: the handler re-read the *current* snapshot after waking,
	// reporting epoch 2 for batch 1 if it lost the race. The Ack is immutable
	// after commit, so batch 1's epoch must still read 1.
	if ack1.Epoch() != 1 {
		t.Fatalf("ack1.Epoch() drifted to %d after a later commit", ack1.Epoch())
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var committed struct {
		Epoch int `json:"epoch"`
	}
	if code := postJSON(t, srv, "/update?sync=1", map[string]any{"ops": addPerson(3)}, &committed); code != 200 {
		t.Fatalf("sync update: code %d", code)
	}
	if committed.Epoch != 3 {
		t.Fatalf("sync ack epoch = %d, want 3", committed.Epoch)
	}
}

// TestMalformedParamsRejected pins the strict-parameter fix: a malformed
// numeric param is a 400 with an error body, never silently coerced to a
// default, and removed offset pagination is an explicit 400.
func TestMalformedParamsRejected(t *testing.T) {
	sess, names := tinyWorld(t)
	s := serve.New(sess, serve.Options{Names: names})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, path := range []string{
		"/violations?limit=abc",
		"/violations?limit=12.5",
		"/violations?limit=",
		"/violations?node=xyz",
		"/violations?offset=5",
		"/violations?offset=0", // removed entirely, not just nonzero values
		"/violations?after=",
		"/feed?since=abc",
		"/feed?poll=1&since=12x",
	} {
		var body struct {
			Error string `json:"error"`
		}
		if code := getJSON(t, srv, path, &body); code != 400 {
			t.Errorf("%s: code %d, want 400", path, code)
		} else if body.Error == "" {
			t.Errorf("%s: 400 without an error body", path)
		}
	}
}

// BenchmarkViolationQuery measures one indexed ?rule= / ?node= page query
// against store size: keyset + posting-list seeks keep per-query cost flat
// while the full-scan baseline grows with the store.
func BenchmarkViolationQuery(b *testing.B) {
	b.ReportAllocs()
	for _, size := range []int{400, 1600} {
		profile := gen.YAGO2
		profile.ErrorRate = 0.3
		ds := gen.Generate(profile, size, 7)
		rules := gen.EffectivenessRules(profile)
		sess := session.New(ds.G, rules, session.Options{})
		s := serve.New(sess, serve.Options{})
		h := s.Handler()

		var full vioPage
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/violations?limit=-1", nil))
		if err := json.NewDecoder(rec.Body).Decode(&full); err != nil || full.Total == 0 {
			b.Fatalf("seed store: %v (total %d)", err, full.Total)
		}
		rule := full.Violations[0].Rule
		node := full.Violations[0].Match[0]

		run := func(name, target string) {
			b.Run(fmt.Sprintf("%s/store=%d", name, full.Total), func(b *testing.B) {
				b.ReportAllocs()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rec := httptest.NewRecorder()
					rec.Body = &bytes.Buffer{}
					h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
					if rec.Code != 200 {
						b.Fatalf("%s: code %d", target, rec.Code)
					}
				}
			})
		}
		run("rule", fmt.Sprintf("/violations?rule=%s&limit=10", rule))
		run("node", fmt.Sprintf("/violations?node=%d&limit=10", node))
		run("scan", "/violations?limit=-1") // contrast: O(|store|) encode
		s.Close()
	}
}
