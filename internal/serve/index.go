package serve

import (
	"sort"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/session"
)

// vioIndex is the secondary-index layer over one epoch's violation store:
// sorted canonical-key postings by rule name and by member node id, so
// GET /violations?rule= / ?node= are served by a seek into the matching
// posting list instead of an O(|store|) filter scan.
//
// Indexes are copy-on-write and published atomically with their snapshot
// (see serve.view): a commit derives the next epoch's index from the
// previous one by applying the commit's reconciled ΔVio⁺/ΔVio⁻ — only the
// touched posting lists are rebuilt, untouched ones are shared across
// epochs. The by-node map is sharded by id so the per-commit map-header
// copy is O(|V|/shard size + touched shards), not O(distinct violating
// nodes).
type vioIndex struct {
	byRule map[string][]string         // rule name → ascending keys
	byNode map[graph.NodeID]*nodeShard // id >> nodeShardBits → shard
}

// nodeShard groups the posting lists of one contiguous id range; cloned
// wholesale when any of its nodes is touched by a commit.
type nodeShard struct {
	keys map[graph.NodeID][]string // node id → ascending keys
}

const nodeShardBits = 8

// buildIndex scans a full snapshot once — paid only at server start; every
// later epoch derives incrementally via apply.
func buildIndex(sn *session.Snapshot) *vioIndex {
	ix := &vioIndex{
		byRule: make(map[string][]string),
		byNode: make(map[graph.NodeID]*nodeShard),
	}
	for _, v := range sn.Violations() { // ascending key order
		k := v.Key()
		ix.byRule[v.Rule.Name] = append(ix.byRule[v.Rule.Name], k)
		for _, id := range matchNodes(v) {
			sh := ix.byNode[id>>nodeShardBits]
			if sh == nil {
				sh = &nodeShard{keys: make(map[graph.NodeID][]string)}
				ix.byNode[id>>nodeShardBits] = sh
			}
			sh.keys[id] = append(sh.keys[id], k)
		}
	}
	// postings inherit the snapshot's global key order per rule, but a
	// node's violations interleave across rules — sort those
	for _, sh := range ix.byNode {
		for id := range sh.keys {
			sort.Strings(sh.keys[id])
		}
	}
	return ix
}

// apply derives the next epoch's index from ev without mutating the
// receiver (published epochs stay frozen). Posting lists of untouched
// rules/nodes are shared with the previous epoch.
func (ix *vioIndex) apply(ev *session.CommitEvent) *vioIndex {
	if len(ev.Added) == 0 && len(ev.Removed) == 0 {
		return ix
	}
	type change struct{ add, del []string }
	rules := make(map[string]*change)
	nodes := make(map[graph.NodeID]*change)
	record := func(vios []core.Violation, del bool) {
		for _, v := range vios {
			k := v.Key()
			c := rules[v.Rule.Name]
			if c == nil {
				c = &change{}
				rules[v.Rule.Name] = c
			}
			targets := []*change{c}
			for _, id := range matchNodes(v) {
				nc := nodes[id]
				if nc == nil {
					nc = &change{}
					nodes[id] = nc
				}
				targets = append(targets, nc)
			}
			for _, t := range targets {
				if del {
					t.del = append(t.del, k)
				} else {
					t.add = append(t.add, k)
				}
			}
		}
	}
	record(ev.Removed, true)
	record(ev.Added, false)

	next := &vioIndex{
		byRule: make(map[string][]string, len(ix.byRule)),
		byNode: make(map[graph.NodeID]*nodeShard, len(ix.byNode)),
	}
	for r, keys := range ix.byRule {
		next.byRule[r] = keys
	}
	for s, sh := range ix.byNode {
		next.byNode[s] = sh
	}
	for r, c := range rules {
		if keys := editPosting(next.byRule[r], c.add, c.del); len(keys) > 0 {
			next.byRule[r] = keys
		} else {
			delete(next.byRule, r)
		}
	}
	cloned := make(map[graph.NodeID]bool)
	for id, c := range nodes {
		s := id >> nodeShardBits
		sh := next.byNode[s]
		// sh can be nil even when the shard was already cloned: an earlier
		// id in this loop may have emptied it, deleting it from next.byNode.
		if !cloned[s] || sh == nil {
			cl := &nodeShard{keys: make(map[graph.NodeID][]string, 1)}
			if sh != nil {
				cl.keys = make(map[graph.NodeID][]string, len(sh.keys))
				for n, ks := range sh.keys {
					cl.keys[n] = ks
				}
			}
			sh = cl
			next.byNode[s] = sh
			cloned[s] = true
		}
		if keys := editPosting(sh.keys[id], c.add, c.del); len(keys) > 0 {
			sh.keys[id] = keys
		} else {
			delete(sh.keys, id)
			if len(sh.keys) == 0 {
				delete(next.byNode, s)
			}
		}
	}
	return next
}

// ruleKeys returns the ascending posting list for a rule (shared; read-only).
func (ix *vioIndex) ruleKeys(rule string) []string { return ix.byRule[rule] }

// nodeKeys returns the ascending posting list for a member node id.
func (ix *vioIndex) nodeKeys(id graph.NodeID) []string {
	sh := ix.byNode[id>>nodeShardBits]
	if sh == nil {
		return nil
	}
	return sh.keys[id]
}

// editPosting builds a fresh sorted posting list from old ∖ del ∪ add. The
// inputs stay untouched (old is shared with published epochs).
func editPosting(old, add, del []string) []string {
	out := make([]string, 0, len(old)+len(add))
	drop := make(map[string]bool, len(del))
	for _, k := range del {
		drop[k] = true
	}
	out = append(out, add...)
	for _, k := range old {
		if !drop[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// matchNodes returns the distinct node ids of a violation's match (a
// homomorphism may bind several pattern nodes to one data node).
func matchNodes(v core.Violation) []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(v.Match))
	for _, id := range v.Match {
		dup := false
		for _, seen := range ids {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, id)
		}
	}
	return ids
}
