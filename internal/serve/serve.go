// Package serve is the concurrency-safe serving layer over a detection
// session: the deployment mode the incremental detectors exist for —
// keeping Vio(Σ, G) live on an evolving graph while it is being queried.
//
// The concurrency model is single-writer / many-readers with snapshot
// isolation:
//
//   - All mutation is serialized through one writer goroutine owning the
//     session. Updates are enqueued asynchronously; whenever the writer
//     commits, it first drains everything already queued and coalesces it
//     into a single batch, so one Normalize pass and one incremental
//     detection serve an entire burst.
//   - Readers never touch the session or the graph. They load the current
//     epoch's immutable session.Snapshot through an atomic pointer —
//     wait-free, never blocked by a commit in progress, and always seeing
//     a consistent (post-commit) violation store.
//
// On top of the Server sits an HTTP API (Handler): violation queries with
// secondary indexes and keyset cursors, a violation change feed (SSE and
// long-poll) fed from the per-commit ΔVio⁺/ΔVio⁻, update ingestion, stats
// and health — see cmd/ngdserve.
package serve

import (
	"errors"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ngd/internal/analyze"
	"ngd/internal/graph"
	"ngd/internal/plan"
	"ngd/internal/session"
)

// Options configure a Server.
type Options struct {
	// QueueDepth bounds the ingest queue (default 256). Enqueue applies
	// backpressure — blocks — once this many update requests are pending.
	QueueDepth int
	// Names maps external (textual) node ids to NodeIDs, e.g. the mapping
	// returned by dsl.LoadGraph. Update ops may also reference any node by
	// its numeric id; ops introducing new nodes register their ids here.
	// The map is owned by the Server's writer after New.
	Names map[string]graph.NodeID
	// OnNewNode, when set, is called from the writer goroutine immediately
	// after a "node" op registers a new external id, with the id and the
	// NodeID it was bound to. The durability layer (internal/store) uses it
	// to record id bindings in the write-ahead log; the callback must not
	// touch the Server.
	OnNewNode func(id string, v graph.NodeID)
	// AfterCommit, when set, is called from the writer goroutine after each
	// commit with that batch's statistics — after the new snapshot is
	// published but before the batch's waiters are released. cmd/ngdserve
	// drives periodic store checkpoints (and surfaces WAL append errors)
	// through it; the callback must not call Enqueue or Close.
	AfterCommit func(session.BatchStats)
	// DurabilityErr, when set, reports the durability layer's health (nil =
	// healthy; wire it to store.(*Store).Err). It must be safe to call from
	// any goroutine. Stats includes the result, and POST /update?sync=1
	// responses carry a "durable" field, so clients can tell an in-memory
	// ack from a persisted one.
	DurabilityErr func() error
	// MaxBody caps the POST /update request body (default 8 MiB). Oversized
	// bodies are rejected with 413 before they are buffered.
	MaxBody int64
	// FeedBacklog is how many committed change events the feed retains for
	// since= cursor resume (default 64). A cursor older than the retained
	// window gets 410 Gone and must full-resync.
	FeedBacklog int
	// FeedBuffer bounds each feed subscriber's event buffer beyond its
	// initial replay (default 32). A subscriber that falls further behind
	// is disconnected (slow-consumer eviction), never waited on.
	FeedBuffer int
	// PollTimeout is how long a long-poll GET /feed?poll=1 request waits
	// for the first event before returning an empty page (default 25s).
	PollTimeout time.Duration
	// Analysis, when set, is the Σ admission report computed at boot
	// (cmd/ngdserve's -analyze gate over the full, pre-minimization rule
	// set); GET /rules/analysis serves it verbatim. When nil the endpoint
	// computes a report over the session's (minimized) Σ on first request
	// and caches it keyed by Σ signature — the same signature a recovered
	// process derives from the persisted rule text, and the key shape a
	// future per-tenant registry will index by.
	Analysis *analyze.Report
	// AnalyzeOptions budgets the lazily computed report (default: 10s
	// wall-clock timeout on top of reason's branch/match caps).
	AnalyzeOptions analyze.Options
}

// UpdateOp is one ingested operation, the wire format of POST /update.
type UpdateOp struct {
	// Op is "insert" or "delete" (edge ops), "node" (a new node arriving
	// with its attribute tuple, before any of its edges), or "setattr"
	// (reassign attributes of an existing node — the repair path's commit
	// shape, routed through session.CommitBatch so detection, WAL, feed and
	// indexes all observe it as an ordinary batch).
	Op string `json:"op"`
	// Src and Dst reference nodes for edge ops: either an id registered in
	// Options.Names (or by a previous "node" op), or a decimal NodeID.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Label is the edge label (insert/delete) or node label (node).
	Label string `json:"label"`
	// ID is the external id a "node" op registers for the new node, or the
	// node a "setattr" op targets (registered name or decimal NodeID).
	ID string `json:"id,omitempty"`
	// Attrs is the attribute tuple of a "node" op, or the reassignments of
	// a "setattr" op. Numbers, strings and booleans are supported; integral
	// floats are stored as integers.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Stats is a point-in-time summary of a Server (GET /stats).
type Stats struct {
	Epoch      int   `json:"epoch"`       // commit epoch of the published snapshot
	StoreSize  int   `json:"store_size"`  // |Vio(Σ, G)| at that epoch
	Nodes      int   `json:"nodes"`       // |V| at that epoch
	Edges      int   `json:"edges"`       // |E| at that epoch
	Commits    int64 `json:"commits"`     // batches committed
	Enqueued   int64 `json:"enqueued"`    // update requests accepted
	Coalesced  int64 `json:"coalesced"`   // requests merged into another request's batch
	DroppedOps int64 `json:"dropped_ops"` // ops skipped (unknown node, bad label, duplicate node id)
	Queued     int64 `json:"queued"`      // requests currently waiting for the writer

	// DurabilityError is the durability layer's current failure ("" =
	// healthy or no durability configured; see Options.DurabilityErr).
	DurabilityError string `json:"durability_error,omitempty"`

	// Plan reports the session program's cumulative plan-cache counters:
	// a warm serving process shows hits growing per batch with misses flat
	// (plans compiled once, reused for every commit), and shared_rules
	// says how many of Σ's rules ride a shared matching prefix.
	Plan plan.Counters `json:"plan"`

	// FeedSubs / FeedBacklog / FeedOldest report the change feed: live
	// subscribers, retained backlog events, and the oldest epoch a
	// since= cursor can still resume from (older cursors get 410).
	FeedSubs    int `json:"feed_subs"`
	FeedBacklog int `json:"feed_backlog"`
	FeedOldest  int `json:"feed_oldest"`

	// Mem reports process heap and GC counters (runtime.ReadMemStats) so
	// allocation-discipline regressions show up in operations dashboards:
	// a healthy steady-state server shows mallocs growing slowly relative
	// to commits and num_gc roughly flat between batches.
	Mem MemCounters `json:"mem"`

	// LastBatch reports what the most recent commit did (nil before the
	// first commit).
	LastBatch *session.BatchStats `json:"last_batch,omitempty"`
}

// MemCounters is the /stats memory block, a stable subset of
// runtime.MemStats.
type MemCounters struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`  // live heap
	HeapObjects     uint64 `json:"heap_objects"`      // live objects
	TotalAllocBytes uint64 `json:"total_alloc_bytes"` // cumulative allocated bytes
	Mallocs         uint64 `json:"mallocs"`           // cumulative allocations
	NumGC           uint32 `json:"num_gc"`            // completed GC cycles
	GCPauseTotalNs  uint64 `json:"gc_pause_total_ns"` // cumulative stop-the-world pause
	SysBytes        uint64 `json:"sys_bytes"`         // OS-reserved virtual memory
}

func readMemCounters() MemCounters {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemCounters{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapObjects:     ms.HeapObjects,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		GCPauseTotalNs:  ms.PauseTotalNs,
		SysBytes:        ms.Sys,
	}
}

// Ack is the handle Enqueue returns for one update request. Done is
// closed once the request's batch has committed; Epoch then reports the
// exact commit epoch that contained it — recorded by the writer at commit
// time, so it never drifts to a later epoch the writer has moved on to.
type Ack struct {
	done  chan struct{}
	epoch int // written by the writer before done is closed
}

// Done is closed once the ops' batch has committed.
func (a *Ack) Done() <-chan struct{} { return a.done }

// Epoch reports the commit epoch that contained the ops. Valid only after
// Done is closed.
func (a *Ack) Epoch() int { return a.epoch }

// ingest is one queued update request, or — when job is set — a closure to
// run on the writer goroutine between commits (repair previews/applies use
// this to serialize with mutation; see runOnWriter).
type ingest struct {
	ops []UpdateOp
	ack *Ack
	job func()
}

// view pairs the epoch's immutable snapshot with its secondary indexes so
// readers resolve both from one atomic load — a query never sees an index
// newer or older than the store it filters.
type view struct {
	sn  *session.Snapshot
	idx *vioIndex
}

// Server owns a session and serves snapshot-isolated reads while updates
// stream in. Create with New, stop with Close.
type Server struct {
	sess          *session.Session
	names         map[string]graph.NodeID // writer-owned after New
	onNewNode     func(string, graph.NodeID)
	afterCommit   func(session.BatchStats)
	durabilityErr func() error
	in            chan ingest
	cur           atomic.Pointer[view]
	feed          *feedHub
	maxBody       int64
	pollTimeout   time.Duration

	// Σ analysis served by GET /rules/analysis: the boot report when the
	// gate ran in cmd/ngdserve, else lazily computed and cached by Σ
	// signature (anMu guards the cache; requests never block the writer).
	analysis *analyze.Report
	anOpts   analyze.Options
	anMu     sync.Mutex
	anCache  map[string]*analyze.Report

	mu        sync.Mutex // guards closed
	closed    bool
	done      chan struct{} // writer exited
	closeSess sync.Once     // sess.Close after the writer exits

	enqueued   atomic.Int64
	commits    atomic.Int64
	coalesced  atomic.Int64
	droppedOps atomic.Int64
	queued     atomic.Int64
	lastBatch  atomic.Pointer[session.BatchStats]
}

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("serve: server closed")

// New starts the serving layer over an opened session. The session (and
// its graph) must not be touched by anyone else afterwards; the Server's
// writer goroutine is its sole owner.
func New(sess *session.Session, opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Names == nil {
		opts.Names = make(map[string]graph.NodeID)
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 8 << 20
	}
	if opts.FeedBacklog <= 0 {
		opts.FeedBacklog = 64
	}
	if opts.FeedBuffer <= 0 {
		opts.FeedBuffer = 32
	}
	if opts.PollTimeout <= 0 {
		opts.PollTimeout = 25 * time.Second
	}
	if opts.AnalyzeOptions.Timeout <= 0 {
		opts.AnalyzeOptions.Timeout = 10 * time.Second
	}
	s := &Server{
		sess:          sess,
		names:         opts.Names,
		onNewNode:     opts.OnNewNode,
		afterCommit:   opts.AfterCommit,
		durabilityErr: opts.DurabilityErr,
		maxBody:       opts.MaxBody,
		pollTimeout:   opts.PollTimeout,
		analysis:      opts.Analysis,
		anOpts:        opts.AnalyzeOptions,
		anCache:       make(map[string]*analyze.Report),
		in:            make(chan ingest, opts.QueueDepth),
		done:          make(chan struct{}),
	}
	sn := sess.Snapshot()
	s.cur.Store(&view{sn: sn, idx: buildIndex(sn)})
	s.feed = newFeedHub(sn.Epoch, opts.FeedBacklog, opts.FeedBuffer)
	go s.writer()
	return s
}

// Snapshot returns the current epoch's immutable view. Wait-free; safe
// from any goroutine; never blocked by an in-flight commit.
func (s *Server) Snapshot() *session.Snapshot {
	return s.cur.Load().sn
}

// Analysis returns the Σ admission report and whether it was served from
// cache: the boot-time report when one was injected (Options.Analysis),
// else a lazily computed report over the session's rules, cached by Σ
// signature. Safe from any goroutine; the analysis touches only the rule
// set, never the graph, so it cannot race the writer.
func (s *Server) Analysis() (*analyze.Report, bool) {
	s.anMu.Lock()
	defer s.anMu.Unlock()
	if s.analysis != nil {
		return s.analysis, true
	}
	sig := analyze.Signature(s.sess.Rules())
	if rep, ok := s.anCache[sig]; ok {
		return rep, true
	}
	rep := analyze.Analyze(s.sess.Rules(), s.anOpts)
	s.anCache[sig] = rep
	return rep, false
}

// Subscribe opens a change-feed subscription resuming after epoch since
// (pass Snapshot().Epoch to receive only future commits). Events already
// aged out of the backlog yield a *CursorAgedError; the HTTP layer exposes
// this as GET /feed.
func (s *Server) Subscribe(since int) (*FeedSub, error) {
	return s.feed.subscribe(since)
}

// Stats summarizes the server.
func (s *Server) Stats() Stats {
	sn := s.Snapshot()
	durability := ""
	if s.durabilityErr != nil {
		if err := s.durabilityErr(); err != nil {
			durability = err.Error()
		}
	}
	floor, backlog, subs := s.feed.stats()
	return Stats{
		Mem:             readMemCounters(),
		FeedSubs:        subs,
		FeedBacklog:     backlog,
		FeedOldest:      floor,
		DurabilityError: durability,
		Plan:            s.sess.PlanStats(),
		Epoch:           sn.Epoch,
		StoreSize:       sn.Len(),
		Nodes:           sn.Nodes,
		Edges:           sn.Edges,
		Commits:         s.commits.Load(),
		Enqueued:        s.enqueued.Load(),
		Coalesced:       s.coalesced.Load(),
		DroppedOps:      s.droppedOps.Load(),
		Queued:          s.queued.Load(),
		LastBatch:       s.lastBatch.Load(),
	}
}

// Enqueue queues update ops for the writer. The returned Ack reports
// commit completion (Done) and the exact epoch the batch landed in
// (Epoch); callers that don't care simply drop it. Blocks only when the
// ingest queue is full (backpressure).
func (s *Server) Enqueue(ops []UpdateOp) (*Ack, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	ing := ingest{ops: ops, ack: &Ack{done: make(chan struct{})}}
	s.enqueued.Add(1)
	s.queued.Add(1)
	s.in <- ing
	s.mu.Unlock()
	return ing.ack, nil
}

// Flush blocks until every update queued before the call has committed.
func (s *Server) Flush() error {
	ack, err := s.Enqueue(nil)
	if err != nil {
		return err
	}
	<-ack.Done()
	return nil
}

// Close stops the writer after it drains the queue, then stops the
// session's shard pool, so no goroutine the server (transitively) owns
// survives the call. Reads keep working against the final snapshot;
// Enqueue fails with ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
	} else {
		s.closed = true
		close(s.in)
		s.mu.Unlock()
	}
	<-s.done
	s.feed.close() // the writer has exited: no publish can race this
	s.closeSess.Do(s.sess.Close)
}

// writer is the single mutating goroutine: drain, coalesce, materialize,
// commit, publish.
func (s *Server) writer() {
	defer close(s.done)
	for ing := range s.in {
		batch := []ingest{ing}
		// coalesce the whole burst already queued: one Normalize pass and
		// one incremental detection for all of it
	coalesce:
		for {
			select {
			case more, ok := <-s.in:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
				s.coalesced.Add(1)
			default:
				break coalesce
			}
		}
		// execute in order, splitting around writer jobs: consecutive op
		// requests still coalesce into one commit, and a job always sees
		// every update enqueued before it committed
		var ops []ingest
		flush := func() {
			if len(ops) > 0 {
				s.commitBatch(ops)
				ops = nil
			}
		}
		for _, e := range batch {
			if e.job != nil {
				flush()
				e.job()
			} else {
				ops = append(ops, e)
			}
		}
		flush()
	}
}

// runOnWriter runs job on the writer goroutine, serialized with commits,
// and returns once it finishes. The job must not call Enqueue, Flush or
// Close (it would deadlock the writer against itself); committing through
// s.commitBatch directly is the sanctioned mutation path.
func (s *Server) runOnWriter(job func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	done := make(chan struct{})
	s.in <- ingest{job: func() { defer close(done); job() }}
	s.mu.Unlock()
	<-done
	return nil
}

// commitBatch materializes the queued ops into node arrivals plus one ΔG,
// commits through the session, and publishes the next epoch's snapshot.
func (s *Server) commitBatch(batch []ingest) {
	g := s.sess.Graph()
	delta := &graph.Delta{}
	var attrOps []graph.AttrOp
	for _, ing := range batch {
		for _, op := range ing.ops {
			switch op.Op {
			case "node":
				s.applyNode(g, op)
			case "setattr":
				v, ok := s.resolve(op.ID)
				if !ok {
					s.droppedOps.Add(1)
					continue
				}
				names := make([]string, 0, len(op.Attrs))
				for name := range op.Attrs {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					if val, ok := toValue(op.Attrs[name]); ok {
						attrOps = append(attrOps, graph.AttrOp{Node: v, Attr: g.Symbols().Attr(name), Val: val})
					} else {
						s.droppedOps.Add(1)
					}
				}
			case "insert", "delete":
				src, okS := s.resolve(op.Src)
				dst, okD := s.resolve(op.Dst)
				if !okS || !okD {
					s.droppedOps.Add(1)
					continue
				}
				if op.Op == "insert" {
					delta.Insert(src, dst, g.Symbols().Label(op.Label))
				} else {
					l := g.Symbols().LookupLabel(op.Label)
					if l == graph.NoLabel {
						s.droppedOps.Add(1) // label never seen: edge cannot exist
						continue
					}
					delta.Delete(src, dst, l)
				}
			default:
				s.droppedOps.Add(1)
			}
		}
	}

	st := s.sess.CommitBatch(delta, attrOps)
	s.commits.Add(1)
	s.lastBatch.Store(&st)

	// publish the next epoch: snapshot plus secondary indexes derived from
	// this commit's reconciled ΔVio⁺/ΔVio⁻, swapped in one atomic store
	prev := s.cur.Load()
	nv := &view{sn: s.sess.Snapshot(), idx: prev.idx}
	var fe *FeedEvent
	if ev := st.Event; ev != nil && len(ev.Added)+len(ev.Removed) > 0 {
		nv.idx = prev.idx.apply(ev)
		fe = toFeedEvent(ev)
	}
	s.cur.Store(nv)
	if fe != nil {
		s.feed.publish(fe)
	}
	if s.afterCommit != nil {
		s.afterCommit(st)
	}

	for _, ing := range batch {
		s.queued.Add(-1)
		ing.ack.epoch = st.Batch
		close(ing.ack.done)
	}
}

// applyNode handles a "node" op: a *new* entity arriving with its
// attribute star. Re-registering an existing id is dropped — mutating the
// attributes of a node the store has already seen would silently break the
// store ≡ Dect(Σ, G) invariant (unit updates are edge-only, paper §5.2).
func (s *Server) applyNode(g *graph.Graph, op UpdateOp) {
	if op.ID == "" {
		s.droppedOps.Add(1)
		return
	}
	if _, exists := s.names[op.ID]; exists {
		s.droppedOps.Add(1)
		return
	}
	if _, err := strconv.Atoi(op.ID); err == nil {
		s.droppedOps.Add(1) // numeric ids are reserved for raw NodeIDs
		return
	}
	v := g.AddNode(op.Label)
	s.names[op.ID] = v
	if s.onNewNode != nil {
		s.onNewNode(op.ID, v)
	}
	for name, raw := range op.Attrs {
		if val, ok := toValue(raw); ok {
			g.SetAttr(v, name, val)
		} else {
			s.droppedOps.Add(1)
		}
	}
}

// resolve maps an external node reference — a registered name or a decimal
// NodeID — to a node of the graph.
func (s *Server) resolve(ref string) (graph.NodeID, bool) {
	if v, ok := s.names[ref]; ok {
		return v, true
	}
	n, err := strconv.Atoi(ref)
	if err != nil || n < 0 || n >= s.sess.Graph().NumNodes() {
		return 0, false
	}
	return graph.NodeID(n), true
}

// toValue converts a JSON-decoded attribute value.
func toValue(raw any) (graph.Value, bool) {
	switch v := raw.(type) {
	case string:
		return graph.Str(v), true
	case bool:
		return graph.Bool(v), true
	case float64:
		if v == float64(int64(v)) {
			return graph.Int(int64(v)), true
		}
		return graph.Float(v), true
	case int:
		return graph.Int(int64(v)), true
	case int64:
		return graph.Int(v), true
	default:
		return graph.Value{}, false
	}
}
