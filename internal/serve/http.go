package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"ngd/internal/core"
)

// vioJSON is the wire form of one violation.
type vioJSON struct {
	Key   string  `json:"key"`
	Rule  string  `json:"rule"`
	Match []int32 `json:"match"`
	Text  string  `json:"text"`
}

func toVioJSON(v core.Violation) vioJSON {
	m := make([]int32, len(v.Match))
	for i, id := range v.Match {
		m[i] = int32(id)
	}
	return vioJSON{Key: v.Key(), Rule: v.Rule.Name, Match: m, Text: v.String()}
}

// updateRequest is the body of POST /update.
type updateRequest struct {
	Ops []UpdateOp `json:"ops"`
}

// Handler returns the HTTP API:
//
//	GET  /healthz              liveness + current epoch
//	GET  /violations           the live store (query: limit, offset, rule)
//	GET  /violations/{key}     one violation by canonical key
//	GET  /stats                server + last-batch statistics
//	POST /update               enqueue update ops ({"ops":[...]}; ?sync=1
//	                           waits for the batch to commit)
//
// Every read is served from the atomically published snapshot: a reader
// holds one consistent epoch for the whole request and is never blocked by
// a commit in progress.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.Snapshot().Epoch})
	})

	mux.HandleFunc("GET /violations", func(w http.ResponseWriter, r *http.Request) {
		sn := s.Snapshot()
		vios := sn.Violations()
		rule := r.URL.Query().Get("rule")
		if rule != "" {
			filtered := make([]core.Violation, 0, 64)
			for _, v := range vios {
				if v.Rule.Name == rule {
					filtered = append(filtered, v)
				}
			}
			vios = filtered
		}
		total := len(vios)
		offset := intParam(r, "offset", 0)
		if offset < 0 {
			offset = 0
		}
		if offset > total {
			offset = total
		}
		limit := intParam(r, "limit", 100)
		// negative means "the rest"; the upper clamp also guards
		// offset+limit overflow from absurd client-supplied values
		if limit < 0 || limit > total-offset {
			limit = total - offset
		}
		page := vios[offset : offset+limit]
		out := make([]vioJSON, len(page))
		for i, v := range page {
			out[i] = toVioJSON(v)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":      sn.Epoch,
			"total":      total,
			"offset":     offset,
			"returned":   len(out),
			"violations": out,
		})
	})

	mux.HandleFunc("GET /violations/{key}", func(w http.ResponseWriter, r *http.Request) {
		sn := s.Snapshot()
		v, ok := sn.Get(r.PathValue("key"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": "violation not found", "epoch": sn.Epoch,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch": sn.Epoch, "violation": toVioJSON(v),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req updateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		done, err := s.Enqueue(req.Ops)
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
			return
		}
		if r.URL.Query().Get("sync") != "" {
			<-done
			resp := map[string]any{
				"committed": true, "ops": len(req.Ops), "epoch": s.Snapshot().Epoch,
			}
			// with a durability layer attached, tell the client whether a
			// committed ack is also a persisted one — a latched WAL failure
			// means the batch lives in memory only
			if s.durabilityErr != nil {
				if err := s.durabilityErr(); err != nil {
					resp["durable"] = false
					resp["durability_error"] = err.Error()
				} else {
					resp["durable"] = true
				}
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"queued": true, "ops": len(req.Ops),
		})
	})

	return mux
}

func intParam(r *http.Request, name string, def int) int {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
