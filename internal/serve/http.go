package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/repair"
	"ngd/internal/session"
)

// vioJSON is the wire form of one violation.
type vioJSON struct {
	Key   string  `json:"key"`
	Rule  string  `json:"rule"`
	Match []int32 `json:"match"`
	Text  string  `json:"text"`
}

func toVioJSON(v core.Violation) vioJSON {
	m := make([]int32, len(v.Match))
	for i, id := range v.Match {
		m[i] = int32(id)
	}
	return vioJSON{Key: v.Key(), Rule: v.Rule.Name, Match: m, Text: v.String()}
}

// updateRequest is the body of POST /update.
type updateRequest struct {
	Ops []UpdateOp `json:"ops"`
}

// Handler returns the HTTP API:
//
//	GET  /healthz              liveness + current epoch
//	GET  /violations           keyset-paginated store queries
//	                           (query: limit, after, rule, node)
//	GET  /violations/{key}     one violation by canonical key
//	GET  /feed                 violation change feed: SSE by default,
//	                           long-poll with ?poll=1; cursor: since=epoch
//	GET  /stats                server + last-batch statistics
//	POST /update               enqueue update ops ({"ops":[...]}; ?sync=1
//	                           waits for the batch to commit)
//	POST /repair/preview       enumerate ranked fixes for one violation
//	                           ({"key":..., "max_fixes"?}; never mutates)
//	POST /repair/apply         apply a fix ({"key":..., "fix"?: id}; the
//	                           top-ranked fix when "fix" is omitted),
//	                           committed through the ordinary ingest path
//
// Every read is served from the atomically published snapshot+index pair:
// a reader holds one consistent epoch for the whole request and is never
// blocked by a commit in progress.
//
// Error contract: malformed numeric query params and unparseable or
// trailing-garbage bodies get 400; an oversized /update body gets 413; a
// /feed cursor older than the retained backlog gets 410 with the oldest
// resumable epoch. The repair endpoints add: 409 for a violation key the
// live store no longer holds (a later commit cleared it — re-list and
// retry), 404 for a fix id the current enumeration lacks, 422 when the
// violation is unrepairable (the body carries the enumerator's reason),
// 503 after Close.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.Snapshot().Epoch})
	})

	mux.HandleFunc("GET /violations", s.handleViolations)
	mux.HandleFunc("GET /feed", s.handleFeed)

	mux.HandleFunc("GET /violations/{key}", func(w http.ResponseWriter, r *http.Request) {
		sn := s.Snapshot()
		v, ok := sn.Get(r.PathValue("key"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": "violation not found", "epoch": sn.Epoch,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch": sn.Epoch, "violation": toVioJSON(v),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /rules/analysis", func(w http.ResponseWriter, r *http.Request) {
		rep, cached := s.Analysis()
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":           s.Snapshot().Epoch,
			"cached":          cached,
			"session_dropped": s.sess.DroppedRules(),
			"report":          rep,
		})
	})

	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("POST /repair/preview", s.handleRepairPreview)
	mux.HandleFunc("POST /repair/apply", s.handleRepairApply)

	return mux
}

// repairRequest is the body of POST /repair/preview and /repair/apply.
type repairRequest struct {
	// Key is the canonical key of the stored violation to repair.
	Key string `json:"key"`
	// MaxFixes caps the preview's ranked list (default 8).
	MaxFixes int `json:"max_fixes,omitempty"`
	// Fix picks a fix id for /repair/apply; empty applies the top-ranked.
	Fix string `json:"fix,omitempty"`
}

// decodeRepair parses a bounded, exactly-one-object repair request body.
func (s *Server) decodeRepair(w http.ResponseWriter, r *http.Request) (repairRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	var req repairRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return req, false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "trailing data after JSON body"})
		return req, false
	}
	if req.Key == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing violation key"})
		return req, false
	}
	return req, true
}

// writeRepairErr maps the repair error contract onto status codes.
func writeRepairErr(w http.ResponseWriter, err error) {
	var unrep *UnrepairableError
	switch {
	case isStaleViolation(err):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(),
			"hint":  "the violation was cleared by a later commit; re-list /violations and retry",
		})
	case errors.As(err, &unrep):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error": err.Error(), "reason": unrep.Reason,
		})
	case errors.Is(err, ErrUnknownFix):
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	}
}

// handleRepairPreview enumerates ranked candidate fixes without mutating
// anything; the response's epoch is the exact epoch the preview ran at.
func (s *Server) handleRepairPreview(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRepair(w, r)
	if !ok {
		return
	}
	res, err := s.PreviewRepair(req.Key, repair.Options{MaxFixes: req.MaxFixes})
	if err != nil {
		writeRepairErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": s.Snapshot().Epoch, "result": res,
	})
}

// handleRepairApply applies the chosen (or top-ranked) fix as an ordinary
// committed batch and reports the landing epoch and the shrunken store.
func (s *Server) handleRepairApply(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRepair(w, r)
	if !ok {
		return
	}
	res, err := s.ApplyRepair(req.Key, req.Fix, repair.Options{MaxFixes: req.MaxFixes})
	if err != nil {
		writeRepairErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"applied":   true,
		"epoch":     res.Epoch,
		"fix":       res.Fix,
		"cleared":   res.Fix.Clears,
		"remaining": res.Remaining,
	})
}

// handleViolations serves keyset-cursor queries over one epoch's store:
//
//	limit=n        page size (default 100; -1 = the rest)
//	after=<key>    resume strictly after this canonical key
//	rule=<name>    only violations of one rule (secondary index)
//	node=<id>      only violations whose match contains the node (index)
//
// Pages are consistent within the request's epoch; because keys are stable
// identities (unlike offsets), a walk that spans commits resumes at the
// correct position in the new epoch — concurrent ΔVio never shifts rows
// under the cursor. The response carries "next" (the cursor for the
// following page) while more rows remain.
func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Has("offset") {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "offset pagination has been removed: it shifts under concurrent commits; use the keyset cursor ?after=<key> (response field \"next\")",
		})
		return
	}
	limit, err := intParam(q, "limit", 100)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	after := q.Get("after")
	if q.Has("after") && after == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "invalid after: cursor must be a violation key (use the \"next\" field of the previous page)"})
		return
	}

	v := s.cur.Load() // one load: snapshot + indexes of the same epoch
	sn, idx := v.sn, v.idx

	var page []core.Violation
	var total, remaining int
	rule := q.Get("rule")
	switch {
	case q.Has("node"):
		id, err := intParam(q, "node", 0)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		keys := idx.nodeKeys(graph.NodeID(id))
		if rule != "" {
			// intersect: walk the (short) node posting, keep the rule's
			filtered := make([]string, 0, len(keys))
			for _, k := range keys {
				if vv, ok := sn.Get(k); ok && vv.Rule.Name == rule {
					filtered = append(filtered, k)
				}
			}
			keys = filtered
		}
		page, total, remaining = pageKeys(sn, keys, after, limit)
	case rule != "":
		page, total, remaining = pageKeys(sn, idx.ruleKeys(rule), after, limit)
	default:
		page, total, remaining = pageAll(sn, after, limit)
	}

	out := make([]vioJSON, len(page))
	for i, vv := range page {
		out[i] = toVioJSON(vv)
	}
	resp := map[string]any{
		"epoch":      sn.Epoch,
		"total":      total,
		"returned":   len(out),
		"violations": out,
	}
	if remaining > 0 && len(out) > 0 {
		resp["next"] = out[len(out)-1].Key
	}
	writeJSON(w, http.StatusOK, resp)
}

// pageKeys cuts one page out of a sorted posting list: seek past the
// cursor, take up to limit, resolve keys against the same epoch's
// snapshot. Cost is O(log total + page), independent of store size.
func pageKeys(sn *session.Snapshot, keys []string, after string, limit int) (page []core.Violation, total, remaining int) {
	total = len(keys)
	i := 0
	if after != "" {
		i = sort.SearchStrings(keys, after)
		if i < len(keys) && keys[i] == after {
			i++
		}
	}
	n := len(keys) - i
	if limit >= 0 && limit < n {
		n = limit
	}
	page = make([]core.Violation, 0, n)
	for _, k := range keys[i : i+n] {
		if v, ok := sn.Get(k); ok {
			page = append(page, v)
		}
	}
	return page, total, len(keys) - i - n
}

// pageAll pages the unfiltered store off the snapshot's key-sorted slice.
func pageAll(sn *session.Snapshot, after string, limit int) (page []core.Violation, total, remaining int) {
	vios := sn.Violations()
	total = len(vios)
	i := 0
	if after != "" {
		i = sort.Search(len(vios), func(j int) bool { return vios[j].Key() > after })
	}
	n := len(vios) - i
	if limit >= 0 && limit < n {
		n = limit
	}
	return vios[i : i+n], total, len(vios) - i - n
}

// handleFeed serves the violation change feed. Server-sent events by
// default: one "commit" event per effective commit, id: set to the epoch
// so Last-Event-ID/since resume lines up. With ?poll=1 it degrades to
// long-polling for clients that cannot hold an SSE stream: the request
// parks until an event arrives (or PollTimeout passes) and returns the
// batch of events collected, plus next_since to resume from.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, err := intParam(q, "since", s.Snapshot().Epoch)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	sub, err := s.Subscribe(since)
	if err != nil {
		var aged *CursorAgedError
		switch {
		case errors.As(err, &aged):
			writeJSON(w, http.StatusGone, map[string]any{
				"error":  err.Error(),
				"oldest": aged.Floor,
				"resync": "/violations?limit=-1 (then re-subscribe with since=<that response's epoch>)",
			})
		case errors.Is(err, ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		}
		return
	}
	defer sub.Close()

	if q.Get("poll") != "" {
		s.servePoll(w, r, sub, since)
		return
	}
	s.serveSSE(w, r, sub)
}

// serveSSE streams feed events until the client hangs up, the server
// closes, or the subscriber is evicted for falling behind.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, sub *FeedSub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]any{"error": "streaming unsupported by this connection"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": connected epoch=%d\n\n", s.Snapshot().Epoch)
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				if sub.Err() != nil { // evicted: tell the client before EOF
					fmt.Fprintf(w, "event: error\ndata: {\"error\":%q}\n\n", sub.Err().Error())
					fl.Flush()
				}
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: commit\ndata: %s\n\n", ev.Epoch, ev.JSON())
			fl.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// servePoll is the long-poll fallback: wait (bounded) for the first event,
// then drain whatever else is already buffered into the same response.
func (s *Server) servePoll(w http.ResponseWriter, r *http.Request, sub *FeedSub, since int) {
	var events []json.RawMessage
	next := since
	deadline := time.NewTimer(s.pollTimeout)
	defer deadline.Stop()
	wait := true
	for wait {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				if errors.Is(sub.Err(), ErrSlowConsumer) {
					writeJSON(w, http.StatusGone, map[string]any{"error": sub.Err().Error()})
					return
				}
				wait = false // server closing: return what we have
				continue
			}
			events = append(events, ev.JSON())
			next = ev.Epoch
			// first event in hand: drain the rest without blocking
			for {
				select {
				case more, ok := <-sub.C:
					if !ok {
						break
					}
					events = append(events, more.JSON())
					next = more.Epoch
					continue
				default:
				}
				break
			}
			wait = false
		case <-deadline.C:
			wait = false
		case <-r.Context().Done():
			return
		}
	}
	if events == nil {
		events = []json.RawMessage{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      s.Snapshot().Epoch,
		"since":      since,
		"events":     events,
		"next_since": next,
	})
}

// handleUpdate ingests update ops. The body is bounded (413 beyond
// Options.MaxBody) and must be exactly one JSON object — trailing garbage
// is rejected, so a concatenated or corrupted payload can never half-apply.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	var req updateRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "trailing data after JSON body",
		})
		return
	}
	ack, err := s.Enqueue(req.Ops)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
		return
	}
	if r.URL.Query().Get("sync") != "" {
		<-ack.Done()
		// ack.Epoch is recorded by the writer at commit time: it is the
		// epoch of the commit that contained this batch, not whatever the
		// writer has published by the time this handler resumes
		resp := map[string]any{
			"committed": true, "ops": len(req.Ops), "epoch": ack.Epoch(),
		}
		// with a durability layer attached, tell the client whether a
		// committed ack is also a persisted one — a latched WAL failure
		// means the batch lives in memory only
		if s.durabilityErr != nil {
			if err := s.durabilityErr(); err != nil {
				resp["durable"] = false
				resp["durability_error"] = err.Error()
			} else {
				resp["durable"] = true
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"queued": true, "ops": len(req.Ops),
	})
}

// intParam parses an integer query param, returning def when absent and an
// error when present but unparseable (including present-but-empty) —
// malformed input is a client error (400), never silently coerced to a
// default.
func intParam(q url.Values, name string, def int) (int, error) {
	if !q.Has(name) {
		return def, nil
	}
	raw := q.Get(name)
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid %s: %q is not an integer", name, raw)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
