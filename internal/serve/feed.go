package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ngd/internal/session"
)

// The change feed turns the per-commit ΔVio⁺/ΔVio⁻ the session already
// computes into a push channel: subscribers receive exactly the reconciled
// violation delta of every committed epoch instead of polling snapshots.
//
// Delivery model:
//
//   - The writer goroutine publishes one FeedEvent per effective commit
//     (empty commits advance the epoch but carry no delta and are not
//     published; the `since` cursor is a watermark, not a sequence number,
//     so gaps are harmless).
//   - Each subscriber owns a bounded buffer. A subscriber that cannot keep
//     up is disconnected (ErrSlowConsumer) rather than allowed to stall
//     the writer or grow the buffer without bound — it reconnects with
//     `since=<last seen epoch>` and replays what it missed.
//   - Replay is served from a bounded backlog of recent events. A cursor
//     older than the backlog floor has aged out (CursorAgedError → HTTP
//     410): the subscriber must full-resync from GET /violations and
//     re-subscribe from the epoch that read was served at.

// FeedEvent is one committed epoch's reconciled violation delta, the wire
// payload of GET /feed: applying Removed then Added to the previous
// epoch's violation set yields this epoch's set exactly.
type FeedEvent struct {
	Epoch   int       `json:"epoch"`
	Added   []vioJSON `json:"added,omitempty"`
	Removed []string  `json:"removed,omitempty"` // canonical keys

	raw []byte // marshaled once at publish, shared by every subscriber
}

// JSON returns the event's marshaled form (stable across subscribers).
func (e *FeedEvent) JSON() []byte { return e.raw }

// toFeedEvent converts a session commit event to its wire form.
func toFeedEvent(ev *session.CommitEvent) *FeedEvent {
	fe := &FeedEvent{Epoch: ev.Epoch}
	if len(ev.Added) > 0 {
		fe.Added = make([]vioJSON, len(ev.Added))
		for i, v := range ev.Added {
			fe.Added[i] = toVioJSON(v)
		}
	}
	if len(ev.Removed) > 0 {
		fe.Removed = make([]string, len(ev.Removed))
		for i, v := range ev.Removed {
			fe.Removed[i] = v.Key()
		}
	}
	fe.raw, _ = json.Marshal(fe)
	return fe
}

// ErrSlowConsumer reports that a subscription was disconnected because its
// buffer overflowed: the subscriber fell more than FeedBuffer events behind
// the writer. Reconnect with since=<last processed epoch> to resume.
var ErrSlowConsumer = errors.New("serve: feed subscriber too slow, disconnected")

// CursorAgedError reports a since= cursor older than the feed backlog: the
// events needed to resume are gone. The subscriber must resync from a full
// GET /violations read and re-subscribe from that read's epoch.
type CursorAgedError struct {
	Since int // the cursor asked for
	Floor int // oldest epoch the backlog can still resume from
}

func (e *CursorAgedError) Error() string {
	return fmt.Sprintf("serve: feed cursor since=%d aged out (backlog floor %d); full resync required", e.Since, e.Floor)
}

// FeedSub is one live subscription. Receive events from C; when C closes,
// Err says why (nil on server shutdown or Close, ErrSlowConsumer on
// eviction). Always Close a subscription you abandon.
type FeedSub struct {
	// C delivers events in epoch order: first the backlog replay for the
	// requested cursor, then live commits as they publish.
	C <-chan *FeedEvent

	hub *feedHub
	ch  chan *FeedEvent
	err error // written before ch is closed, read after C is drained
}

// Err reports why C was closed. Valid only after C has been drained.
func (s *FeedSub) Err() error { return s.err }

// Close unsubscribes. Idempotent; safe concurrently with the hub.
func (s *FeedSub) Close() { s.hub.unsubscribe(s) }

// feedHub fans commit events out to subscribers and retains a bounded
// backlog for cursor resume. The writer goroutine is the only publisher;
// subscribe/unsubscribe may happen from any goroutine.
type feedHub struct {
	mu      sync.Mutex
	subs    map[*FeedSub]struct{}
	backlog []*FeedEvent // ascending epochs in (floor, last published]
	floor   int          // cursors < floor have aged out
	cap     int          // max backlog length
	buf     int          // per-subscriber buffer beyond replay
	closed  bool
}

func newFeedHub(floorEpoch, backlogCap, subBuf int) *feedHub {
	return &feedHub{
		subs:  make(map[*FeedSub]struct{}),
		floor: floorEpoch,
		cap:   backlogCap,
		buf:   subBuf,
	}
}

// publish appends the event to the backlog (aging out the oldest past
// capacity) and offers it to every subscriber; a subscriber whose buffer
// is full is evicted, never waited on. Called from the writer goroutine.
func (h *feedHub) publish(ev *FeedEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.backlog = append(h.backlog, ev)
	if len(h.backlog) > h.cap {
		h.floor = h.backlog[0].Epoch
		h.backlog = h.backlog[1:]
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			s.err = ErrSlowConsumer
			close(s.ch)
			delete(h.subs, s)
		}
	}
}

// subscribe registers a subscription resuming after epoch `since`: events
// already in the backlog with Epoch > since are pre-loaded into the
// channel (so the replay can never race a concurrent publish into a gap),
// live events follow. The channel buffer is bounded by backlog capacity
// plus the per-subscriber budget.
func (h *feedHub) subscribe(since int) (*FeedSub, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if since < h.floor {
		return nil, &CursorAgedError{Since: since, Floor: h.floor}
	}
	i := sort.Search(len(h.backlog), func(i int) bool { return h.backlog[i].Epoch > since })
	replay := h.backlog[i:]
	s := &FeedSub{hub: h, ch: make(chan *FeedEvent, len(replay)+h.buf)}
	s.C = s.ch
	for _, ev := range replay {
		s.ch <- ev
	}
	h.subs[s] = struct{}{}
	return s, nil
}

func (h *feedHub) unsubscribe(s *FeedSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
}

// close disconnects every subscriber (Err() == nil: a clean shutdown, not
// an eviction) and rejects future subscriptions. Called by Server.Close
// after the writer has exited, so it can never race a publish.
func (h *feedHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}

// stats reports the backlog range for /stats and the 410 hint.
func (h *feedHub) stats() (floor, backlog, subs int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.floor, len(h.backlog), len(h.subs)
}
