package serve

import (
	"testing"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/session"
)

// TestApplyEmptiedShardThenAdd pins the copy-on-write edge case where one
// commit both empties a node shard (deleting it from next.byNode) and
// touches another id in the same shard: the second edit must recreate the
// shard instead of dereferencing the deleted one. The loop defeats Go's
// random map iteration order — the crash only fired when the emptying id
// happened to be processed first.
func TestApplyEmptiedShardThenAdd(t *testing.T) {
	rule := &core.NGD{Name: "r"}
	old := core.Violation{Rule: rule, Match: core.Match{5}}
	add := core.Violation{Rule: rule, Match: core.Match{7}}
	for i := 0; i < 64; i++ {
		ix := &vioIndex{
			byRule: map[string][]string{"r": {old.Key()}},
			byNode: map[graph.NodeID]*nodeShard{
				0: {keys: map[graph.NodeID][]string{5: {old.Key()}}},
			},
		}
		next := ix.apply(&session.CommitEvent{
			Removed: []core.Violation{old},
			Added:   []core.Violation{add},
		})
		if got := next.nodeKeys(7); len(got) != 1 || got[0] != add.Key() {
			t.Fatalf("node 7 postings = %v, want [%s]", got, add.Key())
		}
		if got := next.nodeKeys(5); len(got) != 0 {
			t.Fatalf("node 5 postings = %v, want empty", got)
		}
		if got := next.ruleKeys("r"); len(got) != 1 || got[0] != add.Key() {
			t.Fatalf("rule postings = %v, want [%s]", got, add.Key())
		}
	}
}
