package session_test

// PackSnapshots differential: with the option on, every epoch's
// Snapshot().Graph() is a frozen CSR copy over which batch detection
// reproduces exactly the session's violation store — even after further
// commits mutate the live graph. With the option off (the default),
// Graph() is nil and no packing cost is paid.

import (
	"testing"

	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/session"
	"ngd/internal/update"
)

func TestPackedSnapshotDetectionDifferential(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 160, 11)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 11})
	sess := session.New(ds.G, rules, session.Options{PackSnapshots: true})
	defer sess.Close()

	type epoch struct {
		sn    *session.Snapshot
		store string
	}
	var epochs []epoch
	snap := func() {
		sn := sess.Snapshot()
		if sn.Graph() == nil {
			t.Fatalf("epoch %d: PackSnapshots on but Graph() == nil", sn.Epoch)
		}
		epochs = append(epochs, epoch{sn, canon(sess.Violations())})
	}

	snap()
	for b := 0; b < 3; b++ {
		delta := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.08),
			Seed: 1100 + int64(b),
		})
		sess.Commit(delta)
		snap()
	}

	// every retained epoch must still reproduce its own store from its CSR
	// copy — the live graph has moved on three commits since the first one
	for _, e := range epochs {
		got := canon(detect.Dect(e.sn.Graph(), rules, detect.Options{}).Violations)
		if got != e.store {
			t.Fatalf("epoch %d: Dect over packed snapshot != session store at capture\npacked:\n%s\nstore:\n%s",
				e.sn.Epoch, got, e.store)
		}
	}
}

func TestSnapshotGraphNilByDefault(t *testing.T) {
	ds := gen.Generate(gen.Synthetic, 60, 3)
	rules := gen.Rules(gen.Synthetic, gen.RuleConfig{Count: 4, MaxDiameter: 3, Seed: 3})
	sess := session.New(ds.G, rules, session.Options{})
	defer sess.Close()
	if g := sess.Snapshot().Graph(); g != nil {
		t.Fatalf("default options packed a snapshot graph: %T", g)
	}
}
