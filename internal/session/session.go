// Package session implements continuous detection sessions: the stateful
// serving layer the batch and incremental algorithms plug into. A Session
// owns a graph G and a rule set Σ, commits batch updates ΔG in place with
// graph.(*Graph).Apply, and keeps the violation store Vio(Σ, G) live across
// commits by reconciling IncDect's ΔVio⁺/ΔVio⁻ (or PIncDect's, under the
// parallel toggle) instead of re-running batch detection.
//
// Store invariant: after every Commit the store equals Dect(Σ, G) on the
// committed graph, keyed by canonical violation identity (core.Violation.Key).
// Recheck audits the invariant; differential_test.go enforces it against all
// four detectors on seeded update streams.
//
// Each batch is coalesced before pivot generation — duplicate unit updates
// dedupe (last op per edge wins), insert+delete pairs annihilate, and ops
// without effect on G (re-inserting a present edge, deleting an absent one)
// are elided — so the incremental detectors and the commit see the minimal
// normalized ΔG.
//
// Node arrivals are allowed between commits (a new entity lands with its
// attribute star before its edges do; see internal/update): Commit absorbs
// nodes added since the previous commit. Update-driven pivots are
// edge-only, so the one match shape they can never see is a new node bound
// to an *isolated* pattern node (a pattern node with no incident pattern
// edges — the whole pattern for single-node rules, one cross-product
// component for disconnected patterns); Commit searches those matches
// directly from the arriving nodes.
package session

import (
	"fmt"
	"sort"
	"sync"

	"ngd/internal/analyze"
	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/match"
	"ngd/internal/par"
	"ngd/internal/partition"
	"ngd/internal/plan"
)

// Options configure a detection session.
type Options struct {
	// Parallel routes batches through par.PIncDect (and the initial store
	// seeding through par.PDect) instead of the sequential algorithms. Both
	// routes produce identical stores; the toggle can also be flipped
	// per-batch with SetParallel.
	Parallel bool
	// Par configures the parallel engine when Parallel is set. The zero
	// value means the full hybrid strategy (splitting + balancing) at the
	// default worker count on the goroutine shard runtime, executed on a
	// persistent pool the session owns (created at first parallel use,
	// stopped by Close); set Par.Virtual for the deterministic virtual-time
	// driver. Par.Limit is ignored: the store invariant needs complete
	// violation sets, so detection always runs unbounded.
	Par par.Options
	// NoPruning disables index-backed candidate pruning in every routed
	// detector (differential testing; see detect.Options.NoPruning).
	NoPruning bool
	// Plan configures the session's shared rule program: ordering policy
	// (cost-based vs legacy), cross-rule sharing, churn threshold. The
	// zero value — cost-based ordering, sharing on, automatic threshold —
	// is right for serving; the toggles exist for differential tests and
	// benchmarks.
	Plan plan.Options
	// Analyze configures the Σ admission pass run at construction. The
	// zero value minimizes: unviolable rules (∅ ⊨ φ — no graph can violate
	// them) are dropped before the program is compiled, which preserves
	// Vio(Σ, G) exactly for every G while shrinking what every detector,
	// plan and shard pays for. Set Analyze.NoMinimize to keep the full Σ;
	// Analyze.Reason budgets the implication probes. Dropped rule names
	// are reported by DroppedRules.
	Analyze analyze.Options
	// PackSnapshots attaches a CSR-packed frozen copy of the graph
	// (graph.Packed) to every published Snapshot, readable via
	// Snapshot.Graph while the writer keeps committing. Off by default:
	// packing costs O(|V|+|E|) per epoch, worth paying only when readers
	// actually scan graph structure (ad-hoc detection over a snapshot,
	// analytics) rather than just the violation store.
	PackSnapshots bool
}

// BatchStats reports what one Commit did.
type BatchStats struct {
	Batch  int // 1-based commit sequence number
	RawOps int // |ΔG| as submitted
	Ops    int // after coalescing (dedupe + annihilation + no-op elision)

	Inserted  int // edges committed into G
	Deleted   int // edges removed from G
	Compacted int // adjacency lists compacted by the commit
	NewNodes  int // nodes absorbed (arrived on G since the previous commit)

	// AttrOps / AttrSets count the batch's attribute ops as submitted and
	// after coalescing (last op per (node, attr) wins, no-ops elided);
	// AttrPlus / AttrMinus count the violations the attribute reconciliation
	// pass added and removed (already folded into Event and StoreSize).
	AttrOps, AttrSets   int
	AttrPlus, AttrMinus int

	Plus  int // |ΔVio⁺| reconciled into the store
	Minus int // |ΔVio⁻| reconciled out of the store
	// Absorbed counts violations added by the arriving-node searches
	// (isolated pattern slots), so the store-size delta always accounts:
	// StoreSize == previous + Absorbed + Plus − Minus.
	Absorbed int
	// Pivots is the number of update pivots expanded (sequential route only).
	Pivots int
	// PartPlaced / PartMoved report the incremental partition maintenance
	// done by this commit (parallel route only): nodes newly placed by
	// Extend and nodes relocated by the churn-driven Refine pass. The
	// partition is never rebuilt from scratch.
	PartPlaced, PartMoved int
	// PlanHits / PlanMisses / PlanInvalidations report this batch's plan
	// cache traffic: plans served from the shared program's cache, plans
	// compiled fresh, and cached plans discarded for stats drift. A warm
	// serving session commits whole batches with zero misses — that is the
	// point of the shared program layer.
	PlanHits, PlanMisses, PlanInvalidations int64
	// SharedRules is the number of rules riding a shared matching prefix
	// in the program's latest batch forest (level gauge, not a delta).
	SharedRules int64
	// Cost is the batch's deterministic detection cost: work units
	// (candidates + checks) under IncDect, simulated makespan under PIncDect.
	Cost float64
	// StoreSize is |Vio(Σ, G)| after the commit.
	StoreSize int
	// Event is the commit's reconciled violation delta (the actual ΔVio⁺/
	// ΔVio⁻ sets, not just the counts above). Excluded from JSON: /stats
	// reports counts; the sets travel on the change feed.
	Event *CommitEvent `json:"-"`
	// LogErr is the error returned by the commit hook (write-ahead logging;
	// see SetCommitHook), nil when no hook is installed or the append
	// succeeded. The commit itself still completes: in-memory state stays
	// consistent, only durability of this batch is in doubt.
	LogErr error
}

// CommitEvent is the reconciled violation delta of one commit: exactly the
// change a subscriber must apply to the previous epoch's violation set to
// obtain this epoch's — store(Epoch) = store(Epoch−1) − Removed + Added.
// Added includes both the incremental detector's ΔVio⁺ and the violations
// found by the arriving-node absorption searches; both slices are sorted by
// canonical key and deduplicated against the store, so replaying events in
// epoch order is a faithful differential stream (the serving layer's change
// feed and secondary indexes are built from it).
type CommitEvent struct {
	Epoch   int
	Added   []core.Violation
	Removed []core.Violation
}

// CommitHook observes every commit before it mutates the graph: it receives
// the owned graph, the normalized ΔG about to be applied, the normalized
// attribute ops riding the batch (nil on the pure edge path), and the
// half-open range [newFrom, newTo) of nodes that arrived on the graph since
// the previous commit (their labels and attributes are already set and
// readable from g). internal/store installs its write-ahead log appender
// here, so a batch is durable before the in-place Apply makes it visible.
type CommitHook func(g *graph.Graph, norm *graph.Delta, attrs []graph.AttrOp, newFrom, newTo graph.NodeID) error

// Session is a continuous detection session over an owned graph.
//
// A Session is not safe for concurrent use; Commit mutates the owned graph.
// Between commits the graph may gain nodes (with attributes) externally,
// but edge mutations must go through Commit or the store invariant breaks.
// Concurrent *serving* is layered on top via Snapshot: the single writer
// commits and publishes immutable epoch snapshots that readers consume
// without any locking (see internal/serve for the HTTP daemon doing this).
type Session struct {
	g     *graph.Graph
	rules *core.Set
	opts  Options
	// dropped names the rules removed by the admission pass (unviolable
	// rules; see Options.Analyze), in Σ order.
	dropped []string

	// prog is the session's shared rule program: Σ compiled once, matching
	// plans cached across commits, shared prefixes arranged once. Every
	// detector the session routes through — seeding Dect/PDect, per-batch
	// IncDect/PIncDect, absorption searches — draws plans from it.
	prog *plan.Program

	// searchers reuses pre-bound violation searchers across commits: the
	// same (rule, slot) searches fire every batch, and rebuilding their
	// matchers and literal schedules dominated steady-state allocations.
	searchers detect.SearcherCache

	// store is the live violation set, keyed by core.Violation.Key.
	store map[string]core.Violation
	// edgeRules (patterns with ≥1 edge) produce update pivots and go to the
	// incremental detectors; isoRules additionally need the arriving-node
	// searches of absorbNewNodes.
	edgeRules *core.Set
	isoRules  []isoRule

	// part is the maintained partition the parallel route distributes seed
	// pivots with: built once at first parallel use, then kept current
	// with Extend (new nodes) and Refine (churn) on every Commit — never
	// rebuilt over the full graph.
	part *partition.Partition

	// pool is the session-owned persistent shard pool the goroutine driver
	// runs on: created at first parallel use, sized like the partition (one
	// shard per worker), reused by every PDect/PIncDect the session routes,
	// stopped by Close. poolMu guards it against Close racing a late
	// ensurePool.
	pool     *par.Pool
	poolMu   sync.Mutex
	poolDone bool

	// snap caches the immutable snapshot of the current epoch; invalidated
	// by Commit and rebuilt lazily on the next Snapshot call.
	snap *Snapshot

	// hook, when set, logs each batch before the in-place Apply (write-ahead
	// logging for durable serving; see SetCommitHook).
	hook CommitHook

	seenNodes int
	commits   int
}

// Snapshot is an immutable, consistent view of a session at one commit
// epoch: the violation store sorted by canonical key, plus the graph size
// at capture. Snapshots are copy-on-write — a Commit builds the next epoch
// without touching published ones — so any number of concurrent readers
// can serve from a Snapshot while the session commits (internal/serve
// relies on this for snapshot-isolated reads).
type Snapshot struct {
	// Epoch is the commit count at capture (0 = the seeded store).
	Epoch int
	// Nodes and Edges are |V| and |E| at capture.
	Nodes, Edges int

	vios  []core.Violation
	index map[string]int
	// packed is the epoch's CSR graph snapshot (Options.PackSnapshots).
	packed *graph.Packed
}

// Graph returns the epoch's frozen CSR copy of the graph, or nil when the
// session does not pack snapshots (Options.PackSnapshots). The copy shares
// nothing with the live graph — symbols included — so it is safe to scan
// (including running detection over it) while the writer commits.
func (sn *Snapshot) Graph() graph.View {
	if sn.packed == nil {
		return nil
	}
	return sn.packed
}

// Len reports |Vio(Σ, G)| at the snapshot's epoch.
func (sn *Snapshot) Len() int { return len(sn.vios) }

// Violations returns the snapshot's violations sorted by canonical key.
// The slice is shared and must be treated as read-only.
func (sn *Snapshot) Violations() []core.Violation { return sn.vios }

// Get looks up a violation by its canonical key.
func (sn *Snapshot) Get(key string) (core.Violation, bool) {
	i, ok := sn.index[key]
	if !ok {
		return core.Violation{}, false
	}
	return sn.vios[i], true
}

// isoRule is a rule whose pattern has isolated nodes (no incident pattern
// edges); slots lists their indices in ascending order. An arriving node
// bound to such a slot creates matches that use no inserted edge, which
// the edge-driven pivots cannot discover.
type isoRule struct {
	rule  *core.NGD
	slots []int
}

// New opens a session over g and rules, seeding the store with a full
// batch detection run (Dect, or PDect under Options.Parallel).
func New(g *graph.Graph, rules *core.Set, opts Options) *Session {
	s := newSession(g, rules, opts)
	var vios []core.Violation
	if opts.Parallel {
		vios = par.PDect(g, s.rules, s.parOpts()).Violations
	} else {
		vios = detect.Dect(g, s.rules, detect.Options{
			NoPruning: opts.NoPruning, Program: s.prog,
		}).Violations
	}
	for _, v := range vios {
		s.store[v.Key()] = v
	}
	return s
}

// Restore opens a session over g with a trusted, previously computed
// violation store instead of paying a seeding detection run. It is the
// recovery path of internal/store: the violations come from a snapshot
// whose invariant (store ≡ Dect(Σ, G) at capture) was maintained by the
// session that wrote it, so re-deriving them would be pure waste — this is
// what makes recovery delta-proportional. Callers handing Restore anything
// other than a faithfully persisted store get a session whose invariant is
// broken from the start (Recheck will say so).
func Restore(g *graph.Graph, rules *core.Set, vios []core.Violation, opts Options) *Session {
	s := newSession(g, rules, opts)
	for _, v := range vios {
		s.store[v.Key()] = v
	}
	return s
}

// newSession builds the common session state: rule classification (edge
// rules vs isolated-slot rules) and the node watermark. The store is empty;
// New seeds it with a detection run, Restore from persisted violations.
func newSession(g *graph.Graph, rules *core.Set, opts Options) *Session {
	po := opts.Plan
	po.NoPruning = po.NoPruning || opts.NoPruning
	var dropped []string
	if !opts.Analyze.NoMinimize {
		// Σ admission: drop unviolable rules (∅ ⊨ φ) before compiling the
		// program. Vio-preserving — such a rule contributes no violation in
		// any graph — so the store invariant is stated against the same set
		// every detector now sees.
		rules, dropped = analyze.MinimizeUnviolable(rules, opts.Analyze.Reason)
	}
	s := &Session{
		g:         g,
		rules:     rules,
		opts:      opts,
		dropped:   dropped,
		prog:      plan.New(g, rules, po),
		store:     make(map[string]core.Violation),
		edgeRules: core.NewSet(),
	}
	for _, r := range rules.Rules {
		if len(r.Pattern.Edges) > 0 {
			s.edgeRules.Add(r)
		}
		touched := make([]bool, len(r.Pattern.Nodes))
		for _, e := range r.Pattern.Edges {
			touched[e.Src], touched[e.Dst] = true, true
		}
		var slots []int
		for i := range r.Pattern.Nodes {
			if !touched[i] {
				slots = append(slots, i)
			}
		}
		if len(slots) > 0 {
			s.isoRules = append(s.isoRules, isoRule{rule: r, slots: slots})
		}
	}
	s.seenNodes = g.NumNodes()
	return s
}

// SetCommitHook installs (or, with nil, removes) the hook Commit invokes
// with each batch before mutating the graph. internal/store uses it to
// append the batch to the write-ahead log; installing it after recovery
// replay (rather than before) is what keeps replayed batches from being
// re-logged.
func (s *Session) SetCommitHook(h CommitHook) { s.hook = h }

// parOpts resolves the session's parallel-engine options: an untouched
// zero value means the full hybrid strategy at the default worker count.
// The session's maintained partition and persistent shard pool are
// threaded through so PIncDect never rebuilds a partition and the
// goroutine driver never respawns its shards.
func (s *Session) parOpts() par.Options {
	o := s.opts.Par
	if o.P == 0 && !o.SplitUnits && !o.Balance && !o.Virtual {
		o = par.Hybrid(0)
	}
	o.NoPruning = o.NoPruning || s.opts.NoPruning
	o.AssumeNormalized = true
	o.Limit = 0
	o.Part = s.part
	o.Program = s.prog
	if !o.Virtual && o.Pool == nil {
		o.Pool = s.ensurePool(o.Defaults().P)
	}
	return o
}

// ensurePool lazily creates the session-owned shard pool for p workers.
// After Close it returns nil (the driver then runs per-call workers), so a
// straggling commit can never resurrect shard goroutines the caller
// believes stopped.
func (s *Session) ensurePool(p int) *par.Pool {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.poolDone {
		return nil
	}
	if s.pool == nil {
		s.pool = par.NewPool(p)
	}
	return s.pool
}

// Close stops the session's shard pool, blocking until its goroutines have
// exited. Idempotent and safe after any number of commits; a session whose
// parallel route was never used has nothing to stop. The session remains
// usable afterwards — detection falls back to per-call workers.
func (s *Session) Close() {
	s.poolMu.Lock()
	pl := s.pool
	s.pool = nil
	s.poolDone = true
	s.poolMu.Unlock()
	if pl != nil {
		pl.Close()
	}
}

// ensurePartition builds the maintained partition on first parallel use
// (the one full-graph pass it ever pays) and extends it over nodes that
// arrived since. It returns how many nodes Extend placed.
func (s *Session) ensurePartition(p int) int {
	if s.part == nil {
		s.part = partition.Greedy(s.g, p)
		return 0
	}
	return s.part.Extend(s.g)
}

// SetParallel flips batch routing between IncDect and PIncDect for
// subsequent commits. The resulting stores are identical either way.
func (s *Session) SetParallel(on bool) { s.opts.Parallel = on }

// Graph exposes the owned graph (read it freely; mutate edges only via
// Commit).
func (s *Session) Graph() *graph.Graph { return s.g }

// Rules exposes Σ as the session runs it (after admission minimization).
func (s *Session) Rules() *core.Set { return s.rules }

// DroppedRules names the rules the admission pass removed at construction
// (unviolable rules), in the original Σ order; nil when nothing dropped.
func (s *Session) DroppedRules() []string { return s.dropped }

// Len reports the live store size |Vio(Σ, G)|.
func (s *Session) Len() int { return len(s.store) }

// Commits reports how many batches have been committed.
func (s *Session) Commits() int { return s.commits }

// Has reports whether the store holds a violation with the given canonical
// key.
func (s *Session) Has(key string) bool {
	_, ok := s.store[key]
	return ok
}

// Violations returns the live store sorted by canonical key. The slice is
// the caller's to keep.
func (s *Session) Violations() []core.Violation {
	return append([]core.Violation(nil), s.Snapshot().Violations()...)
}

// Snapshot returns the immutable view of the current epoch, building it on
// first access after a commit (copy-on-write: published snapshots are
// never mutated). The session's single-writer contract still holds —
// Snapshot must be called from the same goroutine as Commit — but the
// *returned* snapshot may be handed to any number of concurrent readers.
func (s *Session) Snapshot() *Snapshot {
	if s.snap != nil {
		return s.snap
	}
	sn := &Snapshot{
		Epoch: s.commits,
		Nodes: s.g.NumNodes(),
		Edges: s.g.NumEdges(),
		vios:  make([]core.Violation, 0, len(s.store)),
		index: make(map[string]int, len(s.store)),
	}
	keys := make([]string, 0, len(s.store))
	for k := range s.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sn.index[k] = len(sn.vios)
		sn.vios = append(sn.vios, s.store[k])
	}
	if s.opts.PackSnapshots {
		sn.packed = s.g.Pack()
	}
	s.snap = sn
	return sn
}

// Partition exposes the maintained partition (nil until the first parallel
// commit builds it).
func (s *Session) Partition() *partition.Partition { return s.part }

// Program exposes the session's shared rule program. It is rebuilt from Σ
// on every session open (including recovery) and never persisted.
func (s *Session) Program() *plan.Program { return s.prog }

// PlanStats snapshots the program's cumulative plan-cache counters. Safe
// from any goroutine (the serving layer reports it under /stats while the
// writer commits).
func (s *Session) PlanStats() plan.Counters { return s.prog.Counters() }

// Commit coalesces ΔG, computes ΔVio against the pre-commit graph with the
// routed incremental detector, commits ΔG into G in place, and reconciles
// the store. A nil or empty delta still absorbs externally arrived nodes.
func (s *Session) Commit(d *graph.Delta) BatchStats {
	return s.CommitBatch(d, nil)
}

// CommitBatch is Commit extended with attribute ops: after the edge delta
// commits, each op sets one attribute of one node, and the store is
// reconciled against the attribute changes — matches binding a retyped node
// are re-evaluated, and newly violating matches that bind it are searched
// with pre-bound plans. Attribute ops cannot change the graph's topology,
// so only matches binding a touched node can change status; the pass
// restores store ≡ Dect(Σ, G') exactly. The repair engine's apply path
// commits its attribute fixes through here, making them ordinary batches in
// the eyes of the WAL, the change feed and the indexes.
func (s *Session) CommitBatch(d *graph.Delta, attrs []graph.AttrOp) BatchStats {
	s.commits++
	s.snap = nil // next Snapshot() captures the new epoch
	st := BatchStats{Batch: s.commits}
	if d == nil {
		d = &graph.Delta{}
	}
	st.RawOps = d.Len()
	st.AttrOps = len(attrs)

	// coalesce once: dedupe, annihilate, drop ineffective ops
	norm := d.Normalize(s.g)
	st.Ops = norm.Len()
	attrs = graph.NormalizeAttrOps(s.g, attrs)
	st.AttrSets = len(attrs)

	// write-ahead: log the normalized batch (plus the arriving-node range)
	// before detection and before the in-place Apply, so a crash at any
	// later point replays to exactly this commit's outcome
	if s.hook != nil {
		st.LogErr = s.hook(s.g, norm, attrs, graph.NodeID(s.seenNodes), graph.NodeID(s.g.NumNodes()))
	}

	planBefore := s.prog.Counters()

	// Event bookkeeping tracks the *net* store change of the whole commit:
	// a violation the edge phase adds and the attribute phase then clears
	// (or vice versa) must not appear in either event slice, or the event
	// would stop being an exact differential of the epoch's store.
	addedM := make(map[string]core.Violation)
	removedM := make(map[string]core.Violation)
	add := func(v core.Violation) {
		k := v.Key()
		if _, ok := removedM[k]; ok {
			delete(removedM, k)
		} else {
			addedM[k] = v
		}
	}
	rem := func(v core.Violation) {
		k := v.Key()
		if _, ok := addedM[k]; ok {
			delete(addedM, k)
		} else {
			removedM[k] = v
		}
	}

	// absorb nodes that arrived since the last commit (isolated pattern
	// slots gain matches the edge-driven pivots cannot see)
	st.NewNodes = s.g.NumNodes() - s.seenNodes
	absorbed := s.absorbNewNodes()
	st.Absorbed = len(absorbed)
	for _, v := range absorbed {
		add(v)
	}

	// incremental answer on the pre-commit graph
	if norm.Len() > 0 {
		var plus, minus []core.Violation
		if s.opts.Parallel {
			// maintain the owned partition instead of letting PIncDect
			// rebuild one: place nodes that arrived since the last commit,
			// then hand it through parOpts
			st.PartPlaced = s.ensurePartition(s.parOpts().Defaults().P)
			r := par.PIncDect(s.g, s.edgeRules, norm, s.parOpts())
			plus, minus = r.Delta.Plus, r.Delta.Minus
			st.Cost = r.Metrics.Makespan
		} else {
			r := inc.IncDect(s.g, s.edgeRules, norm, inc.Options{
				NoPruning:        s.opts.NoPruning,
				AssumeNormalized: true,
				Program:          s.prog,
				Searchers:        &s.searchers,
			})
			plus, minus = r.Plus, r.Minus
			st.Cost = float64(r.Counters.Candidates + r.Counters.Checks)
			st.Pivots = r.Pivots
		}
		// reconcile, recording the *effective* store changes: a ΔVio⁻ key
		// the store never held (or a ΔVio⁺ key it already holds) is not
		// echoed into the event
		for _, v := range minus {
			k := v.Key()
			if _, ok := s.store[k]; ok {
				delete(s.store, k)
				rem(v)
			}
		}
		for _, v := range plus {
			k := v.Key()
			if _, ok := s.store[k]; !ok {
				s.store[k] = v
				add(v)
			}
		}
		st.Plus, st.Minus = len(plus), len(minus)
	}

	planNow := s.prog.Counters().Sub(planBefore)
	st.PlanHits, st.PlanMisses = planNow.Hits, planNow.Misses
	st.PlanInvalidations, st.SharedRules = planNow.Invalidations, planNow.SharedRules

	// commit ΔG into G
	ap := s.g.Apply(norm)
	st.Inserted, st.Deleted, st.Compacted = ap.Inserted, ap.Deleted, ap.Compacted

	// commit the attribute ops and reconcile the store against them (on the
	// post-Apply graph, so the pass sees the batch's final attribute *and*
	// edge state)
	if len(attrs) > 0 {
		st.AttrPlus, st.AttrMinus = s.applyAttrOps(attrs, add, rem)
	}

	ev := &CommitEvent{Epoch: s.commits}
	for _, v := range addedM {
		ev.Added = append(ev.Added, v)
	}
	for _, v := range removedM {
		ev.Removed = append(ev.Removed, v)
	}
	sortByKey(ev.Added)
	sortByKey(ev.Removed)
	st.Event = ev

	// churn-driven local refinement keeps the maintained partition's cut
	// quality from decaying as the graph evolves; cost ∝ |ΔG| degrees,
	// never a rebuild
	if s.part != nil {
		st.PartMoved = s.part.Refine(s.g, norm.TouchedNodes())
	}
	st.StoreSize = len(s.store)
	return st
}

// applyAttrOps commits normalized attribute ops into G and reconciles the
// store. Topology is untouched, so the only matches whose violation status
// can flip are those binding a touched node: stored violations binding one
// are re-evaluated (drop the ones no longer violated), and new violations
// are found by pre-bound searches seeded at each touched node for every
// slot it can occupy. The store's Has-guard dedupes a match reachable from
// several touched nodes or slots.
func (s *Session) applyAttrOps(attrs []graph.AttrOp, add, rem func(core.Violation)) (plus, minus int) {
	touchedSet := graph.AcquireNodeSet(s.g.NumNodes())
	defer graph.ReleaseNodeSet(touchedSet)
	touched := make([]graph.NodeID, 0, len(attrs))
	for _, op := range attrs {
		s.g.SetAttrA(op.Node, op.Attr, op.Val)
		if touchedSet.Add(op.Node) {
			touched = append(touched, op.Node)
		}
	}

	// drop stored violations a touched node no longer sustains
	for k, v := range s.store {
		binds := false
		for _, n := range v.Match {
			if touchedSet.Has(n) {
				binds = true
				break
			}
		}
		if !binds || v.Rule.Violated(s.g, v.Match) {
			continue
		}
		delete(s.store, k)
		rem(v)
		minus++
	}

	// find matches a touched node now violates: one pre-bound search per
	// (rule, slot, touched node) with a label-compatible binding. One
	// scratch partial per rule serves every (slot, node) pair — the searcher
	// restores it on return, so only the seeded slot needs unbinding.
	for _, r := range s.rules.Rules {
		if len(r.Y) == 0 {
			continue // X → ∅ can never be violated
		}
		c := s.prog.CompiledFor(r)
		nPat := len(r.Pattern.Nodes)
		partial := match.NewPartial(nPat)
		for slot := 0; slot < nPat; slot++ {
			var searcher *detect.Searcher
			for _, n := range touched {
				if !c.CP.NodeMatches(slot, s.g.Label(n)) {
					continue
				}
				partial[slot] = n
				// a self-loop pattern edge at the bound slot is fully bound
				// before the search starts; VerifyBound checks it
				if !match.VerifyBound(s.g, c.CP, partial) {
					partial[slot] = match.Unbound
					continue
				}
				if searcher == nil {
					_, pl := s.prog.PlanFor(s.g, r, []int{slot}, s.opts.NoPruning)
					searcher = s.searchers.Get(s.g, c, pl, detect.SlotKey(r, slot))
				}
				searcher.Run(partial, func(m core.Match) bool {
					vio := core.Violation{Rule: r, Match: m.Clone()}
					if k := vio.Key(); !s.Has(k) {
						s.store[k] = vio
						add(vio)
						plus++
					}
					return true
				})
				partial[slot] = match.Unbound
			}
		}
	}
	return plus, minus
}

// absorbNewNodes finds the violating matches that bind a node added since
// the previous commit to an isolated pattern slot, and advances the node
// watermark. Each arriving node seeds a pre-bound violation search (the
// rest of the pattern — other isolated slots, disconnected edge
// components — expands as usual); a match binding several arriving nodes
// at isolated slots is emitted exactly once, by its smallest such slot.
// Arriving nodes cannot extend any *old* match (they had no edges before
// this commit, and isolated slots bind every candidate independently), so
// only the seeded searches are needed. It returns the violations it added
// to the store.
func (s *Session) absorbNewNodes() []core.Violation {
	n := s.g.NumNodes()
	lo := s.seenNodes
	s.seenNodes = n
	if n == lo || len(s.isoRules) == 0 {
		return nil
	}
	var absorbed []core.Violation
	for _, ir := range s.isoRules {
		if len(ir.rule.Y) == 0 {
			continue // X → ∅ can never be violated
		}
		c := s.prog.CompiledFor(ir.rule)
		nPat := len(ir.rule.Pattern.Nodes)
		partial := match.NewPartial(nPat)
		for _, slot := range ir.slots {
			var searcher *detect.Searcher
			for v := lo; v < n; v++ {
				id := graph.NodeID(v)
				if !c.CP.NodeMatches(slot, s.g.Label(id)) {
					continue
				}
				if searcher == nil {
					_, pl := s.prog.PlanFor(s.g, ir.rule, []int{slot}, s.opts.NoPruning)
					searcher = s.searchers.Get(s.g, c, pl, detect.SlotKey(ir.rule, slot))
				}
				partial[slot] = id
				searcher.Run(partial, func(m core.Match) bool {
					for _, s2 := range ir.slots {
						if s2 == slot {
							break
						}
						if int(m[s2]) >= lo {
							return true // a smaller isolated slot owns this match
						}
					}
					vio := core.Violation{Rule: ir.rule, Match: m.Clone()}
					if k := vio.Key(); !s.Has(k) {
						s.store[k] = vio
						absorbed = append(absorbed, vio)
					}
					return true
				})
				partial[slot] = match.Unbound
			}
		}
	}
	return absorbed
}

// sortByKey orders a violation slice by canonical key (the order snapshots
// and feed events expose).
func sortByKey(vios []core.Violation) {
	sort.Slice(vios, func(i, j int) bool { return vios[i].Key() < vios[j].Key() })
}

// Recheck audits the store invariant store ≡ Dect(Σ, G) with a from-scratch
// batch run, returning the first divergence found (nil when consistent).
// It costs a full Dect: a self-audit for tests and debugging, not part of
// the per-batch path. The invariant is guaranteed only at commit
// boundaries; nodes added since the last Commit are not yet absorbed.
func (s *Session) Recheck() error {
	fresh := detect.VioKeySet(detect.Dect(s.g, s.rules, detect.Options{
		NoPruning: s.opts.NoPruning, Program: s.prog,
	}).Violations)
	for k := range fresh {
		if _, ok := s.store[k]; !ok {
			return fmt.Errorf("session: store missing violation %s", k)
		}
	}
	for k := range s.store {
		if _, ok := fresh[k]; !ok {
			return fmt.Errorf("session: store holds stale violation %s", k)
		}
	}
	return nil
}
