package session_test

import (
	"testing"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/pattern"
	"ngd/internal/plan"
	"ngd/internal/session"
	"ngd/internal/update"
)

// mkStreamWorkload builds a small generated dataset plus rule set.
func mkStreamWorkload(t *testing.T, p gen.Profile, entities, rules int, seed int64) (*gen.Dataset, *core.Set) {
	t.Helper()
	ds := gen.Generate(p, entities, seed)
	rs := gen.Rules(p, gen.RuleConfig{Count: rules, MaxDiameter: 4, Seed: seed})
	return ds, rs
}

// noSevenRule is an edge-less (single-node) rule: integer nodes must not
// hold the value 7. It exercises the per-node absorption path that the
// edge-driven pivot detectors cannot cover.
func noSevenRule() *core.NGD {
	q := pattern.New()
	q.AddNode("x", "integer")
	return core.MustNew("no-seven", q, nil, []core.Literal{
		core.Lit(expr.V("x", "val"), expr.Ne, expr.C(7)),
	})
}

func TestSessionSeedsFromBatchDetection(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 1)
	rules := gen.EffectivenessRules(gen.YAGO2)
	s := session.New(ds.G, rules, session.Options{})
	if s.Len() == 0 {
		t.Fatal("expected the seeded store to hold the injected errors' violations")
	}
	if err := s.Recheck(); err != nil {
		t.Fatalf("seed store inconsistent: %v", err)
	}
}

func TestSessionCommitKeepsInvariant(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.YAGO2, 200, 8, 2)
	s := session.New(ds.G, rules, session.Options{})
	for b := 0; b < 3; b++ {
		d := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.08), Gamma: 1, Seed: int64(100 + b),
		})
		st := s.Commit(d)
		if st.StoreSize != s.Len() {
			t.Fatalf("batch %d: StoreSize %d != Len %d", b, st.StoreSize, s.Len())
		}
		if err := s.Recheck(); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if s.Commits() != 3 {
		t.Fatalf("Commits = %d, want 3", s.Commits())
	}
}

func TestSessionCoalescing(t *testing.T) {
	g := graph.New()
	q := pattern.New()
	x := q.AddNode("x", "T")
	y := q.AddNode("y", "integer")
	q.AddEdge(x, y, "p")
	rule := core.MustNew("pos", q, nil, []core.Literal{
		core.Lit(expr.V("y", "val"), expr.Ge, expr.C(0)),
	})

	tn := g.AddNode("T")
	val := g.Symbols().Attr("val")
	bad := g.AddNode("integer")
	g.SetAttrA(bad, val, graph.Int(-1))
	ok := g.AddNode("integer")
	g.SetAttrA(ok, val, graph.Int(5))
	p := g.Symbols().Label("p")

	s := session.New(g, core.NewSet(rule), session.Options{})
	if s.Len() != 0 {
		t.Fatalf("store = %d, want 0 before any edges", s.Len())
	}

	d := &graph.Delta{}
	d.Insert(tn, ok, p)
	d.Insert(tn, ok, p)  // duplicate unit: dedupes
	d.Insert(tn, bad, p) // will annihilate with the delete below
	d.Delete(tn, bad, p)
	d.Delete(ok, bad, p) // deleting a non-edge: elided
	st := s.Commit(d)

	if st.RawOps != 5 {
		t.Fatalf("RawOps = %d, want 5", st.RawOps)
	}
	if st.Ops != 1 {
		t.Fatalf("coalesced Ops = %d, want 1 (dedupe + annihilation + elision)", st.Ops)
	}
	if st.Inserted != 1 || st.Deleted != 0 {
		t.Fatalf("committed %d/%d, want 1 insert, 0 deletes", st.Inserted, st.Deleted)
	}
	if s.Len() != 0 {
		t.Fatalf("store = %d, want 0 (the violating edge annihilated)", s.Len())
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}

	// now actually wire the violating edge: one new violation
	d2 := &graph.Delta{}
	d2.Insert(tn, bad, p)
	st2 := s.Commit(d2)
	if st2.Plus != 1 || s.Len() != 1 {
		t.Fatalf("Plus = %d store = %d, want 1/1", st2.Plus, s.Len())
	}
	// and remove it again: reconciled out
	d3 := &graph.Delta{}
	d3.Delete(tn, bad, p)
	st3 := s.Commit(d3)
	if st3.Minus != 1 || s.Len() != 0 {
		t.Fatalf("Minus = %d store = %d, want 1/0", st3.Minus, s.Len())
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionParallelToggleMidStream(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.DBpedia, 200, 8, 3)
	s := session.New(ds.G, rules, session.Options{})
	for b := 0; b < 4; b++ {
		s.SetParallel(b%2 == 1) // alternate IncDect / PIncDect routing
		d := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.06), Gamma: 1, Seed: int64(500 + b),
		})
		if st := s.Commit(d); b%2 == 1 && st.Ops > 0 && st.Cost == 0 {
			t.Fatalf("batch %d: parallel route reported no makespan", b)
		}
		if err := s.Recheck(); err != nil {
			t.Fatalf("batch %d (parallel=%v): %v", b, b%2 == 1, err)
		}
	}
}

func TestSessionAbsorbsNewNodes(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.YAGO2, 120, 6, 4)
	rules.Add(noSevenRule())
	s := session.New(ds.G, rules, session.Options{})
	before := s.Len()

	// a node arrives between commits, violating the edge-less rule; no
	// edges accompany it, so only absorption can find it
	val := ds.G.Symbols().Attr("val")
	v := ds.G.AddNode("integer")
	ds.G.SetAttrA(v, val, graph.Int(7))

	st := s.Commit(nil)
	if st.NewNodes != 1 {
		t.Fatalf("NewNodes = %d, want 1", st.NewNodes)
	}
	if s.Len() != before+1 {
		t.Fatalf("store = %d, want %d (the arriving 7-valued node)", s.Len(), before+1)
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}
}

// crossRule has two isolated pattern nodes and no edges: matched as a
// cross product, every A value must stay ≤ every B value.
func crossRule() *core.NGD {
	q := pattern.New()
	q.AddNode("x", "A")
	q.AddNode("y", "B")
	return core.MustNew("cross", q, nil, []core.Literal{
		core.Lit(expr.V("x", "val"), expr.Le, expr.V("y", "val")),
	})
}

func TestSessionAbsorbsDisconnectedEdgelessRule(t *testing.T) {
	g := graph.New()
	val := g.Symbols().Attr("val")
	a := g.AddNode("A")
	g.SetAttrA(a, val, graph.Int(5))
	b := g.AddNode("B")
	g.SetAttrA(b, val, graph.Int(10))

	s := session.New(g, core.NewSet(crossRule()), session.Options{})
	if s.Len() != 0 {
		t.Fatalf("seed store = %d, want 0 (5 ≤ 10)", s.Len())
	}

	// a low B arrives: (A=5, B=3) violates via the cross product
	b2 := g.AddNode("B")
	g.SetAttrA(b2, val, graph.Int(3))
	if st := s.Commit(nil); st.NewNodes != 1 || st.Absorbed != 1 || s.Len() != 1 {
		t.Fatalf("after B=3: NewNodes=%d Absorbed=%d store=%d, want 1/1/1",
			st.NewNodes, st.Absorbed, s.Len())
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}

	// a high A and a low B arrive in the same window: matches pairing the
	// two new nodes must come out exactly once (smallest-slot dedup)
	a2 := g.AddNode("A")
	g.SetAttrA(a2, val, graph.Int(20))
	b3 := g.AddNode("B")
	g.SetAttrA(b3, val, graph.Int(1))
	st := s.Commit(nil)
	// violations now: (5,3) (5,1) (20,10) (20,3) (20,1) — 4 absorbed, and
	// the store-size accounting identity holds
	if s.Len() != 5 || st.Absorbed != 4 {
		t.Fatalf("store = %d Absorbed = %d, want 5/4", s.Len(), st.Absorbed)
	}
	if st.StoreSize != 1+st.Absorbed+st.Plus-st.Minus {
		t.Fatalf("accounting broken: %+v", st)
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}
}

// hybridIsoRule mixes an edge component with an isolated node: every
// reading y hanging off a sensor x must stay below every limit node z.
func hybridIsoRule() *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "sensor")
	y := q.AddNode("y", "integer")
	q.AddNode("z", "limit")
	q.AddEdge(x, y, "reads")
	return core.MustNew("cap", q, nil, []core.Literal{
		core.Lit(expr.V("y", "val"), expr.Lt, expr.V("z", "cap")),
	})
}

func TestSessionAbsorbsIsolatedNodeInEdgedRule(t *testing.T) {
	g := graph.New()
	val := g.Symbols().Attr("val")
	cap := g.Symbols().Attr("cap")
	reads := g.Symbols().Label("reads")
	x := g.AddNode("sensor")
	y := g.AddNode("integer")
	g.SetAttrA(y, val, graph.Int(50))
	g.AddEdgeL(x, y, reads)
	z := g.AddNode("limit")
	g.SetAttrA(z, cap, graph.Int(100))

	s := session.New(g, core.NewSet(hybridIsoRule()), session.Options{})
	if s.Len() != 0 {
		t.Fatalf("seed store = %d, want 0 (50 < 100)", s.Len())
	}

	// a tighter limit arrives with no edges at all: the existing
	// (sensor, reading) pair now violates against it
	z2 := g.AddNode("limit")
	g.SetAttrA(z2, cap, graph.Int(30))
	s.Commit(nil)
	if s.Len() != 1 {
		t.Fatalf("store = %d, want 1 (reading 50 ≥ new cap 30)", s.Len())
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}

	// and the edge side still flows through the pivots: a new reading
	// violates against both limits... 120 ≥ 30 and 120 ≥ 100
	y2 := g.AddNode("integer")
	g.SetAttrA(y2, val, graph.Int(120))
	d := &graph.Delta{}
	d.Insert(x, y2, reads)
	st := s.Commit(d)
	if st.Plus != 2 || s.Len() != 3 {
		t.Fatalf("Plus=%d store=%d, want 2/3", st.Plus, s.Len())
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionEmptyCommit(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.YAGO2, 120, 6, 5)
	s := session.New(ds.G, rules, session.Options{})
	before := s.Len()
	st := s.Commit(&graph.Delta{})
	if st.RawOps != 0 || st.Ops != 0 || st.Plus != 0 || st.Minus != 0 {
		t.Fatalf("empty commit did work: %+v", st)
	}
	if s.Len() != before {
		t.Fatalf("store changed on empty commit: %d -> %d", before, s.Len())
	}
}

func TestSessionViolationsSortedAndKeyed(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.Pokec, 100, 6, 6)
	s := session.New(ds.G, rules, session.Options{})
	vs := s.Violations()
	if len(vs) != s.Len() {
		t.Fatalf("Violations len %d != store %d", len(vs), s.Len())
	}
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Key() >= vs[i].Key() {
			t.Fatalf("violations not strictly sorted at %d", i)
		}
	}
	for _, v := range vs {
		if !s.Has(v.Key()) {
			t.Fatalf("Has(%s) = false for a stored violation", v.Key())
		}
	}
}

// TestSessionPlanCacheWarm pins the serving-latency point of the shared
// rule program: the seeding run compiles every batch plan once, the first
// commit compiles the pivot-slot plans it needs, and from then on whole
// batches commit with plan-cache hits only — zero compilation preamble.
func TestSessionPlanCacheWarm(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.YAGO2, 200, 14, 3)
	s := session.New(ds.G, rules, session.Options{})
	if c := s.PlanStats(); c.Misses == 0 {
		t.Fatal("seeding run should have compiled plans")
	}
	if s.Program() == nil {
		t.Fatal("session must own a shared program")
	}

	var warmBatches int
	for b := 0; b < 6; b++ {
		d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.03), Gamma: 1, Seed: 100 + int64(b)})
		bs := s.Commit(d)
		if b >= 2 {
			// by now every (rule, slot) pair this stream touches has been
			// planned at least once
			if bs.PlanMisses == 0 && bs.PlanInvalidations == 0 {
				warmBatches++
			}
			if bs.PlanHits == 0 && bs.Ops > 0 {
				t.Fatalf("batch %d with %d ops drew no plans from the cache", bs.Batch, bs.Ops)
			}
		}
	}
	if warmBatches == 0 {
		t.Fatal("no batch committed fully warm (misses kept happening)")
	}
	if err := s.Recheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionPlanPolicyDifferential commits the same stream through
// cost-based and legacy-ordered sessions and compares stores after every
// batch: plan policy must never leak into the violation set.
func TestSessionPlanPolicyDifferential(t *testing.T) {
	mk := func(po plan.Options) (*session.Session, *gen.Dataset) {
		ds, rules := mkStreamWorkload(t, gen.Pokec, 150, 10, 7)
		return session.New(ds.G, rules, session.Options{Plan: po}), ds
	}
	sCost, dsA := mk(plan.Options{})
	sLegacy, dsB := mk(plan.Options{LegacyOrder: true, NoSharing: true})
	for b := 0; b < 4; b++ {
		cfg := update.Config{Size: update.SizeFor(dsA.G, 0.05), Gamma: 1, Seed: 500 + int64(b)}
		sCost.Commit(update.Random(dsA, cfg))
		sLegacy.Commit(update.Random(dsB, cfg))
		a, l := sCost.Violations(), sLegacy.Violations()
		if len(a) != len(l) {
			t.Fatalf("batch %d: cost store %d vs legacy store %d", b+1, len(a), len(l))
		}
		for i := range a {
			if a[i].Key() != l[i].Key() {
				t.Fatalf("batch %d: stores diverge at %d: %s vs %s", b+1, i, a[i].Key(), l[i].Key())
			}
		}
	}
}
