package session_test

import (
	"fmt"
	"sort"
	"testing"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/pattern"
	"ngd/internal/session"
	"ngd/internal/update"
)

// keySet snapshots a violation key set.
func keySet(sn *session.Snapshot) map[string]bool {
	out := make(map[string]bool, sn.Len())
	for _, v := range sn.Violations() {
		out[v.Key()] = true
	}
	return out
}

// applyEvent replays a commit event onto a key set the way a feed
// subscriber would: removals first, then additions. Every op must be
// effective — a removal of an absent key or an addition of a present one
// means the event is not an exact differential.
func applyEvent(t *testing.T, set map[string]bool, ev *session.CommitEvent) {
	t.Helper()
	for _, v := range ev.Removed {
		k := v.Key()
		if !set[k] {
			t.Fatalf("epoch %d: event removes %s which the subscriber never had", ev.Epoch, k)
		}
		delete(set, k)
	}
	for _, v := range ev.Added {
		k := v.Key()
		if set[k] {
			t.Fatalf("epoch %d: event adds %s which the subscriber already has", ev.Epoch, k)
		}
		set[k] = true
	}
}

// TestCommitEventDifferential drives seeded update streams through a
// session and checks that every commit's Event is the exact reconciled
// delta: replaying it onto the previous epoch's violation set yields the
// next epoch's set, across all profiles and both routing modes.
func TestCommitEventDifferential(t *testing.T) {
	for _, profile := range []gen.Profile{gen.YAGO2, gen.Pokec} {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/parallel=%v", profile.Name, parallel), func(t *testing.T) {
				ds := gen.Generate(profile, 160, 11)
				rules := gen.Rules(profile, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 11})
				sess := session.New(ds.G, rules, session.Options{Parallel: parallel})
				defer sess.Close()

				mirror := keySet(sess.Snapshot())
				for b := 0; b < 6; b++ {
					d := update.Random(ds, update.Config{
						Size: update.SizeFor(ds.G, 0.05), Gamma: 1, Seed: int64(300*b + 7),
					})
					st := sess.Commit(d)
					if st.Event == nil {
						t.Fatalf("batch %d: no commit event", st.Batch)
					}
					if st.Event.Epoch != st.Batch {
						t.Fatalf("batch %d: event epoch %d", st.Batch, st.Event.Epoch)
					}
					if !sort.SliceIsSorted(st.Event.Added, func(i, j int) bool {
						return st.Event.Added[i].Key() < st.Event.Added[j].Key()
					}) {
						t.Fatalf("batch %d: Added not sorted by key", st.Batch)
					}
					applyEvent(t, mirror, st.Event)
					now := keySet(sess.Snapshot())
					if len(mirror) != len(now) {
						t.Fatalf("batch %d: replayed set has %d keys, store %d", st.Batch, len(mirror), len(now))
					}
					for k := range now {
						if !mirror[k] {
							t.Fatalf("batch %d: replayed set missing %s", st.Batch, k)
						}
					}
				}
				if err := sess.Recheck(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCommitEventCoversAbsorbedNodes pins that violations found by the
// arriving-node absorption searches (isolated pattern slots — invisible to
// edge-driven pivots) ride the commit event too: the feed would silently
// diverge from the store without them.
func TestCommitEventCoversAbsorbedNodes(t *testing.T) {
	q := pattern.New()
	q.AddNode("x", "person")
	nonneg := core.MustNew("nonneg-age", q, nil, []core.Literal{
		core.Lit(expr.V("x", "age"), expr.Ge, expr.C(0)),
	})

	g := graph.New()
	ok := g.AddNode("person")
	g.SetAttr(ok, "age", graph.Int(30))
	sess := session.New(g, core.NewSet(nonneg), session.Options{})
	if sess.Len() != 0 {
		t.Fatalf("seed store: %d violations", sess.Len())
	}

	// a violating node arrives between commits
	bad := g.AddNode("person")
	g.SetAttr(bad, "age", graph.Int(-4))
	st := sess.Commit(nil)
	if st.Absorbed != 1 {
		t.Fatalf("Absorbed = %d, want 1", st.Absorbed)
	}
	if len(st.Event.Added) != 1 || len(st.Event.Removed) != 0 {
		t.Fatalf("event = +%d/−%d, want +1/−0", len(st.Event.Added), len(st.Event.Removed))
	}
	if got := st.Event.Added[0].Match[0]; got != bad {
		t.Fatalf("event binds node %d, want %d", got, bad)
	}
	if err := sess.Recheck(); err != nil {
		t.Fatal(err)
	}
}
