package session

import (
	"errors"
	"fmt"

	"ngd/internal/core"
	"ngd/internal/repair"
)

// ErrNoViolation is returned by PreviewRepair for a key the live store does
// not hold. The serving layer maps it to 409: a client asked to repair a
// violation that a later commit already cleared (or that never existed), so
// its view of the store is stale and it should re-list.
var ErrNoViolation = errors.New("session: violation not in store")

// PreviewRepair enumerates the ranked candidate fixes for the stored
// violation named by key. The preview never mutates the session: the graph,
// the violation store and the snapshot epoch are exactly as before the call
// (candidate effects are staged on graph overlays and would-be deltas
// inside internal/repair). Applying a chosen fix is a separate, ordinary
// commit — see the serving layer's /repair/apply.
//
// Callers are responsible for serializing PreviewRepair with Commit (the
// serving layer runs both on its single writer goroutine); the session
// itself is not concurrency-safe.
func (s *Session) PreviewRepair(key string, opts repair.Options) (*repair.Result, error) {
	v, ok := s.store[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoViolation, key)
	}
	return repair.Enumerate(s.g, s.rules, s.prog, storeView{s}, v, opts), nil
}

// storeView adapts the session's live violation store to repair.Store.
// ForEach iterates in canonical-key order via the cached snapshot (building
// it is observationally pure: same epoch, same violations).
type storeView struct{ s *Session }

func (sv storeView) Has(key string) bool { return sv.s.Has(key) }

func (sv storeView) Len() int { return len(sv.s.store) }

func (sv storeView) ForEach(fn func(core.Violation)) {
	for _, v := range sv.s.Snapshot().Violations() {
		fn(v)
	}
}
