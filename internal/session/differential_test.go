package session_test

// Cross-detector differential fuzz suite: for dozens of seeded
// (Profile, Σ, ΔG-stream) workloads, after every committed batch the
// session's live store must be byte-identical to
//
//   - Dect(Σ, G)  from scratch on the committed graph (ground truth),
//   - PDect(Σ, G) on the committed graph,
//   - the previous store reconciled with IncDect's  ΔVio⁺/ΔVio⁻,
//   - the previous store reconciled with PIncDect's ΔVio⁺/ΔVio⁻,
//
// with candidate pruning both on and off, sequential and parallel session
// routing, uniform and burst-skewed streams. Failures log the workload
// (profile, seed, batch) so any counterexample reproduces from its seeds.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/inc"
	"ngd/internal/par"
	"ngd/internal/session"
	"ngd/internal/update"
)

// diffWorkload seeds one continuous-detection scenario.
type diffWorkload struct {
	profile   gen.Profile
	entities  int
	rules     int
	seed      int64
	batches   int
	batchFrac float64
	gamma     float64 // 0 = 1 (paper default)
	hotspot   float64 // 0 = generator default (burst-skewed); -1 = uniform
	noPruning bool
	parallel  bool // session routes through PIncDect
	nodeRule  bool // append an edge-less rule (per-node absorption path)
}

func (w diffWorkload) name() string {
	var tags []string
	if w.noPruning {
		tags = append(tags, "noprune")
	}
	if w.parallel {
		tags = append(tags, "par")
	}
	if w.nodeRule {
		tags = append(tags, "noderule")
	}
	if w.hotspot < 0 {
		tags = append(tags, "uniform")
	}
	if w.gamma != 0 {
		tags = append(tags, fmt.Sprintf("gamma%.1f", w.gamma))
	}
	tag := ""
	if len(tags) > 0 {
		tag = "/" + strings.Join(tags, "+")
	}
	return fmt.Sprintf("%s/seed%d%s", w.profile.Name, w.seed, tag)
}

// diffWorkloads is the seeded workload table: every profile, both pruning
// modes, two seeds each, plus routing/stream/rule-shape variants.
func diffWorkloads() []diffWorkload {
	var ws []diffWorkload
	profiles := []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec, gen.Synthetic}
	entities := map[string]int{"dbpedia": 180, "yago2": 180, "pokec": 90, "synthetic": 180}
	for _, p := range profiles {
		for _, seed := range []int64{1, 2} {
			for _, noPrune := range []bool{false, true} {
				ws = append(ws, diffWorkload{
					profile: p, entities: entities[p.Name], rules: 10,
					seed: seed, batches: 3, batchFrac: 0.06, noPruning: noPrune,
				})
			}
		}
	}
	// parallel session routing, one per profile
	for i, p := range profiles {
		ws = append(ws, diffWorkload{
			profile: p, entities: entities[p.Name], rules: 10,
			seed: int64(3 + i), batches: 3, batchFrac: 0.06, parallel: true,
		})
	}
	// edge-less rule in Σ: new-node absorption must stay consistent
	for _, seed := range []int64{5, 6} {
		ws = append(ws, diffWorkload{
			profile: gen.YAGO2, entities: 150, rules: 8,
			seed: seed, batches: 3, batchFrac: 0.08, nodeRule: true,
		})
	}
	// uniform (non-bursty) stream and delete-heavy / insert-heavy mixes
	ws = append(ws,
		diffWorkload{profile: gen.Synthetic, entities: 180, rules: 10,
			seed: 7, batches: 3, batchFrac: 0.06, hotspot: -1},
		diffWorkload{profile: gen.DBpedia, entities: 180, rules: 10,
			seed: 8, batches: 3, batchFrac: 0.08, gamma: 3.0},
		diffWorkload{profile: gen.YAGO2, entities: 180, rules: 10,
			seed: 9, batches: 3, batchFrac: 0.08, gamma: 0.3},
	)
	return ws
}

// canon renders a violation set in canonical byte form.
func canon(vs []core.Violation) string {
	keys := detect.VioKeySet(vs)
	return canonKeys(keys)
}

func canonKeys(m map[string]core.Violation) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// reconcile applies (ΔVio⁺, ΔVio⁻) to a key set copy.
func reconcile(prev map[string]core.Violation, plus, minus []core.Violation) map[string]core.Violation {
	next := make(map[string]core.Violation, len(prev)+len(plus))
	for k, v := range prev {
		next[k] = v
	}
	for _, v := range minus {
		delete(next, v.Key())
	}
	for _, v := range plus {
		next[v.Key()] = v
	}
	return next
}

func TestDifferentialContinuousDetection(t *testing.T) {
	workloads := diffWorkloads()
	if len(workloads) < 24 {
		t.Fatalf("workload table shrank to %d entries", len(workloads))
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name(), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, w)
		})
	}
}

func runDifferential(t *testing.T, w diffWorkload) {
	ds := gen.Generate(w.profile, w.entities, w.seed)
	rules := gen.Rules(w.profile, gen.RuleConfig{Count: w.rules, MaxDiameter: 4, Seed: w.seed})
	if w.nodeRule {
		rules.Add(noSevenRule())
	}
	sess := session.New(ds.G, rules, session.Options{
		Parallel: w.parallel, NoPruning: w.noPruning,
	})
	defer sess.Close()
	parOpts := par.Hybrid(6)
	parOpts.NoPruning = w.noPruning

	// the session's seed store must already match batch detection
	if got, want := canon(sess.Violations()),
		canon(detect.Dect(ds.G, rules, detect.Options{NoPruning: w.noPruning}).Violations); got != want {
		t.Fatalf("workload %s: seed store != Dect\nstore:\n%s\nDect:\n%s", w.name(), got, want)
	}

	for b := 0; b < w.batches; b++ {
		delta := update.Random(ds, update.Config{
			Size:    update.SizeFor(ds.G, w.batchFrac),
			Gamma:   w.gamma,
			Seed:    w.seed*1000 + int64(b),
			Hotspot: w.hotspot,
		})
		prev := detect.VioKeySet(sess.Violations())

		// incremental answers against the pre-commit graph (neither call
		// mutates G; the session commits afterwards)
		incRes := inc.IncDect(ds.G, rules, delta, inc.Options{NoPruning: w.noPruning})
		pincRes := par.PIncDect(ds.G, rules, delta, parOpts)

		sess.Commit(delta)
		store := canonKeys(detect.VioKeySet(sess.Violations()))

		// ground truth: from-scratch batch detection on the committed graph
		dect := canon(detect.Dect(ds.G, rules, detect.Options{NoPruning: w.noPruning}).Violations)
		if store != dect {
			t.Fatalf("workload %s batch %d: session store != Dect(Σ,G)\nstore:\n%s\nDect:\n%s",
				w.name(), b, store, dect)
		}
		pdect := canon(par.PDect(ds.G, rules, parOpts).Violations)
		if store != pdect {
			t.Fatalf("workload %s batch %d: session store != PDect(Σ,G)\nstore:\n%s\nPDect:\n%s",
				w.name(), b, store, pdect)
		}

		// the reconciled incremental answers must land on the same store.
		// An edge-less rule's new-node violations flow through absorption,
		// not through ΔVio, so the pure-reconcile comparison applies only
		// to edged rule sets.
		if !w.nodeRule {
			if got := canonKeys(reconcile(prev, incRes.Plus, incRes.Minus)); got != store {
				t.Fatalf("workload %s batch %d: IncDect-reconciled set != store\nreconciled:\n%s\nstore:\n%s",
					w.name(), b, got, store)
			}
			if got := canonKeys(reconcile(prev, pincRes.Delta.Plus, pincRes.Delta.Minus)); got != store {
				t.Fatalf("workload %s batch %d: PIncDect-reconciled set != store\nreconciled:\n%s\nstore:\n%s",
					w.name(), b, got, store)
			}
		}
	}
}

// TestDifferentialShardRuntime sweeps the goroutine shard runtime over the
// full fuzz workload table: on every workload's seed graph, the wall-clock
// driver must compute exactly Vio(Σ, G) at p ∈ {1, 2, 4, 8}, exactly
// ΔVio(Σ, G, ΔG) for a committed-size batch, and the virtual oracle must
// account the exact same number of work units as the real shards — the
// contract that makes the deterministic driver a valid stand-in for the
// real one in the cost-model tests.
func TestDifferentialShardRuntime(t *testing.T) {
	workloads := diffWorkloads()
	if len(workloads) < 24 {
		t.Fatalf("workload table shrank to %d entries", len(workloads))
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name(), func(t *testing.T) {
			t.Parallel()
			ds := gen.Generate(w.profile, w.entities, w.seed)
			rules := gen.Rules(w.profile, gen.RuleConfig{Count: w.rules, MaxDiameter: 4, Seed: w.seed})
			if w.nodeRule {
				rules.Add(noSevenRule())
			}
			want := canon(detect.Dect(ds.G, rules, detect.Options{NoPruning: w.noPruning}).Violations)
			for _, p := range []int{1, 2, 4, 8} {
				opts := par.Hybrid(p)
				opts.NoPruning = w.noPruning
				if got := canon(par.PDect(ds.G, rules, opts).Violations); got != want {
					t.Fatalf("workload %s: PDect(real, p=%d) != Dect\nPDect:\n%s\nDect:\n%s",
						w.name(), p, got, want)
				}
			}

			ropts := par.Hybrid(4)
			ropts.NoPruning = w.noPruning
			vopts := par.Oracle(4)
			vopts.NoPruning = w.noPruning
			ru := par.PDect(ds.G, rules, ropts).Metrics.Units
			vu := par.PDect(ds.G, rules, vopts).Metrics.Units
			if ru != vu {
				t.Errorf("workload %s: real driver processed %d units, virtual oracle %d",
					w.name(), ru, vu)
			}

			delta := update.Random(ds, update.Config{
				Size:    update.SizeFor(ds.G, w.batchFrac),
				Gamma:   w.gamma,
				Seed:    w.seed*1000 + 500,
				Hotspot: w.hotspot,
			})
			wantInc := inc.IncDect(ds.G, rules, delta, inc.Options{NoPruning: w.noPruning})
			gotInc := par.PIncDect(ds.G, rules, delta, ropts)
			if canon(gotInc.Delta.Plus) != canon(wantInc.Plus) ||
				canon(gotInc.Delta.Minus) != canon(wantInc.Minus) {
				t.Fatalf("workload %s: PIncDect(real, p=4) != IncDect (ΔVio⁺ %d/%d, ΔVio⁻ %d/%d)",
					w.name(), len(gotInc.Delta.Plus), len(wantInc.Plus),
					len(gotInc.Delta.Minus), len(wantInc.Minus))
			}
		})
	}
}

// TestDifferentialRealDriver runs one workload through the goroutine driver
// (the -race CI job's target): the real-thread PIncDect must agree with the
// session store batch for batch.
func TestDifferentialRealDriver(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 150, 11)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 11})
	sess := session.New(ds.G, rules, session.Options{Parallel: true, Par: par.Hybrid(4)})
	defer sess.Close()
	for b := 0; b < 3; b++ {
		delta := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.08), Gamma: 1, Seed: 11000 + int64(b),
		})
		sess.Commit(delta)
		store := canonKeys(detect.VioKeySet(sess.Violations()))
		dect := canon(detect.Dect(ds.G, rules, detect.Options{}).Violations)
		if store != dect {
			t.Fatalf("real driver batch %d (seed 11): store != Dect\nstore:\n%s\nDect:\n%s", b, store, dect)
		}
	}
}
