package session_test

import (
	"testing"

	"ngd/internal/gen"
	"ngd/internal/par"
	"ngd/internal/session"
	"ngd/internal/update"
)

// TestSnapshotIsolation: a snapshot taken before a commit must be
// untouched by it — same epoch, same violations — while the post-commit
// snapshot reflects the new store.
func TestSnapshotIsolation(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.YAGO2, 200, 8, 21)
	s := session.New(ds.G, rules, session.Options{})

	before := s.Snapshot()
	if before.Epoch != 0 {
		t.Fatalf("seed snapshot epoch %d, want 0", before.Epoch)
	}
	if before.Len() != s.Len() {
		t.Fatalf("seed snapshot len %d != store %d", before.Len(), s.Len())
	}
	beforeKeys := make([]string, before.Len())
	for i, v := range before.Violations() {
		beforeKeys[i] = v.Key()
	}

	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.1), Gamma: 1, Seed: 22})
	st := s.Commit(d)

	// the old epoch is immutable
	if before.Epoch != 0 || before.Len() != len(beforeKeys) {
		t.Fatal("published snapshot mutated by Commit")
	}
	for i, v := range before.Violations() {
		if v.Key() != beforeKeys[i] {
			t.Fatalf("snapshot violation %d changed after Commit", i)
		}
	}

	after := s.Snapshot()
	if after.Epoch != 1 {
		t.Fatalf("post-commit snapshot epoch %d, want 1", after.Epoch)
	}
	if after.Len() != st.StoreSize {
		t.Fatalf("post-commit snapshot len %d != StoreSize %d", after.Len(), st.StoreSize)
	}
	// cached until the next commit
	if s.Snapshot() != after {
		t.Error("repeated Snapshot() rebuilt the same epoch")
	}
	// keyed lookup agrees with the store
	for _, v := range after.Violations() {
		got, ok := after.Get(v.Key())
		if !ok || got.Key() != v.Key() {
			t.Fatalf("snapshot Get(%q) missing", v.Key())
		}
	}
	if _, ok := after.Get("no-such-violation:0"); ok {
		t.Error("snapshot Get returned a violation for a bogus key")
	}
}

// TestSessionMaintainsPartition: the parallel route builds the partition
// once and then maintains it — every committed node ends up placed, loads
// stay consistent, and the store invariant holds throughout.
func TestSessionMaintainsPartition(t *testing.T) {
	ds, rules := mkStreamWorkload(t, gen.Pokec, 250, 8, 31)
	s := session.New(ds.G, rules, session.Options{Parallel: true, Par: par.Hybrid(6)})
	defer s.Close()

	if s.Partition() != nil {
		t.Fatal("partition built before any parallel commit")
	}
	for b := 0; b < 4; b++ {
		d := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.08), Gamma: 1, Seed: int64(300 + b),
		})
		s.Commit(d)
		if err := s.Recheck(); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		pt := s.Partition()
		if pt == nil {
			t.Fatal("no maintained partition after parallel commit")
		}
		// update.Random adds arriving nodes to g before Commit, and Commit
		// extends the partition before detection, so placement is complete
		if pt.Placed() != ds.G.NumNodes() {
			t.Fatalf("batch %d: partition placed %d of %d nodes", b, pt.Placed(), ds.G.NumNodes())
		}
		total := 0
		for _, l := range pt.Loads() {
			total += l
		}
		if total != pt.Placed() {
			t.Fatalf("batch %d: loads sum %d != placed %d", b, total, pt.Placed())
		}
	}
}
