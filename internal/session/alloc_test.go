package session_test

// Allocation budget for the steady-state commit loop. The pooled searcher
// cache, recycled literal bindings and bitset seen-sets brought a warm
// commit from ~6,000 allocations down to ~1,000 on the ngdbench workload;
// this test pins a coarse ceiling on a smaller workload so a regression
// that reintroduces per-commit rebuild costs (fresh searchers, per-emit
// closures, map seen-sets) fails statically in CI rather than surfacing
// as a benchmark drift.

import (
	"testing"

	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/session"
	"ngd/internal/update"
)

func TestSteadyStateCommitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget is calibrated for the full workload")
	}
	ds := gen.Generate(gen.YAGO2, 200, 17)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 17})
	sess := session.New(ds.G, rules, session.Options{})
	defer sess.Close()

	deltas := make([]*graph.Delta, 0, 48)
	for b := 0; b < 48; b++ {
		deltas = append(deltas, update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.01),
			Seed: 1700 + int64(b),
		}))
	}
	// warm: plans compiled, searchers cached, pools populated
	for _, d := range deltas[:16] {
		sess.Commit(d)
	}
	i := 16
	allocs := testing.AllocsPerRun(len(deltas)-16-1, func() {
		sess.Commit(deltas[i])
		i++
	})
	// ~1k allocs/commit measured warm on the larger ngdbench workload; the
	// ceiling is deliberately loose (workload-dependent violation churn)
	// while still far below the pre-overhaul ~6k.
	const budget = 3000
	if allocs > budget {
		t.Fatalf("steady-state commit allocated %.0f objects per run, budget %d", allocs, budget)
	}
}
