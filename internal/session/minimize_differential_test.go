package session_test

// Differential property behind the admission gate's minimization claim
// (DESIGN.md §10): for every Σ and every G,
//
//	Vio(minimize(Σ), G) ≡ Vio(Σ, G)
//
// where minimize drops exactly the unviolable rules (∅ ⊨ φ). The suite
// sweeps the full fuzz workload table with two planted unviolable rules —
// one with an unsatisfiable precondition, one with an empty consequent —
// and checks the violation sets stay byte-identical under sequential Dect,
// parallel PDect, and a committing session (which minimizes by default),
// across every committed batch.

import (
	"testing"

	"ngd/internal/analyze"
	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/par"
	"ngd/internal/pattern"
	"ngd/internal/reason"
	"ngd/internal/session"
	"ngd/internal/update"
)

// deadPreRule can never fire: its precondition x.val < 0 ∧ x.val > 0 is
// unsatisfiable, so ∅ ⊨ φ and minimization must drop it.
func deadPreRule() *core.NGD {
	q := pattern.New()
	q.AddNode("x", "integer")
	return core.MustNew("diff-dead-pre", q,
		[]core.Literal{
			core.Lit(expr.V("x", "val"), expr.Lt, expr.C(0)),
			core.Lit(expr.V("x", "val"), expr.Gt, expr.C(0)),
		},
		[]core.Literal{core.Lit(expr.V("x", "val"), expr.Eq, expr.C(1))})
}

// emptyConsRule has Y = ∅: X → ∅ cannot be violated, so it is unviolable
// and must be dropped too.
func emptyConsRule() *core.NGD {
	q := pattern.New()
	q.AddNode("x", "integer")
	return core.MustNew("diff-empty-cons", q,
		[]core.Literal{core.Lit(expr.V("x", "val"), expr.Ge, expr.C(0))}, nil)
}

func TestDifferentialMinimization(t *testing.T) {
	workloads := diffWorkloads()
	if len(workloads) < 24 {
		t.Fatalf("workload table shrank to %d entries", len(workloads))
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name(), func(t *testing.T) {
			t.Parallel()
			runMinimizeDifferential(t, w)
		})
	}
}

func runMinimizeDifferential(t *testing.T, w diffWorkload) {
	ds := gen.Generate(w.profile, w.entities, w.seed)
	full := gen.Rules(w.profile, gen.RuleConfig{Count: w.rules, MaxDiameter: 4, Seed: w.seed})
	full.Add(deadPreRule())
	full.Add(emptyConsRule())

	min, dropped := analyze.MinimizeUnviolable(full, reason.Options{})
	if len(dropped) != 2 {
		t.Fatalf("workload %s: expected both planted unviolable rules dropped, got %v",
			w.name(), dropped)
	}
	if min.Len() != full.Len()-2 {
		t.Fatalf("workload %s: minimize removed a live rule: %d -> %d",
			w.name(), full.Len(), min.Len())
	}

	dOpts := detect.Options{NoPruning: w.noPruning}
	parOpts := par.Hybrid(6)
	parOpts.NoPruning = w.noPruning

	// batch equivalence on the seed graph, sequential and parallel
	if got, want := canon(detect.Dect(ds.G, min, dOpts).Violations),
		canon(detect.Dect(ds.G, full, dOpts).Violations); got != want {
		t.Fatalf("workload %s: Dect(minΣ) != Dect(Σ)\nmin:\n%s\nfull:\n%s", w.name(), got, want)
	}
	if got, want := canon(par.PDect(ds.G, min, parOpts).Violations),
		canon(par.PDect(ds.G, full, parOpts).Violations); got != want {
		t.Fatalf("workload %s: PDect(minΣ) != PDect(Σ)\nmin:\n%s\nfull:\n%s", w.name(), got, want)
	}

	// continuous detection: a session handed the FULL Σ (admission
	// minimization on by default) must track from-scratch detection with
	// the full Σ across every committed batch
	sess := session.New(ds.G, full, session.Options{
		Parallel: w.parallel, NoPruning: w.noPruning,
	})
	defer sess.Close()
	if got := len(sess.DroppedRules()); got != 2 {
		t.Fatalf("workload %s: session dropped %d rules, want 2", w.name(), got)
	}
	for b := 0; b < w.batches; b++ {
		delta := update.Random(ds, update.Config{
			Size:    update.SizeFor(ds.G, w.batchFrac),
			Gamma:   w.gamma,
			Seed:    w.seed*1000 + int64(b),
			Hotspot: w.hotspot,
		})
		sess.Commit(delta)
		store := canon(sess.Violations())
		truth := canon(detect.Dect(ds.G, full, dOpts).Violations)
		if store != truth {
			t.Fatalf("workload %s batch %d: minimized session store != Dect(Σ,G)\nstore:\n%s\ntruth:\n%s",
				w.name(), b, store, truth)
		}
	}
}
