// Package discover implements a simplified NGD discovery algorithm in the
// spirit of the miner the paper uses to obtain its rule sets (§7, citing
// Fan et al., "Discovering Graph Functional Dependencies", SIGMOD 2018):
// a levelwise search interleaving *vertical* expansion — growing frequent
// patterns edge by edge — with *horizontal* expansion — mining literals
// that hold on (almost) all matches of a pattern.
//
// The miner proposes Y-literals of three shapes over the numeric
// attributes of matched nodes:
//
//	constant   x.A = c
//	order      x.A ≤ y.B   (and equality with constant offset x.A = y.B + c)
//	sum        x.A + y.B = z.C
//
// and keeps those whose confidence over all matches reaches MinConf
// (1.0 by default: exact dependencies). Discovered rules are plain NGDs and
// can be fed to the reasoning layer to prune implied ones.
package discover

import (
	"fmt"
	"sort"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/pattern"
	"ngd/internal/plan"
)

// Options tune the miner.
type Options struct {
	// MinSupport is the minimum number of matches for a pattern to be
	// considered (default 10).
	MinSupport int
	// MaxEdges bounds pattern size (default 2 levels of expansion).
	MaxEdges int
	// MaxMatches caps match sampling per pattern (default 2000).
	MaxMatches int
	// MinConf is the required fraction of matches satisfying a candidate
	// literal (default 1.0: exact rules).
	MinConf float64
	// MaxRules stops after this many rules (default 100).
	MaxRules int
}

func (o Options) defaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 10
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 2
	}
	if o.MaxMatches <= 0 {
		o.MaxMatches = 2000
	}
	if o.MinConf <= 0 {
		o.MinConf = 1.0
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 100
	}
	return o
}

// Discovered is a mined rule with its support.
type Discovered struct {
	Rule    *core.NGD
	Support int // matches of the pattern in G
}

// Mine discovers NGDs holding on g.
func Mine(g *graph.Graph, opts Options) []Discovered {
	opts = opts.defaults()
	var out []Discovered

	// level 1: frequent (srcLabel, edgeLabel, dstLabel) triples
	type triple struct {
		src, edge, dst graph.LabelID
	}
	counts := make(map[triple]int)
	for v := 0; v < g.NumNodes(); v++ {
		sl := g.Label(graph.NodeID(v))
		for _, h := range g.Out(graph.NodeID(v)) {
			counts[triple{sl, h.Label, g.Label(h.To)}]++
		}
	}
	var frequent []triple
	for t, c := range counts {
		if c >= opts.MinSupport {
			frequent = append(frequent, t)
		}
	}
	sort.Slice(frequent, func(i, j int) bool {
		ci, cj := counts[frequent[i]], counts[frequent[j]]
		if ci != cj {
			return ci > cj
		}
		return lessTriple(frequent[i], frequent[j])
	})

	syms := g.Symbols()
	seenPattern := map[string]bool{}
	emit := func(p *pattern.Pattern, support int) {
		if len(out) >= opts.MaxRules {
			return
		}
		key := p.String()
		if seenPattern[key] {
			return
		}
		seenPattern[key] = true
		for _, d := range mineLiterals(g, p, support, opts) {
			out = append(out, d)
			if len(out) >= opts.MaxRules {
				return
			}
		}
	}

	// vertical level 1: single-edge patterns
	type candidate struct {
		p       *pattern.Pattern
		support int
	}
	var level []candidate
	for _, t := range frequent {
		p := pattern.New()
		x := p.AddNode("x", syms.LabelName(t.src))
		y := p.AddNode("y", syms.LabelName(t.dst))
		p.AddEdge(x, y, syms.LabelName(t.edge))
		level = append(level, candidate{p, counts[t]})
		emit(p, counts[t])
		if len(out) >= opts.MaxRules {
			return out
		}
	}

	// vertical expansion: attach one more frequent edge at node x
	for depth := 2; depth <= opts.MaxEdges && len(out) < opts.MaxRules; depth++ {
		var next []candidate
		for _, c := range level {
			baseLabel := c.p.Nodes[0].Label
			for _, t := range frequent {
				if syms.LabelName(t.src) != baseLabel {
					continue
				}
				p := clonePattern(c.p)
				nv := p.AddNode(fmt.Sprintf("v%d", len(p.Nodes)), syms.LabelName(t.dst))
				p.AddEdge(0, nv, syms.LabelName(t.edge))
				support := countMatches(g, p, opts.MaxMatches)
				if support >= opts.MinSupport {
					next = append(next, candidate{p, support})
					emit(p, support)
					if len(out) >= opts.MaxRules {
						return out
					}
				}
			}
		}
		level = next
	}
	return out
}

func lessTriple(a, b struct{ src, edge, dst graph.LabelID }) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	if a.edge != b.edge {
		return a.edge < b.edge
	}
	return a.dst < b.dst
}

func clonePattern(p *pattern.Pattern) *pattern.Pattern {
	q := pattern.New()
	for _, n := range p.Nodes {
		q.AddNode(n.Var, n.Label)
	}
	for _, e := range p.Edges {
		q.AddEdge(e.Src, e.Dst, e.Label)
	}
	return q
}

func countMatches(g *graph.Graph, p *pattern.Pattern, cap int) int {
	cp := pattern.Compile(p, g.Symbols())
	pl := plan.ForPattern(g, cp)
	m := match.NewMatcher(g, pl, match.Hooks{})
	n := 0
	m.Run(match.NewPartial(len(p.Nodes)), func([]graph.NodeID) bool {
		n++
		return n < cap
	})
	return n
}

// sampleMatches returns up to cap matches of p in g.
func sampleMatches(g *graph.Graph, p *pattern.Pattern, cap int) []core.Match {
	cp := pattern.Compile(p, g.Symbols())
	pl := plan.ForPattern(g, cp)
	m := match.NewMatcher(g, pl, match.Hooks{})
	var out []core.Match
	m.Run(match.NewPartial(len(p.Nodes)), func(sol []graph.NodeID) bool {
		out = append(out, append(core.Match(nil), sol...))
		return len(out) < cap
	})
	return out
}

// mineLiterals proposes and verifies Y-literals over the numeric attributes
// of p's matches.
func mineLiterals(g *graph.Graph, p *pattern.Pattern, support int, opts Options) []Discovered {
	matches := sampleMatches(g, p, opts.MaxMatches)
	if len(matches) < opts.MinSupport {
		return nil
	}
	// numeric terms: (pattern node, attr) with integer values in every match
	type term struct {
		node int
		attr graph.AttrID
	}
	var terms []term
	{
		// candidate attrs from the first match, verified across all
		first := matches[0]
		for ni := range p.Nodes {
			g.Attrs(first[ni], func(a graph.AttrID, v graph.Value) {
				if _, ok := v.AsInt(); ok {
					terms = append(terms, term{ni, a})
				}
			})
		}
		sort.Slice(terms, func(i, j int) bool {
			if terms[i].node != terms[j].node {
				return terms[i].node < terms[j].node
			}
			return terms[i].attr < terms[j].attr
		})
	}
	// value vectors per term (nil if any match lacks the attribute)
	vals := make([][]int64, len(terms))
	for ti, t := range terms {
		vec := make([]int64, len(matches))
		ok := true
		for mi, m := range matches {
			v, good := g.Attr(m[t.node], t.attr).AsInt()
			if !good {
				ok = false
				break
			}
			vec[mi] = v
		}
		if ok {
			vals[ti] = vec
		}
	}

	conf := func(pred func(int) bool) float64 {
		hit := 0
		for i := range matches {
			if pred(i) {
				hit++
			}
		}
		return float64(hit) / float64(len(matches))
	}
	termExpr := func(t term) *expr.Expr {
		return expr.V(p.Nodes[t.node].Var, g.Symbols().AttrName(t.attr))
	}

	var out []Discovered
	id := 0
	add := func(lit core.Literal) {
		id++
		name := fmt.Sprintf("mined-%s-%d", p.Nodes[0].Label, id)
		rule, err := core.New(name, clonePattern(p), nil, []core.Literal{lit})
		if err != nil {
			return
		}
		// final exactness check when MinConf is 1: no violations at all
		if opts.MinConf >= 1 && !detect.Validate(g, core.NewSet(rule)) {
			return
		}
		out = append(out, Discovered{Rule: rule, Support: support})
	}

	// constant literals: x.A = c
	for ti, t := range terms {
		if vals[ti] == nil {
			continue
		}
		c := vals[ti][0]
		if conf(func(i int) bool { return vals[ti][i] == c }) >= opts.MinConf {
			add(core.Lit(termExpr(t), expr.Eq, expr.C(c)))
		}
	}
	// pairwise: a = b + c (constant offset) and a ≤ b
	for i := range terms {
		if vals[i] == nil {
			continue
		}
		for j := range terms {
			if i == j || vals[j] == nil {
				continue
			}
			off := vals[i][0] - vals[j][0]
			if conf(func(k int) bool { return vals[i][k]-vals[j][k] == off }) >= opts.MinConf {
				if i < j || off != 0 { // skip mirror duplicates of equality
					rhs := expr.Expr(*termExpr(terms[j]))
					e := &rhs
					if off != 0 {
						e = expr.Add(e, expr.C(off))
					}
					add(core.Lit(termExpr(terms[i]), expr.Eq, e))
				}
				continue
			}
			if i < j {
				if conf(func(k int) bool { return vals[i][k] <= vals[j][k] }) >= opts.MinConf {
					add(core.Lit(termExpr(terms[i]), expr.Le, termExpr(terms[j])))
				} else if conf(func(k int) bool { return vals[i][k] >= vals[j][k] }) >= opts.MinConf {
					add(core.Lit(termExpr(terms[i]), expr.Ge, termExpr(terms[j])))
				}
			}
		}
	}
	// sums: a + b = c
	for i := range terms {
		if vals[i] == nil {
			continue
		}
		for j := i + 1; j < len(terms); j++ {
			if vals[j] == nil {
				continue
			}
			for k := range terms {
				if k == i || k == j || vals[k] == nil {
					continue
				}
				if conf(func(m int) bool { return vals[i][m]+vals[j][m] == vals[k][m] }) >= opts.MinConf {
					add(core.Lit(
						expr.Add(termExpr(terms[i]), termExpr(terms[j])),
						expr.Eq, termExpr(terms[k])))
				}
			}
		}
	}
	return out
}
