package discover

import (
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
)

// TestMineRecoversPlantedInvariants: on a clean generated graph (no
// injected errors) the miner must rediscover the planted p1+p2=p3 sum
// invariant and the p4 ≥ p5 order invariant.
func TestMineRecoversPlantedInvariants(t *testing.T) {
	p := gen.YAGO2
	p.ErrorRate = 0 // clean data: exact dependencies hold
	ds := gen.Generate(p, 400, 3)

	rules := Mine(ds.G, Options{MinSupport: 8, MaxEdges: 3, MaxRules: 5000})
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	foundSum, foundOrder := false, false
	for _, d := range rules {
		s := d.Rule.String()
		if strings.Contains(s, "+") && strings.Contains(s, "=") {
			foundSum = true
		}
		if strings.Contains(s, ">=") || strings.Contains(s, "<=") {
			foundOrder = true
		}
	}
	if !foundSum {
		t.Error("sum invariant p1+p2=p3 not rediscovered")
	}
	if !foundOrder {
		t.Error("order invariant p4 >= p5 not rediscovered")
	}
}

// TestMinedRulesHold: every rule mined with MinConf=1 must validate on the
// graph it was mined from (zero violations) — the miner's exactness
// contract.
func TestMinedRulesHold(t *testing.T) {
	p := gen.Pokec
	p.ErrorRate = 0
	ds := gen.Generate(p, 300, 9)
	rules := Mine(ds.G, Options{MinSupport: 5, MaxRules: 60})
	for _, d := range rules {
		if !detect.Validate(ds.G, coreSet(d)) {
			t.Errorf("mined rule %s is violated on its own training graph", d.Rule)
		}
		if d.Support < 5 {
			t.Errorf("rule %s has support %d below threshold", d.Rule.Name, d.Support)
		}
	}
}

// TestMinedRulesCatchInjectedErrors: rules mined on clean data catch
// corruption when the same profile is generated with errors.
func TestMinedRulesCatchInjectedErrors(t *testing.T) {
	clean := gen.YAGO2
	clean.ErrorRate = 0
	dsClean := gen.Generate(clean, 400, 5)
	mined := Mine(dsClean.G, Options{MinSupport: 8, MaxRules: 200})
	if len(mined) == 0 {
		t.Skip("no rules mined at this scale")
	}
	set := coreSetAll(mined)

	dirty := gen.YAGO2
	dirty.ErrorRate = 0.05
	dsDirty := gen.Generate(dirty, 400, 6)
	res := detect.Dect(dsDirty.G, set, detect.Options{})
	if len(dsDirty.Errors) > 0 && len(res.Violations) == 0 {
		t.Errorf("mined rules caught nothing on dirty data (%d injected errors)", len(dsDirty.Errors))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New()
	if rules := Mine(g, Options{}); len(rules) != 0 {
		t.Errorf("mined %d rules from empty graph", len(rules))
	}
}

func coreSet(d Discovered) *core.Set { return coreSetAll([]Discovered{d}) }

func coreSetAll(ds []Discovered) *core.Set {
	set := core.NewSet()
	for _, d := range ds {
		set.Add(d.Rule)
	}
	return set
}
