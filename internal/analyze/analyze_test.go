package analyze

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/pattern"
	"ngd/internal/reason"
)

func rule(name, label string, x, y []core.Literal) *core.NGD {
	p := pattern.New()
	p.AddNode("x", label)
	return core.MustNew(name, p, x, y)
}

func lits(srcs ...string) []core.Literal {
	var out []core.Literal
	for _, s := range srcs {
		out = append(out, core.MustLiteral(s))
	}
	return out
}

// phi5/phi6/phi7/phi8/phi9 are the §4 Example 5 families pinned in
// reason_test.go; the gate must diagnose them.
func phi5() *core.NGD { return rule("phi5", "_", nil, lits("x.A = 7", "x.B = 7")) }
func phi6() *core.NGD { return rule("phi6", "_", nil, lits("x.A + x.B = 11")) }
func phi7() *core.NGD {
	return rule("phi7", "_", lits("x.A <= 3"), lits("x.B > 6"))
}
func phi8() *core.NGD {
	return rule("phi8", "_", lits("x.A > 3"), lits("x.B > 6"))
}
func phi9() *core.NGD { return rule("phi9", "_", nil, lits("x.B < 6", "x.A != 0")) }

func TestUnsatCorePhi56(t *testing.T) {
	// a benign rule rides along; the core must shrink to exactly {φ5, φ6}
	benign := rule("benign", "a", lits("x.C > 0"), lits("x.C < 100"))
	set := core.NewSet(phi5(), benign, phi6())
	rep := Analyze(set, Options{Lines: map[string]int{"phi5": 1, "phi6": 21}})

	if rep.Satisfiable != reason.No || !rep.Unsat() {
		t.Fatalf("satisfiable = %v, want no", rep.Satisfiable)
	}
	if rep.Core == nil || !rep.Core.Minimal {
		t.Fatalf("core = %+v, want minimal", rep.Core)
	}
	if got := strings.Join(rep.Core.Rules, ","); got != "phi5,phi6" {
		t.Fatalf("core rules = %s, want phi5,phi6", got)
	}
	// the ground witness must render the constants in place: 7 + 7 = 11
	joined := strings.Join(rep.Core.Literals, "\n")
	if !strings.Contains(joined, "7 + 7 = 11 fails") {
		t.Fatalf("no ground witness in core literals:\n%s", joined)
	}
	if !strings.Contains(joined, "(line 1)") || !strings.Contains(joined, "(line 21)") {
		t.Fatalf("line numbers missing from core literals:\n%s", joined)
	}
	if d := rep.Diagnostic(); !strings.Contains(d, "Σ unsatisfiable: minimal core {phi5, phi6}") {
		t.Fatalf("diagnostic:\n%s", d)
	}
}

func TestUnsatCorePhi789(t *testing.T) {
	// {φ7, φ8, φ9} is jointly unsatisfiable but every 2-subset is
	// satisfiable: deletion shrinking must keep all three.
	set := core.NewSet(phi7(), phi8(), phi9())
	rep := Analyze(set, Options{})
	if rep.Satisfiable != reason.No {
		t.Fatalf("satisfiable = %v, want no", rep.Satisfiable)
	}
	if rep.Core == nil || !rep.Core.Minimal {
		t.Fatalf("core = %+v, want minimal", rep.Core)
	}
	if got := strings.Join(rep.Core.Rules, ","); got != "phi7,phi8,phi9" {
		t.Fatalf("core rules = %s, want all three", got)
	}
}

func TestUnsatCoreSingleRule(t *testing.T) {
	bad := rule("bad", "_", nil, lits("x.A < 0", "x.A > 0"))
	rep := Analyze(core.NewSet(bad), Options{})
	if rep.Satisfiable != reason.No || rep.Core == nil {
		t.Fatalf("rep = %+v", rep)
	}
	if len(rep.Core.Rules) != 1 || rep.Core.Rules[0] != "bad" {
		t.Fatalf("core = %+v, want just bad", rep.Core)
	}
}

func TestMinimizeDropsUnviolable(t *testing.T) {
	// deadpre's precondition is unsatisfiable and deadcons has an empty
	// consequence: neither can be violated in any graph, so both drop;
	// live stays.
	deadpre := rule("deadpre", "_", lits("x.A < 0", "x.A > 0"), lits("x.B = 1"))
	deadcons := rule("deadcons", "a", lits("x.A > 0"), nil)
	live := rule("live", "a", nil, lits("x.A >= 0"))
	set := core.NewSet(deadpre, live, deadcons)
	rep := Analyze(set, Options{})

	if rep.Satisfiable != reason.Yes {
		t.Fatalf("satisfiable = %v, want yes", rep.Satisfiable)
	}
	if got := strings.Join(rep.Dropped, ","); got != "deadpre,deadcons" {
		t.Fatalf("dropped = %q, want deadpre,deadcons", got)
	}
	min := rep.Minimized(set)
	if len(min.Rules) != 1 || min.Rules[0].Name != "live" {
		t.Fatalf("minimized = %v", min.Rules)
	}
	// a second pass over the minimized set is a fixpoint
	rep2 := Analyze(min, Options{})
	if len(rep2.Dropped) != 0 {
		t.Fatalf("re-analysis dropped %v", rep2.Dropped)
	}
}

func TestImpliedReportedNotDropped(t *testing.T) {
	// strong: A>0 → B>6 implies weak: A>0 → B>5, but weak is violable, so
	// default minimization must keep it (violations carry rule identity);
	// Cover mode may drop it.
	strong := rule("strong", "a", lits("x.A > 0"), lits("x.B > 6"))
	weak := rule("weak", "a", lits("x.A > 0"), lits("x.B > 5"))
	set := core.NewSet(strong, weak)

	rep := Analyze(set, Options{})
	if rep.Satisfiable != reason.Yes {
		t.Fatalf("satisfiable = %v, want yes", rep.Satisfiable)
	}
	var weakRep *RuleReport
	for i := range rep.Rules {
		if rep.Rules[i].Name == "weak" {
			weakRep = &rep.Rules[i]
		}
	}
	if weakRep == nil || weakRep.Implied != reason.Yes {
		t.Fatalf("weak implied = %+v, want yes", weakRep)
	}
	if weakRep.Unviolable || weakRep.Dropped || len(rep.Dropped) != 0 {
		t.Fatalf("default mode dropped a violable rule: %+v", rep)
	}

	cover := Analyze(set, Options{Cover: true})
	if got := strings.Join(cover.Dropped, ","); got != "weak" {
		t.Fatalf("cover dropped = %q, want weak", got)
	}
	// mutually-implied rules must not both drop under cover
	twinA := rule("twinA", "a", nil, lits("x.A = 1"))
	twinB := rule("twinB", "a", nil, lits("x.A = 1"))
	crep := Analyze(core.NewSet(twinA, twinB), Options{Cover: true})
	if len(crep.Dropped) != 1 {
		t.Fatalf("twins: dropped = %v, want exactly one", crep.Dropped)
	}
}

func TestUnknownIsConservative(t *testing.T) {
	// an exhausted branch budget degrades everything to Unknown: no core,
	// no drops, Unsat() false (strict mode cannot refuse).
	set := core.NewSet(phi5(), phi6())
	rep := Analyze(set, Options{Reason: reason.Options{MaxBranches: 1}})
	if rep.Satisfiable != reason.Unknown {
		t.Fatalf("satisfiable = %v, want unknown", rep.Satisfiable)
	}
	if rep.Unsat() || rep.Core != nil || len(rep.Dropped) != 0 {
		t.Fatalf("unknown verdict was not conservative: %+v", rep)
	}
}

func TestTimeoutDegradesToUnknown(t *testing.T) {
	set := core.NewSet(phi5(), phi6())
	rep := Analyze(set, Options{Timeout: time.Nanosecond})
	if rep.Satisfiable != reason.Unknown || rep.Core != nil || len(rep.Dropped) != 0 {
		t.Fatalf("expired deadline not conservative: sat=%v core=%v dropped=%v",
			rep.Satisfiable, rep.Core, rep.Dropped)
	}
}

func TestEmptySetAdmitted(t *testing.T) {
	rep := Analyze(core.NewSet(), Options{})
	if rep.Unsat() {
		t.Fatal("empty Σ must not be refused")
	}
	if rep.StronglySatisfiable != reason.Yes {
		t.Fatalf("strong(∅) = %v, want yes", rep.StronglySatisfiable)
	}
}

func TestSignatureStability(t *testing.T) {
	a := core.NewSet(phi5(), phi6())
	b := core.NewSet(phi5(), phi6())
	if Signature(a) != Signature(b) {
		t.Fatal("identical Σ, different signatures")
	}
	if Signature(a) == Signature(core.NewSet(phi5())) {
		t.Fatal("different Σ, same signature")
	}
	if got := Analyze(a, Options{}).Signature; got != Signature(a) {
		t.Fatalf("report signature %s != %s", got, Signature(a))
	}
}

func TestReportJSON(t *testing.T) {
	rep := Analyze(core.NewSet(phi5(), phi6()), Options{})
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"satisfiable":"no"`, `"core":`, `"minimal":true`, `"signature":"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("JSON missing %s:\n%s", want, raw)
		}
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Satisfiable != reason.No || back.Core == nil {
		t.Fatalf("roundtrip lost data: %+v", back)
	}
}

func TestNonLinearReported(t *testing.T) {
	// smuggle a degree-2 literal past core.New's validation (Theorem 3:
	// the analyses are undecidable there; the gate must surface the error)
	p := pattern.New()
	p.AddNode("x", "_")
	bad := &core.NGD{Name: "square", Pattern: p, Y: []core.Literal{
		core.Lit(expr.Mul(expr.V("x", "A"), expr.V("x", "A")), expr.Eq, expr.C(4)),
	}}
	rep := Analyze(core.NewSet(bad), Options{})
	if rep.Err == "" || rep.Satisfiable != reason.Unknown {
		t.Fatalf("non-linear Σ: err=%q sat=%v", rep.Err, rep.Satisfiable)
	}
	if rep.Unsat() {
		t.Fatal("non-linear Σ must not be refused as unsat")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"off": ModeOff, "warn": ModeWarn, "strict": ModeStrict} {
		m, err := ParseMode(s)
		if err != nil || m != want {
			t.Fatalf("ParseMode(%s) = %v, %v", s, m, err)
		}
		if m.String() != s {
			t.Fatalf("String() roundtrip: %s -> %s", s, m)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
