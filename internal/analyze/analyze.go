// Package analyze turns the §4 decision procedures of internal/reason into
// an operational static-analysis pass over Σ — the admission gate every
// ingest path (dsl load, session construction, ngdserve boot and recovery,
// ngdcheck) runs before a rule set is allowed near a graph.
//
// The pass has three stages:
//
//  1. Satisfiability triage: each rule's pattern is probed against the whole
//     set (reason.PatternConsistent, rules analyzed in parallel), which both
//     yields a per-rule verdict and decides Satisfiable(Σ) — Σ is
//     satisfiable iff some pattern's canonical instance is consistent.
//     StronglySatisfiable(Σ) runs alongside.
//  2. Unsat-core extraction: when Σ is unsatisfiable, deletion-based
//     shrinking over reason.Satisfiable reduces Σ to a minimal conflicting
//     subset; the core's literals are rendered — with a ground witness like
//     "7 + 7 = 11 fails" when constant propagation closes the literals — so
//     an operator sees which constraints cannot coexist.
//  3. Implication-based minimization: for each rule φ the pass decides
//     whether φ is unviolable (∅ ⊨ φ: no graph whatsoever can violate it)
//     and whether it is implied by the rest (Σ∖{φ} ⊨ φ). Unviolable rules
//     are dropped by default — Vio(Σ∖{φ}, G) = Vio(Σ, G) for every G, since
//     φ contributes no violations anywhere, so detection output is
//     bit-identical. Implied-but-violable rules are only *reported* (and
//     dropped under the explicit Cover option): violations carry rule
//     identity, so removing such a rule preserves the consistency verdict
//     (Vio = ∅ iff Vio = ∅) but not the violation list itself.
//
// Every stage is budgeted (reason.Options caps plus a wall-clock Timeout
// threaded through reason's context support) and degrades to Unknown —
// conservatively treated as "keep the rule / cannot refuse Σ" — never to a
// wrong verdict.
package analyze

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"ngd/internal/core"
	"ngd/internal/dsl"
	"ngd/internal/expr"
	"ngd/internal/reason"
)

// Mode selects how a caller acts on the report.
type Mode uint8

// Gate modes: Off skips the analysis entirely, Warn runs it and logs
// findings but always admits Σ, Strict refuses an unsatisfiable Σ.
const (
	ModeOff Mode = iota
	ModeWarn
	ModeStrict
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeWarn:
		return "warn"
	default:
		return "strict"
	}
}

// ParseMode parses the -analyze flag values off|warn|strict.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "warn":
		return ModeWarn, nil
	case "strict":
		return ModeStrict, nil
	}
	return ModeOff, fmt.Errorf("analyze: unknown mode %q (want off, warn or strict)", s)
}

// Options configure the pass.
type Options struct {
	// Reason passes budgets (and optionally a parent context) to the
	// decision procedures.
	Reason reason.Options
	// Timeout bounds the whole pass in wall-clock time; expired stages
	// report Unknown. Zero = no deadline.
	Timeout time.Duration
	// Parallelism caps concurrent per-rule probes (default GOMAXPROCS).
	Parallelism int
	// NoMinimize disables dropping unviolable rules (the analysis still
	// reports them).
	NoMinimize bool
	// Cover additionally drops implied-but-violable rules, computing a
	// minimal cover in the classical dependency-theory sense. This
	// preserves the consistency verdict (Vio = ∅ iff Vio = ∅) but not the
	// violation list, so it is opt-in.
	Cover bool
	// Lines maps rule names to source line numbers (dsl.ParseRulesLocated)
	// for diagnostics.
	Lines map[string]int
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RuleReport is the per-rule triage result.
type RuleReport struct {
	Name string `json:"name"`
	Line int    `json:"line,omitempty"`
	// Satisfiable: can this rule's pattern be materialized in a model of
	// the whole Σ? (reason.PatternConsistent against the full set.)
	Satisfiable reason.Verdict `json:"satisfiable"`
	// Implied: Σ∖{φ} ⊨ φ.
	Implied reason.Verdict `json:"implied"`
	// Unviolable: ∅ ⊨ φ — no graph can violate φ.
	Unviolable bool `json:"unviolable"`
	// Dropped: minimization removed this rule from the working set.
	Dropped bool `json:"dropped"`
	// Err records a per-rule analysis failure (e.g. non-linear literal).
	Err string `json:"error,omitempty"`
}

// UnsatCore is a conflicting subset of an unsatisfiable Σ.
type UnsatCore struct {
	// Rules names the conflicting subset, in Σ order.
	Rules []string `json:"rules"`
	// Literals renders each core rule's dependency, plus ground witnesses
	// ("7 + 7 = 11 fails") when constant propagation closes a literal.
	Literals []string `json:"literals"`
	// Minimal is false when a budget-exhausted (Unknown) probe forced the
	// shrinker to keep a rule it could not decide.
	Minimal bool `json:"minimal"`
}

// Report is the gate's structured output (JSON-stable: served by
// GET /rules/analysis).
type Report struct {
	// Signature identifies Σ: sha256 over the canonical DSL rendering.
	Signature string `json:"signature"`
	NumRules  int    `json:"num_rules"`

	Satisfiable         reason.Verdict `json:"satisfiable"`
	StronglySatisfiable reason.Verdict `json:"strongly_satisfiable"`

	// Core is present iff Satisfiable is No and Σ is non-empty.
	Core *UnsatCore `json:"core,omitempty"`

	Rules []RuleReport `json:"rules"`
	// Dropped lists rules removed by minimization, in Σ order.
	Dropped []string `json:"dropped,omitempty"`

	ElapsedMS int64 `json:"elapsed_ms"`
	// Err is a whole-set analysis failure (ErrNonLinear); verdicts are
	// Unknown when set.
	Err string `json:"error,omitempty"`
}

// Signature returns the Σ identity the report (and the serve-layer cache)
// is keyed by: sha256 over the canonical re-parseable DSL rendering.
func Signature(set *core.Set) string {
	h := sha256.Sum256([]byte(dsl.FormatRules(set)))
	return hex.EncodeToString(h[:])
}

// Unsat reports whether the gate should refuse Σ in strict mode: proven
// unsatisfiable and non-empty. (The empty set is "unsatisfiable" by the
// paper's convention — no pattern can match — but refusing it would reject
// a server with no rules registered yet.) Unknown never refuses.
func (r *Report) Unsat() bool {
	return r.Satisfiable == reason.No && r.NumRules > 0
}

// Minimized returns set with the dropped rules removed (set itself when
// nothing was dropped). Rule order is preserved.
func (r *Report) Minimized(set *core.Set) *core.Set {
	if len(r.Dropped) == 0 {
		return set
	}
	dropped := make(map[string]bool, len(r.Dropped))
	for _, n := range r.Dropped {
		dropped[n] = true
	}
	out := core.NewSet()
	for _, rule := range set.Rules {
		if !dropped[rule.Name] {
			out.Add(rule)
		}
	}
	return out
}

// Diagnostic renders the report for an operator (stderr of a strict boot,
// warn-mode logs). One line per finding; empty when Σ is clean.
func (r *Report) Diagnostic() string {
	var b strings.Builder
	if r.Err != "" {
		fmt.Fprintf(&b, "analysis error: %s\n", r.Err)
	}
	if r.Core != nil {
		min := "minimal "
		if !r.Core.Minimal {
			min = "non-minimal (budget-limited) "
		}
		fmt.Fprintf(&b, "Σ unsatisfiable: %score {%s}\n", min, strings.Join(r.Core.Rules, ", "))
		for _, l := range r.Core.Literals {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	for _, rr := range r.Rules {
		loc := ""
		if rr.Line > 0 {
			loc = fmt.Sprintf(" (line %d)", rr.Line)
		}
		switch {
		case rr.Err != "":
			fmt.Fprintf(&b, "rule %s%s: %s\n", rr.Name, loc, rr.Err)
		case rr.Dropped && rr.Unviolable:
			fmt.Fprintf(&b, "rule %s%s: unviolable (∅ ⊨ φ), dropped — detection output unchanged\n", rr.Name, loc)
		case rr.Dropped:
			fmt.Fprintf(&b, "rule %s%s: implied by the rest of Σ, dropped (cover mode)\n", rr.Name, loc)
		case rr.Unviolable:
			fmt.Fprintf(&b, "rule %s%s: unviolable (∅ ⊨ φ) — dead weight, minimization disabled\n", rr.Name, loc)
		case rr.Satisfiable == reason.No && r.Core == nil:
			fmt.Fprintf(&b, "rule %s%s: pattern cannot be materialized in any model of Σ\n", rr.Name, loc)
		case rr.Implied == reason.Yes && r.Core == nil:
			fmt.Fprintf(&b, "rule %s%s: implied by Σ∖{φ} (kept: violations carry rule identity)\n", rr.Name, loc)
		}
	}
	return b.String()
}

// MinimizeUnviolable drops exactly the rules φ with ∅ ⊨ φ — the
// Vio-preserving fragment of minimization: an unviolable rule contributes
// no violation in any graph, so Vio(Σ∖{φ}, G) = Vio(Σ, G) for every G. It
// returns the minimized set (set itself when nothing drops) plus the
// dropped names in Σ order. This is the light-weight entry the session
// runs at construction; the full Analyze triage is the serve/CLI gate.
// Probes that fail or exhaust their budget keep the rule (conservative).
func MinimizeUnviolable(set *core.Set, ropts reason.Options) (*core.Set, []string) {
	empty := core.NewSet()
	var dropped []string
	out := core.NewSet()
	for _, r := range set.Rules {
		v, err := reason.Implies(empty, r, ropts)
		if err == nil && v == reason.Yes {
			dropped = append(dropped, r.Name)
			continue
		}
		out.Add(r)
	}
	if len(dropped) == 0 {
		return set, nil
	}
	return out, dropped
}

// Analyze runs the full pass over Σ.
func Analyze(set *core.Set, opts Options) *Report {
	start := time.Now()
	rep := &Report{
		Signature: Signature(set),
		NumRules:  len(set.Rules),
		Rules:     make([]RuleReport, len(set.Rules)),
	}
	ropts := opts.Reason
	if opts.Timeout > 0 {
		parent := ropts.Ctx
		if parent == nil {
			parent = context.Background()
		}
		ctx, cancel := context.WithTimeout(parent, opts.Timeout)
		defer cancel()
		ropts.Ctx = ctx
	}
	for i, rule := range set.Rules {
		rep.Rules[i] = RuleReport{Name: rule.Name, Line: opts.Lines[rule.Name]}
	}

	// Stage 1: satisfiability triage. Per-rule pattern probes against the
	// whole set run in parallel; Satisfiable(Σ) is their disjunction.
	// StronglySatisfiable runs as one extra unit of the same pool.
	type probe struct {
		v   reason.Verdict
		err error
	}
	probes := make([]probe, len(set.Rules)+1)
	runParallel(len(probes), opts.parallelism(), func(i int) {
		if i == len(set.Rules) {
			v, err := reason.StronglySatisfiable(set, ropts)
			probes[i] = probe{v, err}
			return
		}
		v, err := reason.PatternConsistent(set, set.Rules[i], ropts)
		probes[i] = probe{v, err}
	})
	sat := reason.No
	for i := range set.Rules {
		p := probes[i]
		if p.err != nil {
			rep.Rules[i].Err = p.err.Error()
			rep.Rules[i].Satisfiable = reason.Unknown
			if rep.Err == "" {
				rep.Err = p.err.Error()
			}
			sat = reason.Unknown
			continue
		}
		rep.Rules[i].Satisfiable = p.v
		switch p.v {
		case reason.Yes:
			sat = reason.Yes
		case reason.Unknown:
			if sat == reason.No {
				sat = reason.Unknown
			}
		}
	}
	if len(set.Rules) > 0 && sat == reason.Yes {
		// any Yes wins even if another probe was Unknown
		rep.Satisfiable = reason.Yes
	} else {
		rep.Satisfiable = sat
	}
	strong := probes[len(set.Rules)]
	if strong.err != nil {
		rep.StronglySatisfiable = reason.Unknown
	} else {
		rep.StronglySatisfiable = strong.v
	}
	if rep.Err != "" {
		rep.ElapsedMS = time.Since(start).Milliseconds()
		return rep
	}

	switch {
	case rep.Unsat():
		rep.Core = extractCore(set, ropts, opts.Lines)
	case rep.Satisfiable == reason.Yes:
		minimize(set, rep, ropts, opts)
	}
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep
}

// runParallel executes fn(0..n-1) on up to par goroutines.
func runParallel(n, par int, fn func(int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// extractCore shrinks an unsatisfiable Σ to a minimal conflicting subset by
// deletion: drop φ whenever Σ′∖{φ} stays unsatisfiable. Probes that return
// Unknown keep their rule and mark the core non-minimal.
func extractCore(set *core.Set, ropts reason.Options, lines map[string]int) *UnsatCore {
	kept := append([]*core.NGD(nil), set.Rules...)
	minimal := true
	for i := 0; i < len(kept); {
		if len(kept) == 1 {
			break // a single self-contradictory rule is its own core
		}
		cand := core.NewSet(append(append([]*core.NGD(nil), kept[:i]...), kept[i+1:]...)...)
		v, err := reason.Satisfiable(cand, ropts)
		switch {
		case err == nil && v == reason.No:
			kept = append(kept[:i], kept[i+1:]...) // still unsat without it: not needed
		case err == nil && v == reason.Yes:
			i++ // needed for the conflict
		default:
			minimal = false
			i++
		}
	}
	c := &UnsatCore{Minimal: minimal}
	for _, r := range kept {
		c.Rules = append(c.Rules, r.Name)
		c.Literals = append(c.Literals, renderDependency(r, lines))
	}
	c.Literals = append(c.Literals, groundWitnesses(kept)...)
	return c
}

// renderDependency prints rule φ as "name (line N): X → Y".
func renderDependency(r *core.NGD, lines map[string]int) string {
	var b strings.Builder
	b.WriteString(r.Name)
	if n := lines[r.Name]; n > 0 {
		fmt.Fprintf(&b, " (line %d)", n)
	}
	b.WriteString(": ")
	if len(r.X) == 0 {
		b.WriteString("∅")
	}
	for i, l := range r.X {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(l.String())
	}
	b.WriteString(" → ")
	for i, l := range r.Y {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(l.String())
	}
	return b.String()
}

// groundWitnesses attempts the cheap constant-propagation witness: when
// every core rule is an unconditional single-node rule, x.A = c consequences
// bind attributes, and any other literal that closes under the substitution
// and evaluates false is rendered with the constants in place — the paper's
// "7 + 7 ≠ 11" style explanation for Example 5.
func groundWitnesses(rules []*core.NGD) []string {
	for _, r := range rules {
		if len(r.Pattern.Nodes) != 1 || len(r.X) != 0 {
			return nil
		}
	}
	// collect x.A = c bindings by attribute
	bind := map[string]int64{}
	for _, r := range rules {
		for _, l := range r.Y {
			if l.Op != expr.Eq {
				continue
			}
			switch {
			case l.L.Op == expr.OpVar && l.R.Op == expr.OpConst:
				bind[l.L.Attr] = l.R.Const
			case l.R.Op == expr.OpVar && l.L.Op == expr.OpConst:
				bind[l.R.Attr] = l.L.Const
			}
		}
	}
	if len(bind) == 0 {
		return nil
	}
	var out []string
	for _, r := range rules {
		for _, l := range r.Y {
			ls, okL := substitute(l.L, bind)
			rs, okR := substitute(l.R, bind)
			if !okL || !okR || (ground(l.L) && ground(l.R)) {
				continue // open terms remain, or nothing was substituted
			}
			holds, err := evalGround(ls, l.Op, rs)
			if err == nil && !holds {
				out = append(out, fmt.Sprintf("witness: %s fails under %s",
					expr.FormatComparison(ls, l.Op, rs), l))
			}
		}
	}
	return out
}

// substitute replaces bound x.A terms with constants; ok is false when an
// unbound term remains (the result would not be ground).
func substitute(e *expr.Expr, bind map[string]int64) (*expr.Expr, bool) {
	switch e.Op {
	case expr.OpVar:
		c, ok := bind[e.Attr]
		if !ok {
			return e, false
		}
		return expr.C(c), true
	case expr.OpConst, expr.OpStr:
		return e, true
	}
	c := e.Clone()
	okL, okR := true, true
	if e.L != nil {
		c.L, okL = substitute(e.L, bind)
	}
	if e.R != nil {
		c.R, okR = substitute(e.R, bind)
	}
	return c, okL && okR
}

// ground reports whether e contains no x.A terms.
func ground(e *expr.Expr) bool {
	open := false
	e.Terms(func(string, string) { open = true })
	return !open
}

// evalGround evaluates a term-free comparison exactly.
func evalGround(l *expr.Expr, op expr.Cmp, r *expr.Expr) (bool, error) {
	lf, err := expr.Linearize(l)
	if err != nil {
		return false, err
	}
	rf, err := expr.Linearize(r)
	if err != nil {
		return false, err
	}
	if len(lf.Coeffs) != 0 || len(rf.Coeffs) != 0 {
		return false, fmt.Errorf("analyze: not ground")
	}
	cmp := lf.Const.Cmp(rf.Const)
	switch op {
	case expr.Eq:
		return cmp == 0, nil
	case expr.Ne:
		return cmp != 0, nil
	case expr.Lt:
		return cmp < 0, nil
	case expr.Le:
		return cmp <= 0, nil
	case expr.Gt:
		return cmp > 0, nil
	default:
		return cmp >= 0, nil
	}
}

// minimize runs stage 3 on a satisfiable Σ: parallel unviolability and
// implication probes, then the drop decision.
func minimize(set *core.Set, rep *Report, ropts reason.Options, opts Options) {
	empty := core.NewSet()
	type probe struct {
		unviolable reason.Verdict
		implied    reason.Verdict
	}
	probes := make([]probe, len(set.Rules))
	runParallel(len(set.Rules), opts.parallelism(), func(i int) {
		r := set.Rules[i]
		uv, err := reason.Implies(empty, r, ropts)
		if err != nil {
			uv = reason.Unknown
		}
		rest := without(set, i)
		im, err := reason.Implies(rest, r, ropts)
		if err != nil {
			im = reason.Unknown
		}
		probes[i] = probe{unviolable: uv, implied: im}
	})
	for i := range set.Rules {
		rep.Rules[i].Unviolable = probes[i].unviolable == reason.Yes
		rep.Rules[i].Implied = probes[i].implied
	}

	// Drop decision. Default: unviolable rules only (Vio-preserving for
	// every G). Cover: greedy classical cover — recheck each candidate
	// against the shrinking working set so mutually-implied rules are not
	// both dropped.
	if opts.NoMinimize {
		return
	}
	working := append([]*core.NGD(nil), set.Rules...)
	drop := func(i int) {
		rep.Rules[i].Dropped = true
		rep.Dropped = append(rep.Dropped, set.Rules[i].Name)
		for j, r := range working {
			if r == set.Rules[i] {
				working = append(working[:j], working[j+1:]...)
				break
			}
		}
	}
	for i := range set.Rules {
		if rep.Rules[i].Unviolable {
			drop(i)
		}
	}
	if !opts.Cover {
		return
	}
	for i := range set.Rules {
		if rep.Rules[i].Dropped || rep.Rules[i].Implied != reason.Yes {
			continue
		}
		rest := core.NewSet()
		for _, r := range working {
			if r != set.Rules[i] {
				rest.Add(r)
			}
		}
		v, err := reason.Implies(rest, set.Rules[i], ropts)
		if err == nil && v == reason.Yes {
			drop(i)
		}
	}
}

// without returns Σ∖{rules[i]}.
func without(set *core.Set, i int) *core.Set {
	out := core.NewSet()
	for j, r := range set.Rules {
		if j != i {
			out.Add(r)
		}
	}
	return out
}
