package detect

import (
	"sync"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/plan"
)

// LitEval evaluates a rule's literals level-by-level along a plan: level 0
// covers literals whose variables are all pre-bound (update pivots), level
// k+1 those completed by plan step k. It is the literal-pruning engine of
// §6.2 step (3), shared by the sequential Searcher and the parallel workers
// (which carry explicit work units instead of a recursion stack).
//
// A LitEval is immutable after construction and safe for concurrent use;
// per-call state lives in the caller's partial solution and ySat counter.
type LitEval struct {
	Rule  *core.NGD
	G     graph.View
	sched litSchedule

	// bindings recycles evalBinding closures across EvalLevel calls: the
	// expression evaluator takes an expr.Binding func value, and capturing
	// the partial solution in a fresh closure per call was the single
	// largest allocation source on the detect hot path. A pooled binding's
	// partial slot is swapped in per call instead; the pool keeps LitEval
	// safe for concurrent use without per-worker state.
	bindings sync.Pool
}

// evalBinding is one recycled closure: fn reads the current partial through
// the struct so rebinding is a field store, not a new closure.
type evalBinding struct {
	partial []graph.NodeID
	fn      expr.Binding
}

// NewLitEval builds the evaluation schedule of rule c along plan.
//
// X-literals that were compiled into the plan's candidate filters are
// dropped from the schedule when their pattern node is bound by a plan
// step: the matcher already checks the predicate on every candidate it
// generates for that node, so re-evaluating the literal would double the
// work on exactly the hot path pruning targets. Literals on *pre-bound*
// nodes (update pivots) stay scheduled at level 0 — pivots never pass
// through candidate generation.
func NewLitEval(g graph.View, c *plan.Compiled, pl *match.Plan) *LitEval {
	var skipX []bool
	if pl.Filters != nil && len(c.FilterLits) > 0 {
		skipX = make([]bool, len(c.Rule.X))
		for _, fl := range c.FilterLits {
			preBound := false
			for _, b := range pl.Bound {
				if b == fl.Node {
					preBound = true
					break
				}
			}
			if !preBound {
				skipX[fl.Lit] = true
			}
		}
	}
	le := &LitEval{Rule: c.Rule, G: g, sched: buildSchedule(c.Rule, pl, skipX)}
	le.bindings.New = func() any { return le.newBinding() }
	return le
}

// NumY reports |Y|; a match violates iff ySat < NumY at completion.
func (le *LitEval) NumY() int { return len(le.Rule.Y) }

// HasLits reports whether any literal is scheduled at level lv (callers can
// skip binding construction otherwise).
func (le *LitEval) HasLits(lv int) bool {
	return len(le.sched.xAt[lv]) > 0 || len(le.sched.yAt[lv]) > 0
}

// Levels reports the number of levels (len(plan.Steps)+1).
func (le *LitEval) Levels() int { return len(le.sched.xAt) }

func (le *LitEval) newBinding() *evalBinding {
	eb := &evalBinding{}
	p := le.Rule.Pattern
	// read le.G per call rather than capturing it: Searcher.Rebind swaps the
	// view under a cached searcher between runs
	eb.fn = func(variable, attr string) (graph.Value, bool) {
		partial := eb.partial
		idx := p.VarIndex(variable)
		if idx < 0 || idx >= len(partial) || partial[idx] == match.Unbound {
			return graph.Value{}, false
		}
		g := le.G
		a := g.Symbols().LookupAttr(attr)
		if a < 0 {
			return graph.Value{}, false
		}
		v := g.Attr(partial[idx], a)
		return v, v.Valid()
	}
	return eb
}

// EvalLevel evaluates the literals scheduled at level lv against partial.
// It returns prune=true when the branch cannot yield a violation (an
// X-literal failed, or all |Y| literals are now known satisfied), and the
// updated ySat count otherwise.
func (le *LitEval) EvalLevel(lv int, partial []graph.NodeID, ySat int) (prune bool, newYSat int) {
	xs, ys := le.sched.xAt[lv], le.sched.yAt[lv]
	if len(xs) == 0 && len(ys) == 0 {
		if ySat == len(le.Rule.Y) {
			return true, ySat
		}
		return false, ySat
	}
	eb := le.bindings.Get().(*evalBinding)
	eb.partial = partial
	prune, newYSat = le.evalWith(eb.fn, xs, ys, ySat)
	eb.partial = nil
	le.bindings.Put(eb)
	return prune, newYSat
}

func (le *LitEval) evalWith(b expr.Binding, xs, ys []int, ySat int) (bool, int) {
	for _, i := range xs {
		if !le.Rule.X[i].Satisfied(b) {
			return true, ySat
		}
	}
	for _, i := range ys {
		if le.Rule.Y[i].Satisfied(b) {
			ySat++
		}
	}
	return ySat == len(le.Rule.Y), ySat
}
