package detect

import (
	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/plan"
)

// LitEval evaluates a rule's literals level-by-level along a plan: level 0
// covers literals whose variables are all pre-bound (update pivots), level
// k+1 those completed by plan step k. It is the literal-pruning engine of
// §6.2 step (3), shared by the sequential Searcher and the parallel workers
// (which carry explicit work units instead of a recursion stack).
//
// A LitEval is immutable after construction and safe for concurrent use;
// per-call state lives in the caller's partial solution and ySat counter.
type LitEval struct {
	Rule  *core.NGD
	G     graph.View
	sched litSchedule
}

// NewLitEval builds the evaluation schedule of rule c along plan.
//
// X-literals that were compiled into the plan's candidate filters are
// dropped from the schedule when their pattern node is bound by a plan
// step: the matcher already checks the predicate on every candidate it
// generates for that node, so re-evaluating the literal would double the
// work on exactly the hot path pruning targets. Literals on *pre-bound*
// nodes (update pivots) stay scheduled at level 0 — pivots never pass
// through candidate generation.
func NewLitEval(g graph.View, c *plan.Compiled, pl *match.Plan) *LitEval {
	var skipX []bool
	if pl.Filters != nil && len(c.FilterLits) > 0 {
		skipX = make([]bool, len(c.Rule.X))
		for _, fl := range c.FilterLits {
			preBound := false
			for _, b := range pl.Bound {
				if b == fl.Node {
					preBound = true
					break
				}
			}
			if !preBound {
				skipX[fl.Lit] = true
			}
		}
	}
	return &LitEval{Rule: c.Rule, G: g, sched: buildSchedule(c.Rule, pl, skipX)}
}

// NumY reports |Y|; a match violates iff ySat < NumY at completion.
func (le *LitEval) NumY() int { return len(le.Rule.Y) }

// HasLits reports whether any literal is scheduled at level lv (callers can
// skip binding construction otherwise).
func (le *LitEval) HasLits(lv int) bool {
	return len(le.sched.xAt[lv]) > 0 || len(le.sched.yAt[lv]) > 0
}

// Levels reports the number of levels (len(plan.Steps)+1).
func (le *LitEval) Levels() int { return len(le.sched.xAt) }

func (le *LitEval) binding(partial []graph.NodeID) expr.Binding {
	syms := le.G.Symbols()
	p := le.Rule.Pattern
	return func(variable, attr string) (graph.Value, bool) {
		idx := p.VarIndex(variable)
		if idx < 0 || idx >= len(partial) || partial[idx] == match.Unbound {
			return graph.Value{}, false
		}
		a := syms.LookupAttr(attr)
		if a < 0 {
			return graph.Value{}, false
		}
		v := le.G.Attr(partial[idx], a)
		return v, v.Valid()
	}
}

// EvalLevel evaluates the literals scheduled at level lv against partial.
// It returns prune=true when the branch cannot yield a violation (an
// X-literal failed, or all |Y| literals are now known satisfied), and the
// updated ySat count otherwise.
func (le *LitEval) EvalLevel(lv int, partial []graph.NodeID, ySat int) (prune bool, newYSat int) {
	xs, ys := le.sched.xAt[lv], le.sched.yAt[lv]
	if len(xs) == 0 && len(ys) == 0 {
		if ySat == len(le.Rule.Y) {
			return true, ySat
		}
		return false, ySat
	}
	b := le.binding(partial)
	for _, i := range xs {
		if !le.Rule.X[i].Satisfied(b) {
			return true, ySat
		}
	}
	for _, i := range ys {
		if le.Rule.Y[i].Satisfied(b) {
			ySat++
		}
	}
	return ySat == len(le.Rule.Y), ySat
}
