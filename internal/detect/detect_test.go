package detect

import (
	"testing"

	"ngd/internal/core"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/paperdata"
	"ngd/internal/pattern"
)

// TestPaperExample4 pins Example 4 of the paper: G1 ⊭ φ1, G2 ⊭ φ2,
// G3 ⊭ φ3, G4 ⊭ φ4.
func TestPaperExample4(t *testing.T) {
	g1, _ := paperdata.G1()
	if Validate(g1, core.NewSet(paperdata.Phi1(365))) {
		t.Error("G1 should violate φ1 (destroyed before created)")
	}
	g2, _ := paperdata.G2()
	if Validate(g2, core.NewSet(paperdata.Phi2())) {
		t.Error("G2 should violate φ2 (600+722 ≠ 1572)")
	}
	if Validate(paperdata.G3(), core.NewSet(paperdata.Phi3())) {
		t.Error("G3 should violate φ3 (rank order inverted)")
	}
	g4, _, _ := paperdata.G4()
	if Validate(g4, core.NewSet(paperdata.Phi4(1, 1, 10000))) {
		t.Error("G4 should violate φ4 (fake account)")
	}
}

func TestPhi4ViolationIdentifiesFake(t *testing.T) {
	g4, realAcc, fakeAcc := paperdata.G4()
	rule := paperdata.Phi4(1, 1, 10000)
	res := Dect(g4, core.NewSet(rule), Options{})
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want exactly 1", len(res.Violations))
	}
	m := res.Violations[0].Match
	xi := rule.Pattern.VarIndex("x")
	yi := rule.Pattern.VarIndex("y")
	if m[xi] != realAcc || m[yi] != fakeAcc {
		t.Errorf("violation binds x=%d y=%d, want x=%d (real) y=%d (fake)", m[xi], m[yi], realAcc, fakeAcc)
	}
}

func TestConsistentGraphValidates(t *testing.T) {
	// fix G2's population: 600 + 722 = 1322
	g2, area := paperdata.G2()
	// find the populationTotal node and repair it
	totalLbl := g2.Symbols().LookupLabel("populationTotal")
	for _, h := range g2.Out(area) {
		if h.Label == totalLbl {
			g2.SetAttr(h.To, "val", graph.Int(1322))
		}
	}
	if !Validate(g2, core.NewSet(paperdata.Phi2())) {
		t.Error("repaired G2 should satisfy φ2")
	}
}

func TestMergedGraphAllViolations(t *testing.T) {
	g := paperdata.MergedGraph()
	res := Dect(g, paperdata.AllRules(), Options{})
	byRule := map[string]int{}
	for _, v := range res.Violations {
		byRule[v.Rule.Name]++
	}
	for _, name := range []string{"phi1", "phi2", "phi3", "phi4"} {
		if byRule[name] == 0 {
			t.Errorf("merged graph: no violation found for %s (got %v)", name, byRule)
		}
	}
}

// TestMissingAttributeSemantics pins §3: a literal with a missing attribute
// is not satisfied. If it is in X, the match never violates; if it is in Y
// (and X holds), the match violates.
func TestMissingAttributeSemantics(t *testing.T) {
	g := graph.New()
	v := g.AddNode("n")
	g.SetAttr(v, "a", graph.Int(1))
	// no attribute "b"

	p1 := pattern.New()
	p1.AddNode("x", "n")
	// X references missing attr: no violation even though Y is false
	r1 := core.MustNew("xmiss", p1,
		[]core.Literal{core.MustLiteral("x.b = 1")},
		[]core.Literal{core.MustLiteral("x.a = 99")})
	if !Validate(g, core.NewSet(r1)) {
		t.Error("missing attribute in X must block violation")
	}

	p2 := pattern.New()
	p2.AddNode("x", "n")
	// Y references missing attr and X holds: violation
	r2 := core.MustNew("ymiss", p2,
		[]core.Literal{core.MustLiteral("x.a = 1")},
		[]core.Literal{core.MustLiteral("x.b = 1")})
	if Validate(g, core.NewSet(r2)) {
		t.Error("missing attribute in Y must be a violation when X holds")
	}
}

func TestEmptyXAndEmptyY(t *testing.T) {
	g := graph.New()
	v := g.AddNode("n")
	g.SetAttr(v, "a", graph.Int(5))

	p := pattern.New()
	p.AddNode("x", "n")
	// ∅ → x.a = 5 holds
	ok := core.MustNew("okrule", p, nil, []core.Literal{core.MustLiteral("x.a = 5")})
	if !Validate(g, core.NewSet(ok)) {
		t.Error("∅ → true rule should validate")
	}
	// ∅ → x.a = 6 violated
	p2 := pattern.New()
	p2.AddNode("x", "n")
	bad := core.MustNew("badrule", p2, nil, []core.Literal{core.MustLiteral("x.a = 6")})
	if Validate(g, core.NewSet(bad)) {
		t.Error("∅ → false rule should be violated")
	}
	// X → ∅ can never be violated (empty conjunction is true)
	p3 := pattern.New()
	p3.AddNode("x", "n")
	vac := core.MustNew("vacuous", p3, []core.Literal{core.MustLiteral("x.a = 5")}, nil)
	if !Validate(g, core.NewSet(vac)) {
		t.Error("X → ∅ must hold vacuously")
	}
}

func TestDectLimit(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		v := g.AddNode("n")
		g.SetAttr(v, "a", graph.Int(int64(i)))
	}
	p := pattern.New()
	p.AddNode("x", "n")
	r := core.MustNew("r", p, nil, []core.Literal{core.MustLiteral("x.a < 0")})
	res := Dect(g, core.NewSet(r), Options{Limit: 3})
	if len(res.Violations) != 3 {
		t.Errorf("limit: got %d violations, want 3", len(res.Violations))
	}
}

// TestLiteralPruning checks that X-literal pruning does not change results,
// only work: run with a rule whose X is selective and verify counts against
// a rule-free full enumeration bound.
func TestLiteralPruning(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 300, 42)
	rules := core.NewSet(gen.SumRule(0, 0), gen.OrderRule(1, 1), gen.FlagRule(2, 2))
	res := Dect(ds.G, rules, Options{})
	// cross-check each reported violation by direct semantics
	for _, v := range res.Violations {
		if !v.Rule.Violated(ds.G, v.Match) {
			t.Fatalf("reported non-violation: %v", v)
		}
	}
	// and ensure no duplicates
	seen := map[string]bool{}
	for _, v := range res.Violations {
		if seen[v.Key()] {
			t.Fatalf("duplicate violation %v", v)
		}
		seen[v.Key()] = true
	}
}

// TestGeneratedErrorsCaught: every injected sum/order/flag error must be
// reported by the corresponding archetype rule (Exp-5 ground-truth check).
func TestGeneratedErrorsCaught(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 500, 7)
	if len(ds.Errors) == 0 {
		t.Skip("no injected errors at this size/seed")
	}
	rules := gen.EffectivenessRules(gen.YAGO2)
	res := Dect(ds.G, rules, Options{})
	caught := map[graph.NodeID]bool{}
	for _, v := range res.Violations {
		// entity node is variable x (or x0/x1... for chain rules)
		for i, pv := range v.Rule.Pattern.Nodes {
			if pv.Label != "integer" {
				caught[v.Match[i]] = true
			}
		}
	}
	for _, e := range ds.Errors {
		if e.Kind == gen.ErrScore {
			continue // drift errors are caught only if the entity has edges
		}
		if !caught[e.Entity] {
			t.Errorf("injected %v error on entity %d not caught", e.Kind, e.Entity)
		}
	}
}
