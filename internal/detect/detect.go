// Package detect implements batch error detection with NGDs: Dect, the
// sequential counterpart of the parallel batch algorithm the paper extends
// from GFDs (§5.1). Given Σ and G it computes Vio(Σ,G), the set of matches
// h(x̄) with h ⊨ X and h ⊭ Y for some φ = Q[x̄](X → Y) ∈ Σ.
//
// The violation search prunes with literals as soon as their variables are
// instantiated (paper §6.2 step (3)): a falsified X-literal cuts the branch
// (the match cannot satisfy the precondition); once every Y-literal has
// evaluated true the branch is cut too (the match cannot violate).
package detect

import (
	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/pattern"
)

// Options tune detection.
type Options struct {
	// Limit stops after this many violations (0 = unlimited).
	Limit int
	// NoPruning disables index-backed candidate pruning (§6.2 step (3)),
	// falling back to full label-bucket scans. Pruning never changes the
	// violation set — the toggle exists for differential tests and for
	// measuring the pruning speedup.
	NoPruning bool
}

// filterLit records that X-literal lit was compiled into a candidate
// predicate on pattern node node (so LitEval can avoid re-evaluating it
// when the node's candidates were already filter-checked).
type filterLit struct {
	lit, node int
}

// Compiled bundles a rule with its pattern compiled against a graph's
// symbols, plus the candidate filters derived from its precondition
// literals (nil when no X-literal has the single-node constant shape).
type Compiled struct {
	Rule       *core.NGD
	CP         *pattern.Compiled
	Filters    match.Filters
	filterLits []filterLit
}

// CompileRule resolves the rule's pattern against syms and compiles the
// rule's X-literals into per-pattern-node candidate predicates. Only
// precondition literals prune: a candidate falsifying one can never
// satisfy X, whereas a falsified consequence literal is exactly what a
// violation needs.
func CompileRule(r *core.NGD, syms *graph.Symbols) *Compiled {
	c := &Compiled{Rule: r, CP: pattern.Compile(r.Pattern, syms)}
	f := match.NewFilters(len(r.Pattern.Nodes))
	for i, l := range r.X {
		if node := f.AddLiteral(r.Pattern, syms, l.L, l.Op, l.R); node >= 0 {
			c.filterLits = append(c.filterLits, filterLit{lit: i, node: node})
		}
	}
	if len(c.filterLits) > 0 {
		c.Filters = f
	}
	return c
}

// BuildPlan constructs the matching plan for the rule over g: the pruned,
// index-seeded plan by default, or the bare label-count plan when pruning
// is disabled.
func (c *Compiled) BuildPlan(g graph.View, bound []int, noPruning bool) *match.Plan {
	if noPruning {
		return match.BuildPlan(c.CP, bound, match.GraphSelectivity(g, c.CP))
	}
	return match.BuildPrunedPlan(g, c.CP, bound, c.Filters)
}

// litSchedule assigns each literal to the earliest plan step at which all of
// its variables are bound (-1 = evaluable from the pre-bound nodes alone).
type litSchedule struct {
	xAt [][]int // xAt[k+1] = X-literal indices evaluable after step k (xAt[0]: pre-bound)
	yAt [][]int
}

// buildSchedule places literals at their earliest evaluable level. skipX
// marks X-literal indices to leave out entirely — those already enforced
// per candidate by the plan's filters (see NewLitEval).
func buildSchedule(rule *core.NGD, plan *match.Plan, skipX []bool) litSchedule {
	n := len(plan.Steps)
	sched := litSchedule{
		xAt: make([][]int, n+1),
		yAt: make([][]int, n+1),
	}
	bound := make(map[int]int, len(rule.Pattern.Nodes)) // node idx -> step+1
	for _, b := range plan.Bound {
		bound[b] = 0
	}
	for k, st := range plan.Steps {
		bound[st.Node] = k + 1
	}
	place := func(lits []core.Literal, at [][]int, skip []bool) {
		for i, l := range lits {
			if skip != nil && skip[i] {
				continue
			}
			latest := 0
			for _, v := range l.Vars() {
				idx := rule.Pattern.VarIndex(v)
				if s, ok := bound[idx]; ok && s > latest {
					latest = s
				}
			}
			at[latest] = append(at[latest], i)
		}
	}
	place(rule.X, sched.xAt, skipX)
	place(rule.Y, sched.yAt, nil)
	return sched
}

// Searcher runs violation enumeration for one rule over one view, with
// pruning. It is reused by the incremental algorithms with pre-bound pivots.
type Searcher struct {
	G    graph.View
	C    *Compiled
	Plan *match.Plan

	le   *LitEval
	ySat []int // per-depth cumulative count of satisfied Y literals
	m    *match.Matcher
}

// NewSearcher prepares a violation search for rule c over g using plan.
func NewSearcher(g graph.View, c *Compiled, plan *match.Plan) *Searcher {
	s := &Searcher{G: g, C: c, Plan: plan, le: NewLitEval(g, c, plan)}
	s.ySat = make([]int, len(plan.Steps)+1)
	return s
}

// Run enumerates violations extending partial (pre-bound nodes already set,
// and already verified with match.VerifyBound by the caller when pivots are
// used). emit returning false stops the search. It returns the work
// counters of the underlying matcher.
func (s *Searcher) Run(partial []graph.NodeID, emit func(core.Match) bool) match.Counters {
	// An empty Y is the empty conjunction — true — so nothing can violate.
	if s.le.NumY() == 0 {
		return match.Counters{}
	}

	prune, ySat0 := s.le.EvalLevel(0, partial, 0)
	if prune {
		return match.Counters{}
	}
	s.ySat[0] = ySat0

	hooks := match.Hooks{
		OnExtend: func(k int, p []graph.NodeID) bool {
			prune, ySat := s.le.EvalLevel(k+1, p, s.ySat[k])
			if prune {
				return false
			}
			s.ySat[k+1] = ySat
			return true
		},
	}
	s.m = match.NewMatcher(s.G, s.Plan, hooks)
	s.m.Run(partial, func(p []graph.NodeID) bool {
		// all X held (pruned otherwise); violation iff some Y failed
		if s.ySat[len(s.Plan.Steps)] < s.le.NumY() {
			return emit(core.Match(append([]graph.NodeID(nil), p...)))
		}
		return true
	})
	return s.m.Stat
}

// Result of a batch detection run.
type Result struct {
	Violations []core.Violation
	Counters   match.Counters
}

// Dect computes Vio(Σ, G) sequentially (the yardstick batch algorithm).
func Dect(g graph.View, rules *core.Set, opts Options) *Result {
	res := &Result{}
	for _, r := range rules.Rules {
		c := CompileRule(r, g.Symbols())
		plan := c.BuildPlan(g, nil, opts.NoPruning)
		s := NewSearcher(g, c, plan)
		partial := match.NewPartial(len(r.Pattern.Nodes))
		stat := s.Run(partial, func(m core.Match) bool {
			res.Violations = append(res.Violations, core.Violation{Rule: r, Match: m})
			return opts.Limit == 0 || len(res.Violations) < opts.Limit
		})
		res.Counters.Candidates += stat.Candidates
		res.Counters.Checks += stat.Checks
		res.Counters.Matches += stat.Matches
		if opts.Limit > 0 && len(res.Violations) >= opts.Limit {
			break
		}
	}
	return res
}

// Validate decides G ⊨ Σ (the validation problem, Corollary 4): true iff
// Vio(Σ,G) = ∅.
func Validate(g graph.View, rules *core.Set) bool {
	r := Dect(g, rules, Options{Limit: 1})
	return len(r.Violations) == 0
}

// VioKeySet builds the dedup key set of a violation list (for diffing in
// tests and the incremental equivalence checks).
func VioKeySet(vs []core.Violation) map[string]core.Violation {
	m := make(map[string]core.Violation, len(vs))
	for _, v := range vs {
		m[v.Key()] = v
	}
	return m
}
