// Package detect implements batch error detection with NGDs: Dect, the
// sequential counterpart of the parallel batch algorithm the paper extends
// from GFDs (§5.1). Given Σ and G it computes Vio(Σ,G), the set of matches
// h(x̄) with h ⊨ X and h ⊭ Y for some φ = Q[x̄](X → Y) ∈ Σ.
//
// Rule compilation and matching-order planning live in internal/plan: a
// shared *plan.Program compiles Σ once, serves cost-based plans from a
// churn-invalidated cache, and arranges overlapping rules into a prefix
// forest that Dect enumerates once per shared prefix (shared.go). This
// package executes those plans: the literal schedule (LitEval), the
// single-rule violation Searcher the incremental algorithms reuse with
// pre-bound pivots, and the shared-prefix batch searcher.
//
// The violation search prunes with literals as soon as their variables are
// instantiated (paper §6.2 step (3)): a falsified X-literal cuts the branch
// (the match cannot satisfy the precondition); once every Y-literal has
// evaluated true the branch is cut too (the match cannot violate).
package detect

import (
	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/plan"
)

// Options tune detection.
type Options struct {
	// Limit stops after this many violations (0 = unlimited).
	Limit int
	// NoPruning disables index-backed candidate pruning (§6.2 step (3)),
	// falling back to full label-bucket scans. Pruning never changes the
	// violation set — the toggle exists for differential tests and for
	// measuring the pruning speedup.
	NoPruning bool
	// Program is the shared rule program to plan with. nil builds a
	// private one for this call (one-shot detection); long-lived callers
	// (sessions, the serving daemon, benchmarks replaying batches) pass
	// their own so compilation and planning amortize across runs.
	Program *plan.Program
}

// program resolves the effective rule program for one detector invocation.
func (o Options) program(g graph.View, rules *core.Set) *plan.Program {
	if o.Program != nil {
		return o.Program
	}
	return plan.New(g, rules, plan.Options{NoPruning: o.NoPruning})
}

// Result of a batch detection run.
type Result struct {
	Violations []core.Violation
	Counters   match.Counters
}

// Dect computes Vio(Σ, G) sequentially (the yardstick batch algorithm).
// Rules whose plans share a structural prefix are enumerated together: the
// shared steps' candidate scans and edge checks run once, and each rule's
// literal schedule is layered on top (see RunShared). Programs built with
// NoSharing fall back to one independent search per rule.
func Dect(g graph.View, rules *core.Set, opts Options) *Result {
	prog := opts.program(g, rules)
	res := &Result{}
	if prog.Options().NoSharing {
		dectPerRule(g, rules, prog, opts, res)
		return res
	}
	sh := prog.ShareFor(g, rules, opts.NoPruning)
	res.Counters = RunShared(g, sh, func(r *core.NGD, m core.Match) bool {
		res.Violations = append(res.Violations, core.Violation{Rule: r, Match: m.Clone()})
		return opts.Limit == 0 || len(res.Violations) < opts.Limit
	})
	return res
}

// dectPerRule is the unshared batch loop: one searcher per rule.
func dectPerRule(g graph.View, rules *core.Set, prog *plan.Program, opts Options, res *Result) {
	for _, r := range rules.Rules {
		c, pl := prog.PlanFor(g, r, nil, opts.NoPruning)
		s := NewSearcher(g, c, pl)
		partial := match.NewPartial(len(r.Pattern.Nodes))
		stat := s.Run(partial, func(m core.Match) bool {
			res.Violations = append(res.Violations, core.Violation{Rule: r, Match: m.Clone()})
			return opts.Limit == 0 || len(res.Violations) < opts.Limit
		})
		res.Counters.Candidates += stat.Candidates
		res.Counters.Checks += stat.Checks
		res.Counters.Matches += stat.Matches
		if opts.Limit > 0 && len(res.Violations) >= opts.Limit {
			break
		}
	}
}

// litSchedule assigns each literal to the earliest plan step at which all of
// its variables are bound (-1 = evaluable from the pre-bound nodes alone).
type litSchedule struct {
	xAt [][]int // xAt[k+1] = X-literal indices evaluable after step k (xAt[0]: pre-bound)
	yAt [][]int
}

// buildSchedule places literals at their earliest evaluable level. skipX
// marks X-literal indices to leave out entirely — those already enforced
// per candidate by the plan's filters (see NewLitEval).
func buildSchedule(rule *core.NGD, pl *match.Plan, skipX []bool) litSchedule {
	n := len(pl.Steps)
	sched := litSchedule{
		xAt: make([][]int, n+1),
		yAt: make([][]int, n+1),
	}
	bound := make(map[int]int, len(rule.Pattern.Nodes)) // node idx -> step+1
	for _, b := range pl.Bound {
		bound[b] = 0
	}
	for k, st := range pl.Steps {
		bound[st.Node] = k + 1
	}
	place := func(lits []core.Literal, at [][]int, skip []bool) {
		for i, l := range lits {
			if skip != nil && skip[i] {
				continue
			}
			latest := 0
			for _, v := range l.Vars() {
				idx := rule.Pattern.VarIndex(v)
				if s, ok := bound[idx]; ok && s > latest {
					latest = s
				}
			}
			at[latest] = append(at[latest], i)
		}
	}
	place(rule.X, sched.xAt, skipX)
	place(rule.Y, sched.yAt, nil)
	return sched
}

// Searcher runs violation enumeration for one rule over one view, with
// pruning. It is reused by the incremental algorithms with pre-bound pivots.
type Searcher struct {
	G    graph.View
	C    *plan.Compiled
	Plan *match.Plan

	le   *LitEval
	ySat []int // per-depth cumulative count of satisfied Y literals
	m    *match.Matcher

	emit    func(core.Match) bool     // current Run's sink
	onMatch func([]graph.NodeID) bool // bound once (method values allocate)
}

// NewSearcher prepares a violation search for rule c over g using pl. The
// matcher and its pruning hooks are built here, once — Run only swaps the
// partial solution in, so repeated Runs (the incremental engines fire one
// per pivot) allocate nothing.
func NewSearcher(g graph.View, c *plan.Compiled, pl *match.Plan) *Searcher {
	s := &Searcher{G: g, C: c, Plan: pl, le: NewLitEval(g, c, pl)}
	s.ySat = make([]int, len(pl.Steps)+1)
	s.m = match.NewMatcher(g, pl, match.Hooks{
		OnExtend: func(k int, p []graph.NodeID) bool {
			prune, ySat := s.le.EvalLevel(k+1, p, s.ySat[k])
			if prune {
				return false
			}
			s.ySat[k+1] = ySat
			return true
		},
	})
	s.onMatch = s.match
	return s
}

// Run enumerates violations extending partial (pre-bound nodes already set,
// and already verified with match.VerifyBound by the caller when pivots are
// used). emit returning false stops the search. It returns the work
// counters of the underlying matcher.
//
// The emitted match aliases the searcher's scratch bindings and is valid
// only during the emit callback — callers that retain it must Clone it.
func (s *Searcher) Run(partial []graph.NodeID, emit func(core.Match) bool) match.Counters {
	// An empty Y is the empty conjunction — true — so nothing can violate.
	if s.le.NumY() == 0 {
		return match.Counters{}
	}

	prune, ySat0 := s.le.EvalLevel(0, partial, 0)
	if prune {
		return match.Counters{}
	}
	s.ySat[0] = ySat0

	// the matcher persists across Runs, so report this Run's work as a delta
	before := s.m.Stat
	s.emit = emit
	s.m.Run(partial, s.onMatch)
	s.emit = nil

	st := s.m.Stat
	st.Candidates -= before.Candidates
	st.Checks -= before.Checks
	st.Matches -= before.Matches
	return st
}

// Rebind points the searcher at a new view between runs. The plan must stay
// valid for the view — callers hold plans from the shared program cache and
// compare plan pointers before rebinding (see SearcherCache). Not safe
// against a concurrent Run.
func (s *Searcher) Rebind(v graph.View) {
	if s.G == v {
		return
	}
	s.G = v
	s.m.G = v
	s.le.G = v
}

// SearcherKey identifies a cached pre-bound searcher: the rule plus the
// bound pattern slots. SlotKey and EdgeSlotKey build the two shapes in use.
type SearcherKey struct {
	Rule *core.NGD
	A, B int
	Plus bool
}

// SlotKey keys a single-pattern-slot search (attribute reconciliation and
// new-node absorption both bind exactly one slot over the session graph).
func SlotKey(r *core.NGD, slot int) SearcherKey {
	return SearcherKey{Rule: r, A: slot, B: -1}
}

// EdgeSlotKey keys an update-pivot search (both endpoints of one pattern
// edge bound); plus separates the ΔVio⁺ overlay view from the base view,
// whose plans may differ.
func EdgeSlotKey(r *core.NGD, src, dst int, plus bool) SearcherKey {
	return SearcherKey{Rule: r, A: src, B: dst, Plus: plus}
}

// SearcherCache reuses searchers — and with them their matcher, literal
// schedule and pooled bindings — across repeated pre-bound searches: the
// session commit loop fires the same (rule, slot) searches every batch, and
// rebuilding them dominated the steady-state allocation profile. The zero
// value is ready to use; not goroutine-safe (one cache per single-writer
// session).
type SearcherCache struct {
	m map[SearcherKey]*Searcher
}

// Get returns the cached searcher for key, rebinding it to v — or builds
// and caches one when absent or when the plan changed (the program cache
// invalidates plans on churn; a stale searcher must not outlive its plan).
func (sc *SearcherCache) Get(v graph.View, c *plan.Compiled, pl *match.Plan, key SearcherKey) *Searcher {
	if s := sc.m[key]; s != nil && s.Plan == pl {
		s.Rebind(v)
		return s
	}
	if sc.m == nil {
		sc.m = make(map[SearcherKey]*Searcher)
	}
	s := NewSearcher(v, c, pl)
	sc.m[key] = s
	return s
}

// match filters complete matches down to violations (bound once as s.onMatch
// so the per-Run closure allocation disappears).
func (s *Searcher) match(p []graph.NodeID) bool {
	// all X held (pruned otherwise); violation iff some Y failed
	if s.ySat[len(s.Plan.Steps)] < s.le.NumY() {
		return s.emit(core.Match(p))
	}
	return true
}

// Validate decides G ⊨ Σ (the validation problem, Corollary 4): true iff
// Vio(Σ,G) = ∅.
func Validate(g graph.View, rules *core.Set) bool {
	r := Dect(g, rules, Options{Limit: 1})
	return len(r.Violations) == 0
}

// VioKeySet builds the dedup key set of a violation list (for diffing in
// tests and the incremental equivalence checks).
func VioKeySet(vs []core.Violation) map[string]core.Violation {
	m := make(map[string]core.Violation, len(vs))
	for _, v := range vs {
		m[v.Key()] = v
	}
	return m
}
