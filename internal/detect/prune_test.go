// Differential tests for index-backed candidate pruning (§6.2 step (3)):
// with pruning on and off, every detector — Dect, IncDect, PDect, PIncDect —
// must produce byte-identical violation sets, and pruning must not scan
// more candidates than the unpruned baseline.
package detect_test

import (
	"sort"
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/par"
	"ngd/internal/pattern"
	"ngd/internal/plan"
	"ngd/internal/update"
)

// keyLines canonicalizes a violation list to sorted newline-joined keys, so
// equality really is byte-identity of the violation sets.
func keyLines(vs []core.Violation) string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		keys[i] = v.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// rangeRule exercises the ordered index: f.val >= 1 ⇒ c.val = 7 over the
// generator's flag/p2 property stars of untyped entities (flag values are
// 0/1, so this is the wildcard FlagRule invariant phrased as a range
// precondition).
func rangeRule() *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "_")
	f := q.AddNode("f", "integer")
	c := q.AddNode("c", "integer")
	q.AddEdge(x, f, "flag")
	q.AddEdge(x, c, "p2")
	return core.MustNew("range-flag", q,
		[]core.Literal{core.Lit(expr.V("f", "val"), expr.Ge, expr.C(1))},
		[]core.Literal{core.Lit(expr.V("c", "val"), expr.Eq, expr.C(7))},
	)
}

func testWorkloads(tb testing.TB) []struct {
	name  string
	ds    *gen.Dataset
	rules *core.Set
} {
	tb.Helper()
	var out []struct {
		name  string
		ds    *gen.Dataset
		rules *core.Set
	}
	// A raised error rate keeps the differential non-vacuous at test scale;
	// EffectivenessRules covers every entity type so each injected error is
	// catchable (the Exp-5 configuration).
	for _, p := range []gen.Profile{gen.YAGO2, gen.Pokec} {
		p.ErrorRate = 0.25
		ds := gen.Generate(p, 150, 7)
		var rules *core.Set
		if p.Name == "yago2" {
			rules = gen.EffectivenessRules(p)
		} else {
			rules = gen.Rules(p, gen.RuleConfig{Count: 14, MaxDiameter: 5, Seed: 7})
		}
		rules.Add(rangeRule(), gen.WildFlagRule(0))
		out = append(out, struct {
			name  string
			ds    *gen.Dataset
			rules *core.Set
		}{p.Name, ds, rules})
	}
	return out
}

func TestPruningDifferentialDect(t *testing.T) {
	for _, w := range testWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			pruned := detect.Dect(w.ds.G, w.rules, detect.Options{})
			plain := detect.Dect(w.ds.G, w.rules, detect.Options{NoPruning: true})
			if got, want := keyLines(pruned.Violations), keyLines(plain.Violations); got != want {
				t.Fatalf("violation sets differ:\npruned:\n%s\nunpruned:\n%s", got, want)
			}
			if len(plain.Violations) == 0 {
				t.Fatal("workload produced no violations; differential test is vacuous")
			}
			// The candidate-count claim is about pruning alone, so isolate
			// it from prefix sharing (the unpruned plans carry no filters
			// and can share more aggressively, which skews raw scan counts).
			noShare := plan.New(w.ds.G, w.rules, plan.Options{NoSharing: true})
			prunedNS := detect.Dect(w.ds.G, w.rules, detect.Options{Program: noShare})
			plainNS := detect.Dect(w.ds.G, w.rules, detect.Options{NoPruning: true, Program: noShare})
			if keyLines(prunedNS.Violations) != keyLines(plain.Violations) ||
				keyLines(plainNS.Violations) != keyLines(plain.Violations) {
				t.Fatal("sharing-off violation sets diverge from the shared run")
			}
			if prunedNS.Counters.Candidates >= plainNS.Counters.Candidates {
				t.Fatalf("pruning scanned %d candidates, unpruned %d — no pruning happened",
					prunedNS.Counters.Candidates, plainNS.Counters.Candidates)
			}
			t.Logf("candidates scanned: pruned %d vs unpruned %d (%.1fx); shared/pruned %d",
				prunedNS.Counters.Candidates, plainNS.Counters.Candidates,
				float64(plainNS.Counters.Candidates)/float64(prunedNS.Counters.Candidates),
				pruned.Counters.Candidates)
		})
	}
}

// TestPlanPolicyDifferentialDect pins the plan-layer invariant: neither the
// ordering policy (cost-based vs legacy label-frequency) nor cross-rule
// prefix sharing may change the violation set — they only shift the work
// spent enumerating it.
func TestPlanPolicyDifferentialDect(t *testing.T) {
	for _, w := range testWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			policies := []struct {
				name string
				opts plan.Options
			}{
				{"cost+shared", plan.Options{}},
				{"cost+noshare", plan.Options{NoSharing: true}},
				{"legacy+shared", plan.Options{LegacyOrder: true}},
				{"legacy+noshare", plan.Options{LegacyOrder: true, NoSharing: true}},
			}
			want := ""
			for _, pol := range policies {
				prog := plan.New(w.ds.G, w.rules, pol.opts)
				res := detect.Dect(w.ds.G, w.rules, detect.Options{Program: prog})
				got := keyLines(res.Violations)
				if want == "" {
					want = got
					if len(res.Violations) == 0 {
						t.Fatal("vacuous workload")
					}
					continue
				}
				if got != want {
					t.Fatalf("policy %s diverged from %s", pol.name, policies[0].name)
				}
			}
		})
	}
}

// TestPlanPolicyDifferentialIncDect is the incremental counterpart: the
// shared program's cached, cost-ordered pivot plans must reproduce exactly
// the ΔVio of a legacy-ordered one-shot run.
func TestPlanPolicyDifferentialIncDect(t *testing.T) {
	for _, w := range testWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			d := update.Random(w.ds, update.Config{
				Size: update.SizeFor(w.ds.G, 0.2), Gamma: 1, Seed: 42})
			legacy := plan.New(w.ds.G, w.rules, plan.Options{LegacyOrder: true})
			cost := plan.New(w.ds.G, w.rules, plan.Options{})
			a := inc.IncDect(w.ds.G, w.rules, d, inc.Options{Program: legacy})
			b := inc.IncDect(w.ds.G, w.rules, d, inc.Options{Program: cost})
			// and a second run through the same program: served from cache
			c := inc.IncDect(w.ds.G, w.rules, d, inc.Options{Program: cost})
			if keyLines(a.Plus) != keyLines(b.Plus) || keyLines(a.Minus) != keyLines(b.Minus) {
				t.Fatal("cost-ordered IncDect diverged from legacy ordering")
			}
			if keyLines(b.Plus) != keyLines(c.Plus) || keyLines(b.Minus) != keyLines(c.Minus) {
				t.Fatal("cache-served IncDect diverged from its cold run")
			}
			cc := cost.Counters()
			if cc.Hits == 0 {
				t.Fatal("second IncDect run through the program produced no plan-cache hits")
			}
		})
	}
}

func TestPruningDifferentialIncDect(t *testing.T) {
	for _, w := range testWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			d := update.Random(w.ds, update.Config{
				Size: update.SizeFor(w.ds.G, 0.2), Gamma: 1, Seed: 99})
			pruned := inc.IncDect(w.ds.G, w.rules, d, inc.Options{})
			plain := inc.IncDect(w.ds.G, w.rules, d, inc.Options{NoPruning: true})
			if got, want := keyLines(pruned.Plus), keyLines(plain.Plus); got != want {
				t.Fatalf("ΔVio⁺ differs:\npruned:\n%s\nunpruned:\n%s", got, want)
			}
			if got, want := keyLines(pruned.Minus), keyLines(plain.Minus); got != want {
				t.Fatalf("ΔVio⁻ differs:\npruned:\n%s\nunpruned:\n%s", got, want)
			}
			// and both agree with the recompute-from-scratch oracle
			oracle := inc.Diff(w.ds.G, w.rules, d)
			if keyLines(pruned.Plus) != keyLines(oracle.Plus) ||
				keyLines(pruned.Minus) != keyLines(oracle.Minus) {
				t.Fatal("pruned IncDect disagrees with the Diff oracle")
			}
			if pruned.Counters.Candidates > plain.Counters.Candidates {
				t.Fatalf("pruned IncDect scanned more candidates (%d) than unpruned (%d)",
					pruned.Counters.Candidates, plain.Counters.Candidates)
			}
		})
	}
}

func TestPruningDifferentialParallel(t *testing.T) {
	for _, w := range testWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			baseline := detect.Dect(w.ds.G, w.rules, detect.Options{NoPruning: true})
			want := keyLines(baseline.Violations)

			pruned := par.PDect(w.ds.G, w.rules, par.Hybrid(4))
			if keyLines(pruned.Violations) != want {
				t.Fatal("pruned PDect disagrees with unpruned Dect")
			}
			off := par.Hybrid(4)
			off.NoPruning = true
			plain := par.PDect(w.ds.G, w.rules, off)
			if keyLines(plain.Violations) != want {
				t.Fatal("unpruned PDect disagrees with unpruned Dect")
			}

			d := update.Random(w.ds, update.Config{
				Size: update.SizeFor(w.ds.G, 0.2), Gamma: 1, Seed: 99})
			incBase := inc.IncDect(w.ds.G, w.rules, d, inc.Options{NoPruning: true})
			pinc := par.PIncDect(w.ds.G, w.rules, d, par.Hybrid(4))
			if keyLines(pinc.Delta.Plus) != keyLines(incBase.Plus) ||
				keyLines(pinc.Delta.Minus) != keyLines(incBase.Minus) {
				t.Fatal("pruned PIncDect disagrees with unpruned IncDect")
			}
			// the virtual oracle shares the same pruned matcher paths
			// (par.Hybrid above already ran the default goroutine driver)
			pvirt := par.PIncDect(w.ds.G, w.rules, d, par.Oracle(4))
			if keyLines(pvirt.Delta.Plus) != keyLines(incBase.Plus) ||
				keyLines(pvirt.Delta.Minus) != keyLines(incBase.Minus) {
				t.Fatal("pruned PIncDect (virtual driver) disagrees with unpruned IncDect")
			}
		})
	}
}

// TestPruningAfterDeltaApply proves the indexes built during a detection run
// stay in sync through Delta.Apply (edge churn) and SetAttr (value churn):
// re-running both modes on the mutated graph must still agree.
func TestPruningAfterDeltaApply(t *testing.T) {
	w := testWorkloads(t)[0]
	g := w.ds.G

	// first detection run builds the attribute indexes
	before := detect.Dect(g, w.rules, detect.Options{})
	if len(before.Violations) == 0 {
		t.Fatal("vacuous workload")
	}

	// churn: apply an edge delta and rewrite attribute values under the
	// live indexes (flag flips change equality postings, score writes move
	// ordered-index entries)
	d := update.Random(w.ds, update.Config{Size: update.SizeFor(g, 0.25), Gamma: 1, Seed: 5})
	d.Normalize(g).Apply(g)
	val := g.Symbols().LookupAttr("val")
	for i, props := range w.ds.PropNode {
		if i%3 == 0 {
			g.SetAttrA(props[6], val, graph.Int(int64(i%2)))
		}
		if i%4 == 0 {
			g.SetAttrA(props[2], val, graph.Int(int64(7+i%3)))
		}
	}

	pruned := detect.Dect(g, w.rules, detect.Options{})
	plain := detect.Dect(g, w.rules, detect.Options{NoPruning: true})
	if got, want := keyLines(pruned.Violations), keyLines(plain.Violations); got != want {
		t.Fatalf("after delta+attr churn, violation sets differ:\npruned:\n%s\nunpruned:\n%s",
			got, want)
	}
}
