package detect

import (
	"math"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/plan"
)

// This file executes a plan.Share — the prefix forest arranging the batch
// plans of overlapping rules — with one depth-first walk. Along a shared
// path the candidate scans, edge checks and filter evaluations of each step
// run exactly once for every rule riding it; what stays per-rule is the
// literal layer: each rule carries its own literal schedule (LitEval), its
// own partial solution (its pattern's node index space), and its own
// pruned/ySat state. A branch is abandoned only when *every* rule in the
// subtree has pruned; a single rule pruning merely deactivates that rule
// below the current depth.
//
// Correctness relative to the per-rule searcher: for each rule, the walk
// restricted to its path enumerates exactly the candidates its own plan
// would (step signatures guarantee identical candidate sources, checks and
// filters), and its literal schedule fires at the same levels with the same
// bindings — so per-rule emissions are identical to an independent search,
// merely interleaved. The differential suite in prune_test.go enforces this
// against the sharing-off path on every fuzz workload.

// sharedSearcher is the walk state over one forest.
type sharedSearcher struct {
	v  graph.View
	sh *plan.Share

	les      []*LitEval
	matchers []*match.Matcher // lazily built per representative rule
	partials [][]graph.NodeID
	ySat     [][]int // per rule: cumulative satisfied-Y count per depth
	prunedAt []int   // per rule: depth below which the rule is inactive

	emit    func(*core.NGD, core.Match) bool
	stopped bool
	stat    match.Counters
}

// RunShared enumerates the violations of every rule in the forest, calling
// emit for each (emit returning false stops the whole walk). It returns the
// accumulated work counters: candidates and checks are counted once per
// shared scan, which is exactly the point.
//
// The emitted match aliases the rule's scratch partial and is valid only
// during the emit callback — callers that retain it must Clone it.
func RunShared(v graph.View, sh *plan.Share, emit func(*core.NGD, core.Match) bool) match.Counters {
	s := &sharedSearcher{
		v:        v,
		sh:       sh,
		les:      make([]*LitEval, len(sh.Rules)),
		matchers: make([]*match.Matcher, len(sh.Rules)),
		partials: make([][]graph.NodeID, len(sh.Rules)),
		ySat:     make([][]int, len(sh.Rules)),
		prunedAt: make([]int, len(sh.Rules)),
		emit:     emit,
	}
	for i := range sh.Rules {
		sr := &sh.Rules[i]
		s.les[i] = NewLitEval(v, sr.C, sr.Plan)
		s.partials[i] = match.NewPartial(len(sr.Rule.Pattern.Nodes))
		s.ySat[i] = make([]int, len(sr.Plan.Steps)+1)
		s.prunedAt[i] = math.MaxInt
		if prune, y0 := s.les[i].EvalLevel(0, s.partials[i], 0); prune {
			s.prunedAt[i] = 0
		} else {
			s.ySat[i][0] = y0
		}
	}
	s.walk(sh.Root)
	for _, m := range s.matchers {
		if m != nil {
			s.stat.Checks += m.Stat.Checks
		}
	}
	return s.stat
}

// matcher returns the representative rule's matcher, building it on first
// use (hooks stay empty: the walk drives literal evaluation itself).
func (s *sharedSearcher) matcher(rep int) *match.Matcher {
	if s.matchers[rep] == nil {
		s.matchers[rep] = match.NewMatcher(s.v, s.sh.Rules[rep].Plan, match.Hooks{})
	}
	return s.matchers[rep]
}

// walk processes one forest node: emit the rules completing here, then
// descend each divergent continuation that still has a live rule.
func (s *sharedSearcher) walk(nd *plan.ShareNode) {
	d := nd.Depth
	for _, ri := range nd.Terminal {
		if s.prunedAt[ri] <= d || s.ySat[ri][d] >= s.les[ri].NumY() {
			continue // pruned, or all Y satisfied: not a violation
		}
		s.stat.Matches++
		m := core.Match(s.partials[ri])
		if !s.emit(s.sh.Rules[ri].Rule, m) {
			s.stopped = true
			return
		}
	}
	for _, ch := range nd.Children {
		if s.stopped {
			return
		}
		live := false
		for _, ri := range ch.Rules {
			if s.prunedAt[ri] > d {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		s.descend(ch, d)
	}
}

// descend scans the candidates of the step entering ch (driven by the
// subtree representative's plan and matcher) and recurses per candidate.
func (s *sharedSearcher) descend(ch *plan.ShareNode, d int) {
	rep := ch.Rep
	m := s.matcher(rep)
	scanned := m.CandidatesRange(d, s.partials[rep], 0, -1, func(cand graph.NodeID) bool {
		if !m.CheckStep(d, s.partials[rep], cand) {
			return true
		}
		live := false
		for _, ri := range ch.Rules {
			s.partials[ri][s.sh.Rules[ri].Plan.Steps[d].Node] = cand
			if s.prunedAt[ri] > d {
				prune, ySat := s.les[ri].EvalLevel(d+1, s.partials[ri], s.ySat[ri][d])
				if prune {
					s.prunedAt[ri] = d + 1
				} else {
					s.ySat[ri][d+1] = ySat
					live = true
				}
			}
		}
		if live {
			s.walk(ch)
		}
		for _, ri := range ch.Rules {
			if s.prunedAt[ri] == d+1 {
				s.prunedAt[ri] = math.MaxInt
			}
			s.partials[ri][s.sh.Rules[ri].Plan.Steps[d].Node] = match.Unbound
		}
		return !s.stopped
	})
	s.stat.Candidates += scanned
}
