// Package par implements the parallel detection algorithms of the paper:
// PDect (parallel batch, §5.1) and PIncDect (parallel incremental, §6.3)
// with the hybrid workload-balancing strategy — cost-estimation-based work
// unit splitting plus periodic skew-based redistribution — and its ablation
// variants PIncDect_ns (no splitting), PIncDect_nb (no balancing) and
// PIncDect_NO (neither).
//
// Two drivers execute the same work-unit semantics:
//
//   - the goroutine driver (default): p real worker goroutines — the shard
//     runtime — with per-worker queues and a periodic balancer, for
//     wall-clock use. Long-lived callers (the session/serve layer) hand in
//     a persistent Pool so the shard goroutines survive across calls
//     instead of being respawned per batch.
//
//   - the virtual driver (Options.Virtual): a deterministic discrete-event
//     simulation of p workers whose per-unit costs are the real adjacency
//     scans and edge checks performed, plus a fixed communication latency
//     per broadcast/transfer. It reports the simulated makespan
//     (max worker clock), which reproduces the paper's relative curves —
//     speedup vs p, the U-shaped optima in C and intvl — independently of
//     how many physical cores the host has. (Substitution for the paper's
//     20-machine cluster; see DESIGN.md.) It is the oracle the shard
//     runtime's differential tests compare against: with the same options
//     both drivers expand the exact same unit multiset.
//
// Both produce identical violation sets, equal to the sequential
// algorithms' output.
package par

import (
	"sort"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/match"
	"ngd/internal/partition"
	"ngd/internal/plan"
)

// Options configure the parallel engine.
type Options struct {
	// P is the number of workers ("processors"); default 4.
	P int
	// C is the communication-latency *parameter* of the split decision
	// (paper §6.3: split when C·(k+1) + |adj|/p < |adj|); default 60.
	C int
	// TrueLatency is the cost the simulator charges per broadcast or unit
	// transfer — the actual latency of the simulated cluster, as opposed
	// to the estimate C. Default 60 (so sweeping C brackets it).
	TrueLatency int
	// Intvl is the workload-monitoring interval in cost units (the paper's
	// intvl in seconds; at our bench scale 1s of the paper's wall clock
	// corresponds to ≈45 cost units, so the paper's 45s default maps to
	// 2000). Default 2000.
	Intvl float64
	// Eta is the skewness threshold above which a worker sheds load
	// (paper: 3); EtaLow the level below which workers accept load (0.7).
	Eta, EtaLow float64
	// SplitUnits enables cost-based work-unit splitting (off = _ns).
	SplitUnits bool
	// Balance enables periodic redistribution (off = _nb).
	Balance bool
	// Virtual runs the deterministic virtual-time driver instead of the
	// goroutine shard runtime. The zero value — the default — is the real
	// driver; the virtual driver is the machine-independent oracle used by
	// differential tests and the fig4 cost-unit benchmarks.
	Virtual bool
	// Pool executes goroutine-driver runs on a persistent shard pool
	// (see NewPool) instead of spawning workers per call. Ignored by the
	// virtual driver. A nil, closed, or differently-sized pool falls back
	// to per-call workers, so correctness never depends on pool state.
	Pool *Pool
	// NoPruning disables index-backed candidate pruning (see
	// detect.Options.NoPruning).
	NoPruning bool
	// AssumeNormalized skips PIncDect's internal Normalize pass; the caller
	// guarantees ΔG already has the normalized shape (see inc.Options).
	AssumeNormalized bool
	// Limit stops after this many violations *per side* — ΔVio⁺ and ΔVio⁻
	// each under PIncDect, matching inc.Options.Limit; a batch run (PDect)
	// has a single side, so there it is a total limit. 0 = unlimited; the
	// limit is approximate (a unit emits all its violations before the
	// check applies, and the goroutine driver races against it). Once a
	// side hits its limit, that side's remaining units are drained without
	// expansion but still accounted in Metrics.Units, under both drivers.
	Limit int
	// Part is a maintained partition to distribute PIncDect's seed pivots
	// with (see partition.Partition: built once, kept current with
	// Extend/Refine). When nil, PIncDect builds a fresh partition.Greedy
	// over the whole graph — correct, but O(|V|+|E|) per call; long-lived
	// sessions own a maintained partition instead (internal/session).
	Part *partition.Partition
	// Program is the shared rule program to plan with; nil builds a
	// private one per call. Long-lived callers (the session) pass their
	// own so every worker's task plans come from one compiled Σ and one
	// plan cache instead of a per-batch rebuild.
	Program *plan.Program
}

// program resolves the effective rule program for one run.
func (o Options) program(v graph.View, rules *core.Set) *plan.Program {
	if o.Program != nil {
		return o.Program
	}
	return plan.New(v, rules, plan.Options{NoPruning: o.NoPruning})
}

// Defaults fills in zero fields (paper defaults: p=8 for parameter sweeps,
// C=60, intvl=45s, η=3, η'=0.7; hybrid strategy on).
func (o Options) Defaults() Options {
	if o.P <= 0 {
		o.P = 4
	}
	if o.C <= 0 {
		o.C = 60
	}
	if o.TrueLatency <= 0 {
		o.TrueLatency = 60
	}
	if o.Intvl <= 0 {
		o.Intvl = 2000
	}
	if o.Eta <= 0 {
		o.Eta = 3
	}
	if o.EtaLow <= 0 {
		o.EtaLow = 0.7
	}
	return o
}

// Hybrid returns the full PIncDect configuration (splitting + balancing).
func Hybrid(p int) Options {
	return Options{P: p, SplitUnits: true, Balance: true}.Defaults()
}

// VariantNS disables splitting (PIncDect_ns).
func VariantNS(p int) Options {
	o := Hybrid(p)
	o.SplitUnits = false
	return o
}

// VariantNB disables balancing (PIncDect_nb).
func VariantNB(p int) Options {
	o := Hybrid(p)
	o.Balance = false
	return o
}

// VariantNO disables both (PIncDect_NO).
func VariantNO(p int) Options {
	o := Hybrid(p)
	o.SplitUnits = false
	o.Balance = false
	return o
}

// Oracle returns the hybrid configuration pinned to the virtual-time
// driver: the deterministic discrete-event simulation used as the
// machine-independent reference by tests and the fig4 benchmarks.
func Oracle(p int) Options {
	o := Hybrid(p)
	o.Virtual = true
	return o
}

// Metrics summarize a parallel run.
type Metrics struct {
	// Makespan is the simulated parallel time (max worker clock, cost
	// units). Under the goroutine driver it is the max of per-worker
	// accumulated work costs (no latency charging).
	Makespan float64
	// TotalWork is the summed per-unit cost across workers.
	TotalWork float64
	// Units is the number of work units processed; Splits how many
	// expansions were broadcast; Moved how many units rebalancing moved;
	// BalanceEvents how many monitoring rounds fired.
	Units, Splits, Moved, BalanceEvents int
	// NC is the candidate-neighborhood size |NC(ΔG, Σ)| (PIncDect only).
	NC int
	// WorkerCost is the final per-worker clock/cost (skew diagnosis).
	WorkerCost []float64
}

// Result of a parallel run.
type Result struct {
	Violations []core.Violation // PDect: Vio(Σ,G)
	Delta      inc.DeltaVio     // PIncDect: (ΔVio⁺, ΔVio⁻)
	Metrics    Metrics
}

// task is one independent violation search: a rule over a view with a plan
// (batch: one per rule; incremental: one per rule × pivot slot × side).
type task struct {
	c    *plan.Compiled
	view graph.View
	plan *match.Plan
	le   *detect.LitEval
	plus bool // incremental: ΔVio⁺ side
	inc  bool // incremental task (pivot dedup applies)
}

// unit is a work unit: a partial solution awaiting expansion at plan step
// `depth` (paper: an element of BVio_i).
type unit struct {
	task      int
	depth     int
	ySat      int
	pivotRank int // -1 for batch units
	pivotSlot int
	partial   []graph.NodeID
	// ySatR is the per-rule literal state of a shared-forest unit, aligned
	// with its ShareNode.Rules (-1 = the rule pruned on this path); nil for
	// per-rule task units, whose state is the scalar ySat above. In forest
	// mode `task` indexes engine.snodes and `partial` holds the path
	// bindings in step order rather than pattern-node order.
	ySatR  []int
	lo, hi int     // candidate segment; (0,-1) = full list
	bcast  bool    // this unit is a broadcast share (charges latency)
	ready  float64 // virtual time at which the unit is available
	// xferCharge is the communication cost of a rebalancing transfer,
	// charged when the receiving worker processes the unit.
	xferCharge float64
}

type edgeKey struct {
	src, dst graph.NodeID
	label    graph.LabelID
}

// engine holds the immutable run state shared by workers.
type engine struct {
	opts   Options
	tasks  []task
	insIdx map[edgeKey]int
	delIdx map[edgeKey]int
	// matchers are per-worker per-task to keep counters race-free.
	matchers [][]*match.Matcher

	// estWidth/estBelow are the LiveStats-driven cost estimates, per task
	// per depth: estWidth[t][d] ≈ candidates scanned by step d of task t's
	// plan per expansion, estBelow[t][d] ≈ the expected scan cost of the
	// whole subtree under one candidate bound at d. nil when the view
	// carries no maintained statistics; splitting and balancing then fall
	// back to the paper's unweighted forms.
	estWidth [][]float64
	estBelow [][]float64

	// Shared-forest state (batch PDect under cross-rule sharing): when
	// share is non-nil the engine runs forest units — unit.task indexes
	// snodes — and the per-rule task fields above stay empty. See shared.go.
	share     *plan.Share
	snodes    []*plan.ShareNode
	nodeOf    map[*plan.ShareNode]int
	sles      []*detect.LitEval
	sview     graph.View
	sWidth    []float64          // per forest node: entering-step fan estimate
	sBelow    []float64          // per forest node: est cost below one candidate
	smatchers [][]*match.Matcher // per worker per share rule (lazy)
	spartials [][][]graph.NodeID // per worker per share rule scratch

	// pfree/yfree are per-worker freelists recycling unit buffers (binding
	// slices and forest literal state): a unit is dropped right after its
	// expansion, so the driver loops return its buffers to the expanding
	// worker and child units draw from the same lists. Each list is touched
	// only by its worker's loop (the virtual driver is single-threaded), so
	// no synchronization is needed — steady-state fan-out allocates nothing.
	pfree [][][]graph.NodeID
	yfree [][][]int
}

// initFree sizes the per-worker buffer freelists.
func (e *engine) initFree() {
	e.pfree = make([][][]graph.NodeID, e.opts.P)
	e.yfree = make([][][]int, e.opts.P)
}

// newPartialBuf returns an uninitialized length-n binding buffer from worker
// w's freelist (undersized buffers are discarded — capacities converge to
// the deepest pattern within a few expansions).
func (e *engine) newPartialBuf(w, n int) []graph.NodeID {
	for {
		fl := e.pfree[w]
		k := len(fl)
		if k == 0 {
			return make([]graph.NodeID, n)
		}
		b := fl[k-1]
		e.pfree[w] = fl[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
}

// clonePartial copies src into a recycled buffer from worker w's freelist.
func (e *engine) clonePartial(w int, src []graph.NodeID) []graph.NodeID {
	b := e.newPartialBuf(w, len(src))
	copy(b, src)
	return b
}

// newYSatBuf returns an uninitialized length-n literal-state buffer from
// worker w's freelist (the forest unit counterpart of newPartialBuf).
func (e *engine) newYSatBuf(w, n int) []int {
	for {
		fl := e.yfree[w]
		k := len(fl)
		if k == 0 {
			return make([]int, n)
		}
		b := fl[k-1]
		e.yfree[w] = fl[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
}

// cloneYSat copies a forest unit's per-rule literal state the same way.
func (e *engine) cloneYSat(w int, src []int) []int {
	b := e.newYSatBuf(w, len(src))
	copy(b, src)
	return b
}

// recycle returns a consumed unit's buffers to worker w's freelists. Only
// call once the unit is dropped — emitted violations hold private copies,
// never aliases of unit buffers.
func (e *engine) recycle(w int, u *unit) {
	if u.partial != nil {
		e.pfree[w] = append(e.pfree[w], u.partial)
		u.partial = nil
	}
	if u.ySatR != nil {
		e.yfree[w] = append(e.yfree[w], u.ySatR)
		u.ySatR = nil
	}
}

func newEngine(opts Options, tasks []task) *engine {
	e := &engine{opts: opts, tasks: tasks}
	e.initFree()
	e.matchers = make([][]*match.Matcher, opts.P)
	for w := 0; w < opts.P; w++ {
		ms := make([]*match.Matcher, len(tasks))
		for t := range tasks {
			ms[t] = match.NewMatcher(tasks[t].view, tasks[t].plan, match.Hooks{})
		}
		e.matchers[w] = ms
	}
	e.buildEstimates()
	return e
}

// sideOf maps a unit to its Limit tally slot; forest units are batch-only
// (single side).
func (e *engine) sideOf(u *unit) int {
	if e.share != nil {
		return 0
	}
	return sideIdx(e.tasks[u.task].plus)
}

// smallestPivot mirrors inc.smallestPivot for the parallel engine.
func (e *engine) smallestPivot(t *task, m []graph.NodeID, rank, slot int) bool {
	idx := e.delIdx
	if t.plus {
		idx = e.insIdx
	}
	for s, pe := range t.c.Rule.Pattern.Edges {
		k := edgeKey{m[pe.Src], m[pe.Dst], t.c.CP.EdgeLabels[s]}
		r, ok := idx[k]
		if !ok {
			continue
		}
		if r < rank || (r == rank && s < slot) {
			return false
		}
	}
	return true
}

// taggedVio is a violation tagged with its side (ΔVio⁺ vs ΔVio⁻; batch
// runs use plus=false throughout).
type taggedVio struct {
	vio  core.Violation
	plus bool
}

// sideIdx maps a side to its tally slot (0 = ΔVio⁻/batch, 1 = ΔVio⁺).
func sideIdx(plus bool) int {
	if plus {
		return 1
	}
	return 0
}

// expandResult carries what one unit expansion produced.
type expandResult struct {
	cost     float64
	children []*unit
	vios     []taggedVio
	split    bool
}

// splitWanted applies the paper's split rule C·(k+1) + |adj|/p < |adj|
// (§6.3), with |adj| scaled by the LiveStats estimate of the subtree below
// each candidate: a scan whose candidates each open deep subtrees is worth
// broadcasting even when the scan itself is modest. With no maintained
// statistics (below = 0) this reduces to the paper's literal form.
func (e *engine) splitWanted(cnt, depth int, below float64) bool {
	if cnt < 2*e.opts.P {
		return false
	}
	sub := float64(cnt) * (1 + below)
	par := float64(e.opts.C)*float64(depth+1) + sub/float64(e.opts.P)
	return par < sub
}

// taskBelow is the subtree estimate for a per-rule task unit (0 without
// stats).
func (e *engine) taskBelow(t, d int) float64 {
	if e.estBelow == nil || e.estBelow[t] == nil || d >= len(e.estBelow[t]) {
		return 0
	}
	return e.estBelow[t][d]
}

// unitWeight estimates a queued unit's remaining cost for the balancer's
// skew measure: entering-scan width × (1 + subtree below). Segment units
// use their actual [lo,hi) width. Without maintained statistics every unit
// weighs 1 and the weighted balancer degenerates to the count-based one.
func (e *engine) unitWeight(u *unit) float64 {
	var width, below float64
	switch {
	case e.share != nil:
		if e.sBelow == nil {
			return 1
		}
		width, below = e.sWidth[u.task], e.sBelow[u.task]
	case e.estBelow != nil && e.estBelow[u.task] != nil && u.depth < len(e.estBelow[u.task]):
		width, below = e.estWidth[u.task][u.depth], e.estBelow[u.task][u.depth]
	default:
		return 1
	}
	if u.hi >= 0 {
		width = float64(u.hi - u.lo)
	}
	if w := width * (1 + below); w > 1 {
		return w
	}
	return 1
}

// expand processes unit u on worker w. When splitting is enabled and the
// candidate list is large enough that C·(k+1) + |adj|/p < |adj| (§6.3), the
// unit is split into p broadcast shares instead of being scanned locally.
func (e *engine) expand(w int, u *unit) expandResult {
	if e.share != nil {
		return e.expandShared(w, u)
	}
	t := &e.tasks[u.task]
	m := e.matchers[w][u.task]
	var res expandResult

	if u.bcast {
		// a broadcast share pays CPU to deserialize the partial solution
		// (size ∝ depth+1); the network latency itself is not CPU time —
		// the driver models it as a delay on the unit's ready time.
		res.cost += float64(u.depth + 1)
	}
	res.cost += u.xferCharge

	if u.depth == len(t.plan.Steps) {
		// complete match (possible only when a pattern is fully pre-bound)
		res.vios = e.complete(t, u, u.partial, res.vios)
		return res
	}

	// split decision (only for full-range units)
	if e.opts.SplitUnits && !u.bcast && u.lo == 0 && u.hi < 0 {
		cnt := m.CandidateCount(u.depth, u.partial)
		if e.splitWanted(cnt, u.depth, e.taskBelow(u.task, u.depth)) {
			res.split = true
			share := (cnt + e.opts.P - 1) / e.opts.P
			for i := 0; i < e.opts.P; i++ {
				lo := i * share
				hi := lo + share
				if lo >= cnt {
					break
				}
				if hi > cnt {
					hi = cnt
				}
				child := &unit{
					task: u.task, depth: u.depth, ySat: u.ySat,
					pivotRank: u.pivotRank, pivotSlot: u.pivotSlot,
					partial: e.clonePartial(w, u.partial),
					lo:      lo, hi: hi, bcast: true,
				}
				res.children = append(res.children, child)
			}
			// the splitting worker pays CPU to serialize the broadcast
			res.cost += float64(u.depth + 1)
			return res
		}
	}

	st := &t.plan.Steps[u.depth]
	checksBefore := m.Stat.Checks
	scanned := m.CandidatesRange(u.depth, u.partial, u.lo, u.hi, func(v graph.NodeID) bool {
		if !m.CheckStep(u.depth, u.partial, v) {
			return true
		}
		u.partial[st.Node] = v
		prune, ySat := t.le.EvalLevel(u.depth+1, u.partial, u.ySat)
		if prune {
			u.partial[st.Node] = match.Unbound
			return true
		}
		if u.depth+1 == len(t.plan.Steps) {
			res.vios = e.completeAt(t, u, ySat, res.vios)
		} else {
			res.children = append(res.children, &unit{
				task: u.task, depth: u.depth + 1, ySat: ySat,
				pivotRank: u.pivotRank, pivotSlot: u.pivotSlot,
				partial: e.clonePartial(w, u.partial),
				lo:      0, hi: -1,
			})
		}
		u.partial[st.Node] = match.Unbound
		return true
	})
	res.cost += float64(scanned + (m.Stat.Checks - checksBefore))
	return res
}

// completeAt records a complete match currently held in u.partial. The
// pivot dedup runs on the scratch bindings; only retained matches copy.
func (e *engine) completeAt(t *task, u *unit, ySat int, vios []taggedVio) []taggedVio {
	if ySat >= t.le.NumY() {
		return vios // all Y satisfied: not a violation
	}
	if t.inc && !e.smallestPivot(t, u.partial, u.pivotRank, u.pivotSlot) {
		return vios
	}
	mcopy := core.Match(u.partial).Clone()
	return append(vios, taggedVio{core.Violation{Rule: t.c.Rule, Match: mcopy}, t.plus})
}

// complete handles the degenerate fully-bound case.
func (e *engine) complete(t *task, u *unit, partial []graph.NodeID, vios []taggedVio) []taggedVio {
	if u.ySat >= t.le.NumY() {
		return vios
	}
	if t.inc && !e.smallestPivot(t, partial, u.pivotRank, u.pivotSlot) {
		return vios
	}
	mcopy := core.Match(partial).Clone()
	return append(vios, taggedVio{core.Violation{Rule: t.c.Rule, Match: mcopy}, t.plus})
}

// sortViolations orders output deterministically.
func sortViolations(vs []taggedVio) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].vio.Key() < vs[j].vio.Key() })
}
