package par

import (
	"fmt"
	"math"
)

// debugBalance dumps balancer state (tests only).
var debugBalance = false

// xferCPU is the CPU cost (in scan-entry units) of serializing or
// deserializing one transferred work unit — a few dozen bytes, an order of
// magnitude below the cost of expanding a typical unit.
const xferCPU = 0.1

// vworker is one simulated processor: a FIFO work queue and a clock in cost
// units.
type vworker struct {
	clock float64
	work  float64 // pure processing cost (no idle/monitor time)
	q     []*unit
	head  int
	vios  []taggedVio
}

func (w *vworker) empty() bool  { return w.head >= len(w.q) }
func (w *vworker) size() int    { return len(w.q) - w.head }
func (w *vworker) front() *unit { return w.q[w.head] }
func (w *vworker) pop() *unit   { u := w.q[w.head]; w.q[w.head] = nil; w.head++; return u }
func (w *vworker) push(u *unit) { w.q = append(w.q, u) }
func (w *vworker) compact()     { w.q = append([]*unit(nil), w.q[w.head:]...); w.head = 0 }

// takeFront sheds n units from the front of the queue — the oldest,
// typically shallowest units, i.e. the biggest subtrees, which is what
// rebalancing wants to move (and what gworker.takeFront does; the two
// drivers must shed the same end or their Moved/Makespan metrics diverge).
func (w *vworker) takeFront(n int) []*unit {
	if n > w.size() {
		n = w.size()
	}
	out := append([]*unit(nil), w.q[w.head:w.head+n]...)
	for i := w.head; i < w.head+n; i++ {
		w.q[i] = nil
	}
	w.head += n
	return out
}

// runVirtual executes the engine under the deterministic discrete-event
// driver. initial[i] seeds worker i's queue; startCost is charged to every
// worker up front (candidate-neighborhood construction and replication).
func (e *engine) runVirtual(initial [][]*unit, startCost float64) ([]taggedVio, Metrics) {
	p := e.opts.P
	ws := make([]*vworker, p)
	for i := 0; i < p; i++ {
		ws[i] = &vworker{clock: startCost}
		for _, u := range initial[i] {
			ws[i].push(u)
		}
	}
	var met Metrics
	met.Makespan = startCost
	nextBal := e.opts.Intvl
	// per-side violation tallies for the Limit cutoff (ΔVio⁺ and ΔVio⁻ are
	// limited independently, matching inc.Options.Limit; batch runs have a
	// single side)
	sideVios := [2]int{}

	for {
		// next event: the worker whose front unit can start earliest
		w, start := -1, 0.0
		for i, vw := range ws {
			if vw.empty() {
				continue
			}
			s := vw.clock
			if r := vw.front().ready; r > s {
				s = r
			}
			if w < 0 || s < start {
				w, start = i, s
			}
		}
		if w < 0 {
			break // all queues drained
		}
		if e.opts.Balance && start >= nextBal {
			met.BalanceEvents++
			met.Moved += e.vbalance(ws, nextBal)
			nextBal += e.opts.Intvl
			continue
		}
		vw := ws[w]
		u := vw.pop()
		if e.opts.Limit > 0 && sideVios[e.sideOf(u)] >= e.opts.Limit {
			// this side hit its limit: drain without expanding, but account
			// the unit and its pending transfer charge so Units/cost mean
			// the same thing as under the goroutine driver
			vw.clock = start + u.xferCharge
			vw.work += u.xferCharge
			met.TotalWork += u.xferCharge
			met.Units++
			e.recycle(w, u)
			continue
		}
		res := e.expand(w, u)
		e.recycle(w, u) // children and violations hold copies, never aliases
		if start < u.ready {
			start = u.ready
		}
		vw.clock = start + res.cost
		vw.work += res.cost
		met.TotalWork += res.cost
		met.Units++
		if res.split {
			met.Splits++
			for i, child := range res.children {
				// shares become available after the broadcast latency
				child.ready = vw.clock + float64(e.opts.TrueLatency)
				ws[i%p].push(child)
			}
		} else {
			for _, child := range res.children {
				child.ready = vw.clock
				vw.push(child)
			}
		}
		if len(res.vios) > 0 {
			vw.vios = append(vw.vios, res.vios...)
			for _, tv := range res.vios {
				sideVios[sideIdx(tv.plus)]++
			}
		}
	}

	var vios []taggedVio
	for _, vw := range ws {
		vios = append(vios, vw.vios...)
		met.WorkerCost = append(met.WorkerCost, vw.clock)
		if vw.clock > met.Makespan {
			met.Makespan = vw.clock
		}
	}
	sortViolations(vios)
	return vios, met
}

// vbalance implements the paper's periodic redistribution at virtual time T:
// workers whose load skewness exceeds η shed their excess evenly onto
// workers below η′ (both decisions via the balance.go helpers shared with
// gbalance). Loads are estimated unit costs (unitWeight); without maintained
// statistics every unit weighs 1 and this is the paper's count-based round.
// Every worker pays a monitoring cost; each transferred unit pays a
// communication latency and becomes available at T + latency.
func (e *engine) vbalance(ws []*vworker, T float64) int {
	p := len(ws)
	lat := float64(e.opts.TrueLatency)
	loads := make([]float64, p)
	total := 0
	var totalLoad float64
	for i, vw := range ws {
		total += vw.size()
		for _, u := range vw.q[vw.head:] {
			loads[i] += e.unitWeight(u)
		}
		totalLoad += loads[i]
	}
	if total == 0 {
		return 0
	}
	avg := totalLoad / float64(p)
	if debugBalance {
		sizes := make([]int, p)
		works := make([]int, p)
		clocks := make([]int, p)
		for i, vw := range ws {
			sizes[i] = vw.size()
			works[i] = int(vw.work)
			clocks[i] = int(vw.clock)
		}
		fmt.Printf("bal T=%.0f sizes=%v loads=%v works=%v clocks=%v\n",
			T, sizes, loads, works, clocks)
	}
	// monitoring cost: a status round-trip per worker
	for _, vw := range ws {
		if vw.clock < T {
			vw.clock = T
		}
		vw.clock += lat / 2
	}
	targets := balReceivers(loads, avg, e.opts.EtaLow)
	if len(targets) == 0 {
		return 0
	}
	moved := 0
	for i, vw := range ws {
		if loads[i] <= e.opts.Eta*avg {
			continue
		}
		excess := math.Floor(loads[i] - avg)
		if excess <= 0 {
			continue
		}
		take, dest := shedAssign(vw.q[vw.head:], excess, targets, e.unitWeight)
		if take == 0 {
			continue
		}
		units := vw.takeFront(take)
		// serializing the shed units costs the sender CPU (a partial
		// solution is a few dozen bytes — far less than expanding it);
		// the latency is a delay on availability, not CPU time
		vw.clock += xferCPU * float64(len(units))
		for k, u := range units {
			u.ready = T + lat
			u.xferCharge = xferCPU // deserialize on arrival
			ws[dest[k]].push(u)
		}
		moved += len(units)
	}
	// reclaim popped prefixes so queue sizes stay meaningful
	for _, vw := range ws {
		if vw.head > 1024 && vw.head > vw.size() {
			vw.compact()
		}
	}
	return moved
}
