package par

// LiveStats-driven cost estimation (PR 6): the split decision and the skew
// balancer used to see only what a unit's own scan exposes (its candidate
// count, its queue position). The graph's maintained statistics
// (graph.LiveStats, PR 5) let the engine estimate what lies *below* a unit
// — the expected fan-out of every deeper plan step — so shallow units are
// recognized as the big subtrees they are. The estimates are deterministic
// functions of the graph, so the virtual oracle stays bit-reproducible and
// both drivers keep expanding the exact same unit multiset.

import (
	"ngd/internal/graph"
	"ngd/internal/match"
)

// estCap bounds the fan products so a deep plan over a dense label cannot
// push the estimates into float territory where comparisons degrade.
const estCap = 1e9

// viewStats returns the maintained statistics behind v, nil when the view
// carries none.
func viewStats(v graph.View) *graph.LiveStats {
	if s, ok := v.(graph.LiveStatted); ok {
		return s.LiveStats()
	}
	return nil
}

// stepFan estimates the candidate count of plan step d: the mean adjacency
// run length for anchored steps (from the maintained per-(node label, edge
// label) aggregates), the label-bucket size for seed scans.
func stepFan(v graph.View, st *graph.LiveStats, pl *match.Plan, d int) float64 {
	s := &pl.Steps[d]
	if s.AnchorEdge >= 0 {
		el := pl.CP.EdgeLabels[s.AnchorEdge]
		from := pl.CP.NodeLabels[s.AnchorFrom]
		if s.AnchorOut {
			return st.OutFan(v, from, el)
		}
		return st.InFan(v, from, el)
	}
	if l := pl.CP.NodeLabels[s.Node]; l != graph.Wildcard {
		return float64(v.CountLabel(l))
	}
	return float64(v.NumNodes())
}

// planEst computes per-depth (width, below) estimates for one plan:
// width[d] ≈ candidates scanned at step d per expansion, below[d] ≈ the
// expected scan cost of the whole subtree under one candidate bound at d
// (the backward product of the deeper fans).
func planEst(v graph.View, st *graph.LiveStats, pl *match.Plan) (width, below []float64) {
	k := len(pl.Steps)
	if k == 0 {
		return nil, nil
	}
	width = make([]float64, k)
	below = make([]float64, k)
	for d := 0; d < k; d++ {
		f := stepFan(v, st, pl, d)
		if f > estCap {
			f = estCap
		}
		width[d] = f
	}
	for d := k - 2; d >= 0; d-- {
		b := width[d+1] * (1 + below[d+1])
		if b > estCap {
			b = estCap
		}
		below[d] = b
	}
	return width, below
}

// buildEstimates derives the per-task estimates from each task view's
// maintained statistics; tasks over plain views stay unestimated.
func (e *engine) buildEstimates() {
	for t := range e.tasks {
		st := viewStats(e.tasks[t].view)
		if st == nil {
			continue
		}
		if e.estWidth == nil {
			e.estWidth = make([][]float64, len(e.tasks))
			e.estBelow = make([][]float64, len(e.tasks))
		}
		e.estWidth[t], e.estBelow[t] = planEst(e.tasks[t].view, st, e.tasks[t].plan)
	}
}
