package par

import (
	"runtime"
	"testing"
	"time"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/inc"
	"ngd/internal/update"
)

// TestPoolReusedAcrossRuns: a persistent pool serves many PDect/PIncDect
// runs without respawning shards, and the pooled answers are identical to
// the ephemeral (per-call goroutines) ones and to the sequential
// algorithms.
func TestPoolReusedAcrossRuns(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 220, 71)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 71})

	pl := NewPool(4)
	defer pl.Close()
	if pl.Size() != 4 {
		t.Fatalf("pool size %d, want 4", pl.Size())
	}

	pooled := Hybrid(4)
	pooled.Pool = pl
	ephemeral := Hybrid(4)

	wantBatch := detect.Dect(ds.G, rules, detect.Options{}).Violations
	for run := 0; run < 3; run++ {
		got := PDect(ds.G, rules, pooled)
		if !equalKeys(got.Violations, wantBatch) {
			t.Fatalf("pooled PDect run %d: %d violations, want %d",
				run, len(got.Violations), len(wantBatch))
		}
		eph := PDect(ds.G, rules, ephemeral)
		if !equalKeys(got.Violations, eph.Violations) {
			t.Fatalf("run %d: pooled and ephemeral PDect disagree", run)
		}
	}

	for trial := 0; trial < 2; trial++ {
		d := update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.1), Gamma: 1, Seed: int64(72 + trial),
		})
		want := inc.IncDect(ds.G, rules, d, inc.Options{})
		got := PIncDect(ds.G, rules, d, pooled)
		if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
			t.Fatalf("pooled PIncDect trial %d diverges from IncDect", trial)
		}
	}
}

// TestPoolSizeMismatchFallback: a pool sized differently from Options.P
// must not be used — the run falls back to per-call workers and stays
// correct.
func TestPoolSizeMismatchFallback(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 180, 73)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 73})

	pl := NewPool(2)
	defer pl.Close()
	opts := Hybrid(4) // mismatched: pool has 2 shards
	opts.Pool = pl

	want := detect.Dect(ds.G, rules, detect.Options{}).Violations
	got := PDect(ds.G, rules, opts)
	if !equalKeys(got.Violations, want) {
		t.Fatalf("size-mismatch fallback: %d violations, want %d",
			len(got.Violations), len(want))
	}
}

// TestPoolClosedFallback: runs attempted after Close fall back to per-call
// workers; Close is idempotent.
func TestPoolClosedFallback(t *testing.T) {
	ds := gen.Generate(gen.DBpedia, 180, 75)
	rules := gen.Rules(gen.DBpedia, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 75})

	pl := NewPool(4)
	opts := Hybrid(4)
	opts.Pool = pl

	want := detect.Dect(ds.G, rules, detect.Options{}).Violations
	if got := PDect(ds.G, rules, opts); !equalKeys(got.Violations, want) {
		t.Fatal("pooled PDect before Close diverges")
	}
	pl.Close()
	pl.Close() // idempotent
	if got := PDect(ds.G, rules, opts); !equalKeys(got.Violations, want) {
		t.Fatal("post-Close fallback PDect diverges")
	}
}

// TestPoolEmptyWork: a run with no work units must drain immediately on
// the pool, and leave it usable.
func TestPoolEmptyWork(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 60, 77)
	pl := NewPool(3)
	defer pl.Close()
	opts := Hybrid(3)
	opts.Pool = pl

	if r := PDect(ds.G, core.NewSet(), opts); len(r.Violations) != 0 {
		t.Error("pooled PDect with no rules returned violations")
	}
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 4, MaxDiameter: 3, Seed: 77})
	d := update.Random(ds, update.Config{Size: 0, Gamma: 1, Seed: 1})
	if r := PIncDect(ds.G, rules, d, opts); len(r.Delta.Plus)+len(r.Delta.Minus) != 0 {
		t.Error("pooled PIncDect with empty delta returned changes")
	}
	// the pool survived the empty runs
	want := detect.Dect(ds.G, rules, detect.Options{}).Violations
	if got := PDect(ds.G, rules, opts); !equalKeys(got.Violations, want) {
		t.Error("pool unusable after empty runs")
	}
}

// TestPoolGoroutinesExit: Close terminates every shard goroutine — the
// process goroutine count returns to its pre-pool baseline.
func TestPoolGoroutinesExit(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 150, 79)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 79})

	baseline := runtime.NumGoroutine()
	pl := NewPool(6)
	opts := Hybrid(6)
	opts.Pool = pl
	PDect(ds.G, rules, opts)
	if n := runtime.NumGoroutine(); n < baseline+6 {
		t.Fatalf("pool running: %d goroutines, want >= baseline %d + 6", n, baseline)
	}
	pl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("shard goroutines leaked: %d alive, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
