package par

// The persistent shard pool (PR 6 tentpole): runReal used to spawn p
// goroutines per call, which was fine for a test harness but wrong for a
// serving runtime committing a batch every few milliseconds. A Pool keeps
// p long-lived shard goroutines — one per maintained partition fragment;
// the session sizes the pool and the partition together — plus one
// balancer goroutine, and executes goroutine-driver runs on them without
// respawning. A Pool serves one run at a time (the session/serve layer is
// single-writer; concurrent Run calls serialize), and Close terminates the
// shard goroutines deterministically: the serve layer's goroutine-leak
// test pins that nothing survives Server.Close.

import (
	"sync"
	"sync/atomic"
	"time"
)

// runState is one goroutine-driver execution: the per-run queues, tallies
// and completion signal shared by the shard goroutines, whether pooled or
// spawned for the call.
type runState struct {
	e  *engine
	ws []*gworker

	pending                             atomic.Int64
	sideCount                           [2]atomic.Int64
	splits, moved, balEvents, unitCount atomic.Int64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup // the workers (and balancer) serving this run
}

func newRunState(e *engine, initial [][]*unit) *runState {
	r := &runState{e: e, ws: make([]*gworker, e.opts.P), done: make(chan struct{})}
	total := 0
	for i := range r.ws {
		r.ws[i] = &gworker{wake: make(chan struct{}, 1)}
		r.ws[i].q = append(r.ws[i].q, initial[i]...)
		total += len(initial[i])
	}
	r.pending.Store(int64(total))
	if total == 0 {
		r.finish()
	}
	return r
}

func (r *runState) finish() { r.closeOnce.Do(func() { close(r.done) }) }

// work is the shard loop for worker w: pop (LIFO), expand, route children,
// tally, until the run's pending count drains to zero.
func (r *runState) work(w int) {
	e := r.e
	self := r.ws[w]
	for {
		u, ok := self.pop()
		if !ok {
			select {
			case <-r.done:
				return
			case <-self.wake:
				continue
			}
		}
		if e.opts.Limit > 0 && r.sideCount[e.sideOf(u)].Load() >= int64(e.opts.Limit) {
			// this side hit its limit: drain without expanding, but
			// account the unit and its pending transfer charge so
			// Units/cost mean the same thing as under the virtual driver
			self.addCost(u.xferCharge)
			r.unitCount.Add(1)
			e.recycle(w, u)
			if r.pending.Add(-1) == 0 {
				r.finish()
			}
			continue
		}
		res := e.expand(w, u)
		e.recycle(w, u) // children and violations hold copies, never aliases
		self.addCost(res.cost)
		r.unitCount.Add(1)
		if len(res.children) > 0 {
			r.pending.Add(int64(len(res.children)))
			if res.split {
				r.splits.Add(1)
				for i, child := range res.children {
					r.ws[i%len(r.ws)].push(child)
				}
			} else {
				for _, child := range res.children {
					self.push(child)
				}
			}
		}
		if len(res.vios) > 0 {
			// vios are only ever touched by the owning worker
			self.vios = append(self.vios, res.vios...)
			for _, tv := range res.vios {
				r.sideCount[sideIdx(tv.plus)].Add(1)
			}
		}
		if r.pending.Add(-1) == 0 {
			r.finish()
		}
	}
}

// balanceLoop is the paper's workload monitor at interval intvl: every tick
// it runs one gbalance round until the run drains.
func (r *runState) balanceLoop() {
	// interpret Intvl cost units as microseconds at real-time scale
	// (1 cost unit ≈ 1 µs of work)
	tick := time.Duration(r.e.opts.Intvl) * time.Microsecond
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.balEvents.Add(1)
			r.moved.Add(int64(r.e.gbalance(r.ws)))
		}
	}
}

// metrics collects the run's violations and Metrics once it has drained.
func (r *runState) metrics() ([]taggedVio, Metrics) {
	var vios []taggedVio
	met := Metrics{
		Units:         int(r.unitCount.Load()),
		Splits:        int(r.splits.Load()),
		Moved:         int(r.moved.Load()),
		BalanceEvents: int(r.balEvents.Load()),
	}
	for _, w := range r.ws {
		vios = append(vios, w.vios...)
		met.WorkerCost = append(met.WorkerCost, w.cost)
		met.TotalWork += w.cost
		if w.cost > met.Makespan {
			met.Makespan = w.cost
		}
	}
	sortViolations(vios)
	return vios, met
}

// Pool is a persistent shard pool for the goroutine driver. Create with
// NewPool, hand to the engine via Options.Pool, stop with Close. The
// zero-value Pool is not usable.
type Pool struct {
	p    int
	mu   sync.Mutex // serializes runs; Close waits for the in-flight one
	work []chan *runState
	bal  chan *runState
	quit chan struct{}
	wg   sync.WaitGroup

	closed bool
}

// NewPool starts p shard goroutines plus the balancer goroutine
// (p <= 0 uses the default worker count).
func NewPool(p int) *Pool {
	if p <= 0 {
		p = Options{}.Defaults().P
	}
	pl := &Pool{
		p:    p,
		work: make([]chan *runState, p),
		bal:  make(chan *runState),
		quit: make(chan struct{}),
	}
	for i := 0; i < p; i++ {
		pl.work[i] = make(chan *runState)
		pl.wg.Add(1)
		go func(i int) {
			defer pl.wg.Done()
			for {
				select {
				case <-pl.quit:
					return
				case r := <-pl.work[i]:
					r.work(i)
					r.wg.Done()
				}
			}
		}(i)
	}
	pl.wg.Add(1)
	go func() {
		defer pl.wg.Done()
		for {
			select {
			case <-pl.quit:
				return
			case r := <-pl.bal:
				r.balanceLoop()
				r.wg.Done()
			}
		}
	}()
	return pl
}

// Size reports the number of shard goroutines.
func (pl *Pool) Size() int { return pl.p }

// run executes r on the pool's shards, blocking until the run drains. It
// reports false — without running anything — when the pool is closed or
// sized differently from the run's worker count; the caller then falls
// back to per-call workers.
func (pl *Pool) run(r *runState) bool {
	if len(r.ws) != pl.p {
		return false
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return false
	}
	r.wg.Add(pl.p)
	if r.e.opts.Balance {
		r.wg.Add(1)
	}
	for i := 0; i < pl.p; i++ {
		pl.work[i] <- r
	}
	if r.e.opts.Balance {
		pl.bal <- r
	}
	r.wg.Wait()
	return true
}

// Close terminates the shard goroutines and blocks until they have exited.
// Idempotent; an in-flight run completes first (run holds the pool while
// active). Runs attempted after Close fall back to per-call workers.
func (pl *Pool) Close() {
	pl.mu.Lock()
	if !pl.closed {
		pl.closed = true
		close(pl.quit)
	}
	pl.mu.Unlock()
	pl.wg.Wait()
}
