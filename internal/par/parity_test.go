package par

// Cross-driver parity: with the same options the goroutine driver and the
// virtual oracle expand the exact same unit multiset — split decisions are
// per-unit and deterministic, and balancing only re-homes units, never
// creates or drops them. These tests pin that contract, which is what lets
// the deterministic virtual driver stand in as the oracle for the
// wall-clock shard runtime.

import (
	"testing"

	"ngd/internal/gen"
	"ngd/internal/update"
)

// TestUnitParityAcrossDrivers: Metrics.Units and Metrics.Splits are
// exactly equal between the drivers, for every variant, on both PDect and
// PIncDect.
func TestUnitParityAcrossDrivers(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 300, 91)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 91})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.12), Gamma: 1, Seed: 92})

	variants := []struct {
		name string
		mk   func(int) Options
	}{
		{"hybrid", Hybrid}, {"ns", VariantNS}, {"nb", VariantNB}, {"no", VariantNO},
	}
	for _, v := range variants {
		real := v.mk(4)
		virt := v.mk(4)
		virt.Virtual = true

		rb := PDect(ds.G, rules, real)
		vb := PDect(ds.G, rules, virt)
		if rb.Metrics.Units != vb.Metrics.Units || rb.Metrics.Splits != vb.Metrics.Splits {
			t.Errorf("%s PDect: real units/splits %d/%d, virtual %d/%d", v.name,
				rb.Metrics.Units, rb.Metrics.Splits, vb.Metrics.Units, vb.Metrics.Splits)
		}

		ri := PIncDect(ds.G, rules, d, real)
		vi := PIncDect(ds.G, rules, d, virt)
		if ri.Metrics.Units != vi.Metrics.Units || ri.Metrics.Splits != vi.Metrics.Splits {
			t.Errorf("%s PIncDect: real units/splits %d/%d, virtual %d/%d", v.name,
				ri.Metrics.Units, ri.Metrics.Splits, vi.Metrics.Units, vi.Metrics.Splits)
		}
	}
}

// TestTotalWorkParityNoBalance: without the balancer (whose monitoring and
// transfer charges are timing-dependent under the goroutine driver) the
// summed per-unit cost is exactly equal between the drivers — every unit's
// expansion cost is a deterministic function of the unit, not of which
// shard ran it.
func TestTotalWorkParityNoBalance(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 250, 93)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 93})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.12), Gamma: 1, Seed: 94})

	real := VariantNB(4)
	virt := VariantNB(4)
	virt.Virtual = true

	rb := PDect(ds.G, rules, real)
	vb := PDect(ds.G, rules, virt)
	if rb.Metrics.TotalWork != vb.Metrics.TotalWork {
		t.Errorf("PDect nb TotalWork: real %v, virtual %v",
			rb.Metrics.TotalWork, vb.Metrics.TotalWork)
	}

	ri := PIncDect(ds.G, rules, d, real)
	vi := PIncDect(ds.G, rules, d, virt)
	if ri.Metrics.TotalWork != vi.Metrics.TotalWork {
		t.Errorf("PIncDect nb TotalWork: real %v, virtual %v",
			ri.Metrics.TotalWork, vi.Metrics.TotalWork)
	}
}

// TestLimitDrainSemanticsBothDrivers pins Options.Limit's documented drain
// contract on both drivers: once the limit is hit the remaining units are
// drained without expansion but still accounted in Metrics.Units, so a
// limited run never processes more units than the unlimited one; and a
// limit the run never reaches is an exact no-op.
func TestLimitDrainSemanticsBothDrivers(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 400, 3)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 12, MaxDiameter: 4, Seed: 3})

	fulls := map[bool]*Result{
		false: PDect(ds.G, rules, Hybrid(4)),
		true:  PDect(ds.G, rules, Oracle(4)),
	}
	nvio := len(fulls[false].Violations)
	if nvio < 3 {
		t.Skip("not enough violations to exercise the limit")
	}
	if got := len(fulls[true].Violations); got != nvio {
		t.Fatalf("full runs disagree: real %d violations, virtual %d", nvio, got)
	}

	for _, virtual := range []bool{false, true} {
		full := fulls[virtual]

		opts := Hybrid(4)
		opts.Virtual = virtual
		opts.Limit = 2
		limited := PDect(ds.G, rules, opts)
		if len(limited.Violations) < 2 {
			t.Errorf("virtual=%v: limited run emitted %d violations, want >= 2",
				virtual, len(limited.Violations))
		}
		if limited.Metrics.Units == 0 || limited.Metrics.Units > full.Metrics.Units {
			t.Errorf("virtual=%v: limited run processed %d units, full run %d (drained units must be accounted, and never exceed the full multiset)",
				virtual, limited.Metrics.Units, full.Metrics.Units)
		}

		// a limit above |Vio(Σ,G)| never triggers the drain: exact parity
		// with the unlimited run
		noop := Hybrid(4)
		noop.Virtual = virtual
		noop.Limit = nvio + 1
		unl := PDect(ds.G, rules, noop)
		if unl.Metrics.Units != full.Metrics.Units || len(unl.Violations) != nvio {
			t.Errorf("virtual=%v: unreached limit changed the run: %d units / %d violations, want %d / %d",
				virtual, unl.Metrics.Units, len(unl.Violations), full.Metrics.Units, nvio)
		}
	}
}
