package par

import (
	"testing"

	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/partition"
	"ngd/internal/update"
)

// mkUnits builds n distinguishable units (pivotRank doubles as identity).
func mkUnits(n int) []*unit {
	us := make([]*unit, n)
	for i := range us {
		us[i] = &unit{pivotRank: i}
	}
	return us
}

// balanceScenario: one overloaded sender, one empty receiver and two
// lightly-loaded receivers, so both the front-shedding order and the
// per-receiver deficit caps are observable.
//
//	sender  20 units, receivers 0 / 3 / 2  →  avg 6.25
//	deficits: 6, 3, 4  →  want 13; sender excess 20−6 = 14, capped at 13.
const (
	senderLoad = 20
	wantMoved  = 13
)

var recvLoads = []int{0, 3, 2}

// TestVBalanceFrontShedAndDeficits: the virtual balancer sheds from the
// *front* of the sender's queue and never fills a receiver past its
// deficit.
func TestVBalanceFrontShedAndDeficits(t *testing.T) {
	e := &engine{opts: Options{P: 4}.Defaults()}
	ws := make([]*vworker, 4)
	ws[0] = &vworker{}
	for _, u := range mkUnits(senderLoad) {
		ws[0].push(u)
	}
	for i, n := range recvLoads {
		ws[i+1] = &vworker{}
		// receiver-resident units carry negative ids to tell them apart
		for j := 0; j < n; j++ {
			ws[i+1].push(&unit{pivotRank: -(100*i + j + 1)})
		}
	}

	T := 1000.0
	moved := e.vbalance(ws, T)
	if moved != wantMoved {
		t.Fatalf("moved %d units, want %d", moved, wantMoved)
	}
	// front-shedding: the sender keeps the *newest* units 13..19
	if got := ws[0].size(); got != senderLoad-wantMoved {
		t.Fatalf("sender kept %d units, want %d", got, senderLoad-wantMoved)
	}
	for i := 0; !ws[0].empty(); i++ {
		u := ws[0].pop()
		if u.pivotRank != wantMoved+i {
			t.Fatalf("sender kept unit %d at position %d, want %d (tail not front was shed)",
				u.pivotRank, i, wantMoved+i)
		}
	}
	// deficit caps: receiver i accepted at most int(avg) − size_i
	lat := float64(e.opts.TrueLatency)
	for i, before := range recvLoads {
		w := ws[i+1]
		deficit := 6 - before // int(avg)=6
		accepted := 0
		for !w.empty() {
			u := w.pop()
			if u.pivotRank < 0 {
				continue // resident unit
			}
			accepted++
			if u.xferCharge != xferCPU {
				t.Errorf("transferred unit %d missing xferCharge", u.pivotRank)
			}
			if u.ready != T+lat {
				t.Errorf("transferred unit %d ready=%v, want %v", u.pivotRank, u.ready, T+lat)
			}
		}
		if accepted > deficit {
			t.Errorf("receiver %d accepted %d units, deficit cap %d", i, accepted, deficit)
		}
	}
}

// TestGBalanceFrontShedAndDeficits: the goroutine balancer must behave
// like the virtual one — front-shedding, deficit caps, xferCharge on moved
// units, and monitoring + serialization costs charged.
func TestGBalanceFrontShedAndDeficits(t *testing.T) {
	e := &engine{opts: Options{P: 4}.Defaults()}
	ws := make([]*gworker, 4)
	for i := range ws {
		ws[i] = &gworker{wake: make(chan struct{}, 1)}
	}
	for _, u := range mkUnits(senderLoad) {
		ws[0].q = append(ws[0].q, u)
	}
	for i, n := range recvLoads {
		for j := 0; j < n; j++ {
			ws[i+1].q = append(ws[i+1].q, &unit{pivotRank: -(100*i + j + 1)})
		}
	}

	moved := e.gbalance(ws)
	if moved != wantMoved {
		t.Fatalf("moved %d units, want %d", moved, wantMoved)
	}
	// front-shedding: the sender keeps units 13..19 in place
	if len(ws[0].q) != senderLoad-wantMoved {
		t.Fatalf("sender kept %d units, want %d", len(ws[0].q), senderLoad-wantMoved)
	}
	for i, u := range ws[0].q {
		if u.pivotRank != wantMoved+i {
			t.Fatalf("sender kept unit %d at position %d, want %d (tail not front was shed)",
				u.pivotRank, i, wantMoved+i)
		}
	}
	lat := float64(e.opts.TrueLatency)
	// monitoring cost on every worker; serialization cost on the sender
	if want := lat/2 + xferCPU*float64(wantMoved); ws[0].cost != want {
		t.Errorf("sender cost %v, want %v (monitor + serialize)", ws[0].cost, want)
	}
	for i, before := range recvLoads {
		w := ws[i+1]
		if w.cost != lat/2 {
			t.Errorf("receiver %d cost %v, want monitoring %v", i, w.cost, lat/2)
		}
		deficit := 6 - before
		accepted := 0
		for _, u := range w.q {
			if u.pivotRank < 0 {
				continue
			}
			accepted++
			if u.xferCharge != xferCPU {
				t.Errorf("transferred unit %d missing xferCharge", u.pivotRank)
			}
		}
		if accepted > deficit {
			t.Errorf("receiver %d accepted %d units, deficit cap %d", i, accepted, deficit)
		}
	}
}

// balScenario is one monitoring-round table entry, run through BOTH
// drivers' balance rounds. Every unit weighs 1 (no maintained stats), so
// the arithmetic is checkable by hand: avg = total/p, senders above η·avg
// shed ⌊load − avg⌋, receivers below η′·avg accept ⌊avg − load⌋.
type balScenario struct {
	name      string
	sender    int   // units on the overloaded worker 0
	recv      []int // resident units on workers 1..
	wantMoved int
}

var balScenarios = []balScenario{
	// the pinned case above: avg 6.25, deficits 6/3/4, excess 13
	{"pinned-20-recv-0-3-2", senderLoad, recvLoads, wantMoved},
	// single hot shard at p=8: avg 8.75, 7 receivers × deficit 8 = 56,
	// excess ⌊61.25⌋ = 61 capped by the exhausted deficits
	{"single-hot-shard-p8", 70, []int{0, 0, 0, 0, 0, 0, 0}, 56},
	// deficits and excess meet exactly: avg 8, 4 × deficit 8 = 32 = excess
	{"deficits-exhaust-exactly", 40, []int{0, 0, 0, 0}, 32},
	// mixed receivers: avg 14.5, only loads 0 and 1 are under η′·avg
	// (deficits 14 + 13 = 27 < excess 35)
	{"mixed-receivers", 50, []int{0, 12, 1, 12, 12}, 27},
	// near-even loads: nobody above η·avg, nobody below η′·avg — no-op
	{"no-skew-no-op", 12, []int{10, 11, 9}, 0},
}

func unitIDs(q []*unit) []int {
	ids := make([]int, len(q))
	for i, u := range q {
		ids[i] = u.pivotRank
	}
	return ids
}

// TestBalanceTableBothDrivers runs each scenario through gbalance AND
// vbalance and asserts the two drivers make byte-identical transfer
// decisions: same moved count, same per-worker unit sequences afterwards.
// The decisions come from the shared balance.go helpers, so any divergence
// here is a driver bug, not a policy difference.
func TestBalanceTableBothDrivers(t *testing.T) {
	for _, sc := range balScenarios {
		t.Run(sc.name, func(t *testing.T) {
			p := 1 + len(sc.recv)
			e := &engine{opts: Options{P: p}.Defaults()}

			gws := make([]*gworker, p)
			vws := make([]*vworker, p)
			for i := 0; i < p; i++ {
				gws[i] = &gworker{wake: make(chan struct{}, 1)}
				vws[i] = &vworker{}
			}
			for _, u := range mkUnits(sc.sender) {
				gws[0].q = append(gws[0].q, u)
			}
			for _, u := range mkUnits(sc.sender) {
				vws[0].push(u)
			}
			for i, n := range sc.recv {
				for j := 0; j < n; j++ {
					gws[i+1].q = append(gws[i+1].q, &unit{pivotRank: -(100*i + j + 1)})
					vws[i+1].push(&unit{pivotRank: -(100*i + j + 1)})
				}
			}

			if moved := e.gbalance(gws); moved != sc.wantMoved {
				t.Errorf("gbalance moved %d units, want %d", moved, sc.wantMoved)
			}
			if moved := e.vbalance(vws, 1000); moved != sc.wantMoved {
				t.Errorf("vbalance moved %d units, want %d", moved, sc.wantMoved)
			}
			for i := 0; i < p; i++ {
				gids := unitIDs(gws[i].q)
				vids := unitIDs(vws[i].q[vws[i].head:])
				if len(gids) != len(vids) {
					t.Fatalf("worker %d: goroutine driver holds %d units, virtual holds %d",
						i, len(gids), len(vids))
				}
				for k := range gids {
					if gids[k] != vids[k] {
						t.Fatalf("worker %d position %d: goroutine driver has unit %d, virtual has %d",
							i, k, gids[k], vids[k])
					}
				}
			}
		})
	}
}

// TestWorkerFoldsFragments: p greater than the partition's fragment count
// folds shard ownership (partition.Worker = Owner mod p), so the extra
// shards start empty and rebalancing has to fill them — the run must stay
// exact under both drivers.
func TestWorkerFoldsFragments(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 81)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 81})
	pt := partition.Greedy(ds.G, 3) // 3 fragments, 8 shards

	for v := 0; v < ds.G.NumNodes(); v++ {
		id := graph.NodeID(v)
		if w := pt.Worker(id, 8); w != pt.Owner(id)%8 || w < 0 || w >= 8 {
			t.Fatalf("Worker(%d, 8) = %d, owner %d", v, w, pt.Owner(id))
		}
		if pt.Worker(id, 0) != 0 {
			t.Fatalf("Worker(%d, p<1) must fold to shard 0", v)
		}
	}

	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 82})
	want := inc.IncDect(ds.G, rules, d, inc.Options{})
	for _, opts := range []Options{Hybrid(8), Oracle(8)} {
		opts.Part = pt
		got := PIncDect(ds.G, rules, d, opts)
		if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
			t.Errorf("PIncDect(p=8 over 3 fragments, virtual=%v) diverges from IncDect", opts.Virtual)
		}
	}
}

// TestRealDriverDifferentialP3: PDect and PIncDect under the goroutine
// driver at p=3 produce exactly the sequential answers (run under -race in
// CI; odd p exercises the round-robin broadcast paths).
func TestRealDriverDifferentialP3(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 250, 41)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 41})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.12), Gamma: 1, Seed: 42})

	opts := Hybrid(3) // the goroutine driver is the default

	wantBatch := detect.Dect(ds.G, rules, detect.Options{}).Violations
	gotBatch := PDect(ds.G, rules, opts)
	if !equalKeys(gotBatch.Violations, wantBatch) {
		t.Errorf("PDect real p=3: got %d violations, want %d",
			len(gotBatch.Violations), len(wantBatch))
	}

	wantInc := inc.IncDect(ds.G, rules, d, inc.Options{})
	gotInc := PIncDect(ds.G, rules, d, opts)
	if !equalKeys(gotInc.Delta.Plus, wantInc.Plus) || !equalKeys(gotInc.Delta.Minus, wantInc.Minus) {
		t.Errorf("PIncDect real p=3: ΔVio⁺ %d/%d ΔVio⁻ %d/%d",
			len(gotInc.Delta.Plus), len(wantInc.Plus),
			len(gotInc.Delta.Minus), len(wantInc.Minus))
	}
}

// TestPIncDectManyWorkers is the p=130 regression for the partition int8
// overflow: `int8(v % p)` wrapped negative for p > 127, so Owner returned
// a negative fragment and the seed distribution panicked.
func TestPIncDectManyWorkers(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 51)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 51})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.1), Gamma: 1, Seed: 52})

	want := inc.IncDect(ds.G, rules, d, inc.Options{})
	got := PIncDect(ds.G, rules, d, Hybrid(130))
	if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
		t.Errorf("PIncDect p=130 diverges from IncDect")
	}
}

// TestMaintainedPartitionMatches: a partition supplied via Options.Part —
// including one that is stale with respect to nodes added afterwards —
// yields the same ΔVio as the internally built one.
func TestMaintainedPartitionMatches(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 220, 61)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 61})
	pt := partition.Greedy(ds.G, 8) // built before the update adds nodes
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 62})

	want := inc.IncDect(ds.G, rules, d, inc.Options{})
	opts := Hybrid(8)
	opts.Part = pt
	got := PIncDect(ds.G, rules, d, opts)
	if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
		t.Errorf("PIncDect with maintained partition diverges from IncDect")
	}
}
