package par

import (
	"testing"

	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/inc"
	"ngd/internal/partition"
	"ngd/internal/update"
)

// mkUnits builds n distinguishable units (pivotRank doubles as identity).
func mkUnits(n int) []*unit {
	us := make([]*unit, n)
	for i := range us {
		us[i] = &unit{pivotRank: i}
	}
	return us
}

// balanceScenario: one overloaded sender, one empty receiver and two
// lightly-loaded receivers, so both the front-shedding order and the
// per-receiver deficit caps are observable.
//
//	sender  20 units, receivers 0 / 3 / 2  →  avg 6.25
//	deficits: 6, 3, 4  →  want 13; sender excess 20−6 = 14, capped at 13.
const (
	senderLoad = 20
	wantMoved  = 13
)

var recvLoads = []int{0, 3, 2}

// TestVBalanceFrontShedAndDeficits: the virtual balancer sheds from the
// *front* of the sender's queue and never fills a receiver past its
// deficit.
func TestVBalanceFrontShedAndDeficits(t *testing.T) {
	e := &engine{opts: Options{P: 4}.Defaults()}
	ws := make([]*vworker, 4)
	ws[0] = &vworker{}
	for _, u := range mkUnits(senderLoad) {
		ws[0].push(u)
	}
	for i, n := range recvLoads {
		ws[i+1] = &vworker{}
		// receiver-resident units carry negative ids to tell them apart
		for j := 0; j < n; j++ {
			ws[i+1].push(&unit{pivotRank: -(100*i + j + 1)})
		}
	}

	T := 1000.0
	moved := e.vbalance(ws, T)
	if moved != wantMoved {
		t.Fatalf("moved %d units, want %d", moved, wantMoved)
	}
	// front-shedding: the sender keeps the *newest* units 13..19
	if got := ws[0].size(); got != senderLoad-wantMoved {
		t.Fatalf("sender kept %d units, want %d", got, senderLoad-wantMoved)
	}
	for i := 0; !ws[0].empty(); i++ {
		u := ws[0].pop()
		if u.pivotRank != wantMoved+i {
			t.Fatalf("sender kept unit %d at position %d, want %d (tail not front was shed)",
				u.pivotRank, i, wantMoved+i)
		}
	}
	// deficit caps: receiver i accepted at most int(avg) − size_i
	lat := float64(e.opts.TrueLatency)
	for i, before := range recvLoads {
		w := ws[i+1]
		deficit := 6 - before // int(avg)=6
		accepted := 0
		for !w.empty() {
			u := w.pop()
			if u.pivotRank < 0 {
				continue // resident unit
			}
			accepted++
			if u.xferCharge != xferCPU {
				t.Errorf("transferred unit %d missing xferCharge", u.pivotRank)
			}
			if u.ready != T+lat {
				t.Errorf("transferred unit %d ready=%v, want %v", u.pivotRank, u.ready, T+lat)
			}
		}
		if accepted > deficit {
			t.Errorf("receiver %d accepted %d units, deficit cap %d", i, accepted, deficit)
		}
	}
}

// TestGBalanceFrontShedAndDeficits: the goroutine balancer must behave
// like the virtual one — front-shedding, deficit caps, xferCharge on moved
// units, and monitoring + serialization costs charged.
func TestGBalanceFrontShedAndDeficits(t *testing.T) {
	e := &engine{opts: Options{P: 4}.Defaults()}
	ws := make([]*gworker, 4)
	for i := range ws {
		ws[i] = &gworker{wake: make(chan struct{}, 1)}
	}
	for _, u := range mkUnits(senderLoad) {
		ws[0].q = append(ws[0].q, u)
	}
	for i, n := range recvLoads {
		for j := 0; j < n; j++ {
			ws[i+1].q = append(ws[i+1].q, &unit{pivotRank: -(100*i + j + 1)})
		}
	}

	moved := e.gbalance(ws)
	if moved != wantMoved {
		t.Fatalf("moved %d units, want %d", moved, wantMoved)
	}
	// front-shedding: the sender keeps units 13..19 in place
	if len(ws[0].q) != senderLoad-wantMoved {
		t.Fatalf("sender kept %d units, want %d", len(ws[0].q), senderLoad-wantMoved)
	}
	for i, u := range ws[0].q {
		if u.pivotRank != wantMoved+i {
			t.Fatalf("sender kept unit %d at position %d, want %d (tail not front was shed)",
				u.pivotRank, i, wantMoved+i)
		}
	}
	lat := float64(e.opts.TrueLatency)
	// monitoring cost on every worker; serialization cost on the sender
	if want := lat/2 + xferCPU*float64(wantMoved); ws[0].cost != want {
		t.Errorf("sender cost %v, want %v (monitor + serialize)", ws[0].cost, want)
	}
	for i, before := range recvLoads {
		w := ws[i+1]
		if w.cost != lat/2 {
			t.Errorf("receiver %d cost %v, want monitoring %v", i, w.cost, lat/2)
		}
		deficit := 6 - before
		accepted := 0
		for _, u := range w.q {
			if u.pivotRank < 0 {
				continue
			}
			accepted++
			if u.xferCharge != xferCPU {
				t.Errorf("transferred unit %d missing xferCharge", u.pivotRank)
			}
		}
		if accepted > deficit {
			t.Errorf("receiver %d accepted %d units, deficit cap %d", i, accepted, deficit)
		}
	}
}

// TestRealDriverDifferentialP3: PDect and PIncDect under the goroutine
// driver at p=3 produce exactly the sequential answers (run under -race in
// CI; odd p exercises the round-robin broadcast paths).
func TestRealDriverDifferentialP3(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 250, 41)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 41})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.12), Gamma: 1, Seed: 42})

	opts := Hybrid(3)
	opts.Real = true

	wantBatch := detect.Dect(ds.G, rules, detect.Options{}).Violations
	gotBatch := PDect(ds.G, rules, opts)
	if !equalKeys(gotBatch.Violations, wantBatch) {
		t.Errorf("PDect real p=3: got %d violations, want %d",
			len(gotBatch.Violations), len(wantBatch))
	}

	wantInc := inc.IncDect(ds.G, rules, d, inc.Options{})
	gotInc := PIncDect(ds.G, rules, d, opts)
	if !equalKeys(gotInc.Delta.Plus, wantInc.Plus) || !equalKeys(gotInc.Delta.Minus, wantInc.Minus) {
		t.Errorf("PIncDect real p=3: ΔVio⁺ %d/%d ΔVio⁻ %d/%d",
			len(gotInc.Delta.Plus), len(wantInc.Plus),
			len(gotInc.Delta.Minus), len(wantInc.Minus))
	}
}

// TestPIncDectManyWorkers is the p=130 regression for the partition int8
// overflow: `int8(v % p)` wrapped negative for p > 127, so Owner returned
// a negative fragment and the seed distribution panicked.
func TestPIncDectManyWorkers(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 51)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 51})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.1), Gamma: 1, Seed: 52})

	want := inc.IncDect(ds.G, rules, d, inc.Options{})
	got := PIncDect(ds.G, rules, d, Hybrid(130))
	if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
		t.Errorf("PIncDect p=130 diverges from IncDect")
	}
}

// TestMaintainedPartitionMatches: a partition supplied via Options.Part —
// including one that is stale with respect to nodes added afterwards —
// yields the same ΔVio as the internally built one.
func TestMaintainedPartitionMatches(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 220, 61)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 61})
	pt := partition.Greedy(ds.G, 8) // built before the update adds nodes
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 62})

	want := inc.IncDect(ds.G, rules, d, inc.Options{})
	opts := Hybrid(8)
	opts.Part = pt
	got := PIncDect(ds.G, rules, d, opts)
	if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
		t.Errorf("PIncDect with maintained partition diverges from IncDect")
	}
}
