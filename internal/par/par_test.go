package par

import (
	"fmt"
	"sort"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/inc"
	"ngd/internal/update"
)

func vioKeys(vs []core.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Key()
	}
	sort.Strings(out)
	return out
}

func equalKeys(a, b []core.Violation) bool {
	ka, kb := vioKeys(a), vioKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestPDectMatchesDect: the parallel batch algorithm computes exactly
// Vio(Σ, G), under both drivers and all variants.
func TestPDectMatchesDect(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 250, 11)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 12, MaxDiameter: 5, Seed: 11})
	want := detect.Dect(ds.G, rules, detect.Options{}).Violations

	for _, opts := range []Options{Hybrid(4), VariantNS(4), VariantNB(4), VariantNO(4), Hybrid(1), Hybrid(9)} {
		got := PDect(ds.G, rules, opts)
		if !equalKeys(got.Violations, want) {
			t.Errorf("PDect(split=%v,bal=%v,p=%d) = %d violations, want %d",
				opts.SplitUnits, opts.Balance, opts.P, len(got.Violations), len(want))
		}
	}
	got := PDect(ds.G, rules, Oracle(4))
	if !equalKeys(got.Violations, want) {
		t.Errorf("PDect virtual driver = %d violations, want %d", len(got.Violations), len(want))
	}
}

// TestPIncDectMatchesIncDect: the parallel incremental algorithm computes
// exactly ΔVio(Σ, G, ΔG), under both drivers and all variants.
func TestPIncDectMatchesIncDect(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		seed := int64(31 + trial*17)
		profile := []gen.Profile{gen.YAGO2, gen.Pokec, gen.DBpedia}[trial]
		ds := gen.Generate(profile, 200, seed)
		rules := gen.Rules(profile, gen.RuleConfig{Count: 10, MaxDiameter: 5, Seed: seed})
		d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.1), Gamma: 1, Seed: seed * 7})

		want := inc.IncDect(ds.G, rules, d, inc.Options{})

		for _, opts := range []Options{Hybrid(4), VariantNS(4), VariantNB(4), VariantNO(4), Hybrid(12)} {
			got := PIncDect(ds.G, rules, d, opts)
			if !equalKeys(got.Delta.Plus, want.Plus) {
				t.Errorf("trial %d PIncDect(split=%v,bal=%v,p=%d) ΔVio⁺: got %d want %d",
					trial, opts.SplitUnits, opts.Balance, opts.P, len(got.Delta.Plus), len(want.Plus))
			}
			if !equalKeys(got.Delta.Minus, want.Minus) {
				t.Errorf("trial %d PIncDect(split=%v,bal=%v,p=%d) ΔVio⁻: got %d want %d",
					trial, opts.SplitUnits, opts.Balance, opts.P, len(got.Delta.Minus), len(want.Minus))
			}
		}
		got := PIncDect(ds.G, rules, d, Oracle(4))
		if !equalKeys(got.Delta.Plus, want.Plus) || !equalKeys(got.Delta.Minus, want.Minus) {
			t.Errorf("trial %d virtual driver mismatch", trial)
		}
	}
}

// TestVirtualDeterminism: the virtual driver must be bit-for-bit
// reproducible (metrics and output order included).
func TestVirtualDeterminism(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 150, 5)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 8, MaxDiameter: 4, Seed: 5})
	d := update.Random(ds, update.Config{Size: 80, Gamma: 1, Seed: 6})

	r1 := PIncDect(ds.G, rules, d, Oracle(8))
	r2 := PIncDect(ds.G, rules, d, Oracle(8))
	if r1.Metrics.Makespan != r2.Metrics.Makespan || r1.Metrics.Units != r2.Metrics.Units ||
		r1.Metrics.Moved != r2.Metrics.Moved {
		t.Errorf("virtual driver not deterministic: %+v vs %+v", r1.Metrics, r2.Metrics)
	}
	if !equalKeys(r1.Delta.Plus, r2.Delta.Plus) || !equalKeys(r1.Delta.Minus, r2.Delta.Minus) {
		t.Error("virtual driver violation sets differ across runs")
	}
}

// TestParallelScalability: simulated makespan must shrink as p grows
// (paper Exp-4: PIncDect is 3.7× faster from p=4 to p=20), while total work
// stays within a constant factor.
func TestParallelScalability(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 600, 13)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 16, MaxDiameter: 5, Seed: 13})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 14})

	spans := map[int]float64{}
	for _, p := range []int{4, 20} {
		r := PIncDect(ds.G, rules, d, Oracle(p))
		spans[p] = r.Metrics.Makespan
	}
	if spans[20] >= spans[4] {
		t.Errorf("no speedup: makespan p=4 %v, p=20 %v", spans[4], spans[20])
	}
	speedup := spans[4] / spans[20]
	if speedup < 1.5 {
		t.Errorf("weak scalability: %v× from p=4 to 20", speedup)
	}
	t.Logf("speedup p=4→20: %.2f×", speedup)
}

// TestHybridBeatsNO: with skewed workloads, the hybrid strategy should not
// be slower than the no-split/no-balance variant (paper Exp-1(b): hybrid
// improves PIncDect_NO by 1.5–1.8×).
func TestHybridBeatsNO(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 800, 23)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 14, MaxDiameter: 5, Seed: 23})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.2), Gamma: 1, Seed: 24})

	hybrid := PIncDect(ds.G, rules, d, Oracle(8))
	noOpts := VariantNO(8)
	noOpts.Virtual = true
	no := PIncDect(ds.G, rules, d, noOpts)
	t.Logf("hybrid=%.0f no=%.0f (ratio %.2f)", hybrid.Metrics.Makespan, no.Metrics.Makespan,
		no.Metrics.Makespan/hybrid.Metrics.Makespan)
	if hybrid.Metrics.Makespan > no.Metrics.Makespan*1.15 {
		t.Errorf("hybrid slower than NO variant: %v vs %v",
			hybrid.Metrics.Makespan, no.Metrics.Makespan)
	}
}

// TestLimit stops early.
func TestLimit(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 400, 3)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 12, MaxDiameter: 4, Seed: 3})
	full := PDect(ds.G, rules, Oracle(4))
	if len(full.Violations) < 3 {
		t.Skip("not enough violations to test limiting")
	}
	opts := Oracle(4)
	opts.Limit = 2
	limited := PDect(ds.G, rules, opts)
	if len(limited.Violations) < 2 || len(limited.Violations) >= len(full.Violations) {
		t.Errorf("limit: got %d violations (full %d)", len(limited.Violations), len(full.Violations))
	}
}

// TestEmptyInputs: no rules, or an empty delta, must terminate cleanly.
func TestEmptyInputs(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 50, 2)
	empty := core.NewSet()
	if r := PDect(ds.G, empty, Hybrid(4)); len(r.Violations) != 0 {
		t.Error("PDect with no rules returned violations")
	}
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 4, MaxDiameter: 3, Seed: 2})
	var d = update.Random(ds, update.Config{Size: 0, Gamma: 1, Seed: 1})
	if r := PIncDect(ds.G, rules, d, Hybrid(4)); len(r.Delta.Plus)+len(r.Delta.Minus) != 0 {
		t.Error("PIncDect with empty delta returned changes")
	}
	// the virtual oracle with empty work must terminate cleanly too
	if r := PIncDect(ds.G, rules, d, Oracle(2)); len(r.Delta.Plus)+len(r.Delta.Minus) != 0 {
		t.Error("virtual driver with empty delta returned changes")
	}
}

// TestMetricsSanity: splitting increments Splits; balancing with tiny
// interval fires events.
func TestMetricsSanity(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 500, 77)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 10, MaxDiameter: 5, Seed: 77})
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.2), Gamma: 1, Seed: 78})

	opts := Hybrid(8)
	opts.Intvl = 2000
	r := PIncDect(ds.G, rules, d, opts)
	if r.Metrics.Units == 0 || r.Metrics.TotalWork == 0 {
		t.Errorf("empty metrics: %+v", r.Metrics)
	}
	if r.Metrics.NC == 0 {
		t.Error("candidate neighborhood not measured")
	}
	ns := VariantNS(8)
	rNS := PIncDect(ds.G, rules, d, ns)
	if rNS.Metrics.Splits != 0 {
		t.Errorf("ns variant split %d times", rNS.Metrics.Splits)
	}
	fmt.Printf("hybrid metrics: %+v\n", r.Metrics)
}
