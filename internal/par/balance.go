package par

// Shared balancing arithmetic for the two drivers. The paper's monitoring
// round (§6.3) is: workers whose load exceeds η× the average shed from the
// front of their queue (the oldest, shallowest units — the biggest
// subtrees), receivers below η′× the average accept at most their deficit.
// Loads are measured in estimated unit cost (engine.unitWeight), which the
// maintained LiveStats turn into subtree size; without stats every unit
// weighs 1 and this is exactly the count-based scheme. Both drivers call
// these helpers so their transfer decisions are identical by construction —
// the balancer property tests run the same tables through both.

import "math"

// balTarget is one under-loaded worker and the load it can still accept.
type balTarget struct {
	idx     int
	deficit float64
}

// balReceivers selects the workers below the low-water mark η′·avg, each
// capped at its deficit ⌊avg − load⌋ so a transfer never turns a receiver
// into the next straggler.
func balReceivers(loads []float64, avg, etaLow float64) []*balTarget {
	var ts []*balTarget
	for i, l := range loads {
		if l < etaLow*avg {
			if def := math.Floor(avg - l); def > 0 {
				ts = append(ts, &balTarget{i, def})
			}
		}
	}
	return ts
}

// shedAssign walks the sender's queue from the front, assigning each unit
// round-robin to a receiver with remaining deficit, until the shed weight
// reaches excess or every deficit is exhausted. It returns how many front
// units to take and their destination worker per unit, and decrements the
// targets' deficits in place (senders drain a shared receiver budget).
func shedAssign(q []*unit, excess float64, targets []*balTarget, weigh func(*unit) float64) (int, []int) {
	var dest []int
	acc := 0.0
	ti := 0
	for _, u := range q {
		if acc >= excess {
			break
		}
		hops := 0
		for targets[ti].deficit <= 0 {
			ti = (ti + 1) % len(targets)
			if hops++; hops > len(targets) {
				return len(dest), dest
			}
		}
		w := weigh(u)
		dest = append(dest, targets[ti].idx)
		targets[ti].deficit -= w
		acc += w
		ti = (ti + 1) % len(targets)
	}
	return len(dest), dest
}
