package par

import (
	"sort"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/partition"
	"ngd/internal/plan"
)

// placeSeeds distributes seed units across the P workers: heaviest first
// onto the least-loaded worker (lowest index on ties) by the balancer's
// unitWeight estimate. The sort is stable and unestimated units all weigh
// 1, so without maintained statistics this is exactly the round-robin
// distribution of the paper's line 5.
func (e *engine) placeSeeds(seeds []*unit) [][]*unit {
	weights := make([]float64, len(seeds))
	for i, u := range seeds {
		weights[i] = e.unitWeight(u)
	}
	order := make([]int, len(seeds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	initial := make([][]*unit, e.opts.P)
	loads := make([]float64, e.opts.P)
	for _, i := range order {
		best := 0
		for w := 1; w < e.opts.P; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		initial[best] = append(initial[best], seeds[i])
		loads[best] += weights[i]
	}
	return initial
}

// runBatch executes prepared batch seeds on the selected driver.
func (e *engine) runBatch(seeds []*unit) *Result {
	initial := e.placeSeeds(seeds)
	res := &Result{}
	var tagged []taggedVio
	if e.opts.Virtual {
		tagged, res.Metrics = e.runVirtual(initial, 0)
	} else {
		tagged, res.Metrics = e.runReal(initial)
	}
	for _, tv := range tagged {
		res.Violations = append(res.Violations, tv.vio)
	}
	return res
}

// PDect runs parallel batch detection of Vio(Σ, G) (§5.1: the extension of
// the GFD parallel batch algorithm to NGDs). Rules whose plans share a
// structural prefix are fanned out as forest units (shared.go), mirroring
// the sequential detector's shared-prefix enumeration; programs built with
// NoSharing fall back to one task per rule. Initial work units are chunks
// of each seed-candidate list, placed heaviest-first by estimated cost;
// from there the hybrid strategy applies.
func PDect(g graph.View, rules *core.Set, opts Options) *Result {
	opts = opts.Defaults()
	prog := opts.program(g, rules)
	if !prog.Options().NoSharing {
		sh := prog.ShareFor(g, rules, opts.NoPruning)
		e := newSharedEngine(opts, g, sh)
		return e.runBatch(e.seedShared())
	}

	var tasks []task
	for _, r := range rules.Rules {
		c, pl := prog.PlanFor(g, r, nil, opts.NoPruning)
		tasks = append(tasks, task{
			c: c, view: g, plan: pl,
			le: detect.NewLitEval(g, c, pl),
		})
	}
	e := newEngine(opts, tasks)

	var seeds []*unit
	for t := range tasks {
		tk := &tasks[t]
		if tk.le.NumY() == 0 {
			continue // X → ∅ holds vacuously
		}
		nPat := len(tk.c.Rule.Pattern.Nodes)
		probe := match.NewPartial(nPat)
		prune, ySat := tk.le.EvalLevel(0, probe, 0)
		if prune {
			continue
		}
		cnt := e.matchers[0][t].CandidateCount(0, probe)
		if cnt == 0 {
			continue
		}
		chunk := cnt / (opts.P * 4)
		if chunk < 1 {
			chunk = 1
		}
		for lo := 0; lo < cnt; lo += chunk {
			hi := lo + chunk
			if hi > cnt {
				hi = cnt
			}
			seeds = append(seeds, &unit{
				task: t, depth: 0, ySat: ySat,
				pivotRank: -1, pivotSlot: -1,
				partial: match.NewPartial(nPat),
				lo:      lo, hi: hi,
			})
		}
	}
	return e.runBatch(seeds)
}

// PIncDect runs parallel incremental detection of ΔVio(Σ, G, ΔG) (§6.3,
// Figure 3). g is the pre-update graph; ΔG is normalized internally. The
// update pivots triggered by ΔG are distributed across the p workers by
// fragment ownership; the candidate neighborhood NC(ΔG, Σ) is identified up
// front and its construction and replication cost charged to all workers.
func PIncDect(g *graph.Graph, rules *core.Set, delta *graph.Delta, opts Options) *Result {
	opts = opts.Defaults()
	norm := delta
	if !opts.AssumeNormalized {
		norm = delta.Normalize(g)
	}
	newView := graph.NewOverlay(g, norm)
	ins := norm.Insertions()
	del := norm.Deletions()

	insIdx := make(map[edgeKey]int, len(ins))
	for i, op := range ins {
		insIdx[edgeKey{op.Src, op.Dst, op.Label}] = i
	}
	delIdx := make(map[edgeKey]int, len(del))
	for i, op := range del {
		delIdx[edgeKey{op.Src, op.Dst, op.Label}] = i
	}

	// tasks: rule × pattern-edge slot × side
	prog := opts.program(g, rules)
	var tasks []task
	taskOf := make(map[[3]int]int) // (ruleIdx, slot, side) -> task index
	compiled := make([]*plan.Compiled, len(rules.Rules))
	for ri, r := range rules.Rules {
		compiled[ri] = prog.CompiledFor(r)
	}
	getTask := func(ri, slot int, plus bool) int {
		side := 0
		if plus {
			side = 1
		}
		key := [3]int{ri, slot, side}
		if idx, ok := taskOf[key]; ok {
			return idx
		}
		c := compiled[ri]
		var view graph.View = g
		if plus {
			view = newView
		}
		pe := c.Rule.Pattern.Edges[slot]
		bound := []int{pe.Src}
		if pe.Dst != pe.Src {
			bound = append(bound, pe.Dst)
		}
		_, pl := prog.PlanFor(view, c.Rule, bound, opts.NoPruning)
		tasks = append(tasks, task{
			c: c, view: view, plan: pl,
			le:   detect.NewLitEval(view, c, pl),
			plus: plus, inc: true,
		})
		taskOf[key] = len(tasks) - 1
		return len(tasks) - 1
	}

	// seed update pivots (paper line 5)
	var seeds []*unit
	addPivots := func(ops []graph.EdgeOp, plus bool, view graph.View) {
		for rank, op := range ops {
			for ri, c := range compiled {
				if len(c.Rule.Y) == 0 {
					continue // X → ∅ can never be violated
				}
				for slot, pe := range c.Rule.Pattern.Edges {
					if c.CP.EdgeLabels[slot] != op.Label {
						continue
					}
					if pe.Src == pe.Dst && op.Src != op.Dst {
						continue
					}
					ti := getTask(ri, slot, plus)
					tk := &tasks[ti]
					partial := match.NewPartial(len(c.Rule.Pattern.Nodes))
					partial[pe.Src] = op.Src
					partial[pe.Dst] = op.Dst
					if !match.VerifyBound(view, c.CP, partial) {
						continue
					}
					prune, ySat := tk.le.EvalLevel(0, partial, 0)
					if prune {
						continue
					}
					seeds = append(seeds, &unit{
						task: ti, depth: 0, ySat: ySat,
						pivotRank: rank, pivotSlot: slot,
						partial: partial, lo: 0, hi: -1,
					})
				}
			}
		}
	}
	addPivots(ins, true, newView)
	addPivots(del, false, g)

	e := newEngine(opts, tasks)
	e.insIdx = insIdx
	e.delIdx = delIdx

	// Pivots are discovered fragment-locally (each processor scans the unit
	// updates landing in its fragment, Figure 3 lines 1–2), so a pivot's
	// initial owner is the shard its source node's fragment folds onto
	// (partition.Worker). This is what produces the regionally-skewed
	// workloads the hybrid strategy then splits and rebalances; see
	// partition.Greedy. A maintained partition supplied via opts.Part is
	// used as-is (the serving session keeps one current across commits);
	// only a one-shot call without one pays the full-graph build here.
	pt := opts.Part
	if pt == nil {
		pt = partition.Greedy(g, opts.P)
	}
	initial := make([][]*unit, opts.P)
	for _, u := range seeds {
		op := ins
		if !tasks[u.task].plus {
			op = del
		}
		w := pt.Worker(op[u.pivotRank].Src, opts.P)
		initial[w] = append(initial[w], u)
	}

	// candidate neighborhood NC(ΔG, Σ): identified in parallel, replicated
	// at all workers (Figure 3 lines 1–4); charged as |NC|/p work plus a
	// broadcast latency per worker.
	nc := newView.NeighborhoodOf(norm.TouchedNodes(), rules.Diameter())
	startCost := float64(len(nc))/float64(opts.P) + float64(opts.TrueLatency)

	res := &Result{}
	var tagged []taggedVio
	if opts.Virtual {
		tagged, res.Metrics = e.runVirtual(initial, startCost)
	} else {
		tagged, res.Metrics = e.runReal(initial)
	}
	res.Metrics.NC = len(nc)
	for _, tv := range tagged {
		if tv.plus {
			res.Delta.Plus = append(res.Delta.Plus, tv.vio)
		} else {
			res.Delta.Minus = append(res.Delta.Minus, tv.vio)
		}
	}
	return res
}
