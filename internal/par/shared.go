package par

// Batch PDect under cross-rule sharing (PR 6 tentpole): the plan layer's
// prefix forest (plan.Share) is executed as shard work units instead of one
// sequential depth-first walk. A forest unit binds one more step of a
// ShareNode shared by every rule riding it, so a shared prefix's candidate
// scan and edge checks are paid once per shard rather than once per rule.
// Each rule keeps its own literal schedule (detect.LitEval — immutable and
// goroutine-safe), its own ySat progress and its own pruned flag inside the
// unit (unit.ySatR, aligned with ShareNode.Rules; -1 = pruned on this
// path), and a rule's violations are emitted by whichever worker completes
// its terminal node — the per-rule "reduce" side of the fan-out. Splitting
// and skew balancing apply to forest units exactly as to per-rule units.
//
// Correctness mirrors detect.RunShared: for each rule the forest walk
// restricted to its path enumerates exactly the candidates its own plan
// would, with the literal schedule firing at the same levels with the same
// bindings — so the emitted set equals the per-rule search, merely
// partitioned across shards. The differential suites enforce this against
// Dect on every fuzz workload.

import (
	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/plan"
)

// newSharedEngine arranges a forest run: units reference flattened forest
// nodes, matchers and partial-solution scratch are per worker per rule.
func newSharedEngine(opts Options, v graph.View, sh *plan.Share) *engine {
	e := &engine{opts: opts, share: sh, sview: v}
	e.initFree()
	e.sles = make([]*detect.LitEval, len(sh.Rules))
	for i := range sh.Rules {
		sr := &sh.Rules[i]
		e.sles[i] = detect.NewLitEval(v, sr.C, sr.Plan)
	}
	e.nodeOf = make(map[*plan.ShareNode]int)
	var flat func(nd *plan.ShareNode)
	flat = func(nd *plan.ShareNode) {
		for _, ch := range nd.Children {
			e.nodeOf[ch] = len(e.snodes)
			e.snodes = append(e.snodes, ch)
			flat(ch)
		}
	}
	flat(sh.Root)
	e.smatchers = make([][]*match.Matcher, opts.P)
	e.spartials = make([][][]graph.NodeID, opts.P)
	for w := 0; w < opts.P; w++ {
		e.smatchers[w] = make([]*match.Matcher, len(sh.Rules))
		e.spartials[w] = make([][]graph.NodeID, len(sh.Rules))
	}
	if st := viewStats(v); st != nil {
		e.sWidth = make([]float64, len(e.snodes))
		e.sBelow = make([]float64, len(e.snodes))
		// parents precede their children in snodes (preorder flattening),
		// so a reverse pass sees every child's estimate before its parent's
		for i := len(e.snodes) - 1; i >= 0; i-- {
			nd := e.snodes[i]
			f := stepFan(v, st, sh.Rules[nd.Rep].Plan, nd.Depth-1)
			if f > estCap {
				f = estCap
			}
			e.sWidth[i] = f
			var b float64
			for _, ch := range nd.Children {
				ci := e.nodeOf[ch]
				b += e.sWidth[ci] * (1 + e.sBelow[ci])
			}
			if b > estCap {
				b = estCap
			}
			e.sBelow[i] = b
		}
	}
	return e
}

// smatcher returns worker w's matcher for share rule ri, built on first use
// (only node representatives ever need one).
func (e *engine) smatcher(w, ri int) *match.Matcher {
	if e.smatchers[w][ri] == nil {
		e.smatchers[w][ri] = match.NewMatcher(e.sview, e.share.Rules[ri].Plan, match.Hooks{})
	}
	return e.smatchers[w][ri]
}

// spartial returns worker w's partial-solution scratch for share rule ri.
// Every use rewrites the positions of the steps it evaluates, so stale
// deeper bindings are never read (a literal at level L only references
// nodes bound by steps < L).
func (e *engine) spartial(w, ri int) []graph.NodeID {
	if e.spartials[w][ri] == nil {
		e.spartials[w][ri] = match.NewPartial(len(e.share.Rules[ri].Rule.Pattern.Nodes))
	}
	return e.spartials[w][ri]
}

// seedShared builds the initial forest units: chunks of each root child's
// seed scan, with every rule's level-0 literal gate evaluated once.
func (e *engine) seedShared() []*unit {
	sh := e.share
	y0 := make([]int, len(sh.Rules))
	alive := make([]bool, len(sh.Rules))
	for ri := range sh.Rules {
		prune, y := e.sles[ri].EvalLevel(0, e.spartial(0, ri), 0)
		alive[ri] = !prune
		y0[ri] = y
	}
	var units []*unit
	for _, ch := range sh.Root.Children {
		ySatR := make([]int, len(ch.Rules))
		live := false
		for i, ri := range ch.Rules {
			if alive[ri] {
				ySatR[i] = y0[ri]
				live = true
			} else {
				ySatR[i] = -1
			}
		}
		if !live {
			continue
		}
		cnt := e.smatcher(0, ch.Rep).CandidateCount(0, e.spartial(0, ch.Rep))
		if cnt == 0 {
			continue
		}
		chunk := cnt / (e.opts.P * 4)
		if chunk < 1 {
			chunk = 1
		}
		ti := e.nodeOf[ch]
		for lo := 0; lo < cnt; lo += chunk {
			hi := lo + chunk
			if hi > cnt {
				hi = cnt
			}
			units = append(units, &unit{
				task: ti, depth: 0, pivotRank: -1, pivotSlot: -1,
				ySatR: append([]int(nil), ySatR...),
				lo:    lo, hi: hi,
			})
		}
	}
	return units
}

// ruleIdx locates share rule ri in a node's (ascending, tiny) rule list.
func ruleIdx(rules []int, ri int) int {
	for i, r := range rules {
		if r == ri {
			return i
		}
	}
	return -1
}

// expandShared processes one forest unit on worker w: scan the entering
// step of the unit's node once via the representative's matcher, evaluate
// each riding rule's literal level per candidate, emit the rules completing
// here, and fan out the surviving continuations as child units.
func (e *engine) expandShared(w int, u *unit) expandResult {
	nd := e.snodes[u.task]
	d := nd.Depth - 1 // the step this unit scans (== u.depth)
	var res expandResult
	if u.bcast {
		res.cost += float64(d + 1)
	}
	res.cost += u.xferCharge

	m := e.smatcher(w, nd.Rep)
	rp := e.spartial(w, nd.Rep)
	// reconstruct each live rule's partial prefix from the path bindings;
	// the representative's is rebuilt even when pruned (its plan drives the
	// scan and the edge checks for the whole subtree)
	for i, ri := range nd.Rules {
		if u.ySatR[i] < 0 && ri != nd.Rep {
			continue
		}
		pp := e.spartial(w, ri)
		steps := e.share.Rules[ri].Plan.Steps
		for j := 0; j < d; j++ {
			pp[steps[j].Node] = u.partial[j]
		}
	}

	// split decision (only for full-range units), same rule as task units
	if e.opts.SplitUnits && !u.bcast && u.lo == 0 && u.hi < 0 {
		cnt := m.CandidateCount(d, rp)
		var below float64
		if e.sBelow != nil {
			below = e.sBelow[u.task]
		}
		if e.splitWanted(cnt, d, below) {
			res.split = true
			share := (cnt + e.opts.P - 1) / e.opts.P
			for i := 0; i < e.opts.P; i++ {
				lo := i * share
				hi := lo + share
				if lo >= cnt {
					break
				}
				if hi > cnt {
					hi = cnt
				}
				res.children = append(res.children, &unit{
					task: u.task, depth: u.depth,
					pivotRank: -1, pivotSlot: -1,
					partial: e.clonePartial(w, u.partial),
					ySatR:   e.cloneYSat(w, u.ySatR),
					lo:      lo, hi: hi, bcast: true,
				})
			}
			res.cost += float64(d + 1)
			return res
		}
	}

	cur := make([]int, len(nd.Rules)) // per-candidate survival (-1 = pruned)
	checksBefore := m.Stat.Checks
	scanned := m.CandidatesRange(d, rp, u.lo, u.hi, func(cand graph.NodeID) bool {
		if !m.CheckStep(d, rp, cand) {
			return true
		}
		any := false
		for i, ri := range nd.Rules {
			cur[i] = -1
			if u.ySatR[i] < 0 {
				continue
			}
			pp := e.spartial(w, ri)
			pp[e.share.Rules[ri].Plan.Steps[d].Node] = cand
			prune, ySat := e.sles[ri].EvalLevel(d+1, pp, u.ySatR[i])
			if prune {
				continue
			}
			cur[i] = ySat
			any = true
		}
		if !any {
			return true
		}
		// reduce: emit the rules whose plan completes at this node
		for _, ri := range nd.Terminal {
			i := ruleIdx(nd.Rules, ri)
			if cur[i] < 0 || cur[i] >= e.sles[ri].NumY() {
				continue // pruned, or all Y satisfied: not a violation
			}
			pp := e.spartial(w, ri)
			res.vios = append(res.vios, taggedVio{core.Violation{
				Rule:  e.share.Rules[ri].Rule,
				Match: core.Match(append([]graph.NodeID(nil), pp...)),
			}, false})
		}
		// fan out the divergent continuations that still carry a live rule
		for _, gch := range nd.Children {
			live := false
			j := 0
			for _, ri := range gch.Rules {
				for nd.Rules[j] != ri {
					j++
				}
				if cur[j] >= 0 {
					live = true
					break
				}
			}
			if !live {
				continue
			}
			ySatR := e.newYSatBuf(w, len(gch.Rules))
			j = 0
			for gi, ri := range gch.Rules {
				for nd.Rules[j] != ri {
					j++
				}
				ySatR[gi] = cur[j]
			}
			bind := e.newPartialBuf(w, d+1)
			copy(bind, u.partial)
			bind[d] = cand
			res.children = append(res.children, &unit{
				task: e.nodeOf[gch], depth: d + 1,
				pivotRank: -1, pivotSlot: -1,
				partial: bind, ySatR: ySatR, lo: 0, hi: -1,
			})
		}
		return true
	})
	res.cost += float64(scanned + (m.Stat.Checks - checksBefore))
	return res
}
