package par

import (
	"sync"
	"sync/atomic"
	"time"
)

// gworker is one real worker goroutine's state.
type gworker struct {
	mu   sync.Mutex
	q    []*unit
	vios []taggedVio
	cost float64 // accumulated work cost (for the Makespan metric)
	wake chan struct{}
}

func (w *gworker) push(u *unit) {
	w.mu.Lock()
	w.q = append(w.q, u)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *gworker) pop() (*unit, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) == 0 {
		return nil, false
	}
	u := w.q[len(w.q)-1] // LIFO: depth-first keeps queues small
	w.q = w.q[:len(w.q)-1]
	return u, true
}

func (w *gworker) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.q)
}

// addCost accumulates work cost; the balancer goroutine also charges
// monitoring and serialization costs, so access is synchronized.
func (w *gworker) addCost(c float64) {
	w.mu.Lock()
	w.cost += c
	w.mu.Unlock()
}

// takeFront steals n units from the front (oldest, typically shallowest —
// the biggest subtrees, which is what rebalancing wants to move; the
// virtual driver's vworker sheds the same end).
func (w *gworker) takeFront(n int) []*unit {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > len(w.q) {
		n = len(w.q)
	}
	out := append([]*unit(nil), w.q[:n]...)
	w.q = append(w.q[:0], w.q[n:]...)
	return out
}

// gbalance is one monitoring round of the goroutine driver, mirroring
// vbalance unit for unit: every worker pays a monitoring cost, senders
// above η× the average shed from the front up to the receivers' total
// deficit, each receiver accepts at most its deficit (avg − size), and
// every transferred unit carries an xferCharge the receiving worker pays
// on expansion. It returns the number of units moved.
func (e *engine) gbalance(ws []*gworker) int {
	p := len(ws)
	lat := float64(e.opts.TrueLatency)
	sizes := make([]int, p)
	total := 0
	for i, w := range ws {
		sizes[i] = w.size()
		total += sizes[i]
	}
	if total == 0 {
		return 0
	}
	avg := float64(total) / float64(p)
	// monitoring cost: a status round-trip per worker
	for _, w := range ws {
		w.addCost(lat / 2)
	}
	// receivers: workers below the low-water mark, each accepting at most
	// its deficit, so a transfer never turns a receiver into the next
	// straggler (see vbalance)
	type recv struct {
		w       *gworker
		deficit int
	}
	var targets []recv
	for i, w := range ws {
		if float64(sizes[i]) < e.opts.EtaLow*avg {
			if def := int(avg) - sizes[i]; def > 0 {
				targets = append(targets, recv{w, def})
			}
		}
	}
	if len(targets) == 0 {
		return 0
	}
	moved := 0
	for i, w := range ws {
		if float64(sizes[i]) <= e.opts.Eta*avg {
			continue
		}
		excess := sizes[i] - int(avg)
		want := 0
		for _, t := range targets {
			want += t.deficit
		}
		if excess > want {
			excess = want
		}
		if excess <= 0 {
			continue
		}
		units := w.takeFront(excess)
		// serializing the shed units costs the sender CPU
		w.addCost(xferCPU * float64(len(units)))
		ti := 0
		for _, u := range units {
			for targets[ti].deficit == 0 {
				ti = (ti + 1) % len(targets)
			}
			u.xferCharge = xferCPU // deserialize on arrival
			targets[ti].w.push(u)
			targets[ti].deficit--
			ti = (ti + 1) % len(targets)
		}
		moved += len(units)
	}
	return moved
}

// runReal executes the engine on p OS-scheduled goroutines. The balancer
// goroutine implements the paper's periodic monitoring: every interval it
// runs gbalance, the real-time twin of the virtual driver's vbalance.
// Splitting decisions reuse the same cost model as the virtual driver.
func (e *engine) runReal(initial [][]*unit) ([]taggedVio, Metrics) {
	p := e.opts.P
	ws := make([]*gworker, p)
	var pending atomic.Int64
	// per-side violation tallies for the Limit cutoff (see Options.Limit)
	var sideCount [2]atomic.Int64
	var splits, moved, balEvents atomic.Int64
	var unitCount atomic.Int64
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() { closeOnce.Do(func() { close(done) }) }

	total := 0
	for i := 0; i < p; i++ {
		ws[i] = &gworker{wake: make(chan struct{}, 1)}
		total += len(initial[i])
	}
	pending.Store(int64(total))
	if total == 0 {
		finish()
	}
	for i := 0; i < p; i++ {
		for _, u := range initial[i] {
			ws[i].q = append(ws[i].q, u)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			self := ws[w]
			for {
				u, ok := self.pop()
				if !ok {
					select {
					case <-done:
						return
					case <-self.wake:
						continue
					}
				}
				if e.opts.Limit > 0 &&
					sideCount[sideIdx(e.tasks[u.task].plus)].Load() >= int64(e.opts.Limit) {
					// this side hit its limit: drain without expanding, but
					// account the unit and its pending transfer charge so
					// Units/cost mean the same thing as under the virtual
					// driver
					self.addCost(u.xferCharge)
					unitCount.Add(1)
					if pending.Add(-1) == 0 {
						finish()
					}
					continue
				}
				res := e.expand(w, u)
				self.addCost(res.cost)
				unitCount.Add(1)
				if len(res.children) > 0 {
					pending.Add(int64(len(res.children)))
					if res.split {
						splits.Add(1)
						for i, child := range res.children {
							ws[i%p].push(child)
						}
					} else {
						for _, child := range res.children {
							self.push(child)
						}
					}
				}
				if len(res.vios) > 0 {
					// vios are only ever touched by the owning worker
					self.vios = append(self.vios, res.vios...)
					for _, tv := range res.vios {
						sideCount[sideIdx(tv.plus)].Add(1)
					}
				}
				if pending.Add(-1) == 0 {
					finish()
				}
			}
		}(i)
	}

	// balancer: the paper's workload monitor at interval intvl.
	if e.opts.Balance {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// interpret Intvl cost units as microseconds at real-time
			// scale (1 cost unit ≈ 1 µs of work)
			tick := time.Duration(e.opts.Intvl) * time.Microsecond
			if tick < 100*time.Microsecond {
				tick = 100 * time.Microsecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					balEvents.Add(1)
					moved.Add(int64(e.gbalance(ws)))
				}
			}
		}()
	}

	wg.Wait()

	var vios []taggedVio
	met := Metrics{
		Units:         int(unitCount.Load()),
		Splits:        int(splits.Load()),
		Moved:         int(moved.Load()),
		BalanceEvents: int(balEvents.Load()),
	}
	for _, w := range ws {
		vios = append(vios, w.vios...)
		met.WorkerCost = append(met.WorkerCost, w.cost)
		met.TotalWork += w.cost
		if w.cost > met.Makespan {
			met.Makespan = w.cost
		}
	}
	sortViolations(vios)
	return vios, met
}
