package par

import (
	"math"
	"sync"
)

// gworker is one real worker goroutine's state.
type gworker struct {
	mu   sync.Mutex
	q    []*unit
	vios []taggedVio
	cost float64 // accumulated work cost (for the Makespan metric)
	wake chan struct{}
}

func (w *gworker) push(u *unit) {
	w.mu.Lock()
	w.q = append(w.q, u)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *gworker) pop() (*unit, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) == 0 {
		return nil, false
	}
	u := w.q[len(w.q)-1] // LIFO: depth-first keeps queues small
	w.q = w.q[:len(w.q)-1]
	return u, true
}

// addCost accumulates work cost; the balancer goroutine also charges
// monitoring and serialization costs, so access is synchronized.
func (w *gworker) addCost(c float64) {
	w.mu.Lock()
	w.cost += c
	w.mu.Unlock()
}

// wload measures the queue for the balancer: estimated remaining cost
// (Σ unitWeight) and unit count.
func (w *gworker) wload(e *engine) (float64, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var load float64
	for _, u := range w.q {
		load += e.unitWeight(u)
	}
	return load, len(w.q)
}

// shedFront plans and removes a shed from the front of the queue — the
// oldest, typically shallowest units, i.e. the biggest subtrees, which is
// what rebalancing wants to move (the virtual driver's vworker sheds the
// same end) — under one lock, so the owner cannot pop a unit the balancer
// is re-homing.
func (w *gworker) shedFront(e *engine, excess float64, targets []*balTarget) ([]*unit, []int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	take, dest := shedAssign(w.q, excess, targets, e.unitWeight)
	if take == 0 {
		return nil, nil
	}
	out := append([]*unit(nil), w.q[:take]...)
	w.q = append(w.q[:0], w.q[take:]...)
	return out, dest
}

// gbalance is one monitoring round of the goroutine driver, mirroring
// vbalance decision for decision (both call the balance.go helpers): every
// worker pays a monitoring cost, senders above η× the average load shed
// from the front, receivers below η′× accept at most their deficit, and
// every transferred unit carries an xferCharge the receiving worker pays on
// expansion. Loads are estimated unit costs (unitWeight); without
// maintained statistics every unit weighs 1 and this is the paper's
// count-based round. It returns the number of units moved.
func (e *engine) gbalance(ws []*gworker) int {
	p := len(ws)
	lat := float64(e.opts.TrueLatency)
	loads := make([]float64, p)
	total := 0
	var totalLoad float64
	for i, w := range ws {
		var n int
		loads[i], n = w.wload(e)
		totalLoad += loads[i]
		total += n
	}
	if total == 0 {
		return 0
	}
	avg := totalLoad / float64(p)
	// monitoring cost: a status round-trip per worker
	for _, w := range ws {
		w.addCost(lat / 2)
	}
	targets := balReceivers(loads, avg, e.opts.EtaLow)
	if len(targets) == 0 {
		return 0
	}
	moved := 0
	for i, w := range ws {
		if loads[i] <= e.opts.Eta*avg {
			continue
		}
		excess := math.Floor(loads[i] - avg)
		if excess <= 0 {
			continue
		}
		units, dest := w.shedFront(e, excess, targets)
		if len(units) == 0 {
			continue
		}
		// serializing the shed units costs the sender CPU
		w.addCost(xferCPU * float64(len(units)))
		for k, u := range units {
			u.xferCharge = xferCPU // deserialize on arrival
			ws[dest[k]].push(u)
		}
		moved += len(units)
	}
	return moved
}

// runReal executes the engine on the goroutine driver: on the persistent
// shard pool when Options.Pool is usable, otherwise on p goroutines spawned
// for this call (one-shot callers, tests, and the fallback after the pool
// closes). The run's mechanics — worker loop, balancer tick, metrics — live
// on runState (pool.go) and are identical on both paths.
func (e *engine) runReal(initial [][]*unit) ([]taggedVio, Metrics) {
	r := newRunState(e, initial)
	if pl := e.opts.Pool; pl != nil && pl.run(r) {
		return r.metrics()
	}
	p := e.opts.P
	r.wg.Add(p)
	for i := 0; i < p; i++ {
		go func(w int) {
			defer r.wg.Done()
			r.work(w)
		}(i)
	}
	if e.opts.Balance {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.balanceLoop()
		}()
	}
	r.wg.Wait()
	return r.metrics()
}
