package par

import (
	"sync"
	"sync/atomic"
	"time"
)

// gworker is one real worker goroutine's state.
type gworker struct {
	mu   sync.Mutex
	q    []*unit
	vios []taggedVio
	cost float64 // accumulated work cost (for the Makespan metric)
	wake chan struct{}
}

func (w *gworker) push(u *unit) {
	w.mu.Lock()
	w.q = append(w.q, u)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *gworker) pop() (*unit, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) == 0 {
		return nil, false
	}
	u := w.q[len(w.q)-1] // LIFO: depth-first keeps queues small
	w.q = w.q[:len(w.q)-1]
	return u, true
}

func (w *gworker) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.q)
}

// takeFront steals n units from the front (oldest, typically shallowest —
// the biggest subtrees, which is what rebalancing wants to move).
func (w *gworker) takeFront(n int) []*unit {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > len(w.q) {
		n = len(w.q)
	}
	out := append([]*unit(nil), w.q[:n]...)
	w.q = append(w.q[:0], w.q[n:]...)
	return out
}

// runReal executes the engine on p OS-scheduled goroutines. The balancer
// goroutine implements the paper's periodic monitoring: every interval it
// moves queued units from workers above η× the average queue length to
// workers below η′×. Splitting decisions reuse the same cost model as the
// virtual driver.
func (e *engine) runReal(initial [][]*unit) ([]taggedVio, Metrics) {
	p := e.opts.P
	ws := make([]*gworker, p)
	var pending atomic.Int64
	var vioCount atomic.Int64
	var splits, moved, balEvents atomic.Int64
	var unitCount atomic.Int64
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() { closeOnce.Do(func() { close(done) }) }

	total := 0
	for i := 0; i < p; i++ {
		ws[i] = &gworker{wake: make(chan struct{}, 1)}
		total += len(initial[i])
	}
	pending.Store(int64(total))
	if total == 0 {
		finish()
	}
	for i := 0; i < p; i++ {
		for _, u := range initial[i] {
			ws[i].q = append(ws[i].q, u)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			self := ws[w]
			for {
				u, ok := self.pop()
				if !ok {
					select {
					case <-done:
						return
					case <-self.wake:
						continue
					}
				}
				if e.opts.Limit > 0 && vioCount.Load() >= int64(e.opts.Limit) {
					// drain without expanding
					if pending.Add(-1) == 0 {
						finish()
					}
					continue
				}
				res := e.expand(w, u)
				self.cost += res.cost
				unitCount.Add(1)
				if len(res.children) > 0 {
					pending.Add(int64(len(res.children)))
					if res.split {
						splits.Add(1)
						for i, child := range res.children {
							ws[i%p].push(child)
						}
					} else {
						for _, child := range res.children {
							self.push(child)
						}
					}
				}
				if len(res.vios) > 0 {
					self.vios = append(self.vios, res.vios...)
					vioCount.Add(int64(len(res.vios)))
				}
				if pending.Add(-1) == 0 {
					finish()
				}
			}
		}(i)
	}

	// balancer: the paper's workload monitor at interval intvl.
	if e.opts.Balance {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// interpret Intvl cost units as microseconds at real-time
			// scale (1 cost unit ≈ 1 µs of work)
			tick := time.Duration(e.opts.Intvl) * time.Microsecond
			if tick < 100*time.Microsecond {
				tick = 100 * time.Microsecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					balEvents.Add(1)
					sizes := make([]int, p)
					total := 0
					for i, w := range ws {
						sizes[i] = w.size()
						total += sizes[i]
					}
					if total == 0 {
						continue
					}
					avg := float64(total) / float64(p)
					var targets []*gworker
					for i, w := range ws {
						if float64(sizes[i]) < e.opts.EtaLow*avg {
							targets = append(targets, w)
						}
					}
					if len(targets) == 0 {
						continue
					}
					for i, w := range ws {
						if float64(sizes[i]) <= e.opts.Eta*avg {
							continue
						}
						excess := sizes[i] - int(avg)
						if excess <= 0 {
							continue
						}
						units := w.takeFront(excess)
						moved.Add(int64(len(units)))
						for j, u := range units {
							targets[j%len(targets)].push(u)
						}
					}
				}
			}
		}()
	}

	wg.Wait()

	var vios []taggedVio
	met := Metrics{
		Units:         int(unitCount.Load()),
		Splits:        int(splits.Load()),
		Moved:         int(moved.Load()),
		BalanceEvents: int(balEvents.Load()),
	}
	for _, w := range ws {
		vios = append(vios, w.vios...)
		met.WorkerCost = append(met.WorkerCost, w.cost)
		met.TotalWork += w.cost
		if w.cost > met.Makespan {
			met.Makespan = w.cost
		}
	}
	sortViolations(vios)
	return vios, met
}
