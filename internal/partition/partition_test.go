package partition

import (
	"testing"

	"ngd/internal/gen"
	"ngd/internal/graph"
)

func TestHashCoversAllNodes(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 1)
	pt := Hash(ds.G, 8)
	loads := pt.Loads()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != ds.G.NumNodes() {
		t.Fatalf("loads sum %d != |V| %d", total, ds.G.NumNodes())
	}
	// hash is near-perfectly balanced
	for i, l := range loads {
		if l < ds.G.NumNodes()/8-1 || l > ds.G.NumNodes()/8+1 {
			t.Errorf("fragment %d load %d not balanced", i, l)
		}
	}
}

func TestGreedyBalancedAndBetterCut(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 500, 2)
	p := 8
	hash := Hash(ds.G, p)
	greedy := Greedy(ds.G, p)

	// every node assigned
	for v, f := range greedy.Frag {
		if f < 0 || int(f) >= p {
			t.Fatalf("node %d unassigned: %d", v, f)
		}
	}
	// capacity bound: within 10% slack + 1
	capacity := (ds.G.NumNodes()*11)/(10*p) + 1
	for i, l := range greedy.Loads() {
		if l > capacity {
			t.Errorf("fragment %d exceeds capacity: %d > %d", i, l, capacity)
		}
	}
	// affinity-driven placement should not cut more than hash does
	hc := hash.CrossingEdges(ds.G)
	gc := greedy.CrossingEdges(ds.G)
	if gc > hc {
		t.Errorf("greedy cut %d worse than hash cut %d", gc, hc)
	}
	t.Logf("edge cut: hash=%d greedy=%d (of %d edges)", hc, gc, ds.G.NumEdges())
}

func TestSingleFragment(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 50, 3)
	pt := Greedy(ds.G, 1)
	if pt.CrossingEdges(ds.G) != 0 {
		t.Error("single fragment has crossing edges")
	}
	// degenerate p
	pt = Hash(ds.G, 0)
	if pt.P != 1 {
		t.Error("p=0 should clamp to 1")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New()
	pt := Greedy(g, 4)
	if len(pt.Frag) != 0 {
		t.Error("empty graph should produce empty partition")
	}
}
