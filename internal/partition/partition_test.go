package partition

import (
	"testing"

	"ngd/internal/gen"
	"ngd/internal/graph"
)

func TestHashCoversAllNodes(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 1)
	pt := Hash(ds.G, 8)
	loads := pt.Loads()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != ds.G.NumNodes() {
		t.Fatalf("loads sum %d != |V| %d", total, ds.G.NumNodes())
	}
	// hash is near-perfectly balanced
	for i, l := range loads {
		if l < ds.G.NumNodes()/8-1 || l > ds.G.NumNodes()/8+1 {
			t.Errorf("fragment %d load %d not balanced", i, l)
		}
	}
}

func TestGreedyBalancedAndBetterCut(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 500, 2)
	p := 8
	hash := Hash(ds.G, p)
	greedy := Greedy(ds.G, p)

	// every node assigned
	for v, f := range greedy.Frag {
		if f < 0 || int(f) >= p {
			t.Fatalf("node %d unassigned: %d", v, f)
		}
	}
	// capacity bound: within 10% slack + 1
	capacity := (ds.G.NumNodes()*11)/(10*p) + 1
	for i, l := range greedy.Loads() {
		if l > capacity {
			t.Errorf("fragment %d exceeds capacity: %d > %d", i, l, capacity)
		}
	}
	// affinity-driven placement should not cut more than hash does
	hc := hash.CrossingEdges(ds.G)
	gc := greedy.CrossingEdges(ds.G)
	if gc > hc {
		t.Errorf("greedy cut %d worse than hash cut %d", gc, hc)
	}
	t.Logf("edge cut: hash=%d greedy=%d (of %d edges)", hc, gc, ds.G.NumEdges())
}

func TestSingleFragment(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 50, 3)
	pt := Greedy(ds.G, 1)
	if pt.CrossingEdges(ds.G) != 0 {
		t.Error("single fragment has crossing edges")
	}
	// degenerate p
	pt = Hash(ds.G, 0)
	if pt.P != 1 {
		t.Error("p=0 should clamp to 1")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New()
	pt := Greedy(g, 4)
	if len(pt.Frag) != 0 {
		t.Error("empty graph should produce empty partition")
	}
}

// TestManyFragmentsOwnerNonNegative is the regression for the int8
// overflow: with P > 127 the old `int8(v % p)` wrapped negative, so Owner
// returned a negative fragment and the seed distribution panicked.
func TestManyFragmentsOwnerNonNegative(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 300, 7)
	p := 130
	for name, pt := range map[string]*Partition{
		"hash":   Hash(ds.G, p),
		"greedy": Greedy(ds.G, p),
	} {
		for v := 0; v < ds.G.NumNodes(); v++ {
			f := pt.Owner(graph.NodeID(v))
			if f < 0 || f >= p {
				t.Fatalf("%s: Owner(%d) = %d out of [0,%d)", name, v, f, p)
			}
		}
		total := 0
		for _, l := range pt.Loads() {
			total += l
		}
		if total != ds.G.NumNodes() {
			t.Errorf("%s: loads sum %d != |V| %d", name, total, ds.G.NumNodes())
		}
	}
}

// TestOwnerBoundsSafeForUnplacedNodes: nodes added after the partition was
// built must get a valid fallback owner, not an out-of-range index.
func TestOwnerBoundsSafeForUnplacedNodes(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 100, 4)
	pt := Greedy(ds.G, 8)
	placed := pt.Placed()
	for i := 0; i < 20; i++ {
		ds.G.AddNode("person")
	}
	for v := placed; v < ds.G.NumNodes(); v++ {
		f := pt.Owner(graph.NodeID(v))
		if f < 0 || f >= 8 {
			t.Fatalf("Owner(%d) = %d for unplaced node", v, f)
		}
	}
}

// TestExtendPlacesNewNodes: Extend absorbs nodes added since the build and
// keeps loads consistent and within capacity.
func TestExtendPlacesNewNodes(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 300, 9)
	p := 8
	pt := Greedy(ds.G, p)
	base := ds.G.NumNodes()

	// new nodes wired into the existing graph so affinity matters
	for i := 0; i < 50; i++ {
		v := ds.G.AddNode("person")
		ds.G.AddEdgeL(v, graph.NodeID(i%base), ds.G.Symbols().Label("knows"))
	}
	placed := pt.Extend(ds.G)
	if placed != 50 {
		t.Fatalf("Extend placed %d nodes, want 50", placed)
	}
	if pt.Placed() != ds.G.NumNodes() {
		t.Fatalf("Placed() %d != |V| %d", pt.Placed(), ds.G.NumNodes())
	}
	capacity := (ds.G.NumNodes()*11)/(10*p) + 1
	total := 0
	for i, l := range pt.Loads() {
		total += l
		if l > capacity {
			t.Errorf("fragment %d exceeds capacity after Extend: %d > %d", i, l, capacity)
		}
	}
	if total != ds.G.NumNodes() {
		t.Errorf("loads sum %d != |V| %d after Extend", total, ds.G.NumNodes())
	}
	if pt.Extend(ds.G) != 0 {
		t.Error("second Extend with no new nodes placed something")
	}
}

// TestRefineImprovesCut: moving a node whose neighbors all live elsewhere
// must reduce the edge cut and keep the load accounting consistent.
func TestRefineImprovesCut(t *testing.T) {
	g := graph.New()
	l := g.Symbols().Label("e")
	// a star: center + 6 leaves, all placed adversarially
	center := g.AddNode("n")
	var leaves []graph.NodeID
	for i := 0; i < 6; i++ {
		v := g.AddNode("n")
		g.AddEdgeL(center, v, l)
		leaves = append(leaves, v)
	}
	// filler nodes so capacity has slack everywhere
	for i := 0; i < 20; i++ {
		g.AddNode("n")
	}
	// adversarial placement, built by hand: center alone on fragment 0
	// with all its leaves on fragment 1, filler balancing the loads
	pt := newPartition(2, g.NumNodes())
	pt.Frag[center] = 0
	for _, v := range leaves {
		pt.Frag[v] = 1
	}
	for i := 0; i < 20; i++ {
		f := int32(0)
		if i >= 13 {
			f = 1
		}
		pt.Frag[7+i] = f
	}
	for _, f := range pt.Frag {
		pt.load[f]++
	}
	before := pt.CrossingEdges(g)
	moved := pt.Refine(g, []graph.NodeID{center})
	if moved != 1 {
		t.Fatalf("Refine moved %d nodes, want 1", moved)
	}
	after := pt.CrossingEdges(g)
	if after >= before {
		t.Errorf("Refine did not improve cut: %d -> %d", before, after)
	}
	total := 0
	for _, ld := range pt.Loads() {
		total += ld
	}
	if total != g.NumNodes() {
		t.Errorf("loads sum %d != |V| %d after Refine", total, g.NumNodes())
	}
}
