// Package partition fragments a graph across p workers by edge-cut
// (paper §6.3: PIncDect works on a graph partitioned via edge-cut or
// vertex-cut; the paper's experiments use METIS). Two partitioners are
// provided:
//
//   - Hash: stateless modulo assignment (baseline).
//   - Greedy: a single-pass streaming partitioner in the spirit of
//     Fennel/LDG — each node goes to the fragment holding most of its
//     already-placed neighbors, penalized by fragment load — which, like
//     METIS, keeps fragments balanced while reducing crossing edges.
//
// Fragmentation drives worker ownership of update pivots and the
// communication-cost accounting of the parallel engine: an edge whose
// endpoints live in different fragments is a crossing edge.
package partition

import (
	"ngd/internal/graph"
)

// Partition assigns every node to one of p fragments.
type Partition struct {
	P    int
	Frag []int8 // Frag[v] = fragment of node v
}

// Owner returns the fragment owning node v.
func (pt *Partition) Owner(v graph.NodeID) int { return int(pt.Frag[v]) }

// Hash partitions nodes round-robin by id.
func Hash(g *graph.Graph, p int) *Partition {
	if p < 1 {
		p = 1
	}
	pt := &Partition{P: p, Frag: make([]int8, g.NumNodes())}
	for v := range pt.Frag {
		pt.Frag[v] = int8(v % p)
	}
	return pt
}

// Greedy streams nodes in id order, placing each on the fragment with the
// highest score: (#neighbors already there) − load_penalty. Balance is
// enforced with a hard capacity of ⌈1.1·|V|/p⌉ per fragment.
func Greedy(g *graph.Graph, p int) *Partition {
	if p < 1 {
		p = 1
	}
	n := g.NumNodes()
	pt := &Partition{P: p, Frag: make([]int8, n)}
	for v := range pt.Frag {
		pt.Frag[v] = -1
	}
	load := make([]int, p)
	capacity := (n*11)/(10*p) + 1
	scores := make([]int, p)
	for v := 0; v < n; v++ {
		for i := range scores {
			scores[i] = 0
		}
		for _, h := range g.Out(graph.NodeID(v)) {
			if f := pt.Frag[h.To]; f >= 0 {
				scores[f]++
			}
		}
		for _, h := range g.In(graph.NodeID(v)) {
			if f := pt.Frag[h.To]; f >= 0 {
				scores[f]++
			}
		}
		best, bestScore := -1, -1<<30
		for i := 0; i < p; i++ {
			if load[i] >= capacity {
				continue
			}
			// neighbor affinity minus a linear load penalty, scaled so the
			// penalty matters once fragments diverge by >2% of |V|/p
			s := scores[i]*50*p - load[i]*p*50/(n+1)
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		if best < 0 {
			best = v % p // all at capacity (can't happen with slack > 1)
		}
		pt.Frag[v] = int8(best)
		load[best]++
	}
	return pt
}

// CrossingEdges counts edges whose endpoints are in different fragments
// (the edge-cut objective).
func (pt *Partition) CrossingEdges(g *graph.Graph) int {
	cut := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, h := range g.Out(graph.NodeID(v)) {
			if pt.Frag[v] != pt.Frag[h.To] {
				cut++
			}
		}
	}
	return cut
}

// Loads returns the node count per fragment.
func (pt *Partition) Loads() []int {
	loads := make([]int, pt.P)
	for _, f := range pt.Frag {
		loads[f]++
	}
	return loads
}
