// Package partition fragments a graph across p workers by edge-cut
// (paper §6.3: PIncDect works on a graph partitioned via edge-cut or
// vertex-cut; the paper's experiments use METIS). Two partitioners are
// provided:
//
//   - Hash: stateless modulo assignment (baseline).
//   - Greedy: a single-pass streaming partitioner in the spirit of
//     Fennel/LDG — each node goes to the fragment holding most of its
//     already-placed neighbors, penalized by fragment load — which, like
//     METIS, keeps fragments balanced while reducing crossing edges.
//
// Fragmentation drives worker ownership of update pivots and the
// communication-cost accounting of the parallel engine: an edge whose
// endpoints live in different fragments is a crossing edge.
//
// A Partition is a *maintained* structure: built once over the initial
// graph, then kept current across commits with Extend (place nodes added
// since the build) and Refine (churn-driven local improvement around the
// nodes an update touched). A long-lived serving session therefore never
// pays the O(|V|+|E|) rebuild per batch — per-batch maintenance is
// proportional to |ΔG| and the degree of the touched nodes.
package partition

import (
	"ngd/internal/graph"
)

// Partition assigns every node to one of p fragments.
type Partition struct {
	P    int
	Frag []int32 // Frag[v] = fragment of node v
	load []int   // node count per fragment (maintained by Extend/Refine)
}

// Owner returns the fragment owning node v. Nodes added to the graph after
// the partition was built (and not yet absorbed by Extend) fall back to
// modulo placement, so Owner never indexes out of range or goes negative.
func (pt *Partition) Owner(v graph.NodeID) int {
	if int(v) >= len(pt.Frag) {
		return int(v) % pt.P
	}
	return int(pt.Frag[v])
}

// Worker maps node v's fragment onto one of p shard workers. When the
// partition has more fragments than the run has workers (a maintained
// partition serving a smaller shard pool), consecutive fragments fold onto
// workers modulo p; with p ≥ P the mapping is the fragment itself. This
// keeps pivot placement fragment-local — the locality the paper's Figure 3
// lines 1–2 assume — without requiring the partition and the pool to agree
// on a size.
func (pt *Partition) Worker(v graph.NodeID, p int) int {
	if p < 1 {
		p = 1
	}
	return pt.Owner(v) % p
}

// newPartition allocates a partition for n placed nodes.
func newPartition(p, n int) *Partition {
	if p < 1 {
		p = 1
	}
	return &Partition{P: p, Frag: make([]int32, n), load: make([]int, p)}
}

// Hash partitions nodes round-robin by id.
func Hash(g *graph.Graph, p int) *Partition {
	pt := newPartition(p, g.NumNodes())
	for v := range pt.Frag {
		f := v % pt.P
		pt.Frag[v] = int32(f)
		pt.load[f]++
	}
	return pt
}

// capacity is the hard per-fragment bound for n placed nodes: 10% slack
// over perfect balance, plus one.
func (pt *Partition) capacity(n int) int {
	return (n*11)/(10*pt.P) + 1
}

// neighborScores tallies, per fragment, how many of v's already-placed
// neighbors (id < len(Frag), self-loops excluded) live there — the
// affinity objective shared by the initial build, Extend and Refine.
func (pt *Partition) neighborScores(g *graph.Graph, v graph.NodeID, scores []int) {
	for i := range scores {
		scores[i] = 0
	}
	for _, h := range g.Out(v) {
		if int(h.To) < len(pt.Frag) && h.To != v {
			scores[pt.Frag[h.To]]++
		}
	}
	for _, h := range g.In(v) {
		if int(h.To) < len(pt.Frag) && h.To != v {
			scores[pt.Frag[h.To]]++
		}
	}
}

// place greedily assigns node v: the fragment with the highest neighbor
// affinity minus a linear load penalty, under the capacity bound. n is the
// total node count the load penalty is normalized against.
func (pt *Partition) place(g *graph.Graph, v graph.NodeID, scores []int, capacity, n int) int {
	pt.neighborScores(g, v, scores)
	best, bestScore := -1, -1<<30
	for i := 0; i < pt.P; i++ {
		if pt.load[i] >= capacity {
			continue
		}
		// neighbor affinity minus a linear load penalty, scaled so the
		// penalty matters once fragments diverge by >2% of |V|/p
		s := scores[i]*50*pt.P - pt.load[i]*pt.P*50/(n+1)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		best = int(v) % pt.P // all at capacity (can't happen with slack > 1)
	}
	return best
}

// Greedy streams nodes in id order, placing each on the fragment with the
// highest score: (#neighbors already there) − load_penalty. Balance is
// enforced with a hard capacity of ⌈1.1·|V|/p⌉ per fragment. It is an
// Extend from the empty placement, so builds and incremental extends can
// never diverge.
func Greedy(g *graph.Graph, p int) *Partition {
	pt := newPartition(p, 0)
	pt.Extend(g)
	return pt
}

// Extend places every node added to g since the partition was built (or
// last extended), with the same greedy streaming rule as the initial build.
// It returns the number of nodes placed. Cost is proportional to the new
// nodes and their degrees, not to |V|.
func (pt *Partition) Extend(g *graph.Graph) int {
	n := g.NumNodes()
	lo := len(pt.Frag)
	if n <= lo {
		return 0
	}
	capacity := pt.capacity(n)
	scores := make([]int, pt.P)
	for v := lo; v < n; v++ {
		best := pt.place(g, graph.NodeID(v), scores, capacity, n)
		pt.Frag = append(pt.Frag, int32(best))
		pt.load[best]++
	}
	return n - lo
}

// Refine locally improves the placement of the given nodes (typically the
// nodes a batch update touched): a node moves to the fragment holding the
// strict majority of its neighbors when that fragment has room. One pass,
// cost proportional to the touched nodes' degrees. It returns the number
// of nodes moved.
func (pt *Partition) Refine(g *graph.Graph, nodes []graph.NodeID) int {
	if len(pt.Frag) == 0 {
		return 0
	}
	capacity := pt.capacity(len(pt.Frag))
	scores := make([]int, pt.P)
	moved := 0
	for _, v := range nodes {
		if int(v) >= len(pt.Frag) {
			continue // not yet placed; Extend owns it
		}
		pt.neighborScores(g, v, scores)
		cur := int(pt.Frag[v])
		best := cur
		for i := 0; i < pt.P; i++ {
			if i == cur || pt.load[i] >= capacity {
				continue
			}
			// strictly better affinity only: ties stay put, so refinement
			// terminates and does not thrash between equal fragments
			if scores[i] > scores[best] {
				best = i
			}
		}
		if best != cur {
			pt.Frag[v] = int32(best)
			pt.load[cur]--
			pt.load[best]++
			moved++
		}
	}
	return moved
}

// CrossingEdges counts edges whose endpoints are in different fragments
// (the edge-cut objective). Unplaced nodes count at their Owner fallback.
func (pt *Partition) CrossingEdges(g *graph.Graph) int {
	cut := 0
	for v := 0; v < g.NumNodes(); v++ {
		fv := pt.Owner(graph.NodeID(v))
		for _, h := range g.Out(graph.NodeID(v)) {
			if fv != pt.Owner(h.To) {
				cut++
			}
		}
	}
	return cut
}

// Loads returns the node count per fragment (placed nodes only).
func (pt *Partition) Loads() []int {
	return append([]int(nil), pt.load...)
}

// Placed reports how many nodes the partition has assigned; nodes with ids
// ≥ Placed() are served by the Owner fallback until the next Extend.
func (pt *Partition) Placed() int { return len(pt.Frag) }
