package update

import (
	"testing"

	"ngd/internal/gen"
)

func TestSizeAndGamma(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 300, 1)
	for _, gamma := range []float64{0.5, 1, 3} {
		d := Random(ds, Config{Size: 200, Gamma: gamma, Seed: 2})
		ins, del := len(d.Insertions()), len(d.Deletions())
		if ins+del < 190 || ins+del > 210 {
			t.Errorf("γ=%v: |ΔG| = %d, want ≈200", gamma, ins+del)
		}
		ratio := float64(ins) / float64(del)
		if ratio < gamma*0.7 || ratio > gamma*1.4 {
			t.Errorf("γ=%v: measured ratio %v", gamma, ratio)
		}
	}
}

func TestSizeFor(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 100, 1)
	if got := SizeFor(ds.G, 0.1); got != ds.G.NumEdges()/10 {
		t.Errorf("SizeFor = %d, want %d", got, ds.G.NumEdges()/10)
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() int {
		ds := gen.Generate(gen.Pokec, 200, 5)
		d := Random(ds, Config{Size: 100, Gamma: 1, Seed: 9})
		return d.Len()
	}
	if mk() != mk() {
		t.Error("update generation not deterministic")
	}
}

func TestDeletionsExist(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 3)
	d := Random(ds, Config{Size: 100, Gamma: 1, Seed: 4})
	for _, op := range d.Deletions() {
		if !ds.G.HasEdgeL(op.Src, op.Dst, op.Label) {
			t.Fatalf("deletion of non-existent edge %v", op)
		}
	}
}

func TestNewEntityInsertions(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 200, 3)
	before := ds.G.NumNodes()
	d := Random(ds, Config{Size: 400, Gamma: 4, Seed: 4})
	if ds.G.NumNodes() <= before {
		t.Error("large insert-heavy ΔG should add new entity nodes")
	}
	// all inserted edges reference valid nodes
	for _, op := range d.Insertions() {
		if int(op.Src) >= ds.G.NumNodes() || int(op.Dst) >= ds.G.NumNodes() {
			t.Fatalf("insertion references missing node: %v", op)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 500, 7)
	hot := Random(ds, Config{Size: 300, Gamma: 1, Seed: 8, Hotspot: 0.9, HotRegion: 0.05})
	uniform := Random(ds, Config{Size: 300, Gamma: 1, Seed: 8, Hotspot: -1})

	// measure source-entity spread: hot deltas touch fewer distinct sources
	hotSrcs := map[int32]bool{}
	for _, op := range hot.Ops {
		hotSrcs[int32(op.Src)] = true
	}
	uniSrcs := map[int32]bool{}
	for _, op := range uniform.Ops {
		uniSrcs[int32(op.Src)] = true
	}
	if len(hotSrcs) >= len(uniSrcs) {
		t.Errorf("hotspot updates touch %d sources, uniform %d — expected concentration",
			len(hotSrcs), len(uniSrcs))
	}
}

func TestZeroSize(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 50, 1)
	if d := Random(ds, Config{Size: 0, Gamma: 1, Seed: 1}); d.Len() != 0 {
		t.Error("size 0 should produce empty delta")
	}
}
