// Package update generates batch updates ΔG for the incremental-detection
// experiments (paper §7: ΔG is random, controlled by |ΔG| and the ratio γ
// of edge insertions to deletions, γ = 1 unless stated otherwise).
//
// Deletions remove random existing edges (links only; nodes stay, matching
// the paper's unit-update semantics). Insertions are a mix of new relation
// edges between existing entities (random pairs often break the drift
// invariant, producing ΔVio⁺) and entirely new entities arriving with their
// property stars (new nodes + edges, the paper's "insertions possibly
// introduce new nodes").
package update

import (
	"fmt"
	"math/rand"

	"ngd/internal/gen"
	"ngd/internal/graph"
)

// Config controls ΔG generation.
type Config struct {
	Size  int     // number of unit updates |ΔG|
	Gamma float64 // insertions : deletions ratio (γ); 1 keeps |G| steady
	Seed  int64
	// Hotspot is the fraction of updates concentrated in a contiguous
	// HotRegion-sized window of the entity space, modelling the bursty,
	// regional update streams of real graphs (a crawl refreshing one
	// domain, one community going viral). Regional updates are what skews
	// per-fragment pivot counts and makes workload balancing matter.
	// Defaults: Hotspot 0.55, HotRegion 0.04 (a burst window comfortably
	// inside one fragment at p ≤ 20). Set Hotspot to -1 for fully uniform
	// updates.
	Hotspot   float64
	HotRegion float64
}

// SizeFor converts a fraction of |E| into a unit-update count (the paper
// varies |ΔG| as 5%–40% of |G|).
func SizeFor(g *graph.Graph, frac float64) int {
	return int(frac * float64(g.NumEdges()))
}

// Random generates ΔG against the dataset's graph. New entities are added
// to the graph's node set immediately (isolated until their edges apply);
// edge ops go into the returned delta. The delta may contain duplicates and
// ops that are no-ops against G — the consuming paths all coalesce it:
// session.Commit normalizes once before pivot generation (and absorbs the
// new nodes), while IncDect/PIncDect normalize internally when driven
// directly.
func Random(ds *gen.Dataset, cfg Config) *graph.Delta {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &graph.Delta{}
	if cfg.Size <= 0 {
		return d
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = 1
	}
	hotspot := cfg.Hotspot
	if hotspot == 0 {
		hotspot = 0.55
	}
	if hotspot < 0 {
		hotspot = 0
	}
	region := cfg.HotRegion
	if region <= 0 {
		region = 0.04
	}
	nEnt := len(ds.Entities)
	hotLo := 0
	if w := int(float64(nEnt) * region); w < nEnt {
		hotLo = rng.Intn(nEnt - w)
	}
	hotW := int(float64(nEnt) * region)
	if hotW < 1 {
		hotW = 1
	}
	pickEntity := func() int {
		if rng.Float64() < hotspot && len(ds.ScoreOrder) == nEnt {
			// a topologically-contiguous region: a window in score order
			return ds.ScoreOrder[hotLo+rng.Intn(hotW)]
		}
		return rng.Intn(nEnt)
	}

	inserts := int(float64(cfg.Size) * gamma / (1 + gamma))
	deletes := cfg.Size - inserts

	genDeletes(ds, rng, deletes, d, pickEntity)
	genInserts(ds, rng, inserts, d, pickEntity)
	return d
}

func genDeletes(ds *gen.Dataset, rng *rand.Rand, n int, d *graph.Delta, pickEntity func() int) {
	g := ds.G
	if g.NumNodes() == 0 || len(ds.Entities) == 0 {
		return
	}
	attempts := 0
	for done := 0; done < n && attempts < n*20; attempts++ {
		// delete an edge in the 1-hop vicinity of a (possibly hot-region)
		// entity: either one of its own edges or a property edge
		u := ds.Entities[pickEntity()]
		out := g.Out(u)
		if len(out) == 0 {
			continue
		}
		h := out[rng.Intn(len(out))]
		d.Delete(u, h.To, h.Label)
		done++
	}
}

func genInserts(ds *gen.Dataset, rng *rand.Rand, n int, d *graph.Delta, pickEntity func() int) {
	g := ds.G
	nEnt := len(ds.Entities)
	if nEnt < 2 {
		return
	}
	syms := g.Symbols()
	valAttr := syms.Attr("val")
	intLabel := syms.Label("integer")
	nextLabel := syms.Label("next")
	peerLabel := syms.Label("peer")

	followsLabel := syms.Label("follows")

	budget := n
	for budget > 0 {
		switch r := rng.Float64(); {
		case r < 0.1 && len(ds.Hubs) > 0:
			// follow a hub: the pivot lands on a skewed adjacency list
			i := pickEntity()
			hub := ds.Hubs[rng.Intn(len(ds.Hubs))]
			if ds.Entities[i] == hub {
				continue
			}
			d.Insert(ds.Entities[i], hub, followsLabel)
			budget--
		case r < 0.5:
			// relation edge between random existing entities
			i, j := pickEntity(), rng.Intn(nEnt)
			if i == j {
				continue
			}
			ti := gen.EntityType(g, ds.Entities[i])
			tj := gen.EntityType(g, ds.Entities[j])
			lbl := syms.Label(gen.RelForTypes(ds.Profile, ti, tj))
			d.Insert(ds.Entities[i], ds.Entities[j], lbl)
			budget--
		case r < 0.7:
			i, j := pickEntity(), rng.Intn(nEnt)
			if i == j {
				continue
			}
			d.Insert(ds.Entities[i], ds.Entities[j], nextLabel)
			budget--
		case r < 0.8:
			i, j := pickEntity(), rng.Intn(nEnt)
			if i == j || budget < 2 {
				continue
			}
			d.Insert(ds.Entities[i], ds.Entities[j], peerLabel)
			d.Insert(ds.Entities[j], ds.Entities[i], peerLabel)
			budget -= 2
		default:
			// a new entity arriving with its property star
			if budget < 8 {
				i, j := pickEntity(), rng.Intn(nEnt)
				if i == j {
					continue
				}
				d.Insert(ds.Entities[i], ds.Entities[j], nextLabel)
				budget--
				continue
			}
			t := rng.Intn(ds.Profile.EntityTypes)
			ent := g.AddNode(fmt.Sprintf("T%d", t))
			p1 := rng.Int63n(ds.Profile.ValueRange)
			p2 := rng.Int63n(ds.Profile.ValueRange)
			p5 := rng.Int63n(ds.Profile.ValueRange)
			vals := [7]int64{rng.Int63n(ds.Profile.ValueRange), p1, p2, p1 + p2, p5 + rng.Int63n(100), p5, 0}
			if rng.Float64() < ds.Profile.ErrorRate*4 {
				vals[3] += 1 + rng.Int63n(50) // fresh dirty data: broken sum
			}
			for k := 0; k < 7; k++ {
				pn := g.AddNodeL(intLabel)
				g.SetAttrA(pn, valAttr, graph.Int(vals[k]))
				d.Insert(ent, pn, syms.Label(gen.PropLabels[k]))
			}
			// link it near a random entity
			j := pickEntity()
			d.Insert(ds.Entities[j], ent, nextLabel)
			budget -= 8
		}
	}
}
