package graph

import "sync"

// NodeSet is a dense bitset over NodeIDs — the allocation-free replacement
// for the throwaway map[NodeID]struct{} seen-sets the hot traversals used
// to build (Neighborhood BFS, session absorption scans). Typical use:
//
//	seen := AcquireNodeSet(g.NumNodes())
//	defer ReleaseNodeSet(seen)
//
// A NodeSet is not safe for concurrent use; acquire one per goroutine.
type NodeSet struct {
	words []uint64
}

// NewNodeSet returns an empty set able to hold node ids < n without growing.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, (n+63)/64)}
}

func (s *NodeSet) grow(n int) {
	need := (n + 63) / 64
	if need <= len(s.words) {
		return
	}
	if need <= cap(s.words) {
		s.words = s.words[:need]
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Has reports whether v is in the set; ids beyond capacity are absent.
func (s *NodeSet) Has(v NodeID) bool {
	w := int(v) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(v)&63)) != 0
}

// Add inserts v, growing as needed, and reports whether it was newly added.
func (s *NodeSet) Add(v NodeID) bool {
	w := int(v) >> 6
	if w >= len(s.words) {
		s.grow(int(v) + 1)
	}
	bit := uint64(1) << (uint(v) & 63)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	return true
}

// Reset clears every bit, keeping capacity.
func (s *NodeSet) Reset() { clear(s.words) }

var nodeSetPool = sync.Pool{New: func() any { return new(NodeSet) }}

// AcquireNodeSet returns an empty pooled set sized for node ids < n.
// Sets are cleared on release, so acquisition costs no memclr.
func AcquireNodeSet(n int) *NodeSet {
	s := nodeSetPool.Get().(*NodeSet)
	s.grow(n)
	return s
}

// ReleaseNodeSet clears s and returns it to the pool. The caller must not
// retain s afterwards.
func ReleaseNodeSet(s *NodeSet) {
	s.Reset()
	nodeSetPool.Put(s)
}
