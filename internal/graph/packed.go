package graph

// Packed is a CSR-packed frozen copy of a Graph: adjacency, labels and
// attribute tuples flattened into a handful of contiguous arrays instead of
// one heap object per node. A Packed is a point-in-time snapshot — it shares
// nothing with the source graph (symbols included), so readers can scan it
// while the writer keeps mutating and interning, and the garbage collector
// sees O(1) pointer-bearing objects where the live graph has O(|V|).
//
// Packed implements View; detection over a Packed is differentially tested
// to produce exactly the violation set of the source graph. It does not
// implement AttrIndexed — index-seeded plans fall back to label scans, which
// is the right trade for a snapshot that would otherwise pay a full index
// rebuild at pack time.
type Packed struct {
	syms   *Symbols
	labels []LabelID

	// out/in adjacency in CSR form: node v's half-edges are
	// outAdj[outOff[v]:outOff[v+1]], sorted by (Label, To) like the source
	// lists, so the binary-searched edge checks work unchanged.
	outOff []int32
	outAdj []Half
	inOff  []int32
	inAdj  []Half

	// attribute tuples, flattened columnar: attrs[attrOff[v]:attrOff[v+1]],
	// sorted by AttrID within each node.
	attrOff []int32
	attrs   []attrPair

	byLabel   map[LabelID][]NodeID
	edgeCount int
}

var _ View = (*Packed)(nil)

// Pack builds a CSR snapshot of g. O(|V|+|E|+|A|) time and memory; callers
// gate it behind an option (session.Options.PackSnapshots) because paying it
// per epoch only makes sense for read-heavy serving.
func (g *Graph) Pack() *Packed {
	n := len(g.nodes)
	p := &Packed{
		syms:      g.syms.Clone(),
		labels:    make([]LabelID, n),
		outOff:    make([]int32, n+1),
		inOff:     make([]int32, n+1),
		attrOff:   make([]int32, n+1),
		byLabel:   make(map[LabelID][]NodeID, len(g.byLabel)),
		edgeCount: g.edgeCount,
	}
	var outN, inN, attrN int
	for v := 0; v < n; v++ {
		p.labels[v] = g.nodes[v].label
		outN += len(g.out[v])
		inN += len(g.in[v])
		attrN += len(g.nodes[v].attrs)
	}
	p.outAdj = make([]Half, 0, outN)
	p.inAdj = make([]Half, 0, inN)
	p.attrs = make([]attrPair, 0, attrN)
	for v := 0; v < n; v++ {
		p.outOff[v] = int32(len(p.outAdj))
		p.outAdj = append(p.outAdj, g.out[v]...)
		p.inOff[v] = int32(len(p.inAdj))
		p.inAdj = append(p.inAdj, g.in[v]...)
		p.attrOff[v] = int32(len(p.attrs))
		p.attrs = append(p.attrs, g.nodes[v].attrs...)
	}
	p.outOff[n] = int32(len(p.outAdj))
	p.inOff[n] = int32(len(p.inAdj))
	p.attrOff[n] = int32(len(p.attrs))
	for l, ns := range g.byLabel {
		p.byLabel[l] = append([]NodeID(nil), ns...)
	}
	return p
}

// Symbols returns the snapshot's private symbol table.
func (p *Packed) Symbols() *Symbols { return p.syms }

// NumNodes reports |V| at pack time.
func (p *Packed) NumNodes() int { return len(p.labels) }

// NumEdges reports |E| at pack time.
func (p *Packed) NumEdges() int { return p.edgeCount }

// Label returns the label of v.
func (p *Packed) Label(v NodeID) LabelID { return p.labels[v] }

// Attr returns attribute a of v; the zero Value means absent.
func (p *Packed) Attr(v NodeID, a AttrID) Value {
	attrs := p.attrs[p.attrOff[v]:p.attrOff[v+1]]
	if i, ok := findAttr(attrs, a); ok {
		return attrs[i].val
	}
	return Value{}
}

// Out returns the sorted out-adjacency of v. Callers must not mutate it.
func (p *Packed) Out(v NodeID) []Half { return p.outAdj[p.outOff[v]:p.outOff[v+1]] }

// In returns the sorted in-adjacency of v. Callers must not mutate it.
func (p *Packed) In(v NodeID) []Half { return p.inAdj[p.inOff[v]:p.inOff[v+1]] }

// HasEdgeL reports whether edge (u -label-> v) exists.
func (p *Packed) HasEdgeL(u, v NodeID, label LabelID) bool {
	_, found := searchHalf(p.Out(u), Half{Label: label, To: v})
	return found
}

// NodesWithLabel returns the nodes carrying the label (nil for Wildcard).
func (p *Packed) NodesWithLabel(l LabelID) []NodeID {
	if l == Wildcard {
		return nil
	}
	return p.byLabel[l]
}

// CountLabel reports how many nodes carry label l (all nodes for Wildcard).
func (p *Packed) CountLabel(l LabelID) int {
	if l == Wildcard {
		return len(p.labels)
	}
	return len(p.byLabel[l])
}
