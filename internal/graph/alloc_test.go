package graph_test

// Allocation budgets for the hot read path: attribute lookups over the
// columnar tuple layout must not allocate at all — the map-backed layout
// they replaced could trigger map-bucket churn under writes, and any
// regression here multiplies across every literal evaluation in detection.

import (
	"testing"

	"ngd/internal/graph"
)

func TestAttrAllocFree(t *testing.T) {
	g := graph.New()
	v := g.AddNode("n")
	// past attrLinearMax so the binary-search arm is the one measured too
	for i := 0; i < 12; i++ {
		g.SetAttr(v, string(rune('a'+i)), graph.Int(int64(i)))
	}
	first := g.Symbols().LookupAttr("a")
	last := g.Symbols().LookupAttr("l")
	var sink graph.Value
	allocs := testing.AllocsPerRun(1000, func() {
		sink = g.Attr(v, first)
		sink = g.Attr(v, last)
		sink = g.Attr(v, last+1) // absent
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Attr allocated %.1f objects per run, want 0", allocs)
	}
}

func TestNeighborhoodSeenSetAllocBudget(t *testing.T) {
	g := graph.New()
	ids := make([]graph.NodeID, 200)
	for i := range ids {
		ids[i] = g.AddNode("n")
	}
	for i := 0; i < len(ids)-1; i++ {
		g.AddEdge(ids[i], ids[i+1], "e")
	}
	g.NeighborhoodOf(ids[:1], 4) // warm the pooled bitset
	allocs := testing.AllocsPerRun(200, func() {
		g.NeighborhoodOf(ids[:1], 4)
	})
	// result + frontier slices may allocate; the pooled seen-set must not
	// add the old map's per-call bucket churn on top
	if allocs > 12 {
		t.Fatalf("NeighborhoodOf allocated %.1f objects per run, budget 12", allocs)
	}
}
