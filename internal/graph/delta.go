package graph

import "fmt"

// EdgeOp is a unit update (paper §5.2): an edge insertion or deletion.
type EdgeOp struct {
	Insert bool
	Src    NodeID
	Dst    NodeID
	Label  LabelID
}

func (op EdgeOp) String() string {
	verb := "delete"
	if op.Insert {
		verb = "insert"
	}
	return fmt.Sprintf("%s(%d -%d-> %d)", verb, op.Src, op.Label, op.Dst)
}

// Delta is a batch update ΔG: a sequence of edge insertions and deletions.
// Insertions may reference freshly added nodes (callers add those nodes to
// the graph with AddNode before recording the edge op; isolated nodes do
// not affect matches of connected patterns until their edges land).
type Delta struct {
	Ops []EdgeOp
}

// AttrOp is a unit attribute update: set attribute Attr of Node to Val.
// The paper's unit updates are edge-only (§5.2); attribute ops extend the
// batch pipeline for the repair path, where a fix reassigns attributes of a
// violating node. They commit through session.(*Session).CommitBatch so the
// WAL, change feed and attribute indexes all observe an ordinary batch.
type AttrOp struct {
	Node NodeID
	Attr AttrID
	Val  Value
}

func (op AttrOp) String() string {
	return fmt.Sprintf("set(%d.%d = %s)", op.Node, op.Attr, op.Val)
}

// NormalizeAttrOps coalesces attribute ops against base: the last op per
// (node, attr) wins, and ops restating the current value are elided — the
// effect-only shape the session's attr reconciliation expects. Order of
// first effective appearance is preserved.
func NormalizeAttrOps(base *Graph, ops []AttrOp) []AttrOp {
	if len(ops) == 0 {
		return nil
	}
	type key struct {
		node NodeID
		attr AttrID
	}
	last := make(map[key]Value, len(ops))
	order := make([]key, 0, len(ops))
	for _, op := range ops {
		k := key{op.Node, op.Attr}
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = op.Val
	}
	var out []AttrOp
	for _, k := range order {
		v := last[k]
		if base.Attr(k.node, k.attr).Equal(v) {
			continue
		}
		out = append(out, AttrOp{Node: k.node, Attr: k.attr, Val: v})
	}
	return out
}

// Insert records insert(u -label-> v).
func (d *Delta) Insert(u, v NodeID, label LabelID) {
	d.Ops = append(d.Ops, EdgeOp{Insert: true, Src: u, Dst: v, Label: label})
}

// Delete records delete(u -label-> v).
func (d *Delta) Delete(u, v NodeID, label LabelID) {
	d.Ops = append(d.Ops, EdgeOp{Insert: false, Src: u, Dst: v, Label: label})
}

// Len reports |ΔG|.
func (d *Delta) Len() int { return len(d.Ops) }

// Insertions returns ΔG⁺.
func (d *Delta) Insertions() []EdgeOp { return d.filter(true) }

// Deletions returns ΔG⁻.
func (d *Delta) Deletions() []EdgeOp { return d.filter(false) }

func (d *Delta) filter(insert bool) []EdgeOp {
	var ops []EdgeOp
	for _, op := range d.Ops {
		if op.Insert == insert {
			ops = append(ops, op)
		}
	}
	return ops
}

// Normalize reduces ΔG against base so that ΔG⁺ contains only edges absent
// from base and ΔG⁻ only edges present in base, with the last op per edge
// winning. The result applied to base yields the same graph as the original
// sequence, and ΔG⁺ ∩ ΔG⁻ = ∅, the shape IncDect expects.
func (d *Delta) Normalize(base *Graph) *Delta {
	type key struct {
		src, dst NodeID
		label    LabelID
	}
	last := make(map[key]bool, len(d.Ops))
	order := make([]key, 0, len(d.Ops))
	for _, op := range d.Ops {
		k := key{op.Src, op.Dst, op.Label}
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = op.Insert
	}
	out := &Delta{}
	for _, k := range order {
		ins := last[k]
		exists := base.HasEdgeL(k.src, k.dst, k.label)
		if ins && !exists {
			out.Insert(k.src, k.dst, k.label)
		} else if !ins && exists {
			out.Delete(k.src, k.dst, k.label)
		}
	}
	return out
}

// Apply mutates g in place, turning it into g ⊕ ΔG.
func (d *Delta) Apply(g *Graph) {
	g.Apply(d)
}

// ApplyStats reports what (*Graph).Apply committed.
type ApplyStats struct {
	Inserted  int // edges actually added
	Deleted   int // edges actually removed
	NoOps     int // ops without effect (re-insert of an existing edge, delete of a missing one)
	Compacted int // adjacency lists reallocated to shed slack capacity
}

// Apply commits ΔG into g in place: g becomes g ⊕ ΔG. Ops apply in order,
// so an un-normalized delta commits to the same graph as its Normalize(g)
// form (ineffective ops are counted as NoOps rather than erroring).
// Adjacency lists of touched nodes are compacted when the churn leaves
// excess backing capacity, so a long-lived graph under a steady
// insert/delete stream does not accrete slack.
//
// Attribute indexes need no maintenance here: ΔG carries edge ops only,
// and node/attribute arrivals are indexed at SetAttrA time, so every index
// built by EnsureAttrIndex stays identical to a fresh rebuild.
func (g *Graph) Apply(d *Delta) ApplyStats {
	var st ApplyStats
	touched := make(map[NodeID]struct{}, len(d.Ops)*2)
	for _, op := range d.Ops {
		var effective bool
		if op.Insert {
			effective = g.AddEdgeL(op.Src, op.Dst, op.Label)
			if effective {
				st.Inserted++
			}
		} else {
			effective = g.DeleteEdgeL(op.Src, op.Dst, op.Label)
			if effective {
				st.Deleted++
			}
		}
		if effective {
			touched[op.Src] = struct{}{}
			touched[op.Dst] = struct{}{}
		} else {
			st.NoOps++
		}
	}
	for v := range touched {
		var c bool
		if g.out[v], c = compactHalves(g.out[v]); c {
			st.Compacted++
		}
		if g.in[v], c = compactHalves(g.in[v]); c {
			st.Compacted++
		}
	}
	return st
}

// compactHalves reallocates an adjacency list whose backing array is at
// least twice (and ≥ 8 entries beyond) its length.
func compactHalves(l []Half) ([]Half, bool) {
	if cap(l)-len(l) < 8 || cap(l) < 2*len(l) {
		return l, false
	}
	return append(make([]Half, 0, len(l)), l...), true
}

// Inverse returns the ΔG that undoes d (valid for normalized deltas).
func (d *Delta) Inverse() *Delta {
	inv := &Delta{Ops: make([]EdgeOp, 0, len(d.Ops))}
	for i := len(d.Ops) - 1; i >= 0; i-- {
		op := d.Ops[i]
		op.Insert = !op.Insert
		inv.Ops = append(inv.Ops, op)
	}
	return inv
}

// TouchedNodes returns the distinct nodes appearing on edges of ΔG, in
// first-appearance order — the seeds of the dΣ-neighborhood G_dΣ(ΔG).
func (d *Delta) TouchedNodes() []NodeID {
	seen := make(map[NodeID]struct{}, len(d.Ops)*2)
	var nodes []NodeID
	add := func(v NodeID) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			nodes = append(nodes, v)
		}
	}
	for _, op := range d.Ops {
		add(op.Src)
		add(op.Dst)
	}
	return nodes
}
