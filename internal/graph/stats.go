package graph

// This file implements LiveStats: the maintained statistics the cost-based
// planner (internal/plan) scores matching orders with. Where the old
// match.GraphSelectivity closure re-read label counts on every plan build,
// LiveStats keeps the planner's inputs current under mutation:
//
//   - label cardinalities (delegated to the byLabel buckets, which the graph
//     maintains anyway);
//   - per-(node label, edge label) half-edge totals, so the expected fan-out
//     of following an edge label from a node of a given label is one map
//     lookup plus a division;
//   - a monotone churn counter ticking on every structural or attribute
//     mutation, which the plan cache uses for drift-threshold invalidation.
//
// The structure is built lazily on first use (one O(|E|) scan of the current
// adjacency) and maintained incrementally by AddNodeL / AddEdgeL /
// DeleteEdgeL / SetAttrA afterwards — (*Graph).Apply goes through those, so
// batch commits keep the stats current for free. Clone drops the stats (the
// clone rebuilds on demand), keeping copies independent.

// degKey indexes the fan-out aggregates: half-edges with edge label `edge`
// incident to nodes carrying node label `node`.
type degKey struct {
	node LabelID
	edge LabelID
}

// LiveStats holds maintained planning statistics for one graph. Reads are
// safe concurrently with other reads; mutation follows the owning graph's
// single-writer discipline.
type LiveStats struct {
	outRuns map[degKey]int // Σ over v with label(v)=node of |run(out(v), edge)|
	inRuns  map[degKey]int // same for in-adjacency
	outTot  map[LabelID]int
	inTot   map[LabelID]int
	churn   uint64
}

// LiveStatted is implemented by views that expose maintained statistics:
// *Graph natively, *Overlay by delegating to its base (ΔG is small relative
// to G, so base stats are the right estimate for planning over G ⊕ ΔG).
type LiveStatted interface {
	LiveStats() *LiveStats
}

var (
	_ LiveStatted = (*Graph)(nil)
	_ LiveStatted = (*Overlay)(nil)
)

// LiveStats returns the maintained statistics, building them on first use
// with one scan of the current graph.
func (g *Graph) LiveStats() *LiveStats {
	if g.stats != nil {
		return g.stats
	}
	st := &LiveStats{
		outRuns: make(map[degKey]int),
		inRuns:  make(map[degKey]int),
		outTot:  make(map[LabelID]int),
		inTot:   make(map[LabelID]int),
	}
	for v := range g.nodes {
		l := g.nodes[v].label
		for _, h := range g.out[v] {
			st.outRuns[degKey{l, h.Label}]++
			st.outTot[h.Label]++
		}
		for _, h := range g.in[v] {
			st.inRuns[degKey{l, h.Label}]++
			st.inTot[h.Label]++
		}
	}
	g.stats = st
	return st
}

// LiveStats delegates to the base graph (overlays never drift far from it).
func (o *Overlay) LiveStats() *LiveStats { return o.base.LiveStats() }

// noteEdge maintains the aggregates for one edge (u -label-> v) appearing
// (d=+1) or disappearing (d=-1).
func (g *Graph) noteEdge(u, v NodeID, label LabelID, d int) {
	st := g.stats
	if st == nil {
		return
	}
	st.bump(st.outRuns, degKey{g.nodes[u].label, label}, d)
	st.bump(st.inRuns, degKey{g.nodes[v].label, label}, d)
	st.bumpTot(st.outTot, label, d)
	st.bumpTot(st.inTot, label, d)
	st.churn++
}

// noteChurn ticks the churn counter for mutations that shift planning inputs
// without moving edge aggregates (node arrivals, attribute writes).
func (g *Graph) noteChurn() {
	if g.stats != nil {
		g.stats.churn++
	}
}

func (st *LiveStats) bump(m map[degKey]int, k degKey, d int) {
	if n := m[k] + d; n > 0 {
		m[k] = n
	} else {
		delete(m, k)
	}
}

func (st *LiveStats) bumpTot(m map[LabelID]int, k LabelID, d int) {
	if n := m[k] + d; n > 0 {
		m[k] = n
	} else {
		delete(m, k)
	}
}

// Churn reports the total number of mutations observed since the stats were
// built. Monotone; the plan cache compares deltas against a threshold to
// decide when cached matching orders are stale enough to rebuild.
func (st *LiveStats) Churn() uint64 { return st.churn }

// OutFan estimates the mean number of out half-edges carrying edge label el
// on a node of label l (Wildcard: the global mean over all nodes). Zero when
// no such half-edge exists — the planner reads that as "this extension
// cannot produce candidates". v supplies the label cardinalities (pass the
// view being planned over; overlays delegate to the same base counts).
func (st *LiveStats) OutFan(v View, l, el LabelID) float64 {
	return fan(st.outRuns, st.outTot, v, l, el)
}

// InFan is OutFan for the in-adjacency.
func (st *LiveStats) InFan(v View, l, el LabelID) float64 {
	return fan(st.inRuns, st.inTot, v, l, el)
}

func fan(runs map[degKey]int, tot map[LabelID]int, v View, l, el LabelID) float64 {
	if el == NoLabel {
		return 0
	}
	if l == Wildcard {
		n := v.NumNodes()
		if n == 0 {
			return 0
		}
		return float64(tot[el]) / float64(n)
	}
	c := v.CountLabel(l)
	if c == 0 {
		return 0
	}
	return float64(runs[degKey{l, el}]) / float64(c)
}

// HalfEdges reports the total number of half-edges with edge label el
// incident (outgoing for out=true) to nodes of label l — the exact size of
// the candidate population an anchored scan over that (label, edge) pair
// can ever touch.
func (st *LiveStats) HalfEdges(l, el LabelID, out bool) int {
	m := st.inRuns
	if out {
		m = st.outRuns
	}
	return m[degKey{l, el}]
}
