package graph_test

// Regression coverage for the bitset seen-sets that replaced the throwaway
// map[NodeID]struct{} in the Neighborhood BFS: on the fuzz-workload graphs
// the results must match a map-based reference BFS exactly (membership and
// discovery order), including across pooled-set reuse where a stale bit
// would surface as a missing node.

import (
	"fmt"
	"math/rand"
	"testing"

	"ngd/internal/gen"
	"ngd/internal/graph"
)

// refNeighborhood is the map-based reference BFS NeighborhoodOf replaced.
func refNeighborhood(g *graph.Graph, seeds []graph.NodeID, d int) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(seeds))
	var frontier, result []graph.NodeID
	for _, s := range seeds {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		frontier = append(frontier, s)
		result = append(result, s)
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []graph.NodeID
		for _, u := range frontier {
			visit := func(v graph.NodeID) {
				if _, ok := seen[v]; ok {
					return
				}
				seen[v] = struct{}{}
				next = append(next, v)
				result = append(result, v)
			}
			for _, h := range g.Out(u) {
				visit(h.To)
			}
			for _, h := range g.In(u) {
				visit(h.To)
			}
		}
		frontier = next
	}
	return result
}

func TestNeighborhoodMatchesMapReference(t *testing.T) {
	for _, p := range []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec, gen.Synthetic} {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed%d", p.Name, seed), func(t *testing.T) {
				t.Parallel()
				ds := gen.Generate(p, 120, seed)
				g := ds.G
				rnd := rand.New(rand.NewSource(seed * 97))
				// single- and multi-seed queries at every relevant radius;
				// repeated calls reuse pooled bitsets, so a stale bit from
				// an earlier (larger) query would show up here
				for trial := 0; trial < 40; trial++ {
					k := 1 + rnd.Intn(4)
					seeds := make([]graph.NodeID, 0, k+1)
					for i := 0; i < k; i++ {
						seeds = append(seeds, graph.NodeID(rnd.Intn(g.NumNodes())))
					}
					if trial%3 == 0 {
						seeds = append(seeds, seeds[0]) // duplicate seed
					}
					d := rnd.Intn(6)
					got := g.NeighborhoodOf(seeds, d)
					want := refNeighborhood(g, seeds, d)
					if len(got) != len(want) {
						t.Fatalf("trial %d (seeds %v, d=%d): %d nodes, want %d",
							trial, seeds, d, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("trial %d (seeds %v, d=%d): position %d: %d != %d",
								trial, seeds, d, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}
