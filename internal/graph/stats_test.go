package graph

import "testing"

// rebuildStats recomputes the aggregates from scratch for comparison with
// the incrementally maintained ones.
func rebuildStats(g *Graph) *LiveStats {
	saved := g.stats
	g.stats = nil
	fresh := g.LiveStats()
	g.stats = saved
	return fresh
}

func sameAggregates(t *testing.T, live, fresh *LiveStats) {
	t.Helper()
	if len(live.outRuns) != len(fresh.outRuns) || len(live.inRuns) != len(fresh.inRuns) {
		t.Fatalf("aggregate key counts diverged: live out=%d in=%d, fresh out=%d in=%d",
			len(live.outRuns), len(live.inRuns), len(fresh.outRuns), len(fresh.inRuns))
	}
	for k, v := range fresh.outRuns {
		if live.outRuns[k] != v {
			t.Fatalf("outRuns[%v] = %d, fresh rebuild says %d", k, live.outRuns[k], v)
		}
	}
	for k, v := range fresh.inRuns {
		if live.inRuns[k] != v {
			t.Fatalf("inRuns[%v] = %d, fresh rebuild says %d", k, live.inRuns[k], v)
		}
	}
	for k, v := range fresh.outTot {
		if live.outTot[k] != v {
			t.Fatalf("outTot[%v] = %d, fresh rebuild says %d", k, live.outTot[k], v)
		}
	}
}

func TestLiveStatsMaintained(t *testing.T) {
	g := New()
	person := g.Symbols().Label("person")
	city := g.Symbols().Label("city")
	lives := g.Symbols().Label("lives")
	knows := g.Symbols().Label("knows")

	var people, cities []NodeID
	for i := 0; i < 6; i++ {
		people = append(people, g.AddNodeL(person))
	}
	for i := 0; i < 2; i++ {
		cities = append(cities, g.AddNodeL(city))
	}
	for i, p := range people {
		g.AddEdgeL(p, cities[i%2], lives)
	}

	st := g.LiveStats() // built here, maintained from now on
	churn0 := st.Churn()

	// post-build churn: new node, new edges, a deletion, attribute writes
	np := g.AddNodeL(person)
	g.AddEdgeL(np, cities[0], lives)
	g.AddEdgeL(people[0], people[1], knows)
	g.AddEdgeL(people[1], people[2], knows)
	g.DeleteEdgeL(people[0], cities[0], lives)
	g.SetAttr(people[0], "age", Int(30))

	if st.Churn() == churn0 {
		t.Fatal("churn counter did not advance under mutation")
	}
	sameAggregates(t, st, rebuildStats(g))

	if fan := st.OutFan(g, person, lives); fan <= 0 || fan > 1 {
		t.Fatalf("OutFan(person, lives) = %v, want in (0, 1]", fan)
	}
	if fan := st.InFan(g, city, lives); fan < 3 { // 6 lives edges over 2 cities
		t.Fatalf("InFan(city, lives) = %v, want >= 3", fan)
	}
	// wildcard: global mean over all nodes
	if fan := st.OutFan(g, Wildcard, knows); fan <= 0 {
		t.Fatalf("OutFan(_, knows) = %v, want > 0", fan)
	}
	if st.OutFan(g, person, NoLabel) != 0 {
		t.Fatal("OutFan with NoLabel edge must be 0")
	}
	if st.HalfEdges(person, knows, true) != 2 {
		t.Fatalf("HalfEdges(person, knows, out) = %d, want 2", st.HalfEdges(person, knows, true))
	}
}

func TestLiveStatsApplyAndClone(t *testing.T) {
	g := New()
	a := g.Symbols().Label("a")
	rel := g.Symbols().Label("rel")
	var ns []NodeID
	for i := 0; i < 8; i++ {
		ns = append(ns, g.AddNodeL(a))
	}
	for i := 0; i < 7; i++ {
		g.AddEdgeL(ns[i], ns[i+1], rel)
	}
	st := g.LiveStats()

	d := &Delta{}
	d.Insert(ns[7], ns[0], rel)
	d.Delete(ns[0], ns[1], rel)
	d.Insert(ns[0], ns[1], rel) // net no-op pair after normalize? applied in order: delete then re-insert
	g.Apply(d)
	sameAggregates(t, st, rebuildStats(g))

	c := g.Clone()
	cs := c.LiveStats()
	sameAggregates(t, cs, rebuildStats(c))
	// mutating the clone must not move the original's aggregates
	before := st.HalfEdges(a, rel, true)
	c.DeleteEdgeL(ns[7], ns[0], rel)
	if st.HalfEdges(a, rel, true) != before {
		t.Fatal("clone mutation leaked into the original's stats")
	}
}
