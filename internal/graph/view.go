package graph

// View is a read-only graph interface implemented by *Graph and *Overlay.
// The detection algorithms run against Views so the incremental algorithms
// can inspect G and G⊕ΔG simultaneously without copying the graph.
type View interface {
	Symbols() *Symbols
	NumNodes() int
	NumEdges() int
	Label(v NodeID) LabelID
	Attr(v NodeID, a AttrID) Value
	Out(v NodeID) []Half
	In(v NodeID) []Half
	HasEdgeL(u, v NodeID, label LabelID) bool
	// NodesWithLabel returns the candidate nodes carrying l, or nil when
	// l == Wildcard (in which case every node 0..NumNodes-1 matches).
	NodesWithLabel(l LabelID) []NodeID
	CountLabel(l LabelID) int
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Overlay)(nil)
)

// Overlay presents G ⊕ ΔG without mutating G. Only nodes touched by ΔG pay
// any overhead: their merged adjacency lists are precomputed at construction;
// untouched nodes delegate to the base graph. On top of the edge delta an
// Overlay can carry attribute overrides (SetAttr), which the repair engine
// uses to preview candidate fixes without committing them.
type Overlay struct {
	base      *Graph
	out       map[NodeID][]Half
	in        map[NodeID][]Half
	edgeDelta int
	attrs     map[NodeID]map[AttrID]Value // overridden attribute values
	dirtyIdx  map[attrIndexKey]bool       // (label,attr) pairs masked from index seeding
}

// NewOverlay builds the view of base ⊕ delta. Operations that have no
// effect (inserting an existing edge, deleting a missing one) are skipped.
func NewOverlay(base *Graph, delta *Delta) *Overlay {
	o := &Overlay{
		base: base,
		out:  make(map[NodeID][]Half),
		in:   make(map[NodeID][]Half),
	}
	outOf := func(v NodeID) []Half {
		if l, ok := o.out[v]; ok {
			return l
		}
		l := append([]Half(nil), base.out[v]...)
		o.out[v] = l
		return l
	}
	inOf := func(v NodeID) []Half {
		if l, ok := o.in[v]; ok {
			return l
		}
		l := append([]Half(nil), base.in[v]...)
		o.in[v] = l
		return l
	}
	for _, op := range delta.Ops {
		if op.Insert {
			l, added := insertHalf(outOf(op.Src), Half{Label: op.Label, To: op.Dst})
			if !added {
				continue
			}
			o.out[op.Src] = l
			o.in[op.Dst], _ = insertHalf(inOf(op.Dst), Half{Label: op.Label, To: op.Src})
			o.edgeDelta++
		} else {
			l, removed := removeHalf(outOf(op.Src), Half{Label: op.Label, To: op.Dst})
			if !removed {
				continue
			}
			o.out[op.Src] = l
			o.in[op.Dst], _ = removeHalf(inOf(op.Dst), Half{Label: op.Label, To: op.Src})
			o.edgeDelta--
		}
	}
	return o
}

// Symbols returns the base graph's symbol table.
func (o *Overlay) Symbols() *Symbols { return o.base.syms }

// NumNodes reports |V| (ΔG never removes nodes).
func (o *Overlay) NumNodes() int { return o.base.NumNodes() }

// NumEdges reports |E ⊕ ΔE|.
func (o *Overlay) NumEdges() int { return o.base.edgeCount + o.edgeDelta }

// Label returns the label of v.
func (o *Overlay) Label(v NodeID) LabelID { return o.base.Label(v) }

// Attr returns attribute a of v, honouring overlay overrides first.
func (o *Overlay) Attr(v NodeID, a AttrID) Value {
	if m, ok := o.attrs[v]; ok {
		if val, ok := m[a]; ok {
			return val
		}
	}
	return o.base.Attr(v, a)
}

// SetAttr overrides attribute a of v in the overlay only; the base graph is
// untouched. The (label(v), a) pair is marked dirty so attribute-index
// seeding falls back to label scans — the base graph's indexes still hold
// v's old value and would otherwise serve stale candidate runs.
func (o *Overlay) SetAttr(v NodeID, a AttrID, val Value) {
	if o.attrs == nil {
		o.attrs = make(map[NodeID]map[AttrID]Value)
	}
	m := o.attrs[v]
	if m == nil {
		m = make(map[AttrID]Value)
		o.attrs[v] = m
	}
	m[a] = val
	if o.dirtyIdx == nil {
		o.dirtyIdx = make(map[attrIndexKey]bool)
	}
	o.dirtyIdx[attrIndexKey{o.base.Label(v), a}] = true
}

// Out returns the overlaid out-adjacency of v.
func (o *Overlay) Out(v NodeID) []Half {
	if l, ok := o.out[v]; ok {
		return l
	}
	return o.base.out[v]
}

// In returns the overlaid in-adjacency of v.
func (o *Overlay) In(v NodeID) []Half {
	if l, ok := o.in[v]; ok {
		return l
	}
	return o.base.in[v]
}

// HasEdgeL reports whether (u -label-> v) exists in G ⊕ ΔG.
func (o *Overlay) HasEdgeL(u, v NodeID, label LabelID) bool {
	_, found := searchHalf(o.Out(u), Half{Label: label, To: v})
	return found
}

// NodesWithLabel delegates to the base graph: ΔG only changes edges.
func (o *Overlay) NodesWithLabel(l LabelID) []NodeID { return o.base.NodesWithLabel(l) }

// CountLabel delegates to the base graph.
func (o *Overlay) CountLabel(l LabelID) int { return o.base.CountLabel(l) }

// NeighborhoodOf is the overlay counterpart of Graph.NeighborhoodOf: BFS up
// to d undirected hops in G ⊕ ΔG.
func (o *Overlay) NeighborhoodOf(seeds []NodeID, d int) []NodeID {
	seen := AcquireNodeSet(o.NumNodes())
	defer ReleaseNodeSet(seen)
	var frontier, result []NodeID
	for _, s := range seeds {
		if !seen.Add(s) {
			continue
		}
		frontier = append(frontier, s)
		result = append(result, s)
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, h := range o.Out(u) {
				if seen.Add(h.To) {
					next = append(next, h.To)
					result = append(result, h.To)
				}
			}
			for _, h := range o.In(u) {
				if seen.Add(h.To) {
					next = append(next, h.To)
					result = append(result, h.To)
				}
			}
		}
		frontier = next
	}
	return result
}
