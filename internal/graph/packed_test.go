package graph_test

// CSR snapshot differential: a Packed view must be observationally
// identical to its source graph — structurally (labels, adjacency,
// attribute tuples, label buckets) and behaviorally (Dect over the Packed
// view produces exactly the violation set of the live graph) — and fully
// detached (mutating the source after Pack leaves the snapshot untouched).

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
)

func canonVios(vs []core.Violation) string {
	keys := make([]string, 0, len(vs))
	for k := range detect.VioKeySet(vs) {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func TestPackedMatchesSource(t *testing.T) {
	for _, p := range []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec, gen.Synthetic} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", p.Name, seed), func(t *testing.T) {
				t.Parallel()
				ds := gen.Generate(p, 150, seed)
				g := ds.G
				pk := g.Pack()

				if pk.NumNodes() != g.NumNodes() || pk.NumEdges() != g.NumEdges() {
					t.Fatalf("size mismatch: packed %d/%d vs graph %d/%d",
						pk.NumNodes(), pk.NumEdges(), g.NumNodes(), g.NumEdges())
				}
				for v := 0; v < g.NumNodes(); v++ {
					id := graph.NodeID(v)
					if pk.Label(id) != g.Label(id) {
						t.Fatalf("node %d: label %d != %d", v, pk.Label(id), g.Label(id))
					}
					if got, want := pk.Out(id), g.Out(id); !equalHalves(got, want) {
						t.Fatalf("node %d: out-adjacency diverged", v)
					}
					if got, want := pk.In(id), g.In(id); !equalHalves(got, want) {
						t.Fatalf("node %d: in-adjacency diverged", v)
					}
					g.Attrs(id, func(a graph.AttrID, val graph.Value) {
						if pv := pk.Attr(id, a); pv != val {
							t.Fatalf("node %d attr %d: %v != %v", v, a, pv, val)
						}
					})
					for _, h := range g.Out(id) {
						if !pk.HasEdgeL(id, h.To, h.Label) {
							t.Fatalf("packed missing edge %d-%d->%d", v, h.Label, h.To)
						}
					}
				}
				for l := 0; l < g.Symbols().NumLabels(); l++ {
					lid := graph.LabelID(l)
					if pk.CountLabel(lid) != g.CountLabel(lid) {
						t.Fatalf("label %d: count %d != %d", l, pk.CountLabel(lid), g.CountLabel(lid))
					}
				}

				// behavioral equivalence: detection over the snapshot
				rules := gen.Rules(p, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: seed})
				want := canonVios(detect.Dect(g, rules, detect.Options{}).Violations)
				got := canonVios(detect.Dect(pk, rules, detect.Options{}).Violations)
				if got != want {
					t.Fatalf("Dect(Packed) != Dect(G)\npacked:\n%s\ngraph:\n%s", got, want)
				}

				// detachment: mutations after Pack must not leak in
				nodesBefore := pk.NumNodes()
				u := g.AddNode("mutant")
				g.SetAttr(u, "mutantAttr", graph.Int(1))
				if g.NumNodes() > 1 {
					g.AddEdgeL(0, u, 0)
				}
				if pk.NumNodes() != nodesBefore {
					t.Fatal("packed snapshot grew with the source graph")
				}
				if pk.Symbols().LookupAttr("mutantAttr") >= 0 {
					t.Fatal("packed symbols observed post-pack interning")
				}
			})
		}
	}
}

func equalHalves(a, b []graph.Half) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
