package graph

import (
	"math"
	"testing"
)

// buildApplyGraph returns a small graph: a hub with spokes plus attributed
// nodes, the fixture for the commit tests.
func buildApplyGraph() (*Graph, []NodeID) {
	g := New()
	var ns []NodeID
	for i := 0; i < 10; i++ {
		ns = append(ns, g.AddNode("T"))
	}
	e := g.Symbols().Label("e")
	for i := 1; i < 10; i++ {
		g.AddEdgeL(ns[0], ns[i], e)
	}
	return g, ns
}

func TestApplyEdgeCountBookkeeping(t *testing.T) {
	g, ns := buildApplyGraph()
	e := g.Symbols().Label("e")
	f := g.Symbols().Label("f")

	d := &Delta{}
	d.Insert(ns[1], ns[2], f) // new
	d.Insert(ns[3], ns[4], f) // new
	d.Delete(ns[0], ns[5], e) // existing
	st := g.Apply(d)

	if st.Inserted != 2 || st.Deleted != 1 || st.NoOps != 0 {
		t.Fatalf("stats = %+v, want 2 inserted, 1 deleted, 0 no-ops", st)
	}
	if got, want := g.NumEdges(), 9+2-1; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	// recount from adjacency to catch bookkeeping drift
	count := 0
	for i := 0; i < g.NumNodes(); i++ {
		count += g.OutDegree(NodeID(i))
	}
	if count != g.NumEdges() {
		t.Fatalf("adjacency holds %d edges, counter says %d", count, g.NumEdges())
	}
	if g.HasEdgeL(ns[0], ns[5], e) {
		t.Fatal("deleted edge still present")
	}
	if !g.HasEdgeL(ns[1], ns[2], f) || !g.HasEdgeL(ns[3], ns[4], f) {
		t.Fatal("inserted edges missing")
	}
}

func TestApplyDoubleOpsAreNoOps(t *testing.T) {
	g, ns := buildApplyGraph()
	e := g.Symbols().Label("e")
	f := g.Symbols().Label("f")

	d := &Delta{}
	d.Insert(ns[1], ns[2], f) // new
	d.Insert(ns[1], ns[2], f) // duplicate insert: no-op
	d.Insert(ns[0], ns[1], e) // already in G: no-op
	d.Delete(ns[0], ns[2], e) // existing
	d.Delete(ns[0], ns[2], e) // double delete: no-op
	d.Delete(ns[5], ns[6], f) // never existed: no-op
	st := g.Apply(d)

	if st.Inserted != 1 || st.Deleted != 1 || st.NoOps != 4 {
		t.Fatalf("stats = %+v, want 1 inserted, 1 deleted, 4 no-ops", st)
	}
	if got, want := g.NumEdges(), 9; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}

	// applying the raw sequence must equal applying its normalized form
	g2, ns2 := buildApplyGraph()
	d2 := &Delta{}
	d2.Insert(ns2[1], ns2[2], f)
	d2.Insert(ns2[1], ns2[2], f)
	d2.Insert(ns2[0], ns2[1], e)
	d2.Delete(ns2[0], ns2[2], e)
	d2.Delete(ns2[0], ns2[2], e)
	d2.Delete(ns2[5], ns2[6], f)
	norm := d2.Normalize(g2)
	if norm.Len() != 2 {
		t.Fatalf("normalized len = %d, want 2", norm.Len())
	}
	g2.Apply(norm)
	for i := 0; i < g.NumNodes(); i++ {
		v, v2 := NodeID(i), NodeID(i)
		out, out2 := g.Out(v), g2.Out(v2)
		if len(out) != len(out2) {
			t.Fatalf("node %d: raw-applied degree %d != normalized-applied %d", i, len(out), len(out2))
		}
		for j := range out {
			if out[j] != out2[j] {
				t.Fatalf("node %d adjacency diverges at %d: %v vs %v", i, j, out[j], out2[j])
			}
		}
	}
}

func TestApplyInsertDeleteAnnihilation(t *testing.T) {
	g, ns := buildApplyGraph()
	f := g.Symbols().Label("f")

	d := &Delta{}
	d.Insert(ns[1], ns[2], f)
	d.Delete(ns[1], ns[2], f) // annihilates within the batch
	norm := d.Normalize(g)
	if norm.Len() != 0 {
		t.Fatalf("normalized len = %d, want 0 (insert+delete annihilation)", norm.Len())
	}
	st := g.Apply(d) // raw sequence: insert then delete, net zero
	if st.Inserted != 1 || st.Deleted != 1 || g.NumEdges() != 9 {
		t.Fatalf("stats = %+v edges = %d, want net-zero commit", st, g.NumEdges())
	}
}

func TestApplyCompaction(t *testing.T) {
	g := New()
	hub := g.AddNode("T")
	e := g.Symbols().Label("e")
	var spokes []NodeID
	for i := 0; i < 64; i++ {
		v := g.AddNode("T")
		spokes = append(spokes, v)
		g.AddEdgeL(hub, v, e)
	}
	d := &Delta{}
	for _, v := range spokes[4:] {
		d.Delete(hub, v, e)
	}
	st := g.Apply(d)
	if st.Deleted != 60 {
		t.Fatalf("deleted %d, want 60", st.Deleted)
	}
	if st.Compacted == 0 {
		t.Fatal("expected the hub's shrunken out-list to be compacted")
	}
	out := g.Out(hub)
	if len(out) != 4 {
		t.Fatalf("hub out-degree = %d, want 4", len(out))
	}
	if cap(out) >= 2*len(out)+8 {
		t.Fatalf("hub out-list still slack: len %d cap %d", len(out), cap(out))
	}
}

// TestApplyIndexConsistency checks the PR-1 attribute indexes survive a
// commit stream without rebuild: after interleaved node arrivals (SetAttrA
// maintenance), attribute rewrites, and Apply batches, every live index
// answers identically to a fresh EnsureAttrIndex rebuild on a clone.
func TestApplyIndexConsistency(t *testing.T) {
	g := New()
	tLbl := g.Symbols().Label("T")
	e := g.Symbols().Label("e")
	val := g.Symbols().Attr("val")

	var ns []NodeID
	for i := 0; i < 30; i++ {
		v := g.AddNodeL(tLbl)
		g.SetAttrA(v, val, Int(int64(i%7)))
		ns = append(ns, v)
	}
	// build the index up front so maintenance (not rebuild) keeps it live
	ix := g.EnsureAttrIndex(tLbl, val)
	if ix == nil {
		t.Fatal("no index built")
	}

	// stream: commit edges, add nodes, rewrite attributes, commit again
	d1 := &Delta{}
	for i := 0; i < 29; i++ {
		d1.Insert(ns[i], ns[i+1], e)
	}
	g.Apply(d1)
	for i := 30; i < 40; i++ {
		v := g.AddNodeL(tLbl)
		g.SetAttrA(v, val, Int(int64(i%5)))
		ns = append(ns, v)
	}
	g.SetAttrA(ns[3], val, Int(100))
	g.SetAttrA(ns[4], val, Str("s"))
	d2 := &Delta{}
	for i := 30; i < 40; i++ {
		d2.Insert(ns[0], ns[i], e)
		d2.Delete(ns[i-30], ns[i-29], e)
	}
	g.Apply(d2)

	// the live index must match a from-scratch rebuild
	fresh := g.Clone().EnsureAttrIndex(tLbl, val)
	if ix2 := g.AttrIndexFor(tLbl, val); ix2 != ix {
		t.Fatal("index identity changed (rebuilt instead of maintained)")
	}
	if ix.Len() != fresh.Len() {
		t.Fatalf("maintained index Len %d != fresh rebuild %d", ix.Len(), fresh.Len())
	}
	a := ix.IntRange(math.MinInt64, math.MaxInt64)
	b := fresh.IntRange(math.MinInt64, math.MaxInt64)
	if a.Len() != b.Len() {
		t.Fatalf("int entries %d != %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("int index diverges at %d: %d vs %d", i, a.At(i), b.At(i))
		}
	}
	sa, sb := ix.Strs("s"), fresh.Strs("s")
	if sa.Len() != 1 || sb.Len() != 1 || sa.At(0) != sb.At(0) {
		t.Fatalf("string postings diverge: %d vs %d", sa.Len(), sb.Len())
	}
}
