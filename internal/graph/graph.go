package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes are dense indices; they are never removed
// (the paper's unit deletions remove links only, leaving nodes intact).
type NodeID int32

// LabelID is an interned node or edge label from the alphabet Γ.
type LabelID int32

// AttrID is an interned attribute name from the alphabet Θ.
type AttrID int32

// Wildcard is the label id reserved for the pattern wildcard '_' which
// matches any node label. It never labels a graph node.
const Wildcard LabelID = 0

// NoLabel marks a label string that is not interned in a graph's symbol
// table; no node or edge can carry it.
const NoLabel LabelID = -1

// Half is a half-edge: an adjacency entry (Label, To). Out-lists hold the
// edge's head, in-lists its tail.
type Half struct {
	Label LabelID
	To    NodeID
}

// Symbols interns label and attribute strings so the hot matching paths
// compare int32 ids rather than strings.
type Symbols struct {
	labels   []string
	labelIDs map[string]LabelID
	attrs    []string
	attrIDs  map[string]AttrID
}

// NewSymbols returns an empty symbol table with the wildcard pre-interned.
func NewSymbols() *Symbols {
	s := &Symbols{
		labelIDs: make(map[string]LabelID),
		attrIDs:  make(map[string]AttrID),
	}
	s.labels = append(s.labels, "_") // Wildcard == 0
	s.labelIDs["_"] = Wildcard
	return s
}

// Label interns a label string.
func (s *Symbols) Label(name string) LabelID {
	if id, ok := s.labelIDs[name]; ok {
		return id
	}
	id := LabelID(len(s.labels))
	s.labels = append(s.labels, name)
	s.labelIDs[name] = id
	return id
}

// LookupLabel resolves a label without interning; returns NoLabel if unseen.
func (s *Symbols) LookupLabel(name string) LabelID {
	if id, ok := s.labelIDs[name]; ok {
		return id
	}
	return NoLabel
}

// LabelName returns the string for a label id.
func (s *Symbols) LabelName(id LabelID) string {
	if id < 0 || int(id) >= len(s.labels) {
		return fmt.Sprintf("<label#%d>", id)
	}
	return s.labels[id]
}

// Attr interns an attribute name.
func (s *Symbols) Attr(name string) AttrID {
	if id, ok := s.attrIDs[name]; ok {
		return id
	}
	id := AttrID(len(s.attrs))
	s.attrs = append(s.attrs, name)
	s.attrIDs[name] = id
	return id
}

// LookupAttr resolves an attribute name without interning (-1 if unseen).
func (s *Symbols) LookupAttr(name string) AttrID {
	if id, ok := s.attrIDs[name]; ok {
		return id
	}
	return -1
}

// AttrName returns the string for an attribute id.
func (s *Symbols) AttrName(id AttrID) string {
	if id < 0 || int(id) >= len(s.attrs) {
		return fmt.Sprintf("<attr#%d>", id)
	}
	return s.attrs[id]
}

// NumLabels reports the number of interned labels (including the wildcard).
func (s *Symbols) NumLabels() int { return len(s.labels) }

// NumAttrs reports the number of interned attribute names.
func (s *Symbols) NumAttrs() int { return len(s.attrs) }

// Clone returns a private copy of the symbol table: subsequent interning in
// either copy does not affect the other.
func (s *Symbols) Clone() *Symbols {
	c := &Symbols{
		labels:   append([]string(nil), s.labels...),
		labelIDs: make(map[string]LabelID, len(s.labelIDs)),
		attrs:    append([]string(nil), s.attrs...),
		attrIDs:  make(map[string]AttrID, len(s.attrIDs)),
	}
	for k, v := range s.labelIDs {
		c.labelIDs[k] = v
	}
	for k, v := range s.attrIDs {
		c.attrIDs[k] = v
	}
	return c
}

// attrPair is one (attribute, value) entry of a node's tuple. Tuples are
// stored columnar: a slice sorted by AttrID rather than a map. Nodes carry
// ≤4 attributes in every generator profile, so the inline sorted slice
// removes one heap object and the hashing cost per node per lookup, and
// makes attribute iteration deterministic (sorted by id).
type attrPair struct {
	id  AttrID
	val Value
}

// attrLinearMax is the tuple arity at or above which findAttr switches
// from a linear scan to binary search.
const attrLinearMax = 8

// findAttr locates attribute a in a sorted tuple, returning the index where
// it lives (or would be inserted) and whether it is present.
func findAttr(attrs []attrPair, a AttrID) (int, bool) {
	if len(attrs) < attrLinearMax {
		for i := range attrs {
			if attrs[i].id >= a {
				return i, attrs[i].id == a
			}
		}
		return len(attrs), false
	}
	i := sort.Search(len(attrs), func(i int) bool { return attrs[i].id >= a })
	return i, i < len(attrs) && attrs[i].id == a
}

type nodeData struct {
	label LabelID
	attrs []attrPair // sorted by id; see findAttr
}

// Graph is a directed, labeled, attributed graph G = (V, E, L, F_A).
// Edges are unique per (src, label, dst) triple. Adjacency lists are kept
// sorted by (Label, To) so edge checks are logarithmic.
//
// A Graph is safe for concurrent reads once construction and updates are
// done; mutation is not synchronized.
type Graph struct {
	syms      *Symbols
	nodes     []nodeData
	out       [][]Half
	in        [][]Half
	edgeCount int
	byLabel   map[LabelID][]NodeID
	// attrIdx holds the attribute value indexes built by EnsureAttrIndex
	// (candidate pruning, §6.2 step (3)); SetAttrA keeps them in sync.
	attrIdx map[attrIndexKey]*AttrIndex
	// stats holds the maintained planning statistics (see stats.go); nil
	// until the first LiveStats call, then kept current by every mutator.
	stats *LiveStats
}

// New returns an empty graph with a fresh symbol table.
func New() *Graph { return NewWithSymbols(NewSymbols()) }

// NewWithSymbols returns an empty graph sharing an existing symbol table
// (used when patterns and graphs must agree on ids).
func NewWithSymbols(s *Symbols) *Graph {
	return &Graph{syms: s, byLabel: make(map[LabelID][]NodeID)}
}

// Symbols exposes the graph's symbol table.
func (g *Graph) Symbols() *Symbols { return g.syms }

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return g.edgeCount }

// AddNode adds a node with the given label and returns its id.
func (g *Graph) AddNode(label string) NodeID {
	return g.AddNodeL(g.syms.Label(label))
}

// AddNodeL adds a node with an already-interned label.
func (g *Graph) AddNodeL(label LabelID) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, nodeData{label: label})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[label] = append(g.byLabel[label], id)
	g.noteChurn()
	return id
}

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) LabelID { return g.nodes[v].label }

// LabelName returns the label string of node v.
func (g *Graph) LabelName(v NodeID) string { return g.syms.LabelName(g.nodes[v].label) }

// SetAttr sets attribute a of node v (F_A(v).a = val).
func (g *Graph) SetAttr(v NodeID, name string, val Value) {
	g.SetAttrA(v, g.syms.Attr(name), val)
}

// SetAttrA sets an attribute by interned id, updating any attribute index
// covering (label(v), a).
func (g *Graph) SetAttrA(v NodeID, a AttrID, val Value) {
	nd := &g.nodes[v]
	i, found := findAttr(nd.attrs, a)
	if ix := g.attrIdx[attrIndexKey{nd.label, a}]; ix != nil {
		if found && nd.attrs[i].val.Valid() {
			ix.remove(v, nd.attrs[i].val)
		}
		if val.Valid() {
			ix.add(v, val)
		}
	}
	if found {
		nd.attrs[i].val = val
	} else {
		nd.attrs = append(nd.attrs, attrPair{})
		copy(nd.attrs[i+1:], nd.attrs[i:])
		nd.attrs[i] = attrPair{id: a, val: val}
	}
	g.noteChurn()
}

// Attr returns attribute a of v; the zero Value (invalid) means absent.
func (g *Graph) Attr(v NodeID, a AttrID) Value {
	attrs := g.nodes[v].attrs
	if i, ok := findAttr(attrs, a); ok {
		return attrs[i].val
	}
	return Value{}
}

// AttrByName returns an attribute by name.
func (g *Graph) AttrByName(v NodeID, name string) Value {
	a := g.syms.LookupAttr(name)
	if a < 0 {
		return Value{}
	}
	return g.Attr(v, a)
}

// Attrs iterates the attribute tuple of v in ascending AttrID order.
func (g *Graph) Attrs(v NodeID, fn func(AttrID, Value)) {
	for _, p := range g.nodes[v].attrs {
		fn(p.id, p.val)
	}
}

// NumAttrs reports the arity of v's attribute tuple.
func (g *Graph) NumAttrs(v NodeID) int { return len(g.nodes[v].attrs) }

func searchHalf(list []Half, h Half) (int, bool) {
	i := sort.Search(len(list), func(i int) bool {
		if list[i].Label != h.Label {
			return list[i].Label >= h.Label
		}
		return list[i].To >= h.To
	})
	return i, i < len(list) && list[i] == h
}

func insertHalf(list []Half, h Half) ([]Half, bool) {
	i, found := searchHalf(list, h)
	if found {
		return list, false
	}
	list = append(list, Half{})
	copy(list[i+1:], list[i:])
	list[i] = h
	return list, true
}

func removeHalf(list []Half, h Half) ([]Half, bool) {
	i, found := searchHalf(list, h)
	if !found {
		return list, false
	}
	copy(list[i:], list[i+1:])
	return list[:len(list)-1], true
}

// AddEdge inserts edge (u -label-> v). It reports whether the edge was new.
func (g *Graph) AddEdge(u, v NodeID, label string) bool {
	return g.AddEdgeL(u, v, g.syms.Label(label))
}

// AddEdgeL inserts an edge with an interned label.
func (g *Graph) AddEdgeL(u, v NodeID, label LabelID) bool {
	var added bool
	g.out[u], added = insertHalf(g.out[u], Half{Label: label, To: v})
	if !added {
		return false
	}
	g.in[v], _ = insertHalf(g.in[v], Half{Label: label, To: u})
	g.edgeCount++
	g.noteEdge(u, v, label, 1)
	return true
}

// DeleteEdgeL removes edge (u -label-> v); reports whether it existed.
func (g *Graph) DeleteEdgeL(u, v NodeID, label LabelID) bool {
	var removed bool
	g.out[u], removed = removeHalf(g.out[u], Half{Label: label, To: v})
	if !removed {
		return false
	}
	g.in[v], _ = removeHalf(g.in[v], Half{Label: label, To: u})
	g.edgeCount--
	g.noteEdge(u, v, label, -1)
	return true
}

// HasEdgeL reports whether edge (u -label-> v) exists.
func (g *Graph) HasEdgeL(u, v NodeID, label LabelID) bool {
	_, found := searchHalf(g.out[u], Half{Label: label, To: v})
	return found
}

// Out returns the sorted out-adjacency of v. Callers must not mutate it.
func (g *Graph) Out(v NodeID) []Half { return g.out[v] }

// In returns the sorted in-adjacency of v. Callers must not mutate it.
func (g *Graph) In(v NodeID) []Half { return g.in[v] }

// OutDegree reports len(Out(v)).
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree reports len(In(v)).
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Degree reports the total degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.out[v]) + len(g.in[v]) }

// NodesWithLabel returns the nodes carrying the label; for Wildcard it
// returns nil (use NumNodes and iterate instead: every node matches).
func (g *Graph) NodesWithLabel(l LabelID) []NodeID {
	if l == Wildcard {
		return nil
	}
	return g.byLabel[l]
}

// CountLabel reports how many nodes carry label l (all nodes for Wildcard).
func (g *Graph) CountLabel(l LabelID) int {
	if l == Wildcard {
		return len(g.nodes)
	}
	return len(g.byLabel[l])
}

// Neighborhood returns the set V_d(v): all nodes within d hops of v when G
// is taken as an undirected graph (paper §6.1). The result includes v and is
// in BFS discovery order.
func (g *Graph) Neighborhood(v NodeID, d int) []NodeID {
	return g.NeighborhoodOf([]NodeID{v}, d)
}

// NeighborhoodOf returns the union of V_d(v) over several seed nodes,
// deduplicated, in BFS discovery order.
func (g *Graph) NeighborhoodOf(seeds []NodeID, d int) []NodeID {
	seen := AcquireNodeSet(len(g.nodes))
	defer ReleaseNodeSet(seen)
	var frontier, result []NodeID
	for _, s := range seeds {
		if !seen.Add(s) {
			continue
		}
		frontier = append(frontier, s)
		result = append(result, s)
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, h := range g.out[u] {
				if seen.Add(h.To) {
					next = append(next, h.To)
					result = append(result, h.To)
				}
			}
			for _, h := range g.in[u] {
				if seen.Add(h.To) {
					next = append(next, h.To)
					result = append(result, h.To)
				}
			}
		}
		frontier = next
	}
	return result
}

// InducedEdges calls fn for every edge of the subgraph induced by the node
// set (paper §2): both endpoints in the set.
func (g *Graph) InducedEdges(set map[NodeID]struct{}, fn func(u, v NodeID, l LabelID)) {
	for u := range set {
		for _, h := range g.out[u] {
			if _, ok := set[h.To]; ok {
				fn(u, h.To, h.Label)
			}
		}
	}
}

// Clone returns a deep copy sharing the symbol table. Attribute indexes and
// maintained statistics are not copied; the clone rebuilds them on the next
// EnsureAttrIndex / LiveStats call.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		syms:      g.syms,
		nodes:     make([]nodeData, len(g.nodes)),
		out:       make([][]Half, len(g.out)),
		in:        make([][]Half, len(g.in)),
		edgeCount: g.edgeCount,
		byLabel:   make(map[LabelID][]NodeID, len(g.byLabel)),
	}
	copy(c.nodes, g.nodes)
	for i := range g.nodes {
		if g.nodes[i].attrs != nil {
			c.nodes[i].attrs = append([]attrPair(nil), g.nodes[i].attrs...)
		}
	}
	for i := range g.out {
		c.out[i] = append([]Half(nil), g.out[i]...)
		c.in[i] = append([]Half(nil), g.in[i]...)
	}
	for l, ns := range g.byLabel {
		c.byLabel[l] = append([]NodeID(nil), ns...)
	}
	return c
}

// CloneDetached is Clone with a private copy of the symbol table. Use it to
// hand a frozen copy of the graph to another goroutine (e.g. a background
// snapshot encoder) while the original keeps interning new labels and
// attributes — plain Clone shares the symbol table, so concurrent interning
// would race with readers of the copy.
func (g *Graph) CloneDetached() *Graph {
	c := g.Clone()
	c.syms = g.syms.Clone()
	return c
}

// Stats summarizes a graph (used by generators and the bench harness).
type Stats struct {
	Nodes, Edges int
	Labels       int
	MaxOutDeg    int
	MaxInDeg     int
	Density      float64 // |E| / (|V|·(|V|−1)), the paper's definition
}

// ComputeStats scans the graph and reports summary statistics.
func (g *Graph) ComputeStats() Stats {
	st := Stats{Nodes: len(g.nodes), Edges: g.edgeCount, Labels: g.syms.NumLabels() - 1}
	for i := range g.nodes {
		if d := len(g.out[i]); d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
		if d := len(g.in[i]); d > st.MaxInDeg {
			st.MaxInDeg = d
		}
	}
	n := float64(len(g.nodes))
	if n > 1 {
		st.Density = float64(g.edgeCount) / (n * (n - 1))
	}
	return st
}
