// Package graph implements the directed, labeled, attributed multigraphs of
// Fan et al., "Catching Numeric Inconsistencies in Graphs" (SIGMOD 2018),
// Section 2: G = (V, E, L, F_A) where every node carries a label and a tuple
// of attribute/value pairs, and every edge carries a label.
//
// The package also provides the operations the detection algorithms of the
// paper rely on: induced subgraphs, d-neighborhoods G_d(v), batch updates
// ΔG = (ΔG⁺, ΔG⁻) and overlay views of G ⊕ ΔG.
package graph

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of an attribute Value.
type Kind uint8

// The attribute value kinds supported by F_A(v). The paper's constants U are
// integers and strings; booleans appear in its examples (account status), so
// all three are first-class. Floats are accepted for robustness when loading
// external data and compare exactly.
const (
	KindInvalid Kind = iota
	KindInt
	KindString
	KindBool
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindFloat:
		return "float"
	default:
		return "invalid"
	}
}

// Value is an attribute value drawn from the constant universe U.
// The zero Value is invalid and behaves like a missing attribute.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean Value. Booleans participate in arithmetic as 0/1,
// matching the paper's use of status ∈ {0,1} in NGD φ4.
func Bool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool, i: 0}
}

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether v holds a value (i.e. the attribute exists).
func (v Value) Valid() bool { return v.kind != KindInvalid }

// AsInt returns the value as an int64 and whether the conversion is exact.
// Ints and bools convert; floats convert only when integral.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return v.i, true
	case KindFloat:
		i := int64(v.f)
		if float64(i) == v.f {
			return i, true
		}
	}
	return 0, false
}

// AsString returns the string payload and whether v is a string.
func (v Value) AsString() (string, bool) {
	if v.kind == KindString {
		return v.s, true
	}
	return "", false
}

// AsBool returns the boolean payload and whether v is a bool.
func (v Value) AsBool() (bool, bool) {
	if v.kind == KindBool {
		return v.i != 0, true
	}
	return false, false
}

// AsFloat returns the value as a float64 for numeric kinds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// Equal reports whether two values are equal. Numeric kinds compare by
// numeric value (Int(3) == Float(3.0), Bool(true) == Int(1)); strings only
// equal strings.
func (v Value) Equal(o Value) bool {
	if v.kind == KindString || o.kind == KindString {
		return v.kind == KindString && o.kind == KindString && v.s == o.s
	}
	if !v.Valid() || !o.Valid() {
		return v.kind == o.kind
	}
	a, aok := v.AsFloat()
	b, bok := o.AsFloat()
	return aok && bok && a == b
}

// String renders the value in the textual graph format.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "<invalid>"
	}
}

// ParseValue parses the textual form produced by Value.String: quoted
// strings, true/false, integers, then floats.
func ParseValue(s string) (Value, error) {
	if s == "" {
		return Value{}, fmt.Errorf("graph: empty value")
	}
	if s[0] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("graph: bad string value %q: %v", s, err)
		}
		return Str(u), nil
	}
	switch s {
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("graph: cannot parse value %q", s)
}
