package graph

import "sort"

// This file implements the attribute value indexes behind the literal-based
// candidate pruning of §6.2 step (3). An AttrIndex covers one (node label,
// attribute) pair and answers two query shapes:
//
//   - equality: all nodes of the label whose attribute equals a constant
//     (hash postings for strings; a point range query for integers);
//   - range: all nodes whose integer attribute value falls in [lo, hi]
//     (ordered index, a slice sorted by (value, node)).
//
// Indexed values follow the comparison semantics of internal/expr: ints,
// bools (as 0/1) and integral floats collapse onto one int64 key (Int(3),
// Float(3.0) and a true flag behave identically in literals); strings key
// the string postings. Values that can never satisfy a comparison literal —
// non-integral floats (expr.ErrType) and absent attributes — are simply not
// indexed, which is exactly the pruning the matcher wants.
//
// Indexes are built on demand with EnsureAttrIndex (single-threaded setup,
// e.g. while building matching plans) and are read-only afterwards from the
// matcher's point of view; SetAttrA keeps existing indexes in sync when
// attributes change. Query methods never build or mutate, so concurrent
// readers (the parallel engine's workers) are safe.

// ordEntry is one entry of the ordered index: an integer-keyed value.
type ordEntry struct {
	val  int64
	node NodeID
}

// AttrIndex indexes the nodes carrying one label by one attribute's value.
// Integer-keyed values live only in the ordered slice — equality lookups
// are a two-sided binary search (they happen at plan-build and seed time,
// never per candidate), which keeps mutation maintenance to one container.
type AttrIndex struct {
	label LabelID
	attr  AttrID
	strs  map[string][]NodeID // string equality postings (sorted by node id)
	ord   []ordEntry          // integer entries sorted by (val, node)
}

// IndexRun is an immutable candidate list returned by index queries; it
// wraps either an equality posting list or a contiguous slice of the
// ordered index without copying.
type IndexRun struct {
	nodes   []NodeID
	entries []ordEntry
}

// Len reports the number of candidates in the run.
func (r IndexRun) Len() int {
	if r.nodes != nil {
		return len(r.nodes)
	}
	return len(r.entries)
}

// At returns the i-th candidate node.
func (r IndexRun) At(i int) NodeID {
	if r.nodes != nil {
		return r.nodes[i]
	}
	return r.entries[i].node
}

// intKey maps an attribute value onto its int64 index key. ok=false means
// the value takes no part in integer indexing (strings, non-integral
// floats, absent values).
func intKey(v Value) (int64, bool) {
	switch v.Kind() {
	case KindInt, KindBool, KindFloat:
		return v.AsInt()
	}
	return 0, false
}

// Label reports the node label this index covers.
func (ix *AttrIndex) Label() LabelID { return ix.label }

// Attr reports the attribute this index covers.
func (ix *AttrIndex) Attr() AttrID { return ix.attr }

// Len reports the number of indexed (node, value) entries.
func (ix *AttrIndex) Len() int {
	n := len(ix.ord)
	for _, ps := range ix.strs {
		n += len(ps)
	}
	return n
}

// Ints returns the nodes whose attribute equals integer v.
func (ix *AttrIndex) Ints(v int64) IndexRun { return ix.IntRange(v, v) }

// Strs returns the nodes whose attribute equals string s.
func (ix *AttrIndex) Strs(s string) IndexRun {
	ps := ix.strs[s]
	if ps == nil {
		return IndexRun{nodes: []NodeID{}}
	}
	return IndexRun{nodes: ps}
}

// IntRange returns the nodes whose integer attribute value lies in the
// inclusive range [lo, hi], ordered by (value, node).
func (ix *AttrIndex) IntRange(lo, hi int64) IndexRun {
	if lo > hi {
		return IndexRun{nodes: []NodeID{}}
	}
	a := sort.Search(len(ix.ord), func(i int) bool { return ix.ord[i].val >= lo })
	b := sort.Search(len(ix.ord), func(i int) bool { return ix.ord[i].val > hi })
	return IndexRun{entries: ix.ord[a:b]}
}

// insertNode adds v into a sorted posting list.
func insertNode(ps []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(ps), func(i int) bool { return ps[i] >= v })
	if i < len(ps) && ps[i] == v {
		return ps
	}
	ps = append(ps, 0)
	copy(ps[i+1:], ps[i:])
	ps[i] = v
	return ps
}

// removeNode deletes v from a sorted posting list.
func removeNode(ps []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(ps), func(i int) bool { return ps[i] >= v })
	if i >= len(ps) || ps[i] != v {
		return ps
	}
	copy(ps[i:], ps[i+1:])
	return ps[:len(ps)-1]
}

// ordSearch locates entry e in the sorted ordered index.
func (ix *AttrIndex) ordSearch(e ordEntry) (int, bool) {
	i := sort.Search(len(ix.ord), func(i int) bool {
		if ix.ord[i].val != e.val {
			return ix.ord[i].val > e.val
		}
		return ix.ord[i].node >= e.node
	})
	return i, i < len(ix.ord) && ix.ord[i] == e
}

// add indexes value val for node v (incremental maintenance; bulk
// construction goes through EnsureAttrIndex's sort-once path).
func (ix *AttrIndex) add(v NodeID, val Value) {
	if s, ok := val.AsString(); ok {
		ix.strs[s] = insertNode(ix.strs[s], v)
		return
	}
	k, ok := intKey(val)
	if !ok {
		return
	}
	e := ordEntry{val: k, node: v}
	i, found := ix.ordSearch(e)
	if found {
		return
	}
	ix.ord = append(ix.ord, ordEntry{})
	copy(ix.ord[i+1:], ix.ord[i:])
	ix.ord[i] = e
}

// remove un-indexes value val for node v.
func (ix *AttrIndex) remove(v NodeID, val Value) {
	if s, ok := val.AsString(); ok {
		if ps := removeNode(ix.strs[s], v); len(ps) > 0 {
			ix.strs[s] = ps
		} else {
			delete(ix.strs, s)
		}
		return
	}
	k, ok := intKey(val)
	if !ok {
		return
	}
	if i, found := ix.ordSearch(ordEntry{val: k, node: v}); found {
		copy(ix.ord[i:], ix.ord[i+1:])
		ix.ord = ix.ord[:len(ix.ord)-1]
	}
}

type attrIndexKey struct {
	label LabelID
	attr  AttrID
}

// AttrIndexed is implemented by views that answer indexed attribute
// lookups: *Graph natively, *Overlay by delegating to its base graph (ΔG
// consists of edge updates only, so attribute indexes are unaffected).
//
// EnsureAttrIndex may mutate the underlying graph and must only be called
// during single-threaded setup (plan building); AttrIndexFor and the
// AttrIndex query methods are read-only and safe for concurrent use.
type AttrIndexed interface {
	EnsureAttrIndex(l LabelID, a AttrID) *AttrIndex
	AttrIndexFor(l LabelID, a AttrID) *AttrIndex
}

var (
	_ AttrIndexed = (*Graph)(nil)
	_ AttrIndexed = (*Overlay)(nil)
)

// EnsureAttrIndex returns the attribute index for (l, a), building it on
// first use. It returns nil for the wildcard pseudo-label (which has no
// bucket of its own). Once built, the index is kept in sync by SetAttrA.
func (g *Graph) EnsureAttrIndex(l LabelID, a AttrID) *AttrIndex {
	if l == Wildcard || l == NoLabel || a < 0 {
		return nil
	}
	if ix := g.attrIdx[attrIndexKey{l, a}]; ix != nil {
		return ix
	}
	ix := &AttrIndex{
		label: l,
		attr:  a,
		strs:  make(map[string][]NodeID),
	}
	// bulk build: append everything, sort once (byLabel lists nodes in
	// ascending id order, so string postings come out sorted already)
	for _, v := range g.byLabel[l] {
		val := g.Attr(v, a)
		if !val.Valid() {
			continue
		}
		if s, ok := val.AsString(); ok {
			ix.strs[s] = append(ix.strs[s], v)
		} else if k, ok := intKey(val); ok {
			ix.ord = append(ix.ord, ordEntry{val: k, node: v})
		}
	}
	sort.Slice(ix.ord, func(i, j int) bool {
		if ix.ord[i].val != ix.ord[j].val {
			return ix.ord[i].val < ix.ord[j].val
		}
		return ix.ord[i].node < ix.ord[j].node
	})
	if g.attrIdx == nil {
		g.attrIdx = make(map[attrIndexKey]*AttrIndex)
	}
	g.attrIdx[attrIndexKey{l, a}] = ix
	return ix
}

// AttrIndexFor returns the already-built index for (l, a), or nil. It never
// builds, so it is safe on the concurrent matching paths.
func (g *Graph) AttrIndexFor(l LabelID, a AttrID) *AttrIndex {
	return g.attrIdx[attrIndexKey{l, a}]
}

// EnsureAttrIndex delegates to the base graph for (label, attr) pairs the
// overlay has not dirtied with SetAttr. Dirtied pairs return nil: the base
// index still reflects the old attribute values, so serving it would hand
// the matcher stale candidate runs — a nil index makes seeding fall back to
// the label-bucket scan, whose per-candidate filters read attributes through
// the overlay and therefore see the overrides.
func (o *Overlay) EnsureAttrIndex(l LabelID, a AttrID) *AttrIndex {
	if o.dirtyIdx[attrIndexKey{l, a}] {
		return nil
	}
	return o.base.EnsureAttrIndex(l, a)
}

// AttrIndexFor delegates to the base graph, masking overlay-dirtied pairs
// (see EnsureAttrIndex).
func (o *Overlay) AttrIndexFor(l LabelID, a AttrID) *AttrIndex {
	if o.dirtyIdx[attrIndexKey{l, a}] {
		return nil
	}
	return o.base.AttrIndexFor(l, a)
}
