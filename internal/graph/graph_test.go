package graph

import (
	"math/rand"
	"testing"
)

func buildTriangle(t *testing.T) (*Graph, [3]NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("city")
	g.AddEdge(a, b, "knows")
	g.AddEdge(b, c, "livesIn")
	g.AddEdge(a, c, "livesIn")
	return g, [3]NodeID{a, b, c}
}

func TestBasicGraphOps(t *testing.T) {
	g, n := buildTriangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("size = (%d,%d), want (3,3)", g.NumNodes(), g.NumEdges())
	}
	knows := g.Symbols().LookupLabel("knows")
	livesIn := g.Symbols().LookupLabel("livesIn")
	if !g.HasEdgeL(n[0], n[1], knows) {
		t.Error("missing a-knows->b")
	}
	if g.HasEdgeL(n[1], n[0], knows) {
		t.Error("edges must be directed")
	}
	if !g.HasEdgeL(n[0], n[2], livesIn) || !g.HasEdgeL(n[1], n[2], livesIn) {
		t.Error("missing livesIn edges")
	}
	// duplicate insertion is a no-op
	if g.AddEdgeL(n[0], n[1], knows) {
		t.Error("duplicate edge reported as new")
	}
	if g.NumEdges() != 3 {
		t.Error("duplicate changed edge count")
	}
	// parallel edge with different label is distinct
	if !g.AddEdge(n[0], n[1], "follows") {
		t.Error("parallel edge with new label should insert")
	}
	if g.NumEdges() != 4 {
		t.Error("edge count after parallel insert")
	}
	if got := g.InDegree(n[2]); got != 2 {
		t.Errorf("InDegree(city) = %d, want 2", got)
	}
	if got := len(g.NodesWithLabel(g.Symbols().LookupLabel("person"))); got != 2 {
		t.Errorf("NodesWithLabel(person) = %d, want 2", got)
	}
	if g.CountLabel(Wildcard) != 3 {
		t.Errorf("CountLabel(wildcard) = %d, want 3", g.CountLabel(Wildcard))
	}
}

func TestDeleteEdge(t *testing.T) {
	g, n := buildTriangle(t)
	knows := g.Symbols().LookupLabel("knows")
	if !g.DeleteEdgeL(n[0], n[1], knows) {
		t.Fatal("delete existing edge failed")
	}
	if g.DeleteEdgeL(n[0], n[1], knows) {
		t.Fatal("double delete reported success")
	}
	if g.HasEdgeL(n[0], n[1], knows) || g.NumEdges() != 2 {
		t.Fatal("edge still present after delete")
	}
	if len(g.In(n[1])) != 0 {
		t.Fatal("in-list not updated")
	}
}

func TestAttributes(t *testing.T) {
	g := New()
	v := g.AddNode("x")
	g.SetAttr(v, "val", Int(42))
	g.SetAttr(v, "name", Str("foo"))
	a := g.Symbols().LookupAttr("val")
	if got := g.Attr(v, a); !got.Equal(Int(42)) {
		t.Errorf("val = %v", got)
	}
	if got := g.AttrByName(v, "name"); !got.Equal(Str("foo")) {
		t.Errorf("name = %v", got)
	}
	if g.AttrByName(v, "absent").Valid() {
		t.Error("absent attribute should be invalid")
	}
	g.SetAttr(v, "val", Int(43)) // overwrite
	if got := g.AttrByName(v, "val"); !got.Equal(Int(43)) {
		t.Errorf("val after overwrite = %v", got)
	}
	if g.NumAttrs(v) != 2 {
		t.Errorf("NumAttrs = %d, want 2", g.NumAttrs(v))
	}
}

func TestValues(t *testing.T) {
	cases := []struct {
		v    Value
		text string
	}{
		{Int(-7), "-7"},
		{Str("a b"), `"a b"`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Float(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.text {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.text)
		}
		parsed, err := ParseValue(c.text)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.text, err)
		}
		if !parsed.Equal(c.v) {
			t.Errorf("round trip %q: got %v", c.text, parsed)
		}
	}
	if !Int(1).Equal(Bool(true)) {
		t.Error("Bool(true) should equal Int(1) numerically")
	}
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("numbers must not equal strings")
	}
	if _, err := ParseValue(""); err == nil {
		t.Error("empty value should fail")
	}
	if _, err := ParseValue("nonsense words"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestNeighborhood(t *testing.T) {
	// path a -> b -> c -> d plus a detached node e
	g := New()
	a := g.AddNode("n")
	b := g.AddNode("n")
	c := g.AddNode("n")
	d := g.AddNode("n")
	e := g.AddNode("n")
	g.AddEdge(a, b, "l")
	g.AddEdge(b, c, "l")
	g.AddEdge(c, d, "l")

	if got := len(g.Neighborhood(a, 0)); got != 1 {
		t.Errorf("V_0(a) size = %d, want 1", got)
	}
	if got := len(g.Neighborhood(a, 1)); got != 2 {
		t.Errorf("V_1(a) size = %d, want 2", got)
	}
	if got := len(g.Neighborhood(a, 3)); got != 4 {
		t.Errorf("V_3(a) size = %d, want 4", got)
	}
	// neighborhoods are undirected: d reaches a in 3 hops
	if got := len(g.Neighborhood(d, 3)); got != 4 {
		t.Errorf("V_3(d) size = %d, want 4", got)
	}
	if got := len(g.Neighborhood(e, 5)); got != 1 {
		t.Errorf("V_5(e) size = %d, want 1 (isolated)", got)
	}
	// monotonicity property
	for dd := 0; dd < 4; dd++ {
		if len(g.Neighborhood(a, dd)) > len(g.Neighborhood(a, dd+1)) {
			t.Errorf("neighborhood not monotone at d=%d", dd)
		}
	}
	union := g.NeighborhoodOf([]NodeID{a, e}, 1)
	if len(union) != 3 {
		t.Errorf("union neighborhood size = %d, want 3", len(union))
	}
}

func TestOverlaySemantics(t *testing.T) {
	g, n := buildTriangle(t)
	knows := g.Symbols().LookupLabel("knows")
	livesIn := g.Symbols().LookupLabel("livesIn")

	d := &Delta{}
	d.Delete(n[0], n[1], knows)
	d.Insert(n[2], n[0], knows) // city knows person (new edge)

	o := NewOverlay(g, d)
	if o.HasEdgeL(n[0], n[1], knows) {
		t.Error("overlay should hide deleted edge")
	}
	if !o.HasEdgeL(n[2], n[0], knows) {
		t.Error("overlay should show inserted edge")
	}
	if !o.HasEdgeL(n[0], n[2], livesIn) {
		t.Error("overlay should pass through untouched edges")
	}
	if o.NumEdges() != 3 {
		t.Errorf("overlay edges = %d, want 3", o.NumEdges())
	}
	// base graph untouched
	if !g.HasEdgeL(n[0], n[1], knows) || g.NumEdges() != 3 {
		t.Error("overlay mutated the base graph")
	}
	// no-op operations change nothing
	d2 := &Delta{}
	d2.Insert(n[0], n[1], knows)   // already exists
	d2.Delete(n[1], n[0], livesIn) // never existed
	o2 := NewOverlay(g, d2)
	if o2.NumEdges() != 3 {
		t.Errorf("no-op overlay edges = %d, want 3", o2.NumEdges())
	}
}

func TestDeltaNormalize(t *testing.T) {
	g, n := buildTriangle(t)
	knows := g.Symbols().LookupLabel("knows")
	follows := g.Symbols().Label("follows")

	d := &Delta{}
	d.Insert(n[0], n[1], knows)   // exists: dropped
	d.Delete(n[0], n[1], knows)   // exists: kept
	d.Insert(n[1], n[2], follows) // new: kept
	d.Delete(n[1], n[2], follows) // last op wins: net effect nothing
	d.Insert(n[2], n[0], follows) // new: kept

	norm := d.Normalize(g)
	if len(norm.Insertions()) != 1 || len(norm.Deletions()) != 1 {
		t.Fatalf("normalized = %v", norm.Ops)
	}
	// applying normalized delta == applying original sequence
	g1 := g.Clone()
	d.Apply(g1)
	g2 := g.Clone()
	norm.Apply(g2)
	if !sameEdges(g1, g2) {
		t.Fatal("normalize changed the net effect")
	}
}

func sameEdges(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		ao, bo := a.Out(NodeID(v)), b.Out(NodeID(v))
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

// TestDeltaApplyInverseProperty: applying a normalized delta then its
// inverse restores the original edge set, on random graphs.
func TestDeltaApplyInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := 20 + rng.Intn(30)
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		l := g.Symbols().Label("e")
		for i := 0; i < n*2; i++ {
			g.AddEdgeL(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), l)
		}
		orig := g.Clone()

		d := &Delta{}
		for i := 0; i < 15; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				d.Insert(u, v, l)
			} else {
				d.Delete(u, v, l)
			}
		}
		norm := d.Normalize(g)

		// overlay view must equal eager application
		o := NewOverlay(g, norm)
		applied := g.Clone()
		norm.Apply(applied)
		for v := 0; v < n; v++ {
			ao, oo := applied.Out(NodeID(v)), o.Out(NodeID(v))
			if len(ao) != len(oo) {
				t.Fatalf("trial %d: overlay/apply out mismatch at %d", trial, v)
			}
			for i := range ao {
				if ao[i] != oo[i] {
					t.Fatalf("trial %d: overlay/apply half mismatch", trial)
				}
			}
		}

		norm.Apply(g)
		norm.Inverse().Apply(g)
		if !sameEdges(g, orig) {
			t.Fatalf("trial %d: apply+inverse != identity", trial)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g, n := buildTriangle(t)
	g.SetAttr(n[0], "val", Int(1))
	c := g.Clone()
	c.SetAttr(n[0], "val", Int(2))
	c.AddEdge(n[1], n[0], "knows")
	if !g.AttrByName(n[0], "val").Equal(Int(1)) {
		t.Error("clone shares attribute storage")
	}
	if g.NumEdges() == c.NumEdges() {
		t.Error("clone shares adjacency")
	}
}

func TestStats(t *testing.T) {
	g, _ := buildTriangle(t)
	st := g.ComputeStats()
	if st.Nodes != 3 || st.Edges != 3 {
		t.Errorf("stats size: %+v", st)
	}
	if st.MaxOutDeg != 2 || st.MaxInDeg != 2 {
		t.Errorf("stats degrees: %+v", st)
	}
	if st.Density <= 0 {
		t.Errorf("stats density: %+v", st)
	}
}

func TestInducedEdges(t *testing.T) {
	g, n := buildTriangle(t)
	set := map[NodeID]struct{}{n[0]: {}, n[1]: {}}
	count := 0
	g.InducedEdges(set, func(u, v NodeID, l LabelID) { count++ })
	if count != 1 {
		t.Errorf("induced edges = %d, want 1 (only a->b)", count)
	}
}
