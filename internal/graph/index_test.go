package graph

import (
	"math"
	"testing"
)

// buildIndexed returns a small graph of "T"-labeled nodes with val set from
// vals (invalid values mean "no attribute"), plus the built index.
func buildIndexed(t *testing.T, vals []Value) (*Graph, *AttrIndex, LabelID, AttrID) {
	t.Helper()
	g := New()
	l := g.Symbols().Label("T")
	a := g.Symbols().Attr("val")
	for _, v := range vals {
		n := g.AddNodeL(l)
		if v.Valid() {
			g.SetAttrA(n, a, v)
		}
	}
	ix := g.EnsureAttrIndex(l, a)
	if ix == nil {
		t.Fatal("EnsureAttrIndex returned nil")
	}
	return g, ix, l, a
}

func runNodes(r IndexRun) []NodeID {
	out := make([]NodeID, 0, r.Len())
	for i := 0; i < r.Len(); i++ {
		out = append(out, r.At(i))
	}
	return out
}

// bruteInts scans the graph for label-l nodes whose val has integer key in
// [lo, hi].
func bruteInts(g *Graph, l LabelID, a AttrID, lo, hi int64) map[NodeID]bool {
	want := make(map[NodeID]bool)
	for _, v := range g.NodesWithLabel(l) {
		if k, ok := intKey(g.Attr(v, a)); ok && k >= lo && k <= hi {
			want[v] = true
		}
	}
	return want
}

func sameSet(t *testing.T, got []NodeID, want map[NodeID]bool, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d nodes %v, want %d", what, len(got), got, len(want))
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("%s: unexpected node %d", what, v)
		}
	}
}

func TestAttrIndexLookupAndRange(t *testing.T) {
	vals := []Value{
		Int(5), Int(3), Int(5), Float(5.0), Bool(true), Int(-2),
		Str("x"), Str("y"), Str("x"), Float(2.5), {}, Int(1),
	}
	g, ix, l, a := buildIndexed(t, vals)

	// equality: Int(5) and Float(5.0) share a key
	sameSet(t, runNodes(ix.Ints(5)), bruteInts(g, l, a, 5, 5), "Ints(5)")
	// bools index as 0/1
	sameSet(t, runNodes(ix.Ints(1)), bruteInts(g, l, a, 1, 1), "Ints(1)")
	// strings
	if got := runNodes(ix.Strs("x")); len(got) != 2 {
		t.Fatalf("Strs(x): got %v", got)
	}
	if got := runNodes(ix.Strs("missing")); len(got) != 0 {
		t.Fatalf("Strs(missing): got %v", got)
	}
	// ranges, including full and empty
	for _, r := range [][2]int64{{-2, 3}, {0, 5}, {6, 100}, {math.MinInt64, math.MaxInt64}} {
		sameSet(t, runNodes(ix.IntRange(r[0], r[1])), bruteInts(g, l, a, r[0], r[1]),
			"IntRange")
	}
	if ix.IntRange(3, 2).Len() != 0 {
		t.Fatal("inverted range should be empty")
	}
	// non-integral floats and absent attributes are not indexed
	if n := ix.Len(); n != len(vals)-2 {
		t.Fatalf("index Len = %d, want %d", n, len(vals)-2)
	}
}

func TestSetAttrKeepsIndexInSync(t *testing.T) {
	g, ix, l, a := buildIndexed(t, []Value{Int(1), Int(2), Int(3)})

	// move node 1 from key 2 to key 7
	g.SetAttrA(1, a, Int(7))
	sameSet(t, runNodes(ix.Ints(2)), map[NodeID]bool{}, "Ints(2) after move")
	sameSet(t, runNodes(ix.Ints(7)), map[NodeID]bool{1: true}, "Ints(7) after move")
	sameSet(t, runNodes(ix.IntRange(1, 10)), bruteInts(g, l, a, 1, 10), "range after move")

	// switching type: int -> string, then string -> non-indexable float
	g.SetAttrA(0, a, Str("s"))
	if got := runNodes(ix.Ints(1)); len(got) != 0 {
		t.Fatalf("Ints(1) after retype: %v", got)
	}
	sameSet(t, runNodes(ix.Strs("s")), map[NodeID]bool{0: true}, "Strs(s)")
	g.SetAttrA(0, a, Float(0.5))
	if got := runNodes(ix.Strs("s")); len(got) != 0 {
		t.Fatalf("Strs(s) after float retype: %v", got)
	}

	// a node added after the index was built enters it via SetAttr
	n := g.AddNodeL(l)
	g.SetAttrA(n, a, Int(3))
	sameSet(t, runNodes(ix.Ints(3)), map[NodeID]bool{2: true, n: true}, "Ints(3) after add")
}

func TestEnsureAttrIndexIdempotentAndScoped(t *testing.T) {
	g, ix, l, a := buildIndexed(t, []Value{Int(1)})
	if g.EnsureAttrIndex(l, a) != ix {
		t.Fatal("EnsureAttrIndex rebuilt an existing index")
	}
	if g.AttrIndexFor(l, a) != ix {
		t.Fatal("AttrIndexFor does not return the built index")
	}
	if g.EnsureAttrIndex(Wildcard, a) != nil {
		t.Fatal("wildcard label must not be indexable")
	}
	other := g.Symbols().Label("U")
	if g.AttrIndexFor(other, a) != nil {
		t.Fatal("AttrIndexFor must not build")
	}
	// an index over a label with no nodes is empty but valid
	if ux := g.EnsureAttrIndex(other, a); ux == nil || ux.Len() != 0 {
		t.Fatal("empty-label index should exist and be empty")
	}
}

func TestOverlayDelegatesAttrIndex(t *testing.T) {
	g, ix, l, a := buildIndexed(t, []Value{Int(1), Int(2)})
	d := &Delta{}
	d.Insert(0, 1, g.Symbols().Label("e"))
	o := NewOverlay(g, d)
	if o.AttrIndexFor(l, a) != ix {
		t.Fatal("overlay must delegate AttrIndexFor to its base")
	}
	if o.EnsureAttrIndex(l, a) != ix {
		t.Fatal("overlay must delegate EnsureAttrIndex to its base")
	}
}

func TestCloneDropsIndexes(t *testing.T) {
	g, _, l, a := buildIndexed(t, []Value{Int(1)})
	c := g.Clone()
	if c.AttrIndexFor(l, a) != nil {
		t.Fatal("clone must not share attribute indexes")
	}
	// and rebuilding on the clone works without touching the original
	cix := c.EnsureAttrIndex(l, a)
	if cix == nil || cix.Len() != 1 {
		t.Fatal("clone failed to rebuild its index")
	}
	c.SetAttrA(0, a, Int(9))
	if g.AttrIndexFor(l, a).Ints(9).Len() != 0 {
		t.Fatal("mutating the clone leaked into the original index")
	}
}
