package plan_test

import (
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/pattern"
	"ngd/internal/plan"
)

// skewedGraph builds a graph with a deliberately lopsided label
// distribution: many `big` nodes, few `tiny` nodes, every tiny node linked
// from every big node — so a frequency-aware planner must seed at `tiny`.
func skewedGraph() (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	g := graph.New()
	big := g.Symbols().Label("big")
	tiny := g.Symbols().Label("tiny")
	rel := g.Symbols().Label("rel")
	var bigs, tinys []graph.NodeID
	for i := 0; i < 60; i++ {
		bigs = append(bigs, g.AddNodeL(big))
	}
	for i := 0; i < 3; i++ {
		tinys = append(tinys, g.AddNodeL(tiny))
	}
	for _, b := range bigs {
		for _, t := range tinys {
			g.AddEdgeL(b, t, rel)
		}
	}
	return g, bigs, tinys
}

func pairRule(name string) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "big")
	y := q.AddNode("y", "tiny")
	q.AddEdge(x, y, "rel")
	return core.MustNew(name, q, nil, []core.Literal{
		core.Lit(expr.V("x", "v"), expr.Eq, expr.C(1)),
	})
}

func TestCostPlanSeedsAtSelectiveNode(t *testing.T) {
	g, _, _ := skewedGraph()
	r := pairRule("pair")
	prog := plan.New(g, core.NewSet(r), plan.Options{})
	_, pl := prog.PlanFor(g, r, nil, true)
	if len(pl.Steps) != 2 {
		t.Fatalf("plan has %d steps, want 2", len(pl.Steps))
	}
	if pl.Steps[0].Node != 1 {
		t.Fatalf("cost plan seeds at node %d (label big ×60); want 1 (tiny ×3)", pl.Steps[0].Node)
	}
	if pl.Steps[1].AnchorEdge != 0 {
		t.Fatal("second step must anchor on the pattern edge")
	}
}

func TestPlanCacheHitsMissesInvalidation(t *testing.T) {
	g, bigs, tinys := skewedGraph()
	r := pairRule("pair")
	prog := plan.New(g, core.NewSet(r), plan.Options{ChurnThreshold: 8})

	_, p1 := prog.PlanFor(g, r, nil, false)
	_, p2 := prog.PlanFor(g, r, nil, false)
	if p1 != p2 {
		t.Fatal("second PlanFor did not serve the cached plan")
	}
	c := prog.Counters()
	if c.Misses != 1 || c.Hits != 1 || c.Invalidations != 0 {
		t.Fatalf("counters after warm lookup = %+v, want 1 miss / 1 hit", c)
	}

	// distinct keys: bound signature and pruning flag
	prog.PlanFor(g, r, []int{0}, false)
	prog.PlanFor(g, r, nil, true)
	if c := prog.Counters(); c.Misses != 3 {
		t.Fatalf("distinct (bound, pruning) keys should each miss once; counters %+v", c)
	}

	// churn past the threshold invalidates
	rel := g.Symbols().Label("rel")
	for i := 0; i < 20; i++ {
		g.AddEdgeL(tinys[0], bigs[i], rel)
	}
	_, p3 := prog.PlanFor(g, r, nil, false)
	if p3 == p1 {
		t.Fatal("stale plan survived churn past the threshold")
	}
	if c := prog.Counters(); c.Invalidations != 1 {
		t.Fatalf("counters after churn = %+v, want 1 invalidation", c)
	}
}

func TestIdenticalRulesShareGroupAndPattern(t *testing.T) {
	p := gen.YAGO2
	set := core.NewSet(
		gen.FollowerRule(p, 1), gen.FollowerRule(p, 2), gen.FollowerRule(p, 3),
		gen.SumRule(0, 10), gen.SumRule(0, 11), gen.SumRule(1, 12),
	)
	ds := gen.Generate(p, 80, 3)
	prog := plan.New(ds.G, set, plan.Options{})
	c := prog.Counters()
	if c.Rules != 6 {
		t.Fatalf("rules = %d, want 6", c.Rules)
	}
	// follower×3 collapse to one group, sum-T0×2 to one, sum-T1 its own
	if c.Groups != 3 {
		t.Fatalf("groups = %d, want 3 (identical patterns+filters dedupe)", c.Groups)
	}
	a := prog.CompiledFor(set.Rules[0])
	b := prog.CompiledFor(set.Rules[1])
	if a.CP != b.CP {
		t.Fatal("identical patterns must share one compiled instance")
	}
	_, pa := prog.PlanFor(ds.G, set.Rules[0], nil, false)
	_, pb := prog.PlanFor(ds.G, set.Rules[1], nil, false)
	if pa != pb {
		t.Fatal("rules in one group must share cached plans")
	}
}

func TestShareForestMergesPrefixes(t *testing.T) {
	p := gen.YAGO2
	// three identical-pattern rules plus two sum rules: the forest must be
	// narrower than one path per rule
	set := core.NewSet(
		gen.FollowerRule(p, 1), gen.FollowerRule(p, 2), gen.FollowerRule(p, 3),
		gen.SumRule(0, 10), gen.SumRule(0, 11),
	)
	ds := gen.Generate(p, 80, 3)
	prog := plan.New(ds.G, set, plan.Options{})
	sh := prog.ShareFor(ds.G, set, false)
	if len(sh.Rules) != 5 {
		t.Fatalf("forest holds %d rules, want 5", len(sh.Rules))
	}
	if got := len(sh.Root.Children); got >= 5 {
		t.Fatalf("forest has %d root branches for 5 rules — no prefix merged", got)
	}
	if sh.SharedRules < 5 {
		t.Fatalf("SharedRules = %d, want all 5 (both families overlap)", sh.SharedRules)
	}
	// memoized while plans are stable, rebuilt when the graph churns enough
	if sh2 := prog.ShareFor(ds.G, set, false); sh2 != sh {
		t.Fatal("stable ShareFor must memoize")
	}
}

// TestSharedDectMatchesPerRule drives the shared forest end to end against
// independent per-rule searches over a generated workload.
func TestSharedDectMatchesPerRule(t *testing.T) {
	p := gen.YAGO2
	p.ErrorRate = 0.25
	ds := gen.Generate(p, 120, 5)
	rules := gen.Rules(p, gen.RuleConfig{Count: 21, MaxDiameter: 5, Seed: 5})

	shared := detect.Dect(ds.G, rules, detect.Options{
		Program: plan.New(ds.G, rules, plan.Options{}),
	})
	solo := detect.Dect(ds.G, rules, detect.Options{
		Program: plan.New(ds.G, rules, plan.Options{NoSharing: true}),
	})
	if len(shared.Violations) == 0 {
		t.Fatal("vacuous workload")
	}
	a := detect.VioKeySet(shared.Violations)
	b := detect.VioKeySet(solo.Violations)
	if len(a) != len(b) {
		t.Fatalf("shared found %d violations, per-rule %d", len(a), len(b))
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			t.Fatalf("shared-only violation %s", k)
		}
	}
	if shared.Counters.Candidates > solo.Counters.Candidates {
		t.Fatalf("sharing scanned more candidates (%d) than per-rule search (%d)",
			shared.Counters.Candidates, solo.Counters.Candidates)
	}
	t.Logf("candidates: shared %d vs per-rule %d", shared.Counters.Candidates, solo.Counters.Candidates)
}

func TestForPattern(t *testing.T) {
	g, _, _ := skewedGraph()
	q := pattern.New()
	q.AddNode("a", "big")
	q.AddNode("b", "tiny")
	q.AddEdge(0, 1, "rel")
	cp := pattern.Compile(q, g.Symbols())
	pl := plan.ForPattern(g, cp)
	if len(pl.Steps) != 2 || pl.Steps[0].Node != 1 {
		t.Fatalf("ForPattern plan = %+v, want tiny-seeded 2-step plan", pl.Steps)
	}
}
