package plan

import (
	"fmt"
	"sort"
	"strings"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/match"
)

// This file arranges the batch (no pre-bound pivots) plans of a rule set
// into a prefix forest: rules whose plans begin with structurally identical
// steps — same node label, same candidate source (label scan, index run, or
// anchor edge), same edge checks, same candidate filters — share a path and
// diverge only where their plans differ. The batch detector walks the
// forest once, so a shared prefix's candidate scans, edge checks and filter
// evaluations are paid once for all rules riding it, with each rule's
// literal schedule evaluated independently along the way (internal/detect's
// shared searcher).
//
// Step signatures are depth-relative (pattern node indices are translated
// to the step depth that binds them), so rules over different Pattern
// objects — even with different variable names — share whenever their
// compiled structure matches. Rules in the same (pattern, filters) group
// trivially share their entire path; the forest additionally merges prefixes
// across groups.

// ShareRule is one rule's entry in a prefix forest.
type ShareRule struct {
	Rule *core.NGD
	C    *Compiled
	Plan *match.Plan
}

// ShareNode is one forest node: the state after binding the steps of the
// path leading to it. Children are the distinct next steps taken from here.
type ShareNode struct {
	// Depth is the number of steps bound on the path to this node; the step
	// binding it is Share.Rules[Rep].Plan.Steps[Depth-1].
	Depth int
	// Rep indexes Share.Rules: the rule whose plan and matcher drive
	// candidate generation and edge checks for this node's subtree (-1 at
	// the root, which binds nothing).
	Rep int
	// Rules indexes Share.Rules: every rule whose path passes through this
	// node (always includes Rep).
	Rules []int
	// Terminal indexes Share.Rules: rules whose plan completes at Depth —
	// their pattern is fully bound here and matches are emitted.
	Terminal []int
	// Children are the divergent continuations, in first-insertion order.
	Children []*ShareNode

	sigs map[string]int // child signature -> Children index (build only)
}

// Share is the prefix forest of one rule set's batch plans.
type Share struct {
	// Rules lists the participating rules (rules with an empty consequence
	// are excluded up front: X → ∅ holds vacuously).
	Rules []ShareRule
	// Root is the depth-0 node; its children are the distinct seed steps.
	Root *ShareNode
	// SharedRules counts rules that share at least their seed step with
	// another rule (the plan-cache counter surfaced as SharedRules).
	SharedRules int
}

// ShareFor returns the prefix forest for the batch plans of the given rule
// set over v, memoized per (set, pruning flag) and rebuilt whenever any
// underlying plan was rebuilt (churn invalidation) or the set grew.
func (p *Program) ShareFor(v graph.View, rules *core.Set, noPruning bool) *Share {
	noPruning = noPruning || p.opts.NoPruning
	// resolve the group plans first (outside the memo check: these are the
	// cache lookups whose pointers serve as the validity token)
	plans := make([]*match.Plan, 0, len(rules.Rules))
	srs := make([]ShareRule, 0, len(rules.Rules))
	for _, r := range rules.Rules {
		if len(r.Y) == 0 {
			continue
		}
		c, pl := p.PlanFor(v, r, nil, noPruning)
		srs = append(srs, ShareRule{Rule: r, C: c, Plan: pl})
		plans = append(plans, pl)
	}
	key := shareKey{set: rules, noPruning: noPruning}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.shares[key]; ok && samePlans(e.plans, plans) {
		return e.share
	}
	// The memo is keyed by set pointer; callers cycling through ephemeral
	// sets would otherwise pin every dead forest. Rebuilding is cheap, so
	// just reset the memo when it accumulates.
	if len(p.shares) >= 16 {
		clear(p.shares)
	}
	sh := buildShare(srs)
	p.shares[key] = &shareEntry{share: sh, plans: plans}
	p.sharedRules.Store(int64(sh.SharedRules))
	return sh
}

func samePlans(a, b []*match.Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildShare inserts every rule's step-signature path into the forest.
func buildShare(rules []ShareRule) *Share {
	sh := &Share{
		Rules: rules,
		Root:  &ShareNode{Depth: 0, Rep: -1, sigs: make(map[string]int)},
	}
	for ri := range rules {
		sigs := stepSigs(rules[ri].Plan)
		nd := sh.Root
		nd.Rules = append(nd.Rules, ri)
		for d, sig := range sigs {
			ci, ok := nd.sigs[sig]
			if !ok {
				ci = len(nd.Children)
				nd.sigs[sig] = ci
				nd.Children = append(nd.Children, &ShareNode{
					Depth: d + 1, Rep: ri, sigs: make(map[string]int),
				})
			}
			nd = nd.Children[ci]
			nd.Rules = append(nd.Rules, ri)
		}
		nd.Terminal = append(nd.Terminal, ri)
	}
	for _, c := range sh.Root.Children {
		if len(c.Rules) >= 2 {
			sh.SharedRules += len(c.Rules)
		}
	}
	return sh
}

// stepSigs canonicalizes a plan's steps into depth-relative signatures.
func stepSigs(pl *match.Plan) []string {
	depthOf := make(map[int]int, len(pl.Steps))
	for d, st := range pl.Steps {
		depthOf[st.Node] = d
	}
	sigs := make([]string, len(pl.Steps))
	for d := range pl.Steps {
		st := &pl.Steps[d]
		var b strings.Builder
		fmt.Fprintf(&b, "n%d", pl.CP.NodeLabels[st.Node])
		if st.AnchorEdge >= 0 {
			fmt.Fprintf(&b, "|a%d:%v:%d", pl.CP.EdgeLabels[st.AnchorEdge],
				st.AnchorOut, depthOf[st.AnchorFrom])
		} else if st.SeedPred >= 0 {
			fmt.Fprintf(&b, "|s%s", predKey(&pl.Filters[st.Node].Preds[st.SeedPred]))
		} else {
			b.WriteString("|scan")
		}
		checks := make([]string, len(st.Checks))
		for i, c := range st.Checks {
			other := "self"
			if c.Other != st.Node {
				other = fmt.Sprint(depthOf[c.Other])
			}
			checks[i] = fmt.Sprintf("c%d:%v:%s", pl.CP.EdgeLabels[c.Edge], c.Out, other)
		}
		sort.Strings(checks)
		b.WriteString("|")
		b.WriteString(strings.Join(checks, ","))
		if pl.Filters != nil {
			preds := make([]string, len(pl.Filters[st.Node].Preds))
			for i := range pl.Filters[st.Node].Preds {
				preds[i] = predKey(&pl.Filters[st.Node].Preds[i])
			}
			sort.Strings(preds)
			fmt.Fprintf(&b, "|f%s", strings.Join(preds, ","))
		}
		sigs[d] = b.String()
	}
	return sigs
}
