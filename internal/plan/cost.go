package plan

import (
	"math"

	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/pattern"
)

// This file implements the cost-based matching-order builder. The legacy
// planner (match.BuildPlan) ordered steps by "most bound edges first, then
// smallest label bucket"; here each candidate step is scored with an
// expected-work estimate from the graph's maintained statistics:
//
//   seed cost       = |best attribute-index run| when a seedable filter
//                     predicate covers the node, else the label-bucket size
//                     (|V| for wildcards);
//   extension cost  = card × fan, where card is the running estimate of
//                     partial matches produced so far and fan the mean
//                     adjacency-run length of the anchor edge's label on the
//                     anchor node's label (graph.LiveStats);
//
// and the greedy loop picks the cheapest next step. Anchored extensions are
// always preferred over seeding a new component (an anchored scan touches
// one adjacency run per partial match; a seed rescans a global candidate
// population), which also keeps pivot-anchored incremental plans free of
// seed steps, exactly like the legacy planner. Every ordering covers the
// same pattern with the same edge checks, so plan choice can never change
// the violation set — only the work done to enumerate it.

// cardCap keeps the running cardinality estimate finite under long chains
// of high-fan-out extensions.
const cardCap = 1e18

// costPlan computes a matching order for (the unbound part of) cp over v.
// f carries the candidate filters to attach (nil disables pruning).
func costPlan(v graph.View, cp *pattern.Compiled, bound []int, f match.Filters) *match.Plan {
	if f != nil && f.Empty() {
		f = nil
	}
	n := len(cp.Src.Nodes)
	isBound := make([]bool, n)
	for _, b := range bound {
		isBound[b] = true
	}
	pl := &match.Plan{CP: cp, Bound: append([]int(nil), bound...), Filters: f}

	// A pivot-anchored plan over a connected pattern has no seed steps, so
	// index construction would buy nothing (the filters still apply as
	// residual per-candidate checks). Mirrors match.BuildPrunedPlan.
	seedsPossible := !(len(bound) > 0 && cp.Src.Connected())
	if f != nil && seedsPossible {
		match.EnsureIndexes(v, cp, f)
	}

	var st *graph.LiveStats
	if ls, ok := v.(graph.LiveStatted); ok {
		st = ls.LiveStats()
	}

	incident := make([][]int, n)
	for ei, e := range cp.Src.Edges {
		incident[e.Src] = append(incident[e.Src], ei)
		if e.Dst != e.Src {
			incident[e.Dst] = append(incident[e.Dst], ei)
		}
	}

	remaining := 0
	for i := 0; i < n; i++ {
		if !isBound[i] {
			remaining++
		}
	}
	card := 1.0
	for remaining > 0 {
		type choice struct {
			node       int
			anchorEdge int // -1: seed
			anchorFrom int
			anchorOut  bool
			boundEdges int     // anchored edges into the bound set
			cost       float64 // expected scan work of this step
			out        float64 // estimated partial-match count after the step
		}
		choices := make([]choice, 0, remaining)
		anyAnchored := false
		for i := 0; i < n; i++ {
			if isBound[i] {
				continue
			}
			ch := choice{node: i, anchorEdge: -1}
			minFan := math.Inf(1)
			for _, ei := range incident[i] {
				e := cp.Src.Edges[ei]
				if e.Src == e.Dst {
					continue // self loop: no bound neighbor
				}
				other := e.Src + e.Dst - i
				if !isBound[other] {
					continue
				}
				ch.boundEdges++
				// candidates come from the *other* node's adjacency: if the
				// edge is other -> i, follow other's out-list.
				out := e.Src == other
				fan := fanEstimate(v, st, cp, other, cp.EdgeLabels[ei], out)
				if fan < minFan {
					minFan = fan
					ch.anchorEdge, ch.anchorFrom, ch.anchorOut = ei, other, out
				}
			}
			if ch.anchorEdge >= 0 {
				anyAnchored = true
				ch.cost = card * minFan
				ch.out = ch.cost
				// every extra anchored edge is a verified constraint that
				// thins the surviving candidates
				for k := 1; k < ch.boundEdges; k++ {
					ch.out /= 2
				}
			} else {
				sz, _ := seedEstimate(v, cp, i, f)
				ch.cost = card * float64(sz)
				ch.out = ch.cost
			}
			choices = append(choices, ch)
		}
		var best *choice
		for j := range choices {
			ch := &choices[j]
			if anyAnchored && ch.anchorEdge < 0 {
				continue // never seed while an extension is available
			}
			if best == nil || ch.cost < best.cost ||
				(ch.cost == best.cost && ch.boundEdges > best.boundEdges) {
				best = ch
			}
		}

		step := match.Step{Node: best.node, AnchorEdge: best.anchorEdge,
			AnchorFrom: best.anchorFrom, AnchorOut: best.anchorOut, SeedPred: -1}
		for _, ei := range incident[best.node] {
			e := cp.Src.Edges[ei]
			if e.Src == e.Dst {
				if e.Src == best.node {
					step.Checks = append(step.Checks, match.EdgeCheck{Edge: ei, Out: true, Other: best.node})
				}
				continue
			}
			other := e.Src + e.Dst - best.node
			if !isBound[other] || ei == best.anchorEdge {
				continue
			}
			step.Checks = append(step.Checks, match.EdgeCheck{Edge: ei, Out: e.Src == best.node, Other: other})
		}
		if step.AnchorEdge < 0 && f != nil {
			_, step.SeedPred = seedEstimate(v, cp, best.node, f)
		}
		pl.Steps = append(pl.Steps, step)
		isBound[best.node] = true
		remaining--
		card = math.Min(math.Max(best.out, 1), cardCap)
	}
	return pl
}

// fanEstimate is the expected run length of the (label(from), edgeLabel)
// adjacency scan. Without maintained stats it falls back to the global mean
// degree (the best label-free guess).
func fanEstimate(v graph.View, st *graph.LiveStats, cp *pattern.Compiled, from int, el graph.LabelID, out bool) float64 {
	if el == graph.NoLabel {
		return 0
	}
	fl := cp.NodeLabels[from]
	if st != nil {
		if out {
			return st.OutFan(v, fl, el)
		}
		return st.InFan(v, fl, el)
	}
	if n := v.NumNodes(); n > 0 {
		return float64(v.NumEdges()) / float64(n)
	}
	return 0
}

// seedEstimate is the candidate-population size of seeding at node: the
// smallest seedable attribute-index run when one applies, else the label
// bucket (|V| for wildcards). pred is the chosen predicate index (-1: label
// scan).
func seedEstimate(v graph.View, cp *pattern.Compiled, node int, f match.Filters) (size, pred int) {
	size = v.CountLabel(cp.NodeLabels[node])
	if cp.NodeLabels[node] == graph.NoLabel {
		size = 0
	}
	pred = -1
	if f != nil {
		if p, sz := match.SeedScan(v, cp, node, f); p >= 0 && sz < size {
			size, pred = sz, p
		}
	}
	return size, pred
}
