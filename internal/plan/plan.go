// Package plan is the shared rule-program layer: it compiles an entire NGD
// set Σ once into a reusable Program that every detector — Dect, IncDect,
// PDect, PIncDect — and the serving session consume, instead of rebuilding
// per-rule matching plans on every invocation.
//
// The Program owns three things:
//
//   - compilation: each rule's pattern resolved against the graph's symbol
//     table plus the candidate filters derived from its precondition
//     literals (moved here from internal/detect), with identical compiled
//     patterns deduplicated across Σ;
//
//   - planning: a cost-based matching-order builder (cost.go) scored with
//     the graph's maintained statistics (graph.LiveStats) — seed cost is the
//     attribute-index run or label-bucket size, extension cost the expected
//     fan-out of the anchor edge — memoized in a plan cache keyed by
//     (rule group, bound-slot signature, pruning flag) and invalidated when
//     graph churn since plan build crosses a drift threshold;
//
//   - sharing: rules whose plans begin with structurally identical step
//     prefixes are arranged into a prefix forest (share.go) so the batch
//     detector runs each shared prefix once and fans out only at the
//     divergence point, with per-rule literal schedules layered on top.
//
// A Program is cheap to build relative to detection and is never persisted:
// recovery (internal/store) restores Σ and the graph, then rebuilds the
// Program from them.
package plan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/pattern"
)

// FilterLit records that X-literal Lit was compiled into a candidate
// predicate on pattern node Node (so the literal scheduler can avoid
// re-evaluating it when the node's candidates were already filter-checked).
type FilterLit struct {
	Lit, Node int
}

// Compiled bundles a rule with its pattern compiled against a graph's
// symbols, plus the candidate filters derived from its precondition
// literals (nil when no X-literal has the single-node constant shape).
type Compiled struct {
	Rule       *core.NGD
	CP         *pattern.Compiled
	Filters    match.Filters
	FilterLits []FilterLit
}

// CompileRule resolves the rule's pattern against syms and compiles the
// rule's X-literals into per-pattern-node candidate predicates. Only
// precondition literals prune: a candidate falsifying one can never
// satisfy X, whereas a falsified consequence literal is exactly what a
// violation needs.
func CompileRule(r *core.NGD, syms *graph.Symbols) *Compiled {
	c := &Compiled{Rule: r, CP: pattern.Compile(r.Pattern, syms)}
	f := match.NewFilters(len(r.Pattern.Nodes))
	for i, l := range r.X {
		if node := f.AddLiteral(r.Pattern, syms, l.L, l.Op, l.R); node >= 0 {
			c.FilterLits = append(c.FilterLits, FilterLit{Lit: i, Node: node})
		}
	}
	if len(c.FilterLits) > 0 {
		c.Filters = f
	}
	return c
}

// Options configure a Program.
type Options struct {
	// NoPruning disables index-backed candidate pruning program-wide;
	// callers can also pass the flag per PlanFor call (the effective flag
	// is the OR of both, and plans are cached per flag).
	NoPruning bool
	// LegacyOrder orders plans by bare label frequency (the pre-Program
	// planner match.BuildPrunedPlan) instead of the cost model. It never
	// changes violation sets — the toggle exists for differential tests
	// and for measuring the cost-based ordering win.
	LegacyOrder bool
	// NoSharing disables the cross-rule shared-prefix batch enumeration;
	// detectors fall back to one independent search per rule (plans still
	// come from the cache). Differential-test toggle.
	NoSharing bool
	// ChurnThreshold is the number of graph mutations after which a cached
	// plan is considered stale and rebuilt. 0 picks an automatic threshold
	// proportional to the graph size (stats drift slowly on large graphs).
	ChurnThreshold uint64
}

// Counters is a point-in-time snapshot of a Program's plan-cache activity.
// Safe to read from any goroutine.
type Counters struct {
	Hits          int64 `json:"hits"`          // plan served from cache
	Misses        int64 `json:"misses"`        // plan built (first use of a key)
	Invalidations int64 `json:"invalidations"` // cached plan discarded for churn drift and rebuilt
	SharedRules   int64 `json:"shared_rules"`  // rules riding a shared prefix in the latest batch forest
	Groups        int64 `json:"groups"`        // distinct (pattern, filters) groups across Σ
	Rules         int64 `json:"rules"`         // rules compiled into the program
}

// Sub returns the per-interval delta c − prev for the monotone counters
// (SharedRules/Groups/Rules are level gauges and pass through unchanged).
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Hits:          c.Hits - prev.Hits,
		Misses:        c.Misses - prev.Misses,
		Invalidations: c.Invalidations - prev.Invalidations,
		SharedRules:   c.SharedRules,
		Groups:        c.Groups,
		Rules:         c.Rules,
	}
}

// group is a set of rules with identical compiled patterns and identical
// candidate filters: they share one matching plan per (bound, pruning) key.
type group struct {
	key   string
	rules []int // program rule indices, in Σ order
}

// planKey addresses one cached plan.
type planKey struct {
	group     int
	bound     string // sorted bound slots, e.g. "0,2" ("" = batch seed plan)
	noPruning bool
}

type cachedPlan struct {
	p       *match.Plan
	churnAt uint64
}

// shareKey addresses one memoized prefix forest.
type shareKey struct {
	set       *core.Set
	noPruning bool
}

type shareEntry struct {
	share *Share
	plans []*match.Plan // group plans the forest was built from (validity token)
}

// Program is the compiled, shared form of one rule set Σ over one graph's
// symbol table. Build it once (per session / per serving daemon) and hand it
// to every detector via their Options; one-shot detector calls without a
// Program build a private one internally.
//
// Plan building may construct attribute indexes on the underlying graph and
// must happen during single-threaded setup (all detectors build plans before
// their workers start); the counter snapshot (Counters) is safe to read from
// any goroutine at any time.
type Program struct {
	opts Options
	syms *graph.Symbols

	mu       sync.Mutex
	rules    []*core.NGD
	compiled []*Compiled
	byRule   map[*core.NGD]int
	groupOf  []int
	groups   []*group
	patCP    map[string]*pattern.Compiled
	cache    map[planKey]*cachedPlan
	shares   map[shareKey]*shareEntry

	hits, misses, invalidations atomic.Int64
	sharedRules                 atomic.Int64
}

// New compiles Σ into a Program against the view's symbol table. Rules
// added to the set later are absorbed lazily on first lookup.
//
// A Program identifies rules by *core.NGD pointer and accretes everything
// it is shown, so it should live exactly as long as its Σ: callers that
// re-parse their rule text (fresh rule pointers for the same rules) must
// build a fresh Program rather than feeding the new set into an old one —
// the old entries would be retained and recompiled alongside.
func New(v graph.View, rules *core.Set, opts Options) *Program {
	p := &Program{
		opts:   opts,
		syms:   v.Symbols(),
		byRule: make(map[*core.NGD]int),
		patCP:  make(map[string]*pattern.Compiled),
		cache:  make(map[planKey]*cachedPlan),
		shares: make(map[shareKey]*shareEntry),
	}
	p.mu.Lock()
	for _, r := range rules.Rules {
		p.addRuleLocked(r)
	}
	p.mu.Unlock()
	return p
}

// Options reports the program's configuration.
func (p *Program) Options() Options { return p.opts }

// NumRules reports how many rules are compiled into the program.
func (p *Program) NumRules() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.rules)
}

// Counters snapshots the plan-cache activity.
func (p *Program) Counters() Counters {
	p.mu.Lock()
	groups, rules := len(p.groups), len(p.rules)
	p.mu.Unlock()
	return Counters{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Invalidations: p.invalidations.Load(),
		SharedRules:   p.sharedRules.Load(),
		Groups:        int64(groups),
		Rules:         int64(rules),
	}
}

// addRuleLocked compiles r, dedupes its pattern against previously compiled
// ones, and files it into its (pattern, filters) group.
func (p *Program) addRuleLocked(r *core.NGD) int {
	if i, ok := p.byRule[r]; ok {
		return i
	}
	c := CompileRule(r, p.syms)
	pk := patternKey(c.CP)
	if shared, ok := p.patCP[pk]; ok {
		c.CP = shared // identical pattern: one compiled instance across Σ
	} else {
		p.patCP[pk] = c.CP
	}
	gk := pk + "|" + filterKey(c.Filters)
	gi := -1
	for j, g := range p.groups {
		if g.key == gk {
			gi = j
			break
		}
	}
	if gi < 0 {
		gi = len(p.groups)
		p.groups = append(p.groups, &group{key: gk})
	}
	i := len(p.rules)
	p.rules = append(p.rules, r)
	p.compiled = append(p.compiled, c)
	p.byRule[r] = i
	p.groupOf = append(p.groupOf, gi)
	p.groups[gi].rules = append(p.groups[gi].rules, i)
	return i
}

// CompiledFor returns the compiled form of r, absorbing it into the program
// if it was added to Σ after New.
func (p *Program) CompiledFor(r *core.NGD) *Compiled {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compiled[p.addRuleLocked(r)]
}

// PlanFor returns the compiled rule and its matching plan for the given
// pre-bound pattern slots over v, serving from the plan cache when the
// graph has not churned past the drift threshold since the plan was built.
// Rules in the same (pattern, filters) group share cache entries, so e.g.
// the per-slot pivot searchers of IncDect and the session's arriving-node
// absorption searches draw from one plan source.
func (p *Program) PlanFor(v graph.View, r *core.NGD, bound []int, noPruning bool) (*Compiled, *match.Plan) {
	noPruning = noPruning || p.opts.NoPruning
	p.mu.Lock()
	defer p.mu.Unlock()
	ri := p.addRuleLocked(r)
	c := p.compiled[ri]
	key := planKey{group: p.groupOf[ri], bound: boundSig(bound), noPruning: noPruning}
	churn := churnOf(v)
	if e, ok := p.cache[key]; ok {
		if churn-e.churnAt <= p.threshold(v) {
			p.hits.Add(1)
			return c, e.p
		}
		p.invalidations.Add(1)
	} else {
		p.misses.Add(1)
	}
	pl := p.buildLocked(v, c, bound, noPruning)
	p.cache[key] = &cachedPlan{p: pl, churnAt: churn}
	return c, pl
}

// buildLocked constructs a plan for c with the configured ordering policy.
func (p *Program) buildLocked(v graph.View, c *Compiled, bound []int, noPruning bool) *match.Plan {
	if p.opts.LegacyOrder {
		if noPruning {
			return match.BuildPlan(c.CP, bound, match.GraphSelectivity(v, c.CP))
		}
		return match.BuildPrunedPlan(v, c.CP, bound, c.Filters)
	}
	f := c.Filters
	if noPruning {
		f = nil
	}
	return costPlan(v, c.CP, bound, f)
}

// threshold resolves the churn drift threshold for the current graph size.
func (p *Program) threshold(v graph.View) uint64 {
	if p.opts.ChurnThreshold > 0 {
		return p.opts.ChurnThreshold
	}
	t := uint64(v.NumNodes()+v.NumEdges()) / 8
	if t < 1024 {
		t = 1024
	}
	return t
}

// churnOf reads the view's maintained churn counter (0 for views without
// maintained stats — their plans never invalidate).
func churnOf(v graph.View) uint64 {
	if ls, ok := v.(graph.LiveStatted); ok {
		return ls.LiveStats().Churn()
	}
	return 0
}

// ForPattern builds a one-shot, cost-ordered plan for a bare compiled
// pattern with no rule attached (no filters, no cache) — the entry point
// for pattern matching outside detection (rule discovery, the reasoner's
// witness search).
func ForPattern(v graph.View, cp *pattern.Compiled) *match.Plan {
	return costPlan(v, cp, nil, nil)
}

// boundSig canonicalizes a bound-slot set into a cache-key string. Runs on
// every PlanFor — one string allocation, stack scratch otherwise.
func boundSig(bound []int) string {
	if len(bound) == 0 {
		return ""
	}
	var sbuf [16]int
	var s []int
	if len(bound) <= len(sbuf) {
		s = sbuf[:len(bound)]
		copy(s, bound)
	} else {
		s = append([]int(nil), bound...)
	}
	sort.Ints(s)
	var bbuf [96]byte
	b := bbuf[:0]
	for i, x := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return string(b)
}

// patternKey canonicalizes a compiled pattern's structure: node labels in
// index order plus edges as (src, dst, label) triples in index order. Two
// patterns with equal keys are interchangeable for matching (variable names
// play no role at this layer).
func patternKey(cp *pattern.Compiled) string {
	var b strings.Builder
	for _, l := range cp.NodeLabels {
		fmt.Fprintf(&b, "n%d;", l)
	}
	for i, e := range cp.Src.Edges {
		fmt.Fprintf(&b, "e%d-%d-%d;", e.Src, e.Dst, cp.EdgeLabels[i])
	}
	return b.String()
}

// filterKey canonicalizes candidate filters: per node, the sorted predicate
// set. Rules with equal pattern and filter keys generate identical candidate
// streams and can share plans and prefix enumeration.
func filterKey(f match.Filters) string {
	if f == nil {
		return "-"
	}
	var b strings.Builder
	for node := range f {
		preds := make([]string, len(f[node].Preds))
		for i := range f[node].Preds {
			preds[i] = predKey(&f[node].Preds[i])
		}
		sort.Strings(preds)
		fmt.Fprintf(&b, "f%d[%s];", node, strings.Join(preds, ","))
	}
	return b.String()
}

// predKey canonicalizes one candidate predicate.
func predKey(pr *match.AttrPred) string {
	if pr.Const.IsStr {
		return fmt.Sprintf("%d#%d#s:%q", pr.Attr, pr.Op, pr.Const.S)
	}
	return fmt.Sprintf("%d#%d#n:%s", pr.Attr, pr.Op, pr.Const.N.String())
}
