// Package core implements NGDs — numeric graph dependencies — the primary
// contribution of Fan, Liu, Lu, Tian: "Catching Numeric Inconsistencies in
// Graphs" (SIGMOD 2018), §3.
//
// An NGD φ = Q[x̄](X → Y) combines a graph pattern Q (matched in data graphs
// by homomorphism) with an attribute dependency X → Y whose literals compare
// linear arithmetic expressions over the matched nodes' attributes with
// built-in predicates =, ≠, <, ≤, >, ≥.
//
// A match h(x̄) of Q in G satisfies a literal e₁ ⊗ e₂ iff every term x.A in
// it resolves (node h(x) carries A) and h(e₁) ⊗ h(e₂) holds; it satisfies
// X → Y iff h ⊨ X implies h ⊨ Y. G ⊨ φ iff every match satisfies X → Y.
// A match with h ⊨ X and h ⊭ Y is a violation (§5.1).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

// Literal is a comparison e₁ ⊗ e₂ between arithmetic expressions of Q[x̄].
type Literal struct {
	L  *expr.Expr
	Op expr.Cmp
	R  *expr.Expr
}

// Lit builds a literal.
func Lit(l *expr.Expr, op expr.Cmp, r *expr.Expr) Literal {
	return Literal{L: l, Op: op, R: r}
}

// ParseLiteral parses "e1 <= e2" style text.
func ParseLiteral(src string) (Literal, error) {
	l, op, r, err := expr.ParseComparison(src)
	if err != nil {
		return Literal{}, err
	}
	return Literal{L: l, Op: op, R: r}, nil
}

// MustLiteral is ParseLiteral for static rule tables; panics on error.
func MustLiteral(src string) Literal {
	l, err := ParseLiteral(src)
	if err != nil {
		panic(err)
	}
	return l
}

// Satisfied reports h ⊨ l: evaluation must succeed (all attributes present,
// types compatible) and the comparison must hold (§3 semantics (a)+(b)).
func (l Literal) Satisfied(b expr.Binding) bool {
	ok, err := expr.Compare(l.L, l.Op, l.R, b)
	return err == nil && ok
}

// Vars returns the distinct pattern variables mentioned by the literal.
func (l Literal) Vars() []string {
	seen := make(map[string]struct{})
	var out []string
	collect := func(e *expr.Expr) {
		e.Terms(func(v, _ string) {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		})
	}
	collect(l.L)
	collect(l.R)
	return out
}

// IsLinear reports whether both sides fit the linear grammar of §3.
func (l Literal) IsLinear() bool { return l.L.IsLinear() && l.R.IsLinear() }

func (l Literal) String() string {
	return expr.FormatComparison(l.L, l.Op, l.R)
}

// NGD is a numeric graph dependency Q[x̄](X → Y).
type NGD struct {
	Name    string
	Pattern *pattern.Pattern
	X       []Literal // precondition (possibly empty)
	Y       []Literal // consequence (possibly empty)

	diameter int
}

// New validates and constructs an NGD: the pattern must be well-formed,
// every literal variable must be a pattern variable, and every expression
// must be linear (Theorem 3 makes the non-linear extension undecidable for
// the static analyses, and the paper's NGDs are linear by definition).
func New(name string, p *pattern.Pattern, X, Y []Literal) (*NGD, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ngd %s: %w", name, err)
	}
	for _, set := range [2][]Literal{X, Y} {
		for _, l := range set {
			if !l.IsLinear() {
				return nil, fmt.Errorf("ngd %s: literal %s is not linear (degree %d)",
					name, l, max(l.L.Degree(), l.R.Degree()))
			}
			for _, v := range l.Vars() {
				if p.VarIndex(v) < 0 {
					return nil, fmt.Errorf("ngd %s: literal %s references unknown variable %q", name, l, v)
				}
			}
		}
	}
	return &NGD{Name: name, Pattern: p, X: X, Y: Y, diameter: p.Diameter()}, nil
}

// MustNew is New panicking on error (static rule tables, tests).
func MustNew(name string, p *pattern.Pattern, X, Y []Literal) *NGD {
	n, err := New(name, p, X, Y)
	if err != nil {
		panic(err)
	}
	return n
}

// Diameter returns d_Q of the NGD's pattern.
func (n *NGD) Diameter() int { return n.diameter }

// String renders the NGD compactly.
func (n *NGD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Q[%s](", n.Name, n.Pattern)
	for i, l := range n.X {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteString(" -> ")
	for i, l := range n.Y {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteString(")")
	return b.String()
}

// Match is an instantiation h(x̄) of a pattern in a graph: Match[i] is the
// node matched to pattern node i. Homomorphism semantics: entries need not
// be distinct.
type Match []graph.NodeID

// Clone returns a private copy of the match. The violation searchers emit
// matches aliasing reusable scratch bindings, valid only during the emit
// callback — any caller that retains one must Clone it first.
func (m Match) Clone() Match { return append(Match(nil), m...) }

// Binding resolves literal terms against a match of n.Pattern in g.
func (n *NGD) Binding(g graph.View, m Match) expr.Binding {
	syms := g.Symbols()
	p := n.Pattern
	return func(variable, attr string) (graph.Value, bool) {
		idx := p.VarIndex(variable)
		if idx < 0 || idx >= len(m) {
			return graph.Value{}, false
		}
		a := syms.LookupAttr(attr)
		if a < 0 {
			return graph.Value{}, false
		}
		v := g.Attr(m[idx], a)
		return v, v.Valid()
	}
}

// SatisfiesAll reports h ⊨ Z for a literal set.
func SatisfiesAll(lits []Literal, b expr.Binding) bool {
	for _, l := range lits {
		if !l.Satisfied(b) {
			return false
		}
	}
	return true
}

// Violated reports whether match m of n.Pattern violates n in g:
// h ⊨ X but h ⊭ Y.
func (n *NGD) Violated(g graph.View, m Match) bool {
	b := n.Binding(g, m)
	return SatisfiesAll(n.X, b) && !SatisfiesAll(n.Y, b)
}

// Holds reports whether match m satisfies X → Y.
func (n *NGD) Holds(g graph.View, m Match) bool { return !n.Violated(g, m) }

// Set is a set Σ of NGDs.
type Set struct {
	Rules []*NGD
}

// NewSet bundles rules into a Σ.
func NewSet(rules ...*NGD) *Set { return &Set{Rules: rules} }

// Add appends a rule.
func (s *Set) Add(rules ...*NGD) { s.Rules = append(s.Rules, rules...) }

// Len reports ‖Σ‖, the number of rules.
func (s *Set) Len() int { return len(s.Rules) }

// Diameter returns dΣ: the maximum pattern diameter across Σ (§6.1); the
// locality radius of incremental detection.
func (s *Set) Diameter() int {
	d := 0
	for _, r := range s.Rules {
		if r.diameter > d {
			d = r.diameter
		}
	}
	return d
}

// Size returns |Σ|: total pattern nodes+edges+literals, the size measure of
// the complexity analyses.
func (s *Set) Size() int {
	sz := 0
	for _, r := range s.Rules {
		sz += len(r.Pattern.Nodes) + len(r.Pattern.Edges) + len(r.X) + len(r.Y)
	}
	return sz
}

// Violation identifies a rule violation: the entities h(x̄) that violate φ.
type Violation struct {
	Rule  *NGD
	Match Match
}

// Key returns a canonical dedup key for the violation. Keys are computed on
// every reconcile/index/feed step of the serving path, so the encoding is
// hand-rolled: one stack buffer, one string allocation for typical sizes.
func (v Violation) Key() string {
	var a [96]byte
	b := append(a[:0], v.Rule.Name...)
	for _, id := range v.Match {
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(b)
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", v.Rule.Name)
	for i, id := range v.Match {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", v.Rule.Pattern.Nodes[i].Var, id)
	}
	b.WriteString(")")
	return b.String()
}
