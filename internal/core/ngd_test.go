package core

import (
	"strings"
	"testing"

	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/pattern"
)

func simplePattern() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "a")
	y := p.AddNode("y", "b")
	p.AddEdge(x, y, "e")
	return p
}

func TestNewValidation(t *testing.T) {
	// valid rule
	if _, err := New("ok", simplePattern(),
		[]Literal{MustLiteral("x.v = 1")},
		[]Literal{MustLiteral("y.v = 2")}); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	// unknown variable
	if _, err := New("bad", simplePattern(), nil,
		[]Literal{MustLiteral("z.v = 2")}); err == nil {
		t.Error("unknown variable accepted")
	}
	// non-linear literal (Theorem 3 guard at construction)
	nl := Lit(expr.Mul(expr.V("x", "v"), expr.V("y", "v")), expr.Eq, expr.C(4))
	if _, err := New("nl", simplePattern(), nil, []Literal{nl}); err == nil {
		t.Error("non-linear literal accepted")
	}
	// invalid pattern
	bad := &pattern.Pattern{}
	if _, err := New("empty", bad, nil, nil); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid rule")
		}
	}()
	MustNew("bad", simplePattern(), nil, []Literal{MustLiteral("nope.v = 1")})
}

func TestLiteralSemantics(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, "e")
	g.SetAttr(a, "v", graph.Int(5))
	g.SetAttr(b, "v", graph.Int(7))

	rule := MustNew("r", simplePattern(), nil, []Literal{MustLiteral("x.v < y.v")})
	m := Match{a, b}
	bind := rule.Binding(g, m)
	if !rule.Y[0].Satisfied(bind) {
		t.Error("5 < 7 should satisfy")
	}
	if rule.Violated(g, m) {
		t.Error("satisfied rule reported violated")
	}

	// flip the values: violation
	g.SetAttr(b, "v", graph.Int(3))
	if !rule.Violated(g, m) {
		t.Error("5 < 3 should violate")
	}
	if rule.Holds(g, m) {
		t.Error("Holds disagrees with Violated")
	}
}

func TestLiteralVars(t *testing.T) {
	l := MustLiteral("x.a + y.b - x.c <= 2 * z.d")
	vars := l.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars() = %v, want x,y,z", vars)
	}
	want := map[string]bool{"x": true, "y": true, "z": true}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}

func TestSetDiameterAndSize(t *testing.T) {
	r1 := MustNew("r1", simplePattern(), nil, []Literal{MustLiteral("x.v = 1")})
	p2 := pattern.New()
	a := p2.AddNode("a", "_")
	b := p2.AddNode("b", "_")
	c := p2.AddNode("c", "_")
	d := p2.AddNode("d", "_")
	p2.AddEdge(a, b, "e")
	p2.AddEdge(b, c, "e")
	p2.AddEdge(c, d, "e")
	r2 := MustNew("r2", p2, nil, []Literal{MustLiteral("a.v = 1")})

	set := NewSet(r1, r2)
	if set.Len() != 2 {
		t.Errorf("Len = %d", set.Len())
	}
	if set.Diameter() != 3 {
		t.Errorf("dΣ = %d, want 3", set.Diameter())
	}
	if set.Size() == 0 {
		t.Error("Size should be positive")
	}
	set.Add(r1)
	if set.Len() != 3 {
		t.Error("Add failed")
	}
}

func TestViolationKeyAndString(t *testing.T) {
	r := MustNew("myrule", simplePattern(), nil, []Literal{MustLiteral("x.v = 1")})
	v1 := Violation{Rule: r, Match: Match{1, 2}}
	v2 := Violation{Rule: r, Match: Match{1, 2}}
	v3 := Violation{Rule: r, Match: Match{2, 1}}
	if v1.Key() != v2.Key() {
		t.Error("equal violations have different keys")
	}
	if v1.Key() == v3.Key() {
		t.Error("different matches share a key")
	}
	if !strings.Contains(v1.String(), "myrule") || !strings.Contains(v1.String(), "x=1") {
		t.Errorf("String() = %q", v1.String())
	}
}

func TestRuleString(t *testing.T) {
	r := MustNew("r", simplePattern(),
		[]Literal{MustLiteral("x.v = 1")},
		[]Literal{MustLiteral("y.v >= 2"), MustLiteral("y.w <= 3")})
	s := r.String()
	for _, frag := range []string{"r:", "x.v = 1", "->", "y.v >= 2", "y.w <= 3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

func TestBindingMissing(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	rule := MustNew("r", simplePattern(), nil, []Literal{MustLiteral("x.v = 1")})
	// match shorter than pattern: binding must return not-found, not panic
	bind := rule.Binding(g, Match{a})
	if _, ok := bind("y", "v"); ok {
		t.Error("out-of-range variable resolved")
	}
	if _, ok := bind("ghost", "v"); ok {
		t.Error("unknown variable resolved")
	}
	if _, ok := bind("x", "unseen-attr"); ok {
		t.Error("unknown attribute resolved")
	}
}

func TestSatisfiesAll(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.SetAttr(a, "v", graph.Int(1))
	g.SetAttr(b, "v", graph.Int(2))
	rule := MustNew("r", simplePattern(), nil, []Literal{MustLiteral("x.v = 1")})
	bind := rule.Binding(g, Match{a, b})
	if !SatisfiesAll(nil, bind) {
		t.Error("empty literal set should be satisfied")
	}
	if !SatisfiesAll([]Literal{MustLiteral("x.v = 1"), MustLiteral("y.v = 2")}, bind) {
		t.Error("true conjunction rejected")
	}
	if SatisfiesAll([]Literal{MustLiteral("x.v = 1"), MustLiteral("y.v = 9")}, bind) {
		t.Error("false conjunction accepted")
	}
}
