package gen

import (
	"fmt"
	"math/rand"

	"ngd/internal/core"
	"ngd/internal/expr"
	"ngd/internal/pattern"
)

// RuleConfig controls synthesized rule sets Σ (the paper's §7 used 50–100
// discovered NGDs with pattern diameters 1–6, 1–4 literals, trees, DAGs and
// cyclic patterns; the archetypes below reproduce that mix against the
// invariants the generator plants).
type RuleConfig struct {
	Count       int
	MaxDiameter int // dΣ cap; chain archetypes are sized to reach it
	Seed        int64
}

// Rules synthesizes a Σ of cfg.Count NGDs for graphs generated under p.
func Rules(p Profile, cfg RuleConfig) *core.Set {
	rng := rand.New(rand.NewSource(cfg.Seed))
	set := core.NewSet()
	maxChain := cfg.MaxDiameter - 2 // chain of L relation hops has diameter L+2
	if maxChain < 1 {
		maxChain = 1
	}
	chain := 1
	for i := 0; set.Len() < cfg.Count; i++ {
		t := rng.Intn(p.EntityTypes)
		switch i % 7 {
		case 0:
			set.Add(SumRule(t, i))
		case 1:
			set.Add(OrderRule(t, i))
		case 2:
			set.Add(FlagRule(t, i))
		case 3:
			if cfg.MaxDiameter >= 3 {
				set.Add(DriftChainRule(p, chain, i))
				chain = chain%maxChain + 1
			} else {
				set.Add(SumRule(t, i))
			}
		case 4:
			if cfg.MaxDiameter >= 3 {
				set.Add(PeerCycleRule(p, i))
			} else {
				set.Add(OrderRule(t, i))
			}
		case 5:
			if cfg.MaxDiameter >= 4 {
				set.Add(SiblingRule(p, rng.Intn(p.RelLabels), i))
			} else {
				set.Add(FlagRule(t, i))
			}
		case 6:
			if cfg.MaxDiameter >= 4 {
				set.Add(FollowerRule(p, i))
			} else {
				set.Add(SumRule(t, i))
			}
		}
	}
	return set
}

// SumRule checks the sum invariant p3 = p1 + p2 on entities of type t
// (φ2-style; tree pattern, diameter 2).
func SumRule(t, id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", fmt.Sprintf("T%d", t))
	a := q.AddNode("a", "integer")
	b := q.AddNode("b", "integer")
	c := q.AddNode("c", "integer")
	q.AddEdge(x, a, "p1")
	q.AddEdge(x, b, "p2")
	q.AddEdge(x, c, "p3")
	return core.MustNew(fmt.Sprintf("sum-T%d-%d", t, id), q, nil, []core.Literal{
		core.Lit(expr.Add(expr.V("a", "val"), expr.V("b", "val")), expr.Eq, expr.V("c", "val")),
	})
}

// OrderRule checks p4 ≥ p5 on entities of type t (tree, diameter 2).
func OrderRule(t, id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", fmt.Sprintf("T%d", t))
	a := q.AddNode("a", "integer")
	b := q.AddNode("b", "integer")
	q.AddEdge(x, a, "p4")
	q.AddEdge(x, b, "p5")
	return core.MustNew(fmt.Sprintf("order-T%d-%d", t, id), q, nil, []core.Literal{
		core.Lit(expr.V("a", "val"), expr.Ge, expr.V("b", "val")),
	})
}

// FlagRule checks the conditional constant flag=1 ⇒ p2=7 (a GFD/CFD-style
// rule: constants and equality only, no arithmetic; tree, diameter 2).
func FlagRule(t, id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", fmt.Sprintf("T%d", t))
	f := q.AddNode("f", "integer")
	c := q.AddNode("c", "integer")
	q.AddEdge(x, f, "flag")
	q.AddEdge(x, c, "p2")
	return core.MustNew(fmt.Sprintf("flag-T%d-%d", t, id), q,
		[]core.Literal{core.Lit(expr.V("f", "val"), expr.Eq, expr.C(1))},
		[]core.Literal{core.Lit(expr.V("c", "val"), expr.Eq, expr.C(7))},
	)
}

// WildFlagRule is FlagRule with an untyped entity: flag=1 ⇒ p2=7 over
// *every* entity regardless of label. Without an attribute index its best
// seed is the full "integer" property population; with the index the seed
// shrinks to the nodes whose value equals 1 — the workload that makes the
// literal-based candidate pruning of §6.2 step (3) measurable.
func WildFlagRule(id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "_")
	f := q.AddNode("f", "integer")
	c := q.AddNode("c", "integer")
	q.AddEdge(x, f, "flag")
	q.AddEdge(x, c, "p2")
	return core.MustNew(fmt.Sprintf("wildflag-%d", id), q,
		[]core.Literal{core.Lit(expr.V("f", "val"), expr.Eq, expr.C(1))},
		[]core.Literal{core.Lit(expr.V("c", "val"), expr.Eq, expr.C(7))},
	)
}

// DriftChainRule bounds score drift along a backbone path of hops relation
// edges: |p0(x0) − p0(xL)| ≤ L·MaxDrift (path pattern, diameter hops+2,
// wildcard interior nodes, |·| arithmetic).
func DriftChainRule(p Profile, hops, id int) *core.NGD {
	q := pattern.New()
	prev := q.AddNode("x0", "_")
	first := prev
	for i := 1; i <= hops; i++ {
		cur := q.AddNode(fmt.Sprintf("x%d", i), "_")
		q.AddEdge(prev, cur, "next")
		prev = cur
	}
	a := q.AddNode("a", "integer")
	b := q.AddNode("b", "integer")
	q.AddEdge(first, a, "p0")
	q.AddEdge(prev, b, "p0")
	bound := int64(hops) * p.MaxDrift
	return core.MustNew(fmt.Sprintf("drift%d-%d", hops, id), q, nil, []core.Literal{
		core.Lit(expr.Abs(expr.Sub(expr.V("a", "val"), expr.V("b", "val"))), expr.Le, expr.C(bound)),
	})
}

// PeerCycleRule bounds drift across reciprocal peer edges (cyclic pattern:
// x → y → x; diameter 3 including the property legs).
func PeerCycleRule(p Profile, id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "_")
	y := q.AddNode("y", "_")
	a := q.AddNode("a", "integer")
	b := q.AddNode("b", "integer")
	q.AddEdge(x, y, "peer")
	q.AddEdge(y, x, "peer")
	q.AddEdge(x, a, "p0")
	q.AddEdge(y, b, "p0")
	return core.MustNew(fmt.Sprintf("peer-%d", id), q, nil, []core.Literal{
		core.Lit(expr.Abs(expr.Sub(expr.V("a", "val"), expr.V("b", "val"))), expr.Le, expr.C(p.MaxDrift)),
	})
}

// SiblingRule is φ3-style: two entities x, y pointing at the same hub z via
// relation R<k> have scores within 2·MaxDrift of each other; the conditional
// form exercises a multi-literal X with arithmetic on both sides
// (DAG pattern, diameter 4).
func SiblingRule(p Profile, rel, id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "_")
	y := q.AddNode("y", "_")
	z := q.AddNode("z", "_")
	a := q.AddNode("a", "integer")
	b := q.AddNode("b", "integer")
	lbl := fmt.Sprintf("R%d", rel)
	q.AddEdge(x, z, lbl)
	q.AddEdge(y, z, lbl)
	q.AddEdge(x, a, "p0")
	q.AddEdge(y, b, "p0")
	return core.MustNew(fmt.Sprintf("sibling-R%d-%d", rel, id), q,
		[]core.Literal{core.Lit(expr.V("a", "val"), expr.Lt, expr.V("b", "val"))},
		[]core.Literal{core.Lit(expr.Add(expr.V("a", "val"), expr.C(2*p.MaxDrift)), expr.Ge, expr.V("b", "val"))},
	)
}

// FollowerRule bounds the p4 gap between two followers of the same hub
// (φ4-style; DAG pattern through high-in-degree nodes, diameter 4). Its
// matches enumerate follower pairs, so hubs turn it into the straggler
// workload that exercises work-unit splitting. Violations require a p4
// outlier — exactly what an injected order error produces.
func FollowerRule(p Profile, id int) *core.NGD {
	q := pattern.New()
	x := q.AddNode("x", "_")
	y := q.AddNode("y", "_")
	z := q.AddNode("z", "_")
	a := q.AddNode("a", "integer")
	b := q.AddNode("b", "integer")
	q.AddEdge(x, z, "follows")
	q.AddEdge(y, z, "follows")
	q.AddEdge(x, a, "p4")
	q.AddEdge(y, b, "p4")
	return core.MustNew(fmt.Sprintf("follower-%d", id), q, nil, []core.Literal{
		core.Lit(expr.Abs(expr.Sub(expr.V("a", "val"), expr.V("b", "val"))), expr.Le, expr.C(p.ValueRange)),
	})
}

// EffectivenessRules builds the Exp-5 rule set: full archetype coverage of
// every entity type plus drift/peer rules, so every injected error kind is
// catchable.
func EffectivenessRules(p Profile) *core.Set {
	set := core.NewSet()
	for t := 0; t < p.EntityTypes; t++ {
		set.Add(SumRule(t, t*3), OrderRule(t, t*3+1), FlagRule(t, t*3+2))
	}
	set.Add(DriftChainRule(p, 1, p.EntityTypes*3), PeerCycleRule(p, p.EntityTypes*3+1))
	return set
}
