// Package gen generates the evaluation workloads of the paper (§7):
// synthetic attributed graphs with controllable size and label alphabets,
// plus profile generators that mimic the statistics of the three real-life
// graphs (DBpedia, YAGO2, Pokec) the paper uses — label-type counts, edge
// density and numeric-attribute structure — at a configurable scale.
//
// Substitution note (see DESIGN.md): the original datasets are large dumps
// we do not ship; the profiles reproduce the properties detection cost
// depends on (label selectivity, degree distribution, neighborhood size,
// numeric invariants with seeded error injection) so the paper's relative
// measurements remain reproducible.
//
// Every entity carries a star of numeric property nodes obeying invariants
// the companion rule generator (rules.go) turns into NGDs:
//
//	p0 = "score"; relation edges connect entities with |Δscore| ≤ MaxDrift
//	p3 = p1 + p2                (sum invariant, φ2-style)
//	p4 ≥ p5                     (order invariant)
//	flag = 1 ⇒ p2 = 7           (conditional constant, CFD/GFD-style)
//
// A fraction ErrorRate of entities is corrupted, breaking one invariant
// each; the generator returns the injected-error log as ground truth for
// the Exp-5 effectiveness study.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"ngd/internal/graph"
)

// Profile parameterizes a generated graph family.
type Profile struct {
	Name         string
	EntityTypes  int     // number of entity labels T0..T{k-1}
	RelLabels    int     // number of relation labels R0..R{m-1}
	EdgesPerNode float64 // average relation out-edges per entity
	ValueRange   int64   // scores/values drawn from [0, ValueRange)
	MaxDrift     int64   // max |score(x)−score(y)| across a relation edge
	ErrorRate    float64 // fraction of entities corrupted
	// HubFrac of the entities are hubs that attract "follows" edges
	// (HubFanIn per entity on average) — the skewed degree distribution of
	// real graphs that makes workload balancing matter (§6.3).
	HubFrac  float64
	HubFanIn float64
}

// The paper's three real-life graphs, scaled: label-type counts match §7
// (DBpedia: 200 node/160 edge types; YAGO2: 13/36; Pokec: 269/11) and
// edges-per-node ratios match the reported |E|/|V|.
var (
	DBpedia = Profile{Name: "dbpedia", EntityTypes: 200, RelLabels: 160,
		EdgesPerNode: 1.2, ValueRange: 100000, MaxDrift: 500, ErrorRate: 0.02,
		HubFrac: 0.004, HubFanIn: 0.2}
	YAGO2 = Profile{Name: "yago2", EntityTypes: 13, RelLabels: 36,
		EdgesPerNode: 2.1, ValueRange: 100000, MaxDrift: 500, ErrorRate: 0.02,
		HubFrac: 0.004, HubFanIn: 0.25}
	Pokec = Profile{Name: "pokec", EntityTypes: 269, RelLabels: 11,
		EdgesPerNode: 12.0, ValueRange: 100000, MaxDrift: 500, ErrorRate: 0.02,
		HubFrac: 0.006, HubFanIn: 0.6}
	// Synthetic follows §7: labels drawn from an alphabet of 500 symbols,
	// attribute values from 2000 integers.
	Synthetic = Profile{Name: "synthetic", EntityTypes: 400, RelLabels: 100,
		EdgesPerNode: 1.5, ValueRange: 2000, MaxDrift: 200, ErrorRate: 0.02,
		HubFrac: 0.004, HubFanIn: 0.3}
)

// ProfileByName resolves one of the four built-in profiles.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "dbpedia":
		return DBpedia, true
	case "yago2":
		return YAGO2, true
	case "pokec":
		return Pokec, true
	case "synthetic":
		return Synthetic, true
	}
	return Profile{}, false
}

// ErrorKind classifies an injected inconsistency.
type ErrorKind uint8

// Injected error kinds, one per invariant.
const (
	ErrScore ErrorKind = iota // corrupted score (breaks drift rules)
	ErrSum                    // p3 ≠ p1 + p2
	ErrOrder                  // p4 < p5
	ErrFlag                   // flag=1 but p2 ≠ 7
)

func (k ErrorKind) String() string {
	switch k {
	case ErrScore:
		return "score-drift"
	case ErrSum:
		return "sum"
	case ErrOrder:
		return "order"
	default:
		return "flag-const"
	}
}

// InjectedError records a seeded inconsistency (ground truth for Exp-5).
type InjectedError struct {
	Entity graph.NodeID
	Kind   ErrorKind
}

// Dataset is a generated graph plus its provenance.
type Dataset struct {
	G        *graph.Graph
	Profile  Profile
	Entities []graph.NodeID // entity nodes, in creation order
	Hubs     []graph.NodeID // high-in-degree entities ("follows" targets)
	// ScoreOrder lists entity indices sorted by true score — the graph's
	// topological layout (backbone and relation edges connect
	// score-adjacent entities), used to pick topologically-local regions.
	ScoreOrder []int
	Errors     []InjectedError
	// PropNode[i][p] is the property-p value node of entity i
	// (indices 0..5 = p0..p5, 6 = flag).
	PropNode [][7]graph.NodeID
}

// PropLabels are the property edge labels in PropNode order.
var PropLabels = [7]string{"p0", "p1", "p2", "p3", "p4", "p5", "flag"}

// Generate builds a graph with n entities under the profile,
// deterministically from seed.
func Generate(p Profile, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	ds := &Dataset{G: g, Profile: p}
	if n <= 0 {
		return ds
	}

	valAttr := g.Symbols().Attr("val")
	intLabel := g.Symbols().Label("integer")
	trueScore := make([]int64, n) // used for topology
	types := make([]int, n)

	addProp := func(ent graph.NodeID, label string, v int64) graph.NodeID {
		pn := g.AddNodeL(intLabel)
		g.SetAttrA(pn, valAttr, graph.Int(v))
		g.AddEdge(ent, pn, label)
		return pn
	}

	for i := 0; i < n; i++ {
		t := rng.Intn(p.EntityTypes)
		types[i] = t
		ent := g.AddNode(fmt.Sprintf("T%d", t))
		ds.Entities = append(ds.Entities, ent)

		score := rng.Int63n(p.ValueRange)
		trueScore[i] = score
		stored := score
		p1 := rng.Int63n(p.ValueRange)
		p2 := rng.Int63n(p.ValueRange)
		if rng.Float64() < 0.3 {
			p2 = 7 // make the flag-constant invariant commonly exercised
		}
		p3 := p1 + p2
		p5 := rng.Int63n(p.ValueRange)
		p4 := p5 + rng.Int63n(100)
		flag := int64(0)
		if p2 == 7 && rng.Float64() < 0.5 {
			flag = 1
		}

		// error injection: corrupt exactly one invariant per bad entity
		if rng.Float64() < p.ErrorRate {
			switch k := ErrorKind(rng.Intn(4)); k {
			case ErrScore:
				// topology still uses the true score; the stored value
				// drifts, so this entity's relation edges violate the
				// drift rules.
				stored = score + p.ValueRange + p.MaxDrift*10
				ds.Errors = append(ds.Errors, InjectedError{ent, ErrScore})
			case ErrSum:
				p3 += 1 + rng.Int63n(50)
				ds.Errors = append(ds.Errors, InjectedError{ent, ErrSum})
			case ErrOrder:
				p4 = p5 - 1 - rng.Int63n(100)
				ds.Errors = append(ds.Errors, InjectedError{ent, ErrOrder})
			case ErrFlag:
				flag = 1
				p2 = 8 + rng.Int63n(100)
				p3 = p1 + p2 // keep the sum invariant intact: single fault
				ds.Errors = append(ds.Errors, InjectedError{ent, ErrFlag})
			}
		}

		var props [7]graph.NodeID
		props[0] = addProp(ent, "p0", stored)
		props[1] = addProp(ent, "p1", p1)
		props[2] = addProp(ent, "p2", p2)
		props[3] = addProp(ent, "p3", p3)
		props[4] = addProp(ent, "p4", p4)
		props[5] = addProp(ent, "p5", p5)
		props[6] = addProp(ent, "flag", flag)
		ds.PropNode = append(ds.PropNode, props)
	}

	// Relation edges: connect entities with nearby true scores so the
	// drift invariant |Δp0| ≤ MaxDrift holds on every edge by construction
	// — except around entities whose stored score was corrupted, whose
	// incident edges become the violations the drift rules catch.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if trueScore[order[a]] != trueScore[order[b]] {
			return trueScore[order[a]] < trueScore[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make([]int, n)
	for r, i := range order {
		rank[i] = r
	}
	ds.ScoreOrder = append([]int(nil), order...)
	totalEdges := int(float64(n) * p.EdgesPerNode)
	for e := 0; e < totalEdges; e++ {
		i := rng.Intn(n)
		w := 1 + rng.Intn(8)
		r := rank[i] + w
		if rng.Intn(2) == 0 {
			r = rank[i] - w
		}
		if r < 0 || r >= n {
			continue
		}
		j := order[r]
		if j == i || abs64(trueScore[i]-trueScore[j]) > p.MaxDrift {
			continue // score gap too large (sparse score regions)
		}
		g.AddEdge(ds.Entities[i], ds.Entities[j], relLabel(p, types[i], types[j]))
	}

	// Backbone "next" edges chain score-adjacent entities, giving the rule
	// generator guaranteed-match path patterns of any length (diameter
	// sweeps up to dΣ = 6); "peer" edges are reciprocal pairs for cyclic
	// patterns. Both respect the drift bound.
	for r := 0; r+1 < n; r++ {
		i, j := order[r], order[r+1]
		if abs64(trueScore[i]-trueScore[j]) > p.MaxDrift {
			continue
		}
		if rng.Float64() < 0.8 {
			g.AddEdge(ds.Entities[i], ds.Entities[j], "next")
		}
		if rng.Float64() < 0.1 {
			g.AddEdge(ds.Entities[i], ds.Entities[j], "peer")
			g.AddEdge(ds.Entities[j], ds.Entities[i], "peer")
		}
	}

	// Hubs: a small set of entities attracts "follows" edges from across
	// the graph, giving the skewed (power-law-ish) in-degree distribution
	// of real social/knowledge graphs. Expanding a pattern through a hub's
	// adjacency is exactly the straggler work unit the paper's hybrid
	// balancing strategy targets.
	nHubs := int(float64(n) * p.HubFrac)
	if p.HubFanIn > 0 && nHubs < 1 {
		nHubs = 1
	}
	for h := 0; h < nHubs; h++ {
		ds.Hubs = append(ds.Hubs, ds.Entities[rng.Intn(n)])
	}
	if nHubs > 0 {
		followEdges := int(float64(n) * p.HubFanIn)
		for e := 0; e < followEdges; e++ {
			src := ds.Entities[rng.Intn(n)]
			// Zipf-ish hub choice: hub 0 twice as popular as hub 1, etc.
			hi := 0
			for hi < nHubs-1 && rng.Intn(2) == 1 {
				hi++
			}
			dst := ds.Hubs[hi]
			if src != dst {
				g.AddEdge(src, dst, "follows")
			}
		}
	}
	return ds
}

// RelForTypes exposes the deterministic type-pair → relation-label mapping
// so rule and update generators stay consistent with the graph.
func RelForTypes(p Profile, ti, tj int) string { return relLabel(p, ti, tj) }

func relLabel(p Profile, ti, tj int) string {
	return fmt.Sprintf("R%d", (ti*7+tj*13)%p.RelLabels)
}

// EntityType parses the type index of an entity node label "T<k>".
func EntityType(g *graph.Graph, v graph.NodeID) int {
	var t int
	fmt.Sscanf(g.LabelName(v), "T%d", &t)
	return t
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
