package gen

import (
	"testing"

	"ngd/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(YAGO2, 200, 42)
	b := Generate(YAGO2, 200, 42)
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("generation not deterministic")
	}
	if len(a.Errors) != len(b.Errors) {
		t.Fatal("error injection not deterministic")
	}
	c := Generate(YAGO2, 200, 43)
	if a.G.NumEdges() == c.G.NumEdges() && len(a.Errors) == len(c.Errors) {
		t.Log("warning: different seeds produced identical stats (possible but unlikely)")
	}
}

func TestGenerateShape(t *testing.T) {
	n := 300
	ds := Generate(Pokec, n, 7)
	// every entity carries its 7-property star
	if len(ds.Entities) != n || len(ds.PropNode) != n {
		t.Fatalf("entities = %d, props = %d", len(ds.Entities), len(ds.PropNode))
	}
	if ds.G.NumNodes() != n*8 {
		t.Errorf("nodes = %d, want %d (entity + 7 properties each)", ds.G.NumNodes(), n*8)
	}
	valAttr := ds.G.Symbols().LookupAttr("val")
	for i, props := range ds.PropNode {
		for p, pn := range props {
			if !ds.G.Attr(pn, valAttr).Valid() {
				t.Fatalf("entity %d property %d missing val", i, p)
			}
		}
	}
	// hubs exist and attract follows edges
	if len(ds.Hubs) == 0 {
		t.Fatal("no hubs")
	}
	follows := ds.G.Symbols().LookupLabel("follows")
	maxIn := 0
	for _, h := range ds.Hubs {
		in := 0
		for _, e := range ds.G.In(h) {
			if e.Label == follows {
				in++
			}
		}
		if in > maxIn {
			maxIn = in
		}
	}
	if maxIn < 10 {
		t.Errorf("hub max follows in-degree = %d, want skew", maxIn)
	}
}

// TestInvariantsHoldOnCleanEntities: for entities without injected errors,
// the planted invariants must hold exactly.
func TestInvariantsHoldOnCleanEntities(t *testing.T) {
	ds := Generate(YAGO2, 400, 9)
	bad := map[graph.NodeID]bool{}
	for _, e := range ds.Errors {
		bad[e.Entity] = true
	}
	valAttr := ds.G.Symbols().LookupAttr("val")
	val := func(pn graph.NodeID) int64 {
		v, _ := ds.G.Attr(pn, valAttr).AsInt()
		return v
	}
	for i, ent := range ds.Entities {
		if bad[ent] {
			continue
		}
		p := ds.PropNode[i]
		if val(p[1])+val(p[2]) != val(p[3]) {
			t.Fatalf("clean entity %d: p1+p2 != p3", i)
		}
		if val(p[4]) < val(p[5]) {
			t.Fatalf("clean entity %d: p4 < p5", i)
		}
		if val(p[6]) == 1 && val(p[2]) != 7 {
			t.Fatalf("clean entity %d: flag=1 but p2=%d", i, val(p[2]))
		}
	}
}

// TestDriftInvariant: every relation/backbone edge between two clean
// entities respects |Δp0| ≤ MaxDrift.
func TestDriftInvariant(t *testing.T) {
	ds := Generate(DBpedia, 400, 5)
	bad := map[graph.NodeID]bool{}
	for _, e := range ds.Errors {
		if e.Kind == ErrScore {
			bad[e.Entity] = true
		}
	}
	valAttr := ds.G.Symbols().LookupAttr("val")
	p0 := map[graph.NodeID]int64{}
	for i, ent := range ds.Entities {
		v, _ := ds.G.Attr(ds.PropNode[i][0], valAttr).AsInt()
		p0[ent] = v
	}
	next := ds.G.Symbols().LookupLabel("next")
	peer := ds.G.Symbols().LookupLabel("peer")
	for _, ent := range ds.Entities {
		if bad[ent] {
			continue
		}
		for _, h := range ds.G.Out(ent) {
			if h.Label != next && h.Label != peer {
				continue
			}
			if bad[h.To] {
				continue
			}
			d := p0[ent] - p0[h.To]
			if d < 0 {
				d = -d
			}
			if d > ds.Profile.MaxDrift {
				t.Fatalf("drift %d > %d on clean edge", d, ds.Profile.MaxDrift)
			}
		}
	}
}

func TestRulesGeneration(t *testing.T) {
	for _, diam := range []int{2, 4, 6} {
		set := Rules(YAGO2, RuleConfig{Count: 30, MaxDiameter: diam, Seed: 3})
		if set.Len() != 30 {
			t.Fatalf("rule count = %d", set.Len())
		}
		if d := set.Diameter(); d > diam {
			t.Errorf("dΣ = %d exceeds requested %d", d, diam)
		}
	}
	// dΣ=6 rule sets actually contain diameter-6 patterns
	set := Rules(YAGO2, RuleConfig{Count: 60, MaxDiameter: 6, Seed: 3})
	if set.Diameter() != 6 {
		t.Errorf("requested dΣ=6 but got %d", set.Diameter())
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"dbpedia", "yago2", "pokec", "synthetic"} {
		if p, ok := ProfileByName(name); !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) failed", name)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestEmptyGenerate(t *testing.T) {
	ds := Generate(YAGO2, 0, 1)
	if ds.G.NumNodes() != 0 || len(ds.Entities) != 0 {
		t.Error("n=0 should produce empty dataset")
	}
}
