package inc_test

import (
	"fmt"
	"testing"

	"ngd/internal/core"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/paperdata"
	"ngd/internal/par"
)

// TestPaperExample7 reproduces Example 7: G4 extended with 98 additional
// NatWest_Help_i accounts (1 following, 2 followers, status 1). Deleting
// the real account's status edge removes 99 violations — each of the 98
// clones plus the original fake are validated fake against the real
// account, and all of those violations disappear together.
func TestPaperExample7(t *testing.T) {
	g, realAcc, _ := paperdata.G4()
	rules := core.NewSet(paperdata.Phi4(1, 1, 10000))

	keys := g.Symbols().LookupLabel("keys")
	var company graph.NodeID = -1
	for _, h := range g.Out(realAcc) {
		if h.Label == keys {
			company = h.To
		}
	}
	statusLbl := g.Symbols().LookupLabel("status")

	for i := 1; i <= 98; i++ {
		acc := g.AddNode("account")
		g.SetAttr(acc, "name", graph.Str(fmt.Sprintf("NatWest_Help%d", i)))
		st := g.AddNode("boolean")
		g.SetAttr(st, "val", graph.Bool(true))
		fo := g.AddNode("integer")
		g.SetAttr(fo, "val", graph.Int(2))
		fg := g.AddNode("integer")
		g.SetAttr(fg, "val", graph.Int(1))
		g.AddEdge(acc, company, "keys")
		g.AddEdge(acc, st, "status")
		g.AddEdge(acc, fo, "follower")
		g.AddEdge(acc, fg, "following")
	}

	var statusNode graph.NodeID = -1
	for _, h := range g.Out(realAcc) {
		if h.Label == statusLbl {
			statusNode = h.To
		}
	}
	d := &graph.Delta{}
	d.Delete(realAcc, statusNode, statusLbl)

	// sequential
	res := inc.IncDect(g, rules, d, inc.Options{})
	if len(res.Minus) != 99 {
		t.Fatalf("ΔVio⁻ = %d, want 99 (Example 7)", len(res.Minus))
	}
	if len(res.Plus) != 0 {
		t.Fatalf("ΔVio⁺ = %d, want 0", len(res.Plus))
	}

	// parallel, as in the example's walkthrough (4 processors)
	pres := par.PIncDect(g, rules, d, par.Hybrid(4))
	if len(pres.Delta.Minus) != 99 || len(pres.Delta.Plus) != 0 {
		t.Fatalf("PIncDect ΔVio = +%d/-%d, want +0/-99",
			len(pres.Delta.Plus), len(pres.Delta.Minus))
	}
}
