// Package inc implements IncDect (paper §6.2): sequential, localizable,
// incremental detection of NGD violations under a batch update ΔG.
//
// IncDect incrementalizes subgraph matching by update-driven evaluation:
// every unit update (v,v') that can match a pattern edge (u,u') forms an
// *update pivot* hup(u,u') = (v,v'); violations are enumerated only by
// expanding pivots, so the work is confined to the dΣ-neighborhoods of the
// nodes touched by ΔG (localizability, §6.1).
//
// Correctness rests on the paper's observation that edge insertions only
// add violations and deletions only remove them (attributes are untouched
// by unit updates): ΔVio⁺ are the violating matches of G ⊕ ΔG that use at
// least one inserted edge, ΔVio⁻ the violating matches of G that use at
// least one deleted edge. A match using several Δ-edges is emitted exactly
// once, by its lexicographically smallest (Δ-edge, pattern-edge-slot) pivot
// (the paper's "marks the combination of multiple update pivots").
package inc

import (
	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/graph"
	"ngd/internal/match"
	"ngd/internal/plan"
)

// DeltaVio is the incremental answer ΔVio(Σ, G, ΔG) = (ΔVio⁺, ΔVio⁻).
type DeltaVio struct {
	Plus  []core.Violation // introduced by ΔG
	Minus []core.Violation // removed by ΔG
}

// Result carries the answer plus work counters (for the localizability and
// speedup analyses).
type Result struct {
	DeltaVio
	Counters match.Counters
	// Pivots is the number of update pivots expanded.
	Pivots int
}

type edgeKey struct {
	src, dst graph.NodeID
	label    graph.LabelID
}

// pivot identifies one update-driven search: Δ-edge rank `rank` pinned at
// pattern edge slot `slot`.
type pivot struct {
	rank int
	slot int
}

// Options tune IncDect.
type Options struct {
	// Limit stops after this many violations per side — ΔVio⁺ and ΔVio⁻
	// each (0 = unlimited). par.Options.Limit follows the same per-side
	// semantics, so the sequential and parallel detectors truncate alike.
	Limit int
	// NoPruning disables index-backed candidate pruning (see
	// detect.Options.NoPruning).
	NoPruning bool
	// AssumeNormalized skips the internal Normalize pass: the caller
	// guarantees ΔG already has the normalized shape (ΔG⁺ disjoint from G,
	// ΔG⁻ ⊆ G, ΔG⁺ ∩ ΔG⁻ = ∅, one op per edge). The session commit path
	// coalesces each batch once and sets this to avoid a second pass.
	AssumeNormalized bool
	// Program is the shared rule program to plan with; nil builds a
	// private one for this call. Long-lived callers (the session) pass
	// their own so the per-(rule, pivot-slot) plans are compiled once and
	// served from the cache on every subsequent batch.
	Program *plan.Program
	// Searchers reuses pre-bound searchers across calls (see
	// detect.SearcherCache); nil builds per-call searchers.
	Searchers *detect.SearcherCache
}

// IncDect computes ΔVio(Σ, G, ΔG). g is the *pre-update* graph; ΔG is
// normalized against it internally (so ΔG⁺ holds only genuinely new edges
// and ΔG⁻ only existing ones). g is not mutated: the caller decides when to
// Apply the delta.
func IncDect(g *graph.Graph, rules *core.Set, delta *graph.Delta, opts Options) *Result {
	norm := delta
	if !opts.AssumeNormalized {
		norm = delta.Normalize(g)
	}
	newView := graph.NewOverlay(g, norm)
	res := &Result{}

	ins := norm.Insertions()
	del := norm.Deletions()

	insIdx := make(map[edgeKey]int, len(ins))
	for i, op := range ins {
		insIdx[edgeKey{op.Src, op.Dst, op.Label}] = i
	}
	delIdx := make(map[edgeKey]int, len(del))
	for i, op := range del {
		delIdx[edgeKey{op.Src, op.Dst, op.Label}] = i
	}

	prog := opts.Program
	if prog == nil {
		prog = plan.New(g, rules, plan.Options{NoPruning: opts.NoPruning})
	}
	for _, r := range rules.Rules {
		c := prog.CompiledFor(r)
		// ΔVio⁺: search G ⊕ ΔG from insertion pivots.
		res.search(newView, prog, c, ins, insIdx, true, opts)
		// ΔVio⁻: search G from deletion pivots.
		res.search(g, prog, c, del, delIdx, false, opts)
	}
	return res
}

// search expands all pivots of one rule over one view.
func (res *Result) search(v graph.View, prog *plan.Program, c *plan.Compiled, ops []graph.EdgeOp,
	idx map[edgeKey]int, plus bool, opts Options) {

	if len(ops) == 0 {
		return
	}
	// Per-call scratch, built on the first pivot that matches a pattern
	// edge label — a rule whose labels don't appear in ΔG costs nothing:
	//   - one searcher per pattern-edge slot (plan and literal schedule are
	//     pivot-independent, and a Searcher is sequentially reusable across
	//     Runs; with opts.Searchers they also persist across calls, rebound
	//     to this call's view — the slice only memoizes per-slot resolution)
	//   - one scratch partial for every (pivot, slot) pair (the searcher
	//     restores it on return, so only the two seeded slots need unbinding)
	//   - one emit closure, reading the current pivot through pv
	var searchers []*detect.Searcher
	var partial []graph.NodeID
	var emit func(core.Match) bool
	var pv pivot

	for rank, op := range ops {
		for slot, pe := range c.Rule.Pattern.Edges {
			if c.CP.EdgeLabels[slot] != op.Label {
				continue
			}
			if pe.Src == pe.Dst && op.Src != op.Dst {
				continue
			}
			if partial == nil {
				searchers = make([]*detect.Searcher, len(c.Rule.Pattern.Edges))
				partial = match.NewPartial(len(c.Rule.Pattern.Nodes))
				emit = func(m core.Match) bool {
					if !smallestPivot(v, c, m, idx, pv) {
						return true
					}
					vio := core.Violation{Rule: c.Rule, Match: m.Clone()}
					if plus {
						res.Plus = append(res.Plus, vio)
						return opts.Limit == 0 || len(res.Plus) < opts.Limit
					}
					res.Minus = append(res.Minus, vio)
					return opts.Limit == 0 || len(res.Minus) < opts.Limit
				}
			}
			partial[pe.Src] = op.Src
			partial[pe.Dst] = op.Dst
			if !match.VerifyBound(v, c.CP, partial) {
				partial[pe.Src], partial[pe.Dst] = match.Unbound, match.Unbound
				continue
			}
			s := searchers[slot]
			if s == nil {
				bound := []int{pe.Src}
				if pe.Dst != pe.Src {
					bound = append(bound, pe.Dst)
				}
				_, pl := prog.PlanFor(v, c.Rule, bound, opts.NoPruning)
				if opts.Searchers != nil {
					s = opts.Searchers.Get(v, c, pl, detect.EdgeSlotKey(c.Rule, pe.Src, pe.Dst, plus))
				} else {
					s = detect.NewSearcher(v, c, pl)
				}
				searchers[slot] = s
			}
			res.Pivots++
			pv = pivot{rank: rank, slot: slot}
			stat := s.Run(partial, emit)
			partial[pe.Src], partial[pe.Dst] = match.Unbound, match.Unbound
			res.Counters.Candidates += stat.Candidates
			res.Counters.Checks += stat.Checks
			res.Counters.Matches += stat.Matches
		}
	}
}

// smallestPivot reports whether pv is the lexicographically smallest
// (Δ-edge rank, slot) pair realized by match m — the dedup rule that makes
// each update-driven violation come out exactly once.
func smallestPivot(v graph.View, c *plan.Compiled, m core.Match,
	idx map[edgeKey]int, pv pivot) bool {
	for slot, pe := range c.Rule.Pattern.Edges {
		k := edgeKey{m[pe.Src], m[pe.Dst], c.CP.EdgeLabels[slot]}
		rank, ok := idx[k]
		if !ok {
			continue
		}
		if rank < pv.rank || (rank == pv.rank && slot < pv.slot) {
			return false
		}
	}
	return true
}

// Diff computes ΔVio by brute force from two full detection runs
// (Vio(G⊕ΔG) \ Vio(G), Vio(G) \ Vio(G⊕ΔG)); the oracle the property tests
// compare IncDect against, and the "recompute from scratch" baseline.
func Diff(g *graph.Graph, rules *core.Set, delta *graph.Delta) *DeltaVio {
	norm := delta.Normalize(g)
	before := detect.Dect(g, rules, detect.Options{})
	after := detect.Dect(graph.NewOverlay(g, norm), rules, detect.Options{})
	beforeKeys := detect.VioKeySet(before.Violations)
	afterKeys := detect.VioKeySet(after.Violations)
	dv := &DeltaVio{}
	for k, vio := range afterKeys {
		if _, ok := beforeKeys[k]; !ok {
			dv.Plus = append(dv.Plus, vio)
		}
	}
	for k, vio := range beforeKeys {
		if _, ok := afterKeys[k]; !ok {
			dv.Minus = append(dv.Minus, vio)
		}
	}
	return dv
}
