package inc

import (
	"fmt"
	"sort"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/paperdata"
	"ngd/internal/pattern"
	"ngd/internal/update"
)

func keysOf(vs []core.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Key()
	}
	sort.Strings(out)
	return out
}

func sameKeys(a, b []core.Violation) bool {
	ka, kb := keysOf(a), keysOf(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestPaperExample6 reproduces Example 6: deleting the status edge of the
// real NatWest account removes the φ4 violation (ΔVio⁻), and inserting a
// parallel clean account adds no new violations.
func TestPaperExample6(t *testing.T) {
	g, realAcc, _ := paperdata.G4()
	rules := core.NewSet(paperdata.Phi4(1, 1, 10000))

	// the deleted edge (NatWest Help) -status-> (1)
	statusLbl := g.Symbols().LookupLabel("status")
	var statusNode graph.NodeID = -1
	for _, h := range g.Out(realAcc) {
		if h.Label == statusLbl {
			statusNode = h.To
		}
	}
	if statusNode < 0 {
		t.Fatal("fixture: status edge not found")
	}

	d := &graph.Delta{}
	d.Delete(realAcc, statusNode, statusLbl)

	res := IncDect(g, rules, d, Options{})
	if len(res.Plus) != 0 {
		t.Errorf("ΔVio⁺ = %v, want empty", res.Plus)
	}
	if len(res.Minus) != 1 {
		t.Fatalf("ΔVio⁻ = %v, want exactly the φ4 violation", res.Minus)
	}

	// second part of Example 6: also insert a clean sibling account
	// NatWest_Help1 (status 1, 1 following, 2 followers): still only the
	// removed violation.
	d2 := &graph.Delta{}
	d2.Delete(realAcc, statusNode, statusLbl)
	company := func() graph.NodeID {
		keys := g.Symbols().LookupLabel("keys")
		for _, h := range g.Out(realAcc) {
			if h.Label == keys {
				return h.To
			}
		}
		return -1
	}()
	acc := g.AddNode("account")
	g.SetAttr(acc, "name", graph.Str("NatWest_Help1"))
	st := g.AddNode("boolean")
	g.SetAttr(st, "val", graph.Bool(true))
	fo := g.AddNode("integer")
	g.SetAttr(fo, "val", graph.Int(2))
	fg := g.AddNode("integer")
	g.SetAttr(fg, "val", graph.Int(1))
	d2.Insert(acc, company, g.Symbols().LookupLabel("keys"))
	d2.Insert(acc, st, statusLbl)
	d2.Insert(acc, fo, g.Symbols().LookupLabel("follower"))
	d2.Insert(acc, fg, g.Symbols().LookupLabel("following"))

	res2 := IncDect(g, rules, d2, Options{})
	if len(res2.Plus) != 0 {
		t.Errorf("ΔVio⁺ after clean insert = %v, want empty", res2.Plus)
	}
	if len(res2.Minus) != 1 {
		t.Errorf("ΔVio⁻ after mixed batch = %v, want 1", res2.Minus)
	}
}

// TestInsertionCreatesViolation: inserting the edges of a fresh fake
// account referencing the same company must surface a new φ4 violation.
func TestInsertionCreatesViolation(t *testing.T) {
	g, realAcc, _ := paperdata.G4()
	rules := core.NewSet(paperdata.Phi4(1, 1, 10000))

	keys := g.Symbols().LookupLabel("keys")
	var company graph.NodeID = -1
	for _, h := range g.Out(realAcc) {
		if h.Label == keys {
			company = h.To
		}
	}

	acc := g.AddNode("account")
	st := g.AddNode("boolean")
	g.SetAttr(st, "val", graph.Bool(true)) // claims real: violates Y (s2=0)
	fo := g.AddNode("integer")
	g.SetAttr(fo, "val", graph.Int(3))
	fg := g.AddNode("integer")
	g.SetAttr(fg, "val", graph.Int(4))

	d := &graph.Delta{}
	d.Insert(acc, company, keys)
	d.Insert(acc, st, g.Symbols().LookupLabel("status"))
	d.Insert(acc, fo, g.Symbols().LookupLabel("follower"))
	d.Insert(acc, fg, g.Symbols().LookupLabel("following"))

	res := IncDect(g, rules, d, Options{})
	if len(res.Minus) != 0 {
		t.Errorf("ΔVio⁻ = %v, want empty", res.Minus)
	}
	if len(res.Plus) != 1 {
		t.Fatalf("ΔVio⁺ = %v, want 1 new violation", res.Plus)
	}
	// the new violation must equal the brute-force diff
	diff := Diff(g, rules, d)
	if !sameKeys(res.Plus, diff.Plus) || !sameKeys(res.Minus, diff.Minus) {
		t.Error("IncDect disagrees with batch diff")
	}
}

// TestNoDuplicateAcrossPivots: a match containing several Δ-edges must be
// reported exactly once.
func TestNoDuplicateAcrossPivots(t *testing.T) {
	g := graph.New()
	x := g.AddNode("A")
	y := g.AddNode("B")
	z := g.AddNode("C")
	a := g.AddNode("V")
	g.SetAttr(a, "val", graph.Int(1))
	g.AddEdge(z, a, "p")

	// rule: A -e-> B -e-> C with C -p-> a requires a.val = 0
	q := pattern.New()
	px := q.AddNode("x", "A")
	py := q.AddNode("y", "B")
	pz := q.AddNode("z", "C")
	pa := q.AddNode("a", "V")
	q.AddEdge(px, py, "e")
	q.AddEdge(py, pz, "e")
	q.AddEdge(pz, pa, "p")
	rules := core.NewSet(core.MustNew("r", q, nil, []core.Literal{core.MustLiteral("a.val = 0")}))

	// both pattern edges arrive in the same batch: one match, two pivots
	d := &graph.Delta{}
	e := g.Symbols().Label("e")
	d.Insert(x, y, e)
	d.Insert(y, z, e)

	res := IncDect(g, rules, d, Options{})
	if len(res.Plus) != 1 {
		t.Fatalf("ΔVio⁺ = %d violations, want exactly 1 (no duplicates)", len(res.Plus))
	}
	diff := Diff(g, rules, d)
	if !sameKeys(res.Plus, diff.Plus) {
		t.Error("IncDect disagrees with diff")
	}
}

// IncDect/Diff equivalence on generated graphs — the central correctness
// property of the incremental algorithm (paper §6.2 correctness argument).
func TestIncDectEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	profiles := []gen.Profile{gen.YAGO2, gen.Pokec, gen.Synthetic}
	for trial := 0; trial < 6; trial++ {
		p := profiles[trial%len(profiles)]
		seed := int64(1000 + trial)
		ds := gen.Generate(p, 120, seed)
		rules := gen.Rules(p, gen.RuleConfig{Count: 12, MaxDiameter: 5, Seed: seed})
		d := update.Random(ds, update.Config{
			Size:  update.SizeFor(ds.G, 0.15),
			Gamma: 1,
			Seed:  seed * 3,
		})
		t.Run(fmt.Sprintf("%s-%d", p.Name, trial), func(t *testing.T) {
			incRes := IncDect(ds.G, rules, d, Options{})
			diff := Diff(ds.G, rules, d)
			if !sameKeys(incRes.Plus, diff.Plus) {
				t.Errorf("ΔVio⁺ mismatch: inc=%d diff=%d\ninc: %v\ndiff: %v",
					len(incRes.Plus), len(diff.Plus), keysOf(incRes.Plus), keysOf(diff.Plus))
			}
			if !sameKeys(incRes.Minus, diff.Minus) {
				t.Errorf("ΔVio⁻ mismatch: inc=%d diff=%d",
					len(incRes.Minus), len(diff.Minus))
			}
		})
	}
}

// TestGammaInsensitivity pins the paper's Exp-1(e): incremental results stay
// correct across insert:delete ratios.
func TestGammaInsensitivity(t *testing.T) {
	for _, gamma := range []float64{0.25, 1, 4} {
		ds := gen.Generate(gen.YAGO2, 100, 5)
		rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 9, MaxDiameter: 4, Seed: 5})
		d := update.Random(ds, update.Config{Size: 60, Gamma: gamma, Seed: 11})
		incRes := IncDect(ds.G, rules, d, Options{})
		diff := Diff(ds.G, rules, d)
		if !sameKeys(incRes.Plus, diff.Plus) || !sameKeys(incRes.Minus, diff.Minus) {
			t.Errorf("γ=%v: IncDect != diff", gamma)
		}
	}
}

// TestLocalizability: the work IncDect performs must not grow with graph
// size when ΔG and its neighborhood stay fixed (paper §6.1/§6.2: cost is
// determined by |Σ| and the dΣ-neighbors of ΔG, not |G|).
func TestLocalizability(t *testing.T) {
	mkDelta := func(ds *gen.Dataset) *graph.Delta {
		// one relation edge between entities 0 and 1 (constant-size ΔG in a
		// constant-radius region regardless of |G|)
		g := ds.G
		t0 := gen.EntityType(g, ds.Entities[0])
		t1 := gen.EntityType(g, ds.Entities[1])
		lbl := g.Symbols().Label(gen.RelForTypes(ds.Profile, t0, t1))
		d := &graph.Delta{}
		d.Insert(ds.Entities[0], ds.Entities[1], lbl)
		return d
	}
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 3})

	dsSmall := gen.Generate(gen.YAGO2, 200, 3)
	resSmall := IncDect(dsSmall.G, rules, mkDelta(dsSmall), Options{})

	dsBig := gen.Generate(gen.YAGO2, 2000, 3)
	resBig := IncDect(dsBig.G, rules, mkDelta(dsBig), Options{})

	small := resSmall.Counters.Candidates + resSmall.Counters.Checks
	big := resBig.Counters.Candidates + resBig.Counters.Checks
	// allow slack for density differences, but reject linear growth (10×)
	if big > small*4+200 {
		t.Errorf("incremental work grew with |G|: small=%d big=%d", small, big)
	}
	_ = resBig
}

// TestBatchUnaffectedByNoOpDelta: an empty ΔG yields empty ΔVio.
func TestEmptyDelta(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 50, 1)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 6, MaxDiameter: 3, Seed: 1})
	res := IncDect(ds.G, rules, &graph.Delta{}, Options{})
	if len(res.Plus) != 0 || len(res.Minus) != 0 {
		t.Errorf("empty delta produced changes: %+v", res.DeltaVio)
	}
}

// TestDeleteThenReinsert: net no-op batches produce no changes after
// normalization.
func TestDeleteThenReinsert(t *testing.T) {
	ds := gen.Generate(gen.YAGO2, 80, 9)
	rules := gen.Rules(gen.YAGO2, gen.RuleConfig{Count: 6, MaxDiameter: 3, Seed: 9})
	g := ds.G
	// pick an existing edge
	var u graph.NodeID = -1
	var h graph.Half
	for v := 0; v < g.NumNodes(); v++ {
		if len(g.Out(graph.NodeID(v))) > 0 {
			u = graph.NodeID(v)
			h = g.Out(u)[0]
			break
		}
	}
	if u < 0 {
		t.Fatal("no edges")
	}
	d := &graph.Delta{}
	d.Delete(u, h.To, h.Label)
	d.Insert(u, h.To, h.Label)
	res := IncDect(g, rules, d, Options{})
	if len(res.Plus) != 0 || len(res.Minus) != 0 {
		t.Errorf("net no-op delta produced changes: %+v", res.DeltaVio)
	}
}

// TestVioUpdateConsistency: Vio(G) ⊕ ΔVio == Vio(G ⊕ ΔG) as key sets.
func TestVioUpdateConsistency(t *testing.T) {
	ds := gen.Generate(gen.Pokec, 100, 21)
	rules := gen.Rules(gen.Pokec, gen.RuleConfig{Count: 10, MaxDiameter: 4, Seed: 21})
	d := update.Random(ds, update.Config{Size: 40, Gamma: 1, Seed: 22})

	before := detect.Dect(ds.G, rules, detect.Options{})
	inc := IncDect(ds.G, rules, d, Options{})

	// apply ΔVio to the before-set
	vio := detect.VioKeySet(before.Violations)
	for _, v := range inc.Plus {
		vio[v.Key()] = v
	}
	for _, v := range inc.Minus {
		delete(vio, v.Key())
	}

	norm := d.Normalize(ds.G)
	after := detect.Dect(graph.NewOverlay(ds.G, norm), rules, detect.Options{})
	want := detect.VioKeySet(after.Violations)

	if len(vio) != len(want) {
		t.Fatalf("Vio⊕ΔVio has %d entries, recompute has %d", len(vio), len(want))
	}
	for k := range want {
		if _, ok := vio[k]; !ok {
			t.Fatalf("missing violation %s after incremental update", k)
		}
	}
}
