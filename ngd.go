// Package ngd is a Go implementation of numeric graph dependencies (NGDs)
// from Fan, Liu, Lu, Tian: "Catching Numeric Inconsistencies in Graphs"
// (SIGMOD 2018) — graph data-quality rules that combine a graph pattern,
// matched by homomorphism, with an attribute dependency X → Y over linear
// arithmetic expressions and comparison predicates.
//
// The package provides:
//
//   - attributed directed graphs and batch updates ΔG (edge insertions and
//     deletions);
//   - NGD rules, parsed from a text DSL or built programmatically;
//   - batch violation detection (Dect), parallel batch detection (PDect),
//     incremental detection (IncDect) and parallel scalable incremental
//     detection with hybrid workload balancing (PIncDect);
//   - a shared rule-program layer (NewProgram): Σ compiled once, cost-based
//     matching plans cached with churn-driven invalidation, and overlapping
//     rules merged into shared matching prefixes, amortizing the planning
//     preamble across detector invocations;
//   - continuous detection sessions that commit ΔG in place and keep the
//     violation store live across batches (NewSession);
//   - a serving layer over sessions (Serve): snapshot-isolated concurrent
//     reads, coalescing asynchronous update ingestion, and an HTTP API
//     (the ngdserve daemon);
//   - the static analyses: satisfiability, strong satisfiability and
//     implication, with exact integer arithmetic;
//   - workload generators reproducing the paper's evaluation setup.
//
// Quick start:
//
//	g := ngd.NewGraph()
//	v := g.AddNode("place")
//	g.SetAttr(v, "population", ngd.Int(160000))
//	...
//	rules, _ := ngd.ParseRules(strings.NewReader(ruleText))
//	res := ngd.Detect(g, rules)
//	for _, vio := range res.Violations { fmt.Println(vio) }
package ngd

import (
	"io"

	"ngd/internal/analyze"
	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/dsl"
	"ngd/internal/expr"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/par"
	"ngd/internal/partition"
	"ngd/internal/pattern"
	"ngd/internal/plan"
	"ngd/internal/reason"
	"ngd/internal/repair"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/store"
)

// Re-exported core types. The aliases expose the full method sets of the
// internal implementations as the public API.
type (
	// Graph is a directed graph with labeled nodes/edges and per-node
	// attribute tuples (paper §2).
	Graph = graph.Graph
	// View is a read-only graph view (a *Graph, or a ΔG overlay).
	View = graph.View
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Value is an attribute value (int, string, bool, float).
	Value = graph.Value
	// Delta is a batch update ΔG of edge insertions/deletions (§5.2).
	Delta = graph.Delta
	// Overlay is the G ⊕ ΔG view of a graph under an unapplied delta.
	Overlay = graph.Overlay
	// Pattern is a graph pattern Q[x̄] with wildcard support (§2).
	Pattern = pattern.Pattern
	// Rule is an NGD Q[x̄](X → Y) (§3).
	Rule = core.NGD
	// RuleSet is a set Σ of NGDs.
	RuleSet = core.Set
	// Literal is a comparison e₁ ⊗ e₂ between arithmetic expressions.
	Literal = core.Literal
	// Expr is a linear arithmetic expression over terms x.A.
	Expr = expr.Expr
	// Match is an instantiation h(x̄) of a pattern in a graph.
	Match = core.Match
	// Violation is a match violating a rule: h ⊨ X but h ⊭ Y (§5.1).
	Violation = core.Violation
	// DeltaVio is the incremental answer (ΔVio⁺, ΔVio⁻) (§5.2).
	DeltaVio = inc.DeltaVio
	// ParallelOptions configure PDect / PIncDect (§6.3): worker count,
	// the latency parameter C, balancing interval, and the hybrid
	// strategy toggles.
	ParallelOptions = par.Options
	// ParallelMetrics report makespan (simulated cost units under the
	// virtual oracle, accumulated work cost under the goroutine shard
	// runtime), total work, splits and balancing moves.
	ParallelMetrics = par.Metrics
	// Session is a continuous detection session: it owns a graph, commits
	// batch updates in place, and keeps the violation store Vio(Σ, G) live
	// by reconciling incremental answers (internal/session).
	Session = session.Session
	// SessionOptions configure a session (parallel routing, pruning).
	SessionOptions = session.Options
	// BatchStats report what one session commit did (coalescing, commit
	// effects, ΔVio sizes, detection cost, store size).
	BatchStats = session.BatchStats
	// Snapshot is an immutable, consistent view of a session at one commit
	// epoch: the violation store sorted by canonical key. Snapshots are
	// copy-on-write, so concurrent readers are never blocked by a commit.
	Snapshot = session.Snapshot
	// Server is the concurrency-safe serving layer over a session: a
	// single writer coalescing queued updates into commits, many readers
	// on atomically published snapshots, and an HTTP API (internal/serve;
	// cmd/ngdserve is the daemon around it).
	Server = serve.Server
	// ServeOptions configure a Server (ingest queue depth, external node
	// ids).
	ServeOptions = serve.Options
	// ServerStats summarize a running Server (epoch, store size, commit
	// and coalescing counters).
	ServerStats = serve.Stats
	// UpdateOp is the serving layer's wire-format update operation (edge
	// insert/delete, or a new node arriving with attributes).
	UpdateOp = serve.UpdateOp
	// Ack is the handle Server.Enqueue returns: Done() is closed when the
	// ops' batch has committed, and Epoch() then reports the exact commit
	// epoch that contained it (recorded at commit time, never a later one).
	Ack = serve.Ack
	// CommitEvent is one commit's reconciled violation delta — the actual
	// ΔVio⁺/ΔVio⁻ sets, carried on BatchStats.Event and streamed to feed
	// subscribers.
	CommitEvent = session.CommitEvent
	// FeedEvent is the change feed's wire payload: one committed epoch's
	// added violations and removed keys (GET /feed on the HTTP API).
	FeedEvent = serve.FeedEvent
	// FeedSub is a live change-feed subscription (Server.Subscribe):
	// events arrive on C in epoch order; when C closes, Err says whether
	// the subscriber was evicted for falling behind.
	FeedSub = serve.FeedSub
	// RepairResult is the ranked candidate-fix list the repair engine
	// produces for one stored violation (internal/repair): solver-backed
	// minimal attribute reassignments and match-breaking edge deletions,
	// each previewed on an overlay for cross-violation clearance.
	RepairResult = repair.Result
	// RepairFix is one candidate fix with its previewed consequences
	// (cleared and introduced violation keys, perturbation, rank score).
	RepairFix = repair.Fix
	// RepairOptions configure fix enumeration (ranked-list cap, solver
	// budget and deadline).
	RepairOptions = repair.Options
	// RepairApplied reports an applied fix: the commit epoch it landed in
	// and the store size after (Server.ApplyRepair, POST /repair/apply).
	RepairApplied = serve.ApplyResult
	// Partition assigns graph nodes to fragments for the parallel engine;
	// a maintained Partition is kept current across session commits with
	// incremental Extend/Refine passes instead of per-batch rebuilds.
	Partition = partition.Partition
	// Program is the shared rule-program layer (internal/plan): Σ compiled
	// once, cost-based matching plans cached with churn invalidation, and
	// overlapping rules arranged into shared matching prefixes. Sessions
	// build one automatically; hand-built Programs (NewProgram) amortize
	// planning across repeated one-shot detector calls.
	Program = plan.Program
	// PlanOptions configure a Program (ordering policy, sharing, churn
	// threshold).
	PlanOptions = plan.Options
	// PlanCounters snapshot a Program's plan-cache activity (hits, misses,
	// invalidations, shared-prefix rules); also surfaced per batch in
	// BatchStats and cumulatively under the server's /stats endpoint.
	PlanCounters = plan.Counters
	// Store makes a serving session durable: a versioned binary snapshot
	// of the whole session state plus a CRC-checked write-ahead log of
	// update batches, with crash recovery proportional to the WAL suffix
	// (internal/store; cmd/ngdserve -data wires it into the daemon).
	Store = store.Store
	// StoreOptions configure a Store (checkpoint cadence, WAL fsync
	// policy, the session options recovery restores with).
	StoreOptions = store.Options
	// StoreStats summarize a Store (sequence numbers, batches and bytes
	// logged, checkpoints completed).
	StoreStats = store.Stats
	// Recovered reports what Open reconstructed from a data directory: the
	// restored session, rules, external-id map, and the recovery costs
	// (snapshot load vs. WAL replay).
	Recovered = store.Recovered
)

// Value constructors.
var (
	// Int wraps an integer attribute value.
	Int = graph.Int
	// Str wraps a string attribute value.
	Str = graph.Str
	// Bool wraps a boolean attribute value (0/1 in arithmetic).
	Bool = graph.Bool
	// Float wraps a float attribute value (must be integral to enter
	// arithmetic).
	Float = graph.Float
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// NewPattern returns an empty pattern; add nodes with AddNode(var, label)
// ("_" is the wildcard) and edges with AddEdge.
func NewPattern() *Pattern { return pattern.New() }

// NewRule validates and builds an NGD. Every literal must be linear
// (Theorem 3) and reference pattern variables only.
func NewRule(name string, q *Pattern, when, then []Literal) (*Rule, error) {
	return core.New(name, q, when, then)
}

// MustRule is NewRule panicking on error.
func MustRule(name string, q *Pattern, when, then []Literal) *Rule {
	return core.MustNew(name, q, when, then)
}

// NewRuleSet bundles rules into a Σ.
func NewRuleSet(rules ...*Rule) *RuleSet { return core.NewSet(rules...) }

// ParseLiteral parses "e1 <= e2" style text into a literal.
func ParseLiteral(src string) (Literal, error) { return core.ParseLiteral(src) }

// MustLiteral is ParseLiteral panicking on error.
func MustLiteral(src string) Literal { return core.MustLiteral(src) }

// ParseExpr parses an arithmetic expression ("a*(x.f - y.f) + 3").
func ParseExpr(src string) (*Expr, error) { return expr.Parse(src) }

// ParseRules reads the rule-file DSL (see package documentation of
// internal/dsl for the grammar).
func ParseRules(r io.Reader) (*RuleSet, error) { return dsl.ParseRules(r) }

// ParseRulesLocated additionally returns each rule's source line (by name)
// for analysis diagnostics.
func ParseRulesLocated(r io.Reader) (*RuleSet, map[string]int, error) {
	return dsl.ParseRulesLocated(r)
}

// FormatRules renders a rule set in the DSL (re-parseable).
func FormatRules(set *RuleSet) string { return dsl.FormatRules(set) }

// LoadGraph reads the line-oriented graph format; it returns the graph and
// the textual-id → NodeID mapping.
func LoadGraph(r io.Reader) (*Graph, map[string]NodeID, error) { return dsl.LoadGraph(r) }

// WriteGraph renders a graph in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return dsl.WriteGraph(w, g) }

// LoadDelta reads an update file against g (new nodes are added to g).
func LoadDelta(r io.Reader, g *Graph, ids map[string]NodeID) (*Delta, error) {
	return dsl.LoadDelta(r, g, ids)
}

// Result of a batch detection run.
type Result struct {
	// Violations is Vio(Σ, G): every match violating some rule.
	Violations []Violation
}

// Detect computes Vio(Σ, G) with the sequential batch algorithm (Dect).
func Detect(g View, rules *RuleSet) *Result {
	r := detect.Dect(g, rules, detect.Options{})
	return &Result{Violations: r.Violations}
}

// NewProgram compiles Σ once into a shared, reusable rule program over g's
// symbol table. Pass it to DetectWith to amortize compilation, cost-based
// planning and cross-rule prefix sharing across repeated detection runs;
// sessions (NewSession/Serve) build and reuse one internally, so serving
// batches never pay the per-call planning preamble.
func NewProgram(g View, rules *RuleSet, opts PlanOptions) *Program {
	return plan.New(g, rules, opts)
}

// DetectWith is Detect planning through a shared Program (limit 0 =
// unlimited).
func DetectWith(g View, rules *RuleSet, prog *Program, limit int) *Result {
	r := detect.Dect(g, rules, detect.Options{Limit: limit, Program: prog})
	return &Result{Violations: r.Violations}
}

// DetectLimit is Detect stopping after limit violations.
func DetectLimit(g View, rules *RuleSet, limit int) *Result {
	r := detect.Dect(g, rules, detect.Options{Limit: limit})
	return &Result{Violations: r.Violations}
}

// Validate decides G ⊨ Σ (the validation problem; coNP-complete,
// Corollary 4 — this implementation enumerates matches with literal-based
// pruning).
func Validate(g View, rules *RuleSet) bool { return detect.Validate(g, rules) }

// IncDetect computes ΔVio(Σ, G, ΔG) incrementally with the localizable
// algorithm IncDect (§6.2). g is the pre-update graph and is not mutated;
// apply the delta afterwards with delta.Apply(g) if desired.
func IncDetect(g *Graph, rules *RuleSet, delta *Delta) *DeltaVio {
	r := inc.IncDect(g, rules, delta, inc.Options{})
	return &r.DeltaVio
}

// PDetect computes Vio(Σ, G) with the parallel batch algorithm.
func PDetect(g View, rules *RuleSet, opts ParallelOptions) (*Result, ParallelMetrics) {
	r := par.PDect(g, rules, opts)
	return &Result{Violations: r.Violations}, r.Metrics
}

// PIncDetect computes ΔVio(Σ, G, ΔG) with PIncDect, the parallel scalable
// incremental algorithm with hybrid workload balancing (§6.3).
func PIncDetect(g *Graph, rules *RuleSet, delta *Delta, opts ParallelOptions) (*DeltaVio, ParallelMetrics) {
	r := par.PIncDect(g, rules, delta, opts)
	return &r.Delta, r.Metrics
}

// Parallel returns the default hybrid parallel configuration for p
// workers, running on the goroutine shard runtime.
func Parallel(p int) ParallelOptions { return par.Hybrid(p) }

// Oracle returns the hybrid configuration pinned to the deterministic
// virtual-time driver — the machine-independent reference used by the
// differential tests and the paper-figure benchmarks.
func Oracle(p int) ParallelOptions { return par.Oracle(p) }

// NewSession opens a continuous detection session over g: the store seeds
// from a full batch run, then each Commit(delta) coalesces ΔG, detects
// incrementally, commits the update into g in place, and reconciles the
// live store — which always equals Detect(g, rules).Violations.
func NewSession(g *Graph, rules *RuleSet, opts SessionOptions) *Session {
	return session.New(g, rules, opts)
}

// Serve starts the serving layer over a session: a writer goroutine that
// owns the session, coalesces queued updates into single commits, and
// atomically publishes immutable store snapshots (with secondary indexes
// by rule and by node) for lock-free concurrent reads. Wire it to HTTP
// with Server.Handler, push updates with Server.Enqueue, subscribe to the
// violation change feed with Server.Subscribe, read with Server.Snapshot,
// stop with Server.Close. The session (and its graph) must not be used
// directly afterwards.
func Serve(sess *Session, opts ServeOptions) *Server {
	return serve.New(sess, opts)
}

// Open opens (creating if necessary) a durable data directory. When it
// holds a recoverable state, the returned Recovered carries a session
// restored to exactly the pre-crash state: newest snapshot loaded, WAL
// suffix replayed (a torn final record is truncated away). On a fresh
// directory Recovered is nil: open a session with NewSession and attach it
// with Store.Bootstrap, which snapshots the seeded state and starts
// write-ahead logging every subsequent commit. Wire the store into the
// serving layer via ServeOptions.OnNewNode = Store.NoteName and a
// ServeOptions.AfterCommit callback invoking Store.MaybeCheckpoint.
func Open(dir string, opts StoreOptions) (*Store, *Recovered, error) {
	return store.Open(dir, opts)
}

// Checkpoint synchronously captures the attached session's current state
// into a new durable snapshot and prunes the WAL segments it covers. Call
// it from the goroutine owning the session (or after Server.Close).
func Checkpoint(st *Store) error { return st.Checkpoint() }

// Verdict is the three-valued answer of the static analyses.
type Verdict = reason.Verdict

// Verdict values.
const (
	// No: unsatisfiable / not implied.
	No = reason.No
	// Yes: satisfiable / implied.
	Yes = reason.Yes
	// Unknown: the analysis budget was exhausted.
	Unknown = reason.Unknown
)

// Satisfiable decides whether Σ has a model in which some pattern matches
// (Σp2-complete, Theorem 1; non-linear rules are rejected per Theorem 3).
func Satisfiable(rules *RuleSet) (Verdict, error) {
	return reason.Satisfiable(rules, reason.Options{})
}

// StronglySatisfiable decides whether Σ has a model in which every pattern
// matches.
func StronglySatisfiable(rules *RuleSet) (Verdict, error) {
	return reason.StronglySatisfiable(rules, reason.Options{})
}

// Implies decides Σ ⊨ φ (Πp2-complete, Theorem 1).
func Implies(rules *RuleSet, phi *Rule) (Verdict, error) {
	return reason.Implies(rules, phi, reason.Options{})
}

// AnalysisOptions configure the Σ admission analysis (budgets, wall-clock
// timeout, minimization toggles, rule source lines for diagnostics).
type AnalysisOptions = analyze.Options

// AnalysisReport is the structured result of the Σ admission analysis:
// whole-set and per-rule satisfiability, the minimal unsat core when Σ is
// unsatisfiable, implication flags and the minimization drop list. It is
// the JSON document GET /rules/analysis serves.
type AnalysisReport = analyze.Report

// RuleAnalysis is one rule's triage entry in an AnalysisReport.
type RuleAnalysis = analyze.RuleReport

// UnsatCore is a minimal conflicting subset of an unsatisfiable Σ, with
// its literals rendered for diagnostics.
type UnsatCore = analyze.UnsatCore

// AnalyzeMode selects how a caller acts on an AnalysisReport (off, warn,
// strict); parse flag values with ParseAnalyzeMode.
type AnalyzeMode = analyze.Mode

// Analyze modes.
const (
	AnalyzeOff    = analyze.ModeOff
	AnalyzeWarn   = analyze.ModeWarn
	AnalyzeStrict = analyze.ModeStrict
)

// ParseAnalyzeMode parses "off", "warn" or "strict".
func ParseAnalyzeMode(s string) (AnalyzeMode, error) { return analyze.ParseMode(s) }

// AnalyzeRules runs the full Σ admission analysis: satisfiability triage,
// unsat-core extraction and implication-based minimization.
func AnalyzeRules(rules *RuleSet, opts AnalysisOptions) *AnalysisReport {
	return analyze.Analyze(rules, opts)
}

// MinimizeRules drops exactly the unviolable rules of Σ (∅ ⊨ φ) — the
// Vio-preserving fragment of minimization: detection output is identical
// on every graph. It returns the minimized set and the dropped names.
func MinimizeRules(rules *RuleSet) (*RuleSet, []string) {
	return analyze.MinimizeUnviolable(rules, reason.Options{})
}

// RulesSignature is the canonical Σ identity (sha256 over the DSL
// rendering) that analysis reports and the serving layer's cache key on.
func RulesSignature(rules *RuleSet) string { return analyze.Signature(rules) }
