module ngd

go 1.24
