// Benchmarks regenerating the paper's evaluation (one per table/figure) at
// test scale. cmd/ngdbench runs the full parameter sweeps and prints the
// series; these testing.B entries give per-configuration timings and report
// the deterministic cost metric each figure is plotted from
// (cost_units/op for sequential work, makespan_units for parallel runs).
package ngd_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/par"
	"ngd/internal/pattern"
	"ngd/internal/plan"
	"ngd/internal/reason"
	"ngd/internal/session"
	"ngd/internal/update"
)

const (
	benchEntities = 600
	benchRules    = 24
)

type benchWorkload struct {
	ds    *gen.Dataset
	rules *core.Set
	delta *graph.Delta
	after *graph.Overlay
}

// sim pins an options value to the deterministic virtual-time driver: the
// fig4 benchmarks report simulated makespan_units, which must stay
// machine-independent now that the engine defaults to the wall-clock shard
// runtime. BenchmarkShardScaling is the wall-clock counterpart.
func sim(o par.Options) par.Options {
	o.Virtual = true
	return o
}

func mkBench(p gen.Profile, deltaFrac float64, seed int64) benchWorkload {
	ds := gen.Generate(p, benchEntities, seed)
	rules := gen.Rules(p, gen.RuleConfig{Count: benchRules, MaxDiameter: 5, Seed: seed})
	var d *graph.Delta
	var after *graph.Overlay
	if deltaFrac > 0 {
		d = update.Random(ds, update.Config{Size: update.SizeFor(ds.G, deltaFrac), Gamma: 1, Seed: seed * 31})
		after = graph.NewOverlay(ds.G, d.Normalize(ds.G))
	}
	return benchWorkload{ds: ds, rules: rules, delta: d, after: after}
}

// benchVaryDelta is the Exp-1 shape (Figures 4a–4d): batch recompute vs
// incremental at a given ΔG fraction.
func benchVaryDelta(b *testing.B, p gen.Profile, frac float64) {
	w := mkBench(p, frac, 1)
	b.Run("Dect", func(b *testing.B) {
		b.ReportAllocs()
		var work float64
		for i := 0; i < b.N; i++ {
			r := detect.Dect(w.after, w.rules, detect.Options{})
			work = float64(r.Counters.Candidates + r.Counters.Checks)
		}
		b.ReportMetric(work, "cost_units")
	})
	b.Run("IncDect", func(b *testing.B) {
		b.ReportAllocs()
		var work float64
		for i := 0; i < b.N; i++ {
			r := inc.IncDect(w.ds.G, w.rules, w.delta, inc.Options{})
			work = float64(r.Counters.Candidates + r.Counters.Checks)
		}
		b.ReportMetric(work, "cost_units")
	})
	b.Run("PDect", func(b *testing.B) {
		b.ReportAllocs()
		var span float64
		for i := 0; i < b.N; i++ {
			span = par.PDect(w.after, w.rules, sim(par.Hybrid(8))).Metrics.Makespan
		}
		b.ReportMetric(span, "makespan_units")
	})
	b.Run("PIncDect", func(b *testing.B) {
		b.ReportAllocs()
		var span float64
		for i := 0; i < b.N; i++ {
			span = par.PIncDect(w.ds.G, w.rules, w.delta, sim(par.Hybrid(8))).Metrics.Makespan
		}
		b.ReportMetric(span, "makespan_units")
	})
}

func BenchmarkFig4aVaryDeltaDBpedia(b *testing.B) {
	b.ReportAllocs()
	for _, pct := range []int{5, 15, 25, 35} {
		b.Run(fmt.Sprintf("delta%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			benchVaryDelta(b, gen.DBpedia, float64(pct)/100)
		})
	}
}

func BenchmarkFig4bVaryDeltaYago(b *testing.B) {
	b.ReportAllocs()
	for _, pct := range []int{5, 15, 25, 35} {
		b.Run(fmt.Sprintf("delta%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			benchVaryDelta(b, gen.YAGO2, float64(pct)/100)
		})
	}
}

func BenchmarkFig4cVaryDeltaPokec(b *testing.B) {
	b.ReportAllocs()
	for _, pct := range []int{5, 15, 25, 40} {
		b.Run(fmt.Sprintf("delta%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			benchVaryDelta(b, gen.Pokec, float64(pct)/100)
		})
	}
}

func BenchmarkFig4dVaryDeltaSynthetic(b *testing.B) {
	b.ReportAllocs()
	for _, pct := range []int{5, 15, 25, 35} {
		b.Run(fmt.Sprintf("delta%d", pct), func(b *testing.B) {
			b.ReportAllocs()
			benchVaryDelta(b, gen.Synthetic, float64(pct)/100)
		})
	}
}

// BenchmarkFig4eVaryG: Exp-2 (vary |G|) — incremental vs batch at three
// synthetic graph sizes, ΔG = 15%.
func BenchmarkFig4eVaryG(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{400, 800, 1600} {
		ds := gen.Generate(gen.Synthetic, n, 1)
		rules := gen.Rules(gen.Synthetic, gen.RuleConfig{Count: benchRules, MaxDiameter: 5, Seed: 1})
		d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 31})
		after := graph.NewOverlay(ds.G, d.Normalize(ds.G))
		b.Run(fmt.Sprintf("n%d/Dect", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				detect.Dect(after, rules, detect.Options{})
			}
		})
		b.Run(fmt.Sprintf("n%d/IncDect", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inc.IncDect(ds.G, rules, d, inc.Options{})
			}
		})
	}
}

// BenchmarkFig4fVarySigmaDBpedia / Fig4g: Exp-3, vary ‖Σ‖.
func benchVarySigma(b *testing.B, p gen.Profile) {
	ds := gen.Generate(p, benchEntities, 1)
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 31})
	for _, k := range []int{10, 25, 50} {
		rules := gen.Rules(p, gen.RuleConfig{Count: k, MaxDiameter: 5, Seed: 1})
		b.Run(fmt.Sprintf("sigma%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inc.IncDect(ds.G, rules, d, inc.Options{})
			}
		})
	}
}

func BenchmarkFig4fVarySigmaDBpedia(b *testing.B) { benchVarySigma(b, gen.DBpedia) }
func BenchmarkFig4gVarySigmaYago(b *testing.B)    { benchVarySigma(b, gen.YAGO2) }

// BenchmarkFig4hVaryDiameter: Exp-3, vary dΣ on the DBpedia profile.
func BenchmarkFig4hVaryDiameter(b *testing.B) {
	b.ReportAllocs()
	ds := gen.Generate(gen.DBpedia, benchEntities, 1)
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 31})
	for _, diam := range []int{2, 4, 6} {
		rules := gen.Rules(gen.DBpedia, gen.RuleConfig{Count: benchRules, MaxDiameter: diam, Seed: 1})
		b.Run(fmt.Sprintf("d%d", diam), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inc.IncDect(ds.G, rules, d, inc.Options{})
			}
		})
	}
}

// benchVaryP is the Exp-4 scalability shape (Figures 4i–4l): simulated
// makespan as p grows, hybrid vs the NO variant.
func benchVaryP(b *testing.B, p gen.Profile) {
	w := mkBench(p, 0.15, 1)
	for _, workers := range []int{4, 12, 20} {
		b.Run(fmt.Sprintf("p%d/hybrid", workers), func(b *testing.B) {
			b.ReportAllocs()
			var span float64
			for i := 0; i < b.N; i++ {
				span = par.PIncDect(w.ds.G, w.rules, w.delta, sim(par.Hybrid(workers))).Metrics.Makespan
			}
			b.ReportMetric(span, "makespan_units")
		})
		b.Run(fmt.Sprintf("p%d/NO", workers), func(b *testing.B) {
			b.ReportAllocs()
			var span float64
			for i := 0; i < b.N; i++ {
				span = par.PIncDect(w.ds.G, w.rules, w.delta, sim(par.VariantNO(workers))).Metrics.Makespan
			}
			b.ReportMetric(span, "makespan_units")
		})
	}
}

func BenchmarkFig4iVaryPDBpedia(b *testing.B)   { benchVaryP(b, gen.DBpedia) }
func BenchmarkFig4jVaryPYago(b *testing.B)      { benchVaryP(b, gen.YAGO2) }
func BenchmarkFig4kVaryPPokec(b *testing.B)     { benchVaryP(b, gen.Pokec) }
func BenchmarkFig4lVaryPSynthetic(b *testing.B) { benchVaryP(b, gen.Synthetic) }

// BenchmarkFig4mVaryC: Exp-4, the latency-parameter sweep on Pokec.
func BenchmarkFig4mVaryC(b *testing.B) {
	b.ReportAllocs()
	w := mkBench(gen.Pokec, 0.15, 1)
	for _, c := range []int{20, 60, 100} {
		opts := sim(par.Hybrid(8))
		opts.C = c
		b.Run(fmt.Sprintf("C%d", c), func(b *testing.B) {
			b.ReportAllocs()
			var span float64
			for i := 0; i < b.N; i++ {
				span = par.PIncDect(w.ds.G, w.rules, w.delta, opts).Metrics.Makespan
			}
			b.ReportMetric(span, "makespan_units")
		})
	}
}

// BenchmarkFig4nVaryIntvl: Exp-4, the balancing-interval sweep on YAGO2.
func BenchmarkFig4nVaryIntvl(b *testing.B) {
	b.ReportAllocs()
	w := mkBench(gen.YAGO2, 0.15, 1)
	for _, iv := range []float64{700, 2100, 3500} {
		opts := sim(par.Hybrid(8))
		opts.Intvl = iv
		b.Run(fmt.Sprintf("intvl%.0f", iv), func(b *testing.B) {
			b.ReportAllocs()
			var span float64
			for i := 0; i < b.N; i++ {
				span = par.PIncDect(w.ds.G, w.rules, w.delta, opts).Metrics.Makespan
			}
			b.ReportMetric(span, "makespan_units")
		})
	}
}

// BenchmarkPruning measures the attribute-index candidate pruning (§6.2
// optimization step (3)): batch and incremental detection with the indexes
// on vs off, over a Σ whose CFD-style constant preconditions (flag = 1)
// range from typed entities (label seeding already selective) to untyped
// ones (where only the index is selective). cost_units is the deterministic
// work metric.
//
// The Dect pruned/unpruned cost ratio is the figure of merit. The IncDect
// arm is a neutrality control, not a speedup claim: pivot-anchored plans
// have no seed steps to index, so its cost_units are expected to be
// identical in both modes (wall time still gains from skipping the
// double literal evaluation; see DESIGN.md §3).
func BenchmarkPruning(b *testing.B) {
	b.ReportAllocs()
	p := gen.YAGO2
	ds := gen.Generate(p, benchEntities, 1)
	rules := gen.EffectivenessRules(p)
	rules.Add(gen.WildFlagRule(0))
	d := update.Random(ds, update.Config{Size: update.SizeFor(ds.G, 0.15), Gamma: 1, Seed: 31})

	for _, bc := range []struct {
		name string
		off  bool
	}{{"Dect/pruned", false}, {"Dect/unpruned", true}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var work float64
			for i := 0; i < b.N; i++ {
				r := detect.Dect(ds.G, rules, detect.Options{NoPruning: bc.off})
				work = float64(r.Counters.Candidates + r.Counters.Checks)
			}
			b.ReportMetric(work, "cost_units")
		})
	}
	for _, bc := range []struct {
		name string
		off  bool
	}{{"IncDect/pruned", false}, {"IncDect/unpruned", true}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var work float64
			for i := 0; i < b.N; i++ {
				r := inc.IncDect(ds.G, rules, d, inc.Options{NoPruning: bc.off})
				work = float64(r.Counters.Candidates + r.Counters.Checks)
			}
			b.ReportMetric(work, "cost_units")
		})
	}
}

// BenchmarkSessionStream measures a continuous detection session's
// sustained commit+detect throughput over a burst-skewed update stream
// against recomputing Dect from scratch after every batch — the
// incremental win the session subsystem (in-place ΔG commit + live
// violation store) exists to deliver. cost_units is the deterministic
// per-stream work metric; updates/sec the wall-clock sustained rate.
func BenchmarkSessionStream(b *testing.B) {
	b.ReportAllocs()
	p := gen.YAGO2
	ds := gen.Generate(p, benchEntities, 1)
	rules := gen.Rules(p, gen.RuleConfig{Count: benchRules, MaxDiameter: 5, Seed: 1})
	const nBatches = 6
	batches := make([]*graph.Delta, nBatches)
	totalOps := 0
	for i := range batches {
		batches[i] = update.Random(ds, update.Config{
			Size: update.SizeFor(ds.G, 0.04), Gamma: 1, Seed: int64(100 + i),
		})
		totalOps += batches[i].Len()
	}
	// snapshot after stream generation so every delta's nodes exist in it
	snapshot := ds.G.Clone()

	b.Run("SessionCommit", func(b *testing.B) {
		b.ReportAllocs()
		var cost float64
		var store int
		for i := 0; i < b.N; i++ {
			s := session.New(snapshot.Clone(), rules, session.Options{})
			cost = 0
			for _, d := range batches {
				st := s.Commit(d)
				cost += st.Cost
				store = st.StoreSize
			}
		}
		b.ReportMetric(cost, "cost_units")
		b.ReportMetric(float64(store), "store_size")
		b.ReportMetric(float64(totalOps*b.N)/b.Elapsed().Seconds(), "updates/sec")
	})
	b.Run("DectScratch", func(b *testing.B) {
		b.ReportAllocs()
		var cost float64
		var vios int
		for i := 0; i < b.N; i++ {
			g := snapshot.Clone()
			cost = 0
			for _, d := range batches {
				g.Apply(d.Normalize(g))
				r := detect.Dect(g, rules, detect.Options{})
				cost += float64(r.Counters.Candidates + r.Counters.Checks)
				vios = len(r.Violations)
			}
		}
		b.ReportMetric(cost, "cost_units")
		b.ReportMetric(float64(vios), "store_size")
		b.ReportMetric(float64(totalOps*b.N)/b.Elapsed().Seconds(), "updates/sec")
	})
}

// BenchmarkExp5Effectiveness: the error-catching study.
func BenchmarkExp5Effectiveness(b *testing.B) {
	b.ReportAllocs()
	for _, p := range []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec} {
		ds := gen.Generate(p, benchEntities, 1)
		rules := gen.EffectivenessRules(p)
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			var caught int
			for i := 0; i < b.N; i++ {
				r := detect.Dect(ds.G, rules, detect.Options{})
				caught = len(r.Violations)
			}
			b.ReportMetric(float64(caught), "violations")
			b.ReportMetric(float64(len(ds.Errors)), "injected")
		})
	}
}

// BenchmarkReasoning: §4 static analyses on the Example 5 rule sets.
func BenchmarkReasoning(b *testing.B) {
	b.ReportAllocs()
	phi5 := singleRule("phi5", []string{"x.A = 7", "x.B = 7"})
	phi6 := singleRule("phi6", []string{"x.A + x.B = 11"})
	set := core.NewSet(phi5, phi6)
	b.Run("SatisfiabilityConflict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v, err := reason.Satisfiable(set, reason.Options{}); err != nil || v != reason.No {
				b.Fatalf("unexpected: %v %v", v, err)
			}
		}
	})
	b.Run("Implication", func(b *testing.B) {
		b.ReportAllocs()
		weaker := singleRule("weak", []string{"x.A >= 0"})
		one := core.NewSet(singleRule("s", []string{"x.A = 7"}))
		for i := 0; i < b.N; i++ {
			if v, err := reason.Implies(one, weaker, reason.Options{}); err != nil || v != reason.Yes {
				b.Fatalf("unexpected: %v %v", v, err)
			}
		}
	})
}

func singleRule(name string, then []string) *core.NGD {
	q := corePat()
	var t []core.Literal
	for _, s := range then {
		t = append(t, core.MustLiteral(s))
	}
	return core.MustNew(name, q, nil, t)
}

func corePat() *pattern.Pattern {
	q := pattern.New()
	q.AddNode("x", "_")
	return q
}

// BenchmarkPlanProgram pins the shared rule-program layer (internal/plan):
// cold per-call compile+plan vs a cached Program on a small-batch
// incremental stream (the serving hot path), and the cross-rule sharing win
// on batch detection. CI runs every benchmark once per commit so these can
// never bit-rot.
func BenchmarkPlanProgram(b *testing.B) {
	b.ReportAllocs()
	w := mkBench(gen.YAGO2, 0.01, 1)
	b.Run("IncDectColdPlans", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc.IncDect(w.ds.G, w.rules, w.delta, inc.Options{}) // compiles Σ every call
		}
	})
	b.Run("IncDectCachedProgram", func(b *testing.B) {
		b.ReportAllocs()
		prog := plan.New(w.ds.G, w.rules, plan.Options{})
		inc.IncDect(w.ds.G, w.rules, w.delta, inc.Options{Program: prog}) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inc.IncDect(w.ds.G, w.rules, w.delta, inc.Options{Program: prog})
		}
		c := prog.Counters()
		b.ReportMetric(float64(c.Hits), "plan_hits")
		b.ReportMetric(float64(c.Misses), "plan_misses")
	})
	b.Run("DectShared", func(b *testing.B) {
		b.ReportAllocs()
		prog := plan.New(w.ds.G, w.rules, plan.Options{})
		var work float64
		for i := 0; i < b.N; i++ {
			r := detect.Dect(w.ds.G, w.rules, detect.Options{Program: prog})
			work = float64(r.Counters.Candidates + r.Counters.Checks)
		}
		b.ReportMetric(work, "cost_units")
		b.ReportMetric(float64(prog.Counters().SharedRules), "shared_rules")
	})
	b.Run("DectPerRule", func(b *testing.B) {
		b.ReportAllocs()
		prog := plan.New(w.ds.G, w.rules, plan.Options{NoSharing: true})
		var work float64
		for i := 0; i < b.N; i++ {
			r := detect.Dect(w.ds.G, w.rules, detect.Options{Program: prog})
			work = float64(r.Counters.Candidates + r.Counters.Checks)
		}
		b.ReportMetric(work, "cost_units")
	})
}

// BenchmarkShardScaling measures real elapsed time of PDect and PIncDect on
// the persistent shard pool (the goroutine driver, engine default) at
// p = 1, 2, 4 and, on larger hosts, NumCPU — and emits the series as
// machine-readable JSON to BENCH_shards.json, the same schema `ngdbench
// shards` writes at full scale. host_cores is recorded because the numbers
// are wall-clock: a single-core host shows a flat curve by physics, not by
// regression. CI runs this at -benchtime 1x and fails the build if the
// emitted JSON is malformed or missing keys.
func BenchmarkShardScaling(b *testing.B) {
	b.ReportAllocs()
	w := mkBench(gen.Pokec, 0.15, 1)
	norm := w.delta.Normalize(w.ds.G)

	ps := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		ps = append(ps, n)
	}
	type point struct {
		P               int     `json:"p"`
		PDectMS         float64 `json:"pdect_ms"`
		PIncDectMS      float64 `json:"pincdect_ms"`
		PDectSpeedup    float64 `json:"pdect_speedup"`
		PIncDectSpeedup float64 `json:"pincdect_speedup"`
	}
	report := struct {
		Experiment  string  `json:"experiment"`
		HostCores   int     `json:"host_cores"`
		Gomaxprocs  int     `json:"gomaxprocs"`
		Profile     string  `json:"profile"`
		Entities    int     `json:"entities"`
		Rules       int     `json:"rules"`
		DeltaFrac   float64 `json:"delta_frac"`
		Series      []point `json:"series"`
		GeneratedBy string  `json:"generated_by"`
	}{
		Experiment: "shards", HostCores: runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0), Profile: gen.Pokec.Name,
		Entities: benchEntities, Rules: benchRules, DeltaFrac: 0.15,
		GeneratedBy: "go test -bench ShardScaling",
	}

	for _, p := range ps {
		pool := par.NewPool(p)
		opts := par.Hybrid(p)
		opts.Pool = pool
		opts.AssumeNormalized = true
		pt := point{P: p, PDectSpeedup: 1, PIncDectSpeedup: 1}

		b.Run(fmt.Sprintf("p%d/PDect", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				par.PDect(w.after, w.rules, opts)
			}
			pt.PDectMS = float64(b.Elapsed().Microseconds()) / float64(b.N) / 1000
		})
		b.Run(fmt.Sprintf("p%d/PIncDect", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				par.PIncDect(w.ds.G, w.rules, norm, opts)
			}
			pt.PIncDectMS = float64(b.Elapsed().Microseconds()) / float64(b.N) / 1000
		})
		pool.Close()

		if len(report.Series) > 0 {
			base := report.Series[0]
			if pt.PDectMS > 0 {
				pt.PDectSpeedup = base.PDectMS / pt.PDectMS
			}
			if pt.PIncDectMS > 0 {
				pt.PIncDectSpeedup = base.PIncDectMS / pt.PIncDectMS
			}
		}
		report.Series = append(report.Series, pt)
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatalf("marshal shard series: %v", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile("BENCH_shards.json", raw, 0o644); err != nil {
		b.Fatalf("write BENCH_shards.json: %v", err)
	}
}
