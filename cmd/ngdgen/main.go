// Command ngdgen emits synthetic workloads — graph, rule and update files —
// in the formats cmd/ngdcheck consumes, using the paper-profile generators
// (DBpedia/YAGO2/Pokec statistics or the §7 synthetic settings).
//
// Usage:
//
//	ngdgen -profile pokec -n 2000 -rules 50 -delta 0.15 -out dir
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"

	"ngd/internal/dsl"
	"ngd/internal/gen"
	"ngd/internal/update"
)

var (
	profile   = flag.String("profile", "synthetic", "dbpedia|yago2|pokec|synthetic")
	n         = flag.Int("n", 1000, "entities")
	rules     = flag.Int("rules", 50, "rules in Σ")
	maxDiam   = flag.Int("diameter", 5, "max pattern diameter dΣ")
	deltaFrac = flag.Float64("delta", 0, "also emit an update file of this fraction of |E|")
	seed      = flag.Int64("seed", 1, "RNG seed")
	outDir    = flag.String("out", ".", "output directory")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ngdgen: ")
	flag.Parse()

	p, ok := gen.ProfileByName(*profile)
	if !ok {
		log.Fatalf("unknown profile %q", *profile)
	}
	ds := gen.Generate(p, *n, *seed)
	rs := gen.Rules(p, gen.RuleConfig{Count: *rules, MaxDiameter: *maxDiam, Seed: *seed})

	// The delta must be generated before writing the graph: it may add new
	// nodes, which the graph file must contain.
	var deltaOps = 0
	var deltaOut string
	if *deltaFrac > 0 {
		d := update.Random(ds, update.Config{
			Size:  update.SizeFor(ds.G, *deltaFrac),
			Gamma: 1,
			Seed:  *seed * 31,
		})
		deltaOut = filepath.Join(*outDir, "delta.txt")
		f, err := os.Create(deltaOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := dsl.WriteDelta(f, ds.G, d); err != nil {
			log.Fatal(err)
		}
		f.Close()
		deltaOps = d.Len()
	}

	gPath := filepath.Join(*outDir, "graph.txt")
	f, err := os.Create(gPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dsl.WriteGraph(f, ds.G); err != nil {
		log.Fatal(err)
	}
	f.Close()

	rPath := filepath.Join(*outDir, "rules.ngd")
	if err := os.WriteFile(rPath, []byte(dsl.FormatRules(rs)), 0o644); err != nil {
		log.Fatal(err)
	}

	st := ds.G.ComputeStats()
	log.Printf("wrote %s (%d nodes, %d edges), %s (%d rules, dΣ=%d), %d injected errors",
		gPath, st.Nodes, st.Edges, rPath, rs.Len(), rs.Diameter(), len(ds.Errors))
	if deltaOut != "" {
		log.Printf("wrote %s (%d unit updates)", deltaOut, deltaOps)
	}
}
