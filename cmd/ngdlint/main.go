// Command ngdlint enforces the repo's determinism contract on the §4/§5
// decision-procedure packages.
//
// The reasoning oracle (internal/reason), the repair engine
// (internal/repair), the exact integer solver (internal/solver) and the
// virtual parallel driver (internal/par's
// discrete-event path) must be pure functions of their inputs: replaying a
// WAL, re-running an admission analysis, or re-simulating a makespan must
// produce byte-identical results. Reading a clock or a random source breaks
// that silently — budgets and deadlines in those packages are therefore
// expressed as caller-supplied counters and Done channels, never as
// time.Now() comparisons (see reason.Options and solver.Options.Done).
//
// ngdlint walks the source with go/parser and fails the build when a
// guarded file imports "time" or "math/rand" (any API from either package
// smuggles nondeterminism in). Real wall-clock code is confined to the
// allowlisted files: internal/par/pool.go and internal/par/real.go host the
// goroutine shard runtime, whose balancer ticker is genuinely temporal.
// Test files are exempt — they may time themselves freely.
//
// It also enforces the allocation discipline of the hot detect path: the
// match, detect and inc packages may not declare map[NodeID]struct{}
// seen-sets (the pooled graph.NodeSet bitset replaced them; a map there is
// a per-traversal allocation regression the benchmarks may take weeks to
// surface).
//
// Usage: ngdlint [repo root]   (default ".")
// Exit 0 = clean, 1 = violations (one "file:line: message" per finding),
// 2 = bad invocation or unparsable source.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// guarded maps each package directory (relative to the repo root) to its
// allowlisted file names.
var guarded = map[string]map[string]bool{
	"internal/reason": {},
	"internal/repair": {},
	"internal/solver": {},
	"internal/par":    {"pool.go": true, "real.go": true},
}

var banned = map[string]string{
	"time":      "wall-clock reads break replay determinism (use budgets / Done channels)",
	"math/rand": "random sources break replay determinism (derive choices from input order)",
}

// hotPackages are the allocation-disciplined detect-path packages: building
// a map[NodeID]struct{} seen-set there reintroduces the per-traversal heap
// churn the pooled graph.NodeSet bitsets removed. Test files are exempt
// (reference implementations in differential tests use maps on purpose).
var hotPackages = []string{"internal/match", "internal/detect", "internal/inc"}

func main() {
	root := "."
	if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: ngdlint [repo root]")
		os.Exit(2)
	}
	if len(os.Args) == 2 {
		root = os.Args[1]
	}

	fset := token.NewFileSet()
	var findings []string
	for dir, allow := range guarded {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ngdlint: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || allow[name] {
				continue
			}
			path := filepath.Join(root, dir, name)
			findings = append(findings, lintFile(fset, path)...)
		}
	}
	for _, dir := range hotPackages {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ngdlint: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(root, dir, name)
			findings = append(findings, lintSeenSets(fset, path)...)
		}
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ngdlint: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintFile reports every banned import in the file, and — defense in depth,
// in case a banned package sneaks in under a renamed import that a pure
// import check would still catch but a human reviewer might not — every
// selector call through such an import.
func lintFile(fset *token.FileSet, path string) []string {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngdlint: %v\n", err)
		os.Exit(2)
	}
	var findings []string
	// import check: record the local name each banned import binds to
	bannedNames := map[string]string{} // local identifier -> import path
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		reason, bad := banned[p]
		if !bad {
			continue
		}
		findings = append(findings, fmt.Sprintf("%s: import %q forbidden here: %s",
			fset.Position(imp.Pos()), p, reason))
		local := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		bannedNames[local] = p
	}
	// call check: any use through the banned import's name
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if p, bad := bannedNames[id.Name]; bad {
			findings = append(findings, fmt.Sprintf("%s: %s.%s reaches %q",
				fset.Position(sel.Pos()), id.Name, sel.Sel.Name, p))
		}
		return true
	})
	return findings
}

// lintSeenSets reports every map[NodeID]struct{} (or
// map[graph.NodeID]struct{}) type in a hot-path file: seen-sets there must
// use the pooled graph.NodeSet bitset instead.
func lintSeenSets(fset *token.FileSet, path string) []string {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngdlint: %v\n", err)
		os.Exit(2)
	}
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		mt, ok := n.(*ast.MapType)
		if !ok {
			return true
		}
		if !isNodeIDType(mt.Key) {
			return true
		}
		if st, ok := mt.Value.(*ast.StructType); !ok || len(st.Fields.List) != 0 {
			return true
		}
		findings = append(findings, fmt.Sprintf(
			"%s: map[NodeID]struct{} seen-set on the hot detect path: use graph.AcquireNodeSet / graph.NodeSet",
			fset.Position(mt.Pos())))
		return true
	})
	return findings
}

// isNodeIDType matches the identifier NodeID, bare or package-qualified.
func isNodeIDType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "NodeID"
	case *ast.SelectorExpr:
		return t.Sel.Name == "NodeID"
	}
	return false
}
