package main

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return lintFile(token.NewFileSet(), path)
}

func TestBannedImportAndCall(t *testing.T) {
	got := lintSource(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	if len(got) != 3 { // import + time.Time + time.Now
		t.Fatalf("want 3 findings, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], `import "time" forbidden`) {
		t.Errorf("first finding should flag the import: %s", got[0])
	}
	if !strings.Contains(got[2], "time.Now") {
		t.Errorf("call finding missing: %v", got)
	}
}

func TestRenamedImportStillCaught(t *testing.T) {
	got := lintSource(t, `package p
import clock "time"
var _ = clock.Now
`)
	if len(got) != 2 {
		t.Fatalf("want import + selector findings, got %v", got)
	}
	if !strings.Contains(got[1], `clock.Now reaches "time"`) {
		t.Errorf("renamed selector not traced: %v", got)
	}
}

func TestMathRandBanned(t *testing.T) {
	got := lintSource(t, `package p
import "math/rand"
var _ = rand.Int
`)
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %v", got)
	}
}

func TestCleanFile(t *testing.T) {
	got := lintSource(t, `package p
import "math/big"
var _ = big.NewRat(1, 2)
`)
	if len(got) != 0 {
		t.Fatalf("clean file flagged: %v", got)
	}
}

// TestRepoIsClean runs the real walk over this repository: the guarded
// packages must stay free of wall-clock and randomness imports.
func TestRepoIsClean(t *testing.T) {
	fset := token.NewFileSet()
	root := "../.."
	for dir, allow := range guarded {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || allow[name] {
				continue
			}
			if got := lintFile(fset, filepath.Join(root, dir, name)); len(got) != 0 {
				t.Errorf("%s: %v", name, got)
			}
		}
	}
}
