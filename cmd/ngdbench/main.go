// Command ngdbench regenerates the evaluation of Fan et al. (SIGMOD 2018),
// Figures 4(a)–4(n) and the Exp-5 effectiveness study, at a configurable
// scale (see DESIGN.md for the scale mapping and EXPERIMENTS.md for
// paper-vs-measured results).
//
// All series are reported in deterministic cost units (1 unit = one
// adjacency entry scanned or one edge checked): sequential algorithms
// report their total work, parallel algorithms the simulated makespan of
// the virtual cluster driver, so every column is directly comparable and
// machine-independent.
//
// Usage:
//
//	ngdbench [-n entities] [-seed s] [-rules k] <experiment>
//
// where experiment is one of: fig4a fig4b fig4c fig4d fig4e fig4f fig4g
// fig4h fig4i fig4j fig4k fig4l fig4m fig4n exp5 reason stream serve
// recover plan shards repair all
//
// stream, serve, recover, plan, shards and repair are the serving-layer
// experiments beyond the paper: stream replays a seeded burst-skewed
// update stream through a continuous detection session against the
// recompute-from-scratch baseline; serve measures snapshot-isolated read
// latency under a concurrent writer plus incremental partition
// maintenance; recover measures durable-store crash recovery (snapshot
// decode + WAL replay, internal/store) against the cold-boot seeding
// detection run; shards measures wall-clock scaling of the goroutine
// shard runtime at p = 1..8 and writes BENCH_shards.json; repair
// measures the fix-enumeration cost of the repair engine as the
// violation store grows, and how many top-ranked applies empty it.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ngd/internal/analyze"
	"ngd/internal/core"
	"ngd/internal/detect"
	"ngd/internal/expr"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/inc"
	"ngd/internal/par"
	"ngd/internal/partition"
	"ngd/internal/pattern"
	"ngd/internal/plan"
	"ngd/internal/reason"
	"ngd/internal/repair"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/store"
	"ngd/internal/update"
)

var (
	nEntities  = flag.Int("n", 1200, "entities per generated graph (scale knob)")
	seed       = flag.Int64("seed", 1, "base RNG seed")
	nRules     = flag.Int("rules", 50, "rules in Σ (the paper's default)")
	nBatches   = flag.Int("batches", 8, "stream/serve: number of update batches to replay")
	batchPct   = flag.Int("batchpct", 5, "stream: batch size as % of |E|")
	streamPar  = flag.Bool("stream-par", false, "stream: route batches through PIncDect")
	nReaders   = flag.Int("readers", 8, "serve: concurrent snapshot readers")
	shardsOut  = flag.String("shards-out", "BENCH_shards.json", "shards: machine-readable output path")
	allocOut   = flag.String("alloc-out", "BENCH_alloc.json", "alloc: machine-readable output path")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile (after the experiment) to this file")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ngdbench [flags] <fig4a..fig4n|exp5|reason|analyze|stream|all>")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	exp := flag.Arg(0)
	experiments := map[string]func(){
		"fig4a":   func() { varyDelta(gen.DBpedia, []int{5, 10, 15, 20, 25, 30, 35}) },
		"fig4b":   func() { varyDelta(gen.YAGO2, []int{5, 10, 15, 20, 25, 30, 35}) },
		"fig4c":   func() { varyDelta(gen.Pokec, []int{5, 10, 15, 20, 25, 30, 35, 40}) },
		"fig4d":   func() { varyDelta(gen.Synthetic, []int{5, 10, 15, 20, 25, 30, 35}) },
		"fig4e":   varyG,
		"fig4f":   func() { varySigma(gen.DBpedia) },
		"fig4g":   func() { varySigma(gen.YAGO2) },
		"fig4h":   varyDiameter,
		"fig4i":   func() { varyP(gen.DBpedia) },
		"fig4j":   func() { varyP(gen.YAGO2) },
		"fig4k":   func() { varyP(gen.Pokec) },
		"fig4l":   func() { varyP(gen.Synthetic) },
		"fig4m":   varyC,
		"fig4n":   varyIntvl,
		"exp5":    exp5,
		"reason":  reasonDemo,
		"analyze": analyzeExp,
		"stream":  streamExp,
		"serve":   serveExp,
		"recover": recoverExp,
		"plan":    planExp,
		"shards":  shardsExp,
		"repair":  repairExp,
		"alloc":   allocExp,
	}
	if exp == "all" {
		for _, name := range []string{"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
			"fig4g", "fig4h", "fig4i", "fig4j", "fig4k", "fig4l", "fig4m", "fig4n", "exp5", "reason", "analyze", "stream", "serve", "recover", "plan", "shards", "repair", "alloc"} {
			experiments[name]()
			fmt.Println()
		}
		return
	}
	run, ok := experiments[exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
	run()
}

// ---- measurement helpers ----

// ku formats cost units in thousands.
func ku(v float64) string { return fmt.Sprintf("%8.1f", v/1000) }

// oracle pins an options value to the deterministic virtual-time driver.
// The goroutine shard runtime is the engine default now, but every fig4
// series reports simulated cost units, which must stay machine-independent
// and reproducible; the `shards` experiment is the wall-clock counterpart.
func oracle(o par.Options) par.Options {
	o.Virtual = true
	return o
}

type workload struct {
	ds    *gen.Dataset
	rules *core.Set
	delta *graph.Delta
}

func makeWorkload(p gen.Profile, entities, rules, maxDiam int, deltaFrac float64, s int64) workload {
	ds := gen.Generate(p, entities, s)
	rs := gen.Rules(p, gen.RuleConfig{Count: rules, MaxDiameter: maxDiam, Seed: s})
	var d *graph.Delta
	if deltaFrac > 0 {
		d = update.Random(ds, update.Config{
			Size:  update.SizeFor(ds.G, deltaFrac),
			Gamma: 1,
			Seed:  s * 31,
		})
	}
	return workload{ds: ds, rules: rs, delta: d}
}

// dectWork is the paper-faithful Dect baseline: per-rule searches with
// label-frequency ordering, exactly the algorithm the paper's figures
// measure — so the reproduced fig4 curves (and the stream experiment's
// recompute-from-scratch column) keep the paper's shape. What the shared
// rule-program layer does to production Dect is measured separately by
// the `plan` experiment.
func dectWork(v graph.View, rules *core.Set) float64 {
	prog := plan.New(v, rules, plan.Options{LegacyOrder: true, NoSharing: true})
	r := detect.Dect(v, rules, detect.Options{Program: prog})
	return float64(r.Counters.Candidates + r.Counters.Checks)
}

func incWork(g *graph.Graph, rules *core.Set, d *graph.Delta) float64 {
	r := inc.IncDect(g, rules, d, inc.Options{})
	return float64(r.Counters.Candidates + r.Counters.Checks)
}

// ---- Exp-1: vary |ΔG| (Figures 4a–4d) ----

func varyDelta(p gen.Profile, pcts []int) {
	w0 := makeWorkload(p, *nEntities, *nRules, 5, 0, *seed)
	st := w0.ds.G.ComputeStats()
	fmt.Printf("# fig4(a-d) %s: |V|=%d |E|=%d, ‖Σ‖=%d, dΣ=5, p=8; cost kilounits\n",
		p.Name, st.Nodes, st.Edges, *nRules)
	fmt.Printf("%-8s %10s %10s %10s %10s %12s %12s %12s\n",
		"ΔG%", "Dect", "IncDect", "PDect", "PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO")
	for _, pct := range pcts {
		w := makeWorkload(p, *nEntities, *nRules, 5, float64(pct)/100, *seed)
		norm := w.delta.Normalize(w.ds.G)
		after := graph.NewOverlay(w.ds.G, norm)

		dect := dectWork(after, w.rules)
		incD := incWork(w.ds.G, w.rules, w.delta)
		pdect := par.PDect(after, w.rules, oracle(par.Hybrid(8))).Metrics.Makespan
		hyb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.Hybrid(8))).Metrics.Makespan
		ns := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.VariantNS(8))).Metrics.Makespan
		nb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.VariantNB(8))).Metrics.Makespan
		no := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.VariantNO(8))).Metrics.Makespan
		fmt.Printf("%-8d %s %s %s %s   %s   %s   %s\n",
			pct, ku(dect), ku(incD), ku(pdect), ku(hyb), ku(ns), ku(nb), ku(no))
	}
}

// ---- Exp-2: vary |G| (Figure 4e) ----

func varyG() {
	sizes := []int{*nEntities / 2, *nEntities, *nEntities * 3 / 2, *nEntities * 2, *nEntities * 5 / 2}
	fmt.Printf("# fig4e synthetic: vary |G| at ΔG=15%%, ‖Σ‖=%d, p=8; cost kilounits\n", *nRules)
	fmt.Printf("%-16s %10s %10s %10s %10s\n", "|V|/|E|", "Dect", "IncDect", "PDect", "PIncDect")
	for _, n := range sizes {
		w := makeWorkload(gen.Synthetic, n, *nRules, 5, 0.15, *seed)
		st := w.ds.G.ComputeStats()
		norm := w.delta.Normalize(w.ds.G)
		after := graph.NewOverlay(w.ds.G, norm)
		dect := dectWork(after, w.rules)
		incD := incWork(w.ds.G, w.rules, w.delta)
		pdect := par.PDect(after, w.rules, oracle(par.Hybrid(8))).Metrics.Makespan
		hyb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.Hybrid(8))).Metrics.Makespan
		fmt.Printf("%-16s %s %s %s %s\n",
			fmt.Sprintf("%d/%d", st.Nodes, st.Edges), ku(dect), ku(incD), ku(pdect), ku(hyb))
	}
}

// ---- Exp-3: vary ‖Σ‖ (4f, 4g) and dΣ (4h) ----

func varySigma(p gen.Profile) {
	fmt.Printf("# fig4(f,g) %s: vary ‖Σ‖ at ΔG=15%%, dΣ=5, p=8; cost kilounits\n", p.Name)
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "‖Σ‖", "Dect", "IncDect", "PDect", "PIncDect")
	for _, k := range []int{50, 60, 70, 80, 90, 100} {
		w := makeWorkload(p, *nEntities, k, 5, 0.15, *seed)
		norm := w.delta.Normalize(w.ds.G)
		after := graph.NewOverlay(w.ds.G, norm)
		dect := dectWork(after, w.rules)
		incD := incWork(w.ds.G, w.rules, w.delta)
		pdect := par.PDect(after, w.rules, oracle(par.Hybrid(8))).Metrics.Makespan
		hyb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.Hybrid(8))).Metrics.Makespan
		fmt.Printf("%-8d %s %s %s %s\n", k, ku(dect), ku(incD), ku(pdect), ku(hyb))
	}
}

func varyDiameter() {
	fmt.Printf("# fig4h dbpedia: vary dΣ at ΔG=15%%, ‖Σ‖=%d, p=8; cost kilounits\n", *nRules)
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "dΣ", "Dect", "IncDect", "PDect", "PIncDect")
	for _, d := range []int{2, 3, 4, 5, 6} {
		w := makeWorkload(gen.DBpedia, *nEntities, *nRules, d, 0.15, *seed)
		norm := w.delta.Normalize(w.ds.G)
		after := graph.NewOverlay(w.ds.G, norm)
		dect := dectWork(after, w.rules)
		incD := incWork(w.ds.G, w.rules, w.delta)
		pdect := par.PDect(after, w.rules, oracle(par.Hybrid(8))).Metrics.Makespan
		hyb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.Hybrid(8))).Metrics.Makespan
		fmt.Printf("%-8d %s %s %s %s\n", d, ku(dect), ku(incD), ku(pdect), ku(hyb))
	}
}

// ---- Exp-4: vary p (4i–4l), C (4m), intvl (4n) ----

func varyP(p gen.Profile) {
	w := makeWorkload(p, *nEntities, *nRules, 5, 0.15, *seed)
	fmt.Printf("# fig4(i-l) %s: vary p at ΔG=15%%, ‖Σ‖=%d; makespan kilounits\n", p.Name, *nRules)
	fmt.Printf("%-6s %10s %10s %12s %12s %12s\n", "p", "PDect", "PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO")
	norm := w.delta.Normalize(w.ds.G)
	after := graph.NewOverlay(w.ds.G, norm)
	for _, pp := range []int{4, 8, 12, 16, 20} {
		pdect := par.PDect(after, w.rules, oracle(par.Hybrid(pp))).Metrics.Makespan
		hyb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.Hybrid(pp))).Metrics.Makespan
		ns := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.VariantNS(pp))).Metrics.Makespan
		nb := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.VariantNB(pp))).Metrics.Makespan
		no := par.PIncDect(w.ds.G, w.rules, w.delta, oracle(par.VariantNO(pp))).Metrics.Makespan
		fmt.Printf("%-6d %s %s   %s   %s   %s\n", pp, ku(pdect), ku(hyb), ku(ns), ku(nb), ku(no))
	}
}

func varyC() {
	w := makeWorkload(gen.Pokec, *nEntities, *nRules, 5, 0.15, *seed)
	fmt.Printf("# fig4m pokec: vary latency parameter C at p=8 (true latency 60); makespan kilounits\n")
	fmt.Printf("%-6s %10s %12s\n", "C", "PIncDect", "PIncDect_nb")
	for _, c := range []int{20, 40, 60, 80, 100} {
		hy := oracle(par.Hybrid(8))
		hy.C = c
		nb := oracle(par.VariantNB(8))
		nb.C = c
		h := par.PIncDect(w.ds.G, w.rules, w.delta, hy).Metrics.Makespan
		n := par.PIncDect(w.ds.G, w.rules, w.delta, nb).Metrics.Makespan
		fmt.Printf("%-6d %s   %s\n", c, ku(h), ku(n))
	}
}

func varyIntvl() {
	w := makeWorkload(gen.YAGO2, *nEntities, *nRules, 5, 0.15, *seed)
	fmt.Printf("# fig4n yago2: vary balancing interval at p=8 (≈45 units per paper-second); makespan kilounits\n")
	fmt.Printf("%-10s %10s %12s\n", "intvl", "PIncDect", "PIncDect_ns")
	for _, iv := range []float64{700, 1400, 2100, 2800, 3500} {
		hy := oracle(par.Hybrid(8))
		hy.Intvl = iv
		ns := oracle(par.VariantNS(8))
		ns.Intvl = iv
		h := par.PIncDect(w.ds.G, w.rules, w.delta, hy).Metrics.Makespan
		n := par.PIncDect(w.ds.G, w.rules, w.delta, ns).Metrics.Makespan
		fmt.Printf("%-10.0f %s   %s\n", iv, ku(h), ku(n))
	}
}

// ---- shards: wall-clock scaling of the goroutine shard runtime ----

// shardsExp measures real elapsed time of PDect and PIncDect executing on
// a persistent shard pool at p = 1, 2, 4, 8 — the wall-clock counterpart
// of the simulated fig4(i–l) curves — and writes the series as
// machine-readable JSON (-shards-out, default BENCH_shards.json). Unlike
// every other ngdbench number these are milliseconds on *this* host:
// host_cores and gomaxprocs are recorded so a single-core container's flat
// curve is not mistaken for a scaling regression. Each cell is the best of
// three runs after a warm-up pass.
func shardsExp() {
	w := makeWorkload(gen.Pokec, *nEntities, *nRules, 5, 0.15, *seed)
	norm := w.delta.Normalize(w.ds.G)
	after := graph.NewOverlay(w.ds.G, norm)
	st := w.ds.G.ComputeStats()

	type point struct {
		P               int     `json:"p"`
		PDectMS         float64 `json:"pdect_ms"`
		PIncDectMS      float64 `json:"pincdect_ms"`
		PDectSpeedup    float64 `json:"pdect_speedup"`
		PIncDectSpeedup float64 `json:"pincdect_speedup"`
	}
	report := struct {
		Experiment  string  `json:"experiment"`
		HostCores   int     `json:"host_cores"`
		Gomaxprocs  int     `json:"gomaxprocs"`
		Profile     string  `json:"profile"`
		Entities    int     `json:"entities"`
		Rules       int     `json:"rules"`
		DeltaFrac   float64 `json:"delta_frac"`
		Series      []point `json:"series"`
		GeneratedBy string  `json:"generated_by"`
	}{
		Experiment: "shards", HostCores: runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0), Profile: gen.Pokec.Name,
		Entities: *nEntities, Rules: *nRules, DeltaFrac: 0.15,
		GeneratedBy: "ngdbench shards",
	}

	fmt.Printf("# shards %s: wall-clock scaling of the goroutine shard runtime on %d core(s)\n",
		gen.Pokec.Name, runtime.NumCPU())
	fmt.Printf("# |V|=%d |E|=%d, ‖Σ‖=%d, ΔG=15%%; best of 3 after warm-up\n",
		st.Nodes, st.Edges, *nRules)
	fmt.Printf("%-6s %12s %12s %10s %10s\n", "p", "PDect ms", "PIncDect ms", "PD spd", "PI spd")

	timeIt := func(f func()) float64 {
		f() // warm-up: pool goroutines parked, caches hot
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			f()
			if ms := float64(time.Since(t0).Microseconds()) / 1000; rep == 0 || ms < best {
				best = ms
			}
		}
		return best
	}

	for _, p := range []int{1, 2, 4, 8} {
		pool := par.NewPool(p)
		opts := par.Hybrid(p)
		opts.Pool = pool
		opts.Part = partition.Greedy(w.ds.G, p)
		opts.AssumeNormalized = true

		pd := timeIt(func() { par.PDect(after, w.rules, opts) })
		pi := timeIt(func() { par.PIncDect(w.ds.G, w.rules, norm, opts) })
		pool.Close()

		pp := point{P: p, PDectMS: pd, PIncDectMS: pi, PDectSpeedup: 1, PIncDectSpeedup: 1}
		if len(report.Series) > 0 {
			base := report.Series[0]
			pp.PDectSpeedup = base.PDectMS / pd
			pp.PIncDectSpeedup = base.PIncDectMS / pi
		}
		report.Series = append(report.Series, pp)
		fmt.Printf("%-6d %12.2f %12.2f %9.2fx %9.2fx\n",
			p, pd, pi, pp.PDectSpeedup, pp.PIncDectSpeedup)
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "shards: marshal: %v\n", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*shardsOut, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "shards: write %s: %v\n", *shardsOut, err)
		os.Exit(1)
	}
	fmt.Printf("# wrote %s (host_cores=%d; wall-clock speedup needs real cores — CI runs this on multi-core runners)\n",
		*shardsOut, runtime.NumCPU())
}

// ---- alloc: allocation profile of the serving hot path ----

// measureAllocs runs f once on the calling goroutine and attributes the
// runtime's malloc counters to it, normalized per logical operation. A GC
// settles the heap first so leftover garbage from setup doesn't bill the
// scenario. Single-goroutine scenarios only: Mallocs is process-global.
func measureAllocs(ops int, f func()) (allocsPerOp, bytesPerOp float64) {
	runtime.GC()
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	f()
	runtime.ReadMemStats(&m2)
	n := float64(ops)
	return float64(m2.Mallocs-m1.Mallocs) / n, float64(m2.TotalAlloc-m1.TotalAlloc) / n
}

// allocExp measures allocs/op and bytes/op on the three serving-layer hot
// paths — batch Dect, steady-state session commits, and snapshot reads —
// and writes the result as schema-checked JSON (-alloc-out, default
// BENCH_alloc.json). These are the numbers the allocation-discipline work
// is pinned by: EXPERIMENTS.md records the before/after pairs, CI
// regenerates the file and validates its shape on every push. All three
// scenarios run sequentially (Parallel off) so the per-op attribution of
// the process-global malloc counters is exact.
func allocExp() {
	p := gen.YAGO2
	ds := gen.Generate(p, *nEntities, *seed)
	rules := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
	st := ds.G.ComputeStats()

	type scenario struct {
		Name        string  `json:"name"`
		Ops         int     `json:"ops"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
	}
	report := struct {
		Experiment  string     `json:"experiment"`
		HostCores   int        `json:"host_cores"`
		Gomaxprocs  int        `json:"gomaxprocs"`
		Profile     string     `json:"profile"`
		Entities    int        `json:"entities"`
		Rules       int        `json:"rules"`
		Scenarios   []scenario `json:"scenarios"`
		GeneratedBy string     `json:"generated_by"`
	}{
		Experiment: "alloc", HostCores: runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0), Profile: p.Name,
		Entities: *nEntities, Rules: *nRules,
		GeneratedBy: "ngdbench alloc",
	}
	add := func(name string, ops int, aop, bop float64) {
		report.Scenarios = append(report.Scenarios, scenario{name, ops, aop, bop})
		fmt.Printf("%-16s %10d %14.1f %14.1f\n", name, ops, aop, bop)
	}

	fmt.Printf("# alloc %s: |V|=%d |E|=%d, ‖Σ‖=%d; malloc counters, this host\n",
		p.Name, st.Nodes, st.Edges, *nRules)
	fmt.Printf("%-16s %10s %14s %14s\n", "scenario", "ops", "allocs/op", "bytes/op")

	// batch Dect against a warm shared Program: one op = one full detection
	// pass over the graph
	prog := plan.New(ds.G, rules, plan.Options{})
	detect.Dect(ds.G, rules, detect.Options{Program: prog}) // warm plans + indexes
	const dectOps = 5
	aop, bop := measureAllocs(dectOps, func() {
		for i := 0; i < dectOps; i++ {
			detect.Dect(ds.G, rules, detect.Options{Program: prog})
		}
	})
	add("dect_batch", dectOps, aop, bop)

	// steady-state session commits: serving-shaped point writes (16 ops per
	// batch). Deltas are pre-generated — update.Random mutates the dataset
	// (node arrivals), which must not be billed to Commit.
	const commitWarm, commitOps = 16, 64
	deltas := make([]*graph.Delta, commitWarm+commitOps)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{
			Size: 16, Gamma: 1, Seed: *seed*271 + int64(b),
		})
	}
	sess := session.New(ds.G, rules, session.Options{})
	for _, d := range deltas[:commitWarm] {
		sess.Commit(d)
	}
	aop, bop = measureAllocs(commitOps, func() {
		for _, d := range deltas[commitWarm:] {
			sess.Commit(d)
		}
	})
	add("session_commit", commitOps, aop, bop)

	// serve query: snapshot handle + violation listing + one point read off
	// the published epoch, the per-request core of GET /violations
	srv := serve.New(sess, serve.Options{})
	const queryOps = 20000
	srv.Snapshot().Violations() // warm
	aop, bop = measureAllocs(queryOps, func() {
		for i := 0; i < queryOps; i++ {
			sn := srv.Snapshot()
			vios := sn.Violations()
			if len(vios) > 0 {
				sn.Get(vios[i%len(vios)].Key())
			}
		}
	})
	add("serve_query", queryOps, aop, bop)
	srv.Close()

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloc: marshal: %v\n", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*allocOut, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "alloc: write %s: %v\n", *allocOut, err)
		os.Exit(1)
	}
	fmt.Printf("# wrote %s\n", *allocOut)
}

// ---- Exp-5: effectiveness ----

func exp5() {
	fmt.Printf("# exp5: errors caught by the full archetype rule set (ground truth = injected)\n")
	fmt.Printf("%-12s %9s %8s %10s %12s %12s\n", "graph", "injected", "caught", "violations", "NGD-only", "GFD-expressible")
	for _, p := range []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec} {
		ds := gen.Generate(p, *nEntities, *seed)
		rules := gen.EffectivenessRules(p)
		res := detect.Dect(ds.G, rules, detect.Options{})

		caught := map[graph.NodeID]bool{}
		ngdOnly, gfdExpr := 0, 0
		for _, v := range res.Violations {
			for i, pv := range v.Rule.Pattern.Nodes {
				if pv.Label != "integer" {
					caught[v.Match[i]] = true
				}
			}
			if isGFDExpressible(v.Rule) {
				gfdExpr++
			} else {
				ngdOnly++
			}
		}
		caughtInjected := 0
		for _, e := range ds.Errors {
			if caught[e.Entity] {
				caughtInjected++
			}
		}
		total := ngdOnly + gfdExpr
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ngdOnly) / float64(total)
		}
		fmt.Printf("%-12s %9d %8d %10d %7d (%2.0f%%) %12d\n",
			p.Name, len(ds.Errors), caughtInjected, total, ngdOnly, pct, gfdExpr)
	}
	fmt.Println("# (paper: 415/212/568 errors in DBpedia/YAGO2/Pokec; 92% catchable only by NGDs)")
}

// isGFDExpressible: no arithmetic operators and only (in)equality with
// constants/terms — the GFD fragment of NGDs.
func isGFDExpressible(r *core.NGD) bool {
	bare := func(e *expr.Expr) bool {
		return e.Op == expr.OpConst || e.Op == expr.OpStr || e.Op == expr.OpVar
	}
	for _, l := range append(append([]core.Literal{}, r.X...), r.Y...) {
		if l.Op != expr.Eq && l.Op != expr.Ne {
			return false
		}
		if !bare(l.L) || !bare(l.R) {
			return false
		}
	}
	return true
}

// ---- stream: continuous detection sessions (beyond the paper) ----

// streamExp replays a seeded, burst-skewed update stream (the generator's
// Hotspot default: 55% of updates land in a 4% window of the entity space)
// through a detection session: each batch is coalesced, run through the
// incremental detector, committed in place, and reconciled into the live
// violation store. Columns are deterministic for fixed flags; the sustained
// updates/sec summary at the end is wall clock.
func streamExp() {
	p := gen.YAGO2
	ds := gen.Generate(p, *nEntities, *seed)
	rules := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
	st := ds.G.ComputeStats()
	// keep the incremental and recompute columns in the same units: work
	// units (Dect) against IncDect, simulated makespan (PDect) against
	// PIncDect
	mode, scratchOf := "IncDect (cost units; scratch = Dect)", func() float64 {
		return dectWork(ds.G, rules)
	}
	if *streamPar {
		mode = "PIncDect p=8 (makespan units; scratch = PDect)"
		scratchOf = func() float64 {
			return par.PDect(ds.G, rules, oracle(par.Hybrid(8))).Metrics.Makespan
		}
	}
	fmt.Printf("# stream %s: |V|=%d |E|=%d, ‖Σ‖=%d, %d batches of %d%% |E|, hotspot 0.55, via %s\n",
		p.Name, st.Nodes, st.Edges, *nRules, *nBatches, *batchPct, mode)

	// the virtual oracle keeps the inc/scratch columns in deterministic
	// cost units; `ngdbench shards` is the wall-clock counterpart
	sess := session.New(ds.G, rules, session.Options{
		Parallel: *streamPar,
		Par:      oracle(par.Hybrid(8)),
	})
	fmt.Printf("# seeded store: %d violations\n", sess.Len())
	fmt.Printf("%-6s %7s %7s %6s %6s %7s %8s %10s %10s\n",
		"batch", "raw", "ops", "+vio", "-vio", "store", "pivots", "inc", "scratch")

	var totalOps int
	var incCost, scratchCost float64
	var commitWall time.Duration
	for b := 0; b < *nBatches; b++ {
		d := update.Random(ds, update.Config{
			Size:  update.SizeFor(ds.G, float64(*batchPct)/100),
			Gamma: 1,
			Seed:  *seed*97 + int64(b),
		})
		t0 := time.Now()
		bs := sess.Commit(d)
		commitWall += time.Since(t0)
		totalOps += bs.RawOps
		incCost += bs.Cost
		scratch := scratchOf()
		scratchCost += scratch
		fmt.Printf("%-6d %7d %7d %6d %6d %7d %8d %s %s\n",
			bs.Batch, bs.RawOps, bs.Ops, bs.Plus, bs.Minus, bs.StoreSize, bs.Pivots,
			ku(bs.Cost), ku(scratch))
	}
	speedup := 0.0
	if incCost > 0 {
		speedup = scratchCost / incCost
	}
	fmt.Printf("# totals: %d updates in %d batches; incremental %s ku vs scratch %s ku (%.1fx less)\n",
		totalOps, *nBatches, ku(incCost), ku(scratchCost), speedup)
	fmt.Printf("# sustained (wall clock, this host): %.0f updates/sec, %.2f ms/batch\n",
		float64(totalOps)/commitWall.Seconds(),
		float64(commitWall.Milliseconds())/float64(*nBatches))
}

// ---- serve: snapshot-isolated serving under concurrent load ----

// serveExp is the closed-loop load experiment for the serving layer
// (internal/serve): nReaders goroutines hammer snapshot reads while one
// writer streams update batches through the coalescing ingest queue. It
// reports read-latency percentiles measured *while commits stream* —
// demonstrating that readers are never blocked by a commit — and then a
// partition-maintenance table showing per-batch session cost staying flat
// as |V| grows for fixed |ΔG| (no full-graph partition rebuild per batch).
func serveExp() {
	p := gen.YAGO2
	ds := gen.Generate(p, *nEntities, *seed)
	rules := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
	st := ds.G.ComputeStats()

	// pre-generate the stream: update.Random mutates the graph (node
	// arrivals), which must happen before the server's writer owns it
	deltas := make([]*graph.Delta, *nBatches)
	for b := range deltas {
		deltas[b] = update.Random(ds, update.Config{
			Size:  update.SizeFor(ds.G, float64(*batchPct)/100),
			Gamma: 1,
			Seed:  *seed*131 + int64(b),
		})
	}
	toOps := func(d *graph.Delta) []serve.UpdateOp {
		ops := make([]serve.UpdateOp, len(d.Ops))
		for i, op := range d.Ops {
			kind := "delete"
			if op.Insert {
				kind = "insert"
			}
			ops[i] = serve.UpdateOp{
				Op: kind, Src: fmt.Sprint(int(op.Src)), Dst: fmt.Sprint(int(op.Dst)),
				Label: ds.G.Symbols().LabelName(op.Label),
			}
		}
		return ops
	}

	fmt.Printf("# serve %s: |V|=%d |E|=%d, ‖Σ‖=%d, %d readers × 1 writer, %d batches of %d%% |E|\n",
		p.Name, st.Nodes, st.Edges, *nRules, *nReaders, *nBatches, *batchPct)

	sess := session.New(ds.G, rules, session.Options{Parallel: *streamPar, Par: par.Hybrid(8)})
	srv := serve.New(sess, serve.Options{})
	fmt.Printf("# seeded store: %d violations at epoch 0\n", srv.Snapshot().Len())

	// each reader records (start, duration, epoch) per read; commit windows
	// are timestamped by the writer, and overlap is computed post-hoc — a
	// live "is a commit running" flag would undercount whenever the
	// scheduler doesn't interleave (e.g. on a single-core host)
	type readSample struct {
		start time.Time
		dur   time.Duration
		epoch int
	}
	var stop atomic.Bool
	var warmed atomic.Int64
	samples := make([][]readSample, *nReaders)
	var wg sync.WaitGroup
	for r := 0; r < *nReaders; r++ {
		samples[r] = make([]readSample, 0, 1<<17)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				sn := srv.Snapshot()
				vios := sn.Violations()
				if len(vios) > 0 {
					// a point read off the same consistent epoch
					if _, ok := sn.Get(vios[0].Key()); !ok {
						panic("snapshot index diverged from its violation slice")
					}
				}
				lat := time.Since(t0)
				if len(samples[r]) == 0 {
					warmed.Add(1)
				}
				if len(samples[r]) < cap(samples[r]) {
					samples[r] = append(samples[r], readSample{t0, lat, sn.Epoch})
				}
			}
		}(r)
	}

	// let every reader complete a warm read before the stream starts, then
	// pace batches a little apart so reads genuinely interleave with
	// commits (a closed loop, not a writer sprint)
	for warmed.Load() < int64(*nReaders) {
		time.Sleep(time.Millisecond)
	}
	type window struct{ start, end time.Time }
	windows := make([]window, 0, len(deltas))
	writerWall := time.Duration(0)
	for _, d := range deltas {
		t0 := time.Now()
		done, err := srv.Enqueue(toOps(d))
		if err != nil {
			panic(err)
		}
		<-done.Done()
		t1 := time.Now()
		windows = append(windows, window{t0, t1})
		writerWall += t1.Sub(t0)
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	srv.Close()

	var all []time.Duration
	epochs := map[int]bool{}
	midCommit := 0
	for r := range samples {
		for _, s := range samples[r] {
			all = append(all, s.dur)
			epochs[s.epoch] = true
			end := s.start.Add(s.dur)
			for _, w := range windows {
				if s.start.Before(w.end) && end.After(w.start) {
					midCommit++ // the read overlapped an in-flight commit
					break
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	sst := srv.Stats()
	fmt.Printf("# committed %d batches in %v (%.1f ms/batch), final store %d at epoch %d\n",
		sst.Commits, writerWall.Round(time.Millisecond),
		float64(writerWall.Microseconds())/1000/float64(max(1, int(sst.Commits))), sst.StoreSize, sst.Epoch)
	fmt.Printf("%-24s %12s %12s %12s %12s\n", "reads (snapshot+point)", "p50", "p99", "p99.9", "mid-commit")
	fmt.Printf("%-24d %12v %12v %12v %12d\n", len(all), pct(0.50), pct(0.99), pct(0.999), midCommit)
	fmt.Printf("# epochs observed by readers: %d of %d; every read returned a consistent\n", len(epochs), int(sst.Commits)+1)
	fmt.Printf("# snapshot — mid-commit reads serve the previous epoch, never wait\n")
	if err := sess.Recheck(); err != nil {
		fmt.Printf("# STORE INVARIANT VIOLATED: %v\n", err)
	} else {
		fmt.Printf("# store invariant after serving: store ≡ Dect(Σ, G) ✓\n")
	}

	// partition maintenance: per-batch cost vs |V| at fixed |ΔG|. The
	// maintained column is the session's actual per-commit partition work
	// (Extend + Refine); the rebuild column is what PIncDect used to pay —
	// a full partition.Greedy over the graph — every batch.
	fmt.Printf("#\n# incremental partition maintenance: fixed |ΔG|=%d ops, growing |V| (p=8)\n",
		update.SizeFor(ds.G, 0.02))
	fmt.Printf("%-16s %10s %14s %14s %10s\n", "|V|/|E|", "batch ms", "maintain ms", "rebuild ms", "ratio")
	fixedOps := update.SizeFor(ds.G, 0.02)
	for _, scale := range []int{1, 2, 4} {
		ds2 := gen.Generate(p, *nEntities*scale, *seed)
		rules2 := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
		d := update.Random(ds2, update.Config{Size: fixedOps, Gamma: 1, Seed: *seed * 17})
		st2 := ds2.G.ComputeStats()

		sess2 := session.New(ds2.G, rules2, session.Options{Parallel: true, Par: par.Hybrid(8)})
		t0 := time.Now()
		sess2.Commit(d)
		batchWall := time.Since(t0)

		// maintenance cost of the *next* batch (partition already built)
		d2 := update.Random(ds2, update.Config{Size: fixedOps, Gamma: 1, Seed: *seed * 19})
		t0 = time.Now()
		sess2.Partition().Extend(ds2.G)
		sess2.Partition().Refine(ds2.G, d2.TouchedNodes())
		maintainWall := time.Since(t0)

		t0 = time.Now()
		partition.Greedy(ds2.G, 8)
		rebuildWall := time.Since(t0)
		sess2.Close()

		ratio := float64(rebuildWall) / float64(max(1, int(maintainWall)))
		fmt.Printf("%-16s %10.2f %14.3f %14.3f %9.0fx\n",
			fmt.Sprintf("%d/%d", st2.Nodes, st2.Edges),
			float64(batchWall.Microseconds())/1000,
			float64(maintainWall.Microseconds())/1000,
			float64(rebuildWall.Microseconds())/1000, ratio)
	}
	fmt.Printf("# maintain stays O(|ΔG|) while rebuild grows with |V|: the per-batch\n")
	fmt.Printf("# session cost no longer contains a full-graph partition pass\n")
}

// ---- recover: durable-store crash recovery (beyond the paper) ----

// recoverExp measures what a restart costs with the durable store
// (internal/store) as the un-checkpointed WAL suffix grows: open a store,
// stream L batches into it, "crash" (close without a final checkpoint),
// and time recovery — snapshot decode + WAL replay through the session —
// against the cold-boot baseline the daemon used to pay, a full seeding
// detection run (session.New ≙ Dect) over the final graph. A last trial
// checkpoints before the crash, showing recovery collapse to a snapshot
// load regardless of how many batches were streamed.
func recoverExp() {
	p := gen.YAGO2
	ds0 := gen.Generate(p, *nEntities, *seed)
	st0 := ds0.G.ComputeStats()
	fmt.Printf("# recover %s: |V|=%d |E|=%d, ‖Σ‖=%d, batches of %d%% |E|; wall clock, this host\n",
		p.Name, st0.Nodes, st0.Edges, *nRules, *batchPct)
	fmt.Printf("%-22s %9s %9s %9s %9s %9s %9s %7s\n",
		"replayed", "snap KB", "wal KB", "load ms", "replay ms", "recover", "cold ms", "ratio")

	trial := func(label string, L int, checkpoint bool) {
		dir, err := os.MkdirTemp("", "ngdbench-recover-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)

		mkBatch := func(ds *gen.Dataset, b int) *graph.Delta {
			return update.Random(ds, update.Config{
				Size:  update.SizeFor(ds.G, float64(*batchPct)/100),
				Gamma: 1,
				Seed:  *seed*211 + int64(b),
			})
		}

		// live run: bootstrap, stream L batches, crash (or checkpoint first)
		ds := gen.Generate(p, *nEntities, *seed)
		rules := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
		sess := session.New(ds.G, rules, session.Options{})
		st, _, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			panic(err)
		}
		if err := st.Bootstrap(sess, rules, nil); err != nil {
			panic(err)
		}
		for b := 0; b < L; b++ {
			if bs := sess.Commit(mkBatch(ds, b)); bs.LogErr != nil {
				panic(bs.LogErr)
			}
		}
		if checkpoint {
			if err := st.Checkpoint(); err != nil {
				panic(err)
			}
		}
		if err := st.Close(); err != nil {
			panic(err)
		}
		liveVios := sess.Len()

		// recovery: snapshot decode + WAL replay through a restored session
		t0 := time.Now()
		_, rec, err := store.Open(dir, store.Options{NoSync: true})
		recoverWall := time.Since(t0)
		if err != nil {
			panic(err)
		}
		if rec == nil || rec.Session.Len() != liveVios {
			panic(fmt.Sprintf("recovery diverged: %v", rec))
		}

		// cold baseline: rebuild the final graph and pay the seeding Dect,
		// exactly what a boot without -data does (text parse excluded)
		dsC := gen.Generate(p, *nEntities, *seed)
		rulesC := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
		for b := 0; b < L; b++ {
			mkBatch(dsC, b).Apply(dsC.G)
		}
		t0 = time.Now()
		cold := session.New(dsC.G, rulesC, session.Options{})
		coldWall := time.Since(t0)
		if cold.Len() != liveVios {
			panic("cold baseline diverged from the live session")
		}

		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		fmt.Printf("%-22s %9.1f %9.1f %9.2f %9.2f %9.2f %9.2f %6.1fx\n",
			label, float64(rec.SnapshotBytes)/1024, float64(rec.WALBytes)/1024,
			ms(rec.SnapshotLoad), ms(rec.WALReplay), ms(recoverWall), ms(coldWall),
			float64(coldWall)/float64(max(1, int(recoverWall))))
	}

	for _, L := range []int{0, *nBatches / 4, *nBatches / 2, *nBatches} {
		trial(fmt.Sprintf("%d batches", L), L, false)
	}
	trial(fmt.Sprintf("%d + checkpoint", *nBatches), *nBatches, true)
	fmt.Printf("# recovery pays snapshot decode + replay of the un-checkpointed suffix;\n")
	fmt.Printf("# a checkpoint collapses it to the decode, while cold boot always pays Dect\n")
}

// ---- plan: the shared rule-program layer (beyond the paper) ----

// planExp measures what internal/plan buys the serving hot path. Part one
// replays a stream of small update batches through IncDect twice: once with
// cold per-batch planning (every batch compiles Σ and builds its pivot
// plans from scratch — the pre-Program behaviour) and once against a shared
// cached Program, reporting wall-clock per batch. Part two compares
// matching-order policies on the skewed generator workloads: label-frequency
// (legacy) ordering vs the statistics-driven cost model, in deterministic
// work units, plus the cross-rule prefix-sharing column for batch detection.
func planExp() {
	p := gen.YAGO2
	ds := gen.Generate(p, *nEntities, *seed)
	rules := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
	st := ds.G.ComputeStats()

	// pre-generate 128 point-write batches (4 ops each, independent of the
	// -batches flag, which sizes the bulk stream/serve replays): the planning preamble
	// dominates exactly when batches are small, which is the serving shape
	// the Program exists for
	batches := make([]*graph.Delta, 128)
	for b := range batches {
		batches[b] = update.Random(ds, update.Config{
			Size:  4,
			Gamma: 1,
			Seed:  *seed*61 + int64(b),
		})
	}

	fmt.Printf("# plan %s: |V|=%d |E|=%d, ‖Σ‖=%d, %d batches of 4 ops; wall clock, this host\n",
		p.Name, st.Nodes, st.Edges, *nRules, len(batches))

	run := func(prog *plan.Program) time.Duration {
		var wall time.Duration
		for _, d := range batches {
			t0 := time.Now()
			inc.IncDect(ds.G, rules, d, inc.Options{Program: prog})
			wall += time.Since(t0)
		}
		return wall
	}
	cold := run(nil) // nil Program: every batch compiles and plans from scratch
	prog := plan.New(ds.G, rules, plan.Options{})
	run(prog) // warm the cache once
	warm := run(prog)
	c := prog.Counters()
	perBatch := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1000 / float64(len(batches))
	}
	fmt.Printf("%-28s %12s %12s %9s\n", "small-batch IncDect", "ms/batch", "total ms", "speedup")
	fmt.Printf("%-28s %12.3f %12.2f\n", "cold per-batch planning", perBatch(cold), float64(cold.Microseconds())/1000)
	fmt.Printf("%-28s %12.3f %12.2f %8.1fx\n", "cached shared Program", perBatch(warm),
		float64(warm.Microseconds())/1000, float64(cold)/float64(max(1, int(warm))))
	fmt.Printf("# plan cache after replay: %d hits, %d misses, %d invalidations (%d rules in %d groups)\n",
		c.Hits, c.Misses, c.Invalidations, c.Rules, c.Groups)

	// ordering policy + sharing: deterministic work units on batch detection
	fmt.Printf("#\n# matching-order policy and cross-rule sharing (Dect work, kilounits)\n")
	fmt.Printf("%-12s %12s %12s %9s %14s %8s\n",
		"graph", "label-freq", "cost-based", "gain", "cost+sharing", "shared")
	for _, prof := range []gen.Profile{gen.DBpedia, gen.YAGO2, gen.Pokec, gen.Synthetic} {
		ds2 := gen.Generate(prof, *nEntities, *seed)
		rules2 := gen.Rules(prof, gen.RuleConfig{Count: *nRules, MaxDiameter: 5, Seed: *seed})
		work := func(po plan.Options) (float64, *plan.Program) {
			pr := plan.New(ds2.G, rules2, po)
			r := detect.Dect(ds2.G, rules2, detect.Options{Program: pr})
			return float64(r.Counters.Candidates + r.Counters.Checks), pr
		}
		legacy, _ := work(plan.Options{LegacyOrder: true, NoSharing: true})
		cost, _ := work(plan.Options{NoSharing: true})
		shared, pr := work(plan.Options{})
		fmt.Printf("%-12s %s %s %8.2fx %s %8d\n", prof.Name,
			ku(legacy), ku(cost), legacy/cost, ku(shared), pr.Counters().SharedRules)
	}
	fmt.Printf("# archetype patterns leave one anchor option per step, so both orderings\n")
	fmt.Printf("# coincide there and the win comes from sharing; anchor *choice* is where\n")
	fmt.Printf("# the fan statistics bite:\n")

	// hub trap: a pattern node with two possible anchor edges — one through
	// a many-to-many hub relation (likes: every user likes every item), one
	// through a sparse one (owns: two owners per rare item). Label-frequency
	// ordering picks the first incident edge and scans the hub; the cost
	// model reads the maintained fan statistics and anchors on the sparse
	// side.
	g := graph.New()
	itemL, rareL, userL := g.Symbols().Label("item"), g.Symbols().Label("rare"), g.Symbols().Label("user")
	promo, likes, owns := g.Symbols().Label("promo"), g.Symbols().Label("likes"), g.Symbols().Label("owns")
	vip := g.Symbols().Attr("vip")
	var items, rares, users []graph.NodeID
	for i := 0; i < 4; i++ {
		items = append(items, g.AddNodeL(itemL))
	}
	for i := 0; i < 40; i++ {
		rares = append(rares, g.AddNodeL(rareL))
	}
	for i := 0; i < *nEntities; i++ {
		u := g.AddNodeL(userL)
		g.SetAttrA(u, vip, graph.Int(int64(i%2)))
		users = append(users, u)
	}
	for i, it := range items {
		for k := 0; k < 10; k++ {
			g.AddEdgeL(it, rares[(i*10+k)%len(rares)], promo)
		}
	}
	for _, u := range users {
		for _, it := range items {
			g.AddEdgeL(u, it, likes)
		}
	}
	for i, r := range rares {
		g.AddEdgeL(users[(2*i)%len(users)], r, owns)
		g.AddEdgeL(users[(2*i+1)%len(users)], r, owns)
	}
	q := pattern.New()
	iN := q.AddNode("i", "item")
	rN := q.AddNode("r", "rare")
	uN := q.AddNode("u", "user")
	q.AddEdge(iN, rN, "promo")
	q.AddEdge(uN, iN, "likes")
	q.AddEdge(uN, rN, "owns")
	trap := core.NewSet(core.MustNew("hub-trap", q, nil,
		[]core.Literal{core.Lit(expr.V("u", "vip"), expr.Eq, expr.C(1))}))
	trapWork := func(po plan.Options) float64 {
		pr := plan.New(g, trap, po)
		r := detect.Dect(g, trap, detect.Options{Program: pr})
		return float64(r.Counters.Candidates + r.Counters.Checks)
	}
	legacyT := trapWork(plan.Options{LegacyOrder: true, NoSharing: true})
	costT := trapWork(plan.Options{NoSharing: true})
	fmt.Printf("%-12s %s %s %8.0fx   (1 rule: sparse-anchor selection)\n",
		"hub-trap", ku(legacyT), ku(costT), legacyT/costT)
}

// ---- repair: fix-enumeration cost vs |Vio| (beyond the paper) ----

// repairExp measures the repair engine (internal/repair) as the violation
// store grows. For every stored violation it previews the ranked fixes
// (solver-backed attribute reassignment + edge deletion, each cleared
// against the whole store on an overlay) and reports the deterministic
// enumeration counters — candidates and exact-solver calls — next to the
// wall-clock preview cost on this host. The apply loop then drains the
// store through the serving layer, always committing the top-ranked fix,
// showing cross-violation clearance amortize repairs: applies ≤ |Vio|.
func repairExp() {
	p := gen.YAGO2
	fmt.Printf("# repair %s: preview + drain cost vs |Vio|, ‖Σ‖=%d; counters deterministic, ms wall clock\n",
		p.Name, *nRules)
	fmt.Printf("%-8s %15s %7s %7s %7s %7s %8s %11s %9s %8s %9s\n",
		"n", "|V|/|E|", "|Vio|", "fixable", "attr", "edge", "solver", "preview ms", "ms/vio", "applies", "drain ms")
	for _, n := range []int{*nEntities / 2, *nEntities, *nEntities * 2} {
		ds := gen.Generate(p, n, *seed)
		rules := gen.Rules(p, gen.RuleConfig{Count: *nRules, MaxDiameter: 4, Seed: *seed})
		st := ds.G.ComputeStats()
		sess := session.New(ds.G, rules, session.Options{})
		vios := sess.Violations()

		var fixable, attrC, edgeC, solverCalls int
		t0 := time.Now()
		for _, v := range vios {
			res, err := sess.PreviewRepair(v.Key(), repair.Options{})
			if err != nil {
				panic(err)
			}
			if !res.Unrepairable {
				fixable++
			}
			attrC += res.Stats.AttrCands
			edgeC += res.Stats.EdgeCands
			solverCalls += res.Stats.SolverCalls
		}
		previewWall := time.Since(t0)

		// drain: commit the top-ranked fix for the first repairable key until
		// the store is empty (bounded: a fix may introduce fresh violations)
		srv := serve.New(sess, serve.Options{})
		skip := map[string]bool{}
		applies := 0
		t0 = time.Now()
		for applies < 4*len(vios)+4 {
			key := ""
			for _, v := range srv.Snapshot().Violations() {
				if !skip[v.Key()] {
					key = v.Key()
					break
				}
			}
			if key == "" {
				break
			}
			if _, err := srv.ApplyRepair(key, "", repair.Options{}); err != nil {
				skip[key] = true // unrepairable: leave it and move on
				continue
			}
			applies++
		}
		drainWall := time.Since(t0)
		left := srv.Snapshot().Len()
		srv.Close()

		perVio := 0.0
		if len(vios) > 0 {
			perVio = float64(previewWall.Microseconds()) / 1000 / float64(len(vios))
		}
		appliesStr := fmt.Sprint(applies)
		if left > 0 {
			appliesStr += fmt.Sprintf("(+%d)", left) // unrepairable residue
		}
		fmt.Printf("%-8d %15s %7d %7d %7d %7d %8d %11.1f %9.2f %8s %9.1f\n",
			n, fmt.Sprintf("%d/%d", st.Nodes, st.Edges), len(vios), fixable,
			attrC, edgeC, solverCalls,
			float64(previewWall.Microseconds())/1000, perVio, appliesStr,
			float64(drainWall.Microseconds())/1000)
	}
	fmt.Printf("# preview cost is dominated by per-candidate clearance (O(|Vio|) overlay\n")
	fmt.Printf("# re-checks), so ms/vio grows with the store; applies < |Vio| whenever one\n")
	fmt.Printf("# fix clears several violations at once (shared node, shared edge)\n")
}

// ---- reasoning demo (§4 worked examples) ----

func reasonDemo() {
	fmt.Printf("# reason: §4 worked examples (Example 5)\n")
	mk := func(name string, when, then []string) *core.NGD {
		q := corePattern1()
		var w, t []core.Literal
		for _, s := range when {
			w = append(w, core.MustLiteral(s))
		}
		for _, s := range then {
			t = append(t, core.MustLiteral(s))
		}
		return core.MustNew(name, q, w, t)
	}
	phi5 := mk("phi5", nil, []string{"x.A = 7", "x.B = 7"})
	phi6 := mk("phi6", nil, []string{"x.A + x.B = 11"})
	phi7 := mk("phi7", []string{"x.A <= 3"}, []string{"x.B > 6"})
	phi8 := mk("phi8", []string{"x.A > 3"}, []string{"x.B > 6"})
	phi9 := mk("phi9", nil, []string{"x.B < 6", "x.A != 0"})

	report := func(label string, set *core.Set) {
		start := time.Now()
		v, err := reason.Satisfiable(set, reason.Options{})
		el := time.Since(start).Round(time.Microsecond)
		switch {
		case errors.Is(err, reason.ErrNonLinear):
			// Theorem 3: not a failure of the search, a hard undecidability
			// boundary — never conflate with "no"
			fmt.Printf("  %-18s non-linear Σ: analyses undecidable (Theorem 3) (%v)\n", label, el)
		case err != nil:
			fmt.Printf("  %-18s error: %v (%v)\n", label, err, el)
		case v == reason.Unknown:
			// budget exhaustion, not a verdict — never conflate with "no"
			fmt.Printf("  %-18s undecided: analysis budget exhausted (%v)\n", label, el)
		default:
			fmt.Printf("  %-18s satisfiable=%-7v (%v)\n", label, v, el)
		}
	}
	report("{phi5}", core.NewSet(phi5))
	report("{phi6}", core.NewSet(phi6))
	report("{phi5,phi6}", core.NewSet(phi5, phi6))
	report("{phi7,phi8,phi9}", core.NewSet(phi7, phi8, phi9))
	report("{phi7,phi8}", core.NewSet(phi7, phi8))
}

func corePattern1() *pattern.Pattern {
	q := pattern.New()
	q.AddNode("x", "_")
	return q
}

// ---- analyze: admission-gate cost vs ‖Σ‖ ----

// analyzeExp measures the Σ admission gate (internal/analyze) as the rule
// set grows: full-pass wall time on a satisfiable generated Σ (per-rule
// triage + strong satisfiability + implication probes, parallel), and the
// unsat-core extraction cost when a planted Example-5 conflict makes the
// same Σ unsatisfiable (deletion shrinking must discard every innocent
// rule). The EXPERIMENTS.md analysis-cost table is produced by this run.
func analyzeExp() {
	const gateBudget, conflictBudget = 5 * time.Second, 15 * time.Second
	fmt.Printf("# analyze: Σ admission gate cost vs ‖Σ‖ (dbpedia rules, diameter ≤4, seed %d)\n", *seed)
	fmt.Printf("# wall-clock budgets: gate %v, +conflict %v; exhaustion degrades to unknown, never a wrong verdict\n",
		gateBudget, conflictBudget)
	fmt.Printf("%6s %13s %8s %8s %8s %10s %12s %14s\n",
		"‖Σ‖", "satisfiable", "strong", "implied", "dropped", "gate", "+conflict", "core")
	for _, k := range []int{5, 10, 20, 50, 100} {
		rules := gen.Rules(gen.DBpedia, gen.RuleConfig{Count: k, MaxDiameter: 4, Seed: *seed})
		start := time.Now()
		rep := analyze.Analyze(rules, analyze.Options{Timeout: gateBudget})
		gate := time.Since(start)
		implied := 0
		for _, rr := range rep.Rules {
			if rr.Implied == reason.Yes {
				implied++
			}
		}

		// plant the §4 Example 5 conflict: the gate must now pay unsat-core
		// extraction, deletion-shrinking past the k innocent rules
		mk := func(name string, then ...string) *core.NGD {
			var lits []core.Literal
			for _, s := range then {
				lits = append(lits, core.MustLiteral(s))
			}
			return core.MustNew(name, corePattern1(), nil, lits)
		}
		poisoned := core.NewSet(append(append([]*core.NGD{}, rules.Rules...),
			mk("phi5", "x.A = 7", "x.B = 7"), mk("phi6", "x.A + x.B = 11"))...)
		start = time.Now()
		prep := analyze.Analyze(poisoned, analyze.Options{Timeout: conflictBudget})
		conflict := time.Since(start)
		coreStr := "-"
		if prep.Core != nil {
			coreStr = fmt.Sprintf("%d/%d", len(prep.Core.Rules), k+2)
			if !prep.Core.Minimal {
				coreStr += " (budget)"
			}
		}
		fmt.Printf("%6d %13v %8v %8d %8d %10v %12v %14s\n",
			k, rep.Satisfiable, rep.StronglySatisfiable, implied, len(rep.Dropped),
			gate.Round(time.Millisecond), conflict.Round(time.Millisecond), coreStr)
	}
}
