// Command ngdcheck detects NGD violations in a graph file, in batch or
// incremental mode.
//
// Usage:
//
//	ngdcheck -rules rules.ngd -graph g.txt [-update delta.txt] [-p 8] [-limit n]
//
// Without -update it runs batch detection (Dect, or PDect when -p > 1) and
// prints Vio(Σ, G). With -update it runs incremental detection (IncDect /
// PIncDect) and prints ΔVio⁺ and ΔVio⁻.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ngd"
)

var (
	rulesPath  = flag.String("rules", "", "rule file (required)")
	graphPath  = flag.String("graph", "", "graph file (required)")
	updatePath = flag.String("update", "", "update file (optional: incremental mode)")
	workers    = flag.Int("p", 1, "parallel workers (1 = sequential)")
	limit      = flag.Int("limit", 0, "stop after this many violations (0 = all)")
	quiet      = flag.Bool("q", false, "print only counts")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ngdcheck: ")
	flag.Parse()
	if *rulesPath == "" || *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := ngd.ParseRules(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, ids, err := ngd.LoadGraph(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; Σ: %d rules (dΣ=%d)\n",
		g.NumNodes(), g.NumEdges(), rules.Len(), rules.Diameter())

	if *updatePath == "" {
		runBatch(g, rules)
		return
	}
	uf, err := os.Open(*updatePath)
	if err != nil {
		log.Fatal(err)
	}
	delta, err := ngd.LoadDelta(uf, g, ids)
	uf.Close()
	if err != nil {
		log.Fatal(err)
	}
	runIncremental(g, rules, delta)
}

func runBatch(g *ngd.Graph, rules *ngd.RuleSet) {
	var vios []ngd.Violation
	if *workers > 1 {
		opts := ngd.Parallel(*workers)
		opts.Limit = *limit
		res, met := ngd.PDetect(g, rules, opts)
		vios = res.Violations
		fmt.Printf("PDect p=%d: %d work units, makespan %.0f cost units\n",
			*workers, met.Units, met.Makespan)
	} else if *limit > 0 {
		vios = ngd.DetectLimit(g, rules, *limit).Violations
	} else {
		vios = ngd.Detect(g, rules).Violations
	}
	fmt.Printf("violations: %d\n", len(vios))
	printVios(vios)
}

func runIncremental(g *ngd.Graph, rules *ngd.RuleSet, delta *ngd.Delta) {
	fmt.Printf("ΔG: %d unit updates\n", delta.Len())
	var dv *ngd.DeltaVio
	if *workers > 1 {
		res, met := ngd.PIncDetect(g, rules, delta, ngd.Parallel(*workers))
		dv = res
		fmt.Printf("PIncDect p=%d: %d work units, %d splits, %d moved, makespan %.0f cost units\n",
			*workers, met.Units, met.Splits, met.Moved, met.Makespan)
	} else {
		dv = ngd.IncDetect(g, rules, delta)
	}
	fmt.Printf("ΔVio⁺: %d new violations\n", len(dv.Plus))
	printVios(dv.Plus)
	fmt.Printf("ΔVio⁻: %d removed violations\n", len(dv.Minus))
	printVios(dv.Minus)
}

func printVios(vios []ngd.Violation) {
	if *quiet {
		return
	}
	for _, v := range vios {
		fmt.Printf("  %s\n", v)
	}
}
