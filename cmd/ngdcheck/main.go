// Command ngdcheck detects NGD violations in a graph file, in batch or
// incremental mode, and runs the §4 static analyses over a rule set.
//
// Usage:
//
//	ngdcheck -rules rules.ngd -graph g.txt [-update delta.txt] [-p 8] [-limit n]
//	ngdcheck -rules rules.ngd -analyze [-graph g.txt]
//
// Without -update it runs batch detection (Dect, or PDect when -p > 1) and
// prints Vio(Σ, G). With -update it runs incremental detection (IncDect /
// PIncDect) and prints ΔVio⁺ and ΔVio⁻.
//
// With -analyze it first runs the Σ admission analysis (satisfiability
// triage, unsat-core extraction, minimization report); -graph becomes
// optional — without it the command is a pure static check.
//
// With -repair (batch mode only) it additionally prints, per violation,
// the top ranked candidate fixes the repair engine previews: minimal
// attribute reassignments and match-breaking edge deletions, with their
// cross-violation clearance. The graph is never mutated.
//
// Exit codes:
//
//	0  success: analysis found Σ satisfiable / detection completed
//	1  runtime error (unreadable or malformed input)
//	2  usage error (bad flags)
//	3  -analyze: Σ is unsatisfiable (the minimal unsat core is printed)
//	4  -analyze: satisfiability undecided within the analysis budget
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ngd"
)

var (
	rulesPath  = flag.String("rules", "", "rule file (required)")
	graphPath  = flag.String("graph", "", "graph file (required unless -analyze)")
	updatePath = flag.String("update", "", "update file (optional: incremental mode)")
	workers    = flag.Int("p", 1, "parallel workers (1 = sequential)")
	limit      = flag.Int("limit", 0, "stop after this many violations (0 = all)")
	quiet      = flag.Bool("q", false, "print only counts")
	doAnalyze  = flag.Bool("analyze", false, "run the Σ admission analysis (satisfiability, unsat core, minimization); exit 3 = unsatisfiable, 4 = undecided")
	anTimeout  = flag.Duration("analyze-timeout", 30*time.Second, "wall-clock budget for -analyze")
	doRepair   = flag.Bool("repair", false, "after batch detection, print ranked candidate fixes per violation (offline repair preview; incompatible with -update)")
	repairMax  = flag.Int("repair-fixes", 3, "ranked fixes to print per violation with -repair")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ngdcheck: ")
	flag.Parse()
	if *rulesPath == "" || (*graphPath == "" && !*doAnalyze) {
		flag.Usage()
		os.Exit(2)
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, lines, err := ngd.ParseRulesLocated(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *doAnalyze {
		runAnalysis(rules, lines)
		if *graphPath == "" {
			return
		}
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, ids, err := ngd.LoadGraph(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; Σ: %d rules (dΣ=%d)\n",
		g.NumNodes(), g.NumEdges(), rules.Len(), rules.Diameter())

	if *updatePath == "" {
		if *doRepair {
			runRepair(g, rules)
		} else {
			runBatch(g, rules)
		}
		return
	}
	if *doRepair {
		log.Print("-repair previews fixes for the stored violations of a graph; run it without -update")
		os.Exit(2)
	}
	uf, err := os.Open(*updatePath)
	if err != nil {
		log.Fatal(err)
	}
	delta, err := ngd.LoadDelta(uf, g, ids)
	uf.Close()
	if err != nil {
		log.Fatal(err)
	}
	runIncremental(g, rules, delta)
}

// runAnalysis prints the Σ admission report and exits non-zero when Σ is
// unusable: 3 = proven unsatisfiable, 4 = undecided within budget. On a
// satisfiable Σ it returns so detection can proceed (when -graph is given).
func runAnalysis(rules *ngd.RuleSet, lines map[string]int) {
	rep := ngd.AnalyzeRules(rules, ngd.AnalysisOptions{Timeout: *anTimeout, Lines: lines})
	fmt.Printf("Σ analysis: satisfiable=%v strongly=%v rules=%d dropped=%d elapsed=%dms\n",
		rep.Satisfiable, rep.StronglySatisfiable, rep.NumRules, len(rep.Dropped), rep.ElapsedMS)
	fmt.Printf("signature: %s\n", rep.Signature)
	if d := rep.Diagnostic(); d != "" && !*quiet {
		fmt.Print(d)
	}
	switch {
	case rep.Unsat():
		fmt.Fprint(os.Stderr, rep.Diagnostic())
		log.Print("Σ is unsatisfiable: every batch against it is wasted work")
		os.Exit(3)
	case rep.Err != "":
		log.Printf("analysis failed: %s", rep.Err)
		os.Exit(4)
	case rep.Satisfiable == ngd.Unknown:
		log.Print("satisfiability undecided within the analysis budget (raise -analyze-timeout)")
		os.Exit(4)
	}
}

func runBatch(g *ngd.Graph, rules *ngd.RuleSet) {
	var vios []ngd.Violation
	if *workers > 1 {
		opts := ngd.Parallel(*workers)
		opts.Limit = *limit
		res, met := ngd.PDetect(g, rules, opts)
		vios = res.Violations
		fmt.Printf("PDect p=%d: %d work units, makespan %.0f cost units\n",
			*workers, met.Units, met.Makespan)
	} else if *limit > 0 {
		vios = ngd.DetectLimit(g, rules, *limit).Violations
	} else {
		vios = ngd.Detect(g, rules).Violations
	}
	fmt.Printf("violations: %d\n", len(vios))
	printVios(vios)
}

func runIncremental(g *ngd.Graph, rules *ngd.RuleSet, delta *ngd.Delta) {
	fmt.Printf("ΔG: %d unit updates\n", delta.Len())
	var dv *ngd.DeltaVio
	if *workers > 1 {
		res, met := ngd.PIncDetect(g, rules, delta, ngd.Parallel(*workers))
		dv = res
		fmt.Printf("PIncDect p=%d: %d work units, %d splits, %d moved, makespan %.0f cost units\n",
			*workers, met.Units, met.Splits, met.Moved, met.Makespan)
	} else {
		dv = ngd.IncDetect(g, rules, delta)
	}
	fmt.Printf("ΔVio⁺: %d new violations\n", len(dv.Plus))
	printVios(dv.Plus)
	fmt.Printf("ΔVio⁻: %d removed violations\n", len(dv.Minus))
	printVios(dv.Minus)
}

// runRepair seeds a session (the live store repair ranks against) and
// prints the ranked candidate fixes for every stored violation: solver-
// backed minimal attribute reassignments and match-breaking edge deletions,
// each annotated with its previewed cross-violation clearance. Pure
// preview — the graph is never mutated.
func runRepair(g *ngd.Graph, rules *ngd.RuleSet) {
	sess := ngd.NewSession(g, rules, ngd.SessionOptions{})
	defer sess.Close()
	vios := sess.Violations()
	fmt.Printf("violations: %d\n", len(vios))
	repairable := 0
	for _, v := range vios {
		res, err := sess.PreviewRepair(v.Key(), ngd.RepairOptions{MaxFixes: *repairMax})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Unrepairable {
			repairable++
		}
		if *quiet {
			continue
		}
		fmt.Printf("  %s\n", v)
		if res.Unrepairable {
			fmt.Printf("    unrepairable: %s\n", res.Reason)
			continue
		}
		for i, f := range res.Fixes {
			fmt.Printf("    %d. %s\n", i+1, describeFix(f))
		}
	}
	fmt.Printf("repairable: %d/%d\n", repairable, len(vios))
}

// describeFix renders one fix for the terminal.
func describeFix(f ngd.RepairFix) string {
	var what string
	switch f.Kind {
	case "attr":
		what = fmt.Sprintf("node %d:", f.Node)
		for _, set := range f.Sets {
			if set.Old != nil {
				what += fmt.Sprintf(" set %s %d→%d", set.Attr, *set.Old, set.New)
			} else {
				what += fmt.Sprintf(" set %s=%d (new)", set.Attr, set.New)
			}
		}
		what += fmt.Sprintf(" (perturb %d,", f.Perturb)
	case "edge-delete":
		what = fmt.Sprintf("delete edge %d -%s-> %d (", f.Src, f.Label, f.Dst)
	default:
		what = f.ID + " ("
	}
	return fmt.Sprintf("%s clears %d, introduces %d)", what, len(f.Clears), len(f.Introduces))
}

func printVios(vios []ngd.Violation) {
	if *quiet {
		return
	}
	for _, v := range vios {
		fmt.Printf("  %s\n", v)
	}
}
